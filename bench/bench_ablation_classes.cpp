// Ablation: what does each of Algorithm 1's two optimizations buy?
//
//   (1) the pure-mutator early ack (respond at eps+X instead of waiting
//       for execution), justified by Lemma C.11;
//   (2) the pure-accessor back-dating + no-broadcast path (respond at
//       d+eps-X without a broadcast), justified by Lemmas C.9/C.13/C.14.
//
// Each is disabled by reclassifying that operation group as OOP (the
// conservative broadcast-and-wait path, always correct).  The ablated
// variants stay linearizable but lose exactly the latency the paper's
// analysis predicts; the full algorithm also sends fewer messages
// (accessors are never broadcast).
#include "bench_common.h"
#include "core/driver.h"
#include "core/workload.h"
#include "spec/reclassify.h"
#include "types/queue_type.h"

using namespace linbound;
using namespace linbound::bench;

namespace {

struct AblationResult {
  bool linearizable = false;
  Tick mutator_worst = kNoTime;
  Tick accessor_worst = kNoTime;
  double messages_per_op = 0;
};

AblationResult run_variant(const std::shared_ptr<const ObjectModel>& exec_model,
                           const QueueModel& base, Tick x) {
  SystemOptions options;
  options.n = kN;
  options.timing = default_timing();
  options.x = x;
  options.delays = std::make_shared<ExtremalDelayPolicy>(options.timing, 99);
  options.clock_offsets = {0, 300, 0, 300};

  ReplicaSystem system(std::shared_ptr<const ObjectModel>(exec_model), options);
  Rng rng(4242);
  std::vector<ClientScript> scripts;
  const OpMix mix{2, 2, 1};
  for (int p = 0; p < kN; ++p) {
    Rng crng = rng.split(static_cast<std::uint64_t>(p));
    scripts.push_back({p, random_queue_ops(crng, 15, mix), 1000, 0});
  }
  WorkloadDriver driver(system.sim(), std::move(scripts));
  driver.arm();
  const History history = system.run_to_completion();

  // Group latencies by the BASE classification so variants are comparable.
  LatencyReport latency;
  latency.absorb(base, system.sim().trace());

  AblationResult result;
  result.linearizable = check_linearizable(base, history).ok;
  result.mutator_worst = latency.worst_for_class(OpClass::kPureMutator);
  result.accessor_worst = latency.worst_for_class(OpClass::kPureAccessor);
  result.messages_per_op =
      static_cast<double>(system.sim().trace().messages.size()) /
      static_cast<double>(history.size());
  return result;
}

}  // namespace

int main() {
  print_header("Ablation: Algorithm 1's mutator-ack and accessor-path tricks");
  const SystemTiming t = default_timing();
  auto base = std::make_shared<QueueModel>();
  bool ok = true;

  struct Variant {
    const char* name;
    ReclassifyModel::Demote demote;
  };
  const Variant variants[] = {
      {"full Algorithm 1", {false, false}},
      {"no accessor path (AOP as OOP)", {true, false}},
      {"no early ack (MOP as OOP)", {false, true}},
      {"neither (all ops as OOP)", {true, true}},
  };

  // X = 600 so the accessor path's advantage is visible: full Algorithm 1
  // answers peeks in d+eps-X = 700us; the ablated variant pays the OOP
  // price of up to d+eps = 1300us.
  const Tick x = 600;
  AblationResult full_result;
  TextTable table({"variant", "enqueue worst", "peek worst", "msgs/op",
                   "linearizable"});
  for (const Variant& v : variants) {
    std::shared_ptr<const ObjectModel> exec_model =
        (v.demote.accessors || v.demote.mutators)
            ? std::static_pointer_cast<const ObjectModel>(
                  std::make_shared<ReclassifyModel>(base, v.demote))
            : std::static_pointer_cast<const ObjectModel>(base);
    const AblationResult r = run_variant(exec_model, *base, x);
    char msgs[32];
    std::snprintf(msgs, sizeof(msgs), "%.2f", r.messages_per_op);
    table.add_row({v.name, format_ticks(r.mutator_worst),
                   format_ticks(r.accessor_worst), msgs,
                   r.linearizable ? "yes" : "NO"});
    ok = ok && r.linearizable;

    if (!v.demote.accessors && !v.demote.mutators) {
      full_result = r;
      ok = ok && r.mutator_worst == t.eps + x &&
           r.accessor_worst == t.d + t.eps - x;
    }
    if (v.demote.accessors) {
      ok = ok && r.accessor_worst > full_result.accessor_worst;   // slower reads
      ok = ok && r.messages_per_op > full_result.messages_per_op; // more traffic
    }
    if (v.demote.mutators) ok = ok && r.mutator_worst > t.eps + x;
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nThe early ack buys mutators d+eps -> eps; the accessor path keeps\n"
      "reads off the network entirely (messages per op drops) and enables\n"
      "the X trade-off.  Both ablations remain linearizable -- the paper's\n"
      "optimizations are pure latency wins, not correctness trades.\n");
  return finish(ok);
}
