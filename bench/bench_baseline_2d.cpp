// Algorithm 1 vs the folklore centralized baseline (Chapter I.A.3): the
// motivating "can we beat 2d?" comparison, on identical workloads.
#include "bench_common.h"
#include "core/workload.h"
#include "types/queue_type.h"
#include "types/register_type.h"

using namespace linbound;
using namespace linbound::bench;

namespace {

void report(const char* label, const SweepResult& result, bool& ok) {
  print_sweep_status(label, result);
  ok = ok && result.all_linearizable();
}

}  // namespace

int main(int argc, char** argv) {
  const int jobs = parse_jobs(argc, argv);
  print_header("Baseline: centralized (<= 2d) vs Algorithm 1 (<= d+eps)");
  const SystemTiming t = default_timing();
  const OpMix mix{2, 2, 2};
  bool ok = true;

  TextTable table({"object", "op class", "centralized worst", "TOB worst",
                   "Algorithm 1 worst", "speedup bound"});

  struct Case {
    const char* name;
    std::shared_ptr<ObjectModel> model;
    WorkloadFactory workload;
  };
  Case cases[] = {
      {"register", std::make_shared<RegisterModel>(),
       [&](ProcessId, Rng& rng) { return random_register_ops(rng, 12, mix); }},
      {"queue", std::make_shared<QueueModel>(),
       [&](ProcessId, Rng& rng) { return random_queue_ops(rng, 12, mix); }},
  };

  for (const Case& c : cases) {
    const SweepResult central =
        run_centralized_sweep(c.model, c.workload, default_sweep(0, jobs));
    const SweepResult tob = run_tob_sweep(c.model, c.workload, default_sweep(0, jobs));
    const SweepResult replica =
        run_replica_sweep(c.model, c.workload, default_sweep(0, jobs));
    report((std::string(c.name) + " centralized:").c_str(), central, ok);
    report((std::string(c.name) + " TOB:").c_str(), tob, ok);
    report((std::string(c.name) + " Algorithm 1:").c_str(), replica, ok);

    for (OpClass cls : {OpClass::kPureMutator, OpClass::kPureAccessor,
                        OpClass::kOther}) {
      const Tick cw = central.latency.worst_for_class(cls);
      const Tick tw = tob.latency.worst_for_class(cls);
      const Tick rw = replica.latency.worst_for_class(cls);
      if (cw == kNoTime || rw == kNoTime || tw == kNoTime) continue;
      std::string bound;
      switch (cls) {
        case OpClass::kPureMutator:
          bound = "2d vs eps+X";
          break;
        case OpClass::kPureAccessor:
          bound = "2d vs d+eps-X";
          break;
        case OpClass::kOther:
          bound = "2d vs d+eps";
          break;
      }
      table.add_row({c.name, to_string(cls), format_ticks(cw), format_ticks(tw),
                     format_ticks(rw), std::move(bound)});
      ok = ok && cw <= 2 * t.d && tw <= 2 * t.d && rw <= t.d + t.eps;
    }
  }

  std::printf("\n%s", table.render().c_str());
  std::printf(
      "\nAll operation classes beat the centralized scheme's 2d: the OOP\n"
      "class by 2d -> d+eps, mutators by 2d -> eps, i.e. the \"faster than\n"
      "2d\" question of Chapter I answered affirmatively.\n");
  return finish(ok);
}
