// Chaos-search driver: hunt for violations over the covered adversary grid,
// shrink anything found to a minimal fault script, and emit self-contained
// repro bundles.
//
//   bench_chaos [--seconds S] [--jobs N] [--seed X] [--out DIR]
//               [--variants a,b,...]
//       Search the grid (every variant unless --variants narrows it, no
//       mutant).  Any reproducible violation is shrunk and written as a
//       chaosrepro bundle under DIR (default chaos_repros/).  Exit 1 when
//       violations exist -- CI uploads DIR as an artifact on that path.
//
//   bench_chaos --plant MUTANT [--jobs N] [--seed X] [--out DIR]
//       Validation mode: plant a known bug (eager-mop / eager-aop /
//       narrow-waits), require the search to find it, shrink the script to
//       a handful of decisions, write the bundle, and verify the bundle
//       replays to the identical verdict and trace hash.  Exit 0 only when
//       the whole pipeline held.
//
//   bench_chaos --repro FILE
//       Replay a bundle and check it against its recorded expectations.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_common.h"
#include "chaos/chaos.h"
#include "chaos/search.h"
#include "chaos/shrink.h"

using namespace linbound;
using namespace linbound::bench;

namespace {

std::string arg_value(int argc, char** argv, const std::string& flag,
                      const std::string& fallback) {
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i] && i + 1 < argc) return argv[i + 1];
    const std::string prefixed = flag + "=";
    if (std::string(argv[i]).rfind(prefixed, 0) == 0) {
      return std::string(argv[i]).substr(prefixed.size());
    }
  }
  return fallback;
}

/// Shrink a finding, wrap it in a bundle, write it, and verify the written
/// file replays byte-identically.  Returns the bundle path ("" on failure).
std::string bundle_finding(const ChaosFinding& finding,
                           const std::string& out_dir, int index) {
  ShrinkStats stats;
  const FaultScript minimal = shrink_fault_script(
      finding.spec, finding.result.script, finding.result.verdict, &stats);

  // The bundle's expectations come from a replay of the *minimal* script
  // (its trace differs from the original run's once decisions are gone).
  const ChaosRunResult replayed = replay_chaos(finding.spec, minimal);
  ReproBundle bundle;
  bundle.spec = finding.spec;
  bundle.script = minimal;
  bundle.expected_verdict = replayed.verdict;
  bundle.expected_hash = replayed.trace_hash;

  std::filesystem::create_directories(out_dir);
  std::ostringstream name;
  name << out_dir << "/repro_" << index << "_"
       << chaos_verdict_name(replayed.verdict) << ".txt";
  {
    std::ofstream out(name.str());
    write_repro_bundle(out, bundle);
    if (!out) {
      std::printf("  FAILED to write %s\n", name.str().c_str());
      return "";
    }
  }

  // Round-trip gate: the file we just wrote must parse and replay to the
  // identical verdict and hash.
  std::ifstream in(name.str());
  std::string error;
  const auto loaded = read_repro_bundle(in, &error);
  if (!loaded) {
    std::printf("  FAILED to re-read %s: %s\n", name.str().c_str(),
                error.c_str());
    return "";
  }
  const ReplayOutcome check = replay_bundle(*loaded);
  std::printf("  %s: %zu -> %zu decisions (%d probes), replay %s\n",
              name.str().c_str(), stats.initial_decisions,
              stats.final_decisions, stats.probes,
              check.ok() ? "identical" : "MISMATCH");
  return check.ok() ? name.str() : "";
}

int run_search(ChaosSearchOptions options, const std::string& out_dir,
               bool expect_violation, int max_script) {
  const ChaosSearchResult result = run_chaos_search(options);
  std::printf("%s", result.summary().c_str());

  bool pipeline_ok = true;
  int bundles = 0;
  for (std::size_t i = 0; i < result.findings.size(); ++i) {
    const std::string path =
        bundle_finding(result.findings[i], out_dir, static_cast<int>(i));
    if (path.empty()) {
      pipeline_ok = false;
      continue;
    }
    ++bundles;
    if (max_script >= 0) {
      std::ifstream in(path);
      const auto bundle = read_repro_bundle(in);
      if (bundle && static_cast<int>(bundle->script.size()) > max_script) {
        std::printf("  script larger than the %d-decision budget\n",
                    max_script);
        pipeline_ok = false;
      }
    }
  }

  if (expect_violation) {
    // Validation mode: the planted bug must be found, shrunk and bundled.
    return finish(pipeline_ok && result.reproducible > 0 && bundles > 0);
  }
  // Hunt mode: the exit code says "violations found" so CI can upload the
  // bundle directory; the run itself only fails if bundling broke.
  if (!pipeline_ok) return finish(false);
  if (result.found_violation()) {
    std::printf("\nviolations found; bundles in %s\n", out_dir.c_str());
    return 1;
  }
  return finish(true);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string repro = arg_value(argc, argv, "--repro", "");
  if (!repro.empty()) {
    std::ifstream in(repro);
    if (!in) {
      std::printf("cannot open %s\n", repro.c_str());
      return 1;
    }
    std::string error;
    const auto bundle = read_repro_bundle(in, &error);
    if (!bundle) {
      std::printf("cannot parse %s: %s\n", repro.c_str(), error.c_str());
      return 1;
    }
    const ReplayOutcome outcome = replay_bundle(*bundle);
    std::printf("replay of %s: verdict=%s (expected %s), hash %s\n",
                repro.c_str(), chaos_verdict_name(outcome.result.verdict),
                chaos_verdict_name(bundle->expected_verdict),
                outcome.hash_matches ? "identical" : "MISMATCH");
    return finish(outcome.ok());
  }

  print_header("Chaos search: partition/link/stall/churn adversaries, "
               "layered oracles, minimized repros");

  ChaosSearchOptions options;
  options.n = 3;
  options.timing = default_timing();
  options.jobs = parse_jobs(argc, argv);
  options.base_seed = static_cast<std::uint64_t>(
      std::strtoull(arg_value(argc, argv, "--seed", "3405691582").c_str(),
                    nullptr, 10));
  options.time_budget_s =
      std::atof(arg_value(argc, argv, "--seconds", "0").c_str());
  options.wall_budget_ms = 30'000;  // per-run CI safety net
  const std::string out_dir = arg_value(argc, argv, "--out", "chaos_repros");

  // --variants mode-switching,quorum restricts the grid (default: all).
  const std::string variants = arg_value(argc, argv, "--variants", "");
  if (!variants.empty()) {
    std::istringstream list(variants);
    std::string name;
    while (std::getline(list, name, ',')) {
      const auto v = parse_chaos_variant(name);
      if (!v) {
        std::printf("unknown variant '%s'\n", name.c_str());
        return 1;
      }
      options.variants.push_back(*v);
    }
  }

  const std::string plant = arg_value(argc, argv, "--plant", "");
  if (!plant.empty()) {
    const auto mutant = parse_chaos_mutant(plant);
    if (!mutant || *mutant == ChaosMutant::kNone) {
      std::printf("unknown mutant '%s' (eager-mop / eager-aop / "
                  "narrow-waits)\n", plant.c_str());
      return 1;
    }
    options.mutant = *mutant;
    options.seeds = 12;  // a planted bug must not slip through
    std::printf("planted mutant: %s\n", chaos_mutant_name(*mutant));
    return run_search(options, out_dir, /*expect_violation=*/true,
                      /*max_script=*/10);
  }

  return run_search(options, out_dir, /*expect_violation=*/false,
                    /*max_script=*/-1);
}
