// Churn sweep: the recoverable replica (core/recoverable_replica.h) under
// seeded crash/recover schedules (fault/churn.h).
//
// Four claims, checked per churn cell over the seeds:
//   1. every churned run is linearizable (pending-aware: operations cut by
//      a crash and re-issued after recovery are accepted);
//   2. survivors keep Algorithm 1's per-class response bounds -- a rejoin
//      costs them one snapshot message, never a wait;
//   3. recovery is time-bounded: the first operation answered after a
//      rejoin completes within the join-round-trip + catch-up + class
//      bound of its invocation;
//   4. every churned run is attributed to kRecovering by the assumption
//      monitor, with no unexplained failures.
#include "bench_common.h"
#include "core/workload.h"
#include "harness/churn_sweep.h"
#include "types/register_type.h"

using namespace linbound;
using namespace linbound::bench;

int main(int argc, char** argv) {
  print_header("Churn sweep: recoverable Algorithm 1 under crash/recover schedules");
  const SystemTiming t = default_timing();

  ChurnSweepOptions options;
  options.n = kN;
  options.timing = t;
  options.x = 0;
  options.seeds = 6;
  options.ops_per_client = 10;
  options.jobs = parse_jobs(argc, argv);
  // A short attempt budget keeps the effective delivery bound d_eff (and
  // with it every wait and the run length) modest; churn cells inject no
  // message loss, so retransmissions only bridge downtime.
  options.recoverable.link.max_attempts = 3;

  const OpMix mix{2, 2, 2};
  auto model = std::make_shared<RegisterModel>();
  WorkloadFactory workload = [&](ProcessId, Rng& rng) {
    return random_register_ops(rng, options.ops_per_client, mix);
  };

  const ChurnSweepResult result = run_churn_sweep(model, workload, options);

  std::printf("%s\n", result.table().c_str());

  const RecoverableParams& rp = options.recoverable;
  std::printf(
      "recoverable link: d_eff = %lld (vs d = %lld); join retry %lld,\n"
      "catch-up window %lld -- a rejoiner buffers broadcasts, adopts a\n"
      "snapshot, and serves again once it is at most that stale.\n\n",
      static_cast<long long>(rp.link.effective_d(t)),
      static_cast<long long>(t.d),
      static_cast<long long>(rp.join_retry_for(t)),
      static_cast<long long>(rp.catchup_for(t)));

  for (const ChurnCellResult& cell : result.cells) {
    for (const std::string& note : cell.notes) {
      std::printf("  %s\n", note.c_str());
    }
  }

  std::printf(
      "\nclaim 1 (every churned run linearizable):    %s\n"
      "claim 2 (survivors within class bounds):     %s\n"
      "claim 3 (recovery time bounded):             %s\n"
      "claim 4 (churn attributed, nothing silent):  %s\n",
      result.all_linearizable() ? "holds" : "VIOLATED",
      result.survivors_within_bounds() ? "holds" : "VIOLATED",
      result.recovery_bounded() ? "holds" : "VIOLATED",
      result.churn_attributed() ? "holds" : "VIOLATED");

  return finish(result.ok());
}
