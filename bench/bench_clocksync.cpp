// The clock-synchronization substrate (Chapter V's premise): the
// Lundelius-Lynch averaging algorithm achieves skew <= (1 - 1/n) u, the
// optimum the upper bounds assume.  All skews are printed scaled by 2n so
// every number is an exact integer.
#include "bench_common.h"
#include "clocksync/lundelius_lynch.h"
#include "common/rng.h"

using namespace linbound;
using namespace linbound::bench;

int main() {
  print_header("Clock sync: Lundelius-Lynch achieves the optimal (1-1/n)u");
  const SystemTiming t = default_timing();
  bool ok = true;

  TextTable table({"n", "adversary", "achieved skew (x2n)", "optimal bound (x2n)",
                   "achieved (us approx)", "within bound"});

  for (int n : {2, 3, 4, 8, 16}) {
    struct Adversary {
      const char* name;
      std::shared_ptr<DelayPolicy> policy;
    };
    // The asymmetric matrix (fast one way, slow the other) is the
    // worst-case adversary for midpoint estimation.
    auto asym = std::make_shared<MatrixDelayPolicy>(n, t.d);
    for (ProcessId i = 0; i < n; ++i) {
      for (ProcessId j = 0; j < n; ++j) {
        if (i < j) asym->set(i, j, t.min_delay());
      }
    }
    Adversary adversaries[] = {
        {"midpoint (d-u/2)", std::make_shared<FixedDelayPolicy>(t.d - t.u / 2)},
        {"all-max (d)", std::make_shared<FixedDelayPolicy>(t.d)},
        {"asymmetric", asym},
        {"uniform random", std::make_shared<UniformDelayPolicy>(t, 42 + n)},
    };
    Rng rng(1000 + static_cast<std::uint64_t>(n));
    std::vector<Tick> offsets;
    for (int i = 0; i < n; ++i) offsets.push_back(rng.uniform_tick(0, 5000));

    for (const Adversary& adv : adversaries) {
      const auto scaled = run_lundelius_lynch(t, offsets, adv.policy);
      const Tick achieved = worst_skew_scaled(scaled);
      const Tick bound = optimal_skew_scaled(n, t);
      table.add_row({std::to_string(n), adv.name, std::to_string(achieved),
                     std::to_string(bound),
                     format_ticks(achieved / (2 * n)),
                     achieved <= bound ? "yes" : "NO"});
      ok = ok && achieved <= bound;
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nThe asymmetric adversary attains the bound exactly -- (1-1/n)u is\n"
      "optimal (Lundelius & Lynch 1984) -- which is why the default bench\n"
      "configuration runs Algorithm 1 at eps = (1-1/4)*400us = 300us.\n");
  return finish(ok);
}
