// Shared configuration and helpers for the table/figure bench binaries.
//
// Default system: n = 4, d = 1000us, u = 400us, and eps set to the OPTIMAL
// skew (1 - 1/n) u = 300us (achievable per the clock-sync substrate; see
// bench_clocksync).  With these numbers eps <= d/3, so the paper's
// tightness conditions hold and the tables print matching LB/UB columns.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/format.h"
#include "harness/bounds_table.h"
#include "harness/experiment.h"
#include "common/parallel.h"

namespace linbound::bench {

/// Monotonic wall-clock for every bench timing: steady_clock only (never
/// system_clock, which can jump under NTP and corrupt a measurement).
inline double now_seconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch()).count();
}

/// Scoped phase timer: accumulate per-phase wall clock (e.g. simulate vs
/// check) into named buckets for the JSON breakdown.
class Stopwatch {
 public:
  Stopwatch() : start_(now_seconds()) {}
  double lap() {
    const double now = now_seconds();
    const double elapsed = now - start_;
    start_ = now;
    return elapsed;
  }

 private:
  double start_;
};

inline constexpr int kN = 4;

inline SystemTiming default_timing() {
  SystemTiming t;
  t.d = 1000;
  t.u = 400;
  t.eps = 300;  // optimal: (1 - 1/4) * 400
  return t;
}

inline SweepOptions default_sweep(Tick x, int jobs = 1) {
  SweepOptions o;
  o.n = kN;
  o.timing = default_timing();
  o.x = x;
  o.seeds = 6;
  o.jobs = jobs;
  return o;
}

/// Parse `--jobs N` / `--jobs=N` from argv (0 = one worker per hardware
/// thread; default 1 = serial).  Sweep results are byte-identical at any
/// value -- the flag trades wall-clock only.
inline int parse_jobs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) {
      return resolve_jobs(std::atoi(argv[i + 1]));
    }
    if (arg.rfind("--jobs=", 0) == 0) {
      return resolve_jobs(std::atoi(arg.c_str() + 7));
    }
  }
  return 1;
}

inline void print_header(const std::string& title) {
  std::printf("\n################################################################\n");
  std::printf("# %s\n", title.c_str());
  std::printf("################################################################\n\n");
}

inline void print_sweep_status(const char* label, const SweepResult& result) {
  std::printf("%-28s %3d runs, %s\n", label, result.runs,
              result.all_linearizable() ? "all linearizable"
                                        : "LINEARIZABILITY VIOLATED");
}

/// Common exit convention: 0 when every consistency expectation held.
inline int finish(bool ok) {
  std::printf("\n%s\n", ok ? "RESULT: PASS" : "RESULT: FAIL");
  return ok ? 0 : 1;
}

}  // namespace linbound::bench
