// Shared configuration and helpers for the table/figure bench binaries.
//
// Default system: n = 4, d = 1000us, u = 400us, and eps set to the OPTIMAL
// skew (1 - 1/n) u = 300us (achievable per the clock-sync substrate; see
// bench_clocksync).  With these numbers eps <= d/3, so the paper's
// tightness conditions hold and the tables print matching LB/UB columns.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/format.h"
#include "harness/bounds_table.h"
#include "harness/experiment.h"
#include "common/parallel.h"

namespace linbound::bench {

/// Hardware threads visible to this process; never 0 (unknown reports as 1).
inline unsigned hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? hw : 1;
}

/// Are wall-clock speedup assertions meaningful on this box?  A host with
/// fewer than 4 hardware threads cannot demonstrate parallel scaling, and
/// its timing is noisy enough that even structural (calendar-vs-heap)
/// ratios misfire -- a 1-thread CI box would keep recording ~1.0 "speedups"
/// as passing baselines.  Every perf binary (bench_perf, bench_throughput,
/// bench_shard) funnels its speedup gate through this, softening to
/// identity/bounds-only checks when it returns false; the measured
/// *_speedup values are still reported, with *_speedup_threads siblings so
/// a reader can tell a genuine ~1.0 regression from a thread-starved
/// measurement.  `jobs` is the worker count the gated phase actually used.
inline bool speedup_gates_enforced(int jobs = kMaxJobs) {
  return jobs >= 4 && hardware_threads() >= 4;
}

/// Monotonic wall-clock for every bench timing: steady_clock only (never
/// system_clock, which can jump under NTP and corrupt a measurement).
inline double now_seconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch()).count();
}

/// Scoped phase timer: accumulate per-phase wall clock (e.g. simulate vs
/// check) into named buckets for the JSON breakdown.
class Stopwatch {
 public:
  Stopwatch() : start_(now_seconds()) {}
  double lap() {
    const double now = now_seconds();
    const double elapsed = now - start_;
    start_ = now;
    return elapsed;
  }

 private:
  double start_;
};

/// Flat JSON report shared by the perf binaries: bench_perf and
/// bench_throughput both merge their keys into the one BENCH_perf.json
/// committed at the repo root (and uploaded by the perf CI workflow), so
/// either can run alone without clobbering the other's section.  The format
/// is deliberately minimal -- one `"key": value` pair per line, insertion
/// ordered -- which is what load() parses back.
class JsonReport {
 public:
  explicit JsonReport(std::string path) : path_(std::move(path)) { load(); }

  void set(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    put(key, buf);
  }
  void set(const std::string& key, std::uint64_t value) {
    put(key, std::to_string(value));
  }
  void set(const std::string& key, unsigned value) {
    put(key, std::to_string(value));
  }
  void set(const std::string& key, int value) { put(key, std::to_string(value)); }
  void set(const std::string& key, long long value) {
    put(key, std::to_string(value));
  }
  void set(const std::string& key, bool value) {
    put(key, value ? "true" : "false");
  }

  bool write() const {
    std::ofstream out(path_);
    if (!out) return false;
    out << "{\n";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      out << "  \"" << entries_[i].first << "\": " << entries_[i].second
          << (i + 1 < entries_.size() ? "," : "") << "\n";
    }
    out << "}\n";
    return bool(out);
  }

  const std::string& path() const { return path_; }

 private:
  void put(const std::string& key, std::string value) {
    for (auto& entry : entries_) {
      if (entry.first == key) {
        entry.second = std::move(value);
        return;
      }
    }
    entries_.emplace_back(key, std::move(value));
  }

  /// Best-effort parse of a previous report (our own flat format only);
  /// anything unparseable starts the report fresh.
  void load() {
    std::ifstream in(path_);
    if (!in) return;
    std::string line;
    while (std::getline(in, line)) {
      const auto open = line.find('"');
      if (open == std::string::npos) continue;
      const auto close = line.find('"', open + 1);
      if (close == std::string::npos) continue;
      const auto colon = line.find(':', close);
      if (colon == std::string::npos) continue;
      std::string value = line.substr(colon + 1);
      while (!value.empty() && (value.back() == ',' || value.back() == ' ' ||
                                value.back() == '\r')) {
        value.pop_back();
      }
      const auto start = value.find_first_not_of(' ');
      if (start == std::string::npos) continue;
      put(line.substr(open + 1, close - open - 1), value.substr(start));
    }
  }

  std::string path_;
  std::vector<std::pair<std::string, std::string>> entries_;
};

inline constexpr int kN = 4;

inline SystemTiming default_timing() {
  SystemTiming t;
  t.d = 1000;
  t.u = 400;
  t.eps = 300;  // optimal: (1 - 1/4) * 400
  return t;
}

inline SweepOptions default_sweep(Tick x, int jobs = 1) {
  SweepOptions o;
  o.n = kN;
  o.timing = default_timing();
  o.x = x;
  o.seeds = 6;
  o.jobs = jobs;
  return o;
}

/// Parse `--jobs N` / `--jobs=N` from argv (0 = one worker per hardware
/// thread; default 1 = serial).  Sweep results are byte-identical at any
/// value -- the flag trades wall-clock only.
inline int parse_jobs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) {
      return resolve_jobs(std::atoi(argv[i + 1]));
    }
    if (arg.rfind("--jobs=", 0) == 0) {
      return resolve_jobs(std::atoi(arg.c_str() + 7));
    }
  }
  return 1;
}

inline void print_header(const std::string& title) {
  std::printf("\n################################################################\n");
  std::printf("# %s\n", title.c_str());
  std::printf("################################################################\n\n");
}

inline void print_sweep_status(const char* label, const SweepResult& result) {
  std::printf("%-28s %3d runs, %s\n", label, result.runs,
              result.all_linearizable() ? "all linearizable"
                                        : "LINEARIZABILITY VIOLATED");
}

/// Common exit convention: 0 when every consistency expectation held.
inline int finish(bool ok) {
  std::printf("\n%s\n", ok ? "RESULT: PASS" : "RESULT: FAIL");
  return ok ? 0 : 1;
}

}  // namespace linbound::bench
