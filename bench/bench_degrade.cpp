// Graceful-degradation sweep: the mode-switching system (src/degrade) vs
// fixed-mode Algorithm 1 under storms that break the timing envelope.
//
// Three claims, checked per storm cell over the seeds:
//   1. the switching system answers every invoked operation -- the storms
//      all heal, so the degraded-mode liveness promise applies;
//   2. every switching run is linearizable, through every downgrade,
//      quorum era and re-upgrade;
//   3. at least one storm stalls a fixed-mode variant, so the comparison
//      column demonstrates the availability the supervisor buys.
//
// Merges mode_switch_latency_p99 and degraded_availability (plus their
// provenance: cell count, seeds, switch totals) into BENCH_perf.json.
#include "bench_common.h"
#include "core/workload.h"
#include "harness/mode_sweep.h"
#include "types/register_type.h"

using namespace linbound;
using namespace linbound::bench;

int main(int argc, char** argv) {
  print_header("Mode-switch sweep: graceful degradation vs fixed-mode Algorithm 1");
  const SystemTiming t = default_timing();

  ModeSweepOptions options;
  options.n = kN;
  options.timing = t;
  options.x = 0;
  options.seeds = 6;
  options.jobs = parse_jobs(argc, argv);

  const OpMix mix{2, 2, 2};
  auto model = std::make_shared<RegisterModel>();
  WorkloadFactory workload = [&](ProcessId, Rng& rng) {
    return random_register_ops(rng, 8, mix);
  };

  const ModeSweepResult result = run_mode_sweep(model, workload, options);

  std::printf("%s\n", result.table().c_str());
  for (const ModeCellResult& cell : result.cells) {
    for (const std::string& note : cell.notes) {
      std::printf("  %s\n", note.c_str());
    }
  }

  int downgrades = 0, upgrades = 0;
  std::size_t switch_samples = 0;
  for (const ModeCellResult& cell : result.cells) {
    downgrades += cell.downgrades;
    upgrades += cell.upgrades;
    switch_samples += cell.switch_latencies.size();
  }

  std::printf(
      "\nclaim 1 (switching answers everything):      %s\n"
      "claim 2 (switching always linearizable):     %s\n"
      "claim 3 (some storm stalls a fixed mode):    %s\n",
      result.switching_always_available() ? "holds" : "VIOLATED",
      result.switching_always_linearizable() ? "holds" : "VIOLATED",
      result.fixed_mode_stalled_somewhere() ? "holds" : "VIOLATED (vacuous)");

  const Tick p50 = result.switch_latency_percentile(50.0);
  const Tick p99 = result.switch_latency_percentile(99.0);

  JsonReport json("BENCH_perf.json");
  json.set("degraded_availability", result.degraded_availability());
  json.set("mode_switch_latency_p50",
           static_cast<long long>(p50 == kNoTime ? -1 : p50));
  json.set("mode_switch_latency_p99",
           static_cast<long long>(p99 == kNoTime ? -1 : p99));
  json.set("mode_switch_latency_samples",
           static_cast<std::uint64_t>(switch_samples));
  json.set("mode_sweep_cells", static_cast<int>(result.cells.size()));
  json.set("mode_sweep_seeds", options.seeds);
  json.set("mode_sweep_downgrades", downgrades);
  json.set("mode_sweep_upgrades", upgrades);
  json.set("mode_sweep_fixed_stalled", result.fixed_mode_stalled_somewhere());
  std::printf(json.write() ? "wrote %s\n" : "FAILED writing %s\n",
              json.path().c_str());

  return finish(result.ok() && result.fixed_mode_stalled_somewhere());
}
