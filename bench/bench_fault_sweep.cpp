// Robustness sweep: Algorithm 1 -- stock and hardened with the reliable
// link of core/hardened_replica.h -- under injected message loss,
// duplication and delay spikes (sim/fault_injection.h).
//
// Three claims, checked per fault cell over the seeds:
//   1. hardened stays linearizable (the link restores the model
//      assumptions the faults break, at the cost of waits computed from
//      the widened effective delivery bound d_eff);
//   2. stock Algorithm 1 is flagged under message loss -- the paper's
//      reliable-delivery assumption is load-bearing;
//   3. every failed run is attributed by the assumption monitor to a
//      concrete violated assumption (no unexplained failures).
#include "bench_common.h"
#include "core/workload.h"
#include "harness/fault_sweep.h"
#include "types/register_type.h"

using namespace linbound;
using namespace linbound::bench;

int main(int argc, char** argv) {
  print_header("Fault sweep: stock vs hardened Algorithm 1 under injected faults");
  const SystemTiming t = default_timing();

  FaultSweepOptions options;
  options.n = kN;
  options.timing = t;
  options.x = 0;
  options.seeds = 6;
  options.jobs = parse_jobs(argc, argv);

  const OpMix mix{2, 2, 2};
  auto model = std::make_shared<RegisterModel>();
  WorkloadFactory workload = [&](ProcessId, Rng& rng) {
    return random_register_ops(rng, 10, mix);
  };

  const FaultSweepResult result = run_fault_sweep(model, workload, options);

  std::printf("%s\n", result.table().c_str());

  const HardenedParams hardened = options.hardened;
  std::printf(
      "hardened link: first timeout %lld, max %d attempts, backoff x%d;\n"
      "effective delivery bound d_eff = %lld (vs d = %lld) -- the price of\n"
      "loss tolerance, visible in the worst-latency column.\n\n",
      static_cast<long long>(hardened.first_timeout_for(t)),
      hardened.max_attempts, hardened.backoff,
      static_cast<long long>(hardened.effective_d(t)),
      static_cast<long long>(t.d));

  for (const FaultCellResult& cell : result.cells) {
    for (const std::string& note : cell.notes) {
      std::printf("  %s\n", note.c_str());
    }
  }

  std::printf(
      "\nclaim 1 (hardened always linearizable):      %s\n"
      "claim 2 (stock flagged under message loss):  %s\n"
      "claim 3 (every failure attributed):          %s\n",
      result.hardened_all_linearizable() ? "holds" : "VIOLATED",
      result.unhardened_flagged_under_drops() ? "holds" : "VIOLATED",
      result.all_failures_attributed() ? "holds" : "VIOLATED");

  return finish(result.ok());
}
