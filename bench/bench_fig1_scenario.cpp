// Reproduces Figure 1: "Operation Time and Linearizability".
//
//   (a) a read that responds too fast misses a completed write(1) and
//       returns the stale 0 -- not linearizable;
//   (b) lengthening the *write* makes it overlap the read, legalizing the
//       stale value;
//   (c) lengthening the *read* (the compliant d+eps-X wait) lets it learn
//       about write(1) and return 1.
#include "bench_common.h"
#include "shift/proof_scenarios.h"
#include "types/register_type.h"

using namespace linbound;
using namespace linbound::bench;

namespace {

ScenarioOutcome run_chain(const std::shared_ptr<const ObjectModel>& model,
                          const SystemTiming& t, Tick write_latency,
                          Tick read_latency, const AlgorithmDelays& algo,
                          const char* name) {
  const Scenario s = chained_schedule(
      name, t, 3,
      {{0, reg::write(0), write_latency},
       {0, reg::write(1), write_latency},
       {1, reg::read(), read_latency}},
      10000);
  return run_scenario(model, s, algo);
}

}  // namespace

int main() {
  print_header("Figure 1: operation time vs linearizability (register)");
  const SystemTiming t = default_timing();
  auto model = std::make_shared<RegisterModel>();
  const AlgorithmDelays standard = AlgorithmDelays::standard(t, 0);
  bool ok = true;

  // (a) eager read: responds before any broadcast can arrive.
  AlgorithmDelays eager_read = standard;
  eager_read.aop_respond = t.min_delay() - 2;
  const auto a = run_chain(model, t, standard.mop_ack, eager_read.aop_respond,
                           eager_read, "fig1a");
  std::printf("(a) |write|=%lldus (compliant), |read|=%lldus (too fast)\n",
              static_cast<long long>(standard.mop_ack),
              static_cast<long long>(eager_read.aop_respond));
  std::printf("    read returned %s; linearizable: %s   <- the paper's violation\n\n",
              a.history.ops().back().ret.to_string().c_str(),
              a.linearizable.ok ? "YES" : "NO");
  ok = ok && !a.linearizable.ok;

  // (b) longer write: write(1) slowed so it overlaps the (still too fast)
  // read; write(0) ∘ read(0) ∘ write(1) becomes a legal permutation.  The
  // chain deliberately under-estimates write(1)'s latency so the read is
  // invoked while write(1) is still pending.
  AlgorithmDelays slow_write = eager_read;
  slow_write.mop_ack = 2 * t.d;  // write(1) still pending when read returns
  const Scenario fig1b = chained_schedule(
      "fig1b", t, 3,
      {{0, reg::write(0), slow_write.mop_ack},
       {0, reg::write(1), /*assumed_latency=*/100},  // read starts mid-write
       {1, reg::read(), slow_write.aop_respond}},
      10000);
  const auto b = run_scenario(model, fig1b, slow_write);
  std::printf("(b) |write|=%lldus (lengthened), |read|=%lldus\n",
              static_cast<long long>(slow_write.mop_ack),
              static_cast<long long>(slow_write.aop_respond));
  std::printf("    read returned %s; linearizable: %s   <- overlap legalizes it\n\n",
              b.history.ops().back().ret.to_string().c_str(),
              b.linearizable.ok ? "YES" : "NO");
  ok = ok && b.linearizable.ok;

  // (c) longer read: the compliant d+eps-X wait.
  const auto c = run_chain(model, t, standard.mop_ack, standard.aop_respond,
                           standard, "fig1c");
  std::printf("(c) |write|=%lldus, |read|=%lldus (compliant d+eps-X)\n",
              static_cast<long long>(standard.mop_ack),
              static_cast<long long>(standard.aop_respond));
  std::printf("    read returned %s; linearizable: %s   <- learns about write(1)\n",
              c.history.ops().back().ret.to_string().c_str(),
              c.linearizable.ok ? "YES" : "NO");
  ok = ok && c.linearizable.ok &&
       c.history.ops().back().ret == Value(1);

  return finish(ok);
}
