// Reproduces Figure 3: "Example of Standard Time Shift".
//
// Two sequential writes by p_i followed by a read(1) by p_j.  Shifting
// p_i's steps later by 2x leaves every process's local view untouched (the
// read still returns 1) but reorders the writes against real time.  The
// shift is only admissible while 2x <= u -- which is exactly why the
// standard technique cannot push the write lower bound past u/2, motivating
// the modified shift (Fig. 4 / Chapter IV.B).
#include "bench_common.h"
#include "shift/proof_scenarios.h"
#include "shift/shift.h"
#include "types/register_type.h"

using namespace linbound;
using namespace linbound::bench;

int main() {
  print_header("Figure 3: standard time shift on write-write-read");
  const SystemTiming t = default_timing();
  auto model = std::make_shared<RegisterModel>();
  const AlgorithmDelays algo = AlgorithmDelays::standard(t, 0);
  bool ok = true;

  // Base run: delays at the extremes that give the shift maximal room --
  // shifting p_i later decreases d_{i,j} (start at d) and increases
  // d_{j,i} (start at d-u), so the shifted run stays admissible exactly
  // while the shift amount 2x <= u.
  Scenario base;
  base.name = "fig3-base";
  base.n = 2;
  base.timing = t;
  // p_i starts with its clock eps ahead: the thesis's model also bounds
  // clock skew, so the shift must consume slack on that axis too (the
  // original Fig. 3 example comes from the unbounded-skew setting of [1]).
  base.clock_offsets = {t.eps, 0};
  auto base_matrix = std::make_shared<MatrixDelayPolicy>(2, t.d);
  base_matrix->set(1, 0, t.d - t.u);
  base.delays = base_matrix;
  base.invocations = {{10000, 0, reg::write(0)},
                      {10000 + algo.mop_ack + 1, 0, reg::write(1)},
                      {50000, 1, reg::read()}};
  const ScenarioOutcome before = run_scenario(model, base, algo);
  std::printf("base run:    read -> %s, linearizable: %s, admissible: %s\n",
              before.history.ops().back().ret.to_string().c_str(),
              before.linearizable.ok ? "YES" : "NO",
              before.admissibility.admissible ? "YES" : "NO");
  ok = ok && before.linearizable.ok && before.admissibility.admissible;

  TextTable table({"shift 2x of p_i", "new d_{i,j}", "admissible",
                   "read returns", "local views changed"});
  for (Tick two_x : {t.u / 2, t.u, t.u + 100}) {
    const std::vector<Tick> x = {two_x, 0};
    const Scenario shifted = shift_scenario(base, x);
    const ScenarioOutcome after = run_scenario(model, shifted, algo);
    const auto* matrix = dynamic_cast<const MatrixDelayPolicy*>(shifted.delays.get());
    const bool admissible = after.admissibility.admissible;
    const bool same_returns =
        after.history.ops().back().ret == before.history.ops().back().ret;
    table.add_row({format_ticks(two_x), format_ticks(matrix->get(0, 1)),
                   admissible ? "yes" : "NO (delay > d)",
                   after.history.ops().back().ret.to_string(),
                   same_returns ? "no (shift invisible)" : "YES (bug!)"});
    ok = ok && same_returns;
    // The shift stays admissible exactly while 2x <= u.
    ok = ok && (admissible == (two_x <= t.u));
  }
  std::printf("\n%s", table.render().c_str());
  std::printf(
      "\nThe local views are shift-invariant in every case; admissibility is\n"
      "lost once the shift exceeds u, capping what the standard technique\n"
      "can prove and motivating the modified shift (bench_fig4).\n");

  return finish(ok);
}
