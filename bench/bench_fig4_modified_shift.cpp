// Reproduces Figure 4 and Lemma B.1: "Standard Time Shift and Modified
// Time Shift" -- the chop-and-extend construction.
//
// Part (a): midpoint delays shifted by u/2 stay admissible (standard).
// Part (b): all-d delays shifted by u produce one invalid delay d+u; the
// chop cuts each process's view at t* / t* + D_{j,k}, and the audited
// chopped run is admissible again.  We execute a real Algorithm-1 run with
// the invalid delays, chop its recorded trace, and machine-check every
// clause of the lemma.
#include "bench_common.h"
#include "core/replica_algorithm.h"
#include "shift/scenario.h"
#include "shift/shift.h"
#include "sim/simulator.h"
#include "types/register_type.h"

using namespace linbound;
using namespace linbound::bench;

int main() {
  print_header("Figure 4 / Lemma B.1: modified time shift (chop + extend)");
  const SystemTiming t = default_timing();
  bool ok = true;

  // ---- Part (a): the standard shift staying valid.
  {
    MatrixDelayPolicy m(2, t.d - t.u / 2);
    const MatrixDelayPolicy shifted = m.shifted({0, t.u / 2});
    std::printf("(a) midpoint delays shifted by u/2: d'_{i,j}=%lldus, "
                "d'_{j,i}=%lldus -> %s\n\n",
                static_cast<long long>(shifted.get(0, 1)),
                static_cast<long long>(shifted.get(1, 0)),
                shifted.invalid_entries(t).empty() ? "both admissible"
                                                   : "INVALID");
    ok = ok && shifted.invalid_entries(t).empty();
  }

  // ---- Part (b): over-shift, chop, audit.  The base run keeps p1's clock
  // eps ahead and the p2->p1 delay at d-u, so after the u-shift exactly one
  // delay (0->1, now d+u) is invalid and the clocks stay within eps --
  // Lemma B.1's single-invalid-delay hypothesis.
  MatrixDelayPolicy m(3, t.d);
  m.set(2, 1, t.d - t.u);
  const std::vector<Tick> shift = {0, t.u, 0};
  const MatrixDelayPolicy shifted = m.shifted(shift);
  const auto invalid = shifted.invalid_entries(t);
  std::printf("(b) all-d delays, p1 shifted by u: d'_{0,1} = %lldus\n",
              static_cast<long long>(shifted.get(0, 1)));
  std::printf("    invalid entries after shift: %zu (expected 1)\n",
              invalid.size());
  ok = ok && invalid.size() == 1;

  // Execute a real run under the invalid matrix: two concurrent rmw's.
  auto model = std::make_shared<RegisterModel>();
  SimConfig config;
  config.timing = t;
  config.clock_offsets = shifted_offsets({0, t.eps, 0}, shift);
  config.delays = std::make_shared<MatrixDelayPolicy>(shifted);
  Simulator sim(std::move(config));
  const AlgorithmDelays algo = AlgorithmDelays::standard(t, 0);
  for (int i = 0; i < 3; ++i) {
    sim.add_process(std::make_unique<ReplicaProcess>(model, algo));
  }
  const Tick t0 = 10000;
  sim.invoke_at(t0, 0, reg::rmw(1));
  sim.invoke_at(t0 + t.u, 1, reg::rmw(2));
  sim.start();
  sim.run();
  std::printf("    executed run: %zu messages, admissible as-is: %s\n",
              sim.trace().messages.size(),
              sim.trace().audit().admissible ? "yes" : "no (as expected)");
  ok = ok && !sim.trace().audit().admissible;

  // First 0->1 message in the trace is the first send across the invalid
  // edge; chop with delta = d - u.
  Tick first_send = kNoTime;
  for (const MessageRecord& msg : sim.trace().messages) {
    if (msg.from == 0 && msg.to == 1) {
      first_send = msg.send_time;
      break;
    }
  }
  const Tick delta = t.d - t.u;
  const ChopSpec spec = compute_chop(shifted, 0, 1, first_send, delta);
  std::printf("    chop: first 0->1 send at %lldus, t* = %lldus, view ends = "
              "[%lldus, %lldus, %lldus]\n",
              static_cast<long long>(first_send),
              static_cast<long long>(spec.t_star),
              static_cast<long long>(spec.view_end[0]),
              static_cast<long long>(spec.view_end[1]),
              static_cast<long long>(spec.view_end[2]));

  const Trace chopped = chop_trace(sim.trace(), spec.view_end);
  const AdmissibilityReport report = audit_chopped(chopped, spec.view_end);
  std::printf("    chopped run: %zu messages kept, Lemma B.1 audit: %s\n",
              chopped.messages.size(), report.admissible ? "ADMISSIBLE" : "VIOLATED");
  for (const std::string& v : report.violations) {
    std::printf("      violation: %s\n", v.c_str());
  }
  ok = ok && report.admissible;

  std::printf(
      "\nThe over-shifted run (shift u > what the standard technique allows)\n"
      "becomes admissible after the chop -- the mechanism that buys the\n"
      "d+min{eps,u,d/3} lower bound of Theorem C.1 its extra m over d.\n");

  return finish(ok);
}
