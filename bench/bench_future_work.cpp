// Chapter VII, executable: the thesis closes with two model extensions it
// leaves open -- bounded clock *drift* and *failures*.  This bench explores
// both against Algorithm 1.
//
// Drift: with rates within +-rho, pairwise clock divergence grows by
// 2*rho*T over a run of length T.  The uncompensated algorithm (built for
// skew eps) starts violating once accumulated divergence passes eps; the
// widened-eps compensation (eps_eff = eps + 2*rho*T) restores safety at
// proportionally higher mutator latency -- quantifying the cost of drift
// the thesis asks about.
//
// Crashes: Algorithm 1's waits are timer-driven (no acks), so survivors
// keep completing operations and stay linearizable when a replica dies --
// while both folklore baselines stall as soon as their special process
// does.
#include "bench_common.h"
#include "checker/lin_checker.h"
#include "core/synced_replica.h"
#include "core/system.h"
#include "types/register_type.h"

using namespace linbound;
using namespace linbound::bench;

namespace {

struct DriftOutcome {
  bool completed = false;
  bool linearizable = false;
  Tick mutator_ack = 0;
};

/// Two real-time-ordered writes + probe, with p0's clock drifting, invoked
/// around real time `when`; returns the verdict under `algo`.
DriftOutcome run_drift_probe(std::int64_t ppm, Tick when,
                             const AlgorithmDelays& algo) {
  auto model = std::make_shared<RegisterModel>();
  SimConfig config;
  config.timing = default_timing();
  config.clock_drift_ppm = {ppm, 0, 0};
  Simulator sim(std::move(config));
  for (int i = 0; i < 3; ++i) {
    sim.add_process(std::make_unique<ReplicaProcess>(model, algo));
  }
  sim.invoke_at(when, 0, reg::write(1));
  sim.invoke_at(when + algo.mop_ack * 2 + 100, 1, reg::write(2));
  sim.invoke_at(when * 3 + 100000, 2, reg::read());
  sim.start();
  DriftOutcome out;
  out.completed = sim.run();
  out.mutator_ack = algo.mop_ack;
  if (out.completed) {
    out.linearizable =
        check_linearizable(*model, History::from_trace(sim.trace())).ok;
  }
  return out;
}

}  // namespace

int main() {
  print_header("Chapter VII future work: drift and crash failures");
  const SystemTiming t = default_timing();
  bool ok = true;

  // ---------------- Drift exploration ----------------
  std::printf("drift: p0's clock fast by rho; writes at real time T; does the\n"
              "accumulated divergence rho*T break the eps=%lldus algorithm?\n\n",
              static_cast<long long>(t.eps));
  TextTable drift_table({"rho (ppm)", "T", "rho*T (us)", "uncompensated",
                         "compensated (ack cost)"});
  const AlgorithmDelays standard = AlgorithmDelays::standard(t, 0);
  for (const auto& [ppm, when] : std::initializer_list<std::pair<std::int64_t, Tick>>{
           {100, 100000},      // 10us divergence << eps: fine
           {1000, 100000},     // 100us: at the eps boundary
           {10000, 100000},    // 1000us >> eps: breaks
           {10000, 1000000},   // 10000us: breaks badly
       }) {
    const DriftOutcome plain = run_drift_probe(ppm, when, standard);
    const AlgorithmDelays comp =
        AlgorithmDelays::drift_compensated(t, 0, ppm, /*horizon=*/when * 3 + 200000);
    const DriftOutcome fixed = run_drift_probe(ppm, when, comp);
    char cost[48];
    std::snprintf(cost, sizeof(cost), "%s (ack %lldus)",
                  fixed.linearizable ? "linearizable" : "VIOLATES",
                  static_cast<long long>(fixed.mutator_ack));
    drift_table.add_row({std::to_string(ppm), std::to_string(when),
                         std::to_string(ppm * when / 1000000),
                         plain.linearizable ? "linearizable" : "VIOLATES", cost});
    ok = ok && fixed.linearizable;
    if (ppm * when / 1000000 > t.eps) ok = ok && !plain.linearizable;
    if (ppm * when / 1000000 < t.eps / 2) ok = ok && plain.linearizable;
  }
  std::printf("%s", drift_table.render().c_str());
  std::printf(
      "\nThe compensated ack grows as eps + 2*rho*horizon: drift is survivable\n"
      "over a bounded horizon at linear latency cost; unbounded horizons need\n"
      "resynchronization.  The managed deployment below runs the\n"
      "Lundelius-Lynch substrate in-band every R ticks, so eps_eff depends on\n"
      "R, not on the horizon:\n\n");

  // ---------------- Managed resynchronization ----------------
  {
    const std::int64_t rho = 2000;
    const Tick resync = 50000;
    const Tick eps_eff = synced_eps_bound(t, 4, rho, resync);
    SystemTiming managed = t;
    managed.eps = eps_eff;
    auto model = std::make_shared<RegisterModel>();
    SimConfig config;
    config.timing = managed;
    config.clock_drift_ppm = {2000, -2000, 1000, -500};
    Simulator sim(std::move(config));
    const AlgorithmDelays algo = AlgorithmDelays::standard(managed, 0);
    for (int i = 0; i < 4; ++i) {
      sim.add_process(std::make_unique<SyncedReplicaProcess>(model, algo, resync));
    }
    // Writes spread over 40 resync periods (an order of magnitude past any
    // fixed-horizon compensation at this ack cost), then a read.
    const Tick horizon = resync * 40;
    for (int k = 0; k < 20; ++k) {
      sim.invoke_at(10000 + k * (horizon / 20), k % 4, reg::write(k));
    }
    sim.invoke_at(horizon + 50000, 3, reg::read());
    sim.start();
    sim.run_until(horizon + 200000);
    const History h = History::from_trace(sim.trace());
    const bool lin = check_linearizable(*model, h).ok;
    std::printf("managed resync (R=%lld, rho=%lld ppm): eps_eff = %lldus, "
                "ack = %lldus,\n  %zu ops over %lld ticks (%.0fx any fixed "
                "horizon at this ack): %s\n",
                static_cast<long long>(resync), static_cast<long long>(rho),
                static_cast<long long>(eps_eff),
                static_cast<long long>(algo.mop_ack), h.size(),
                static_cast<long long>(horizon),
                static_cast<double>(horizon) / resync,
                lin ? "linearizable" : "VIOLATES");
    ok = ok && lin;
  }
  std::printf("\n");

  // ---------------- Crash availability ----------------
  std::printf("crashes: kill one process at t=5000, then drive survivors.\n\n");
  TextTable crash_table(
      {"algorithm", "crashed role", "survivor ops completed", "linearizable"});

  auto drive_survivors = [&](ObjectSystem& system, ProcessId victim) {
    system.sim().crash_at(5000, victim);
    // Each survivor writes, then reads once the write responds (a stalled
    // write therefore also counts its read as never completed).
    const int token_count = 6;
    system.sim().set_response_hook([&system](const OperationRecord& rec) {
      if (rec.op.code == RegisterModel::kWrite) {
        system.sim().invoke_at(system.sim().now() + 500, rec.proc, reg::read());
      }
    });
    for (ProcessId p = 0; p < 4; ++p) {
      if (p == victim) continue;
      system.sim().invoke_at(6000 + 40 * p, p, reg::write(p + 1));
    }
    system.sim().start();
    system.sim().run();
    auto [history, pending] = history_with_pending(system.sim().trace());
    const bool lin = check_linearizable_with_pending(
        *std::make_shared<RegisterModel>(), history, pending).ok;
    char completed[32];
    std::snprintf(completed, sizeof(completed), "%zu / %d", history.size(),
                  token_count);
    return std::pair<std::string, bool>(completed, lin);
  };

  {
    auto model = std::make_shared<RegisterModel>();
    SystemOptions o;
    o.n = 4;
    o.timing = t;
    ReplicaSystem system(model, o);
    auto [completed, lin] = drive_survivors(system, /*victim=*/1);
    crash_table.add_row({"Algorithm 1", "any replica", completed,
                         lin ? "yes" : "NO"});
    ok = ok && lin && completed == "6 / 6";
  }
  {
    auto model = std::make_shared<RegisterModel>();
    SystemOptions o;
    o.n = 4;
    o.timing = t;
    CentralizedSystem system(model, o);
    auto [completed, lin] = drive_survivors(system, /*victim=*/0);  // coordinator
    crash_table.add_row({"centralized", "coordinator", completed,
                         lin ? "yes" : "NO"});
    ok = ok && completed == "0 / 6";
  }
  {
    auto model = std::make_shared<RegisterModel>();
    SystemOptions o;
    o.n = 4;
    o.timing = t;
    TobSystem system(model, o);
    auto [completed, lin] = drive_survivors(system, /*victim=*/0);  // sequencer
    crash_table.add_row({"total-order broadcast", "sequencer", completed,
                         lin ? "yes" : "NO"});
    ok = ok && completed == "0 / 6";
  }
  std::printf("%s", crash_table.render().c_str());
  std::printf(
      "\nAlgorithm 1 is naturally wait-free under crash-stop failures: every\n"
      "wait is a local timer, so survivors never block on a dead process --\n"
      "an availability edge over both 2d baselines that the latency tables\n"
      "do not show.\n");

  return finish(ok);
}
