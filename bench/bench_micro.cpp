// Google-benchmark microbenchmarks of the infrastructure itself: simulator
// event throughput, Algorithm 1 end-to-end runs, the linearizability
// checker, and the To_Execute heap.
#include <benchmark/benchmark.h>

#include "checker/lin_checker.h"
#include "core/driver.h"
#include "core/system.h"
#include "core/to_execute.h"
#include "core/workload.h"
#include "types/queue_type.h"
#include "types/register_type.h"

namespace linbound {
namespace {

SystemOptions options(int n) {
  SystemOptions o;
  o.n = n;
  o.timing = SystemTiming{1000, 400, 300};
  return o;
}

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto model = std::make_shared<RegisterModel>();
    SystemOptions o = options(4);
    o.delays = std::make_shared<UniformDelayPolicy>(o.timing, 7);
    ReplicaSystem system(model, o);
    std::vector<ClientScript> scripts;
    Rng rng(11);
    for (int p = 0; p < 4; ++p) {
      scripts.push_back({p, random_register_ops(rng, 50, OpMix{1, 2, 1}), 1000, 0});
    }
    WorkloadDriver driver(system.sim(), std::move(scripts));
    driver.arm();
    state.ResumeTiming();
    system.run_to_completion();
    state.counters["events"] = static_cast<double>(system.sim().events_processed());
  }
}
BENCHMARK(BM_SimulatorEventThroughput)->Unit(benchmark::kMillisecond);

void BM_ReplicaRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto model = std::make_shared<QueueModel>();
    ReplicaSystem system(model, options(n));
    std::vector<ClientScript> scripts;
    Rng rng(5);
    for (int p = 0; p < n; ++p) {
      scripts.push_back({p, random_queue_ops(rng, 20, OpMix{1, 2, 1}), 1000, 0});
    }
    WorkloadDriver driver(system.sim(), std::move(scripts));
    driver.arm();
    state.ResumeTiming();
    benchmark::DoNotOptimize(system.run_to_completion());
  }
}
BENCHMARK(BM_ReplicaRun)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_LinearizabilityChecker(benchmark::State& state) {
  const int per_proc = static_cast<int>(state.range(0));
  auto model = std::make_shared<RegisterModel>();
  ReplicaSystem system(model, options(4));
  std::vector<ClientScript> scripts;
  Rng rng(3);
  for (int p = 0; p < 4; ++p) {
    scripts.push_back(
        {p, random_register_ops(rng, per_proc, OpMix{2, 2, 1}), 1000, 0});
  }
  WorkloadDriver driver(system.sim(), std::move(scripts));
  driver.arm();
  const History history = system.run_to_completion();
  for (auto _ : state) {
    auto result = check_linearizable(*model, history);
    benchmark::DoNotOptimize(result.ok);
    state.counters["states"] = static_cast<double>(result.states_explored);
  }
  state.counters["ops"] = static_cast<double>(history.size());
}
BENCHMARK(BM_LinearizabilityChecker)->Arg(10)->Arg(25)->Arg(50);

void BM_ToExecuteHeap(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(99);
  std::vector<PendingOp> entries;
  entries.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    entries.push_back(PendingOp{
        Timestamp{rng.uniform_tick(0, 1 << 20), static_cast<ProcessId>(i % 16)},
        reg::write(i), -1});
  }
  for (auto _ : state) {
    ToExecuteQueue q;
    for (const PendingOp& e : entries) q.add(e);
    while (!q.empty()) benchmark::DoNotOptimize(q.extract_min());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ToExecuteHeap)->Arg(64)->Arg(1024)->Arg(16384);

}  // namespace
}  // namespace linbound

BENCHMARK_MAIN();
