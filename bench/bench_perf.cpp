// Performance benchmark for the hot paths: linearizability-checker
// throughput (COW snapshots + cached fingerprints + bucketed memo),
// segmented / parallel checker scaling (checker/segmented_checker.cpp),
// simulator event throughput (typed events + payload arena), and sweep
// wall-clock serial vs --jobs N (common/parallel.h).
//
// Prints a human-readable report, writes machine-readable numbers to
// BENCH_perf.json, and exits 0 only when
//   * the parallel fault and churn sweeps are byte-identical to their
//     serial runs (tables and aggregate counters compared verbatim),
//   * the segmented / parallel checker returns verdict, witness and
//     explanation identical to the serial seed checker at every jobs value
//     tried, and
//   * with jobs >= 4 available, at least one sweep speeds up >= 2x and the
//     parallel checker speeds up >= 2x on the wide-frontier history.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "checker/lin_checker.h"
#include "core/driver.h"
#include "core/workload.h"
#include "harness/churn_sweep.h"
#include "harness/fault_sweep.h"
#include "types/queue_type.h"
#include "types/register_type.h"

using namespace linbound;
using namespace linbound::bench;

namespace {

/// One deterministic Algorithm 1 run under a uniform-random admissible
/// schedule; the shared workload shape for the checker and simulator
/// measurements.
struct RunProduct {
  History history;
  std::size_t events = 0;
};

RunProduct one_run(const std::shared_ptr<const ObjectModel>& model,
                   std::uint64_t seed) {
  const SystemTiming t = default_timing();
  Rng rng(seed);

  SystemOptions sys;
  sys.n = kN;
  sys.timing = t;
  sys.x = 0;
  sys.delays = std::make_shared<UniformDelayPolicy>(t, rng.next_u64());

  ReplicaSystem system(model, sys);

  const OpMix mix{2, 2, 2};
  std::vector<ClientScript> scripts;
  for (int pid = 0; pid < kN; ++pid) {
    Rng client_rng = rng.split(static_cast<std::uint64_t>(pid));
    scripts.push_back(ClientScript{static_cast<ProcessId>(pid),
                                   random_register_ops(client_rng, 10, mix),
                                   /*start_time=*/1000,
                                   /*think_time=*/0});
  }
  WorkloadDriver driver(system.sim(), std::move(scripts));
  driver.arm();

  RunProduct out;
  out.history = system.run_to_completion();
  out.events = system.sim().events_processed();
  return out;
}

struct SweepTimings {
  double serial_s = 0;
  double parallel_s = 0;
  bool identical = false;
  double speedup() const {
    return parallel_s > 0 ? serial_s / parallel_s : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  print_header("bench_perf: checker throughput, simulator throughput, sweep scaling");

  int jobs = parse_jobs(argc, argv);
  if (jobs <= 1) jobs = resolve_jobs(0);  // default: one per hardware thread
  std::printf("parallel sweeps use --jobs %d (hardware threads: %u)\n\n", jobs,
              std::thread::hardware_concurrency());

  auto model = std::make_shared<RegisterModel>();

  // --- 1. Linearizability-checker throughput -------------------------------
  constexpr int kHistories = 8;
  constexpr int kCheckRounds = 40;
  std::vector<History> histories;
  std::size_t ops_per_round = 0;
  const double simulate_t0 = now_seconds();
  for (int s = 0; s < kHistories; ++s) {
    RunProduct run = one_run(model, 0xbe9cful + static_cast<std::uint64_t>(s));
    ops_per_round += run.history.ops().size();
    histories.push_back(std::move(run.history));
  }
  const double simulate_s = now_seconds() - simulate_t0;
  std::size_t states = 0;
  std::size_t memo_hits = 0;
  bool all_ok = true;
  const double check_t0 = now_seconds();
  for (int round = 0; round < kCheckRounds; ++round) {
    for (const History& h : histories) {
      const CheckResult check = check_linearizable(*model, h);
      all_ok = all_ok && check.ok;
      states += check.states_explored;
      memo_hits += check.memo_hits;
    }
  }
  const double check_s = now_seconds() - check_t0;
  const double checks_per_s = kCheckRounds * kHistories / check_s;
  const double ops_per_s = kCheckRounds * static_cast<double>(ops_per_round) / check_s;
  const double memo_rate =
      states + memo_hits ? static_cast<double>(memo_hits) / (states + memo_hits) : 0.0;
  std::printf("checker:   %7.0f histories/s, %8.0f ops/s, memo hit rate %.2f%%%s\n",
              checks_per_s, ops_per_s, 100.0 * memo_rate,
              all_ok ? "" : "  [UNEXPECTED VIOLATION]");
  std::printf("phases:    simulate %.3fs, check %.3fs\n", simulate_s, check_s);

  // --- 2. Segmented / parallel checker scaling -----------------------------
  // Wide-frontier history: `width` single-enqueue processes, all pairwise
  // concurrent with distinct values (every interleaving is a distinct queue
  // state, so memoization cannot collapse the tree), then a dequeue of a
  // value never enqueued.  Non-linearizable: the search must exhaust all
  // width! interleavings -- the shape the parallel subtree fan-out targets.
  auto queue = std::make_shared<QueueModel>();
  std::vector<HistoryOp> wide_ops;
  constexpr int kWideWidth = 8;
  for (int p = 0; p < kWideWidth; ++p) {
    wide_ops.push_back({static_cast<ProcessId>(p), queue_ops::enqueue(100 + p),
                        Value::unit(), 0, 1});
  }
  wide_ops.push_back({static_cast<ProcessId>(kWideWidth), queue_ops::dequeue(),
                      Value(999), 2, 3});
  const History wide(std::move(wide_ops));

  // Multi-segment history: bursts of concurrent distinct enqueues, each
  // burst strictly after the previous one -- one quiescent cut per burst.
  std::vector<HistoryOp> seg_ops;
  constexpr int kSegBursts = 24;
  constexpr int kSegWidth = 5;
  for (int s = 0; s < kSegBursts; ++s) {
    const Tick t0 = s * 10;
    for (int p = 0; p < kSegWidth; ++p) {
      seg_ops.push_back({static_cast<ProcessId>(p),
                         queue_ops::enqueue(s * 100 + p), Value::unit(), t0,
                         t0 + 1});
    }
  }
  const History multi(std::move(seg_ops));

  auto same_output = [](const CheckResult& a, const CheckResult& b) {
    return a.ok == b.ok && a.witness == b.witness &&
           a.explanation == b.explanation;
  };
  CheckOptions seg_serial_opts;
  seg_serial_opts.jobs = 1;
  CheckOptions par2_opts;
  par2_opts.jobs = 2;
  // The parallel measurement must actually exercise the fan-out machinery:
  // on a 1-thread box resolve_jobs(0) is 1, Walker never splits, and the
  // committed baseline records parallel_tasks = 0 -- a measurement of the
  // serial path labeled parallel.  Force >= 2 workers here (wall-clock
  // speedup stays waived on such boxes; task-splitting is structural and
  // asserted below on every box).
  const int checker_jobs = std::max(jobs, 2);
  CheckOptions par_opts;
  par_opts.jobs = checker_jobs;

  double wide_seed_s = 0, wide_serial_s = 0, wide_par_s = 0;
  Stopwatch wide_sw;
  const CheckResult wide_seed = check_linearizable(*queue, wide);
  wide_seed_s = wide_sw.lap();
  const CheckResult wide_serial = check_linearizable(*queue, wide, seg_serial_opts);
  wide_serial_s = wide_sw.lap();
  const CheckResult wide_par = check_linearizable(*queue, wide, par_opts);
  wide_par_s = wide_sw.lap();
  const CheckResult wide_par2 = check_linearizable(*queue, wide, par2_opts);
  const bool wide_identical = same_output(wide_seed, wide_serial) &&
                              same_output(wide_seed, wide_par) &&
                              same_output(wide_seed, wide_par2);
  const double checker_speedup =
      wide_par_s > 0 ? wide_seed_s / wide_par_s : 0.0;
  std::printf(
      "checker scaling (wide): seed %.3fs, segmented serial %.3fs, "
      "--jobs %d %.3fs  (%.2fx, %zu tasks, %s)\n",
      wide_seed_s, wide_serial_s, checker_jobs, wide_par_s, checker_speedup,
      wide_par.parallel_tasks,
      wide_identical ? "identical output" : "OUTPUT DIVERGED");
  // With >= 2 workers the wide frontier must split; 0 tasks would mean the
  // "parallel" column re-measured the serial path.
  const bool parallel_split_ok = wide_par.parallel_tasks > 0;
  if (!parallel_split_ok) {
    std::printf("checker scaling: NO PARALLEL TASKS SPAWNED at --jobs %d\n",
                checker_jobs);
  }

  Stopwatch multi_sw;
  const CheckResult multi_seed = check_linearizable(*queue, multi);
  const double multi_seed_s = multi_sw.lap();
  const CheckResult multi_serial =
      check_linearizable(*queue, multi, seg_serial_opts);
  const double multi_serial_s = multi_sw.lap();
  const CheckResult multi_par = check_linearizable(*queue, multi, par_opts);
  const double multi_par_s = multi_sw.lap();
  const bool multi_identical = same_output(multi_seed, multi_serial) &&
                               same_output(multi_seed, multi_par);
  std::printf(
      "checker scaling (multi-segment): seed %.3fs, segmented serial %.3fs "
      "(%zu segments), --jobs %d %.3fs  (%s)\n",
      multi_seed_s, multi_serial_s, multi_serial.segments, checker_jobs,
      multi_par_s, multi_identical ? "identical output" : "OUTPUT DIVERGED");

  // --- 3. Simulator event throughput ---------------------------------------
  constexpr int kSimRuns = 24;
  std::size_t events = 0;
  const double sim_t0 = now_seconds();
  for (int s = 0; s < kSimRuns; ++s) {
    events += one_run(model, 0x51e4ull + static_cast<std::uint64_t>(s)).events;
  }
  const double sim_s = now_seconds() - sim_t0;
  const double events_per_s = static_cast<double>(events) / sim_s;
  std::printf("simulator: %7.0f events/s over %d runs (%zu events)\n",
              events_per_s, kSimRuns, events);

  // --- 4. Sweep wall-clock: serial vs parallel -----------------------------
  const OpMix mix{2, 2, 2};
  WorkloadFactory workload = [&](ProcessId, Rng& rng) {
    return random_register_ops(rng, 10, mix);
  };

  FaultSweepOptions fault_opts;
  fault_opts.n = kN;
  fault_opts.timing = default_timing();
  fault_opts.x = 0;
  fault_opts.seeds = 6;

  SweepTimings fault;
  {
    fault_opts.jobs = 1;
    const double t0 = now_seconds();
    const FaultSweepResult serial = run_fault_sweep(model, workload, fault_opts);
    fault.serial_s = now_seconds() - t0;
    fault_opts.jobs = jobs;
    const double t1 = now_seconds();
    const FaultSweepResult parallel = run_fault_sweep(model, workload, fault_opts);
    fault.parallel_s = now_seconds() - t1;
    fault.identical = serial.table() == parallel.table() &&
                      serial.ok() == parallel.ok() &&
                      serial.cells.size() == parallel.cells.size();
  }
  std::printf("fault sweep: serial %.3fs, --jobs %d %.3fs  (%.2fx, %s)\n",
              fault.serial_s, jobs, fault.parallel_s, fault.speedup(),
              fault.identical ? "byte-identical" : "RESULTS DIVERGED");

  ChurnSweepOptions churn_opts;
  churn_opts.n = kN;
  churn_opts.timing = default_timing();
  churn_opts.x = 0;
  churn_opts.seeds = 6;
  churn_opts.ops_per_client = 10;
  churn_opts.recoverable.link.max_attempts = 3;

  SweepTimings churn;
  {
    churn_opts.jobs = 1;
    const double t0 = now_seconds();
    const ChurnSweepResult serial = run_churn_sweep(model, workload, churn_opts);
    churn.serial_s = now_seconds() - t0;
    churn_opts.jobs = jobs;
    const double t1 = now_seconds();
    const ChurnSweepResult parallel = run_churn_sweep(model, workload, churn_opts);
    churn.parallel_s = now_seconds() - t1;
    churn.identical = serial.table() == parallel.table() &&
                      serial.ok() == parallel.ok() &&
                      serial.cells.size() == parallel.cells.size();
  }
  std::printf("churn sweep: serial %.3fs, --jobs %d %.3fs  (%.2fx, %s)\n",
              churn.serial_s, jobs, churn.parallel_s, churn.speedup(),
              churn.identical ? "byte-identical" : "RESULTS DIVERGED");

  // --- Verdict + JSON ------------------------------------------------------
  const double best_speedup = std::max(fault.speedup(), churn.speedup());
  const bool speedup_applicable = bench::speedup_gates_enforced(jobs);
  const bool speedup_ok = !speedup_applicable || best_speedup >= 2.0;
  const bool checker_speedup_ok = !speedup_applicable || checker_speedup >= 2.0;
  const bool ok = all_ok && fault.identical && churn.identical &&
                  wide_identical && multi_identical && parallel_split_ok &&
                  speedup_ok && checker_speedup_ok;

  if (speedup_applicable) {
    std::printf("\nbest sweep speedup at --jobs %d: %.2fx (need >= 2.0x)\n",
                jobs, best_speedup);
    std::printf("checker speedup at --jobs %d: %.2fx (need >= 2.0x)\n", jobs,
                checker_speedup);
  } else {
    std::printf("\nfewer than 4 workers available; speedup gates waived\n");
  }

  // Merge into the shared report (bench_throughput owns the throughput_*
  // keys of the same file; see bench_common.h JsonReport).
  JsonReport json("BENCH_perf.json");
  json.set("jobs", jobs);
  json.set("hardware_threads", bench::hardware_threads());
  json.set("checker_histories_per_s", checks_per_s);
  json.set("checker_ops_per_s", ops_per_s);
  json.set("checker_memo_hit_rate", memo_rate);
  json.set("phase_simulate_s", simulate_s);
  json.set("phase_check_s", check_s);
  json.set("checker_scaling_seed_serial_s", wide_seed_s);
  json.set("checker_scaling_segmented_serial_s", wide_serial_s);
  json.set("checker_scaling_parallel_s", wide_par_s);
  json.set("checker_parallel_speedup", checker_speedup);
  json.set("checker_parallel_speedup_threads", bench::hardware_threads());
  json.set("checker_parallel_tasks", wide_par.parallel_tasks);
  json.set("checker_parallel_jobs", checker_jobs);
  // Peak checker memory: the segmented path's memo population on the wide
  // frontier (the streaming path's sibling lives under streaming_checker_*).
  json.set("checker_max_resident_states", wide_par.max_resident_states);
  json.set("checker_scaling_identical", wide_identical && multi_identical);
  json.set("checker_multi_segment_segments", multi_serial.segments);
  json.set("checker_multi_segment_seed_s", multi_seed_s);
  json.set("checker_multi_segment_segmented_s", multi_serial_s);
  json.set("checker_multi_segment_parallel_s", multi_par_s);
  json.set("simulator_events_per_s", events_per_s);
  json.set("fault_sweep_serial_s", fault.serial_s);
  json.set("fault_sweep_parallel_s", fault.parallel_s);
  json.set("fault_sweep_speedup", fault.speedup());
  json.set("fault_sweep_speedup_threads", bench::hardware_threads());
  json.set("fault_sweep_identical", fault.identical);
  json.set("churn_sweep_serial_s", churn.serial_s);
  json.set("churn_sweep_parallel_s", churn.parallel_s);
  json.set("churn_sweep_speedup", churn.speedup());
  json.set("churn_sweep_speedup_threads", bench::hardware_threads());
  json.set("churn_sweep_identical", churn.identical);
  json.set("best_sweep_speedup", best_speedup);
  // A speedup number is meaningless without the worker count it was
  // measured with: ~1.0 on a 1-thread box is expected, not a regression.
  json.set("best_sweep_speedup_threads", bench::hardware_threads());
  std::printf(json.write() ? "wrote %s\n" : "FAILED writing %s\n",
              json.path().c_str());

  return finish(ok);
}
