// Performance benchmark for the hot-path refactor: linearizability-checker
// throughput (COW snapshots + cached fingerprints + bucketed memo),
// simulator event throughput (typed events + payload arena), and sweep
// wall-clock serial vs --jobs N (harness/parallel.h).
//
// Prints a human-readable report, writes machine-readable numbers to
// BENCH_perf.json, and exits 0 only when
//   * the parallel fault and churn sweeps are byte-identical to their
//     serial runs (tables and aggregate counters compared verbatim), and
//   * with jobs >= 4 available, at least one sweep speeds up >= 2x.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "checker/lin_checker.h"
#include "core/driver.h"
#include "core/workload.h"
#include "harness/churn_sweep.h"
#include "harness/fault_sweep.h"
#include "types/register_type.h"

using namespace linbound;
using namespace linbound::bench;

namespace {

double now_seconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch()).count();
}

/// One deterministic Algorithm 1 run under a uniform-random admissible
/// schedule; the shared workload shape for the checker and simulator
/// measurements.
struct RunProduct {
  History history;
  std::size_t events = 0;
};

RunProduct one_run(const std::shared_ptr<const ObjectModel>& model,
                   std::uint64_t seed) {
  const SystemTiming t = default_timing();
  Rng rng(seed);

  SystemOptions sys;
  sys.n = kN;
  sys.timing = t;
  sys.x = 0;
  sys.delays = std::make_shared<UniformDelayPolicy>(t, rng.next_u64());

  ReplicaSystem system(model, sys);

  const OpMix mix{2, 2, 2};
  std::vector<ClientScript> scripts;
  for (int pid = 0; pid < kN; ++pid) {
    Rng client_rng = rng.split(static_cast<std::uint64_t>(pid));
    scripts.push_back(ClientScript{static_cast<ProcessId>(pid),
                                   random_register_ops(client_rng, 10, mix),
                                   /*start_time=*/1000,
                                   /*think_time=*/0});
  }
  WorkloadDriver driver(system.sim(), std::move(scripts));
  driver.arm();

  RunProduct out;
  out.history = system.run_to_completion();
  out.events = system.sim().events_processed();
  return out;
}

struct SweepTimings {
  double serial_s = 0;
  double parallel_s = 0;
  bool identical = false;
  double speedup() const {
    return parallel_s > 0 ? serial_s / parallel_s : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  print_header("bench_perf: checker throughput, simulator throughput, sweep scaling");

  int jobs = parse_jobs(argc, argv);
  if (jobs <= 1) jobs = resolve_jobs(0);  // default: one per hardware thread
  std::printf("parallel sweeps use --jobs %d (hardware threads: %u)\n\n", jobs,
              std::thread::hardware_concurrency());

  auto model = std::make_shared<RegisterModel>();

  // --- 1. Linearizability-checker throughput -------------------------------
  constexpr int kHistories = 8;
  constexpr int kCheckRounds = 40;
  std::vector<History> histories;
  std::size_t ops_per_round = 0;
  for (int s = 0; s < kHistories; ++s) {
    RunProduct run = one_run(model, 0xbe9cful + static_cast<std::uint64_t>(s));
    ops_per_round += run.history.ops().size();
    histories.push_back(std::move(run.history));
  }
  std::size_t states = 0;
  std::size_t memo_hits = 0;
  bool all_ok = true;
  const double check_t0 = now_seconds();
  for (int round = 0; round < kCheckRounds; ++round) {
    for (const History& h : histories) {
      const CheckResult check = check_linearizable(*model, h);
      all_ok = all_ok && check.ok;
      states += check.states_explored;
      memo_hits += check.memo_hits;
    }
  }
  const double check_s = now_seconds() - check_t0;
  const double checks_per_s = kCheckRounds * kHistories / check_s;
  const double ops_per_s = kCheckRounds * static_cast<double>(ops_per_round) / check_s;
  const double memo_rate =
      states + memo_hits ? static_cast<double>(memo_hits) / (states + memo_hits) : 0.0;
  std::printf("checker:   %7.0f histories/s, %8.0f ops/s, memo hit rate %.2f%%%s\n",
              checks_per_s, ops_per_s, 100.0 * memo_rate,
              all_ok ? "" : "  [UNEXPECTED VIOLATION]");

  // --- 2. Simulator event throughput ---------------------------------------
  constexpr int kSimRuns = 24;
  std::size_t events = 0;
  const double sim_t0 = now_seconds();
  for (int s = 0; s < kSimRuns; ++s) {
    events += one_run(model, 0x51e4ull + static_cast<std::uint64_t>(s)).events;
  }
  const double sim_s = now_seconds() - sim_t0;
  const double events_per_s = static_cast<double>(events) / sim_s;
  std::printf("simulator: %7.0f events/s over %d runs (%zu events)\n",
              events_per_s, kSimRuns, events);

  // --- 3. Sweep wall-clock: serial vs parallel -----------------------------
  const OpMix mix{2, 2, 2};
  WorkloadFactory workload = [&](ProcessId, Rng& rng) {
    return random_register_ops(rng, 10, mix);
  };

  FaultSweepOptions fault_opts;
  fault_opts.n = kN;
  fault_opts.timing = default_timing();
  fault_opts.x = 0;
  fault_opts.seeds = 6;

  SweepTimings fault;
  {
    fault_opts.jobs = 1;
    const double t0 = now_seconds();
    const FaultSweepResult serial = run_fault_sweep(model, workload, fault_opts);
    fault.serial_s = now_seconds() - t0;
    fault_opts.jobs = jobs;
    const double t1 = now_seconds();
    const FaultSweepResult parallel = run_fault_sweep(model, workload, fault_opts);
    fault.parallel_s = now_seconds() - t1;
    fault.identical = serial.table() == parallel.table() &&
                      serial.ok() == parallel.ok() &&
                      serial.cells.size() == parallel.cells.size();
  }
  std::printf("fault sweep: serial %.3fs, --jobs %d %.3fs  (%.2fx, %s)\n",
              fault.serial_s, jobs, fault.parallel_s, fault.speedup(),
              fault.identical ? "byte-identical" : "RESULTS DIVERGED");

  ChurnSweepOptions churn_opts;
  churn_opts.n = kN;
  churn_opts.timing = default_timing();
  churn_opts.x = 0;
  churn_opts.seeds = 6;
  churn_opts.ops_per_client = 10;
  churn_opts.recoverable.link.max_attempts = 3;

  SweepTimings churn;
  {
    churn_opts.jobs = 1;
    const double t0 = now_seconds();
    const ChurnSweepResult serial = run_churn_sweep(model, workload, churn_opts);
    churn.serial_s = now_seconds() - t0;
    churn_opts.jobs = jobs;
    const double t1 = now_seconds();
    const ChurnSweepResult parallel = run_churn_sweep(model, workload, churn_opts);
    churn.parallel_s = now_seconds() - t1;
    churn.identical = serial.table() == parallel.table() &&
                      serial.ok() == parallel.ok() &&
                      serial.cells.size() == parallel.cells.size();
  }
  std::printf("churn sweep: serial %.3fs, --jobs %d %.3fs  (%.2fx, %s)\n",
              churn.serial_s, jobs, churn.parallel_s, churn.speedup(),
              churn.identical ? "byte-identical" : "RESULTS DIVERGED");

  // --- Verdict + JSON ------------------------------------------------------
  const double best_speedup = std::max(fault.speedup(), churn.speedup());
  const bool speedup_applicable =
      jobs >= 4 && std::thread::hardware_concurrency() >= 4;
  const bool speedup_ok = !speedup_applicable || best_speedup >= 2.0;
  const bool ok =
      all_ok && fault.identical && churn.identical && speedup_ok;

  if (speedup_applicable) {
    std::printf("\nbest sweep speedup at --jobs %d: %.2fx (need >= 2.0x)\n",
                jobs, best_speedup);
  } else {
    std::printf("\nfewer than 4 workers available; speedup gate waived\n");
  }

  std::ofstream json("BENCH_perf.json");
  json << "{\n"
       << "  \"jobs\": " << jobs << ",\n"
       << "  \"hardware_threads\": " << std::thread::hardware_concurrency() << ",\n"
       << "  \"checker_histories_per_s\": " << checks_per_s << ",\n"
       << "  \"checker_ops_per_s\": " << ops_per_s << ",\n"
       << "  \"checker_memo_hit_rate\": " << memo_rate << ",\n"
       << "  \"simulator_events_per_s\": " << events_per_s << ",\n"
       << "  \"fault_sweep_serial_s\": " << fault.serial_s << ",\n"
       << "  \"fault_sweep_parallel_s\": " << fault.parallel_s << ",\n"
       << "  \"fault_sweep_speedup\": " << fault.speedup() << ",\n"
       << "  \"fault_sweep_identical\": " << (fault.identical ? "true" : "false") << ",\n"
       << "  \"churn_sweep_serial_s\": " << churn.serial_s << ",\n"
       << "  \"churn_sweep_parallel_s\": " << churn.parallel_s << ",\n"
       << "  \"churn_sweep_speedup\": " << churn.speedup() << ",\n"
       << "  \"churn_sweep_identical\": " << (churn.identical ? "true" : "false") << ",\n"
       << "  \"best_sweep_speedup\": " << best_speedup << "\n"
       << "}\n";
  std::printf("wrote BENCH_perf.json\n");

  return finish(ok);
}
