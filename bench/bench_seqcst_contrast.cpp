// Linearizability vs sequential consistency -- the separation behind the
// paper's lineage (Lipton & Sandberg [5], Attiya & Welch [1]).
//
// The same eager runs that violate linearizability are re-checked under
// sequential consistency (program order only, no real-time order):
//
//   * the eager-MOP order flip (Theorem D.1's regime) violates
//     linearizability but REMAINS sequentially consistent -- the write
//     bound (1-1/n)u is purely the price of real-time order, matching
//     Attiya-Welch's result that sequentially consistent writes can be
//     much faster;
//   * the eager-OOP run (Theorem C.1's regime, two rmw's both reading the
//     initial value) violates BOTH -- no interleaving at all explains two
//     fetch-and-stores returning the same value, so that bound is not
//     bought back by weakening to sequential consistency.
#include "bench_common.h"
#include "shift/proof_scenarios.h"
#include "types/register_type.h"

using namespace linbound;
using namespace linbound::bench;

int main() {
  print_header("Separation: linearizability vs sequential consistency");
  const SystemTiming t = default_timing();
  bool ok = true;

  TextTable table({"run", "eager knob", "linearizable", "seq. consistent"});

  // (1) MOP order flip with ack just below (1-1/n)u.
  {
    const Scenario s =
        mop_order_flip(t, reg::write(1), reg::write(2), reg::read(), 10000);
    const AlgorithmDelays eager = AlgorithmDelays::eager_mop(t, 0, t.eps - 2);
    const ScenarioOutcome outcome = run_scenario(
        std::make_shared<RegisterModel>(), s, eager);
    const CheckResult seqcst = check_sequentially_consistent(
        RegisterModel(), outcome.history);
    table.add_row({"write flip (D.1 regime)", "ack = (1-1/n)u - 2",
                   outcome.linearizable.ok ? "yes" : "NO",
                   seqcst.ok ? "yes" : "NO"});
    ok = ok && !outcome.linearizable.ok && seqcst.ok;
  }

  // (2) OOP order flip with latency just below d+m.
  {
    const Scenario s = oop_order_flip(t, reg::rmw(1), reg::rmw(2), 10000);
    const AlgorithmDelays eager =
        AlgorithmDelays::eager_oop(t, 0, t.d + t.m() - 2);
    const ScenarioOutcome outcome = run_scenario(
        std::make_shared<RegisterModel>(), s, eager);
    const CheckResult seqcst = check_sequentially_consistent(
        RegisterModel(), outcome.history);
    table.add_row({"rmw flip (C.1 regime)", "latency = d+m-2",
                   outcome.linearizable.ok ? "yes" : "NO",
                   seqcst.ok ? "yes" : "NO"});
    ok = ok && !outcome.linearizable.ok && !seqcst.ok;
  }

  // (3) Control: the compliant algorithm satisfies both on the same runs.
  {
    const Scenario s =
        mop_order_flip(t, reg::write(1), reg::write(2), reg::read(), 10000);
    const ScenarioOutcome outcome = run_scenario(
        std::make_shared<RegisterModel>(), s, AlgorithmDelays::standard(t, 0));
    const CheckResult seqcst = check_sequentially_consistent(
        RegisterModel(), outcome.history);
    table.add_row({"write flip, compliant", "ack = eps + X",
                   outcome.linearizable.ok ? "yes" : "NO",
                   seqcst.ok ? "yes" : "NO"});
    ok = ok && outcome.linearizable.ok && seqcst.ok;
  }

  std::printf("%s", table.render().c_str());
  std::printf(
      "\nThe mutator lower bound is the cost of real-time order alone:\n"
      "dropping to sequential consistency absolves the too-fast write but\n"
      "not the too-fast rmw, whose violation is value-level.  This is the\n"
      "Attiya-Welch separation the thesis's Chapter I motivates from.\n");
  return finish(ok);
}
