// Multi-tenant sharded simulation at scale: --shards independent register
// groups (default 1024) absorbing --ops total operations (default 1M,
// zipfian-apportioned), advanced by the conservative-PDES window protocol
// of src/shard/ at several worker counts.
//
// What runs:
//   * One ShardedSimulation is configured (stock variant, default timing,
//     4 cross-shard clock-sync epochs) and its per-shard single-threaded
//     references are computed first: run_solo for every shard, each the
//     identical window/barrier sequence with the other shards absent.
//   * The full parallel run then executes at --jobs-list (default 1,2,4).
//     After every run, ALL per-shard trace hashes are compared to the solo
//     references -- the determinism contract (DESIGN.md section 14) at
//     four-digit shard counts: byte-identical traces at any worker count.
//   * Wall-clock per jobs level yields shard_scaling_speedup =
//     t(jobs=1) / min over parallel levels.
//
// Exit status is 0 only when
//   * every run completes (no shard aborted, every operation answered),
//   * every per-shard hash at every jobs level equals its solo reference
//     (always fatal -- identity is never waived), and
//   * scaling speedup >= 1.3x at jobs >= 4 -- enforced only where the
//     hardware can express it (bench_common.h speedup_gates_enforced);
//     thread-starved boxes record the measurement without asserting it.
//
// Results merge into BENCH_perf.json under shard_* keys (JsonReport
// preserves bench_perf's and bench_throughput's sections).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/alloc_count.h"
#include "shard/shard.h"
#include "sim/trace_io.h"

using namespace linbound;
using namespace linbound::bench;

namespace {

std::string parse_flag(int argc, char** argv, const char* flag,
                       const char* fallback) {
  const std::size_t flag_len = std::strlen(flag);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == flag && i + 1 < argc) return argv[i + 1];
    if (arg.rfind(flag, 0) == 0 && arg.size() > flag_len &&
        arg[flag_len] == '=') {
      return arg.substr(flag_len + 1);
    }
  }
  return fallback;
}

std::size_t parse_size(int argc, char** argv, const char* flag,
                       std::size_t fallback) {
  const std::string value = parse_flag(argc, argv, flag, "");
  return value.empty() ? fallback
                       : static_cast<std::size_t>(std::atoll(value.c_str()));
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

std::vector<int> parse_jobs_list(int argc, char** argv) {
  const std::string raw = parse_flag(argc, argv, "--jobs-list", "1,2,4");
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < raw.size()) {
    const std::size_t comma = raw.find(',', pos);
    const std::string tok = raw.substr(pos, comma == std::string::npos
                                                ? std::string::npos
                                                : comma - pos);
    if (!tok.empty()) out.push_back(resolve_jobs(std::atoi(tok.c_str())));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (out.empty()) out = {1, 2, 4};
  return out;
}

struct TimedRun {
  int jobs = 1;
  double seconds = 0;
  std::uint64_t allocs = 0;    ///< heap allocs during the run (interposer)
  ShardRunReport report;
  std::size_t mismatches = 0;  ///< shards whose hash diverged from solo ref
};

}  // namespace

int main(int argc, char** argv) {
  print_header("bench_shard: sharded conservative-PDES scaling + identity");

  ShardOptions opt;
  opt.shards = static_cast<int>(parse_size(argc, argv, "--shards", 1024));
  opt.total_ops = parse_size(argc, argv, "--ops", 1'000'000);
  opt.timing = default_timing();
  const std::vector<int> jobs_list = parse_jobs_list(argc, argv);

  ShardedSimulation sim(opt);
  std::printf(
      "%d shards x %zu total ops (zipf s=%.2f), %d replicas/shard, "
      "lookahead=%lld, %d sync epochs every %lld ticks\n",
      opt.shards, opt.total_ops, opt.zipf_s, opt.replicas,
      static_cast<long long>(sim.lookahead()), opt.sync_epochs,
      static_cast<long long>(sim.sync_interval()));

  // --- 1. Single-threaded references, one per shard -----------------------
  // run_solo is self-contained, so the references themselves may be farmed
  // out; their hashes are the oracle every parallel run is held to.
  const int ref_jobs = resolve_jobs(0);  // one worker per hardware thread
  ParallelSweepExecutor ref_exec(ref_jobs);
  const double ref_t0 = now_seconds();
  const std::vector<std::uint64_t> reference =
      ref_exec.map<std::uint64_t>(static_cast<std::size_t>(opt.shards),
                                  [&](std::size_t s) {
                                    return sim.run_solo(static_cast<int>(s))
                                        .trace_hash;
                                  });
  const double ref_seconds = now_seconds() - ref_t0;
  std::printf("solo references: %d shards in %.3fs (%d workers)\n\n",
              opt.shards, ref_seconds, ref_jobs);

  // --- 2. Parallel runs at each worker count ------------------------------
  std::vector<TimedRun> runs;
  bool all_complete = true;
  bool identity_ok = true;
  for (const int jobs : jobs_list) {
    TimedRun r;
    r.jobs = jobs;
    const std::uint64_t a0 = heap_allocs();
    const double t0 = now_seconds();
    r.report = sim.run(jobs);
    r.seconds = now_seconds() - t0;
    r.allocs = heap_allocs() - a0;
    for (const ShardResult& shard : r.report.shards) {
      if (shard.trace_hash !=
          reference[static_cast<std::size_t>(shard.shard)]) {
        ++r.mismatches;
      }
    }
    const double events_per_s =
        r.seconds > 0 ? r.report.total_events / r.seconds : 0;
    std::printf(
        "jobs=%-3d %.3fs, %zu events (%.0f events/s), %zu ops, "
        "%zu windows, %zu beacons, %d aborted, identity %s\n",
        jobs, r.seconds, r.report.total_events, events_per_s,
        r.report.total_ops, r.report.windows, r.report.beacons,
        r.report.aborted,
        r.mismatches == 0
            ? "byte-identical"
            : ("DIVERGED on " + std::to_string(r.mismatches) + " shards")
                  .c_str());
    all_complete = all_complete && r.report.aborted == 0 &&
                   r.report.total_ops >= opt.total_ops;
    identity_ok = identity_ok && r.mismatches == 0;
    runs.push_back(std::move(r));
  }

  // --- 3. Scaling gate ----------------------------------------------------
  double serial_seconds = 0;
  double best_parallel_seconds = 0;
  int best_jobs = 1;
  for (const TimedRun& r : runs) {
    if (r.jobs <= 1 && (serial_seconds == 0 || r.seconds < serial_seconds)) {
      serial_seconds = r.seconds;
    }
    if (r.jobs > 1 &&
        (best_parallel_seconds == 0 || r.seconds < best_parallel_seconds)) {
      best_parallel_seconds = r.seconds;
      best_jobs = r.jobs;
    }
  }
  const double scaling_speedup =
      (serial_seconds > 0 && best_parallel_seconds > 0)
          ? serial_seconds / best_parallel_seconds
          : 1.0;
  const bool speedup_enforced = speedup_gates_enforced(best_jobs);
  const bool speedup_ok = !speedup_enforced || scaling_speedup >= 1.3;
  if (speedup_enforced) {
    std::printf(
        "\nscaling gate: jobs=1 %.3fs / jobs=%d %.3fs = %.2fx "
        "(need >= 1.3x)\n",
        serial_seconds, best_jobs, best_parallel_seconds, scaling_speedup);
  } else {
    std::printf(
        "\nscaling gate waived (%u hardware threads, best jobs=%d): "
        "%.2fx recorded, not asserted\n",
        hardware_threads(), best_jobs, scaling_speedup);
  }

  // --- 4. Optional --checked run: per-shard streaming checks inline -------
  // Every shard re-runs with a StreamingChecker riding its simulator hooks
  // (ShardOptions::streaming_check): the whole multi-tenant history is
  // verified linearizable *during* the PDES drain, and the traces must stay
  // byte-identical to the unchecked solo references -- the tap is
  // observation-only even under the window protocol's barrier scheduling.
  const bool checked_mode = has_flag(argc, argv, "--checked");
  bool checked_ok = true;
  double checked_seconds = 0;
  std::size_t checked_events = 0;
  std::size_t check_max_resident = 0;
  std::size_t check_max_window = 0;
  int check_failures = 0;
  if (checked_mode) {
    ShardOptions copt = opt;
    copt.streaming_check = true;
    ShardedSimulation checked_sim(copt);
    const int cjobs = jobs_list.back();
    const double t0 = now_seconds();
    const ShardRunReport creport = checked_sim.run(cjobs);
    checked_seconds = now_seconds() - t0;
    checked_events = creport.total_events;
    check_failures = creport.check_failures;
    std::size_t cmismatches = 0;
    bool all_checked = true;
    for (const ShardResult& shard : creport.shards) {
      if (shard.trace_hash !=
          reference[static_cast<std::size_t>(shard.shard)]) {
        ++cmismatches;
      }
      all_checked = all_checked && shard.checked && shard.check_ok;
      check_max_resident = std::max(check_max_resident,
                                    shard.check_max_resident);
      check_max_window = std::max(check_max_window, shard.check_max_window);
    }
    checked_ok = creport.aborted == 0 && cmismatches == 0 && all_checked &&
                 check_failures == 0;
    std::printf(
        "\nchecked run (jobs=%d): %.3fs, %d/%zu shards checked, %d failures, "
        "peak %zu resident states / %zu window ops per shard, traces %s\n",
        cjobs, checked_seconds, creport.checked, creport.shards.size(),
        check_failures, check_max_resident, check_max_window,
        cmismatches == 0 ? "byte-identical to solo references"
                         : "DIVERGED FROM REFERENCES");
  }

  // --- 5. JSON merge ------------------------------------------------------
  const TimedRun& best = *std::min_element(
      runs.begin(), runs.end(),
      [](const TimedRun& a, const TimedRun& b) { return a.seconds < b.seconds; });
  JsonReport json(parse_flag(argc, argv, "--json", "BENCH_perf.json"));
  json.set("shard_count", static_cast<std::uint64_t>(opt.shards));
  json.set("shard_total_ops",
           static_cast<std::uint64_t>(best.report.total_ops));
  json.set("shard_total_events",
           static_cast<std::uint64_t>(best.report.total_events));
  json.set("shard_windows", static_cast<std::uint64_t>(best.report.windows));
  json.set("shard_beacons", static_cast<std::uint64_t>(best.report.beacons));
  json.set("shard_events_per_s",
           best.seconds > 0 ? best.report.total_events / best.seconds : 0.0);
  json.set("shard_ops_per_s",
           best.seconds > 0 ? best.report.total_ops / best.seconds : 0.0);
  json.set("shard_solo_reference_s", ref_seconds);
  for (const TimedRun& r : runs) {
    json.set("shard_run_s_jobs" + std::to_string(r.jobs), r.seconds);
  }
  json.set("shard_scaling_speedup", scaling_speedup);
  // *_speedup_threads sibling of shard_scaling_speedup, required by
  // tools/check_bench_schema.sh.
  json.set("shard_scaling_speedup_threads", hardware_threads());
  json.set("shard_speedup_gate_enforced", speedup_enforced);
  json.set("shard_identity_ok", identity_ok);
  // Allocation + delivery-batching picture of the best run.  Per-run heap
  // allocs are dominated by per-shard setup (each shard worker instantiates
  // its own PoolSet); the steady-state-zero contract itself is proven by
  // test_alloc_free, this records the whole-run footprint per op.
  json.set("shard_allocs_measured", alloc_counting_enabled());
  json.set("shard_allocs_run_total", best.allocs);
  json.set("shard_allocs_per_op",
           best.report.total_ops > 0
               ? static_cast<double>(best.allocs) /
                     static_cast<double>(best.report.total_ops)
               : 0.0);
  const double shard_batch_mean =
      best.report.deliver_batches > 0
          ? static_cast<double>(best.report.batched_messages) /
                static_cast<double>(best.report.deliver_batches)
          : 0.0;
  json.set("shard_deliver_batches", best.report.deliver_batches);
  json.set("shard_batch_mean_size", shard_batch_mean);
  if (checked_mode) {
    json.set("shard_checked_run_s", checked_seconds);
    json.set("shard_checked_events_per_s",
             checked_seconds > 0 ? checked_events / checked_seconds : 0.0);
    json.set("shard_check_failures", check_failures);
    json.set("shard_check_max_resident_states",
             static_cast<std::uint64_t>(check_max_resident));
    json.set("shard_check_max_window_ops",
             static_cast<std::uint64_t>(check_max_window));
    json.set("shard_checked_ok", checked_ok);
  }
  if (!json.write()) {
    std::printf("warning: could not write %s\n", json.path().c_str());
  } else {
    std::printf("merged shard_* keys into %s\n", json.path().c_str());
  }

  return finish(all_complete && identity_ok && speedup_ok && checked_ok);
}
