// Reproduces Table I: Summary of Operation Time Bounds on a
// Read/Write/Read-Modify-Write Register.
//
// The paper's table (page 75):
//   rmw          prev LB d        new LB d+min{eps,u,d/3}   UB d+eps
//   write        prev LB u/2      new LB (1-1/n)u           UB eps     (X=0)
//   read         prev LB u/2      -                         UB u       (X=d+eps-u)
//   write+read   prev LB d        LB d                      UB d+2eps
//
// "Measured" is the worst-case latency over the adversary grid (delay
// policies x clock-offset patterns x seeds), which for this virtual-time
// system matches the formulas exactly.
#include "bench_common.h"
#include "core/workload.h"
#include "types/register_type.h"

using namespace linbound;
using namespace linbound::bench;

int main(int argc, char** argv) {
  const int jobs = parse_jobs(argc, argv);
  print_header("Table I: register (read / write / read-modify-write)");

  auto model = std::make_shared<RegisterModel>();
  const SystemTiming t = default_timing();
  const OpMix mix{2, 2, 2};
  WorkloadFactory workload = [&](ProcessId, Rng& rng) {
    return random_register_ops(rng, 12, mix);
  };

  // X = 0 favors mutators (write = eps); X = d+eps-u favors accessors
  // (read = u).  The paper quotes each operation at its favorable X.
  const Tick x_max = t.d + t.eps - t.u;
  const SweepResult at_x0 = run_replica_sweep(model, workload, default_sweep(0, jobs));
  const SweepResult at_xmax =
      run_replica_sweep(model, workload, default_sweep(x_max, jobs));
  print_sweep_status("sweep @ X=0:", at_x0);
  print_sweep_status("sweep @ X=d+eps-u:", at_xmax);
  std::printf("\n");

  BoundsTable table("Table I: register", t, kN, 0);
  table.add_row({"read-modify-write", "d", t.d, "d+min{eps,u,d/3}",
                 eval_d_plus_m(t), "d+eps", eval_d_plus_eps(t),
                 at_x0.latency.worst_for_code(RegisterModel::kRmw)});
  table.add_row({"write (X=0)", "u/2", t.u / 2, "(1-1/n)u",
                 eval_one_minus_inv_n_u(t, kN), "eps", t.eps,
                 at_x0.latency.worst_for_code(RegisterModel::kWrite)});
  table.add_row({"read (X=d+eps-u)", "u/2", t.u / 2, "", kNoTime, "u", t.u,
                 at_xmax.latency.worst_for_code(RegisterModel::kRead)});
  const Tick write_plus_read =
      at_x0.latency.worst_for_code(RegisterModel::kWrite) +
      at_x0.latency.worst_for_code(RegisterModel::kRead);
  table.add_row({"write + read", "d", t.d, "d", t.d, "d+2eps",
                 eval_d_plus_2eps(t), write_plus_read});
  std::printf("%s", table.render().c_str());

  std::printf(
      "\nNote: eps = (1-1/n)u = %lldus is the optimal skew, and eps <= d/3,\n"
      "so the rmw bound d+min{eps,u,d/3} = d+eps is TIGHT (LB == UB == "
      "measured),\nand write at X=0 is TIGHT at (1-1/n)u.\n",
      static_cast<long long>(t.eps));

  const bool ok = at_x0.all_linearizable() && at_xmax.all_linearizable() &&
                  table.consistent();
  return finish(ok);
}
