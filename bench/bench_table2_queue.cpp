// Reproduces Table II: Summary of Operation Time Bounds on a Queue.
//
//   enqueue         prev LB u/2    new LB (1-1/n)u          UB eps
//   dequeue         prev LB d      new LB d+min{eps,u,d/3}  UB d+eps
//   enqueue+peek    prev LB d      new LB d+min{eps,u,d/3}  UB d+2eps
#include "bench_common.h"
#include "core/workload.h"
#include "types/queue_type.h"

using namespace linbound;
using namespace linbound::bench;

int main(int argc, char** argv) {
  const int jobs = parse_jobs(argc, argv);
  print_header("Table II: queue (enqueue / dequeue / peek)");

  auto model = std::make_shared<QueueModel>();
  const SystemTiming t = default_timing();
  const OpMix mix{2, 2, 2};
  WorkloadFactory workload = [&](ProcessId, Rng& rng) {
    return random_queue_ops(rng, 12, mix);
  };

  const SweepResult result = run_replica_sweep(model, workload, default_sweep(0, jobs));
  print_sweep_status("sweep @ X=0:", result);
  std::printf("\n");

  BoundsTable table("Table II: queue", t, kN, 0);
  table.add_row({"enqueue", "u/2", t.u / 2, "(1-1/n)u",
                 eval_one_minus_inv_n_u(t, kN), "eps", t.eps,
                 result.latency.worst_for_code(QueueModel::kEnqueue)});
  table.add_row({"dequeue", "d", t.d, "d+min{eps,u,d/3}", eval_d_plus_m(t),
                 "d+eps", eval_d_plus_eps(t),
                 result.latency.worst_for_code(QueueModel::kDequeue)});
  const Tick enq_plus_peek =
      result.latency.worst_for_code(QueueModel::kEnqueue) +
      result.latency.worst_for_code(QueueModel::kPeek);
  table.add_row({"enqueue + peek", "d", t.d, "d+min{eps,u,d/3}",
                 eval_d_plus_m(t), "d+2eps", eval_d_plus_2eps(t), enq_plus_peek});
  std::printf("%s", table.render().c_str());

  std::printf(
      "\nNote: enqueue is non-overwriting, so the pair bound for\n"
      "enqueue+peek is d+min{eps,u,d/3} (Theorem E.1), a factor eps above\n"
      "the overwriting write+read pair's LB d.  Gap to the UB d+2eps: eps.\n");

  return finish(result.all_linearizable() && table.consistent());
}
