// Reproduces Table III: Summary of Operation Time Bounds on a Stack.
//
//   push          prev LB u/2    new LB (1-1/n)u          UB eps
//   pop           prev LB d      new LB d+min{eps,u,d/3}  UB d+eps
//   push+peek     prev LB d      new LB d+min{eps,u,d/3}  UB d+2eps
#include "bench_common.h"
#include "core/workload.h"
#include "types/stack_type.h"

using namespace linbound;
using namespace linbound::bench;

int main(int argc, char** argv) {
  const int jobs = parse_jobs(argc, argv);
  print_header("Table III: stack (push / pop / peek)");

  auto model = std::make_shared<StackModel>();
  const SystemTiming t = default_timing();
  const OpMix mix{2, 2, 2};
  WorkloadFactory workload = [&](ProcessId, Rng& rng) {
    return random_stack_ops(rng, 12, mix);
  };

  const SweepResult result = run_replica_sweep(model, workload, default_sweep(0, jobs));
  print_sweep_status("sweep @ X=0:", result);
  std::printf("\n");

  BoundsTable table("Table III: stack", t, kN, 0);
  table.add_row({"push", "u/2", t.u / 2, "(1-1/n)u",
                 eval_one_minus_inv_n_u(t, kN), "eps", t.eps,
                 result.latency.worst_for_code(StackModel::kPush)});
  table.add_row({"pop", "d", t.d, "d+min{eps,u,d/3}", eval_d_plus_m(t),
                 "d+eps", eval_d_plus_eps(t),
                 result.latency.worst_for_code(StackModel::kPop)});
  const Tick push_plus_peek = result.latency.worst_for_code(StackModel::kPush) +
                              result.latency.worst_for_code(StackModel::kPeek);
  table.add_row({"push + peek", "d", t.d, "d+min{eps,u,d/3}", eval_d_plus_m(t),
                 "d+2eps", eval_d_plus_2eps(t), push_plus_peek});
  std::printf("%s", table.render().c_str());

  return finish(result.all_linearizable() && table.consistent());
}
