// Reproduces Table IV: Conclusions of Operation Time Bounds on a Tree.
//
//   insert           prev LB u/2   new LB (1-1/n)u          UB eps
//   delete           prev LB u/2   new LB (1-1/n)u          UB eps
//   insert+depth     prev LB d     new LB d+min{eps,u,d/3}  UB d+2eps
//   delete+depth     prev LB d     new LB d+min{eps,u,d/3}  UB d+2eps
//
// Semantics note (see DESIGN.md / EXPERIMENTS.md): the thesis never fixes
// tree semantics.  Our insert has move semantics, giving the full k = n
// non-self-last-permuting witness behind the (1-1/n)u lower bound; delete
// (remove_leaf) is order-sensitive only at k = 2, so the matching witness
// supports u/2 -- the thesis's (1-1/n)u claim for delete needs semantics
// it does not specify.  Upper bounds are unaffected (delete is a pure
// mutator either way).
#include "bench_common.h"
#include "core/workload.h"
#include "types/tree_type.h"

using namespace linbound;
using namespace linbound::bench;

int main(int argc, char** argv) {
  const int jobs = parse_jobs(argc, argv);
  print_header("Table IV: rooted tree (insert / delete / search / depth)");

  auto model = std::make_shared<TreeModel>();
  const SystemTiming t = default_timing();
  const OpMix mix{2, 3, 0};
  WorkloadFactory workload = [&](ProcessId, Rng& rng) {
    return random_tree_ops(rng, 12, mix);
  };

  const SweepResult result = run_replica_sweep(model, workload, default_sweep(0, jobs));
  print_sweep_status("sweep @ X=0:", result);
  std::printf("\n");

  // remove_leaf and erase are both "delete" flavors; report the worse.
  Tick delete_worst = result.latency.worst_for_code(TreeModel::kRemoveLeaf);
  const Tick erase_worst = result.latency.worst_for_code(TreeModel::kErase);
  if (erase_worst != kNoTime && (delete_worst == kNoTime || erase_worst > delete_worst)) {
    delete_worst = erase_worst;
  }
  const Tick depth_worst = result.latency.worst_for_code(TreeModel::kDepth);
  const Tick insert_worst = result.latency.worst_for_code(TreeModel::kInsert);
  auto sum = [](Tick a, Tick b) {
    return (a == kNoTime || b == kNoTime) ? kNoTime : a + b;
  };

  BoundsTable table("Table IV: tree", t, kN, 0);
  table.add_row({"insert", "u/2", t.u / 2, "(1-1/n)u",
                 eval_one_minus_inv_n_u(t, kN), "eps", t.eps, insert_worst});
  table.add_row({"delete", "u/2", t.u / 2, "(1-1/n)u",
                 eval_one_minus_inv_n_u(t, kN), "eps", t.eps, delete_worst});
  table.add_row({"insert + depth", "d", t.d, "d+min{eps,u,d/3}",
                 eval_d_plus_m(t), "d+2eps", eval_d_plus_2eps(t),
                 sum(insert_worst, depth_worst)});
  table.add_row({"delete + depth", "d", t.d, "d+min{eps,u,d/3}",
                 eval_d_plus_m(t), "d+2eps", eval_d_plus_2eps(t),
                 sum(delete_worst, depth_worst)});
  std::printf("%s", table.render().c_str());

  return finish(result.all_linearizable() && table.consistent());
}
