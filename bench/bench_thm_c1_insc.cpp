// Theorem C.1 (Figs. 6-9): lower bound d + min{eps, u, d/3} for strongly
// immediately non-self-commuting operations (rmw, dequeue, pop).
//
// Three exhibits:
//   1. the proof's runs R1/R1'/R2/R3/R3''' are admissible and the compliant
//      algorithm linearizes all of them;
//   2. eager variants: sweep the OOP latency L and report, per L, whether a
//      violation appears on the scenario battery -- the frontier sits at
//      d + m (up to integer granularity);
//   3. the same violation for dequeue and pop.
#include "bench_common.h"
#include "shift/proof_scenarios.h"
#include "types/queue_type.h"
#include "types/register_type.h"
#include "types/stack_type.h"

using namespace linbound;
using namespace linbound::bench;

namespace {

/// Does the eager variant with OOP latency L violate linearizability on any
/// of the C.1 scenarios?
bool violates_at(const std::shared_ptr<const ObjectModel>& model,
                 const SystemTiming& t, const Operation& op1,
                 const Operation& op2, Tick latency) {
  const AlgorithmDelays algo = AlgorithmDelays::eager_oop(t, 0, latency);
  std::vector<Scenario> battery = thm_c1_paper_runs(t, op1, op2, 10000);
  battery.push_back(oop_order_flip(t, op1, op2, 10000));
  for (const Scenario& s : battery) {
    const ScenarioOutcome outcome = run_scenario(model, s, algo);
    if (outcome.admissibility.admissible && !outcome.linearizable.ok) return true;
  }
  return false;
}

}  // namespace

int main() {
  print_header("Theorem C.1: |OOP| >= d + min{eps,u,d/3} (rmw/dequeue/pop)");
  const SystemTiming t = default_timing();
  const Tick m = t.m();
  const Tick bound = t.d + m;
  bool ok = true;

  std::printf("parameters: d=%lld u=%lld eps=%lld -> m=%lld, bound d+m=%lld\n\n",
              static_cast<long long>(t.d), static_cast<long long>(t.u),
              static_cast<long long>(t.eps), static_cast<long long>(m),
              static_cast<long long>(bound));

  // Exhibit 1: the paper's runs under the compliant algorithm.
  auto reg_model = std::make_shared<RegisterModel>();
  const AlgorithmDelays standard = AlgorithmDelays::standard(t, 0);
  std::printf("paper runs (compliant algorithm, |OOP| = d+eps = %lldus):\n",
              static_cast<long long>(t.d + t.eps));
  for (const Scenario& s : thm_c1_paper_runs(t, reg::rmw(1), reg::rmw(2), 10000)) {
    const ScenarioOutcome outcome = run_scenario(reg_model, s, standard);
    std::printf("  %-10s admissible=%s linearizable=%s\n", s.name.c_str(),
                outcome.admissibility.admissible ? "yes" : "NO",
                outcome.linearizable.ok ? "yes" : "NO");
    ok = ok && outcome.admissibility.admissible && outcome.linearizable.ok;
  }

  // Exhibit 2: eager latency sweep around the bound.
  std::printf("\neager rmw sweep (violation expected iff L <= d+m-2):\n");
  TextTable table({"OOP latency L", "vs bound d+m", "violation found"});
  for (Tick latency : {bound - 200, bound - 50, bound - 2, bound, bound + t.eps}) {
    const bool violated = violates_at(reg_model, t, reg::rmw(1), reg::rmw(2), latency);
    const char* rel = latency < bound ? "below" : (latency == bound ? "at" : "above");
    table.add_row({format_ticks(latency), rel, violated ? "YES" : "no"});
    if (latency <= bound - 2) ok = ok && violated;
    if (latency >= bound) ok = ok && !violated;
  }
  std::printf("%s", table.render().c_str());

  // Exhibit 3: the same frontier for dequeue and pop.
  auto queue_model = std::make_shared<QueueModel>(std::vector<std::int64_t>{42});
  auto stack_model = std::make_shared<StackModel>(std::vector<std::int64_t>{42});
  const bool deq_below =
      violates_at(queue_model, t, queue_ops::dequeue(), queue_ops::dequeue(), bound - 2);
  const bool deq_at =
      violates_at(queue_model, t, queue_ops::dequeue(), queue_ops::dequeue(), bound);
  const bool pop_below =
      violates_at(stack_model, t, stack_ops::pop(), stack_ops::pop(), bound - 2);
  const bool pop_at =
      violates_at(stack_model, t, stack_ops::pop(), stack_ops::pop(), bound);
  std::printf("\ndequeue: violation at L=d+m-2: %s, at L=d+m: %s\n",
              deq_below ? "YES" : "no", deq_at ? "YES" : "no");
  std::printf("pop:     violation at L=d+m-2: %s, at L=d+m: %s\n",
              pop_below ? "YES" : "no", pop_at ? "YES" : "no");
  ok = ok && deq_below && !deq_at && pop_below && !pop_at;

  std::printf(
      "\nWith eps = (1-1/n)u <= d/3 the bound is TIGHT: the compliant\n"
      "implementation achieves d+eps = d+m (Table I row 1).\n");
  return finish(ok);
}
