// Theorem D.1 (Figs. 10-14): lower bound (1 - 1/k)u for eventually
// non-self-last-permuting operations (write, enqueue, push), k = n.
//
// Exhibits:
//   1. the proof's R1 (the Fig. 10 delay matrix) and its Step-2 shift R2
//      (Fig. 13) are admissible; the compliant algorithm linearizes both;
//   2. the shift vector reproduces the proof's arithmetic: every shifted
//      k-block delay lands on d or d-u and the skew is exactly (1-1/k)u;
//   3. eager ack sweep: writes acked faster than (1-1/n)u get inverted
//      against real time and a probe read observes it.
#include "bench_common.h"
#include "shift/proof_scenarios.h"
#include "shift/shift.h"
#include "types/queue_type.h"
#include "types/register_type.h"
#include "types/stack_type.h"

using namespace linbound;
using namespace linbound::bench;

namespace {

bool violates_at(const std::shared_ptr<const ObjectModel>& model,
                 const SystemTiming& t, const Operation& mut_a,
                 const Operation& mut_b, const Operation& probe, Tick ack) {
  const AlgorithmDelays algo = AlgorithmDelays::eager_mop(t, 0, ack);
  const Scenario s = mop_order_flip(t, mut_a, mut_b, probe, 10000);
  const ScenarioOutcome outcome = run_scenario(model, s, algo);
  return outcome.admissibility.admissible && !outcome.linearizable.ok;
}

}  // namespace

int main() {
  print_header("Theorem D.1: |MOP| >= (1-1/k)u (write/enqueue/push), k = n");
  const SystemTiming t = default_timing();
  const int k = kN;
  const Tick bound = t.optimal_skew(k);  // (1-1/k)u == eps here
  bool ok = true;

  std::printf("parameters: u=%lld, k=n=%d -> bound (1-1/k)u = %lld (= optimal eps)\n\n",
              static_cast<long long>(t.u), k, static_cast<long long>(bound));

  // Exhibit 1+2: the paper's R1 and its shift.
  auto model = std::make_shared<RegisterModel>();
  std::vector<Operation> writes;
  for (int i = 0; i < k; ++i) writes.push_back(reg::write(i + 1));
  Scenario r1 = thm_d1_paper_run(t, writes, reg::read(), 10000);
  const AlgorithmDelays standard = AlgorithmDelays::standard(t, 0);
  const ScenarioOutcome out1 = run_scenario(model, r1, standard);
  std::printf("R1 (Fig. 10 matrix): admissible=%s linearizable=%s probe=%s\n",
              out1.admissibility.admissible ? "yes" : "NO",
              out1.linearizable.ok ? "yes" : "NO",
              out1.history.ops().back().ret.to_string().c_str());
  ok = ok && out1.admissibility.admissible && out1.linearizable.ok;

  const std::vector<Tick> x = thm_d1_shift_vector(t, r1.n, k, /*z=*/k - 1);
  std::printf("shift vector x (Step 2): [");
  for (std::size_t i = 0; i < x.size(); ++i) {
    std::printf("%s%lld", i ? ", " : "", static_cast<long long>(x[i]));
  }
  std::printf("]\n");
  const Scenario r2 = shift_scenario(r1, x);
  // Check the proof's arithmetic: shifted delays in the k-block are d or d-u.
  const auto* matrix = dynamic_cast<const MatrixDelayPolicy*>(r2.delays.get());
  bool delays_extremal = true;
  for (ProcessId i = 0; i < k; ++i) {
    for (ProcessId j = 0; j < k; ++j) {
      if (i == j) continue;
      const Tick delay = matrix->get(i, j);
      if (delay != t.d && delay != t.d - t.u) delays_extremal = false;
    }
  }
  const ScenarioOutcome out2 = run_scenario(model, r2, standard);
  std::printf("R2 = shift(R1): delays all in {d-u, d}: %s; admissible=%s "
              "linearizable=%s probe=%s\n",
              delays_extremal ? "yes" : "NO",
              out2.admissibility.admissible ? "yes" : "NO",
              out2.linearizable.ok ? "yes" : "NO",
              out2.history.ops().back().ret.to_string().c_str());
  ok = ok && delays_extremal && out2.admissibility.admissible && out2.linearizable.ok;

  // The shift moved the last-timestamped writer: the probe may legitimately
  // see a different final value in R2 than in R1 -- that is the proof's
  // last(pi) != last(pi') observation made executable.
  std::printf("probe sees %s in R1 vs %s in R2 (different last writer ok)\n",
              out1.history.ops().back().ret.to_string().c_str(),
              out2.history.ops().back().ret.to_string().c_str());

  // Exhibit 3: eager ack sweep.
  std::printf("\neager write-ack sweep (violation expected iff ack <= bound-2):\n");
  TextTable table({"MOP ack latency", "vs bound (1-1/n)u", "violation found"});
  for (Tick ack : {bound - 150, bound - 50, bound - 2, bound, bound + 100}) {
    const bool violated =
        violates_at(model, t, reg::write(1), reg::write(2), reg::read(), ack);
    const char* rel = ack < bound ? "below" : (ack == bound ? "at" : "above");
    table.add_row({format_ticks(ack), rel, violated ? "YES" : "no"});
    if (ack <= bound - 2) ok = ok && violated;
    if (ack >= bound) ok = ok && !violated;
  }
  std::printf("%s", table.render().c_str());

  // Same frontier for enqueue and push.
  auto queue_model = std::make_shared<QueueModel>();
  auto stack_model = std::make_shared<StackModel>();
  const bool enq = violates_at(queue_model, t, queue_ops::enqueue(1),
                               queue_ops::enqueue(2), queue_ops::peek(), bound - 2);
  const bool psh = violates_at(stack_model, t, stack_ops::push(1),
                               stack_ops::push(2), stack_ops::peek(), bound - 2);
  std::printf("\nenqueue violates at ack=(1-1/n)u-2: %s; push: %s\n",
              enq ? "YES" : "no", psh ? "YES" : "no");
  ok = ok && enq && psh;

  std::printf(
      "\nThe bound is TIGHT: the compliant ack eps + X with X = 0 and optimal\n"
      "eps = (1-1/n)u achieves it exactly (Tables I-III mutator rows).\n");
  return finish(ok);
}
