// Theorem E.1 (Figs. 15-17): for a non-overwriting, immediately
// self-commuting mutator OP and a pure accessor AOP,
// |OP| + |AOP| >= d + min{eps, u, d/3}  (enqueue+peek, push+peek).
//
// The bench maps the violation frontier of the Algorithm-1 family: for a
// grid of (A, B) = (|MOP| ack, |AOP| wait) it runs the three-scenario
// battery and reports whether any run violates linearizability.  The
// theorem predicts violations for every split with A + B < d + m; the
// family's achievable frontier is A >= eps + X and B >= d + eps - X, i.e.
// A + B = d + 2eps -- the paper's upper bound, leaving its open gap of eps
// visible in the output.
#include "bench_common.h"
#include "shift/proof_scenarios.h"
#include "types/queue_type.h"
#include "types/stack_type.h"

using namespace linbound;
using namespace linbound::bench;

namespace {

bool violates(const std::shared_ptr<const ObjectModel>& model,
              const SystemTiming& t, const Operation& mut_a,
              const Operation& mut_b, const Operation& acc, Tick a, Tick b,
              Tick x) {
  AlgorithmDelays algo = AlgorithmDelays::standard(t, x);
  algo.mop_ack = a;
  algo.aop_respond = b;
  for (const Scenario& s : pair_bound_battery(t, mut_a, mut_b, acc, algo, 10000)) {
    const ScenarioOutcome outcome = run_scenario(model, s, algo);
    if (outcome.admissibility.admissible && !outcome.linearizable.ok) return true;
  }
  return false;
}

}  // namespace

int main() {
  print_header("Theorem E.1: |MOP| + |AOP| >= d + min{eps,u,d/3} (enqueue+peek)");
  const SystemTiming t = default_timing();
  const Tick m = t.m();
  const Tick lb = t.d + m;
  const Tick ub = t.d + 2 * t.eps;
  bool ok = true;

  std::printf("theorem LB: d+m = %lldus; Algorithm 1 UB: d+2eps = %lldus "
              "(open gap: %lldus)\n\n",
              static_cast<long long>(lb), static_cast<long long>(ub),
              static_cast<long long>(ub - lb));

  auto queue_model = std::make_shared<QueueModel>();
  const Operation enq1 = queue_ops::enqueue(1);
  const Operation enq2 = queue_ops::enqueue(2);
  const Operation peek = queue_ops::peek();

  // Grid: X in {0, 150, 300}; totals from below the LB up to the UB.
  std::printf("violation map over (total = A+B, split): X = back-dating parameter\n");
  TextTable table({"total A+B", "vs d+m", "A=eps+X, B=rest", "A=total/2",
                   "A=total-(d-1), B=d-1"});
  for (Tick total : {lb - 200, lb - 2, lb, ub - 100, ub - 2, ub}) {
    std::vector<std::string> row{format_ticks(total),
                                 total < lb ? "below" : (total < ub ? "in gap" : "at UB")};
    // Split 1: mutator gets the compliant eps+X share (X=0), accessor the rest.
    {
      const Tick a = t.eps;
      const Tick b = total - a;
      row.push_back(violates(queue_model, t, enq1, enq2, peek, a, b, 0) ? "VIOLATES"
                                                                        : "safe");
    }
    // Split 2: even split.
    {
      const Tick a = total / 2;
      const Tick b = total - a;
      row.push_back(violates(queue_model, t, enq1, enq2, peek, a, b, 0) ? "VIOLATES"
                                                                        : "safe");
    }
    // Split 3: accessor pinned just below d, mutator takes the rest.
    {
      const Tick b = t.d - 1;
      const Tick a = total - b;
      row.push_back(a < 0 ? "-"
                          : (violates(queue_model, t, enq1, enq2, peek, a, b, 0)
                                 ? "VIOLATES"
                                 : "safe"));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s", table.render().c_str());

  // Assertions (margins account for integer-tick granularity): with the
  // compliant mutator share A = eps, totals comfortably below the bound
  // violate via the gap-mutator run; the compliant point
  // (A, B) = (eps, d+eps) never does.
  for (Tick total : {lb - 200, lb - 50}) {
    ok = ok && violates(queue_model, t, enq1, enq2, peek, t.eps, total - t.eps, 0);
  }
  ok = ok && !violates(queue_model, t, enq1, enq2, peek, t.eps, t.d + t.eps, 0);

  // Stack mirror: the stack's peek masks the gap-mutator state (peek after
  // {push2} equals peek after {push1, push2}), so its violation mechanism
  // is the order flip, which needs the mutator share squeezed below eps.
  auto stack_model = std::make_shared<StackModel>();
  const bool stack_flip = violates(stack_model, t, stack_ops::push(1),
                                   stack_ops::push(2), stack_ops::peek(),
                                   t.eps - 2, t.d, 0);
  const bool stack_compliant = violates(stack_model, t, stack_ops::push(1),
                                        stack_ops::push(2), stack_ops::peek(),
                                        t.eps, t.d + t.eps, 0);
  std::printf("\npush+peek: violates with mutator share eps-2: %s; "
              "compliant d+2eps safe: %s\n",
              stack_flip ? "YES" : "no", stack_compliant ? "NO (bug)" : "yes");
  ok = ok && stack_flip && !stack_compliant;

  std::printf(
      "\nReading the map: with the compliant mutator share (A = eps) the\n"
      "family violates for totals below ~d+eps = d+m, matching the theorem's\n"
      "frontier for these splits.  Splits that over-provision the mutator\n"
      "(A >= u) evade every executable counterexample we construct -- the\n"
      "thesis's generic-algorithm proof does not hand us a schedule there\n"
      "(see EXPERIMENTS.md).  The compliant total d+2eps is safe everywhere;\n"
      "whether an algorithm can live inside the (d+m, d+2eps) gap is the\n"
      "paper's open question (Chapter VII).\n");
  return finish(ok);
}
