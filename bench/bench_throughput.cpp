// Simulator-core throughput: a million-operation open-loop run through
// Algorithm 1 (plus centralized / TOB baseline runs), measured end-to-end
// and at the queue level, with a regression gate against the seed binary
// heap.
//
// What runs:
//   * HeavyTrafficWorkload (core/workload.h) drives --ops (default 1M)
//     register reads/writes through a 4-replica Algorithm 1 system, once
//     in the tuned fast shape (calendar queue, flat pending tables, batched
//     delivery, pools pre-sized from the workload bound) and once in the
//     seed shape (binary heap, std::map reference tables, per-message
//     delivery, cold pools).  The two traces are FNV-1a-hashed through
//     write_trace and must be byte-identical -- the determinism contract,
//     checked at full scale across every structural difference at once.
//   * The fast run is split at a warm-up point (run_until + run, which
//     produces the identical trace) and the operator-new interposer
//     (common/alloc_count.cpp, linked with COUNT_ALLOCS) counts its
//     steady-state heap allocations -- recorded as
//     throughput_allocs_steady_state, expected 0.
//   * The calendar run records every queue push/pop via EventQueue::set_log;
//     that exact interleaving is replayed through both queue
//     implementations in isolation, timing the data structure alone
//     (the end-to-end run also spends time in process logic, so the
//     queue-level replay is where the structural speedup is visible).
//   * The same workload (at --baseline-ops, default 200k) runs through the
//     centralized and TOB baselines for the cross-algorithm picture.
//
// Latency percentiles are reported against the paper's bounds: accessors
// respond in exactly d+eps-X and pure mutators ack in eps+X under the
// default worst-case delay policy (all messages take d), so p50 == max ==
// bound is the expected shape; the centralized/TOB numbers sit at ~2d
// (the folklore bound Algorithm 1 beats).
//
// Exit status is 0 only when
//   * both replica runs complete (every operation answered, no event-cap
//     trip) and their traces hash identically,
//   * accessor/mutator worst-case latencies meet the paper's bounds, and
//   * max(queue-replay speedup, end-to-end speedup) >= 3x over the seed
//     shape -- the throughput-regression gate enforced by perf CI.
//
// Results merge into BENCH_perf.json under throughput_* keys (JsonReport
// preserves bench_perf's keys).
#include <cstdio>
#include <cstring>
#include <memory>
#include <ostream>
#include <streambuf>
#include <string>
#include <type_traits>
#include <vector>

#include "bench_common.h"
#include "checker/history.h"
#include "checker/lin_checker.h"
#include "checker/streaming_checker.h"
#include "common/alloc_count.h"
#include "core/system.h"
#include "core/workload.h"
#include "harness/latency.h"
#include "sim/trace_io.h"
#include "types/register_type.h"

using namespace linbound;
using namespace linbound::bench;

namespace {

struct RunResult {
  bool complete = false;
  double seconds = 0;
  std::size_t events = 0;
  std::size_t ops = 0;
  std::uint64_t trace_hash = 0;
  std::uint64_t allocs_steady = 0;    ///< heap allocs after warm-up (pooled)
  bool allocs_measured = false;
  std::size_t queue_high_water = 0;   ///< EventQueue peak size
  TraceStats stats;
  LatencyReport latency;

  double events_per_s() const { return seconds > 0 ? events / seconds : 0; }
  double ops_per_s() const { return seconds > 0 ? ops / seconds : 0; }
};

/// The structural knobs the gate compares: the tuned fast shape (all
/// defaults) vs the seed shape (every knob at the pre-optimization value).
struct RunShape {
  EventQueueImpl impl = EventQueueImpl::kCalendar;
  TableMode table = TableMode::kFlat;
  DeliveryMode delivery = DeliveryMode::kBatched;
  /// Pre-size every pool from the workload bound and split the run at a
  /// warm-up point to count steady-state heap allocations.
  bool pooled = true;
};

RunShape fast_shape() { return RunShape{}; }

RunShape seed_shape() {
  RunShape s;
  s.impl = EventQueueImpl::kBinaryHeap;
  s.table = TableMode::kReference;
  s.delivery = DeliveryMode::kPerMessage;
  s.pooled = false;
  return s;
}

HeavyTrafficOptions workload_options(std::size_t ops) {
  HeavyTrafficOptions w;
  w.clients = kN;
  w.total_ops = ops;
  // Open-loop floor above every system's worst-case response (d+eps for
  // Algorithm 1, ~2d for the baselines); prime jitter spreads arrivals
  // across ticks so bucket occupancy is irregular, not strided.
  w.min_gap = 4 * default_timing().d;
  w.jitter = 997;
  return w;
}

SystemOptions system_options(std::size_t ops, const RunShape& shape) {
  SystemOptions sys;
  sys.n = kN;
  sys.timing = default_timing();
  sys.x = 0;
  sys.queue_impl = shape.impl;
  sys.table_mode = shape.table;
  sys.delivery_mode = shape.delivery;
  // Algorithm 1 costs ~3n+2 events per mutator (broadcast + per-replica
  // holdback timers); 40x leaves generous headroom for every system here.
  sys.max_events = ops * 40 + 100'000;
  return sys;
}

HeavyTrafficOptions shaped_workload(std::size_t ops, const RunShape& shape) {
  HeavyTrafficOptions w = workload_options(ops);
  if (shape.pooled) {
    // Size every pool for the whole run (pool growth is monotonic; the
    // arena holds all payloads to end-of-run anyway, so reserving the full
    // volume only front-loads memory the run would reach regardless).
    // Stock Algorithm 1 at n=4: broadcast + acks stay well under 12
    // messages and ~256 payload bytes per op.
    w.messages_per_op = 12;
    w.payload_bytes_per_op = 256;
    w.timer_slots_per_process = 1024;
    w.events_per_tick = 16;
  }
  return w;
}

/// One open-loop run through `SystemT`; when `log` is non-null the queue
/// records its push/pop stream into it (replica calendar run only -- the
/// one extra branch per operation biases *against* the calendar, which is
/// the conservative direction for the gate).
template <typename SystemT>
RunResult run_system(const std::shared_ptr<const ObjectModel>& model,
                     std::size_t ops, RunShape shape,
                     std::vector<std::int64_t>* log, std::size_t log_cap) {
  const SystemOptions sys = system_options(ops, shape);
  const HeavyTrafficOptions w = shaped_workload(ops, shape);

  SystemT system(model, sys);
  if constexpr (std::is_same_v<SystemT, ReplicaSystem>) {
    if (shape.pooled) {
      for (ProcessId p = 0; p < kN; ++p) system.replica(p).reserve_pending(256);
    }
  }
  HeavyTrafficWorkload workload(system.sim(), w);
  if (log) {
    log->clear();
    log->reserve(log_cap);
    system.sim().event_queue().set_log(log, log_cap);
  }
  system.sim().start();
  workload.arm();

  RunResult out;
  bool quiescent = false;
  const double t0 = now_seconds();
  if (shape.pooled && alloc_counting_enabled()) {
    // Split run: run_until(t) + run() yields the identical trace to a
    // single run(), so the counter snapshot between the halves measures
    // the steady state of the real configuration.  ~15% of the schedule
    // is far past every pool's high-water mark (open-loop arrivals are
    // steady from the first operation).
    const Tick warmup = static_cast<Tick>(ops / static_cast<std::size_t>(kN)) *
                        (w.min_gap + w.jitter / 2) * 15 / 100;
    system.sim().run_until(warmup);
    const std::uint64_t before = heap_allocs();
    quiescent = system.sim().run();
    out.allocs_steady = heap_allocs() - before;
    out.allocs_measured = true;
  } else {
    quiescent = system.sim().run();
  }
  out.seconds = now_seconds() - t0;
  out.queue_high_water = system.sim().event_queue().high_water();

  const Trace& trace = system.sim().trace();
  out.complete = quiescent && trace.complete() &&
                 trace.ops.size() == ops && workload.scheduled() == ops;
  out.events = system.sim().events_processed();
  out.ops = trace.ops.size();
  out.trace_hash = hash_trace(trace);
  out.stats = trace.stats;
  out.latency.absorb(*model, trace);
  return out;
}

/// Replay a recorded push/pop interleaving through a bare EventQueue:
/// the queue-level timing, free of process logic.  Returns seconds; sinks
/// the popped (time, priority) stream into `sink` so the work cannot be
/// optimized away (and so the two impls' pop streams can be compared).
double replay_log(EventQueueImpl impl, const std::vector<std::int64_t>& log,
                  std::uint64_t* sink) {
  EventQueue queue(impl);
  queue.reserve(4096);
  std::uint64_t acc = 14695981039346656037ull;
  const double t0 = now_seconds();
  for (const std::int64_t entry : log) {
    if (entry == EventQueue::kPopSentinel) {
      if (queue.empty()) continue;  // guard: log truncated mid-stream
      const SimEvent ev = queue.pop();
      acc = (acc ^ static_cast<std::uint64_t>(ev.time)) * 1099511628211ull;
      acc = (acc ^ static_cast<std::uint64_t>(ev.priority)) * 1099511628211ull;
    } else {
      SimEvent ev;
      ev.kind = EventKind::kTimer;  // POD kind: pushing allocates nothing
      queue.push_typed(entry >> 1, static_cast<EventPriority>(entry & 1), ev);
    }
  }
  const double elapsed = now_seconds() - t0;
  *sink = acc;
  return elapsed;
}

std::string parse_flag(int argc, char** argv, const char* flag,
                       const char* fallback) {
  const std::size_t flag_len = std::strlen(flag);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == flag && i + 1 < argc) return argv[i + 1];
    if (arg.rfind(flag, 0) == 0 && arg.size() > flag_len &&
        arg[flag_len] == '=') {
      return arg.substr(flag_len + 1);
    }
  }
  return fallback;
}

std::size_t parse_size(int argc, char** argv, const char* flag,
                       std::size_t fallback) {
  const std::string value = parse_flag(argc, argv, flag, "");
  return value.empty() ? fallback
                       : static_cast<std::size_t>(std::atoll(value.c_str()));
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

/// The `--checked` mode: the fast-shape million-op run again, this time
/// with a StreamingChecker tapping the simulator's invoke/response hooks --
/// the full history is verified linearizable *online*, during the run, with
/// resident checker state bounded by the open window instead of the
/// history.  Everything below is measured against the unchecked fast run:
///   * the trace must stay byte-identical (the tap is observation-only),
///   * the online verdict + witness must equal the offline segmented
///     checker's at jobs 1/2/4 (byte-compared), and
///   * checker memory (max_resident_states) must stay structurally bounded:
///     < ops/100, enforced on every box (no thread-count waiver -- it is a
///     memory property, not a wall-clock one).
/// The checked/unchecked events-per-second ratio is the overhead price; its
/// >= 1/3 gate is wall-clock and follows the usual thread waiver.
struct CheckedRun {
  bool complete = false;
  bool tap_invisible = false;   ///< trace hash == unchecked run's
  bool identical = false;       ///< verdict+witness == offline at jobs 1/2/4
  bool memory_ok = false;
  double run_s = 0;             ///< simulate + pipelined drain
  double finalize_s = 0;        ///< final-window search + witness assembly
  std::size_t events = 0;
  CheckResult live;
  std::size_t max_window = 0;
  std::size_t segments_retired = 0;
  std::size_t offline_resident = 0;  ///< offline jobs=1 memo population

  double total_s() const { return run_s + finalize_s; }
  double events_per_s() const {
    return total_s() > 0 ? events / total_s() : 0;
  }
};

CheckedRun run_checked(const std::shared_ptr<const ObjectModel>& model,
                       std::size_t ops, int checker_jobs,
                       std::uint64_t unchecked_hash) {
  const RunShape shape = fast_shape();
  ReplicaSystem system(model, system_options(ops, shape));
  for (ProcessId p = 0; p < kN; ++p) system.replica(p).reserve_pending(256);
  HeavyTrafficWorkload workload(system.sim(), shaped_workload(ops, shape));

  StreamingCheckOptions so;
  so.jobs = checker_jobs;
  so.ring_capacity = 8192;
  StreamingChecker checker(*model, so);
  checker.attach(system.sim());

  system.sim().start();
  workload.arm();

  CheckedRun out;
  const double t0 = now_seconds();
  const bool quiescent = system.sim().run();
  out.run_s = now_seconds() - t0;
  out.live = checker.finalize();
  out.finalize_s = now_seconds() - t0 - out.run_s;

  const Trace& trace = system.sim().trace();
  out.complete = quiescent && trace.complete() && trace.ops.size() == ops &&
                 checker.ops_seen() == ops;
  out.events = system.sim().events_processed();
  out.max_window = checker.max_window_ops();
  out.segments_retired = checker.segments_retired();
  out.tap_invisible = hash_trace(trace) == unchecked_hash;
  out.memory_ok = out.live.max_resident_states < ops / 100;

  // Offline reference: same trace through the segmented checker at jobs
  // 1/2/4; verdict and witness must be byte-identical to the online run.
  const auto [history, pending] = history_with_pending(trace);
  out.identical = true;
  for (const int jobs : {1, 2, 4}) {
    CheckOptions co;
    co.jobs = jobs;
    const CheckResult off =
        check_linearizable_with_pending(*model, history, pending, co);
    out.identical = out.identical && off.ok == out.live.ok &&
                    off.witness == out.live.witness;
    if (jobs == 1) out.offline_resident = off.max_resident_states;
  }
  return out;
}

void print_class_latency(const char* label, const LatencyReport& report,
                         OpClass cls, Tick bound) {
  auto it = report.by_class.find(cls);
  if (it == report.by_class.end()) {
    std::printf("  %-10s (no samples)\n", label);
    return;
  }
  const LatencySummary& s = it->second;
  std::printf("  %-10s p50=%lld p95=%lld p99=%lld max=%lld  (bound %lld: %s)\n",
              label, static_cast<long long>(s.percentile(50)),
              static_cast<long long>(s.percentile(95)),
              static_cast<long long>(s.percentile(99)),
              static_cast<long long>(s.max), static_cast<long long>(bound),
              s.max <= bound ? "met" : "EXCEEDED");
}

Tick class_max(const LatencyReport& report, OpClass cls) {
  auto it = report.by_class.find(cls);
  return it == report.by_class.end() ? kNoTime : it->second.max;
}

Tick class_pct(const LatencyReport& report, OpClass cls, double p) {
  auto it = report.by_class.find(cls);
  return it == report.by_class.end() ? kNoTime : it->second.percentile(p);
}

}  // namespace

int main(int argc, char** argv) {
  print_header("bench_throughput: million-op open-loop simulator throughput");

  const std::size_t ops = parse_size(argc, argv, "--ops", 1'000'000);
  const std::size_t baseline_ops =
      parse_size(argc, argv, "--baseline-ops", 200'000);
  const std::size_t log_cap = parse_size(argc, argv, "--log-cap", 8'000'000);
  const SystemTiming timing = default_timing();
  const Tick aop_bound = timing.d + timing.eps;  // d+eps-X with X=0
  const Tick mop_bound = timing.eps;             // eps+X with X=0

  auto model = std::make_shared<RegisterModel>();

  // --- 1. Algorithm 1, tuned fast shape, with queue log -------------------
  std::printf("replica run: %zu ops, n=%d, d=%lld u=%lld eps=%lld, X=0\n", ops,
              kN, static_cast<long long>(timing.d),
              static_cast<long long>(timing.u),
              static_cast<long long>(timing.eps));
  std::vector<std::int64_t> queue_log;
  const RunResult calendar = run_system<ReplicaSystem>(
      model, ops, fast_shape(), &queue_log, log_cap);
  std::printf(
      "fast:      %.3fs, %zu events (%.0f events/s, %.0f ops/s)%s\n",
      calendar.seconds, calendar.events, calendar.events_per_s(),
      calendar.ops_per_s(), calendar.complete ? "" : "  [INCOMPLETE]");
  std::printf(
      "timers:    %llu set, %llu cancelled, %llu purged at dispatch\n",
      static_cast<unsigned long long>(calendar.stats.timers_set),
      static_cast<unsigned long long>(calendar.stats.timers_cancelled),
      static_cast<unsigned long long>(calendar.stats.timers_purged));
  const double batch_mean =
      calendar.stats.deliver_batches > 0
          ? static_cast<double>(calendar.stats.batched_messages) /
                static_cast<double>(calendar.stats.deliver_batches)
          : 0.0;
  if (calendar.allocs_measured) {
    std::printf(
        "pools:     %llu steady-state heap allocs, queue high water %zu, "
        "mean delivery batch %.2f\n",
        static_cast<unsigned long long>(calendar.allocs_steady),
        calendar.queue_high_water, batch_mean);
  } else {
    std::printf(
        "pools:     steady-state allocs not measured (link linbound_alloccount)"
        "; queue high water %zu, mean delivery batch %.2f\n",
        calendar.queue_high_water, batch_mean);
  }

  // --- 2. Algorithm 1, seed shape (the regression baseline): binary heap,
  //        reference std::map tables, per-message delivery, cold pools ------
  const RunResult heap = run_system<ReplicaSystem>(
      model, ops, seed_shape(), nullptr, 0);
  std::printf(
      "seed:      %.3fs, %zu events (%.0f events/s, %.0f ops/s)%s\n",
      heap.seconds, heap.events, heap.events_per_s(), heap.ops_per_s(),
      heap.complete ? "" : "  [INCOMPLETE]");

  const bool traces_identical = calendar.trace_hash == heap.trace_hash &&
                                calendar.events == heap.events;
  const double e2e_speedup =
      calendar.seconds > 0 ? heap.seconds / calendar.seconds : 0;
  std::printf("traces:    %s (fnv1a %016llx), end-to-end speedup %.2fx\n",
              traces_identical ? "byte-identical" : "DIVERGED",
              static_cast<unsigned long long>(calendar.trace_hash),
              e2e_speedup);

  // --- 3. Queue-level replay of the recorded interleaving -----------------
  std::uint64_t sink_cal = 0, sink_heap = 0;
  const double replay_cal_s =
      replay_log(EventQueueImpl::kCalendar, queue_log, &sink_cal);
  const double replay_heap_s =
      replay_log(EventQueueImpl::kBinaryHeap, queue_log, &sink_heap);
  const bool replay_identical = sink_cal == sink_heap;
  const double replay_speedup =
      replay_cal_s > 0 ? replay_heap_s / replay_cal_s : 0;
  std::printf(
      "replay:    %zu log entries; calendar %.3fs, heap %.3fs (%.2fx, pops %s)\n",
      queue_log.size(), replay_cal_s, replay_heap_s, replay_speedup,
      replay_identical ? "identical" : "DIVERGED");

  // --- 4. Latency percentiles vs the paper's bounds ------------------------
  std::printf("\nlatency (replica, %zu ops):\n", ops);
  print_class_latency("accessor", calendar.latency, OpClass::kPureAccessor,
                      aop_bound);
  print_class_latency("mutator", calendar.latency, OpClass::kPureMutator,
                      mop_bound);
  const bool bounds_met =
      class_max(calendar.latency, OpClass::kPureAccessor) <= aop_bound &&
      class_max(calendar.latency, OpClass::kPureMutator) <= mop_bound;

  // --- 5. Centralized / TOB baselines (folklore ~2d latency) ---------------
  RunShape baseline_shape = fast_shape();
  baseline_shape.pooled = false;  // no replica pools; latency picture only
  const RunResult central = run_system<CentralizedSystem>(
      model, baseline_ops, baseline_shape, nullptr, 0);
  const RunResult tob = run_system<TobSystem>(
      model, baseline_ops, baseline_shape, nullptr, 0);
  std::printf("\nbaselines (%zu ops each, vs folklore 2d = %lld):\n",
              baseline_ops, static_cast<long long>(2 * timing.d));
  std::printf("  centralized: %.3fs (%.0f events/s), worst latency %lld%s\n",
              central.seconds, central.events_per_s(),
              static_cast<long long>(
                  class_max(central.latency, OpClass::kPureAccessor)),
              central.complete ? "" : "  [INCOMPLETE]");
  std::printf("  tob:         %.3fs (%.0f events/s), worst latency %lld%s\n",
              tob.seconds, tob.events_per_s(),
              static_cast<long long>(
                  class_max(tob.latency, OpClass::kPureAccessor)),
              tob.complete ? "" : "  [INCOMPLETE]");

  // --- 6. Online (streaming) linearizability check at full scale ----------
  const bool checked_mode = has_flag(argc, argv, "--checked");
  const int checker_jobs = 2;  // one producer (the sim), one checker worker
  CheckedRun checked;
  bool checked_speedup_ok = true;
  double checked_speedup = 0;
  if (checked_mode) {
    std::printf("\nchecked run: streaming checker tapped in, jobs=%d\n",
                checker_jobs);
    checked = run_checked(model, ops, checker_jobs, calendar.trace_hash);
    checked_speedup = calendar.events_per_s() > 0
                          ? checked.events_per_s() / calendar.events_per_s()
                          : 0;
    std::printf(
        "checked:   %.3fs run + %.3fs finalize (%.0f events/s, %.2fx of "
        "unchecked)%s\n",
        checked.run_s, checked.finalize_s, checked.events_per_s(),
        checked_speedup, checked.complete ? "" : "  [INCOMPLETE]");
    std::printf(
        "verdict:   %s, %llu segments (%zu retired online), witness %s "
        "offline at jobs 1/2/4\n",
        checked.live.ok ? "linearizable" : "VIOLATION",
        static_cast<unsigned long long>(checked.live.segments),
        checked.segments_retired,
        checked.identical ? "identical to" : "DIVERGED from");
    std::printf(
        "memory:    %zu resident states at peak (offline memo: %zu), window "
        "high water %zu ops -- %s\n",
        checked.live.max_resident_states, checked.offline_resident,
        checked.max_window,
        checked.memory_ok ? "bounded" : "UNBOUNDED (>= ops/100)");
    std::printf("trace:     %s\n",
                checked.tap_invisible ? "byte-identical to unchecked run"
                                      : "PERTURBED BY THE TAP");
    // The overhead ratio is wall-clock, so it follows the thread waiver;
    // verdict/witness identity, tap invisibility and the memory bound are
    // structural and always gate.
    checked_speedup_ok =
        !bench::speedup_gates_enforced() || checked_speedup >= 1.0 / 3.0;
  }

  // --- Verdict + JSON ------------------------------------------------------
  // The gate compares the tuned fast shape against the seed shape (heap +
  // reference tables + per-message delivery + cold pools), so it prices the
  // whole data-oriented hot path, not just the queue swap.
  //
  // Drift policy: every throughput number cited in prose (EXPERIMENTS.md,
  // README.md, ROADMAP.md) must be copied from the committed
  // BENCH_perf.json, and a PR that regenerates BENCH_perf.json must update
  // those citations in the same change.  tools/check_bench_schema.sh keeps
  // the JSON itself shaped; the prose follows the JSON, never the reverse.
  const double gate_speedup = std::max(replay_speedup, e2e_speedup);
  // Identity and latency bounds always gate; the wall-clock ratio only
  // does on a box that can measure one (bench_common.h).
  const bool speedup_enforced = bench::speedup_gates_enforced();
  const bool speedup_ok = !speedup_enforced || gate_speedup >= 3.0;
  if (speedup_enforced) {
    std::printf("\nregression gate: max(replay %.2fx, end-to-end %.2fx) = "
                "%.2fx (need >= 3x vs seed shape)\n",
                replay_speedup, e2e_speedup, gate_speedup);
  } else {
    std::printf("\nregression gate waived (%u hardware threads < 4): "
                "max(replay %.2fx, end-to-end %.2fx) recorded, not asserted\n",
                bench::hardware_threads(), replay_speedup, e2e_speedup);
  }
  const bool ok = calendar.complete && heap.complete && central.complete &&
                  tob.complete && traces_identical && replay_identical &&
                  bounds_met && speedup_ok &&
                  (!checked_mode ||
                   (checked.complete && checked.live.ok && checked.identical &&
                    checked.tap_invisible && checked.memory_ok &&
                    checked_speedup_ok));

  JsonReport json(parse_flag(argc, argv, "--json", "BENCH_perf.json"));
  json.set("throughput_ops", ops);
  json.set("throughput_baseline_ops", baseline_ops);
  json.set("throughput_replica_events", calendar.events);
  json.set("throughput_calendar_s", calendar.seconds);
  json.set("throughput_heap_s", heap.seconds);
  json.set("throughput_calendar_events_per_s", calendar.events_per_s());
  json.set("throughput_heap_events_per_s", heap.events_per_s());
  json.set("throughput_calendar_ops_per_s", calendar.ops_per_s());
  json.set("throughput_e2e_speedup", e2e_speedup);
  json.set("throughput_replay_entries", queue_log.size());
  json.set("throughput_replay_calendar_s", replay_cal_s);
  json.set("throughput_replay_heap_s", replay_heap_s);
  json.set("throughput_replay_speedup", replay_speedup);
  json.set("throughput_gate_speedup", gate_speedup);
  // Every *_speedup key carries a *_speedup_threads sibling recording the
  // hardware parallelism behind the number (tools/check_bench_schema.sh).
  json.set("throughput_e2e_speedup_threads", bench::hardware_threads());
  json.set("throughput_replay_speedup_threads", bench::hardware_threads());
  json.set("throughput_gate_speedup_threads", bench::hardware_threads());
  json.set("throughput_speedup_gate_enforced", speedup_enforced);
  json.set("throughput_allocs_steady_state", calendar.allocs_steady);
  json.set("throughput_allocs_measured", calendar.allocs_measured);
  json.set("throughput_pool_high_water", calendar.queue_high_water);
  json.set("throughput_batch_mean_size", batch_mean);
  json.set("throughput_deliver_batches",
           static_cast<std::uint64_t>(calendar.stats.deliver_batches));
  json.set("throughput_traces_identical", traces_identical);
  json.set("throughput_replay_identical", replay_identical);
  json.set("throughput_timers_set",
           static_cast<std::uint64_t>(calendar.stats.timers_set));
  json.set("throughput_timers_cancelled",
           static_cast<std::uint64_t>(calendar.stats.timers_cancelled));
  json.set("throughput_timers_purged",
           static_cast<std::uint64_t>(calendar.stats.timers_purged));
  json.set("throughput_aop_bound", static_cast<long long>(aop_bound));
  json.set("throughput_aop_p50", static_cast<long long>(class_pct(
                                     calendar.latency, OpClass::kPureAccessor, 50)));
  json.set("throughput_aop_p99", static_cast<long long>(class_pct(
                                     calendar.latency, OpClass::kPureAccessor, 99)));
  json.set("throughput_aop_max", static_cast<long long>(class_max(
                                     calendar.latency, OpClass::kPureAccessor)));
  json.set("throughput_mop_bound", static_cast<long long>(mop_bound));
  json.set("throughput_mop_p50", static_cast<long long>(class_pct(
                                     calendar.latency, OpClass::kPureMutator, 50)));
  json.set("throughput_mop_p99", static_cast<long long>(class_pct(
                                     calendar.latency, OpClass::kPureMutator, 99)));
  json.set("throughput_mop_max", static_cast<long long>(class_max(
                                     calendar.latency, OpClass::kPureMutator)));
  json.set("throughput_bounds_met", bounds_met);
  json.set("throughput_centralized_events_per_s", central.events_per_s());
  json.set("throughput_centralized_max_latency",
           static_cast<long long>(
               class_max(central.latency, OpClass::kPureAccessor)));
  json.set("throughput_tob_events_per_s", tob.events_per_s());
  json.set("throughput_tob_max_latency",
           static_cast<long long>(
               class_max(tob.latency, OpClass::kPureAccessor)));
  if (checked_mode) {
    json.set("streaming_checker_ops", ops);
    json.set("streaming_checker_jobs", checker_jobs);
    json.set("streaming_checker_ok", checked.live.ok);
    json.set("streaming_checker_segments",
             static_cast<std::uint64_t>(checked.live.segments));
    json.set("streaming_checker_states",
             static_cast<std::uint64_t>(checked.live.states_explored));
    json.set("streaming_checker_states_per_s",
             checked.total_s() > 0 ? checked.live.states_explored /
                                         checked.total_s()
                                   : 0.0);
    json.set("streaming_checker_run_s", checked.run_s);
    json.set("streaming_checker_finalize_s", checked.finalize_s);
    json.set("streaming_checker_events_per_s", checked.events_per_s());
    json.set("streaming_checker_speedup", checked_speedup);
    json.set("streaming_checker_speedup_threads", bench::hardware_threads());
    json.set("streaming_checker_speedup_gate_enforced",
             bench::speedup_gates_enforced());
    json.set("streaming_checker_max_resident_states",
             static_cast<std::uint64_t>(checked.live.max_resident_states));
    json.set("streaming_checker_offline_resident_states",
             static_cast<std::uint64_t>(checked.offline_resident));
    json.set("streaming_checker_max_window_ops",
             static_cast<std::uint64_t>(checked.max_window));
    json.set("streaming_checker_memory_ok", checked.memory_ok);
    json.set("streaming_checker_identical", checked.identical);
    json.set("streaming_checker_tap_invisible", checked.tap_invisible);
  }
  std::printf(json.write() ? "wrote %s\n" : "FAILED writing %s\n",
              json.path().c_str());

  return finish(ok);
}
