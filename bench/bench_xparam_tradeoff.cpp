// The X-parameter trade-off of Chapter V (Section D): sweeping
// X over [0, d+eps-u] moves latency between pure mutators (eps + X) and
// pure accessors (d + eps - X) while their sum stays pinned at d + 2eps.
// Every point of the sweep is measured and checked linearizable.
#include "bench_common.h"
#include "core/workload.h"
#include "types/queue_type.h"

using namespace linbound;
using namespace linbound::bench;

int main(int argc, char** argv) {
  const int jobs = parse_jobs(argc, argv);
  print_header("X trade-off: |MOP| = eps+X vs |AOP| = d+eps-X (queue)");
  const SystemTiming t = default_timing();
  auto model = std::make_shared<QueueModel>();
  const OpMix mix{2, 2, 1};
  WorkloadFactory workload = [&](ProcessId, Rng& rng) {
    return random_queue_ops(rng, 10, mix);
  };

  bool ok = true;
  TextTable table({"X", "enqueue worst (= eps+X)", "peek worst (= d+eps-X)",
                   "sum (= d+2eps)", "all linearizable"});
  const Tick x_max = t.d + t.eps - t.u;  // 900
  for (Tick x = 0; x <= x_max; x += 150) {
    SweepOptions o = default_sweep(x, jobs);
    o.seeds = 3;
    const SweepResult result = run_replica_sweep(model, workload, o);
    const Tick mop = result.latency.worst_for_class(OpClass::kPureMutator);
    const Tick aop = result.latency.worst_for_class(OpClass::kPureAccessor);
    table.add_row({format_ticks(x), format_ticks(mop), format_ticks(aop),
                   format_ticks(mop + aop),
                   result.all_linearizable() ? "yes" : "NO"});
    ok = ok && result.all_linearizable() && mop == t.eps + x &&
         aop == t.d + t.eps - x && mop + aop == eval_d_plus_2eps(t);
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nEndpoints reproduce the paper's quoted numbers: X=0 gives the tight\n"
      "mutator bound (1-1/n)u = eps; X=d+eps-u gives accessors at u, leaving\n"
      "the u/2 gap to the accessor lower bound that the thesis records.\n");
  return finish(ok);
}
