# Empty dependencies file for bench_ablation_classes.
# This may be replaced when dependencies are built.
