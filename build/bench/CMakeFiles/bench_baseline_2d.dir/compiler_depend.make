# Empty compiler generated dependencies file for bench_baseline_2d.
# This may be replaced when dependencies are built.
