# Empty compiler generated dependencies file for bench_fig3_standard_shift.
# This may be replaced when dependencies are built.
