# Empty compiler generated dependencies file for bench_fig4_modified_shift.
# This may be replaced when dependencies are built.
