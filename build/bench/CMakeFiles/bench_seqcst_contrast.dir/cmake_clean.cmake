file(REMOVE_RECURSE
  "CMakeFiles/bench_seqcst_contrast.dir/bench_seqcst_contrast.cpp.o"
  "CMakeFiles/bench_seqcst_contrast.dir/bench_seqcst_contrast.cpp.o.d"
  "bench_seqcst_contrast"
  "bench_seqcst_contrast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_seqcst_contrast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
