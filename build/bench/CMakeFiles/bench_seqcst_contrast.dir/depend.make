# Empty dependencies file for bench_seqcst_contrast.
# This may be replaced when dependencies are built.
