file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_register.dir/bench_table1_register.cpp.o"
  "CMakeFiles/bench_table1_register.dir/bench_table1_register.cpp.o.d"
  "bench_table1_register"
  "bench_table1_register.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_register.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
