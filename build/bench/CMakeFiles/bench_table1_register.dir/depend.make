# Empty dependencies file for bench_table1_register.
# This may be replaced when dependencies are built.
