file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_queue.dir/bench_table2_queue.cpp.o"
  "CMakeFiles/bench_table2_queue.dir/bench_table2_queue.cpp.o.d"
  "bench_table2_queue"
  "bench_table2_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
