# Empty dependencies file for bench_table2_queue.
# This may be replaced when dependencies are built.
