file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_tree.dir/bench_table4_tree.cpp.o"
  "CMakeFiles/bench_table4_tree.dir/bench_table4_tree.cpp.o.d"
  "bench_table4_tree"
  "bench_table4_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
