# Empty dependencies file for bench_table4_tree.
# This may be replaced when dependencies are built.
