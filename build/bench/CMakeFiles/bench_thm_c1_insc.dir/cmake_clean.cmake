file(REMOVE_RECURSE
  "CMakeFiles/bench_thm_c1_insc.dir/bench_thm_c1_insc.cpp.o"
  "CMakeFiles/bench_thm_c1_insc.dir/bench_thm_c1_insc.cpp.o.d"
  "bench_thm_c1_insc"
  "bench_thm_c1_insc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm_c1_insc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
