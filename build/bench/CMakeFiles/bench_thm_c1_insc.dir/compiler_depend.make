# Empty compiler generated dependencies file for bench_thm_c1_insc.
# This may be replaced when dependencies are built.
