file(REMOVE_RECURSE
  "CMakeFiles/bench_thm_d1_permuting.dir/bench_thm_d1_permuting.cpp.o"
  "CMakeFiles/bench_thm_d1_permuting.dir/bench_thm_d1_permuting.cpp.o.d"
  "bench_thm_d1_permuting"
  "bench_thm_d1_permuting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm_d1_permuting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
