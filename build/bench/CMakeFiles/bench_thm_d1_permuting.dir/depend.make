# Empty dependencies file for bench_thm_d1_permuting.
# This may be replaced when dependencies are built.
