file(REMOVE_RECURSE
  "CMakeFiles/bench_thm_e1_pair.dir/bench_thm_e1_pair.cpp.o"
  "CMakeFiles/bench_thm_e1_pair.dir/bench_thm_e1_pair.cpp.o.d"
  "bench_thm_e1_pair"
  "bench_thm_e1_pair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm_e1_pair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
