# Empty compiler generated dependencies file for bench_thm_e1_pair.
# This may be replaced when dependencies are built.
