file(REMOVE_RECURSE
  "CMakeFiles/bench_xparam_tradeoff.dir/bench_xparam_tradeoff.cpp.o"
  "CMakeFiles/bench_xparam_tradeoff.dir/bench_xparam_tradeoff.cpp.o.d"
  "bench_xparam_tradeoff"
  "bench_xparam_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_xparam_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
