# Empty compiler generated dependencies file for bench_xparam_tradeoff.
# This may be replaced when dependencies are built.
