file(REMOVE_RECURSE
  "CMakeFiles/bound_explorer.dir/bound_explorer.cpp.o"
  "CMakeFiles/bound_explorer.dir/bound_explorer.cpp.o.d"
  "bound_explorer"
  "bound_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bound_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
