# Empty compiler generated dependencies file for bound_explorer.
# This may be replaced when dependencies are built.
