file(REMOVE_RECURSE
  "CMakeFiles/classify_type.dir/classify_type.cpp.o"
  "CMakeFiles/classify_type.dir/classify_type.cpp.o.d"
  "classify_type"
  "classify_type.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classify_type.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
