# Empty compiler generated dependencies file for classify_type.
# This may be replaced when dependencies are built.
