file(REMOVE_RECURSE
  "CMakeFiles/job_queue.dir/job_queue.cpp.o"
  "CMakeFiles/job_queue.dir/job_queue.cpp.o.d"
  "job_queue"
  "job_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/job_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
