# Empty compiler generated dependencies file for job_queue.
# This may be replaced when dependencies are built.
