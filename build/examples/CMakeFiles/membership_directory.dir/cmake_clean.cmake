file(REMOVE_RECURSE
  "CMakeFiles/membership_directory.dir/membership_directory.cpp.o"
  "CMakeFiles/membership_directory.dir/membership_directory.cpp.o.d"
  "membership_directory"
  "membership_directory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/membership_directory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
