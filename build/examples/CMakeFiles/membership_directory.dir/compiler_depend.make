# Empty compiler generated dependencies file for membership_directory.
# This may be replaced when dependencies are built.
