file(REMOVE_RECURSE
  "CMakeFiles/metrics_store.dir/metrics_store.cpp.o"
  "CMakeFiles/metrics_store.dir/metrics_store.cpp.o.d"
  "metrics_store"
  "metrics_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
