# Empty compiler generated dependencies file for metrics_store.
# This may be replaced when dependencies are built.
