# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;21;linbound_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_job_queue "/root/repo/build/examples/job_queue")
set_tests_properties(example_job_queue PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;22;linbound_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_membership_directory "/root/repo/build/examples/membership_directory")
set_tests_properties(example_membership_directory PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;23;linbound_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_org_chart "/root/repo/build/examples/org_chart")
set_tests_properties(example_org_chart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;24;linbound_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bound_explorer "/root/repo/build/examples/bound_explorer")
set_tests_properties(example_bound_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;25;linbound_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_classify_type "/root/repo/build/examples/classify_type")
set_tests_properties(example_classify_type PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;26;linbound_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_metrics_store "/root/repo/build/examples/metrics_store")
set_tests_properties(example_metrics_store PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;27;linbound_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_replay_trace "/root/repo/build/examples/replay_trace")
set_tests_properties(example_replay_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;28;linbound_example;/root/repo/examples/CMakeLists.txt;0;")
