
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/checker/brute_checker.cpp" "src/checker/CMakeFiles/linbound_checker.dir/brute_checker.cpp.o" "gcc" "src/checker/CMakeFiles/linbound_checker.dir/brute_checker.cpp.o.d"
  "/root/repo/src/checker/history.cpp" "src/checker/CMakeFiles/linbound_checker.dir/history.cpp.o" "gcc" "src/checker/CMakeFiles/linbound_checker.dir/history.cpp.o.d"
  "/root/repo/src/checker/lin_checker.cpp" "src/checker/CMakeFiles/linbound_checker.dir/lin_checker.cpp.o" "gcc" "src/checker/CMakeFiles/linbound_checker.dir/lin_checker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spec/CMakeFiles/linbound_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/linbound_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/linbound_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
