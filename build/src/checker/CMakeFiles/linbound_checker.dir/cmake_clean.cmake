file(REMOVE_RECURSE
  "CMakeFiles/linbound_checker.dir/brute_checker.cpp.o"
  "CMakeFiles/linbound_checker.dir/brute_checker.cpp.o.d"
  "CMakeFiles/linbound_checker.dir/history.cpp.o"
  "CMakeFiles/linbound_checker.dir/history.cpp.o.d"
  "CMakeFiles/linbound_checker.dir/lin_checker.cpp.o"
  "CMakeFiles/linbound_checker.dir/lin_checker.cpp.o.d"
  "liblinbound_checker.a"
  "liblinbound_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linbound_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
