file(REMOVE_RECURSE
  "liblinbound_checker.a"
)
