# Empty compiler generated dependencies file for linbound_checker.
# This may be replaced when dependencies are built.
