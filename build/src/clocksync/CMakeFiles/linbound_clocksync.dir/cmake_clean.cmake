file(REMOVE_RECURSE
  "CMakeFiles/linbound_clocksync.dir/lundelius_lynch.cpp.o"
  "CMakeFiles/linbound_clocksync.dir/lundelius_lynch.cpp.o.d"
  "liblinbound_clocksync.a"
  "liblinbound_clocksync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linbound_clocksync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
