file(REMOVE_RECURSE
  "liblinbound_clocksync.a"
)
