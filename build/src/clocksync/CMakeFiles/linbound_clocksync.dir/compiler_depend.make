# Empty compiler generated dependencies file for linbound_clocksync.
# This may be replaced when dependencies are built.
