file(REMOVE_RECURSE
  "CMakeFiles/linbound_common.dir/format.cpp.o"
  "CMakeFiles/linbound_common.dir/format.cpp.o.d"
  "CMakeFiles/linbound_common.dir/log.cpp.o"
  "CMakeFiles/linbound_common.dir/log.cpp.o.d"
  "CMakeFiles/linbound_common.dir/rng.cpp.o"
  "CMakeFiles/linbound_common.dir/rng.cpp.o.d"
  "CMakeFiles/linbound_common.dir/value.cpp.o"
  "CMakeFiles/linbound_common.dir/value.cpp.o.d"
  "liblinbound_common.a"
  "liblinbound_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linbound_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
