file(REMOVE_RECURSE
  "liblinbound_common.a"
)
