# Empty dependencies file for linbound_common.
# This may be replaced when dependencies are built.
