
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/centralized_algorithm.cpp" "src/core/CMakeFiles/linbound_core.dir/centralized_algorithm.cpp.o" "gcc" "src/core/CMakeFiles/linbound_core.dir/centralized_algorithm.cpp.o.d"
  "/root/repo/src/core/driver.cpp" "src/core/CMakeFiles/linbound_core.dir/driver.cpp.o" "gcc" "src/core/CMakeFiles/linbound_core.dir/driver.cpp.o.d"
  "/root/repo/src/core/replica_algorithm.cpp" "src/core/CMakeFiles/linbound_core.dir/replica_algorithm.cpp.o" "gcc" "src/core/CMakeFiles/linbound_core.dir/replica_algorithm.cpp.o.d"
  "/root/repo/src/core/synced_replica.cpp" "src/core/CMakeFiles/linbound_core.dir/synced_replica.cpp.o" "gcc" "src/core/CMakeFiles/linbound_core.dir/synced_replica.cpp.o.d"
  "/root/repo/src/core/system.cpp" "src/core/CMakeFiles/linbound_core.dir/system.cpp.o" "gcc" "src/core/CMakeFiles/linbound_core.dir/system.cpp.o.d"
  "/root/repo/src/core/to_execute.cpp" "src/core/CMakeFiles/linbound_core.dir/to_execute.cpp.o" "gcc" "src/core/CMakeFiles/linbound_core.dir/to_execute.cpp.o.d"
  "/root/repo/src/core/tob_algorithm.cpp" "src/core/CMakeFiles/linbound_core.dir/tob_algorithm.cpp.o" "gcc" "src/core/CMakeFiles/linbound_core.dir/tob_algorithm.cpp.o.d"
  "/root/repo/src/core/workload.cpp" "src/core/CMakeFiles/linbound_core.dir/workload.cpp.o" "gcc" "src/core/CMakeFiles/linbound_core.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/linbound_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/linbound_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/linbound_types.dir/DependInfo.cmake"
  "/root/repo/build/src/checker/CMakeFiles/linbound_checker.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/linbound_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
