file(REMOVE_RECURSE
  "CMakeFiles/linbound_core.dir/centralized_algorithm.cpp.o"
  "CMakeFiles/linbound_core.dir/centralized_algorithm.cpp.o.d"
  "CMakeFiles/linbound_core.dir/driver.cpp.o"
  "CMakeFiles/linbound_core.dir/driver.cpp.o.d"
  "CMakeFiles/linbound_core.dir/replica_algorithm.cpp.o"
  "CMakeFiles/linbound_core.dir/replica_algorithm.cpp.o.d"
  "CMakeFiles/linbound_core.dir/synced_replica.cpp.o"
  "CMakeFiles/linbound_core.dir/synced_replica.cpp.o.d"
  "CMakeFiles/linbound_core.dir/system.cpp.o"
  "CMakeFiles/linbound_core.dir/system.cpp.o.d"
  "CMakeFiles/linbound_core.dir/to_execute.cpp.o"
  "CMakeFiles/linbound_core.dir/to_execute.cpp.o.d"
  "CMakeFiles/linbound_core.dir/tob_algorithm.cpp.o"
  "CMakeFiles/linbound_core.dir/tob_algorithm.cpp.o.d"
  "CMakeFiles/linbound_core.dir/workload.cpp.o"
  "CMakeFiles/linbound_core.dir/workload.cpp.o.d"
  "liblinbound_core.a"
  "liblinbound_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linbound_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
