file(REMOVE_RECURSE
  "liblinbound_core.a"
)
