# Empty dependencies file for linbound_core.
# This may be replaced when dependencies are built.
