file(REMOVE_RECURSE
  "CMakeFiles/linbound_harness.dir/bounds_table.cpp.o"
  "CMakeFiles/linbound_harness.dir/bounds_table.cpp.o.d"
  "CMakeFiles/linbound_harness.dir/experiment.cpp.o"
  "CMakeFiles/linbound_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/linbound_harness.dir/latency.cpp.o"
  "CMakeFiles/linbound_harness.dir/latency.cpp.o.d"
  "liblinbound_harness.a"
  "liblinbound_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linbound_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
