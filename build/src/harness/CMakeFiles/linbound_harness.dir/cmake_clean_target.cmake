file(REMOVE_RECURSE
  "liblinbound_harness.a"
)
