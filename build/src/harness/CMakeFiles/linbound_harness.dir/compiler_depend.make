# Empty compiler generated dependencies file for linbound_harness.
# This may be replaced when dependencies are built.
