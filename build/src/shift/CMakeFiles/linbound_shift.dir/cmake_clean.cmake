file(REMOVE_RECURSE
  "CMakeFiles/linbound_shift.dir/proof_scenarios.cpp.o"
  "CMakeFiles/linbound_shift.dir/proof_scenarios.cpp.o.d"
  "CMakeFiles/linbound_shift.dir/scenario.cpp.o"
  "CMakeFiles/linbound_shift.dir/scenario.cpp.o.d"
  "CMakeFiles/linbound_shift.dir/shift.cpp.o"
  "CMakeFiles/linbound_shift.dir/shift.cpp.o.d"
  "liblinbound_shift.a"
  "liblinbound_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linbound_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
