file(REMOVE_RECURSE
  "liblinbound_shift.a"
)
