# Empty compiler generated dependencies file for linbound_shift.
# This may be replaced when dependencies are built.
