
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/delay_policy.cpp" "src/sim/CMakeFiles/linbound_sim.dir/delay_policy.cpp.o" "gcc" "src/sim/CMakeFiles/linbound_sim.dir/delay_policy.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/sim/CMakeFiles/linbound_sim.dir/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/linbound_sim.dir/event_queue.cpp.o.d"
  "/root/repo/src/sim/process.cpp" "src/sim/CMakeFiles/linbound_sim.dir/process.cpp.o" "gcc" "src/sim/CMakeFiles/linbound_sim.dir/process.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/linbound_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/linbound_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/linbound_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/linbound_sim.dir/trace.cpp.o.d"
  "/root/repo/src/sim/trace_io.cpp" "src/sim/CMakeFiles/linbound_sim.dir/trace_io.cpp.o" "gcc" "src/sim/CMakeFiles/linbound_sim.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/linbound_common.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/linbound_spec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
