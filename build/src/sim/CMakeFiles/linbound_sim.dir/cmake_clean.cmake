file(REMOVE_RECURSE
  "CMakeFiles/linbound_sim.dir/delay_policy.cpp.o"
  "CMakeFiles/linbound_sim.dir/delay_policy.cpp.o.d"
  "CMakeFiles/linbound_sim.dir/event_queue.cpp.o"
  "CMakeFiles/linbound_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/linbound_sim.dir/process.cpp.o"
  "CMakeFiles/linbound_sim.dir/process.cpp.o.d"
  "CMakeFiles/linbound_sim.dir/simulator.cpp.o"
  "CMakeFiles/linbound_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/linbound_sim.dir/trace.cpp.o"
  "CMakeFiles/linbound_sim.dir/trace.cpp.o.d"
  "CMakeFiles/linbound_sim.dir/trace_io.cpp.o"
  "CMakeFiles/linbound_sim.dir/trace_io.cpp.o.d"
  "liblinbound_sim.a"
  "liblinbound_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linbound_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
