file(REMOVE_RECURSE
  "liblinbound_sim.a"
)
