# Empty compiler generated dependencies file for linbound_sim.
# This may be replaced when dependencies are built.
