
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spec/classification_report.cpp" "src/spec/CMakeFiles/linbound_spec.dir/classification_report.cpp.o" "gcc" "src/spec/CMakeFiles/linbound_spec.dir/classification_report.cpp.o.d"
  "/root/repo/src/spec/commutativity_graph.cpp" "src/spec/CMakeFiles/linbound_spec.dir/commutativity_graph.cpp.o" "gcc" "src/spec/CMakeFiles/linbound_spec.dir/commutativity_graph.cpp.o.d"
  "/root/repo/src/spec/composite.cpp" "src/spec/CMakeFiles/linbound_spec.dir/composite.cpp.o" "gcc" "src/spec/CMakeFiles/linbound_spec.dir/composite.cpp.o.d"
  "/root/repo/src/spec/object_model.cpp" "src/spec/CMakeFiles/linbound_spec.dir/object_model.cpp.o" "gcc" "src/spec/CMakeFiles/linbound_spec.dir/object_model.cpp.o.d"
  "/root/repo/src/spec/properties.cpp" "src/spec/CMakeFiles/linbound_spec.dir/properties.cpp.o" "gcc" "src/spec/CMakeFiles/linbound_spec.dir/properties.cpp.o.d"
  "/root/repo/src/spec/reclassify.cpp" "src/spec/CMakeFiles/linbound_spec.dir/reclassify.cpp.o" "gcc" "src/spec/CMakeFiles/linbound_spec.dir/reclassify.cpp.o.d"
  "/root/repo/src/spec/sequences.cpp" "src/spec/CMakeFiles/linbound_spec.dir/sequences.cpp.o" "gcc" "src/spec/CMakeFiles/linbound_spec.dir/sequences.cpp.o.d"
  "/root/repo/src/spec/witness_search.cpp" "src/spec/CMakeFiles/linbound_spec.dir/witness_search.cpp.o" "gcc" "src/spec/CMakeFiles/linbound_spec.dir/witness_search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/linbound_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
