file(REMOVE_RECURSE
  "CMakeFiles/linbound_spec.dir/classification_report.cpp.o"
  "CMakeFiles/linbound_spec.dir/classification_report.cpp.o.d"
  "CMakeFiles/linbound_spec.dir/commutativity_graph.cpp.o"
  "CMakeFiles/linbound_spec.dir/commutativity_graph.cpp.o.d"
  "CMakeFiles/linbound_spec.dir/composite.cpp.o"
  "CMakeFiles/linbound_spec.dir/composite.cpp.o.d"
  "CMakeFiles/linbound_spec.dir/object_model.cpp.o"
  "CMakeFiles/linbound_spec.dir/object_model.cpp.o.d"
  "CMakeFiles/linbound_spec.dir/properties.cpp.o"
  "CMakeFiles/linbound_spec.dir/properties.cpp.o.d"
  "CMakeFiles/linbound_spec.dir/reclassify.cpp.o"
  "CMakeFiles/linbound_spec.dir/reclassify.cpp.o.d"
  "CMakeFiles/linbound_spec.dir/sequences.cpp.o"
  "CMakeFiles/linbound_spec.dir/sequences.cpp.o.d"
  "CMakeFiles/linbound_spec.dir/witness_search.cpp.o"
  "CMakeFiles/linbound_spec.dir/witness_search.cpp.o.d"
  "liblinbound_spec.a"
  "liblinbound_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linbound_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
