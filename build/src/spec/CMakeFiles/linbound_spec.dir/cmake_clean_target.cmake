file(REMOVE_RECURSE
  "liblinbound_spec.a"
)
