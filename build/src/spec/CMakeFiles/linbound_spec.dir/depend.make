# Empty dependencies file for linbound_spec.
# This may be replaced when dependencies are built.
