
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/types/array_type.cpp" "src/types/CMakeFiles/linbound_types.dir/array_type.cpp.o" "gcc" "src/types/CMakeFiles/linbound_types.dir/array_type.cpp.o.d"
  "/root/repo/src/types/queue_type.cpp" "src/types/CMakeFiles/linbound_types.dir/queue_type.cpp.o" "gcc" "src/types/CMakeFiles/linbound_types.dir/queue_type.cpp.o.d"
  "/root/repo/src/types/register_type.cpp" "src/types/CMakeFiles/linbound_types.dir/register_type.cpp.o" "gcc" "src/types/CMakeFiles/linbound_types.dir/register_type.cpp.o.d"
  "/root/repo/src/types/set_type.cpp" "src/types/CMakeFiles/linbound_types.dir/set_type.cpp.o" "gcc" "src/types/CMakeFiles/linbound_types.dir/set_type.cpp.o.d"
  "/root/repo/src/types/stack_type.cpp" "src/types/CMakeFiles/linbound_types.dir/stack_type.cpp.o" "gcc" "src/types/CMakeFiles/linbound_types.dir/stack_type.cpp.o.d"
  "/root/repo/src/types/tree_type.cpp" "src/types/CMakeFiles/linbound_types.dir/tree_type.cpp.o" "gcc" "src/types/CMakeFiles/linbound_types.dir/tree_type.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spec/CMakeFiles/linbound_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/linbound_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
