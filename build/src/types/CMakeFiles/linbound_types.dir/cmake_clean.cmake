file(REMOVE_RECURSE
  "CMakeFiles/linbound_types.dir/array_type.cpp.o"
  "CMakeFiles/linbound_types.dir/array_type.cpp.o.d"
  "CMakeFiles/linbound_types.dir/queue_type.cpp.o"
  "CMakeFiles/linbound_types.dir/queue_type.cpp.o.d"
  "CMakeFiles/linbound_types.dir/register_type.cpp.o"
  "CMakeFiles/linbound_types.dir/register_type.cpp.o.d"
  "CMakeFiles/linbound_types.dir/set_type.cpp.o"
  "CMakeFiles/linbound_types.dir/set_type.cpp.o.d"
  "CMakeFiles/linbound_types.dir/stack_type.cpp.o"
  "CMakeFiles/linbound_types.dir/stack_type.cpp.o.d"
  "CMakeFiles/linbound_types.dir/tree_type.cpp.o"
  "CMakeFiles/linbound_types.dir/tree_type.cpp.o.d"
  "liblinbound_types.a"
  "liblinbound_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linbound_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
