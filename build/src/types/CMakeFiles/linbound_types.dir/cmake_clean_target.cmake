file(REMOVE_RECURSE
  "liblinbound_types.a"
)
