# Empty compiler generated dependencies file for linbound_types.
# This may be replaced when dependencies are built.
