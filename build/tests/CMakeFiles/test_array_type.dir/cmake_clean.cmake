file(REMOVE_RECURSE
  "CMakeFiles/test_array_type.dir/test_array_type.cpp.o"
  "CMakeFiles/test_array_type.dir/test_array_type.cpp.o.d"
  "test_array_type"
  "test_array_type.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_array_type.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
