# Empty dependencies file for test_array_type.
# This may be replaced when dependencies are built.
