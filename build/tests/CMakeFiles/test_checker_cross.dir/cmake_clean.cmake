file(REMOVE_RECURSE
  "CMakeFiles/test_checker_cross.dir/test_checker_cross.cpp.o"
  "CMakeFiles/test_checker_cross.dir/test_checker_cross.cpp.o.d"
  "test_checker_cross"
  "test_checker_cross.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_checker_cross.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
