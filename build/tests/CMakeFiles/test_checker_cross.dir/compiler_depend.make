# Empty compiler generated dependencies file for test_checker_cross.
# This may be replaced when dependencies are built.
