file(REMOVE_RECURSE
  "CMakeFiles/test_classification_report.dir/test_classification_report.cpp.o"
  "CMakeFiles/test_classification_report.dir/test_classification_report.cpp.o.d"
  "test_classification_report"
  "test_classification_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_classification_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
