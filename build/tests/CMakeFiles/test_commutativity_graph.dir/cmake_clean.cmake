file(REMOVE_RECURSE
  "CMakeFiles/test_commutativity_graph.dir/test_commutativity_graph.cpp.o"
  "CMakeFiles/test_commutativity_graph.dir/test_commutativity_graph.cpp.o.d"
  "test_commutativity_graph"
  "test_commutativity_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_commutativity_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
