# Empty dependencies file for test_commutativity_graph.
# This may be replaced when dependencies are built.
