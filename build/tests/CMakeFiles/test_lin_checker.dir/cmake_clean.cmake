file(REMOVE_RECURSE
  "CMakeFiles/test_lin_checker.dir/test_lin_checker.cpp.o"
  "CMakeFiles/test_lin_checker.dir/test_lin_checker.cpp.o.d"
  "test_lin_checker"
  "test_lin_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lin_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
