file(REMOVE_RECURSE
  "CMakeFiles/test_proof_scenarios.dir/test_proof_scenarios.cpp.o"
  "CMakeFiles/test_proof_scenarios.dir/test_proof_scenarios.cpp.o.d"
  "test_proof_scenarios"
  "test_proof_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proof_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
