# Empty dependencies file for test_proof_scenarios.
# This may be replaced when dependencies are built.
