file(REMOVE_RECURSE
  "CMakeFiles/test_queue_type.dir/test_queue_type.cpp.o"
  "CMakeFiles/test_queue_type.dir/test_queue_type.cpp.o.d"
  "test_queue_type"
  "test_queue_type.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queue_type.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
