# Empty compiler generated dependencies file for test_queue_type.
# This may be replaced when dependencies are built.
