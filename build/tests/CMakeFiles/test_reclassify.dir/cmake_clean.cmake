file(REMOVE_RECURSE
  "CMakeFiles/test_reclassify.dir/test_reclassify.cpp.o"
  "CMakeFiles/test_reclassify.dir/test_reclassify.cpp.o.d"
  "test_reclassify"
  "test_reclassify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reclassify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
