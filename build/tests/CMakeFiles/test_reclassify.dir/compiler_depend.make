# Empty compiler generated dependencies file for test_reclassify.
# This may be replaced when dependencies are built.
