file(REMOVE_RECURSE
  "CMakeFiles/test_register_type.dir/test_register_type.cpp.o"
  "CMakeFiles/test_register_type.dir/test_register_type.cpp.o.d"
  "test_register_type"
  "test_register_type.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_register_type.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
