# Empty compiler generated dependencies file for test_register_type.
# This may be replaced when dependencies are built.
