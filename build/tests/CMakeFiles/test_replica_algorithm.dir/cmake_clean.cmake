file(REMOVE_RECURSE
  "CMakeFiles/test_replica_algorithm.dir/test_replica_algorithm.cpp.o"
  "CMakeFiles/test_replica_algorithm.dir/test_replica_algorithm.cpp.o.d"
  "test_replica_algorithm"
  "test_replica_algorithm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_replica_algorithm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
