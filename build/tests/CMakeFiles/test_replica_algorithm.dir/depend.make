# Empty dependencies file for test_replica_algorithm.
# This may be replaced when dependencies are built.
