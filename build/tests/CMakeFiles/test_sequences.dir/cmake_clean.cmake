file(REMOVE_RECURSE
  "CMakeFiles/test_sequences.dir/test_sequences.cpp.o"
  "CMakeFiles/test_sequences.dir/test_sequences.cpp.o.d"
  "test_sequences"
  "test_sequences.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sequences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
