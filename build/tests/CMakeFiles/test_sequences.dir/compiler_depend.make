# Empty compiler generated dependencies file for test_sequences.
# This may be replaced when dependencies are built.
