file(REMOVE_RECURSE
  "CMakeFiles/test_set_type.dir/test_set_type.cpp.o"
  "CMakeFiles/test_set_type.dir/test_set_type.cpp.o.d"
  "test_set_type"
  "test_set_type.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_set_type.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
