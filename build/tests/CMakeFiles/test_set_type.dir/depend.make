# Empty dependencies file for test_set_type.
# This may be replaced when dependencies are built.
