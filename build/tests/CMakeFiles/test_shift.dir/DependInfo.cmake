
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_shift.cpp" "tests/CMakeFiles/test_shift.dir/test_shift.cpp.o" "gcc" "tests/CMakeFiles/test_shift.dir/test_shift.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/linbound_common.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/linbound_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/linbound_types.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/linbound_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/checker/CMakeFiles/linbound_checker.dir/DependInfo.cmake"
  "/root/repo/build/src/clocksync/CMakeFiles/linbound_clocksync.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/linbound_core.dir/DependInfo.cmake"
  "/root/repo/build/src/shift/CMakeFiles/linbound_shift.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/linbound_harness.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
