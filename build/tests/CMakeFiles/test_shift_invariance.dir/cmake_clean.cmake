file(REMOVE_RECURSE
  "CMakeFiles/test_shift_invariance.dir/test_shift_invariance.cpp.o"
  "CMakeFiles/test_shift_invariance.dir/test_shift_invariance.cpp.o.d"
  "test_shift_invariance"
  "test_shift_invariance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shift_invariance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
