# Empty compiler generated dependencies file for test_shift_invariance.
# This may be replaced when dependencies are built.
