file(REMOVE_RECURSE
  "CMakeFiles/test_stack_type.dir/test_stack_type.cpp.o"
  "CMakeFiles/test_stack_type.dir/test_stack_type.cpp.o.d"
  "test_stack_type"
  "test_stack_type.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stack_type.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
