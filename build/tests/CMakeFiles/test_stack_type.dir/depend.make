# Empty dependencies file for test_stack_type.
# This may be replaced when dependencies are built.
