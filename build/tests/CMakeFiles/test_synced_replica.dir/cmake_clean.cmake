file(REMOVE_RECURSE
  "CMakeFiles/test_synced_replica.dir/test_synced_replica.cpp.o"
  "CMakeFiles/test_synced_replica.dir/test_synced_replica.cpp.o.d"
  "test_synced_replica"
  "test_synced_replica.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synced_replica.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
