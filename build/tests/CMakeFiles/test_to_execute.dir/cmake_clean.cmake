file(REMOVE_RECURSE
  "CMakeFiles/test_to_execute.dir/test_to_execute.cpp.o"
  "CMakeFiles/test_to_execute.dir/test_to_execute.cpp.o.d"
  "test_to_execute"
  "test_to_execute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_to_execute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
