# Empty dependencies file for test_to_execute.
# This may be replaced when dependencies are built.
