file(REMOVE_RECURSE
  "CMakeFiles/test_tob.dir/test_tob.cpp.o"
  "CMakeFiles/test_tob.dir/test_tob.cpp.o.d"
  "test_tob"
  "test_tob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
