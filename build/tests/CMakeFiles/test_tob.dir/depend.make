# Empty dependencies file for test_tob.
# This may be replaced when dependencies are built.
