file(REMOVE_RECURSE
  "CMakeFiles/test_tree_type.dir/test_tree_type.cpp.o"
  "CMakeFiles/test_tree_type.dir/test_tree_type.cpp.o.d"
  "test_tree_type"
  "test_tree_type.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree_type.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
