file(REMOVE_RECURSE
  "CMakeFiles/test_witness_search.dir/test_witness_search.cpp.o"
  "CMakeFiles/test_witness_search.dir/test_witness_search.cpp.o.d"
  "test_witness_search"
  "test_witness_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_witness_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
