// Bound explorer: a small CLI that, for user-supplied system parameters,
// prints every bound the thesis derives, validates them against a live
// sweep, and reports whether each is tight at those parameters.
//
// Usage:  ./examples/bound_explorer [n d u eps [X]]
//   defaults: n=4 d=1000 u=400 eps=(1-1/n)u X=0
#include <cstdio>
#include <cstdlib>

#include "core/workload.h"
#include "harness/bounds_table.h"
#include "harness/experiment.h"
#include "types/register_type.h"

using namespace linbound;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 4;
  SystemTiming t;
  t.d = argc > 2 ? std::atoll(argv[2]) : 1000;
  t.u = argc > 3 ? std::atoll(argv[3]) : 400;
  t.eps = argc > 4 ? std::atoll(argv[4]) : t.optimal_skew(n);
  const Tick x = argc > 5 ? std::atoll(argv[5]) : 0;

  if (!t.valid() || n < 2) {
    std::fprintf(stderr, "invalid parameters: need n>=2, 0<=u<=d, eps>=0\n");
    return 2;
  }
  if (x < 0 || x > t.d + t.eps - t.u) {
    std::fprintf(stderr, "X must lie in [0, d+eps-u] = [0, %lld]\n",
                 static_cast<long long>(t.d + t.eps - t.u));
    return 2;
  }

  std::printf("system: n=%d  d=%lld  u=%lld  eps=%lld  X=%lld\n", n,
              static_cast<long long>(t.d), static_cast<long long>(t.u),
              static_cast<long long>(t.eps), static_cast<long long>(x));
  std::printf("  optimal achievable skew (1-1/n)u = %lld%s\n",
              static_cast<long long>(t.optimal_skew(n)),
              t.eps == t.optimal_skew(n) ? "  (eps is optimal)" : "");
  std::printf("  m = min{eps, u, d/3} = %lld\n\n", static_cast<long long>(t.m()));

  // Validate with a live register sweep at these parameters.
  SweepOptions o;
  o.n = n;
  o.timing = t;
  o.x = x;
  o.seeds = 4;
  auto model = std::make_shared<RegisterModel>();
  const OpMix mix{2, 2, 2};
  const SweepResult sweep = run_replica_sweep(
      model, [&](ProcessId, Rng& rng) { return random_register_ops(rng, 10, mix); },
      o);

  BoundsTable table("bounds at these parameters", t, n, x);
  table.add_row({"OOP (rmw/pop/dequeue)", "d", t.d, "d+min{eps,u,d/3}",
                 eval_d_plus_m(t), "d+eps", eval_d_plus_eps(t),
                 sweep.latency.worst_for_class(OpClass::kOther)});
  table.add_row({"MOP (write/enq/push)", "u/2", t.u / 2, "(1-1/n)u",
                 eval_one_minus_inv_n_u(t, n), "eps+X", t.eps + x,
                 sweep.latency.worst_for_class(OpClass::kPureMutator)});
  table.add_row({"AOP (read/peek)", "u/2", t.u / 2, "", kNoTime, "d+eps-X",
                 t.d + t.eps - x,
                 sweep.latency.worst_for_class(OpClass::kPureAccessor)});
  table.add_row({"MOP + AOP pair", "d", t.d, "d+min{eps,u,d/3}",
                 eval_d_plus_m(t), "d+2eps", eval_d_plus_2eps(t),
                 sweep.latency.worst_for_class(OpClass::kPureMutator) +
                     sweep.latency.worst_for_class(OpClass::kPureAccessor)});
  std::printf("%s\n", table.render().c_str());

  std::printf("tightness at these parameters:\n");
  std::printf("  OOP bound tight (needs eps <= d/3 and eps <= u): %s\n",
              (t.eps <= t.d / 3 && t.eps <= t.u) ? "YES" : "no");
  std::printf("  MOP bound tight (needs eps = (1-1/n)u and X = 0): %s\n",
              (t.eps == t.optimal_skew(n) && x == 0) ? "YES" : "no");
  std::printf("  sweep: %d runs, %s\n", sweep.runs,
              sweep.all_linearizable() ? "all linearizable" : "VIOLATIONS!");

  return sweep.all_linearizable() && table.consistent() ? 0 : 1;
}
