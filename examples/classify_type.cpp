// Automatic Chapter II classification of every built-in data type: for each
// operation the tool searches for the witnesses behind the paper's
// taxonomy (mutator/accessor, immediately/eventually (non-)self-commuting,
// strongly so, overwriter) and prints the derived MOP/AOP/OOP grouping --
// the machinery that decides which latency bound applies to which
// operation.
//
// Build & run:  ./examples/classify_type
#include <cstdio>

#include "spec/classification_report.h"
#include "spec/commutativity_graph.h"
#include "types/array_type.h"
#include "types/queue_type.h"
#include "types/register_type.h"
#include "types/set_type.h"
#include "types/stack_type.h"
#include "types/tree_type.h"

using namespace linbound;

int main() {
  bool ok = true;

  auto show = [&](const ObjectModel& model, const SearchUniverse& universe) {
    const ClassificationReport report = classify_operations(model, universe);
    std::printf("%s\n", report.render(model).c_str());
    std::printf("%s\n",
                build_commutativity_graph(model, universe).render(model).c_str());
    // Cross-check the search-derived grouping against the model's
    // declaration (what Algorithm 1 actually uses).
    for (const OpClassification& c : report.ops) {
      const OpClass declared = model.classify(Operation{c.code, {}});
      if (c.derived_class() != declared) {
        std::printf("  MISMATCH for %s: derived %s, declared %s\n",
                    c.name.c_str(), to_string(c.derived_class()).c_str(),
                    to_string(declared).c_str());
        ok = false;
      }
    }
  };

  {
    RegisterModel model;
    SearchUniverse u;
    u.ops = {reg::read(),         reg::write(0),  reg::write(1),
             reg::increment(1),   reg::rmw(2),    reg::cas(0, 1),
             reg::cas(1, 2)};
    u.max_prefix_len = 2;
    show(model, u);
  }
  {
    QueueModel model;
    SearchUniverse u;
    u.ops = {queue_ops::enqueue(1), queue_ops::enqueue(2), queue_ops::dequeue(),
             queue_ops::peek(), queue_ops::size()};
    u.max_prefix_len = 2;
    show(model, u);
  }
  {
    StackModel model;
    SearchUniverse u;
    u.ops = {stack_ops::push(1), stack_ops::push(2), stack_ops::pop(),
             stack_ops::peek(), stack_ops::size()};
    u.max_prefix_len = 2;
    show(model, u);
  }
  {
    SetModel model;
    SearchUniverse u;
    u.ops = {set_ops::insert(1), set_ops::insert(2), set_ops::erase(1),
             set_ops::contains(1), set_ops::size()};
    u.max_prefix_len = 2;
    show(model, u);
  }
  {
    ArrayModel model({10, 20});
    SearchUniverse u;
    u.ops = {array_ops::update_next(1, 99), array_ops::update_next(2, 99),
             array_ops::get(1), array_ops::put(1, 5)};
    u.max_prefix_len = 2;
    show(model, u);
  }

  std::printf("derived groupings %s the declared MOP/AOP/OOP classes.\n",
              ok ? "all match" : "DO NOT match");
  return ok ? 0 : 1;
}
