// A distributed job queue: producers enqueue work items, consumers dequeue
// them, a monitor peeks -- the motivating workload for Table II.
//
// Demonstrates the closed-loop WorkloadDriver, adversarial delay policies,
// per-class latency accounting, and end-to-end linearizability checking.
//
// Build & run:  ./examples/job_queue [seed]
#include <cstdio>
#include <cstdlib>

#include "core/driver.h"
#include "core/system.h"
#include "harness/latency.h"
#include "types/queue_type.h"

using namespace linbound;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  SystemOptions options;
  options.n = 6;
  options.timing = SystemTiming{1000, 400, 300};
  options.x = 0;
  // Adversarial network: every message is as fast or as slow as allowed.
  options.delays = std::make_shared<ExtremalDelayPolicy>(options.timing, seed);
  options.clock_offsets = {0, 300, 0, 300, 150, 0};  // skew at the bound

  auto model = std::make_shared<QueueModel>();
  ReplicaSystem system(model, options);

  // Processes 0-1 produce, 2-3 consume, 4-5 monitor.
  std::vector<ClientScript> scripts;
  for (ProcessId producer : {0, 1}) {
    std::vector<Operation> ops;
    for (int job = 0; job < 10; ++job) {
      ops.push_back(queue_ops::enqueue(producer * 100 + job));
    }
    scripts.push_back({producer, std::move(ops), 1000, /*think=*/50});
  }
  for (ProcessId consumer : {2, 3}) {
    scripts.push_back({consumer, std::vector<Operation>(8, queue_ops::dequeue()),
                       2000, /*think=*/200});
  }
  scripts.push_back({4, std::vector<Operation>(5, queue_ops::peek()), 1500, 800});
  scripts.push_back({5, std::vector<Operation>(5, queue_ops::size()), 1500, 800});

  int jobs_consumed = 0;
  WorkloadDriver driver(system.sim(), std::move(scripts),
                        [&](const OperationRecord& rec) {
                          if (rec.op.code == QueueModel::kDequeue &&
                              !rec.ret.is_unit()) {
                            ++jobs_consumed;
                          }
                        });
  driver.arm();

  History history = system.run_to_completion();
  const CheckResult check = check_linearizable(*model, history);

  LatencyReport latency;
  latency.absorb(*model, system.sim().trace());

  std::printf("job queue run: %zu operations, %d jobs consumed, seed %llu\n",
              history.size(), jobs_consumed,
              static_cast<unsigned long long>(seed));
  std::printf("linearizable: %s\n\n", check.ok ? "yes" : "NO");
  for (const auto& [cls, summary] : latency.by_class) {
    std::printf("  %-4s latency: %s\n", to_string(cls).c_str(),
                summary.to_string().c_str());
  }
  std::printf(
      "\nenqueues ack at exactly eps+X; dequeues stay under d+eps even with\n"
      "the extremal adversary reordering every message it can.\n");
  return check.ok ? 0 : 1;
}
