// A replicated membership directory built on the set type: nodes join and
// leave, health checkers query membership.
//
// Demonstrates the X trade-off knob live: the same workload is run with
// X = 0 (fast joins/leaves, slow lookups) and X = d+eps-u (slow
// joins/leaves, lookups at u), and the observed latencies flip while the
// sum stays pinned at d + 2eps.
//
// Build & run:  ./examples/membership_directory
#include <cstdio>

#include "core/driver.h"
#include "core/system.h"
#include "harness/latency.h"
#include "types/set_type.h"

using namespace linbound;

namespace {

struct RunResult {
  bool linearizable = false;
  Tick mutator_worst = kNoTime;
  Tick accessor_worst = kNoTime;
};

RunResult run_directory(Tick x) {
  SystemOptions options;
  options.n = 5;
  options.timing = SystemTiming{1000, 400, 300};
  options.x = x;
  options.delays = std::make_shared<UniformDelayPolicy>(options.timing, 2024);

  auto model = std::make_shared<SetModel>();
  ReplicaSystem system(model, options);

  std::vector<ClientScript> scripts;
  // Nodes 0-2 churn: join, leave, rejoin.
  for (ProcessId node : {0, 1, 2}) {
    scripts.push_back({node,
                       {set_ops::insert(node), set_ops::erase(node),
                        set_ops::insert(node)},
                       1000,
                       300});
  }
  // Nodes 3-4 health-check.
  for (ProcessId checker : {3, 4}) {
    std::vector<Operation> ops;
    for (int round = 0; round < 4; ++round) {
      ops.push_back(set_ops::contains(round % 3));
      ops.push_back(set_ops::size());
    }
    scripts.push_back({checker, std::move(ops), 1200, 100});
  }
  WorkloadDriver driver(system.sim(), std::move(scripts));
  driver.arm();

  History history = system.run_to_completion();
  LatencyReport latency;
  latency.absorb(*model, system.sim().trace());

  RunResult result;
  result.linearizable = check_linearizable(*model, history).ok;
  result.mutator_worst = latency.worst_for_class(OpClass::kPureMutator);
  result.accessor_worst = latency.worst_for_class(OpClass::kPureAccessor);
  return result;
}

}  // namespace

int main() {
  const SystemTiming t{1000, 400, 300};
  bool ok = true;
  std::printf("membership directory under two X settings (d=%lld u=%lld eps=%lld):\n\n",
              static_cast<long long>(t.d), static_cast<long long>(t.u),
              static_cast<long long>(t.eps));
  for (Tick x : {Tick{0}, t.d + t.eps - t.u}) {
    const RunResult r = run_directory(x);
    std::printf("X = %4lld:  join/leave worst = %4lldus   lookup worst = %4lldus"
                "   sum = %lldus   linearizable: %s\n",
                static_cast<long long>(x),
                static_cast<long long>(r.mutator_worst),
                static_cast<long long>(r.accessor_worst),
                static_cast<long long>(r.mutator_worst + r.accessor_worst),
                r.linearizable ? "yes" : "NO");
    ok = ok && r.linearizable;
  }
  std::printf(
      "\nPick X per deployment: churn-heavy clusters want X = 0 (joins at\n"
      "eps = (1-1/n)u); read-heavy monitoring wants X = d+eps-u (lookups\n"
      "at u).  Either way the pair cost is d+2eps (Chapter V.D).\n");
  return ok ? 0 : 1;
}
