// A multi-object metrics store: three counters (registers) plus an event
// queue, all hosted by ONE replica group running Algorithm 1 over a
// CompositeModel.  Shows the paper's multi-object linearizability
// definition in action and Herlihy-Wing locality: the whole-store history
// checks out iff every per-object restriction does.
//
// (Note what this does NOT give you: atomicity across objects.  Each
// operation is linearizable on its own object; a counter bump and its event
// record are two operations.)
//
// Build & run:  ./examples/metrics_store
#include <cstdio>

#include "checker/lin_checker.h"
#include "core/driver.h"
#include "core/system.h"
#include "spec/composite.h"
#include "types/queue_type.h"
#include "types/register_type.h"

using namespace linbound;

namespace {
constexpr int kRequests = 0;  // counter slots
constexpr int kErrors = 1;
constexpr int kLatencySum = 2;
constexpr int kEvents = 3;  // event queue slot
}  // namespace

int main() {
  auto model = std::make_shared<CompositeModel>(
      std::vector<std::shared_ptr<const ObjectModel>>{
          std::make_shared<RegisterModel>(), std::make_shared<RegisterModel>(),
          std::make_shared<RegisterModel>(), std::make_shared<QueueModel>()});

  SystemOptions options;
  options.n = 4;
  options.timing = SystemTiming{1000, 400, 300};
  options.x = 0;  // counter bumps ack in eps+X = 300us
  options.delays = std::make_shared<UniformDelayPolicy>(options.timing, 77);
  ReplicaSystem system(model, options);

  // Two frontends bump counters and log events; two dashboards read.
  std::vector<ClientScript> scripts;
  for (ProcessId frontend : {0, 1}) {
    std::vector<Operation> ops;
    for (int req = 0; req < 4; ++req) {
      ops.push_back(CompositeModel::lift(kRequests, reg::increment(1)));
      ops.push_back(CompositeModel::lift(kLatencySum, reg::increment(10 + req)));
      if (req % 2 == 0) {
        ops.push_back(CompositeModel::lift(kErrors, reg::increment(1)));
        ops.push_back(
            CompositeModel::lift(kEvents, queue_ops::enqueue(frontend * 100 + req)));
      }
    }
    scripts.push_back({frontend, std::move(ops), 1000, 50});
  }
  for (ProcessId dashboard : {2, 3}) {
    std::vector<Operation> ops;
    for (int round = 0; round < 3; ++round) {
      ops.push_back(CompositeModel::lift(kRequests, reg::read()));
      ops.push_back(CompositeModel::lift(kErrors, reg::read()));
      ops.push_back(CompositeModel::lift(kEvents, queue_ops::peek()));
    }
    scripts.push_back({dashboard, std::move(ops), 2000, 400});
  }
  WorkloadDriver driver(system.sim(), std::move(scripts));
  driver.arm();

  const History history = system.run_to_completion();
  const CheckResult whole = check_linearizable(*model, history);
  std::printf("metrics store: %zu operations across %d objects\n",
              history.size(), model->slot_count());
  std::printf("whole-store linearizable: %s\n", whole.ok ? "yes" : "NO");

  bool ok = whole.ok;
  for (int k = 0; k < model->slot_count(); ++k) {
    const History part = restrict_history(history, k);
    const CheckResult check = check_linearizable(model->slot(k), part);
    std::printf("  object %d (%s): %2zu ops, restriction linearizable: %s\n", k,
                model->slot(k).name().c_str(), part.size(),
                check.ok ? "yes" : "NO");
    ok = ok && check.ok;
  }
  std::printf(
      "\nLocality at work: one replica group, four objects, one timestamp\n"
      "order -- and every per-object restriction is independently legal.\n");
  return ok ? 0 : 1;
}
