// A replicated org chart on the rooted tree type: concurrent re-org moves
// from different sites, resolved linearizably -- the Table IV workload.
//
// Shows the move-insert semantics (last re-parent wins), subtree erase, and
// depth() observing the structure that mutator order determines.
//
// Build & run:  ./examples/org_chart
#include <cstdio>

#include "checker/lin_checker.h"
#include "core/system.h"
#include "types/tree_type.h"

using namespace linbound;

int main() {
  SystemOptions options;
  options.n = 3;
  options.timing = SystemTiming{1000, 400, 300};
  options.x = 0;
  options.clock_offsets = {0, 300, 150};

  auto model = std::make_shared<TreeModel>();
  ReplicaSystem system(model, options);
  Simulator& sim = system.sim();

  // Build the initial chart sequentially from site 0:
  //   0 (root) -> 1 (eng), 2 (sales); 1 -> 10, 11; 2 -> 20.
  Tick at = 1000;
  for (const auto& [k, p] : std::initializer_list<std::pair<int, int>>{
           {1, 0}, {2, 0}, {10, 1}, {11, 1}, {20, 2}}) {
    sim.invoke_at(at, 0, tree_ops::insert(k, p));
    at += 400;  // past the eps+X ack
  }

  // Concurrent re-org: site 1 moves team 10 under sales while site 2 moves
  // the whole sales subtree under eng.  Both are legal; the timestamp order
  // decides, and every replica agrees.
  sim.invoke_at(10000, 1, tree_ops::insert(10, 2));
  sim.invoke_at(10000, 2, tree_ops::insert(2, 1));

  // Later: measure the depth and drop employee 11.
  sim.invoke_at(15000, 0, tree_ops::depth());
  sim.invoke_at(16000, 1, tree_ops::remove_leaf(11));
  sim.invoke_at(20000, 2, tree_ops::search(11));
  sim.invoke_at(20000, 0, tree_ops::depth());

  History history = system.run_to_completion();
  const CheckResult check = check_linearizable(*model, history);

  std::printf("org chart history:\n");
  for (const HistoryOp& op : history.ops()) {
    std::printf("  p%d [%6lld] %-18s -> %s\n", op.proc,
                static_cast<long long>(op.invoke),
                model->describe(op.op).c_str(), op.ret.to_string().c_str());
  }
  std::printf("\nfinal chart on every replica: %s\n",
              system.replica(0).local_copy().to_string().c_str());
  for (ProcessId p = 1; p < system.n(); ++p) {
    if (!system.replica(0).local_copy().equals(system.replica(p).local_copy())) {
      std::printf("REPLICA DIVERGENCE at p%d!\n", p);
      return 1;
    }
  }
  std::printf("linearizable: %s\n", check.ok ? "yes" : "NO");
  std::printf(
      "\nThe concurrent moves resolved identically everywhere: move-insert\n"
      "is the 'last mover wins' mutator behind the tree's (1-1/n)u bound.\n");
  return check.ok ? 0 : 1;
}
