// Quickstart: a linearizable shared register over four simulated processes.
//
// Shows the core loop every application of this library follows:
//   1. pick a data type (an ObjectModel),
//   2. build a ReplicaSystem (n processes running the paper's Algorithm 1),
//   3. invoke operations from the application layer,
//   4. run to quiescence, inspect the history, check linearizability.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "checker/lin_checker.h"
#include "core/system.h"
#include "types/register_type.h"

using namespace linbound;

int main() {
  // The partially synchronous system: message delays in [d-u, d] = [600,
  // 1000] virtual microseconds, clocks synchronized to within eps = 300us
  // (the optimal (1-1/n)u for n = 4; see bench_clocksync).
  SystemOptions options;
  options.n = 4;
  options.timing = SystemTiming{/*d=*/1000, /*u=*/400, /*eps=*/300};
  options.x = 0;  // favor mutators: writes ack in eps+X = 300us

  auto model = std::make_shared<RegisterModel>(/*initial=*/0);
  ReplicaSystem system(model, options);

  // Application layer: process 0 writes, the others read.
  system.sim().invoke_at(1000, 0, reg::write(42));
  system.sim().invoke_at(2000, 1, reg::read());
  system.sim().invoke_at(2000, 2, reg::read());
  system.sim().invoke_at(5000, 3, reg::rmw(7));  // fetch-and-store

  History history = system.run_to_completion();

  std::printf("operation history:\n");
  for (const HistoryOp& op : history.ops()) {
    std::printf("  p%d  [%6lld, %6lld]  %-12s -> %s   (latency %lldus)\n",
                op.proc, static_cast<long long>(op.invoke),
                static_cast<long long>(op.response),
                model->describe(op.op).c_str(), op.ret.to_string().c_str(),
                static_cast<long long>(op.response - op.invoke));
  }

  const CheckResult check = check_linearizable(*model, history);
  std::printf("\nlinearizable: %s\n", check.ok ? "yes" : "NO");
  if (check.ok) {
    std::printf("a witness order: ");
    for (std::size_t i : check.witness) {
      std::printf("%s ", model->describe(history.ops()[i].op).c_str());
    }
    std::printf("\n");
  }

  std::printf(
      "\nNote the latencies: the write acked in eps+X = 300us and the reads\n"
      "in d+eps-X = 1300us -- both beating the folklore centralized bound\n"
      "of 2d = 2000us, which is the paper's headline result.\n");
  return check.ok ? 0 : 1;
}
