// Trace replay / offline audit CLI: load a serialized run (sim/trace_io
// format), re-audit its admissibility and re-check linearizability against
// a named data type.  With no arguments it demonstrates the full loop:
// run a system, save the trace, reload it, verify.
//
// Usage:
//   ./examples/replay_trace                 # self-demo (run, save, reload)
//   ./examples/replay_trace FILE TYPE       # audit an archived trace
//     TYPE in {register, queue, stack, set, tree}
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "checker/lin_checker.h"
#include "core/driver.h"
#include "core/system.h"
#include "core/workload.h"
#include "sim/trace_io.h"
#include "types/queue_type.h"
#include "types/register_type.h"
#include "types/set_type.h"
#include "types/stack_type.h"
#include "types/tree_type.h"

using namespace linbound;

namespace {

std::shared_ptr<ObjectModel> model_by_name(const std::string& name) {
  if (name == "register") return std::make_shared<RegisterModel>();
  if (name == "queue") return std::make_shared<QueueModel>();
  if (name == "stack") return std::make_shared<StackModel>();
  if (name == "set") return std::make_shared<SetModel>();
  if (name == "tree") return std::make_shared<TreeModel>();
  return nullptr;
}

int audit(const Trace& trace, const ObjectModel& model) {
  const AdmissibilityReport admissible = trace.audit();
  std::printf("messages: %zu   operations: %zu   end: %lldus\n",
              trace.messages.size(), trace.ops.size(),
              static_cast<long long>(trace.end_time));
  std::printf("admissible (delays in [%lld, %lld], skew <= %lld): %s\n",
              static_cast<long long>(trace.timing.min_delay()),
              static_cast<long long>(trace.timing.max_delay()),
              static_cast<long long>(trace.timing.eps),
              admissible.admissible ? "yes" : "NO");
  for (const std::string& v : admissible.violations) {
    std::printf("  violation: %s\n", v.c_str());
  }

  auto [history, pending] = history_with_pending(trace);
  const CheckResult check =
      check_linearizable_with_pending(model, history, pending);
  std::printf("history: %zu completed, %zu pending; linearizable: %s\n",
              history.size(), pending.size(), check.ok ? "yes" : "NO");
  if (!check.ok) std::printf("  %s\n", check.explanation.c_str());
  return admissible.admissible && check.ok ? 0 : 1;
}

int self_demo() {
  std::printf("self-demo: run a queue system, serialize, reload, audit.\n\n");
  auto model = std::make_shared<QueueModel>();
  SystemOptions options;
  options.n = 4;
  options.timing = SystemTiming{1000, 400, 300};
  options.delays = std::make_shared<ExtremalDelayPolicy>(options.timing, 11);
  ReplicaSystem system(model, options);
  Rng rng(5);
  std::vector<ClientScript> scripts;
  for (int p = 0; p < 4; ++p) {
    Rng crng = rng.split(static_cast<std::uint64_t>(p));
    scripts.push_back({p, random_queue_ops(crng, 8, OpMix{2, 2, 1}), 1000, 0});
  }
  WorkloadDriver driver(system.sim(), std::move(scripts));
  driver.arm();
  system.run_to_completion();

  const std::string text = trace_to_string(system.sim().trace());
  std::printf("serialized trace: %zu bytes\n", text.size());
  std::string error;
  auto reloaded = trace_from_string(text, &error);
  if (!reloaded) {
    std::printf("reload FAILED: %s\n", error.c_str());
    return 1;
  }
  const int verdict = audit(*reloaded, *model);
  std::printf("\nround-trip exact: %s\n",
              trace_to_string(*reloaded) == text ? "yes" : "NO");
  return verdict;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 1) return self_demo();
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s [FILE TYPE]\n", argv[0]);
    return 2;
  }
  auto model = model_by_name(argv[2]);
  if (!model) {
    std::fprintf(stderr, "unknown type '%s'\n", argv[2]);
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "cannot open '%s'\n", argv[1]);
    return 2;
  }
  std::string error;
  auto trace = read_trace(in, &error);
  if (!trace) {
    std::fprintf(stderr, "parse error: %s\n", error.c_str());
    return 2;
  }
  return audit(*trace, *model);
}
