#include "chaos/chaos.h"

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "core/driver.h"
#include "core/workload.h"
#include "degrade/degrade_system.h"
#include "fault/assumption_monitor.h"
#include "fault/churn.h"
#include "harness/latency.h"
#include "sim/trace_io.h"
#include "types/queue_type.h"
#include "types/register_type.h"
#include "types/set_type.h"

namespace linbound {
namespace {

/// Virtual-time slice between watchdog checks.  Part of the run's
/// definition: run_until stamps the trace end time with the slice horizon,
/// so record, replay and both determinism runs must use the same value.
constexpr Tick kWatchdogSlice = 50'000;

bool fail(std::string* error, const std::string& why) {
  if (error) *error = why;
  return false;
}

}  // namespace

const char* chaos_variant_name(ChaosVariant v) {
  switch (v) {
    case ChaosVariant::kStock: return "stock";
    case ChaosVariant::kHardened: return "hardened";
    case ChaosVariant::kRecoverable: return "recoverable";
    case ChaosVariant::kModeSwitching: return "mode-switching";
    case ChaosVariant::kQuorum: return "quorum";
  }
  return "?";
}

const char* chaos_mutant_name(ChaosMutant m) {
  switch (m) {
    case ChaosMutant::kNone: return "none";
    case ChaosMutant::kEagerMop: return "eager-mop";
    case ChaosMutant::kEagerAop: return "eager-aop";
    case ChaosMutant::kNarrowWaits: return "narrow-waits";
  }
  return "?";
}

const char* chaos_workload_name(ChaosWorkload w) {
  switch (w) {
    case ChaosWorkload::kRegister: return "register";
    case ChaosWorkload::kQueue: return "queue";
    case ChaosWorkload::kSet: return "set";
  }
  return "?";
}

const char* chaos_verdict_name(ChaosVerdict v) {
  switch (v) {
    case ChaosVerdict::kOk: return "ok";
    case ChaosVerdict::kNonLinearizable: return "non-linearizable";
    case ChaosVerdict::kBoundViolated: return "bound-violated";
    case ChaosVerdict::kAborted: return "aborted";
    case ChaosVerdict::kNonDeterministic: return "non-deterministic";
  }
  return "?";
}

std::optional<ChaosVariant> parse_chaos_variant(const std::string& name) {
  for (ChaosVariant v :
       {ChaosVariant::kStock, ChaosVariant::kHardened,
        ChaosVariant::kRecoverable, ChaosVariant::kModeSwitching,
        ChaosVariant::kQuorum}) {
    if (name == chaos_variant_name(v)) return v;
  }
  return std::nullopt;
}

std::optional<ChaosMutant> parse_chaos_mutant(const std::string& name) {
  for (ChaosMutant m : {ChaosMutant::kNone, ChaosMutant::kEagerMop,
                        ChaosMutant::kEagerAop, ChaosMutant::kNarrowWaits}) {
    if (name == chaos_mutant_name(m)) return m;
  }
  return std::nullopt;
}

std::optional<ChaosWorkload> parse_chaos_workload(const std::string& name) {
  for (ChaosWorkload w : {ChaosWorkload::kRegister, ChaosWorkload::kQueue,
                          ChaosWorkload::kSet}) {
    if (name == chaos_workload_name(w)) return w;
  }
  return std::nullopt;
}

std::optional<ChaosVerdict> parse_chaos_verdict(const std::string& name) {
  for (ChaosVerdict v :
       {ChaosVerdict::kOk, ChaosVerdict::kNonLinearizable,
        ChaosVerdict::kBoundViolated, ChaosVerdict::kAborted,
        ChaosVerdict::kNonDeterministic}) {
    if (name == chaos_verdict_name(v)) return v;
  }
  return std::nullopt;
}

void ChaosRunSpec::validate() const {
  if (n < 2) {
    throw std::invalid_argument("ChaosRunSpec n must be >= 2, got " +
                                std::to_string(n));
  }
  if (!timing.valid()) {
    throw std::invalid_argument("ChaosRunSpec timing is invalid (need d > 0, "
                                "0 <= u <= d, eps >= 0)");
  }
  if (x < 0 || x > timing.d + timing.eps - timing.u) {
    throw std::invalid_argument("ChaosRunSpec x must lie in [0, d+eps-u]");
  }
  if (ops_per_client < 1) {
    throw std::invalid_argument("ChaosRunSpec ops_per_client must be >= 1");
  }
  if (think_time < 0) {
    throw std::invalid_argument("ChaosRunSpec think_time must be >= 0");
  }
  if (event_budget == 0) {
    throw std::invalid_argument("ChaosRunSpec event_budget must be > 0");
  }
  if (wall_budget_ms < 0) {
    throw std::invalid_argument("ChaosRunSpec wall_budget_ms must be >= 0");
  }
  if (mutant == ChaosMutant::kNarrowWaits &&
      variant != ChaosVariant::kHardened) {
    throw std::invalid_argument(
        "ChaosRunSpec narrow-waits mutant requires the hardened variant");
  }
  if ((mutant == ChaosMutant::kEagerMop || mutant == ChaosMutant::kEagerAop) &&
      variant != ChaosVariant::kStock) {
    throw std::invalid_argument(
        "ChaosRunSpec eager mutants require the stock variant");
  }
  if ((variant == ChaosVariant::kModeSwitching ||
       variant == ChaosVariant::kQuorum) &&
      mutant != ChaosMutant::kNone) {
    throw std::invalid_argument(
        "ChaosRunSpec mutants are Algorithm 1 delay bugs; the degradation "
        "variants take none");
  }
  faults.validate();
}

std::shared_ptr<const ObjectModel> chaos_model(ChaosWorkload workload) {
  switch (workload) {
    case ChaosWorkload::kRegister: return std::make_shared<RegisterModel>();
    case ChaosWorkload::kQueue: return std::make_shared<QueueModel>();
    case ChaosWorkload::kSet: return std::make_shared<SetModel>();
  }
  return std::make_shared<RegisterModel>();
}

namespace {

std::vector<Operation> chaos_ops(ChaosWorkload workload, Rng& rng, int count) {
  const OpMix mix{2, 2, 1};
  switch (workload) {
    case ChaosWorkload::kRegister: return random_register_ops(rng, count, mix);
    case ChaosWorkload::kQueue: return random_queue_ops(rng, count, mix);
    case ChaosWorkload::kSet: return random_set_ops(rng, count, mix);
  }
  return {};
}

/// The delay adversary and clock offsets, derived purely from delay_seed:
/// half the seeds use the extremal (all-fast-or-all-slow) policy with
/// alternating 0/eps offsets -- the corner the eager lower-bound mutants
/// break in -- and half use uniform delays with uniform offsets.
std::shared_ptr<DelayPolicy> derive_delays(const ChaosRunSpec& spec) {
  Rng rng = Rng(spec.delay_seed).split(0xde1a);
  if (rng.chance(0.5)) {
    return std::make_shared<ExtremalDelayPolicy>(spec.timing, rng.next_u64());
  }
  return std::make_shared<UniformDelayPolicy>(spec.timing, rng.next_u64());
}

std::vector<Tick> derive_offsets(const ChaosRunSpec& spec) {
  Rng rng = Rng(spec.delay_seed).split(0xc10c);
  const bool extreme = rng.chance(0.5);
  std::vector<Tick> offsets;
  offsets.reserve(static_cast<std::size_t>(spec.n));
  for (int i = 0; i < spec.n; ++i) {
    offsets.push_back(extreme ? (i % 2 ? spec.timing.eps : 0)
                              : rng.uniform_tick(0, spec.timing.eps));
  }
  return offsets;
}

/// The worst injected one-way delay boost the hardened link must absorb for
/// the run to stay inside its effective model.
Tick boost_margin(const FaultConfig& faults) {
  Tick margin = faults.spike_max;
  for (const LinkFault& link : faults.links) {
    margin = std::max(margin, link.delay_max);
  }
  return margin;
}

struct Execution {
  RunStatus status = RunStatus::kComplete;
  bool linearizable = true;
  std::string explanation;
  AssumptionReport report;
  std::int64_t link_give_ups = 0;
  Tick worst_excess = 0;
  std::uint64_t trace_hash = 0;
  bool wall_clock_tripped = false;
  FaultScript recorded;
  // Degradation accounting (from the trace's fault events).
  int downgrades = 0;
  int upgrades = 0;
  int max_concurrent_down = 0;
  int crashed_at_end = 0;
  /// Crashes that struck in synchronous mode with no downgrade afterwards:
  /// the one crash shape mode switching does not promise to absorb
  /// (pause-resume; see mode_switching_replica.h).
  int crashes_outside_degraded = 0;
};

bool degradation_variant(ChaosVariant v) {
  return v == ChaosVariant::kModeSwitching || v == ChaosVariant::kQuorum;
}

/// Fill Execution's degradation counters from the recorded fault events.
void absorb_degradation_events(const Trace& trace, Execution* out) {
  std::vector<Tick> downgrade_times;
  for (const FaultEvent& f : trace.faults) {
    if (f.kind == FaultKind::kModeDowngrade) downgrade_times.push_back(f.time);
  }
  int down = 0;
  bool degraded = false;
  for (const FaultEvent& f : trace.faults) {
    switch (f.kind) {
      case FaultKind::kModeDowngrade:
        ++out->downgrades;
        degraded = true;
        break;
      case FaultKind::kModeUpgrade:
        ++out->upgrades;
        degraded = false;
        break;
      case FaultKind::kProcessCrashed: {
        ++down;
        out->max_concurrent_down = std::max(out->max_concurrent_down, down);
        const bool covered =
            degraded || std::any_of(downgrade_times.begin(),
                                    downgrade_times.end(),
                                    [&](Tick t) { return t >= f.time; });
        if (!covered) ++out->crashes_outside_degraded;
        break;
      }
      case FaultKind::kProcessRecovered:
        --down;
        break;
      default:
        break;
    }
  }
  out->crashed_at_end = down;
}

/// Does the spec's storm heal on its own?  The degraded-mode oracle only
/// demands liveness when it does: total loss, an unhealed partition, an
/// endless stall or a process still down at the end excuse a stalled run.
bool storm_heals(const ChaosRunSpec& spec, const Execution& exec) {
  if (spec.faults.drop_p >= 1.0) return false;
  for (const LinkFault& link : spec.faults.links) {
    if (link.drop_p >= 1.0) return false;
  }
  for (const PartitionWindow& w : spec.faults.partitions) {
    if (w.until == kTimeInfinity) return false;
  }
  for (const StallWindow& w : spec.faults.stalls) {
    if (w.until == kTimeInfinity) return false;
  }
  if (exec.crashed_at_end != 0) return false;
  if (2 * exec.max_concurrent_down >= spec.n) return false;
  if (spec.variant == ChaosVariant::kModeSwitching &&
      exec.crashes_outside_degraded != 0) {
    return false;  // pause-resume crash: outside the switching promise
  }
  return true;
}

/// One deterministic simulation of the spec under the given fault policy.
Execution execute_once(const ChaosRunSpec& spec,
                       const std::shared_ptr<FaultPolicy>& policy,
                       const RecordingFaultPolicy* recorder) {
  const auto model = chaos_model(spec.workload);

  SystemOptions sys;
  sys.n = spec.n;
  sys.timing = spec.timing;
  sys.x = spec.x;
  sys.delays = derive_delays(spec);
  sys.clock_offsets = derive_offsets(spec);
  sys.faults = policy;
  sys.max_events = spec.event_budget;
  switch (spec.variant) {
    case ChaosVariant::kStock:
    case ChaosVariant::kQuorum:
      break;
    case ChaosVariant::kHardened:
    case ChaosVariant::kModeSwitching: {
      // The switching variant rides the same reliable link in its sync
      // eras; the margin keeps pre-downgrade responses inside the widened
      // model while the supervisor gathers its evidence (spiked deliveries
      // still land past the raw d, so they count as violations).
      HardenedParams hp;
      hp.spike_margin = boost_margin(spec.faults);
      sys.hardened = hp;
      break;
    }
    case ChaosVariant::kRecoverable: {
      RecoverableParams rp;
      rp.link.spike_margin = boost_margin(spec.faults);
      sys.recoverable = rp;
      break;
    }
  }
  switch (spec.mutant) {
    case ChaosMutant::kNone:
      break;
    case ChaosMutant::kEagerMop:
      // Half the skew bound: far enough below eps that random sequential
      // writes across skewed clocks get misordered timestamps (the
      // hand-built Theorem D.1 scenarios shave only 2 ticks; a searchable
      // mutant has to be findable from random workloads).
      sys.algorithm_delays = AlgorithmDelays::eager_mop(
          spec.timing, spec.x, spec.timing.eps / 2);
      break;
    case ChaosMutant::kEagerAop:
      sys.algorithm_delays = AlgorithmDelays::eager_aop(
          spec.timing, spec.x, std::max<Tick>(0, spec.timing.min_delay() / 2));
      break;
    case ChaosMutant::kNarrowWaits:
      // The bug under test: a hardened replica whose waits were computed
      // from the *raw* timing, as if retransmissions could never push a
      // delivery past d.
      sys.algorithm_delays = AlgorithmDelays::standard(spec.timing, spec.x);
      break;
  }

  const bool degrade = degradation_variant(spec.variant);
  std::unique_ptr<ObjectSystem> system;
  const AlgorithmDelays* judged_delays = nullptr;
  if (degrade) {
    DegradeOptions dopt;
    dopt.base = sys;
    dopt.switching = spec.variant == ChaosVariant::kModeSwitching;
    system = std::make_unique<DegradeSystem>(model, dopt);
  } else {
    auto rs = std::make_unique<ReplicaSystem>(model, sys);
    judged_delays = &rs->algorithm_delays();
    system = std::move(rs);
  }

  Rng wl_rng(spec.workload_seed);
  std::vector<ClientScript> scripts;
  scripts.reserve(static_cast<std::size_t>(spec.n));
  for (int pid = 0; pid < spec.n; ++pid) {
    Rng client_rng = wl_rng.split(static_cast<std::uint64_t>(pid));
    scripts.push_back(ClientScript{static_cast<ProcessId>(pid),
                                   chaos_ops(spec.workload, client_rng,
                                             spec.ops_per_client),
                                   /*start_time=*/1000, spec.think_time});
  }
  // Degradation systems answer crash-cut operations themselves from the
  // durable quorum log; a client retry would race that late response.
  WorkloadDriver driver(system->sim(), std::move(scripts), {}, {},
                        /*reissue_cut_ops=*/!degrade);
  driver.arm();

  if (spec.faults.churn.any()) {
    make_churn_schedule(spec.faults, spec.n).apply(system->sim());
  }

  // The watchdog loop: advance in fixed virtual-time slices, checking the
  // wall clock between slices.  The event budget is the simulator's own
  // max_events, so a budget abort lands after *exactly* event_budget events
  // -- deterministic, hence shrinkable; a wall-clock trip is not.
  Simulator& sim = system->sim();
  sim.start();
  Execution out;
  bool drained = false;
  Tick horizon = 0;
  const auto wall_start = std::chrono::steady_clock::now();
  for (;;) {
    horizon += kWatchdogSlice;
    if (!sim.event_queue().empty() && sim.event_queue().next_time() > horizon) {
      // Nothing due this slice; jump to the next event (still a multiple of
      // nothing -- the horizon only stamps the trace at the end of the run).
      horizon = sim.event_queue().next_time();
    }
    drained = sim.run_until(horizon);
    if (drained) break;
    if (sim.events_processed() >= spec.event_budget) break;
    if (spec.wall_budget_ms > 0) {
      const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - wall_start);
      if (elapsed.count() > spec.wall_budget_ms) {
        out.wall_clock_tripped = true;
        break;
      }
    }
  }

  const Trace& trace = sim.trace();
  auto [history, pending] = history_with_pending(trace);
  out.status = !drained ? RunStatus::kAborted
               : pending.empty() ? RunStatus::kComplete
                                 : RunStatus::kStalled;
  const CheckResult check =
      check_linearizable_with_pending(*model, history, pending, CheckOptions{});
  out.linearizable = check.ok;
  out.explanation = check.explanation;
  out.report = audit_assumptions(trace);

  if (spec.variant != ChaosVariant::kStock) {
    // Covers the mode-switching replica too (it *is* a hardened replica in
    // its synchronous eras); the quorum variant has no reliable link.
    for (int pid = 0; pid < spec.n; ++pid) {
      if (const auto* h = dynamic_cast<const HardenedReplicaProcess*>(
              &sim.process(pid))) {
        out.link_give_ups += h->link_give_ups();
      }
    }
  }

  // Per-class latency excess against the delays the run actually used
  // (mutants are judged against their own, shorter bounds -- the eager
  // variants fail linearizability, not their self-declared latency).  The
  // degradation variants trade latency for availability by design and carry
  // no fixed per-class bound, so they keep worst_excess at 0.
  if (judged_delays) {
    LatencyReport latency;
    latency.absorb(*model, trace);
    const AlgorithmDelays& delays = *judged_delays;
    const auto excess = [&](OpClass cls, Tick bound) {
      const Tick worst = latency.worst_for_class(cls);
      if (worst == kNoTime) return;
      out.worst_excess = std::max(out.worst_excess, worst - bound);
    };
    excess(OpClass::kPureMutator, delays.mop_ack);
    excess(OpClass::kPureAccessor, delays.aop_respond);
    excess(OpClass::kOther, delays.self_add + delays.holdback);
  }
  absorb_degradation_events(trace, &out);

  out.trace_hash = hash_trace(trace);
  if (recorder) out.recorded = recorder->script();
  return out;
}

/// Fill the oracle verdict from one execution's measurements.
ChaosRunResult judge(const ChaosRunSpec& spec, const Execution& exec) {
  ChaosRunResult r;
  r.status = exec.status;
  r.linearizable = exec.linearizable;
  r.assumptions_clean = exec.report.clean();
  r.link_give_ups = exec.link_give_ups;
  r.worst_excess = exec.worst_excess;
  r.trace_hash = exec.trace_hash;
  r.wall_clock_tripped = exec.wall_clock_tripped;
  r.script = exec.recorded;
  r.downgrades = exec.downgrades;
  r.upgrades = exec.upgrades;
  r.max_concurrent_down = exec.max_concurrent_down;

  // The variant's guarantee: stock Algorithm 1 promises nothing once any
  // model assumption broke; the hardened/recoverable variants promise
  // linearizability as long as their link delivered everything (no
  // give-ups), nobody died outside the crash-recovery protocol, and no
  // process was stalled (stalls are outside every variant's model).
  switch (spec.variant) {
    case ChaosVariant::kStock:
      r.guarantee_applies = r.assumptions_clean;
      break;
    case ChaosVariant::kHardened:
      r.guarantee_applies =
          exec.link_give_ups == 0 &&
          !exec.report.violated(Assumption::kFailureFree) &&
          !exec.report.violated(Assumption::kRecovering) &&
          !exec.report.violated(Assumption::kNoStalls);
      break;
    case ChaosVariant::kRecoverable:
      r.guarantee_applies = exec.link_give_ups == 0 &&
                            !exec.report.violated(Assumption::kNoStalls);
      break;
    case ChaosVariant::kModeSwitching:
      // Safety holds through any delay behaviour; only a crashed *majority*
      // (which could split the quorum log) voids the promise.
      r.guarantee_applies = 2 * exec.max_concurrent_down < spec.n;
      break;
    case ChaosVariant::kQuorum:
      // Paxos safety needs no timing assumptions at all.
      r.guarantee_applies = true;
      break;
  }

  std::ostringstream detail;
  if (exec.status == RunStatus::kAborted) {
    r.verdict = ChaosVerdict::kAborted;
    detail << (exec.wall_clock_tripped ? "wall-clock budget exceeded"
                                       : "event budget exceeded")
           << " before quiescence";
  } else if (!exec.linearizable && r.guarantee_applies) {
    r.verdict = ChaosVerdict::kNonLinearizable;
    detail << "non-linearizable while the "
           << chaos_variant_name(spec.variant)
           << " guarantee applied: " << exec.explanation;
  } else if (exec.status == RunStatus::kStalled &&
             degradation_variant(spec.variant) && storm_heals(spec, exec)) {
    // The degraded-mode liveness oracle: the whole point of the fallback is
    // availability, so pending operations after a storm that healed -- and
    // left a live majority -- are a violation, not an excuse.
    r.verdict = ChaosVerdict::kAborted;
    detail << "degraded-mode oracle: operations left pending although the "
              "storm healed and a majority stayed up (downgrades="
           << exec.downgrades << ", upgrades=" << exec.upgrades << ")";
  } else if (exec.status == RunStatus::kStalled && r.assumptions_clean &&
             !degradation_variant(spec.variant)) {
    // Operations left unanswered although the model held end to end.
    r.verdict = ChaosVerdict::kAborted;
    detail << "operations left pending in a clean run";
  } else if (r.assumptions_clean && exec.worst_excess > 0) {
    r.verdict = ChaosVerdict::kBoundViolated;
    detail << "latency bound exceeded by " << exec.worst_excess
           << " ticks in a clean run";
  } else {
    r.verdict = ChaosVerdict::kOk;
    if (!exec.linearizable) {
      detail << "non-linearizable but out of coverage ("
             << exec.report.attribute(false)
             << ", give-ups=" << exec.link_give_ups << ")";
    } else {
      detail << "ok";
    }
  }
  r.detail = detail.str();
  return r;
}

std::shared_ptr<FaultPolicy> recording_policy(
    const ChaosRunSpec& spec, std::shared_ptr<RecordingFaultPolicy>* recorder) {
  std::shared_ptr<FaultPolicy> inner;
  if (spec.faults.any()) inner = make_fault_policy(spec.faults);
  *recorder = std::make_shared<RecordingFaultPolicy>(std::move(inner));
  return *recorder;
}

}  // namespace

ChaosRunResult run_chaos(const ChaosRunSpec& spec) {
  spec.validate();
  // Two statements on purpose: recording_policy fills `rec1`, so passing
  // `rec1.get()` in the same call would read it at an unspecified time.
  std::shared_ptr<RecordingFaultPolicy> rec1;
  const std::shared_ptr<FaultPolicy> policy1 = recording_policy(spec, &rec1);
  const Execution first = execute_once(spec, policy1, rec1.get());
  ChaosRunResult result = judge(spec, first);
  if (first.wall_clock_tripped) return result;  // cut at a wall-dependent point

  // Determinism oracle: an independent second execution from the same spec
  // must reproduce the trace bit-for-bit (and the same fault script).
  std::shared_ptr<RecordingFaultPolicy> rec2;
  const std::shared_ptr<FaultPolicy> policy2 = recording_policy(spec, &rec2);
  const Execution second = execute_once(spec, policy2, rec2.get());
  if (second.trace_hash != first.trace_hash ||
      !(second.recorded == first.recorded)) {
    result.verdict = ChaosVerdict::kNonDeterministic;
    std::ostringstream detail;
    detail << "double-run divergence: trace hash " << std::hex
           << first.trace_hash << " vs " << second.trace_hash;
    result.detail = detail.str();
  }
  return result;
}

ChaosRunResult replay_chaos(const ChaosRunSpec& spec,
                            const FaultScript& script) {
  spec.validate();
  std::vector<std::shared_ptr<FaultPolicy>> children;
  children.push_back(std::make_shared<ScriptedFaultPolicy>(script));
  if (!spec.faults.stalls.empty()) {
    children.push_back(std::make_shared<StallFaultPolicy>(spec.faults.stalls));
  }
  const auto policy =
      std::make_shared<ComposedFaultPolicy>(std::move(children));
  const Execution exec = execute_once(spec, policy, nullptr);
  ChaosRunResult result = judge(spec, exec);
  result.script = script;
  return result;
}

// --- chaosrepro v1 serialization ------------------------------------------

void write_repro_bundle(std::ostream& os, const ReproBundle& bundle) {
  const ChaosRunSpec& s = bundle.spec;
  os << "chaosrepro v1\n";
  os << "system " << s.n << " " << s.timing.d << " " << s.timing.u << " "
     << s.timing.eps << " " << s.x << " " << chaos_variant_name(s.variant)
     << " " << chaos_mutant_name(s.mutant) << " "
     << chaos_workload_name(s.workload) << " " << s.ops_per_client << " "
     << s.think_time << "\n";
  os << "seeds " << s.delay_seed << " " << s.workload_seed << "\n";
  os << "budget " << s.event_budget << " " << s.wall_budget_ms << "\n";
  os << std::setprecision(17);
  os << "faults " << s.faults.seed << " " << s.faults.drop_p << " "
     << s.faults.dup_p << " " << s.faults.dup_copies << " " << s.faults.spike_p
     << " " << s.faults.spike_max << "\n";
  os << "churn " << s.faults.churn.mean_uptime << " "
     << s.faults.churn.mean_downtime << " " << s.faults.churn.start << " "
     << s.faults.churn.horizon << " " << s.faults.churn.max_down << "\n";
  for (const StallWindow& w : s.faults.stalls) {
    os << "stall " << w.pid << " " << w.from << " " << w.until << "\n";
  }
  for (const PartitionWindow& w : s.faults.partitions) {
    os << "partition " << w.from << " " << w.until << " "
       << w.component_of.size();
    for (int c : w.component_of) os << " " << c;
    os << "\n";
  }
  for (const LinkFault& link : s.faults.links) {
    os << "link " << link.from << " " << link.to << " " << link.drop_p << " "
       << link.delay_p << " " << link.delay_max << "\n";
  }
  os << "expect " << chaos_verdict_name(bundle.expected_verdict) << " "
     << bundle.expected_hash << "\n";
  write_fault_script(os, bundle.script);
}

std::string repro_bundle_to_string(const ReproBundle& bundle) {
  std::ostringstream os;
  write_repro_bundle(os, bundle);
  return os.str();
}

std::optional<ReproBundle> read_repro_bundle(std::istream& is,
                                             std::string* error) {
  std::string line;
  if (!std::getline(is, line) || line != "chaosrepro v1") {
    fail(error, "missing 'chaosrepro v1' header");
    return std::nullopt;
  }
  ReproBundle bundle;
  ChaosRunSpec& s = bundle.spec;
  bool saw_system = false, saw_expect = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line == "faultscript v1") {
      if (!saw_system || !saw_expect) {
        fail(error, "faultscript before a complete spec");
        return std::nullopt;
      }
      // Hand the already-consumed header back to the script reader by
      // parsing the remainder ourselves through a rebuilt stream.
      std::ostringstream rest;
      rest << line << "\n" << is.rdbuf();
      auto script = fault_script_from_string(rest.str(), error);
      if (!script) return std::nullopt;
      bundle.script = std::move(*script);
      try {
        s.validate();
      } catch (const std::invalid_argument& e) {
        fail(error, std::string("invalid spec: ") + e.what());
        return std::nullopt;
      }
      return bundle;
    }
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "system") {
      std::string variant, mutant, workload;
      ls >> s.n >> s.timing.d >> s.timing.u >> s.timing.eps >> s.x >> variant >>
          mutant >> workload >> s.ops_per_client >> s.think_time;
      const auto v = parse_chaos_variant(variant);
      const auto m = parse_chaos_mutant(mutant);
      const auto w = parse_chaos_workload(workload);
      if (ls.fail() || !v || !m || !w) {
        fail(error, "malformed system line: " + line);
        return std::nullopt;
      }
      s.variant = *v;
      s.mutant = *m;
      s.workload = *w;
      saw_system = true;
    } else if (kind == "seeds") {
      ls >> s.delay_seed >> s.workload_seed;
      if (ls.fail()) {
        fail(error, "malformed seeds line: " + line);
        return std::nullopt;
      }
    } else if (kind == "budget") {
      ls >> s.event_budget >> s.wall_budget_ms;
      if (ls.fail()) {
        fail(error, "malformed budget line: " + line);
        return std::nullopt;
      }
    } else if (kind == "faults") {
      ls >> s.faults.seed >> s.faults.drop_p >> s.faults.dup_p >>
          s.faults.dup_copies >> s.faults.spike_p >> s.faults.spike_max;
      if (ls.fail()) {
        fail(error, "malformed faults line: " + line);
        return std::nullopt;
      }
    } else if (kind == "churn") {
      ls >> s.faults.churn.mean_uptime >> s.faults.churn.mean_downtime >>
          s.faults.churn.start >> s.faults.churn.horizon >>
          s.faults.churn.max_down;
      if (ls.fail()) {
        fail(error, "malformed churn line: " + line);
        return std::nullopt;
      }
    } else if (kind == "stall") {
      StallWindow w;
      ls >> w.pid >> w.from >> w.until;
      if (ls.fail()) {
        fail(error, "malformed stall line: " + line);
        return std::nullopt;
      }
      s.faults.stalls.push_back(w);
    } else if (kind == "partition") {
      PartitionWindow w;
      std::size_t count = 0;
      ls >> w.from >> w.until >> count;
      if (ls.fail() || count > 1024) {
        fail(error, "malformed partition line: " + line);
        return std::nullopt;
      }
      w.component_of.resize(count);
      for (std::size_t i = 0; i < count; ++i) ls >> w.component_of[i];
      if (ls.fail()) {
        fail(error, "malformed partition line: " + line);
        return std::nullopt;
      }
      s.faults.partitions.push_back(std::move(w));
    } else if (kind == "link") {
      LinkFault link;
      ls >> link.from >> link.to >> link.drop_p >> link.delay_p >>
          link.delay_max;
      if (ls.fail()) {
        fail(error, "malformed link line: " + line);
        return std::nullopt;
      }
      s.faults.links.push_back(link);
    } else if (kind == "expect") {
      std::string verdict;
      ls >> verdict >> bundle.expected_hash;
      const auto v = parse_chaos_verdict(verdict);
      if (ls.fail() || !v) {
        fail(error, "malformed expect line: " + line);
        return std::nullopt;
      }
      bundle.expected_verdict = *v;
      saw_expect = true;
    } else {
      fail(error, "unknown chaosrepro line: " + line);
      return std::nullopt;
    }
  }
  fail(error, "chaosrepro missing its faultscript section");
  return std::nullopt;
}

std::optional<ReproBundle> repro_bundle_from_string(const std::string& text,
                                                    std::string* error) {
  std::istringstream is(text);
  return read_repro_bundle(is, error);
}

ReplayOutcome replay_bundle(const ReproBundle& bundle) {
  ReplayOutcome out;
  out.result = replay_chaos(bundle.spec, bundle.script);
  out.verdict_matches = out.result.verdict == bundle.expected_verdict;
  out.hash_matches = out.result.trace_hash == bundle.expected_hash;
  return out;
}

}  // namespace linbound
