// The chaos engine's single-run core: one fully-specified adversarial run,
// judged by a stack of oracles.
//
// A ChaosRunSpec is self-contained -- system shape, variant, planted
// mutant, workload, seeds, fault configuration, watchdog budgets -- and
// every derived quantity (delay policy, clock offsets, client scripts,
// churn schedule) is a pure function of it, so a spec alone reproduces a
// run byte-for-byte on any machine.  run_chaos executes the spec twice,
// recording the fault layer's concrete decisions into a FaultScript, and
// returns a verdict from the layered oracles:
//
//   kAborted           the watchdog ended the run: the deterministic event
//                      budget tripped (always reproducible) or the
//                      wall-clock guard fired (CI safety net; flagged
//                      non-reproducible, never shrunk);
//   kNonLinearizable   the checker rejected the history *and* the variant's
//                      guarantee applied (see below) -- a real bug;
//   kBoundViolated     an operation exceeded its per-class latency bound
//                      while the assumption monitor saw a clean run;
//   kNonDeterministic  the two runs produced different trace hashes;
//   kOk                none of the above.
//
// Guarantee gating is what keeps the linearizability oracle sound: Algorithm
// 1's correctness is conditional on its model, so a non-linearizable outcome
// only counts when the model (as the variant defines it) actually held.
// Stock runs count only when the assumption monitor is clean; hardened and
// recoverable runs count only when the reliable link never gave up
// (link_give_ups == 0: every message was eventually delivered, so the
// *effective* model -- delivery within d_eff -- held) and no process died
// without the crash-recovery protocol.  A violation that survives this gate
// cannot be explained away by "the faults broke the model": the
// implementation is at fault.  DESIGN.md section 12 gives the full argument.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>

#include "chaos/fault_script.h"
#include "core/system.h"
#include "fault/fault_policy.h"

namespace linbound {

/// Which implementation the run exercises.
enum class ChaosVariant {
  kStock,        ///< plain Algorithm 1 (guarantee: fault-free model)
  kHardened,     ///< reliable-link variant (guarantee: link never gives up)
  kRecoverable,  ///< crash-recovery variant (guarantee: ditto, plus churn)
  /// Synchrony supervisor + live mode switching (src/degrade).  Guarantee:
  /// linearizable whenever concurrent crashes stay a minority; the
  /// degraded-mode oracle additionally demands *liveness* -- no stalls and
  /// no aborts -- whenever the storm heals (see judge in chaos.cpp).
  kModeSwitching,
  /// The asynchronous quorum backend alone (src/degrade/quorum_replica.h).
  /// Guarantee: unconditional linearizability (Paxos safety needs no
  /// timing), liveness whenever a majority stays up and crashes heal.
  kQuorum,
};

/// Deliberately planted bugs the engine must find (validation of the whole
/// search/shrink pipeline) -- each squeezes a wait below what the paper's
/// safety argument needs.
enum class ChaosMutant {
  kNone,         ///< the real implementation
  kEagerMop,     ///< mutator acks before eps (Theorem D.1 territory)
  kEagerAop,     ///< accessor responds before the broadcasts can arrive
  kNarrowWaits,  ///< hardened variant computing waits from the *un-widened*
                 ///< timing: one retransmission pushes delivery past the d
                 ///< its holdback assumed
};

/// Client workload shape (small value domains, conflict-heavy).
enum class ChaosWorkload { kRegister, kQueue, kSet };

enum class ChaosVerdict {
  kOk,
  kNonLinearizable,
  kBoundViolated,
  kAborted,
  kNonDeterministic,
};

const char* chaos_variant_name(ChaosVariant v);
const char* chaos_mutant_name(ChaosMutant m);
const char* chaos_workload_name(ChaosWorkload w);
const char* chaos_verdict_name(ChaosVerdict v);
std::optional<ChaosVariant> parse_chaos_variant(const std::string& name);
std::optional<ChaosMutant> parse_chaos_mutant(const std::string& name);
std::optional<ChaosWorkload> parse_chaos_workload(const std::string& name);
std::optional<ChaosVerdict> parse_chaos_verdict(const std::string& name);

/// Everything one adversarial run depends on.  Serializable ("spec" section
/// of the chaosrepro format); validate() rejects nonsense up front with the
/// same construction-time checks the fault layer applies.
struct ChaosRunSpec {
  int n = 3;
  SystemTiming timing;
  Tick x = 0;
  ChaosVariant variant = ChaosVariant::kStock;
  ChaosMutant mutant = ChaosMutant::kNone;
  ChaosWorkload workload = ChaosWorkload::kRegister;
  int ops_per_client = 6;
  Tick think_time = 0;
  /// Seeds the delay adversary + clock offsets and the client scripts; the
  /// fault layer's randomness is FaultConfig::seed.
  std::uint64_t delay_seed = 1;
  std::uint64_t workload_seed = 1;
  FaultConfig faults;
  /// Deterministic watchdog: the run is cut (kAborted) after exactly this
  /// many simulator events.  Must be > 0.
  std::size_t event_budget = 200'000;
  /// Wall-clock safety net in milliseconds; 0 disables.  Trips are
  /// machine-dependent, so they are reported but never shrunk or bundled.
  std::int64_t wall_budget_ms = 0;

  void validate() const;
};

struct ChaosRunResult {
  ChaosVerdict verdict = ChaosVerdict::kOk;
  RunStatus status = RunStatus::kComplete;
  bool linearizable = true;
  /// The assumption monitor saw nothing broken (paper model held).
  bool assumptions_clean = true;
  /// The variant's guarantee applied to this run (see header comment).
  bool guarantee_applies = true;
  /// Hardened/recoverable link give-ups summed over replicas (0 for stock).
  std::int64_t link_give_ups = 0;
  /// Worst observed latency minus its per-class bound, over all classes;
  /// <= 0 when every class stayed in bound.  Fixed-mode variants only: a
  /// degraded run trades latency for availability by design.
  Tick worst_excess = 0;
  /// Mode switches the supervisor recorded (mode-switching variant; 0
  /// elsewhere) -- counted from the trace's kModeDowngrade/kModeUpgrade
  /// events, so replay reproduces them too.
  int downgrades = 0;
  int upgrades = 0;
  /// Most processes crashed at once at any point of the run.
  int max_concurrent_down = 0;
  std::uint64_t trace_hash = 0;
  /// The wall-clock guard (not the event budget) caused the abort: the
  /// result is machine-dependent and must not be shrunk or bundled.
  bool wall_clock_tripped = false;
  /// Recorded (run_chaos) or replayed (replay_chaos) fault decisions.
  FaultScript script;
  std::string detail;  ///< human-readable account of the verdict

  bool violation() const { return verdict != ChaosVerdict::kOk; }
  /// A violation worth shrinking and bundling: deterministic by
  /// construction (wall-clock trips and determinism failures are not).
  bool reproducible_violation() const {
    return violation() && !wall_clock_tripped &&
           verdict != ChaosVerdict::kNonDeterministic;
  }
};

/// The object model a workload runs against.
std::shared_ptr<const ObjectModel> chaos_model(ChaosWorkload workload);

/// Execute the spec twice (determinism oracle), recording the fault script.
ChaosRunResult run_chaos(const ChaosRunSpec& spec);

/// Execute the spec once with the fault layer scripted: the given decisions
/// at their msg_seqs, no fault anywhere else.  Stalls and churn still come
/// from spec.faults (they are config-driven, not per-send).  Replaying the
/// full recorded script reproduces run_chaos's trace byte-for-byte.
ChaosRunResult replay_chaos(const ChaosRunSpec& spec,
                            const FaultScript& script);

/// A self-contained, minimized reproduction: the spec, the (shrunk) fault
/// script, and the expected outcome.  Serialized as "chaosrepro v1";
/// replay_bundle re-runs it and checks both verdict and trace hash.
struct ReproBundle {
  ChaosRunSpec spec;
  FaultScript script;
  ChaosVerdict expected_verdict = ChaosVerdict::kOk;
  std::uint64_t expected_hash = 0;
};

void write_repro_bundle(std::ostream& os, const ReproBundle& bundle);
std::string repro_bundle_to_string(const ReproBundle& bundle);
std::optional<ReproBundle> read_repro_bundle(std::istream& is,
                                             std::string* error = nullptr);
std::optional<ReproBundle> repro_bundle_from_string(const std::string& text,
                                                    std::string* error = nullptr);

struct ReplayOutcome {
  ChaosRunResult result;
  bool verdict_matches = false;
  bool hash_matches = false;

  bool ok() const { return verdict_matches && hash_matches; }
};

/// Replay a bundle and compare against its expectations.
ReplayOutcome replay_bundle(const ReproBundle& bundle);

}  // namespace linbound
