#include "chaos/fault_script.h"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace linbound {
namespace {

bool fail(std::string* error, const std::string& why) {
  if (error) *error = why;
  return false;
}

}  // namespace

void write_fault_script(std::ostream& os, const FaultScript& script) {
  os << "faultscript v1\n";
  for (const ScriptedDecision& d : script.decisions) {
    os << "decision " << d.msg_seq << " " << (d.decision.drop ? 1 : 0) << " "
       << d.decision.extra_copies << " " << d.decision.delay_boost << "\n";
  }
  os << "end\n";
}

std::string fault_script_to_string(const FaultScript& script) {
  std::ostringstream os;
  write_fault_script(os, script);
  return os.str();
}

std::optional<FaultScript> read_fault_script(std::istream& is,
                                             std::string* error) {
  std::string line;
  if (!std::getline(is, line) || line != "faultscript v1") {
    fail(error, "missing 'faultscript v1' header");
    return std::nullopt;
  }
  FaultScript script;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line == "end") return script;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind != "decision") {
      fail(error, "unknown faultscript line: " + line);
      return std::nullopt;
    }
    ScriptedDecision d;
    int drop = 0;
    ls >> d.msg_seq >> drop >> d.decision.extra_copies >>
        d.decision.delay_boost;
    if (ls.fail() || d.msg_seq < 0 || (drop != 0 && drop != 1) ||
        d.decision.extra_copies < 0 || d.decision.delay_boost < 0) {
      fail(error, "malformed decision line: " + line);
      return std::nullopt;
    }
    d.decision.drop = drop == 1;
    script.decisions.push_back(d);
  }
  fail(error, "faultscript missing 'end' marker");
  return std::nullopt;
}

std::optional<FaultScript> fault_script_from_string(const std::string& text,
                                                    std::string* error) {
  std::istringstream is(text);
  return read_fault_script(is, error);
}

FaultDecision RecordingFaultPolicy::on_send(ProcessId from, ProcessId to,
                                            Tick send_time,
                                            std::int64_t msg_seq) {
  const FaultDecision d =
      inner_ ? inner_->on_send(from, to, send_time, msg_seq) : FaultDecision{};
  if (d.drop || d.extra_copies > 0 || d.delay_boost > 0) {
    script_.decisions.push_back({msg_seq, d});
  }
  return d;
}

Tick RecordingFaultPolicy::stalled_until(ProcessId pid, Tick now) {
  return inner_ ? inner_->stalled_until(pid, now) : kNoTime;
}

ScriptedFaultPolicy::ScriptedFaultPolicy(FaultScript script)
    : script_(std::move(script)) {
  std::sort(script_.decisions.begin(), script_.decisions.end(),
            [](const ScriptedDecision& a, const ScriptedDecision& b) {
              return a.msg_seq < b.msg_seq;
            });
}

FaultDecision ScriptedFaultPolicy::on_send(ProcessId, ProcessId, Tick,
                                           std::int64_t msg_seq) {
  const auto it = std::lower_bound(
      script_.decisions.begin(), script_.decisions.end(), msg_seq,
      [](const ScriptedDecision& d, std::int64_t seq) {
        return d.msg_seq < seq;
      });
  if (it != script_.decisions.end() && it->msg_seq == msg_seq) {
    return it->decision;
  }
  return {};
}

}  // namespace linbound
