// Fault scripts: the exact record of what the fault layer did to one run.
//
// A randomized FaultPolicy is reproducible from its seed, but a *seed* is a
// terrible artifact to minimize: flipping one decision means finding a new
// seed that happens to produce it.  A FaultScript instead captures every
// concrete per-send FaultDecision by its message sequence number, so a run
// can be replayed decision-for-decision -- and, crucially, *edited*: the
// delta-debugging shrinker (chaos/shrink.h) removes decisions one subset at
// a time, replaying each candidate, until the script is locally minimal.
//
// Replay fidelity: message ids are assigned in send order, and the fault
// layer is consulted exactly once per send, so feeding the recorded decision
// back at each msg_seq reproduces the original unfolding by induction --
// identical sends, identical ids, byte-identical trace.  Stall windows and
// churn are not per-send decisions; they replay from the run's FaultConfig
// (deterministic given the config), not from the script.
//
// Serialized as "faultscript v1", one line per non-default decision:
//
//   faultscript v1
//   decision <msg_seq> <drop 0|1> <extra_copies> <delay_boost>
//   end
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/fault_injection.h"

namespace linbound {

/// One recorded fault-layer decision, keyed by the per-run message id of
/// the send it applied to.
struct ScriptedDecision {
  std::int64_t msg_seq = -1;
  FaultDecision decision;

  bool operator==(const ScriptedDecision& other) const {
    return msg_seq == other.msg_seq && decision.drop == other.decision.drop &&
           decision.extra_copies == other.decision.extra_copies &&
           decision.delay_boost == other.decision.delay_boost;
  }
};

/// Every non-default decision of one run, in msg_seq order.
struct FaultScript {
  std::vector<ScriptedDecision> decisions;

  bool empty() const { return decisions.empty(); }
  std::size_t size() const { return decisions.size(); }
  bool operator==(const FaultScript& other) const {
    return decisions == other.decisions;
  }
};

/// Serialize / parse the "faultscript v1" format.  write_fault_script emits
/// the header and end marker, so scripts embed cleanly inside larger
/// documents (the chaos repro bundle); read_fault_script consumes exactly
/// through the end marker.
void write_fault_script(std::ostream& os, const FaultScript& script);
std::string fault_script_to_string(const FaultScript& script);
std::optional<FaultScript> read_fault_script(std::istream& is,
                                             std::string* error = nullptr);
std::optional<FaultScript> fault_script_from_string(const std::string& text,
                                                    std::string* error = nullptr);

/// Wraps a live policy and records every non-default decision it makes.
/// stalled_until passes through untouched (stalls are config-driven and
/// replay from the config, not the script).
class RecordingFaultPolicy final : public FaultPolicy {
 public:
  explicit RecordingFaultPolicy(std::shared_ptr<FaultPolicy> inner)
      : inner_(std::move(inner)) {}

  FaultDecision on_send(ProcessId from, ProcessId to, Tick send_time,
                        std::int64_t msg_seq) override;
  Tick stalled_until(ProcessId pid, Tick now) override;

  const FaultScript& script() const { return script_; }

 private:
  std::shared_ptr<FaultPolicy> inner_;
  FaultScript script_;
};

/// Replays a FaultScript: the recorded decision at each scripted msg_seq,
/// the default (no fault) everywhere else.  Decisions the shrinker removed
/// simply revert to "deliver normally".
class ScriptedFaultPolicy final : public FaultPolicy {
 public:
  explicit ScriptedFaultPolicy(FaultScript script);

  FaultDecision on_send(ProcessId from, ProcessId to, Tick send_time,
                        std::int64_t msg_seq) override;

 private:
  FaultScript script_;  ///< sorted by msg_seq for binary search
};

}  // namespace linbound
