#include "chaos/search.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "common/parallel.h"

namespace linbound {
namespace {

/// One covered fault cell of the hardened grid.
FaultConfig drop_cell(double p) {
  FaultConfig f;
  f.drop_p = p;
  return f;
}

FaultConfig dup_cell(double p, int copies) {
  FaultConfig f;
  f.dup_p = p;
  f.dup_copies = copies;
  return f;
}

FaultConfig spike_cell(double p, Tick max) {
  FaultConfig f;
  f.spike_p = p;
  f.spike_max = max;
  return f;
}

FaultConfig mix_cell(const SystemTiming& t) {
  FaultConfig f;
  f.drop_p = 0.10;
  f.dup_p = 0.10;
  f.spike_p = 0.05;
  f.spike_max = t.u > 0 ? t.u : t.d / 2;
  return f;
}

/// A split-brain window early in the run, healed well inside the link's
/// retransmission budget (first timeout ~2d, six attempts: a 2d partition
/// is absorbed with room to spare).
FaultConfig partition_cell(const SystemTiming& t, int n) {
  FaultConfig f;
  PartitionWindow w;
  w.from = 1500;
  w.until = w.from + 2 * t.d;
  w.component_of.assign(static_cast<std::size_t>(n), 0);
  w.component_of[0] = 1;  // process 0 alone vs the rest
  f.partitions.push_back(std::move(w));
  return f;
}

/// Asymmetric per-link loss plus a lossy-and-slow reverse direction.
FaultConfig link_cell(const SystemTiming& t) {
  FaultConfig f;
  f.links.push_back(LinkFault{0, 1, /*drop_p=*/0.25, /*delay_p=*/0.0, 0});
  f.links.push_back(
      LinkFault{1, 0, /*drop_p=*/0.10, /*delay_p=*/0.25, /*delay_max=*/t.u});
  return f;
}

/// One process frozen for a while mid-run (outside every variant's
/// guarantee -- exercises the abort/determinism oracles and replay, not the
/// linearizability gate).
FaultConfig stall_cell(const SystemTiming& t) {
  FaultConfig f;
  f.stalls.push_back(StallWindow{0, 2000, 2000 + 3 * t.d});
  return f;
}

/// Crash-recovery churn: one process down at a time, downtime a couple of
/// delivery bounds -- within what the rejoin protocol plus retransmission
/// budget cover (cf. tests/test_fuzz.cpp's crash-recovery rounds).
FaultConfig churn_cell(const SystemTiming& t, double drop_p) {
  FaultConfig f;
  f.drop_p = drop_p;
  f.churn.mean_uptime = 8 * t.d;
  f.churn.mean_downtime = 2 * t.d;
  f.churn.start = 1000;
  f.churn.horizon = 14 * t.d;
  f.churn.max_down = 1;
  return f;
}

/// The degradation storm: a delay-spike barrage plus an early partition plus
/// minority churn, heavy enough to drive the fixed-mode variants to give up
/// yet guaranteed to heal -- exactly the weather the degraded-mode liveness
/// oracle demands survival of.
FaultConfig degraded_storm_cell(const SystemTiming& t, int n) {
  FaultConfig f;
  f.spike_p = 0.25;
  f.spike_max = 4 * t.d;
  PartitionWindow w;
  w.from = 1500;
  w.until = w.from + 6 * t.d;
  w.component_of.assign(static_cast<std::size_t>(n), 0);
  w.component_of[0] = 1;
  f.partitions.push_back(std::move(w));
  f.churn.mean_uptime = 10 * t.d;
  f.churn.mean_downtime = 2 * t.d;
  f.churn.start = 2000;
  f.churn.horizon = 20 * t.d;
  f.churn.max_down = (n - 1) / 2;
  return f;
}

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

std::vector<ChaosRunSpec> chaos_search_grid(const ChaosSearchOptions& options) {
  std::vector<ChaosVariant> variants = options.variants;
  if (variants.empty()) {
    variants = {ChaosVariant::kStock, ChaosVariant::kHardened,
                ChaosVariant::kRecoverable, ChaosVariant::kModeSwitching,
                ChaosVariant::kQuorum};
  }
  // A planted mutant pins the variant it lives in.
  switch (options.mutant) {
    case ChaosMutant::kNone:
      break;
    case ChaosMutant::kEagerMop:
    case ChaosMutant::kEagerAop:
      variants = {ChaosVariant::kStock};
      break;
    case ChaosMutant::kNarrowWaits:
      variants = {ChaosVariant::kHardened};
      break;
  }

  const SystemTiming& t = options.timing;
  std::vector<ChaosRunSpec> grid;
  for (const ChaosVariant variant : variants) {
    std::vector<FaultConfig> cells;
    std::vector<ChaosWorkload> workloads;
    switch (variant) {
      case ChaosVariant::kStock:
        // The guarantee is unconditional only in the fault-free model; the
        // adversary here is the delay schedule and the clock offsets.
        cells = {FaultConfig{}};
        workloads = {ChaosWorkload::kRegister, ChaosWorkload::kQueue,
                     ChaosWorkload::kSet};
        break;
      case ChaosVariant::kHardened:
        cells = {drop_cell(0.15),
                 dup_cell(0.20, 2),
                 spike_cell(0.15, t.u > 0 ? t.u : t.d / 2),
                 partition_cell(t, options.n),
                 link_cell(t),
                 stall_cell(t),
                 mix_cell(t)};
        workloads = {ChaosWorkload::kRegister, ChaosWorkload::kQueue};
        break;
      case ChaosVariant::kRecoverable:
        cells = {churn_cell(t, 0.0), churn_cell(t, 0.05)};
        workloads = {ChaosWorkload::kRegister, ChaosWorkload::kQueue};
        break;
      case ChaosVariant::kModeSwitching:
        // Weather bad enough to trip the supervisor, tame enough to heal:
        // the liveness oracle then demands completion through the switch.
        cells = {spike_cell(0.25, 4 * t.d), partition_cell(t, options.n),
                 degraded_storm_cell(t, options.n)};
        workloads = {ChaosWorkload::kRegister, ChaosWorkload::kQueue};
        break;
      case ChaosVariant::kQuorum:
        // Safety is unconditional, so the heaviest cells go here.
        cells = {drop_cell(0.15), spike_cell(0.25, 4 * t.d),
                 partition_cell(t, options.n), churn_cell(t, 0.05)};
        workloads = {ChaosWorkload::kRegister, ChaosWorkload::kQueue};
        break;
    }
    for (std::size_t ci = 0; ci < cells.size(); ++ci) {
      for (const ChaosWorkload workload : workloads) {
        for (int seed = 0; seed < options.seeds; ++seed) {
          ChaosRunSpec spec;
          spec.n = options.n;
          spec.timing = t;
          spec.x = options.x;
          spec.variant = variant;
          spec.mutant = options.mutant;
          spec.workload = workload;
          spec.ops_per_client = options.ops_per_client;
          spec.think_time = options.think_time;
          spec.event_budget = options.event_budget;
          // A covered cell must size its watchdog to the variant too: under
          // a persistent spike barrage the supervisor legitimately cycles
          // the era machinery thousands of times before the run drains
          // (~600k events at an unlucky seed), so the fixed-mode budget
          // would turn weather into a spurious kAborted finding -- whose
          // ~70k-decision script the shrinker then chews on for minutes.
          if (variant == ChaosVariant::kModeSwitching) {
            spec.event_budget *= 10;
          }
          spec.wall_budget_ms = options.wall_budget_ms;
          spec.faults = cells[ci];
          // Every random ingredient gets its own stream, derived from the
          // grid coordinates alone: the same options reproduce the same
          // grid, and cell (ci) never perturbs cell (ci+1).
          const std::uint64_t salt =
              mix64(options.base_seed +
                    0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(seed));
          spec.delay_seed = salt ^ mix64(ci + 1);
          spec.workload_seed =
              mix64(salt + static_cast<std::uint64_t>(workload) + 17);
          spec.faults.seed = mix64(spec.delay_seed + 0xfa017);
          grid.push_back(std::move(spec));
        }
      }
    }
  }
  return grid;
}

std::string ChaosSearchResult::summary() const {
  std::ostringstream os;
  os << runs << " specs run, " << violations << " violations ("
     << reproducible << " reproducible, " << wall_trips << " wall trips)";
  if (truncated) os << " [time budget truncated the grid]";
  os << "\n";
  for (const ChaosFinding& f : findings) {
    os << "  " << chaos_verdict_name(f.result.verdict) << " "
       << chaos_variant_name(f.spec.variant) << "/"
       << chaos_workload_name(f.spec.workload)
       << " mutant=" << chaos_mutant_name(f.spec.mutant)
       << " delay_seed=" << f.spec.delay_seed
       << " script=" << f.result.script.size() << " decisions: "
       << f.result.detail << "\n";
  }
  return os.str();
}

ChaosSearchResult run_chaos_search(const ChaosSearchOptions& options) {
  const std::vector<ChaosRunSpec> grid = chaos_search_grid(options);
  const ParallelSweepExecutor executor(options.jobs);
  ChaosSearchResult result;

  // Waves of tasks: inside a wave the executor may reorder freely (results
  // land in canonical slots); between waves we check the time budget.  A
  // fixed budget of 0 runs every wave, making the whole search a pure
  // function of the options.
  const std::size_t wave =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   std::max(1, options.jobs)) *
                                   4);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t base = 0; base < grid.size(); base += wave) {
    if (options.time_budget_s > 0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (elapsed.count() > options.time_budget_s) {
        result.truncated = true;
        break;
      }
    }
    const std::size_t count = std::min(wave, grid.size() - base);
    const std::vector<ChaosRunResult> wave_results =
        executor.map<ChaosRunResult>(count, [&](std::size_t i) {
          return run_chaos(grid[base + i]);
        });
    for (std::size_t i = 0; i < count; ++i) {
      const ChaosRunResult& r = wave_results[i];
      ++result.runs;
      if (r.wall_clock_tripped) ++result.wall_trips;
      if (!r.violation()) continue;
      ++result.violations;
      if (r.reproducible_violation()) {
        ++result.reproducible;
        if (static_cast<int>(result.findings.size()) < options.max_findings) {
          result.findings.push_back(ChaosFinding{grid[base + i], r});
        }
      }
    }
  }
  return result;
}

}  // namespace linbound
