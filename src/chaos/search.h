// The chaos-search loop: a seeded, parallel sweep over fault configurations
// x seeds x workloads, hunting for runs the oracles reject.
//
// The grid is *covered by construction* -- every cell stays inside the
// guarantee of the variant it exercises (see chaos/chaos.h on gating), so a
// violation is a bug by definition, never an artifact of over-injection:
//
//   stock        fault-free cells only; the adversary is the delay schedule
//                and the clock offsets (both derived from the seed);
//   hardened     drop / duplicate / spike / partition / per-link / stall
//                cells sized so the reliable link can absorb them (partition
//                and downtime lengths within the retransmission budget,
//                spike margins configured in);
//   recoverable  churn cells with max_down=1 and downtime within budget,
//                optionally mixed with light message loss.
//   mode-switching  spike barrages / partitions / the combined degradation
//                storm -- weather that must trip the supervisor yet heal, so
//                the liveness oracle can demand completion through the
//                switches; the watchdog budget is scaled up because the era
//                machinery legitimately runs long under persistent spikes;
//   quorum       the heaviest cells (loss, spikes, partition, churn):
//                Paxos safety is unconditional.
//
// Every run doubles as its own determinism check (run_chaos executes each
// spec twice).  Findings come back with their recorded FaultScript, ready
// for the shrinker.  Execution rides ParallelSweepExecutor in wall-clock
// waves: tasks are independent deterministic simulations aggregated in
// canonical order, so at a fixed cutoff the result is byte-identical at any
// --jobs value; the time budget only decides how much of the (deterministic)
// task list gets run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/chaos.h"

namespace linbound {

struct ChaosSearchOptions {
  /// Variants to sweep; empty means every variant.
  std::vector<ChaosVariant> variants;
  /// Planted bug; forces the matching variant (eager -> stock,
  /// narrow-waits -> hardened) and is stamped into every spec.
  ChaosMutant mutant = ChaosMutant::kNone;
  int n = 3;
  SystemTiming timing{1000, 400, 300};
  Tick x = 0;
  int seeds = 6;  ///< randomized runs per (variant, cell, workload)
  int ops_per_client = 6;
  Tick think_time = 0;
  std::uint64_t base_seed = 0xc4a0'55ee'dULL;
  std::size_t event_budget = 300'000;
  std::int64_t wall_budget_ms = 0;  ///< per run; 0 disables
  /// Whole-search wall-clock budget in seconds; 0 runs the full grid once.
  /// The task list is deterministic; the budget only truncates it.
  double time_budget_s = 0;
  int jobs = 1;
  /// Stop collecting findings past this many (runs are still counted).
  int max_findings = 8;
};

struct ChaosFinding {
  ChaosRunSpec spec;
  ChaosRunResult result;
};

struct ChaosSearchResult {
  int runs = 0;        ///< specs executed (each spec runs twice internally)
  int violations = 0;  ///< verdicts != ok
  int reproducible = 0;
  int wall_trips = 0;  ///< wall-clock aborts (reported, never shrunk)
  bool truncated = false;  ///< the time budget cut the grid short
  std::vector<ChaosFinding> findings;  ///< reproducible, capped

  bool found_violation() const { return violations > 0; }
  std::string summary() const;
};

/// Build the covered grid for the options (exposed for tests: the grid is a
/// pure function of the options).
std::vector<ChaosRunSpec> chaos_search_grid(const ChaosSearchOptions& options);

ChaosSearchResult run_chaos_search(const ChaosSearchOptions& options);

}  // namespace linbound
