#include "chaos/shrink.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace linbound {
namespace {

using Decisions = std::vector<ScriptedDecision>;

Decisions without_chunk(const Decisions& all, std::size_t chunk,
                        std::size_t chunks) {
  const std::size_t lo = all.size() * chunk / chunks;
  const std::size_t hi = all.size() * (chunk + 1) / chunks;
  Decisions out;
  out.reserve(all.size() - (hi - lo));
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (i < lo || i >= hi) out.push_back(all[i]);
  }
  return out;
}

Decisions only_chunk(const Decisions& all, std::size_t chunk,
                     std::size_t chunks) {
  const std::size_t lo = all.size() * chunk / chunks;
  const std::size_t hi = all.size() * (chunk + 1) / chunks;
  return Decisions(all.begin() + static_cast<std::ptrdiff_t>(lo),
                   all.begin() + static_cast<std::ptrdiff_t>(hi));
}

}  // namespace

FaultScript shrink_fault_script(const ChaosRunSpec& spec,
                                const FaultScript& script,
                                ChaosVerdict expected, ShrinkStats* stats) {
  ShrinkStats local;
  local.initial_decisions = script.size();
  const auto reproduces = [&](const Decisions& candidate) {
    ++local.probes;
    return replay_chaos(spec, FaultScript{candidate}).verdict == expected;
  };

  if (!reproduces(script.decisions)) {
    throw std::invalid_argument(
        "shrink_fault_script: the full script does not reproduce the "
        "expected verdict");
  }

  Decisions current = script.decisions;
  // Fast path for spec-borne violations (eager mutants under an adversarial
  // delay schedule need no fault decisions at all).
  if (!current.empty() && reproduces({})) current.clear();

  // Classic ddmin: try single chunks, then their complements, then refine.
  std::size_t chunks = 2;
  while (current.size() >= 2) {
    chunks = std::min(chunks, current.size());
    bool reduced = false;
    for (std::size_t c = 0; c < chunks && !reduced; ++c) {
      Decisions candidate = only_chunk(current, c, chunks);
      if (!candidate.empty() && candidate.size() < current.size() &&
          reproduces(candidate)) {
        current = std::move(candidate);
        chunks = 2;
        reduced = true;
      }
    }
    if (!reduced) {
      for (std::size_t c = 0; c < chunks && !reduced; ++c) {
        Decisions candidate = without_chunk(current, c, chunks);
        if (candidate.size() < current.size() && reproduces(candidate)) {
          current = std::move(candidate);
          chunks = std::max<std::size_t>(2, chunks - 1);
          reduced = true;
        }
      }
    }
    if (!reduced) {
      if (chunks >= current.size()) break;
      chunks = std::min(current.size(), chunks * 2);
    }
  }

  // Final 1-minimality sweep: ddmin guarantees it at full granularity, but
  // the loop above can exit via the chunk bound -- one more pass removing
  // single decisions until none can go is cheap at these sizes.
  bool removed = true;
  while (removed && !current.empty()) {
    removed = false;
    for (std::size_t i = 0; i < current.size(); ++i) {
      Decisions candidate = current;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
      if (reproduces(candidate)) {
        current = std::move(candidate);
        removed = true;
        break;
      }
    }
  }

  local.final_decisions = current.size();
  if (stats) *stats = local;
  return FaultScript{std::move(current)};
}

}  // namespace linbound
