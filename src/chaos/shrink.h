// Delta-debugging minimization of violating fault scripts.
//
// A violation surfaced by the search typically rides on a script with
// dozens of recorded decisions, most of them irrelevant.  shrink_fault_script
// runs Zeller's ddmin over the decision list: repeatedly replay the spec
// with a subset of the decisions (removed decisions revert to "deliver
// normally") and keep any subset that still produces the expected verdict.
// The result is 1-minimal -- removing any single remaining decision makes
// the violation disappear -- which is what makes the final repro bundle
// readable: every line of the script is load-bearing.
//
// Soundness: the predicate is a full deterministic replay (chaos/chaos.h),
// so a shrunk script is by construction a genuine reproduction, not an
// extrapolation.  The spec itself (timing, seeds, workload, stall/churn
// config) is held fixed: only per-send message decisions are minimized.
#pragma once

#include <cstddef>

#include "chaos/chaos.h"
#include "chaos/fault_script.h"

namespace linbound {

struct ShrinkStats {
  std::size_t initial_decisions = 0;
  std::size_t final_decisions = 0;
  int probes = 0;  ///< replays executed
};

/// Minimize `script` while replay_chaos(spec, script).verdict == expected.
/// Requires that the full script reproduces the expected verdict (throws
/// std::invalid_argument otherwise -- a non-reproducible violation must not
/// reach the shrinker).
FaultScript shrink_fault_script(const ChaosRunSpec& spec,
                                const FaultScript& script,
                                ChaosVerdict expected,
                                ShrinkStats* stats = nullptr);

}  // namespace linbound
