#include "checker/brute_checker.h"

#include <algorithm>
#include <numeric>

namespace linbound {
namespace {

/// Does `perm` (indices into history.ops()) respect program order and,
/// optionally, real-time precedence?
bool respects_orders(const History& history, const std::vector<std::size_t>& perm,
                     bool real_time_order) {
  std::vector<std::size_t> position(history.size());
  for (std::size_t pos = 0; pos < perm.size(); ++pos) position[perm[pos]] = pos;

  const auto& ops = history.ops();
  for (std::size_t a = 0; a < ops.size(); ++a) {
    for (std::size_t b = 0; b < ops.size(); ++b) {
      if (a == b) continue;
      const bool program_before =
          ops[a].proc == ops[b].proc && ops[a].response <= ops[b].invoke &&
          ops[a].invoke < ops[b].invoke;
      const bool real_time_before =
          real_time_order && ops[a].response < ops[b].invoke;
      if ((program_before || real_time_before) && position[a] > position[b]) {
        return false;
      }
    }
  }
  return true;
}

bool legal_permutation(const ObjectModel& model, const History& history,
                       const std::vector<std::size_t>& perm) {
  auto state = model.initial_state();
  for (std::size_t i : perm) {
    const HistoryOp& op = history.ops()[i];
    if (!(state->apply(op.op) == op.ret)) return false;
  }
  return true;
}

}  // namespace

bool brute_force_consistent(const ObjectModel& model, const History& history,
                            bool real_time_order) {
  std::vector<std::size_t> perm(history.size());
  std::iota(perm.begin(), perm.end(), 0);
  std::sort(perm.begin(), perm.end());
  do {
    if (!respects_orders(history, perm, real_time_order)) continue;
    if (legal_permutation(model, history, perm)) return true;
  } while (std::next_permutation(perm.begin(), perm.end()));
  return false;
}

}  // namespace linbound
