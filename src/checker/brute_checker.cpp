#include "checker/brute_checker.h"

#include <algorithm>
#include <cstdint>
#include <numeric>

namespace linbound {
namespace {

/// Does `perm` (indices into history.ops()) respect program order and,
/// optionally, real-time precedence?
bool respects_orders(const History& history, const std::vector<std::size_t>& perm,
                     bool real_time_order) {
  std::vector<std::size_t> position(history.size());
  for (std::size_t pos = 0; pos < perm.size(); ++pos) position[perm[pos]] = pos;

  const auto& ops = history.ops();
  for (std::size_t a = 0; a < ops.size(); ++a) {
    for (std::size_t b = 0; b < ops.size(); ++b) {
      if (a == b) continue;
      const bool program_before =
          ops[a].proc == ops[b].proc && ops[a].response <= ops[b].invoke &&
          ops[a].invoke < ops[b].invoke;
      const bool real_time_before =
          real_time_order && ops[a].response < ops[b].invoke;
      if ((program_before || real_time_before) && position[a] > position[b]) {
        return false;
      }
    }
  }
  return true;
}

bool legal_permutation(const ObjectModel& model, const History& history,
                       const std::vector<std::size_t>& perm) {
  auto state = model.initial_state();
  for (std::size_t i : perm) {
    const HistoryOp& op = history.ops()[i];
    if (!(state->apply(op.op) == op.ret)) return false;
  }
  return true;
}

/// Order check over the extended item list: items [0, n) are the completed
/// ops, items [n, n+chosen.size()) are the included pending invocations.
/// A pending invocation must come after every completed op that real-time-
/// or program-order-precedes it; nothing is ever required to come after a
/// pending invocation (it has no response).
bool extended_respects_orders(const History& history,
                              const std::vector<PendingInvocation>& pending,
                              const std::vector<std::size_t>& chosen,
                              const std::vector<std::size_t>& perm) {
  const auto& ops = history.ops();
  const std::size_t n = ops.size();
  std::vector<std::size_t> position(perm.size());
  for (std::size_t pos = 0; pos < perm.size(); ++pos) position[perm[pos]] = pos;

  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      const bool program_before =
          ops[a].proc == ops[b].proc && ops[a].response <= ops[b].invoke &&
          ops[a].invoke < ops[b].invoke;
      const bool real_time_before = ops[a].response < ops[b].invoke;
      if ((program_before || real_time_before) && position[a] > position[b]) {
        return false;
      }
    }
    for (std::size_t j = 0; j < chosen.size(); ++j) {
      const PendingInvocation& q = pending[chosen[j]];
      const bool before = ops[a].response < q.invoke ||
                          (ops[a].proc == q.proc && ops[a].invoke < q.invoke);
      if (before && position[a] > position[n + j]) return false;
    }
  }
  return true;
}

bool extended_legal(const ObjectModel& model, const History& history,
                    const std::vector<PendingInvocation>& pending,
                    const std::vector<std::size_t>& chosen,
                    const std::vector<std::size_t>& perm) {
  auto state = model.initial_state();
  const std::size_t n = history.size();
  for (std::size_t item : perm) {
    if (item < n) {
      const HistoryOp& op = history.ops()[item];
      if (!(state->apply(op.op) == op.ret)) return false;
    } else {
      // Pending: the crashed invoker never saw the return value, so any
      // result is consistent with the (incomplete) observation.
      state->apply(pending[chosen[item - n]].op);
    }
  }
  return true;
}

}  // namespace

bool brute_force_consistent(const ObjectModel& model, const History& history,
                            bool real_time_order) {
  std::vector<std::size_t> perm(history.size());
  std::iota(perm.begin(), perm.end(), 0);
  std::sort(perm.begin(), perm.end());
  do {
    if (!respects_orders(history, perm, real_time_order)) continue;
    if (legal_permutation(model, history, perm)) return true;
  } while (std::next_permutation(perm.begin(), perm.end()));
  return false;
}

bool brute_force_linearizable_with_pending(
    const ObjectModel& model, const History& history,
    const std::vector<PendingInvocation>& pending) {
  const std::size_t m = pending.size();
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << m); ++mask) {
    std::vector<std::size_t> chosen;
    for (std::size_t j = 0; j < m; ++j) {
      if (mask & (std::uint64_t{1} << j)) chosen.push_back(j);
    }
    std::vector<std::size_t> perm(history.size() + chosen.size());
    std::iota(perm.begin(), perm.end(), 0);
    do {
      if (!extended_respects_orders(history, pending, chosen, perm)) continue;
      if (extended_legal(model, history, pending, chosen, perm)) return true;
    } while (std::next_permutation(perm.begin(), perm.end()));
  }
  return false;
}

}  // namespace linbound
