// Brute-force consistency checking by exhaustive permutation enumeration.
//
// Exponential; exists solely to cross-validate the search-based checker on
// small randomized histories (tests/test_checker_cross.cpp).
#pragma once

#include "checker/history.h"
#include "spec/object_model.h"

namespace linbound {

/// Enumerate every permutation of the history that respects per-process
/// program order (and, when `real_time_order` is set, real-time precedence)
/// and test legality.  Returns true iff some permutation is legal.
bool brute_force_consistent(const ObjectModel& model, const History& history,
                            bool real_time_order);

inline bool brute_force_linearizable(const ObjectModel& model,
                                     const History& history) {
  return brute_force_consistent(model, history, /*real_time_order=*/true);
}

inline bool brute_force_sequentially_consistent(const ObjectModel& model,
                                                const History& history) {
  return brute_force_consistent(model, history, /*real_time_order=*/false);
}

/// Brute-force counterpart of check_linearizable_with_pending: every subset
/// of the pending invocations is tried, each included one linearized at any
/// point after the operations that real-time-precede its invocation, with an
/// unconstrained return value.  Exponential in ops *and* pending; for
/// cross-validation on tiny crash histories only.
bool brute_force_linearizable_with_pending(
    const ObjectModel& model, const History& history,
    const std::vector<PendingInvocation>& pending);

}  // namespace linbound
