#include "checker/history.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "spec/composite.h"

namespace linbound {

History::History(std::vector<HistoryOp> ops) : ops_(std::move(ops)) { index(); }

History History::from_trace(const Trace& trace) {
  std::vector<HistoryOp> ops;
  ops.reserve(trace.ops.size());
  for (const OperationRecord& rec : trace.ops) {
    if (!rec.completed()) {
      throw std::invalid_argument("History::from_trace: operation token " +
                                  std::to_string(rec.token) +
                                  " has no response");
    }
    ops.push_back(HistoryOp{rec.proc, rec.op, rec.ret, rec.invoke_time,
                            rec.response_time});
  }
  return History(std::move(ops));
}

void History::index() {
  ProcessId max_pid = -1;
  for (const HistoryOp& op : ops_) {
    if (op.proc < 0) throw std::invalid_argument("history op without process");
    if (op.response < op.invoke) {
      throw std::invalid_argument("history op responds before invocation");
    }
    max_pid = std::max(max_pid, op.proc);
  }
  per_proc_.assign(static_cast<std::size_t>(max_pid + 1), {});
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    per_proc_[static_cast<std::size_t>(ops_[i].proc)].push_back(i);
  }
  for (auto& idxs : per_proc_) {
    std::sort(idxs.begin(), idxs.end(), [this](std::size_t a, std::size_t b) {
      return ops_[a].invoke < ops_[b].invoke;
    });
    // Validate the one-pending-op-per-process model constraint.
    for (std::size_t k = 1; k < idxs.size(); ++k) {
      if (ops_[idxs[k]].invoke < ops_[idxs[k - 1]].response) {
        throw std::invalid_argument(
            "history has overlapping operations within one process");
      }
    }
  }
}

const std::vector<std::size_t>& History::by_process(ProcessId pid) const {
  static const std::vector<std::size_t> kEmpty;
  if (pid < 0 || static_cast<std::size_t>(pid) >= per_proc_.size()) return kEmpty;
  return per_proc_[static_cast<std::size_t>(pid)];
}

std::pair<History, std::vector<PendingInvocation>> history_with_pending(
    const Trace& trace) {
  std::vector<HistoryOp> completed;
  std::vector<PendingInvocation> pending;
  for (const OperationRecord& rec : trace.ops) {
    if (rec.invoke_time == kNoTime) continue;  // never dispatched
    if (rec.completed()) {
      completed.push_back(HistoryOp{rec.proc, rec.op, rec.ret, rec.invoke_time,
                                    rec.response_time});
    } else {
      pending.push_back(PendingInvocation{rec.proc, rec.op, rec.invoke_time});
    }
  }
  return {History(std::move(completed)), std::move(pending)};
}

History restrict_history(const History& history, int k) {
  std::vector<HistoryOp> ops;
  for (const HistoryOp& op : history.ops()) {
    if (CompositeModel::slot_of(op.op) != k) continue;
    HistoryOp lowered = op;
    lowered.op = CompositeModel::lower(lowered.op);
    ops.push_back(std::move(lowered));
  }
  return History(std::move(ops));
}

std::vector<HistorySegment> segment_history(
    const History& history, const std::vector<PendingInvocation>& pending) {
  const std::vector<HistoryOp>& ops = history.ops();
  if (ops.empty()) return {};
  const std::size_t procs = static_cast<std::size_t>(history.process_count());

  std::vector<std::size_t> order(ops.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&ops](std::size_t a, std::size_t b) {
                     return ops[a].invoke < ops[b].invoke;
                   });

  Tick first_pending = kNoTime;
  for (const PendingInvocation& q : pending) {
    if (first_pending == kNoTime || q.invoke < first_pending) {
      first_pending = q.invoke;
    }
  }

  // Segment id per op: a new segment starts at invoke-ordered position k+1
  // when everything before it has responded strictly earlier and no pending
  // invocation has been issued yet.
  std::vector<std::size_t> seg_of(ops.size(), 0);
  std::size_t seg = 0;
  Tick max_response = ops[order[0]].response;
  for (std::size_t k = 1; k < order.size(); ++k) {
    const Tick next_invoke = ops[order[k]].invoke;
    if (max_response < next_invoke &&
        (first_pending == kNoTime || first_pending >= next_invoke)) {
      ++seg;
    }
    seg_of[order[k]] = seg;
    max_response = std::max(max_response, ops[order[k]].response);
  }

  std::vector<HistorySegment> segments(seg + 1);
  for (HistorySegment& s : segments) {
    s.begin.assign(procs, 0);
    s.end.assign(procs, 0);
    s.min_response = kNoTime;
  }
  // Per process the segment id is non-decreasing along by_process order
  // (invoke-sorted), so each segment owns one contiguous range.
  for (std::size_t p = 0; p < procs; ++p) {
    const std::vector<std::size_t>& idxs =
        history.by_process(static_cast<ProcessId>(p));
    std::size_t pos = 0;
    for (std::size_t si = 0; si < segments.size(); ++si) {
      segments[si].begin[p] = pos;
      while (pos < idxs.size() && seg_of[idxs[pos]] == si) ++pos;
      segments[si].end[p] = pos;
    }
  }
  for (std::size_t i = 0; i < ops.size(); ++i) {
    HistorySegment& s = segments[seg_of[i]];
    ++s.op_count;
    if (s.min_response == kNoTime || ops[i].response < s.min_response) {
      s.min_response = ops[i].response;
    }
  }
  return segments;
}

std::string History::to_string(const ObjectModel& model) const {
  std::ostringstream os;
  for (const HistoryOp& op : ops_) {
    os << "p" << op.proc << " [" << op.invoke << ", " << op.response << "] "
       << model.describe(OpInstance{op.op, op.ret}) << "\n";
  }
  return os.str();
}

}  // namespace linbound
