// Operation histories: the input of the consistency checkers.
//
// A history is the application-layer projection of a complete run -- one
// record per operation with its process, invocation/response real times and
// observed return value.  Within a process operations never overlap (the
// model allows one pending operation per process).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"
#include "common/value.h"
#include "sim/trace.h"
#include "spec/object_model.h"
#include "spec/operation.h"

namespace linbound {

struct HistoryOp {
  ProcessId proc = kNoProcess;
  Operation op;
  Value ret;
  Tick invoke = 0;
  Tick response = 0;
};

class History {
 public:
  History() = default;
  explicit History(std::vector<HistoryOp> ops);

  /// Build from a trace.  Throws std::invalid_argument if any operation is
  /// incomplete -- checkers require complete histories; complete your run
  /// (or drop pending invocations) first.
  static History from_trace(const Trace& trace);

  const std::vector<HistoryOp>& ops() const { return ops_; }
  std::size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }

  /// Operations of one process, ordered by invocation time.  Process-local
  /// sequentiality (no overlap) is validated on construction.
  const std::vector<std::size_t>& by_process(ProcessId pid) const;

  int process_count() const { return static_cast<int>(per_proc_.size()); }

  /// Pretty-print (for diagnostics and test failures).
  std::string to_string(const ObjectModel& model) const;

 private:
  void index();

  std::vector<HistoryOp> ops_;
  std::vector<std::vector<std::size_t>> per_proc_;
};

/// The restriction of a composite-store history (spec/composite.h) to slot
/// `k`, with operations lowered to the inner model's codes -- the paper's
/// "restriction of pi to operations on the object O".
History restrict_history(const History& history, int k);

/// An invocation without a response -- a crashed process's last operation.
/// It may or may not have taken effect; the pending-aware checker tries
/// both (with an unconstrained return when included).
struct PendingInvocation {
  ProcessId proc = kNoProcess;
  Operation op;
  Tick invoke = 0;
};

/// Split a trace into its completed history plus the pending invocations
/// (the tolerant counterpart of History::from_trace; never-dispatched
/// invocations, with no invoke time, are dropped entirely).
std::pair<History, std::vector<PendingInvocation>> history_with_pending(
    const Trace& trace);

/// One quiescent-cut segment of a history: a real-time-contiguous slice
/// such that every operation in earlier segments responds strictly before
/// every operation of this segment is invoked.  Represented as per-process
/// half-open ranges into history.by_process(p) -- segments are contiguous
/// per process because a process's operations are invoke-ordered and
/// non-overlapping.
struct HistorySegment {
  std::vector<std::size_t> begin;  ///< per-process first index (inclusive)
  std::vector<std::size_t> end;    ///< per-process last index (exclusive)
  std::size_t op_count = 0;        ///< total operations in the segment
  Tick min_response = 0;           ///< earliest response in the segment
};

/// Scan a history for quiescent cuts -- real-time points where no
/// operation is in flight -- and return the resulting segments in real-time
/// order (empty for an empty history; a single segment when no cut exists).
///
/// A cut is taken between invoke-ordered positions k and k+1 only when the
/// maximum response among ops 0..k is STRICTLY before the invocation of op
/// k+1 (response == invoke counts as concurrent, matching the checker's
/// strict real-time order), and only when it precedes every pending
/// invocation ("the pending set is empty at the cut"): a pending operation
/// never responds, so any cut after its invoke would slice an in-flight
/// operation.
///
/// Soundness of checking segments independently (DESIGN.md section 10):
/// every completed operation of segment i strictly real-time-precedes every
/// completed operation of segment i+1, so any linearization order is forced
/// to linearize all of segment i first -- a linearization of the history
/// exists iff per-segment linearizations exist that agree on the object
/// state threaded across each cut.
std::vector<HistorySegment> segment_history(
    const History& history,
    const std::vector<PendingInvocation>& pending = {});

}  // namespace linbound
