// Operation histories: the input of the consistency checkers.
//
// A history is the application-layer projection of a complete run -- one
// record per operation with its process, invocation/response real times and
// observed return value.  Within a process operations never overlap (the
// model allows one pending operation per process).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"
#include "common/value.h"
#include "sim/trace.h"
#include "spec/object_model.h"
#include "spec/operation.h"

namespace linbound {

struct HistoryOp {
  ProcessId proc = kNoProcess;
  Operation op;
  Value ret;
  Tick invoke = 0;
  Tick response = 0;
};

class History {
 public:
  History() = default;
  explicit History(std::vector<HistoryOp> ops);

  /// Build from a trace.  Throws std::invalid_argument if any operation is
  /// incomplete -- checkers require complete histories; complete your run
  /// (or drop pending invocations) first.
  static History from_trace(const Trace& trace);

  const std::vector<HistoryOp>& ops() const { return ops_; }
  std::size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }

  /// Operations of one process, ordered by invocation time.  Process-local
  /// sequentiality (no overlap) is validated on construction.
  const std::vector<std::size_t>& by_process(ProcessId pid) const;

  int process_count() const { return static_cast<int>(per_proc_.size()); }

  /// Pretty-print (for diagnostics and test failures).
  std::string to_string(const ObjectModel& model) const;

 private:
  void index();

  std::vector<HistoryOp> ops_;
  std::vector<std::vector<std::size_t>> per_proc_;
};

/// The restriction of a composite-store history (spec/composite.h) to slot
/// `k`, with operations lowered to the inner model's codes -- the paper's
/// "restriction of pi to operations on the object O".
History restrict_history(const History& history, int k);

/// An invocation without a response -- a crashed process's last operation.
/// It may or may not have taken effect; the pending-aware checker tries
/// both (with an unconstrained return when included).
struct PendingInvocation {
  ProcessId proc = kNoProcess;
  Operation op;
  Tick invoke = 0;
};

/// Split a trace into its completed history plus the pending invocations
/// (the tolerant counterpart of History::from_trace; never-dispatched
/// invocations, with no invoke time, are dropped entirely).
std::pair<History, std::vector<PendingInvocation>> history_with_pending(
    const Trace& trace);

}  // namespace linbound
