#include "checker/lin_checker.h"

#include <optional>
#include <stdexcept>
#include <sstream>
#include <unordered_map>

#include "spec/snapshot.h"

namespace linbound {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_u64(std::uint64_t& h, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    h ^= x & 0xff;
    h *= kFnvPrime;
    x >>= 8;
  }
}

int active_processes(const History& history) {
  int active = 0;
  for (int p = 0; p < history.process_count(); ++p) {
    if (!history.by_process(p).empty()) ++active;
  }
  return active;
}

class Search {
 public:
  Search(const ObjectModel& model, const History& history, bool real_time_order,
         const CheckLimits& limits,
         const std::vector<PendingInvocation>* pending = nullptr)
      : model_(model),
        history_(history),
        real_time_order_(real_time_order),
        limits_(limits) {
    const int n = history.process_count();
    frontier_.assign(static_cast<std::size_t>(n), 0);
    if (pending != nullptr) pending_ = *pending;
    pending_taken_.assign(pending_.size(), false);
  }

  CheckResult run() {
    CheckResult result;
    if (history_.size() == 0 && pending_.empty()) {
      // Nothing to order: the empty witness linearizes the empty history.
      result.ok = true;
      result.early_exit = true;
      return result;
    }
    if (pending_.empty() && active_processes(history_) <= 1) {
      // One process means program order is the only permutation consistent
      // with both real-time order and per-process order; replay it.
      return detail::replay_single_process(model_, history_);
    }
    Snapshot state = Snapshot::initial(model_);
    std::vector<std::size_t> chosen;
    chosen.reserve(history_.size());
    result.ok = dfs(state, chosen, result);
    if (result.ok) result.witness = std::move(chosen);
    return result;
  }

  /// Frontier op index of process p, or nullopt if exhausted.
  std::optional<std::size_t> front(int p) const {
    const auto& idxs = history_.by_process(p);
    const std::size_t k = frontier_[static_cast<std::size_t>(p)];
    if (k >= idxs.size()) return std::nullopt;
    return idxs[k];
  }

  /// Can an operation invoked at `inv` be linearized next?  Under
  /// real-time order, no *other* remaining completed operation may have
  /// responded strictly before `inv`.  It suffices to test frontier
  /// operations: within a process the frontier op has the earliest
  /// response among that process's remaining ops.  (Pending operations
  /// never block anyone: they have no response.)
  bool eligible_at(Tick inv, std::optional<std::size_t> self) const {
    if (!real_time_order_) return true;
    for (int p = 0; p < history_.process_count(); ++p) {
      auto f = front(p);
      if (!f || (self && *f == *self)) continue;
      if (history_.ops()[*f].response < inv) return false;
    }
    return true;
  }

  bool eligible(std::size_t cand) const {
    return eligible_at(history_.ops()[cand].invoke, cand);
  }

  std::uint64_t memo_hash(const Snapshot& state) const {
    std::uint64_t h = kFnvOffset;
    for (std::size_t f : frontier_) fnv_u64(h, f);
    std::uint64_t bits = 0;
    for (std::size_t q = 0; q < pending_taken_.size(); ++q) {
      bits = (bits << 1) | (pending_taken_[q] ? 1u : 0u);
      if ((q & 63u) == 63u) {
        fnv_u64(h, bits);
        bits = 0;
      }
    }
    if (!pending_taken_.empty()) fnv_u64(h, bits);
    fnv_u64(h, state.fingerprint());
    return h;
  }

  /// Exact identity of a dead search node; the Snapshot retains the state
  /// by refcount so equality can be re-confirmed on every bucket hit.
  struct DeadEntry {
    std::vector<std::size_t> frontier;
    std::vector<bool> pending_taken;
    Snapshot state;
  };

  bool known_dead(std::uint64_t h, const Snapshot& state) const {
    auto it = dead_.find(h);
    if (it == dead_.end()) return false;
    for (const DeadEntry& e : it->second) {
      if (e.frontier == frontier_ && e.pending_taken == pending_taken_ &&
          e.state.equals(state)) {
        return true;
      }
    }
    return false;
  }

  bool dfs(Snapshot& state, std::vector<std::size_t>& chosen,
           CheckResult& result) {
    if (chosen.size() == history_.size()) return true;
    const std::uint64_t h = memo_hash(state);
    if (known_dead(h, state)) {
      ++result.memo_hits;
      return false;
    }
    if (++result.states_explored > limits_.max_states) {
      detail::throw_state_budget_exceeded(limits_.max_states,
                                          result.states_explored,
                                          /*segment_index=*/0,
                                          /*segment_count=*/1,
                                          history_.size());
    }

    // Pending operations: try linearizing each untaken one here (their
    // returns are unconstrained, so applying always succeeds).
    for (std::size_t q = 0; q < pending_.size(); ++q) {
      if (pending_taken_[q]) continue;
      if (!eligible_at(pending_[q].invoke, std::nullopt)) continue;
      Snapshot next = state;
      next.apply(pending_[q].op);
      pending_taken_[q] = true;
      if (dfs(next, chosen, result)) return true;
      pending_taken_[q] = false;
    }

    bool any_candidate = false;
    for (int p = 0; p < history_.process_count(); ++p) {
      auto f = front(p);
      if (!f || !eligible(*f)) continue;
      any_candidate = true;
      const HistoryOp& op = history_.ops()[*f];
      // Pure accessors cannot change the state, so the branch can share it
      // outright instead of triggering the copy-on-write clone.
      Snapshot next = state;
      const bool accessor = model_.classify(op.op) == OpClass::kPureAccessor;
      const Value determined =
          accessor ? next.apply_accessor(op.op) : next.apply(op.op);
      if (!(determined == op.ret)) {
        if (result.explanation.empty()) {
          std::ostringstream os;
          os << "p" << op.proc << " " << model_.describe(op.op) << " returned "
             << op.ret.to_string() << " but state " << state.to_string()
             << " determines " << determined.to_string();
          result.explanation = os.str();
        }
        continue;
      }
      ++frontier_[static_cast<std::size_t>(p)];
      chosen.push_back(*f);
      if (dfs(next, chosen, result)) return true;
      chosen.pop_back();
      --frontier_[static_cast<std::size_t>(p)];
    }

    if (!any_candidate && result.explanation.empty()) {
      result.explanation =
          "no operation is eligible to linearize next (real-time order "
          "cycle)";
    }
    dead_[h].push_back(DeadEntry{frontier_, pending_taken_, state});
    if (++resident_ > result.max_resident_states) {
      result.max_resident_states = resident_;
    }
    return false;
  }

  const ObjectModel& model_;
  const History& history_;
  const bool real_time_order_;
  const CheckLimits limits_;
  std::vector<std::size_t> frontier_;
  std::vector<PendingInvocation> pending_;
  std::vector<bool> pending_taken_;
  std::size_t resident_ = 0;  ///< dead-memo entries held (never shrinks)
  std::unordered_map<std::uint64_t, std::vector<DeadEntry>> dead_;
};

}  // namespace

CheckResult check_linearizable(const ObjectModel& model, const History& history,
                               const CheckLimits& limits) {
  return Search(model, history, /*real_time_order=*/true, limits).run();
}

CheckResult check_sequentially_consistent(const ObjectModel& model,
                                          const History& history,
                                          const CheckLimits& limits) {
  return Search(model, history, /*real_time_order=*/false, limits).run();
}

CheckResult check_linearizable_with_pending(
    const ObjectModel& model, const History& history,
    const std::vector<PendingInvocation>& pending, const CheckLimits& limits) {
  return Search(model, history, /*real_time_order=*/true, limits, &pending).run();
}

namespace detail {

void throw_state_budget_exceeded(std::size_t max_states,
                                 std::size_t states_explored,
                                 std::size_t segment_index,
                                 std::size_t segment_count,
                                 std::size_t history_ops) {
  std::ostringstream os;
  os << "consistency check exceeded the state budget (max_states="
     << max_states << "): explored " << states_explored
     << " states in segment " << segment_index << " of " << segment_count
     << " over a history of " << history_ops
     << " operations; the history has too much concurrency for exact "
        "checking";
  throw std::runtime_error(os.str());
}

CheckResult replay_single_process(const ObjectModel& model,
                                  const History& history) {
  CheckResult result;
  result.early_exit = true;
  auto state = model.initial_state();
  for (int p = 0; p < history.process_count(); ++p) {
    for (std::size_t idx : history.by_process(p)) {
      const HistoryOp& op = history.ops()[idx];
      ++result.states_explored;
      const std::string before = state->to_string();
      const Value determined = state->apply(op.op);
      if (!(determined == op.ret)) {
        std::ostringstream os;
        os << "p" << op.proc << " " << model.describe(op.op) << " returned "
           << op.ret.to_string() << " but state " << before << " determines "
           << determined.to_string();
        result.explanation = os.str();
        return result;
      }
      result.witness.push_back(idx);
    }
  }
  result.ok = true;
  return result;
}

}  // namespace detail

}  // namespace linbound
