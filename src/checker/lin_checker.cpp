#include "checker/lin_checker.h"

#include <optional>
#include <stdexcept>
#include <sstream>
#include <unordered_set>

namespace linbound {
namespace {

class Search {
 public:
  Search(const ObjectModel& model, const History& history, bool real_time_order,
         const CheckLimits& limits,
         const std::vector<PendingInvocation>* pending = nullptr)
      : model_(model),
        history_(history),
        real_time_order_(real_time_order),
        limits_(limits) {
    const int n = history.process_count();
    frontier_.assign(static_cast<std::size_t>(n), 0);
    if (pending != nullptr) pending_ = *pending;
    pending_taken_.assign(pending_.size(), false);
  }

  CheckResult run() {
    CheckResult result;
    auto state = model_.initial_state();
    std::vector<std::size_t> chosen;
    chosen.reserve(history_.size());
    result.ok = dfs(*state, chosen, result);
    if (result.ok) result.witness = std::move(chosen);
    return result;
  }

 private:
  /// Frontier op index of process p, or nullopt if exhausted.
  std::optional<std::size_t> front(int p) const {
    const auto& idxs = history_.by_process(p);
    const std::size_t k = frontier_[static_cast<std::size_t>(p)];
    if (k >= idxs.size()) return std::nullopt;
    return idxs[k];
  }

  /// Can an operation invoked at `inv` be linearized next?  Under
  /// real-time order, no *other* remaining completed operation may have
  /// responded strictly before `inv`.  It suffices to test frontier
  /// operations: within a process the frontier op has the earliest
  /// response among that process's remaining ops.  (Pending operations
  /// never block anyone: they have no response.)
  bool eligible_at(Tick inv, std::optional<std::size_t> self) const {
    if (!real_time_order_) return true;
    for (int p = 0; p < history_.process_count(); ++p) {
      auto f = front(p);
      if (!f || (self && *f == *self)) continue;
      if (history_.ops()[*f].response < inv) return false;
    }
    return true;
  }

  bool eligible(std::size_t cand) const {
    return eligible_at(history_.ops()[cand].invoke, cand);
  }

  std::string memo_key(const ObjectState& state) const {
    std::string key;
    for (std::size_t f : frontier_) {
      key += std::to_string(f);
      key += ',';
    }
    for (bool taken : pending_taken_) key += taken ? 'x' : '.';
    key += '|';
    key += state.to_string();
    return key;
  }

  bool dfs(ObjectState& state, std::vector<std::size_t>& chosen,
           CheckResult& result) {
    if (chosen.size() == history_.size()) return true;
    const std::string key = memo_key(state);
    if (dead_.count(key)) return false;
    if (++result.states_explored > limits_.max_states) {
      throw std::runtime_error(
          "consistency check exceeded the state budget (" +
          std::to_string(limits_.max_states) +
          " states); the history has too much concurrency for exact "
          "checking");
    }

    // Pending operations: try linearizing each untaken one here (their
    // returns are unconstrained, so applying always succeeds).
    for (std::size_t q = 0; q < pending_.size(); ++q) {
      if (pending_taken_[q]) continue;
      if (!eligible_at(pending_[q].invoke, std::nullopt)) continue;
      auto next = state.clone();
      next->apply(pending_[q].op);
      pending_taken_[q] = true;
      if (dfs(*next, chosen, result)) return true;
      pending_taken_[q] = false;
    }

    bool any_candidate = false;
    for (int p = 0; p < history_.process_count(); ++p) {
      auto f = front(p);
      if (!f || !eligible(*f)) continue;
      any_candidate = true;
      const HistoryOp& op = history_.ops()[*f];
      auto next = state.clone();
      const Value determined = next->apply(op.op);
      if (!(determined == op.ret)) {
        if (result.explanation.empty()) {
          std::ostringstream os;
          os << "p" << op.proc << " " << model_.describe(op.op) << " returned "
             << op.ret.to_string() << " but state " << state.to_string()
             << " determines " << determined.to_string();
          result.explanation = os.str();
        }
        continue;
      }
      ++frontier_[static_cast<std::size_t>(p)];
      chosen.push_back(*f);
      if (dfs(*next, chosen, result)) return true;
      chosen.pop_back();
      --frontier_[static_cast<std::size_t>(p)];
    }

    if (!any_candidate && result.explanation.empty()) {
      result.explanation =
          "no operation is eligible to linearize next (real-time order "
          "cycle)";
    }
    dead_.insert(key);
    return false;
  }

  const ObjectModel& model_;
  const History& history_;
  const bool real_time_order_;
  const CheckLimits limits_;
  std::vector<std::size_t> frontier_;
  std::vector<PendingInvocation> pending_;
  std::vector<bool> pending_taken_;
  std::unordered_set<std::string> dead_;
};

}  // namespace

CheckResult check_linearizable(const ObjectModel& model, const History& history,
                               const CheckLimits& limits) {
  return Search(model, history, /*real_time_order=*/true, limits).run();
}

CheckResult check_sequentially_consistent(const ObjectModel& model,
                                          const History& history,
                                          const CheckLimits& limits) {
  return Search(model, history, /*real_time_order=*/false, limits).run();
}

CheckResult check_linearizable_with_pending(
    const ObjectModel& model, const History& history,
    const std::vector<PendingInvocation>& pending, const CheckLimits& limits) {
  return Search(model, history, /*real_time_order=*/true, limits, &pending).run();
}

}  // namespace linbound
