// Linearizability and sequential-consistency checking (Wing & Gong style
// search with state memoization).
//
// Linearizability (Chapter III.B.4): there is a permutation pi of all
// operations in the complete run such that (a) pi is legal under the
// sequential specification, and (b) if op1's response precedes op2's
// invocation in real time, op1 precedes op2 in pi.
//
// Sequential consistency drops (b) down to per-process program order only --
// the consistency condition of Lipton & Sandberg / Attiya & Welch that the
// paper contrasts against.
//
// Search: walk the history with a per-process frontier; at each step any
// frontier operation that is not real-time-preceded by another remaining
// operation may be linearized next, provided its recorded return equals the
// return determined by the current object state.  Dead (frontier, state)
// pairs are memoized in hash buckets keyed by (frontier, pending set, state
// fingerprint), with every bucket hit confirmed by exact frontier equality
// and ObjectState::equals -- hashing is a shortcut, never the verdict, so
// results stay sound in both directions.  Object states are copy-on-write
// snapshots (spec/snapshot.h): branching is a refcount bump, pure accessors
// apply without cloning at all, and memoized dead states are retained by
// handle instead of by string.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "checker/history.h"
#include "spec/object_model.h"

namespace linbound {

struct CheckResult {
  bool ok = false;
  /// On success: indices into history.ops() in linearization order.
  std::vector<std::size_t> witness;
  /// On failure: a human-readable account of the first dead end.
  std::string explanation;
  std::size_t states_explored = 0;
  /// Search nodes answered by the dead-state memo table instead of
  /// re-exploration.
  std::size_t memo_hits = 0;
  /// True when the trivial-history fast path (empty or single-process
  /// history: no interleaving to search) decided the verdict.
  bool early_exit = false;
  /// Quiescent-cut segments the search was split into (1 when segmentation
  /// is off, trivially decided, or the history has no cut).
  std::size_t segments = 1;
  /// Subtree tasks dispatched to the worker pool (0 for a fully serial
  /// search).
  std::size_t parallel_tasks = 0;
  /// states_explored attributed per segment (parallel subtree work counts
  /// toward the segment it searches).  Empty on the non-segmented paths.
  std::vector<std::size_t> per_segment_states;
  /// Peak count of search states the checker held resident at once.  For
  /// the offline checkers this is the dead-memo population, which only
  /// grows over a call -- the whole point of the streaming checker
  /// (checker/streaming_checker.h), whose resident set is the open window
  /// plus one segment's scratch and is measured with the same field, so the
  /// O(window)-vs-O(history) claim is a number, not an assertion
  /// (BENCH_perf.json streaming_checker_max_resident_states).  Witness
  /// chains are excluded on both paths: a witness is a permutation of the
  /// whole history and is output, not search state.
  std::size_t max_resident_states = 0;

  /// Fraction of node visits the memo table absorbed.
  double memo_hit_rate() const {
    const std::size_t visits = states_explored + memo_hits;
    return visits ? static_cast<double>(memo_hits) / visits : 0.0;
  }

  explicit operator bool() const { return ok; }
};

struct CheckLimits {
  /// Abort (std::runtime_error) after exploring this many distinct
  /// (frontier, state) pairs.  The search is exponential in the number of
  /// simultaneously pending operations; the budget turns a pathological
  /// history into a loud error instead of an OOM.
  ///
  /// Semantics (normative for every checker entry point): the budget is
  /// granted PER CHECKER CALL.  One check_linearizable* invocation gets one
  /// fresh budget, shared across all of that call's quiescent-cut segments
  /// and all of its worker threads (a single atomic counter), and it is
  /// never replenished mid-call.  Harness sweeps check many histories, so
  /// each history gets its own budget -- intentional: the budget bounds the
  /// blast radius of a single pathological history, not the sweep.  The
  /// exceeded-budget error message reports states explored, the segment
  /// being searched, and the history size (see
  /// detail::throw_state_budget_exceeded, the one throw site).
  std::size_t max_states = 20'000'000;
};

/// Tuning knobs for the segmented / parallel checker entry points.  Every
/// combination returns byte-identical verdict, witness and explanation --
/// the knobs trade wall-clock and memory only (regression-tested in
/// tests/test_segmented_checker.cpp).
struct CheckOptions {
  CheckLimits limits;
  /// Split the history at quiescent cuts (real-time points where no
  /// operation is in flight and no pending invocation has been issued) and
  /// check the segments in sequence, threading the object state across the
  /// cut.  Sound and complete: every linearization of such a history is a
  /// concatenation of per-segment linearizations (DESIGN.md section 10).
  bool segment = true;
  /// Worker threads for intra-segment subtree search; <= 1 searches
  /// serially.  Resolve user input with resolve_jobs (common/parallel.h).
  int jobs = 1;
  /// Split a segment's search across workers only when the fan-out at its
  /// root (eligible first moves) reaches this many candidates.
  std::size_t min_parallel_fanout = 3;
};

/// Is the history linearizable w.r.t. the model?
CheckResult check_linearizable(const ObjectModel& model, const History& history,
                               const CheckLimits& limits = {});

/// Is the history sequentially consistent w.r.t. the model?
CheckResult check_sequentially_consistent(const ObjectModel& model,
                                          const History& history,
                                          const CheckLimits& limits = {});

/// Linearizability of a history with pending invocations (crashed
/// processes): each pending operation may be linearized at any point after
/// everything that real-time-precedes its invocation -- with an
/// unconstrained return value -- or omitted entirely (Herlihy-Wing's
/// treatment of incomplete histories).
CheckResult check_linearizable_with_pending(
    const ObjectModel& model, const History& history,
    const std::vector<PendingInvocation>& pending, const CheckLimits& limits = {});

/// Segmented / parallel linearizability check (checker/segmented_checker.cpp):
/// quiescent-cut segmentation plus optional fan-out of the top of the WGL
/// decision tree across a worker pool.  Byte-identical verdict, witness and
/// explanation to the serial overloads above at any options value.
CheckResult check_linearizable(const ObjectModel& model, const History& history,
                               const CheckOptions& options);

/// Segmented / parallel counterpart of check_linearizable_with_pending.
/// Cuts are only taken at points preceding every pending invocation, so a
/// pending operation stays available to every segment that may linearize it.
CheckResult check_linearizable_with_pending(
    const ObjectModel& model, const History& history,
    const std::vector<PendingInvocation>& pending, const CheckOptions& options);

namespace detail {

/// The single throw site enforcing CheckLimits::max_states (all checker
/// paths funnel here so the message stays uniform): reports states
/// explored, the segment under search, and the history size.
[[noreturn]] void throw_state_budget_exceeded(std::size_t max_states,
                                              std::size_t states_explored,
                                              std::size_t segment_index,
                                              std::size_t segment_count,
                                              std::size_t history_ops);

/// Replay fast path shared by the serial and segmented checkers: a
/// single-process history admits exactly one real-time-respecting
/// permutation (program order), so replay decides the verdict.
CheckResult replay_single_process(const ObjectModel& model,
                                  const History& history);

}  // namespace detail

}  // namespace linbound
