// Linearizability and sequential-consistency checking (Wing & Gong style
// search with state memoization).
//
// Linearizability (Chapter III.B.4): there is a permutation pi of all
// operations in the complete run such that (a) pi is legal under the
// sequential specification, and (b) if op1's response precedes op2's
// invocation in real time, op1 precedes op2 in pi.
//
// Sequential consistency drops (b) down to per-process program order only --
// the consistency condition of Lipton & Sandberg / Attiya & Welch that the
// paper contrasts against.
//
// Search: walk the history with a per-process frontier; at each step any
// frontier operation that is not real-time-preceded by another remaining
// operation may be linearized next, provided its recorded return equals the
// return determined by the current object state.  Dead (frontier, state)
// pairs are memoized in hash buckets keyed by (frontier, pending set, state
// fingerprint), with every bucket hit confirmed by exact frontier equality
// and ObjectState::equals -- hashing is a shortcut, never the verdict, so
// results stay sound in both directions.  Object states are copy-on-write
// snapshots (spec/snapshot.h): branching is a refcount bump, pure accessors
// apply without cloning at all, and memoized dead states are retained by
// handle instead of by string.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "checker/history.h"
#include "spec/object_model.h"

namespace linbound {

struct CheckResult {
  bool ok = false;
  /// On success: indices into history.ops() in linearization order.
  std::vector<std::size_t> witness;
  /// On failure: a human-readable account of the first dead end.
  std::string explanation;
  std::size_t states_explored = 0;
  /// Search nodes answered by the dead-state memo table instead of
  /// re-exploration.
  std::size_t memo_hits = 0;
  /// True when the trivial-history fast path (empty or single-process
  /// history: no interleaving to search) decided the verdict.
  bool early_exit = false;

  /// Fraction of node visits the memo table absorbed.
  double memo_hit_rate() const {
    const std::size_t visits = states_explored + memo_hits;
    return visits ? static_cast<double>(memo_hits) / visits : 0.0;
  }

  explicit operator bool() const { return ok; }
};

struct CheckLimits {
  /// Abort (std::runtime_error) after exploring this many distinct
  /// (frontier, state) pairs.  The search is exponential in the number of
  /// simultaneously pending operations; the budget turns a pathological
  /// history into a loud error instead of an OOM.
  std::size_t max_states = 20'000'000;
};

/// Is the history linearizable w.r.t. the model?
CheckResult check_linearizable(const ObjectModel& model, const History& history,
                               const CheckLimits& limits = {});

/// Is the history sequentially consistent w.r.t. the model?
CheckResult check_sequentially_consistent(const ObjectModel& model,
                                          const History& history,
                                          const CheckLimits& limits = {});

/// Linearizability of a history with pending invocations (crashed
/// processes): each pending operation may be linearized at any point after
/// everything that real-time-precedes its invocation -- with an
/// unconstrained return value -- or omitted entirely (Herlihy-Wing's
/// treatment of incomplete histories).
CheckResult check_linearizable_with_pending(
    const ObjectModel& model, const History& history,
    const std::vector<PendingInvocation>& pending, const CheckLimits& limits = {});

}  // namespace linbound
