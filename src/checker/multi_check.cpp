#include "checker/multi_check.h"

#include "checker/history.h"
#include "common/parallel.h"

namespace linbound {

int MultiCheckReport::first_failure() const {
  for (const ShardCheck& s : shards) {
    if (!s.result.ok) return s.shard;
  }
  return -1;
}

MultiCheckReport check_shards(const ObjectModel& model,
                              const std::vector<const Trace*>& traces,
                              const MultiCheckOptions& options) {
  CheckOptions check = options.check;
  check.jobs = 1;  // outer fan-out owns the pool (see MultiCheckOptions)
  const ParallelSweepExecutor exec(resolve_jobs(options.jobs));
  MultiCheckReport report;
  report.shards = exec.map<ShardCheck>(traces.size(), [&](std::size_t i) {
    ShardCheck out;
    out.shard = static_cast<int>(i);
    auto [history, pending] = history_with_pending(*traces[i]);
    out.ops = history.size();
    out.pending = pending.size();
    if (options.streaming) {
      StreamingCheckOptions so = options.streaming_options;
      so.jobs = 1;  // the outer fan-out owns the pool
      out.result = streaming_check_trace(model, *traces[i], so);
    } else {
      out.result = pending.empty()
                       ? check_linearizable(model, history, check)
                       : check_linearizable_with_pending(model, history,
                                                         pending, check);
    }
    return out;
  });
  for (const ShardCheck& s : report.shards) {
    report.all_ok = report.all_ok && s.result.ok;
    report.total_ops += s.ops;
    report.total_pending += s.pending;
  }
  return report;
}

}  // namespace linbound
