// Per-shard linearizability checking fanned over a worker pool.
//
// Linearizability composes per object: a multi-tenant run is correct iff
// every shard's history is independently linearizable against the shared
// object model, so a sharded run (src/shard) is checked by fanning the
// existing checker over the shards with common/parallel.h.  Each shard's
// check is a pure function of its trace, results are aggregated in
// canonical shard order, and every verdict/witness/explanation is
// byte-identical to checking that shard alone -- the checker-side mirror of
// the sharded runtime's per-shard trace determinism contract.
#pragma once

#include <cstddef>
#include <vector>

#include "checker/lin_checker.h"
#include "checker/streaming_checker.h"
#include "sim/trace.h"
#include "spec/object_model.h"

namespace linbound {

/// One shard's verdict: the CheckResult plus pending accounting.
struct ShardCheck {
  int shard = -1;
  CheckResult result;
  std::size_t ops = 0;      ///< completed operations checked
  std::size_t pending = 0;  ///< dispatched-but-unanswered invocations
};

struct MultiCheckOptions {
  /// Per-shard checker configuration.  CheckOptions::jobs is the
  /// *intra-segment* parallelism and is forced to 1 here: with many shards
  /// the outer fan-out already saturates the pool, and nested thread spawns
  /// per segment would oversubscribe it.
  CheckOptions check;
  /// Worker threads across shards (resolve_jobs semantics).
  int jobs = 1;
  /// Route each shard's check through the streaming checker (replayed from
  /// the trace) instead of the offline segmented one.  Verdict and witness
  /// are identical either way (the streaming determinism contract); memory
  /// per shard drops from O(history) to O(open window).  The streaming
  /// checker's own pipelining stays off for the same reason check.jobs is
  /// forced to 1: the outer fan-out owns the pool.
  bool streaming = false;
  /// Limits for the streaming route (`check.limits` is the offline one).
  StreamingCheckOptions streaming_options;
};

struct MultiCheckReport {
  std::vector<ShardCheck> shards;  ///< canonical shard order
  bool all_ok = true;              ///< every shard linearizable
  std::size_t total_ops = 0;
  std::size_t total_pending = 0;

  /// First failing shard id, or -1 when all_ok.
  int first_failure() const;
};

/// Check every trace against `model`, one checker run per shard, fanned
/// over `options.jobs` workers.  Pending invocations (stalled or aborted
/// shards) go through the pending-aware checker overloads.
MultiCheckReport check_shards(const ObjectModel& model,
                              const std::vector<const Trace*>& traces,
                              const MultiCheckOptions& options = {});

}  // namespace linbound
