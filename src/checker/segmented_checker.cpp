// Segmented + parallel linearizability checking.
//
// Two orthogonal accelerations over the serial Wing&Gong-style search in
// lin_checker.cpp, both returning byte-identical verdicts, witnesses and
// explanations to it (regression-tested in tests/test_segmented_checker.cpp):
//
//  1. Quiescent-cut segmentation (segment_history, checker/history.h).
//     Every completed operation of segment i strictly real-time-precedes
//     every completed operation of segment i+1, so any linearization is a
//     concatenation of per-segment linearizations.  The search runs segment
//     by segment, threading the object state (and the pending-taken set)
//     across each cut; when a downstream segment fails for a threaded
//     state, the upstream search backtracks and tries the next distinct
//     final state -- exactly what the serial search does, but with
//     per-segment memo tables instead of one monolithic one.
//
//  2. Parallel intra-segment subtree search.  When the fan-out at a
//     segment's root reaches CheckOptions::min_parallel_fanout and jobs > 1,
//     the top levels of the decision tree are expanded (in exact serial DFS
//     order) into prefix tasks executed on the ParallelSweepExecutor pool.
//     Each task owns a private dead-state memo and a detached object state,
//     so workers share nothing but three monotonic atomics: the global
//     state budget, the memo-hit counter, and the best-success index used
//     for cooperative cancellation.  Results merge in canonical prefix
//     order: the first successful prefix yields the witness (identical to
//     the serial first witness) and the first non-empty explanation at or
//     before it yields the explanation.  Tasks ordered after the first
//     success may be cancelled -- their results are never read, so
//     cancellation cannot perturb the output.
//
// Determinism contract: verdict, witness and explanation are identical at
// any jobs value.  The diagnostic counters (states_explored, memo_hits) are
// exact for jobs <= 1 and best-effort aggregates for jobs > 1, where
// cancelled tasks may or may not have burned states before noticing the
// cancellation flag.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "checker/lin_checker.h"
#include "common/parallel.h"
#include "spec/snapshot.h"

namespace linbound {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_u64(std::uint64_t& h, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    h ^= x & 0xff;
    h *= kFnvPrime;
    x >>= 8;
  }
}

int active_processes(const History& history) {
  int active = 0;
  for (int p = 0; p < history.process_count(); ++p) {
    if (!history.by_process(p).empty()) ++active;
  }
  return active;
}

constexpr std::size_t kNoTask = std::numeric_limits<std::size_t>::max();

/// State shared by every walker (the coordinating one and the subtree
/// tasks) of one checker call.
struct SharedCtx {
  const ObjectModel& model;
  const History& history;
  const std::vector<HistorySegment>& segments;
  /// Per segment s: the minimum response time over all operations in
  /// segments AFTER s (kNoTime when none remain).  A pending invocation is
  /// blocked exactly when some remaining completed operation responds
  /// strictly before it; this suffix minimum answers that query for all
  /// not-yet-started segments at once.
  const std::vector<Tick>& later_min_resp;
  const std::vector<PendingInvocation>& pending;
  const CheckLimits limits;
  const std::size_t min_parallel_fanout;
  const int jobs;
  /// Stack to give subtree-task threads (0 = platform default): a task
  /// walks from its split segment to the end of the history, so its
  /// recursion depth is bounded only by the total operation count.
  const std::size_t worker_stack_bytes;

  std::atomic<std::size_t> states{0};
  std::atomic<std::size_t> memo_hits{0};
  /// Dead-memo entries retained across the whole call (they are never
  /// evicted, so the running count is also the peak -- the offline
  /// checker's resident footprint for CheckResult::max_resident_states).
  std::atomic<std::size_t> resident{0};
  std::atomic<bool> aborted{false};
  std::vector<std::unique_ptr<std::atomic<std::size_t>>> seg_states;
  std::size_t parallel_tasks = 0;  // written by the coordinating thread only

  SharedCtx(const ObjectModel& m, const History& h,
            const std::vector<HistorySegment>& segs,
            const std::vector<Tick>& lmr,
            const std::vector<PendingInvocation>& pend,
            const CheckOptions& options)
      : model(m),
        history(h),
        segments(segs),
        later_min_resp(lmr),
        pending(pend),
        limits(options.limits),
        min_parallel_fanout(options.min_parallel_fanout),
        jobs(resolve_jobs(options.jobs)),
        worker_stack_bytes(deep_search_stack_bytes(h.size() + pend.size())) {
    seg_states.reserve(segs.size());
    for (std::size_t i = 0; i < segs.size(); ++i) {
      seg_states.push_back(std::make_unique<std::atomic<std::size_t>>(0));
    }
  }
};

/// What one subtree task reports back to the merge step.
struct TaskOutcome {
  enum Status : std::uint8_t { kFailed, kSucceeded, kCancelled };
  Status status = kFailed;
  std::vector<std::size_t> suffix;  ///< witness continuation from the prefix
  std::string explanation;          ///< task-local first mismatch
};

/// One walker = one serial depth-first search owning its own frontier,
/// pending-taken set and per-segment memo tables.  The coordinating walker
/// may hand whole subtrees to task walkers; task walkers never re-split.
class Walker {
 public:
  Walker(SharedCtx& ctx, bool in_task, std::size_t task_index,
         const std::atomic<std::size_t>* cancel_best)
      : ctx_(ctx),
        in_task_(in_task),
        task_index_(task_index),
        cancel_best_(cancel_best),
        frontier_(static_cast<std::size_t>(ctx.history.process_count()), 0),
        pending_taken_(ctx.pending.size(), false),
        dead_(ctx.segments.size()) {}

  /// Search segments s.. to completion from `state`.  On success chosen()
  /// holds the witness continuation picked by this walker.
  bool solve(std::size_t s, Snapshot& state) {
    while (s < ctx_.segments.size() && seg_complete(s)) ++s;
    if (s == ctx_.segments.size()) return true;
    // Split only when the segment has enough work to amortize task setup
    // (op_count >= 8 is a perf heuristic only -- the output is identical
    // either way) and enough root fan-out to spread.
    if (!in_task_ && ctx_.jobs > 1 && ctx_.segments[s].op_count >= 8 &&
        fanout(s) >= ctx_.min_parallel_fanout) {
      return solve_parallel(s, state);
    }
    return dfs(s, state);
  }

  const std::vector<std::size_t>& chosen() const { return chosen_; }
  const std::string& explanation() const { return explanation_; }
  std::size_t memo_hits() const { return memo_hits_; }
  bool cancelled() const { return cancelled_; }

  void restore(std::vector<std::size_t> frontier,
               std::vector<bool> pending_taken) {
    frontier_ = std::move(frontier);
    pending_taken_ = std::move(pending_taken);
  }

 private:
  // --- shared-state checks --------------------------------------------------

  bool should_unwind() {
    if (ctx_.aborted.load(std::memory_order_relaxed)) {
      cancelled_ = true;
      return true;
    }
    if (cancel_best_ != nullptr &&
        cancel_best_->load(std::memory_order_relaxed) < task_index_) {
      cancelled_ = true;
      return true;
    }
    return false;
  }

  void count_state(std::size_t s) {
    const std::size_t n =
        ctx_.states.fetch_add(1, std::memory_order_relaxed) + 1;
    ctx_.seg_states[s]->fetch_add(1, std::memory_order_relaxed);
    if (n > ctx_.limits.max_states) {
      ctx_.aborted.store(true, std::memory_order_relaxed);
      detail::throw_state_budget_exceeded(ctx_.limits.max_states, n, s,
                                          ctx_.segments.size(),
                                          ctx_.history.size());
    }
  }

  // --- frontier / eligibility ----------------------------------------------

  bool seg_complete(std::size_t s) const {
    const HistorySegment& seg = ctx_.segments[s];
    for (std::size_t p = 0; p < frontier_.size(); ++p) {
      if (frontier_[p] < seg.end[p]) return false;
    }
    return true;
  }

  /// Frontier op of process p within segment s, or nullopt if p has no
  /// remaining operation there.
  std::optional<std::size_t> front(std::size_t s, std::size_t p) const {
    if (frontier_[p] >= ctx_.segments[s].end[p]) return std::nullopt;
    return ctx_.history.by_process(static_cast<ProcessId>(p))[frontier_[p]];
  }

  /// Can an operation invoked at `inv` linearize next?  Only same-segment
  /// operations can block: every earlier segment is fully consumed and
  /// every later operation is invoked strictly after all of this segment's
  /// responses (the cut condition), so its response can never precede a
  /// same-segment invocation.
  bool eligible_at(std::size_t s, Tick inv,
                   std::optional<std::size_t> self) const {
    for (std::size_t p = 0; p < frontier_.size(); ++p) {
      auto f = front(s, p);
      if (!f || (self && *f == *self)) continue;
      if (ctx_.history.ops()[*f].response < inv) return false;
    }
    return true;
  }

  /// Pending invocations are additionally blocked by *later* segments:
  /// their invoke time is not bounded by the segment, so a remaining
  /// operation in a not-yet-started segment may respond before it.  Within
  /// a process responses are invoke-ordered, so the suffix minimum over
  /// later segments decides exactly what the serial full-frontier scan
  /// decides.
  bool pending_eligible(std::size_t s, Tick inv) const {
    const Tick later = ctx_.later_min_resp[s];
    if (later != kNoTime && later < inv) return false;
    return eligible_at(s, inv, std::nullopt);
  }

  /// Branch count at the current node of segment s: eligible untaken
  /// pending invocations plus eligible process fronts.  The split
  /// heuristic; depends only on walker state, so the split decision is
  /// deterministic.
  std::size_t fanout(std::size_t s) const {
    std::size_t count = 0;
    for (std::size_t q = 0; q < ctx_.pending.size(); ++q) {
      if (!pending_taken_[q] && pending_eligible(s, ctx_.pending[q].invoke)) {
        ++count;
      }
    }
    for (std::size_t p = 0; p < frontier_.size(); ++p) {
      auto f = front(s, p);
      if (f && eligible_at(s, ctx_.history.ops()[*f].invoke, f)) ++count;
    }
    return count;
  }

  // --- memo -----------------------------------------------------------------

  struct DeadEntry {
    std::vector<std::size_t> frontier;
    std::vector<bool> pending_taken;
    Snapshot state;
  };

  std::uint64_t memo_hash(const Snapshot& state) const {
    std::uint64_t h = kFnvOffset;
    for (std::size_t f : frontier_) fnv_u64(h, f);
    std::uint64_t bits = 0;
    for (std::size_t q = 0; q < pending_taken_.size(); ++q) {
      bits = (bits << 1) | (pending_taken_[q] ? 1u : 0u);
      if ((q & 63u) == 63u) {
        fnv_u64(h, bits);
        bits = 0;
      }
    }
    if (!pending_taken_.empty()) fnv_u64(h, bits);
    fnv_u64(h, state.fingerprint());
    return h;
  }

  bool known_dead(std::size_t s, std::uint64_t h, const Snapshot& state) const {
    auto it = dead_[s].find(h);
    if (it == dead_[s].end()) return false;
    for (const DeadEntry& e : it->second) {
      if (e.frontier == frontier_ && e.pending_taken == pending_taken_ &&
        e.state.equals(state)) {
      return true;
      }
    }
    return false;
  }

  // --- explanations ---------------------------------------------------------

  void record_explanation(std::string text) {
    if (explanation_.empty() && !text.empty()) explanation_ = std::move(text);
  }

  std::string mismatch_text(const HistoryOp& op, const Snapshot& before,
                            const Value& determined) const {
    std::ostringstream os;
    os << "p" << op.proc << " " << ctx_.model.describe(op.op) << " returned "
       << op.ret.to_string() << " but state " << before.to_string()
       << " determines " << determined.to_string();
    return os.str();
  }

  static constexpr const char* kNoCandidateText =
      "no operation is eligible to linearize next (real-time order cycle)";

  // --- the serial in-segment search ----------------------------------------

  bool dfs(std::size_t s, Snapshot& state) {
    if (should_unwind()) return false;
    if (seg_complete(s)) return solve(s + 1, state);
    const std::uint64_t h = memo_hash(state);
    if (known_dead(s, h, state)) {
      ++memo_hits_;
      return false;
    }
    count_state(s);

    for (std::size_t q = 0; q < ctx_.pending.size(); ++q) {
      if (pending_taken_[q]) continue;
      if (!pending_eligible(s, ctx_.pending[q].invoke)) continue;
      Snapshot next = state;
      next.apply(ctx_.pending[q].op);
      pending_taken_[q] = true;
      if (dfs(s, next)) return true;
      pending_taken_[q] = false;
    }

    bool any_candidate = false;
    for (std::size_t p = 0; p < frontier_.size(); ++p) {
      auto f = front(s, p);
      if (!f) continue;
      const HistoryOp& op = ctx_.history.ops()[*f];
      if (!eligible_at(s, op.invoke, f)) continue;
      any_candidate = true;
      Snapshot next = state;
      const bool accessor =
          ctx_.model.classify(op.op) == OpClass::kPureAccessor;
      const Value determined =
          accessor ? next.apply_accessor(op.op) : next.apply(op.op);
      if (!(determined == op.ret)) {
        record_explanation(mismatch_text(op, state, determined));
        continue;
      }
      ++frontier_[p];
      chosen_.push_back(*f);
      if (dfs(s, next)) return true;
      chosen_.pop_back();
      --frontier_[p];
    }

    if (!any_candidate) record_explanation(kNoCandidateText);
    if (cancelled_) return false;  // partial search: do not poison the memo
    dead_[s][h].push_back(DeadEntry{frontier_, pending_taken_, state});
    ctx_.resident.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  // --- parallel subtree search ---------------------------------------------

  /// One entry of the merge list, in exact serial DFS order: either an
  /// inline mismatch discovered while expanding the prefix tree, or a leaf
  /// prefix to be searched by a task.
  struct Item {
    std::string inline_expl;  // non-leaf: a mismatch at the split levels
    bool is_leaf = false;
    std::vector<std::size_t> frontier;
    std::vector<bool> pending_taken;
    std::vector<std::size_t> path;  // completed ops chosen from the root
    Snapshot state;                 // detached: uniquely owned by the leaf
    std::size_t task = kNoTask;     // index into the task array
  };

  void make_leaf(std::size_t s, const Snapshot& state,
                 const std::vector<std::size_t>& path,
                 std::vector<Item>& items) {
    Item leaf;
    leaf.is_leaf = true;
    leaf.frontier = frontier_;
    leaf.pending_taken = pending_taken_;
    leaf.path = path;
    // Detach the object state so no two tasks ever share an ObjectState
    // (Snapshot's copy-on-write bookkeeping is single-thread-only).
    leaf.state = Snapshot(state.to_state());
    (void)s;
    items.push_back(std::move(leaf));
  }

  /// Expand the top `depth_left` levels under the current node of segment
  /// s, emitting merge items in serial DFS order.  Mirrors one dfs() node:
  /// pending moves first, then process fronts in pid order, mismatches as
  /// inline items, and the no-candidate diagnostic last.  Children that
  /// complete the segment become leaves immediately (their task crosses the
  /// cut itself), so expansion never outruns a boundary.
  void expand(std::size_t s, std::size_t depth_left, Snapshot& state,
              std::vector<std::size_t>& path, std::vector<Item>& items) {
    count_state(s);
    for (std::size_t q = 0; q < ctx_.pending.size(); ++q) {
      if (pending_taken_[q]) continue;
      if (!pending_eligible(s, ctx_.pending[q].invoke)) continue;
      Snapshot next = state;
      next.apply(ctx_.pending[q].op);
      pending_taken_[q] = true;
      if (depth_left > 1) {
        expand(s, depth_left - 1, next, path, items);
      } else {
        make_leaf(s, next, path, items);
      }
      pending_taken_[q] = false;
    }

    bool any_candidate = false;
    for (std::size_t p = 0; p < frontier_.size(); ++p) {
      auto f = front(s, p);
      if (!f) continue;
      const HistoryOp& op = ctx_.history.ops()[*f];
      if (!eligible_at(s, op.invoke, f)) continue;
      any_candidate = true;
      Snapshot next = state;
      const bool accessor =
          ctx_.model.classify(op.op) == OpClass::kPureAccessor;
      const Value determined =
          accessor ? next.apply_accessor(op.op) : next.apply(op.op);
      if (!(determined == op.ret)) {
        Item miss;
        miss.inline_expl = mismatch_text(op, state, determined);
        items.push_back(std::move(miss));
        continue;
      }
      ++frontier_[p];
      path.push_back(*f);
      if (depth_left > 1 && !seg_complete(s)) {
        expand(s, depth_left - 1, next, path, items);
      } else {
        make_leaf(s, next, path, items);
      }
      path.pop_back();
      --frontier_[p];
    }

    if (!any_candidate) {
      Item miss;
      miss.inline_expl = kNoCandidateText;
      items.push_back(std::move(miss));
    }
  }

  /// Fan the subtree rooted at the current node of segment s out over the
  /// worker pool.  Byte-identical to dfs(s, state) by construction: items
  /// are generated and merged in serial DFS order.
  bool solve_parallel(std::size_t s, Snapshot& state) {
    const std::uint64_t h = memo_hash(state);
    if (known_dead(s, h, state)) {
      ++memo_hits_;
      return false;
    }

    // Pick the split depth so the leaf count comfortably overfills the
    // pool; deeper levels stay inside the tasks.
    const std::size_t width = std::max<std::size_t>(fanout(s), 2);
    const std::size_t target =
        std::max<std::size_t>(8, 4 * static_cast<std::size_t>(ctx_.jobs));
    std::size_t depth = 1;
    std::size_t cap = width;
    while (cap < target && depth < 6) {
      cap *= width;
      ++depth;
    }

    std::vector<Item> items;
    std::vector<std::size_t> path;
    expand(s, depth, state, path, items);

    std::vector<Item*> leaves;
    for (Item& item : items) {
      if (item.is_leaf) {
        item.task = leaves.size();
        leaves.push_back(&item);
      }
    }
    ctx_.parallel_tasks += leaves.size();

    std::atomic<std::size_t> best{kNoTask};
    const ParallelSweepExecutor executor(ctx_.jobs, ctx_.worker_stack_bytes);
    SharedCtx& ctx = ctx_;
    std::vector<TaskOutcome> outcomes = executor.map<TaskOutcome>(
        leaves.size(), [&ctx, &leaves, &best, s](std::size_t i) {
          TaskOutcome out;
          if (best.load(std::memory_order_relaxed) < i) {
            out.status = TaskOutcome::kCancelled;
            return out;
          }
          Walker worker(ctx, /*in_task=*/true, i, &best);
          const Item& leaf = *leaves[i];
          worker.restore(leaf.frontier, leaf.pending_taken);
          Snapshot st = leaf.state;
          const bool ok = worker.solve(s, st);
          if (worker.cancelled()) {
            out.status = TaskOutcome::kCancelled;
            return out;
          }
          ctx.memo_hits.fetch_add(worker.memo_hits(),
                                  std::memory_order_relaxed);
          out.status = ok ? TaskOutcome::kSucceeded : TaskOutcome::kFailed;
          out.explanation = worker.explanation();
          if (ok) out.suffix = worker.chosen();
          if (ok) {
            std::size_t cur = best.load(std::memory_order_relaxed);
            while (i < cur &&
                   !best.compare_exchange_weak(cur, i,
                                               std::memory_order_relaxed)) {
            }
          }
          return out;
        });

    // Merge in serial DFS order: the first successful leaf carries the
    // witness, and the first non-empty explanation at or before it is the
    // one the serial search would have recorded.  Items past the first
    // success are unreachable serially and are never read (they are the
    // only ones cancellation may have truncated).
    for (const Item& item : items) {
      if (!item.is_leaf) {
        record_explanation(item.inline_expl);
        continue;
      }
      const TaskOutcome& out = outcomes[item.task];
      record_explanation(out.explanation);
      if (out.status == TaskOutcome::kSucceeded) {
        chosen_.insert(chosen_.end(), item.path.begin(), item.path.end());
        chosen_.insert(chosen_.end(), out.suffix.begin(), out.suffix.end());
        return true;
      }
    }
    dead_[s][h].push_back(DeadEntry{frontier_, pending_taken_, state});
    ctx_.resident.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  SharedCtx& ctx_;
  const bool in_task_;
  const std::size_t task_index_;
  const std::atomic<std::size_t>* cancel_best_;
  bool cancelled_ = false;

  std::vector<std::size_t> frontier_;
  std::vector<bool> pending_taken_;
  std::vector<std::size_t> chosen_;
  std::string explanation_;
  std::size_t memo_hits_ = 0;
  std::vector<std::unordered_map<std::uint64_t, std::vector<DeadEntry>>> dead_;
};

CheckResult run_segmented(const ObjectModel& model, const History& history,
                          const std::vector<PendingInvocation>& pending,
                          const CheckOptions& options) {
  CheckResult result;
  if (history.size() == 0 && pending.empty()) {
    result.ok = true;
    result.early_exit = true;
    return result;
  }
  if (history.size() == 0) {
    // Only pending invocations: omitting every one linearizes the (empty)
    // completed history, mirroring the serial search's immediate accept.
    result.ok = true;
    return result;
  }
  if (pending.empty() && active_processes(history) <= 1) {
    return detail::replay_single_process(model, history);
  }

  std::vector<HistorySegment> segments;
  if (options.segment) {
    segments = segment_history(history, pending);
  } else {
    HistorySegment all;
    const std::size_t procs =
        static_cast<std::size_t>(history.process_count());
    all.begin.assign(procs, 0);
    all.end.assign(procs, 0);
    for (std::size_t p = 0; p < procs; ++p) {
      all.end[p] = history.by_process(static_cast<ProcessId>(p)).size();
    }
    all.op_count = history.size();
    all.min_response = kNoTime;
    for (const HistoryOp& op : history.ops()) {
      if (all.min_response == kNoTime || op.response < all.min_response) {
        all.min_response = op.response;
      }
    }
    segments.push_back(std::move(all));
  }

  // Suffix minimum of per-segment min response, for pending eligibility.
  std::vector<Tick> later_min_resp(segments.size(), kNoTime);
  for (std::size_t s = segments.size(); s-- > 1;) {
    Tick later = later_min_resp[s];
    const Tick own = segments[s].min_response;
    if (later == kNoTime || (own != kNoTime && own < later)) later = own;
    later_min_resp[s - 1] = later;
  }

  SharedCtx ctx(model, history, segments, later_min_resp, pending, options);
  Walker walker(ctx, /*in_task=*/false, 0, nullptr);
  Snapshot state = Snapshot::initial(model);
  // The search recurses once per linearized operation (dfs crosses segment
  // boundaries through solve), so histories past the default thread stack
  // run on an explicitly sized one; subtree tasks get the same treatment
  // through SharedCtx::worker_stack_bytes.
  if (ctx.worker_stack_bytes == 0) {
    result.ok = walker.solve(0, state);
  } else {
    run_on_stack(ctx.worker_stack_bytes,
                 [&] { result.ok = walker.solve(0, state); });
  }
  if (result.ok) result.witness = walker.chosen();
  result.explanation = walker.explanation();
  result.states_explored = ctx.states.load();
  result.memo_hits = ctx.memo_hits.load() + walker.memo_hits();
  result.segments = segments.size();
  result.parallel_tasks = ctx.parallel_tasks;
  result.max_resident_states = ctx.resident.load();
  result.per_segment_states.reserve(segments.size());
  for (const auto& counter : ctx.seg_states) {
    result.per_segment_states.push_back(counter->load());
  }
  return result;
}

}  // namespace

CheckResult check_linearizable(const ObjectModel& model, const History& history,
                               const CheckOptions& options) {
  static const std::vector<PendingInvocation> kNoPending;
  return run_segmented(model, history, kNoPending, options);
}

CheckResult check_linearizable_with_pending(
    const ObjectModel& model, const History& history,
    const std::vector<PendingInvocation>& pending,
    const CheckOptions& options) {
  return run_segmented(model, history, pending, options);
}

}  // namespace linbound
