// Streaming online linearizability checker (see streaming_checker.h for the
// architecture and DESIGN.md for the soundness argument).
//
// Layout: Core is the single-threaded engine -- cut detection, eager segment
// retirement via forward state-set threading, and the final-window search
// that mirrors the offline Walker exactly.  EventRing + StreamingChecker::Impl
// wrap it in the inline-vs-pipelined feeding modes; streaming_check_trace is
// the replay driver used by tests and benches.
#include "checker/streaming_checker.h"

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "spec/snapshot.h"

namespace linbound {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_u64(std::uint64_t& h, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    h ^= x & 0xff;
    h *= kFnvPrime;
    x >>= 8;
  }
}

/// One operation as the stream sees it.  `response == kNoTime` while the
/// operation is in flight; an operation that never responds (crash mid-op,
/// give-up) simply stays that way and finalize() treats it as pending --
/// the same classification history_with_pending makes offline.
struct StreamOp {
  std::int64_t token = 0;
  ProcessId proc = kNoProcess;
  Operation op;
  Value ret;
  Tick invoke = kNoTime;
  Tick response = kNoTime;

  bool completed() const { return response != kNoTime; }
};

/// Per-process index lists over one segment's operations.  Operations arrive
/// in invocation-time order and a process's operations never overlap, so the
/// arrival-order sublist of each process IS its by_process (invoke-sorted)
/// order -- no sort needed.
struct SegIndex {
  std::vector<std::vector<std::size_t>> per_proc;

  void build(const std::vector<StreamOp>& ops) {
    per_proc.clear();
    ProcessId max_pid = -1;
    for (const StreamOp& rec : ops) max_pid = std::max(max_pid, rec.proc);
    per_proc.assign(static_cast<std::size_t>(max_pid + 1), {});
    for (std::size_t i = 0; i < ops.size(); ++i) {
      per_proc[static_cast<std::size_t>(ops[i].proc)].push_back(i);
    }
  }
};

/// Witness bookkeeping for the forward state set: each retained final state
/// points back at the segment-local linearization (operation tokens) chosen
/// on the path that first reached it, chained across segments.  Chains are
/// shared (shared_ptr) between entries with a common prefix and are excluded
/// from the resident-state metric: they are the output being accumulated,
/// not search state.
struct ChainNode {
  std::shared_ptr<const ChainNode> prev;
  std::vector<std::int64_t> path;
};

/// Chains grow one node per retired segment -- hundreds of thousands of
/// links on a million-op run -- so letting shared_ptr unwind one recursively
/// (each node's destructor destroying its prev) overflows the stack.
/// Dismantle iteratively instead: pop exclusively owned heads one at a
/// time, stopping at the first node another chain still shares (whoever
/// drops that chain continues the teardown the same way).
void release_chain(std::shared_ptr<const ChainNode>&& head) {
  while (head && head.use_count() == 1) {
    std::shared_ptr<const ChainNode> prev =
        std::move(const_cast<ChainNode*>(head.get())->prev);
    head = std::move(prev);
  }
  head.reset();
}

/// One entry of the forward state set: a distinct object state reachable by
/// linearizing every retired segment, in first-reached order.
struct StateEntry {
  Snapshot state;
  std::shared_ptr<const ChainNode> chain;
};

/// The single-threaded checking engine.  Feed invoke()/response() in
/// simulated-time order; finalize_run() exactly once at the end.
class Core {
 public:
  Core(const ObjectModel& model, const CheckLimits& limits)
      : model_(model), limits_(limits) {
    alist_.push_back(StateEntry{Snapshot::initial(model_), nullptr});
  }

  ~Core() { release_state_set(); }

  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;

  /// Drop every state-set entry, dismantling each witness chain
  /// iteratively (never through the recursive shared_ptr cascade).
  void release_state_set() {
    for (StateEntry& s : alist_) release_chain(std::move(s.chain));
    alist_.clear();
  }

  void invoke(std::int64_t token, ProcessId proc, const Operation& op,
              Tick t) {
    maybe_cut(t);
    open_ix_.emplace(token, window_.size());
    StreamOp rec;
    rec.token = token;
    rec.proc = proc;
    rec.op = op;
    rec.invoke = t;
    window_.push_back(std::move(rec));
    ++in_flight_;
    ++ops_seen_;
    if (window_.size() > max_window_ops_) max_window_ops_ = window_.size();
    bump_resident(0);
  }

  void response(std::int64_t token, const Value& ret, Tick t) {
    auto it = open_ix_.find(token);
    if (it == open_ix_.end()) {
      throw std::logic_error(
          "StreamingChecker: response without a matching in-flight "
          "invocation (token " +
          std::to_string(token) + ")");
    }
    StreamOp& rec = window_[it->second];
    open_ix_.erase(it);
    rec.ret = ret;
    rec.response = t;
    --in_flight_;
    ++completed_seen_;
    if (t > max_response_) max_response_ = t;  // kNoTime is INT64_MIN
  }

  CheckResult finalize_run();

  std::size_t ops_seen() const { return ops_seen_; }
  std::size_t segments_retired() const { return segments_retired_; }
  std::size_t max_window_ops() const { return max_window_ops_; }
  std::size_t max_resident_states() const { return peak_resident_; }

 private:
  // --- online cut detection -------------------------------------------------

  /// Called on every invocation, before it joins the window.  Nothing in
  /// flight + every response so far strictly before `t` is exactly
  /// segment_history's cut condition restricted to what is knowable online;
  /// the pending-invocation clause is resolved by deferring confirmation
  /// (retire only while a *later* tentative cut exists -- its trigger had
  /// nothing in flight, so no pending invocation can predate it).
  void maybe_cut(Tick t) {
    if (in_flight_ != 0 || window_.empty()) return;
    if (max_response_ >= t) return;
    closed_ops_ += window_.size();
    closed_.push_back(std::move(window_));
    window_.clear();
    open_ix_.clear();  // empty already: nothing was in flight
    max_response_ = kNoTime;
    while (closed_.size() > 1) retire_front();
  }

  void retire_front() {
    std::vector<StreamOp> seg = std::move(closed_.front());
    closed_.pop_front();
    closed_ops_ -= seg.size();
    ++confirmed_cuts_;
    if (!failed_) advance(seg);
  }

  // --- forward state-set threading over a confirmed segment -----------------

  struct VisitedEntry {
    std::vector<std::size_t> frontier;
    Snapshot state;
  };

  /// Scratch for enumerating one confirmed segment from every state-set
  /// entry.  `visited` is the cross-entry memo: a (frontier, state) node is
  /// expanded at most once per segment no matter how many entries re-reach
  /// it (the role the offline dead memo plays), marked pre-order -- safe
  /// because the frontier strictly advances along any path (no cycles) and
  /// a marked node's subtree has always been fully enumerated.
  struct EnumCtx {
    const std::vector<StreamOp>& ops;
    SegIndex ix;
    std::vector<std::size_t> frontier;
    std::vector<std::int64_t> path;
    std::unordered_map<std::uint64_t, std::vector<VisitedEntry>> visited;
    std::size_t visited_count = 0;
    std::vector<StateEntry> next;
    /// fingerprint -> indices into `next`, for final-state dedup.
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> finals;
    const std::shared_ptr<const ChainNode>* base = nullptr;

    explicit EnumCtx(const std::vector<StreamOp>& o) : ops(o) { ix.build(o); }
  };

  static std::optional<std::size_t> seg_front(const EnumCtx& e,
                                              std::size_t p) {
    const std::vector<std::size_t>& idxs = e.ix.per_proc[p];
    const std::size_t k = e.frontier[p];
    if (k >= idxs.size()) return std::nullopt;
    return idxs[k];
  }

  static bool seg_complete(const EnumCtx& e) {
    for (std::size_t p = 0; p < e.ix.per_proc.size(); ++p) {
      if (e.frontier[p] < e.ix.per_proc[p].size()) return false;
    }
    return true;
  }

  /// Same-segment real-time eligibility, the offline Walker's rule: no
  /// other remaining frontier operation may have responded strictly before
  /// `inv`.  Confirmed segments hold no pending operations (every pending
  /// invocation lives in the final window -- nothing was in flight at any
  /// trigger), so the frontier scan is the whole test.
  static bool seg_eligible_at(const EnumCtx& e, Tick inv,
                              std::optional<std::size_t> self) {
    for (std::size_t p = 0; p < e.ix.per_proc.size(); ++p) {
      auto f = seg_front(e, p);
      if (!f || (self && *f == *self)) continue;
      if (e.ops[*f].response < inv) return false;
    }
    return true;
  }

  std::uint64_t seg_hash(const EnumCtx& e, const Snapshot& state) const {
    std::uint64_t h = kFnvOffset;
    for (std::size_t f : e.frontier) fnv_u64(h, f);
    fnv_u64(h, state.fingerprint());
    return h;
  }

  /// Replace the state set with every distinct final state of `seg`,
  /// enumerating from each current entry in first-reached order.  An empty
  /// successor set is the (final) verdict: no linearization of the prefix
  /// extends through this segment.
  void advance(const std::vector<StreamOp>& seg) {
    EnumCtx e(seg);
    for (const StateEntry& entry : alist_) {
      e.frontier.assign(e.ix.per_proc.size(), 0);
      e.path.clear();
      e.base = &entry.chain;
      Snapshot state = entry.state;
      enum_dfs(e, state);
    }
    ++segments_retired_;
    if (e.next.empty()) {
      failed_ = true;
      release_state_set();
      return;
    }
    std::vector<StateEntry> prev_set = std::move(alist_);
    alist_ = std::move(e.next);
    // Entries that produced no surviving final own their chain suffix
    // exclusively now; dismantle those iteratively (shared prefixes stop
    // the walk immediately).
    for (StateEntry& s : prev_set) release_chain(std::move(s.chain));
    bump_resident(0);
  }

  void enum_dfs(EnumCtx& e, Snapshot& state) {
    if (seg_complete(e)) {
      emit_final(e, state);
      return;
    }
    const std::uint64_t h = seg_hash(e, state);
    auto it = e.visited.find(h);
    if (it != e.visited.end()) {
      for (const VisitedEntry& v : it->second) {
        if (v.frontier == e.frontier && v.state.equals(state)) {
          ++memo_hits_;
          return;
        }
      }
    }
    e.visited[h].push_back(VisitedEntry{e.frontier, state});
    ++e.visited_count;
    bump_resident(e.ops.size() + e.visited_count + e.next.size());
    count_state();

    // Candidate order mirrors the offline Walker: process fronts in pid
    // order (there are no pending operations in a confirmed segment).
    bool any_candidate = false;
    for (std::size_t p = 0; p < e.ix.per_proc.size(); ++p) {
      auto f = seg_front(e, p);
      if (!f) continue;
      const StreamOp& op = e.ops[*f];
      if (!seg_eligible_at(e, op.invoke, f)) continue;
      any_candidate = true;
      Snapshot next = state;
      const bool accessor = model_.classify(op.op) == OpClass::kPureAccessor;
      const Value determined =
          accessor ? next.apply_accessor(op.op) : next.apply(op.op);
      if (!(determined == op.ret)) {
        record_explanation(mismatch_text(op, state, determined));
        continue;
      }
      ++e.frontier[p];
      e.path.push_back(op.token);
      enum_dfs(e, next);
      e.path.pop_back();
      --e.frontier[p];
    }
    if (!any_candidate) record_explanation(kNoCandidateText);
  }

  void emit_final(EnumCtx& e, const Snapshot& state) {
    std::vector<std::size_t>& bucket = e.finals[state.fingerprint()];
    for (std::size_t j : bucket) {
      if (e.next[j].state.equals(state)) return;  // duplicate final state
    }
    bucket.push_back(e.next.size());
    auto node = std::make_shared<ChainNode>();
    node->prev = *e.base;
    node->path = e.path;
    e.next.push_back(StateEntry{state, std::move(node)});
    bump_resident(e.ops.size() + e.visited_count + e.next.size());
  }

  // --- the final-window search (exact offline Walker mirror) ----------------

  struct DeadEntry {
    std::vector<std::size_t> frontier;
    std::vector<bool> pending_taken;
    Snapshot state;
  };

  /// Scratch for searching the final window: completed operations plus the
  /// pending invocations, with the offline Walker's dead memo (post-order,
  /// shared across state-set entries -- exactly the memo the offline search
  /// keeps for its last segment across backtracks into earlier segments).
  struct FinalCtx {
    const std::vector<StreamOp>& comp;
    const std::vector<StreamOp>& pend;
    SegIndex ix;
    std::vector<std::size_t> frontier;
    std::vector<bool> pending_taken;
    std::vector<std::int64_t> path;
    std::unordered_map<std::uint64_t, std::vector<DeadEntry>> dead;
    std::size_t dead_count = 0;

    FinalCtx(const std::vector<StreamOp>& c, const std::vector<StreamOp>& q)
        : comp(c), pend(q) {
      ix.build(c);
    }
  };

  static std::optional<std::size_t> fin_front(const FinalCtx& f,
                                              std::size_t p) {
    const std::vector<std::size_t>& idxs = f.ix.per_proc[p];
    const std::size_t k = f.frontier[p];
    if (k >= idxs.size()) return std::nullopt;
    return idxs[k];
  }

  static bool fin_complete(const FinalCtx& f) {
    for (std::size_t p = 0; p < f.ix.per_proc.size(); ++p) {
      if (f.frontier[p] < f.ix.per_proc[p].size()) return false;
    }
    return true;
  }

  static bool fin_eligible_at(const FinalCtx& f, Tick inv,
                              std::optional<std::size_t> self) {
    // The final window is the last segment: no later segment exists, so the
    // offline pending rule's later-segment suffix minimum is vacuous and
    // eligibility reduces to the same-segment frontier scan for completed
    // and pending candidates alike.
    for (std::size_t p = 0; p < f.ix.per_proc.size(); ++p) {
      auto fr = fin_front(f, p);
      if (!fr || (self && *fr == *self)) continue;
      if (f.comp[*fr].response < inv) return false;
    }
    return true;
  }

  std::uint64_t fin_hash(const FinalCtx& f, const Snapshot& state) const {
    std::uint64_t h = kFnvOffset;
    for (std::size_t fr : f.frontier) fnv_u64(h, fr);
    std::uint64_t bits = 0;
    for (std::size_t q = 0; q < f.pending_taken.size(); ++q) {
      bits = (bits << 1) | (f.pending_taken[q] ? 1u : 0u);
      if ((q & 63u) == 63u) {
        fnv_u64(h, bits);
        bits = 0;
      }
    }
    if (!f.pending_taken.empty()) fnv_u64(h, bits);
    fnv_u64(h, state.fingerprint());
    return h;
  }

  bool fin_known_dead(const FinalCtx& f, std::uint64_t h,
                      const Snapshot& state) const {
    auto it = f.dead.find(h);
    if (it == f.dead.end()) return false;
    for (const DeadEntry& e : it->second) {
      if (e.frontier == f.frontier && e.pending_taken == f.pending_taken &&
          e.state.equals(state)) {
        return true;
      }
    }
    return false;
  }

  bool fin_dfs(FinalCtx& f, Snapshot& state) {
    if (fin_complete(f)) return true;  // pendings may stay untaken
    const std::uint64_t h = fin_hash(f, state);
    if (fin_known_dead(f, h, state)) {
      ++memo_hits_;
      return false;
    }
    count_state();

    for (std::size_t q = 0; q < f.pend.size(); ++q) {
      if (f.pending_taken[q]) continue;
      if (!fin_eligible_at(f, f.pend[q].invoke, std::nullopt)) continue;
      Snapshot next = state;
      next.apply(f.pend[q].op);
      f.pending_taken[q] = true;
      if (fin_dfs(f, next)) return true;
      f.pending_taken[q] = false;
    }

    bool any_candidate = false;
    for (std::size_t p = 0; p < f.ix.per_proc.size(); ++p) {
      auto fr = fin_front(f, p);
      if (!fr) continue;
      const StreamOp& op = f.comp[*fr];
      if (!fin_eligible_at(f, op.invoke, fr)) continue;
      any_candidate = true;
      Snapshot next = state;
      const bool accessor = model_.classify(op.op) == OpClass::kPureAccessor;
      const Value determined =
          accessor ? next.apply_accessor(op.op) : next.apply(op.op);
      if (!(determined == op.ret)) {
        record_explanation(mismatch_text(op, state, determined));
        continue;
      }
      ++f.frontier[p];
      f.path.push_back(op.token);
      if (fin_dfs(f, next)) return true;
      f.path.pop_back();
      --f.frontier[p];
    }

    if (!any_candidate) record_explanation(kNoCandidateText);
    f.dead[h].push_back(DeadEntry{f.frontier, f.pending_taken, state});
    ++f.dead_count;
    bump_resident(f.dead_count);
    return false;
  }

  // --- shared plumbing ------------------------------------------------------

  void count_state() {
    if (++states_ > limits_.max_states) {
      detail::throw_state_budget_exceeded(limits_.max_states, states_,
                                          segments_retired_,
                                          confirmed_cuts_ + 1, ops_seen_);
    }
  }

  void record_explanation(std::string text) {
    if (explanation_.empty() && !text.empty()) explanation_ = std::move(text);
  }

  std::string mismatch_text(const StreamOp& op, const Snapshot& before,
                            const Value& determined) const {
    std::ostringstream os;
    os << "p" << op.proc << " " << model_.describe(op.op) << " returned "
       << op.ret.to_string() << " but state " << before.to_string()
       << " determines " << determined.to_string();
    return os.str();
  }

  static constexpr const char* kNoCandidateText =
      "no operation is eligible to linearize next (real-time order cycle)";

  /// Track the peak resident footprint: everything O(open window) the
  /// checker holds -- window + unconfirmed segment ops, state-set entries,
  /// and the current segment's enumeration scratch (`extra`).  Witness
  /// chains are excluded (see CheckResult::max_resident_states).
  void bump_resident(std::size_t extra) {
    const std::size_t cur =
        window_.size() + closed_ops_ + alist_.size() + extra;
    if (cur > peak_resident_) peak_resident_ = cur;
  }

  const ObjectModel& model_;
  const CheckLimits limits_;

  // Open window + in-flight tracking.
  std::vector<StreamOp> window_;
  std::unordered_map<std::int64_t, std::size_t> open_ix_;  // in-flight only
  std::size_t in_flight_ = 0;
  Tick max_response_ = kNoTime;  // over responses since the last cut

  // Tentative segments awaiting confirmation (at most one between events).
  std::deque<std::vector<StreamOp>> closed_;
  std::size_t closed_ops_ = 0;

  // Forward state set across everything retired so far.
  std::vector<StateEntry> alist_;

  bool failed_ = false;
  std::string explanation_;
  std::size_t states_ = 0;
  std::size_t memo_hits_ = 0;
  std::size_t confirmed_cuts_ = 0;
  std::size_t segments_retired_ = 0;
  std::size_t ops_seen_ = 0;
  std::size_t completed_seen_ = 0;
  std::size_t max_window_ops_ = 0;
  std::size_t peak_resident_ = 0;
};

CheckResult Core::finalize_run() {
  CheckResult result;
  if (ops_seen_ == 0) {
    // Nothing was ever dispatched: the empty witness linearizes the empty
    // history (the offline checkers' trivial fast path).
    result.ok = true;
    result.early_exit = true;
    return result;
  }

  // Validate the last tentative cut: offline, a cut additionally requires
  // every pending invocation to come at or after the first completed
  // post-cut invocation.  All pending operations sit in the open window
  // (nothing was in flight at any trigger), so both sides of that test are
  // window-local.  Invalid (or trailing, with no completed operation after
  // it) means the offline segmentation never cut here: merge the segment
  // back into the window.  The merge preserves global and per-process
  // invocation order because every closed operation was invoked strictly
  // before the trigger and every window operation at or after it.
  if (!closed_.empty()) {
    Tick first_completed = kNoTime;
    Tick first_pending = kNoTime;
    for (const StreamOp& rec : window_) {
      Tick& slot = rec.completed() ? first_completed : first_pending;
      if (slot == kNoTime || rec.invoke < slot) slot = rec.invoke;
    }
    const bool valid =
        first_completed != kNoTime &&
        (first_pending == kNoTime || first_pending >= first_completed);
    std::vector<StreamOp> seg = std::move(closed_.front());
    closed_.pop_front();
    closed_ops_ -= seg.size();
    if (valid) {
      ++confirmed_cuts_;
      if (!failed_) advance(seg);
    } else {
      seg.insert(seg.end(), std::make_move_iterator(window_.begin()),
                 std::make_move_iterator(window_.end()));
      window_ = std::move(seg);
    }
  }

  result.segments = confirmed_cuts_ + 1;
  if (failed_) {
    result.explanation = explanation_;
    result.states_explored = states_;
    result.memo_hits = memo_hits_;
    result.max_resident_states = peak_resident_;
    return result;
  }

  // Search the final window from each surviving state-set entry in order;
  // the first success selects the same upstream final state -- and thus the
  // same witness -- as the offline search's backtracking would.
  std::vector<StreamOp> comp;
  std::vector<StreamOp> pend;
  for (StreamOp& rec : window_) {
    (rec.completed() ? comp : pend).push_back(std::move(rec));
  }
  // Offline pending order is trace order == token order (tokens index the
  // trace); window arrival order is invoke order, so re-sort.
  std::sort(pend.begin(), pend.end(),
            [](const StreamOp& a, const StreamOp& b) {
              return a.token < b.token;
            });

  FinalCtx fc(comp, pend);
  const StateEntry* winner = nullptr;
  for (const StateEntry& entry : alist_) {
    fc.frontier.assign(fc.ix.per_proc.size(), 0);
    fc.pending_taken.assign(pend.size(), false);
    fc.path.clear();
    Snapshot state = entry.state;
    if (fin_dfs(fc, state)) {
      winner = &entry;
      break;
    }
  }

  if (winner != nullptr) {
    result.ok = true;
    // Stitch the witness: retired-segment paths in order, then the final
    // window's.  Tokens map to history_with_pending indices by rank among
    // the completed tokens (the witness is a permutation of exactly those).
    std::vector<const ChainNode*> chain;
    for (const ChainNode* n = winner->chain.get(); n != nullptr;
         n = n->prev.get()) {
      chain.push_back(n);
    }
    std::vector<std::int64_t> tokens;
    tokens.reserve(completed_seen_);
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      tokens.insert(tokens.end(), (*it)->path.begin(), (*it)->path.end());
    }
    tokens.insert(tokens.end(), fc.path.begin(), fc.path.end());
    // Branch-local mismatches recorded on the way to a successful search
    // are not failures; report an explanation only without a witness.
    explanation_.clear();
    std::vector<std::int64_t> sorted = tokens;
    std::sort(sorted.begin(), sorted.end());
    result.witness.reserve(tokens.size());
    for (std::int64_t t : tokens) {
      result.witness.push_back(static_cast<std::size_t>(
          std::lower_bound(sorted.begin(), sorted.end(), t) -
          sorted.begin()));
    }
  }
  result.explanation = explanation_;
  result.states_explored = states_;
  result.memo_hits = memo_hits_;
  result.max_resident_states = peak_resident_;
  return result;
}

/// One tap event.  Invocations carry the operation; responses the return.
struct Event {
  bool is_invoke = false;
  std::int64_t token = 0;
  ProcessId proc = kNoProcess;
  Operation op;
  Value ret;
  Tick time = kNoTime;
};

/// Bounded single-producer single-consumer ring for the pipelined mode.
/// push() blocks the producer while full -- wall-clock backpressure only;
/// the simulator's event schedule never observes it.  kill() (consumer
/// died) turns push into a drop so a failed checker cannot wedge the run.
class EventRing {
 public:
  explicit EventRing(std::size_t capacity)
      : buf_(std::max<std::size_t>(capacity, 1)) {}

  void push(Event ev) {
    std::unique_lock<std::mutex> lk(m_);
    not_full_.wait(lk, [&] { return size_ < buf_.size() || dead_; });
    if (dead_) return;
    buf_[(head_ + size_) % buf_.size()] = std::move(ev);
    ++size_;
    lk.unlock();
    not_empty_.notify_one();
  }

  /// False once the ring is closed and drained (or killed).
  bool pop(Event& out) {
    std::unique_lock<std::mutex> lk(m_);
    not_empty_.wait(lk, [&] { return size_ > 0 || closed_; });
    if (size_ == 0) return false;
    out = std::move(buf_[head_]);
    head_ = (head_ + 1) % buf_.size();
    --size_;
    lk.unlock();
    not_full_.notify_one();
    return true;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lk(m_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  void kill() {
    {
      std::lock_guard<std::mutex> lk(m_);
      dead_ = true;
      closed_ = true;
      size_ = 0;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

 private:
  std::mutex m_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<Event> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  bool closed_ = false;
  bool dead_ = false;
};

}  // namespace

struct StreamingChecker::Impl {
  Core core;
  const bool pipelined;
  EventRing ring;
  std::thread worker;
  std::exception_ptr error;  // worker -> finalize; join() orders the read
  bool finalized = false;

  Impl(const ObjectModel& model, const StreamingCheckOptions& options)
      : core(model, options.limits),
        pipelined(options.jobs > 1),
        ring(options.ring_capacity) {
    if (pipelined) {
      worker = std::thread([this] { drain(); });
    }
  }

  ~Impl() {
    if (worker.joinable()) {
      ring.close();
      worker.join();
    }
  }

  void drain() {
    try {
      Event ev;
      while (ring.pop(ev)) apply(ev);
    } catch (...) {
      error = std::current_exception();
      ring.kill();
    }
  }

  void apply(const Event& ev) {
    if (ev.is_invoke) {
      core.invoke(ev.token, ev.proc, ev.op, ev.time);
    } else {
      core.response(ev.token, ev.ret, ev.time);
    }
  }

  void feed(Event ev) {
    if (!pipelined) {
      apply(ev);
      return;
    }
    ring.push(std::move(ev));
  }

  CheckResult finalize() {
    if (finalized) {
      throw std::logic_error("StreamingChecker::finalize called twice");
    }
    finalized = true;
    if (pipelined) {
      ring.close();
      worker.join();
      if (error) std::rethrow_exception(error);
    }
    return core.finalize_run();
  }
};

StreamingChecker::StreamingChecker(const ObjectModel& model,
                                   StreamingCheckOptions options)
    : impl_(std::make_unique<Impl>(model, options)) {}

StreamingChecker::~StreamingChecker() = default;

void StreamingChecker::attach(Simulator& sim) {
  Impl* impl = impl_.get();
  auto prev_invoke = sim.invoke_hook();
  auto prev_response = sim.response_hook();
  sim.set_invoke_hook(
      [impl, prev_invoke](const OperationRecord& rec) {
        if (prev_invoke) prev_invoke(rec);
        Event ev;
        ev.is_invoke = true;
        ev.token = rec.token;
        ev.proc = rec.proc;
        ev.op = rec.op;
        ev.time = rec.invoke_time;
        impl->feed(std::move(ev));
      });
  sim.set_response_hook(
      [impl, prev_response](const OperationRecord& rec) {
        if (prev_response) prev_response(rec);
        Event ev;
        ev.token = rec.token;
        ev.ret = rec.ret;
        ev.time = rec.response_time;
        impl->feed(std::move(ev));
      });
}

void StreamingChecker::on_invoke(const OperationRecord& rec) {
  Event ev;
  ev.is_invoke = true;
  ev.token = rec.token;
  ev.proc = rec.proc;
  ev.op = rec.op;
  ev.time = rec.invoke_time;
  impl_->feed(std::move(ev));
}

void StreamingChecker::on_response(const OperationRecord& rec) {
  Event ev;
  ev.token = rec.token;
  ev.ret = rec.ret;
  ev.time = rec.response_time;
  impl_->feed(std::move(ev));
}

CheckResult StreamingChecker::finalize() { return impl_->finalize(); }

std::size_t StreamingChecker::ops_seen() const { return impl_->core.ops_seen(); }
std::size_t StreamingChecker::segments_retired() const {
  return impl_->core.segments_retired();
}
std::size_t StreamingChecker::max_window_ops() const {
  return impl_->core.max_window_ops();
}
std::size_t StreamingChecker::max_resident_states() const {
  return impl_->core.max_resident_states();
}

CheckResult streaming_check_trace(const ObjectModel& model, const Trace& trace,
                                  const StreamingCheckOptions& options) {
  StreamingChecker checker(model, options);
  // Feed in (time, token, invoke-before-response) order.  Cut decisions are
  // insensitive to same-tick orderings, so any time-sorted replay matches
  // the live tap; invoke-before-response keeps a zero-latency operation's
  // own events well-formed, and the token tiebreak makes the replay a total
  // (deterministic) order.
  struct Ev {
    Tick time;
    std::int64_t token;
    int kind;  // 0 invoke, 1 response
    const OperationRecord* rec;
  };
  std::vector<Ev> events;
  events.reserve(trace.ops.size() * 2);
  for (const OperationRecord& rec : trace.ops) {
    if (rec.invoke_time == kNoTime) continue;  // never dispatched
    events.push_back(Ev{rec.invoke_time, rec.token, 0, &rec});
    if (rec.completed()) {
      events.push_back(Ev{rec.response_time, rec.token, 1, &rec});
    }
  }
  std::sort(events.begin(), events.end(), [](const Ev& a, const Ev& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.token != b.token) return a.token < b.token;
    return a.kind < b.kind;
  });
  for (const Ev& ev : events) {
    if (ev.kind == 0) {
      checker.on_invoke(*ev.rec);
    } else {
      checker.on_response(*ev.rec);
    }
  }
  return checker.finalize();
}

}  // namespace linbound
