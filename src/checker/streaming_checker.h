// Streaming online linearizability checking: bounded-memory verification of
// million-op runs *during* simulation.
//
// The offline segmented checker (segmented_checker.cpp) needs the whole
// history in RAM before it can even find the quiescent cuts.  The streaming
// checker consumes the operation stream as the simulator produces it
// (Simulator invoke/response hooks), detects quiescent cuts incrementally,
// and retires each confirmed segment eagerly -- so its resident state is
// O(open window), not O(history), and heavy-traffic runs get full
// verification instead of bound spot-checks.
//
// How it works (soundness argument in DESIGN.md, streaming section):
//
//   1. Online cut detection with deferred confirmation.  An in-flight
//      counter tracks invoked-but-unanswered operations.  An invocation
//      arriving at time t with nothing in flight and every response so far
//      strictly before t closes the current window as a *tentative* segment.
//      Tentative, because the offline cut condition also requires every
//      never-responding (pending) invocation to come at or after the first
//      completed post-cut invocation -- unknowable online.  The resolution:
//      a tentative cut is *confirmed* exactly when the next tentative cut
//      triggers (nothing in flight again proves the whole segment between
//      them completed, so no pending invocation can predate it), and the
//      final tentative cut is validated explicitly at finalize() -- merged
//      back into the open window if invalid.  Confirmed streaming cuts are
//      exactly segment_history's cuts.
//
//   2. Forward state-set threading.  The offline checker threads one object
//      state across a cut and backtracks into earlier segments when a later
//      one fails.  Retiring segments eagerly forbids backtracking, so the
//      streaming checker carries the whole frontier forward instead: an
//      ordered list of the *distinct* final states a prefix of segments can
//      reach, each entry keeping a witness-chain backpointer.  A confirmed
//      segment is fully enumerated from each entry in order (same candidate
//      order as the offline DFS, with a cross-entry visited memo standing in
//      for the offline dead memo); the run fails the moment a segment yields
//      no successor state.  Because the offline search's dead memo at a
//      downstream segment root deduplicates threaded states, it attempts
//      downstream searches in exactly this list's order -- which is why the
//      verdict and witness come out byte-identical to the offline checker.
//      (The *explanation* on failure is deterministic and non-empty but may
//      differ: the offline search interleaves downstream mismatches between
//      an upstream segment's final states, a traversal order eager
//      retirement deliberately gives up.  See DESIGN.md.)
//
//   3. Pipelining.  With jobs <= 1 the checker runs inline inside the
//      simulator hooks (how per-shard checking rides the PDES drain).  With
//      jobs > 1 the hooks only copy events into a bounded SPSC ring and a
//      dedicated checker thread drains it -- simulation and checking
//      overlap, and a full ring blocks the *producer's wall clock* only:
//      the simulated event schedule, and therefore the trace, is untouched.
//      The checker consumes the identical event sequence either way, so its
//      entire output is trivially jobs-invariant.
#pragma once

#include <cstddef>
#include <memory>

#include "checker/lin_checker.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "spec/object_model.h"

namespace linbound {

struct StreamingCheckOptions {
  /// One budget for the whole run, CheckLimits semantics (a single counter
  /// across every segment enumeration and the final-window search; the one
  /// throw site is detail::throw_state_budget_exceeded).
  CheckLimits limits;
  /// <= 1: check inline inside the hooks.  > 1: pipeline through the ring
  /// and a checker worker thread.  Verdict/witness/explanation identical at
  /// every value.
  int jobs = 1;
  /// Bounded SPSC ring capacity (events) for the pipelined mode.
  std::size_t ring_capacity = 4096;
};

/// Online checker for one object (one Simulator's operation stream).
/// Feed it with attach() -- which chains onto any hooks already installed
/// (core/driver.h listens for responses too) -- or manually via
/// on_invoke/on_response in simulated-time order; then finalize() exactly
/// once, after the run, to search the final open window (with any pending
/// invocations) and collect the CheckResult.
///
/// The returned witness is indexed like the offline checkers': positions in
/// the History that history_with_pending(trace) builds (completed
/// operations in trace order).
class StreamingChecker {
 public:
  explicit StreamingChecker(const ObjectModel& model,
                            StreamingCheckOptions options = {});
  ~StreamingChecker();

  StreamingChecker(const StreamingChecker&) = delete;
  StreamingChecker& operator=(const StreamingChecker&) = delete;

  /// Install the tap on `sim`, composing with hooks already present (they
  /// keep firing first).  The model must outlive the checker; the checker
  /// must outlive the simulator run (or the hooks must not fire again).
  void attach(Simulator& sim);

  /// Manual feed (replay drivers, tests): events must arrive in
  /// simulated-time order, each operation's invoke before its response.
  void on_invoke(const OperationRecord& rec);
  void on_response(const OperationRecord& rec);

  /// Drain the pipeline (jobs > 1), check the final open window against the
  /// pending invocations, and assemble the result.  Call exactly once; the
  /// checker is spent afterwards.  Rethrows a state-budget overrun here
  /// (pipelined mode) or from the offending hook (inline mode).
  CheckResult finalize();

  // --- measurement (stable once finalize() returned) ---
  std::size_t ops_seen() const;          ///< invocations consumed
  std::size_t segments_retired() const;  ///< confirmed segments enumerated
  std::size_t max_window_ops() const;    ///< largest open window (ops)
  /// Peak resident search state: open-window ops + unconfirmed segment ops
  /// + state-set entries + one segment's visited-memo scratch.  The
  /// O(window) number the bench gates (witness chains excluded -- they are
  /// the output; see CheckResult::max_resident_states).
  std::size_t max_resident_states() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Replay a finished trace through a StreamingChecker: events are fed in
/// (time, token, invoke-before-response) order, which reproduces the live
/// tap's segmentation exactly (cut decisions are insensitive to same-tick
/// orderings; DESIGN.md).  The differential anchor for tests and benches:
/// for any trace, verdict and witness equal
/// check_linearizable[_with_pending](model, history_with_pending(trace)...)
/// at every CheckOptions / StreamingCheckOptions value.
CheckResult streaming_check_trace(const ObjectModel& model, const Trace& trace,
                                  const StreamingCheckOptions& options = {});

}  // namespace linbound
