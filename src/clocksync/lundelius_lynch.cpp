#include "clocksync/lundelius_lynch.h"

#include <cstdlib>
#include <memory>
#include <stdexcept>

namespace linbound {

void LundeliusLynchProcess::on_start() {
  broadcast(make_msg<ClockReadingPayload>(local_time()));
}

void LundeliusLynchProcess::on_message(ProcessId /*from*/,
                                       const MessagePayload& payload) {
  const auto& msg = dynamic_cast<const ClockReadingPayload&>(payload);
  // est = (T_j + d - u/2) - local_time(), doubled to stay in integers:
  // 2*est = 2*T_j + 2*d - u - 2*local_time().
  doubled_estimate_sum_ +=
      2 * msg.sender_clock + 2 * timing().d - timing().u - 2 * local_time();
  ++heard_from_;
}

void LundeliusLynchProcess::on_invoke(std::int64_t /*token*/,
                                      const Operation& /*op*/) {
  throw std::logic_error("clock-sync processes take no object operations");
}

std::vector<Tick> run_lundelius_lynch(const SystemTiming& timing,
                                      std::vector<Tick> clock_offsets,
                                      std::shared_ptr<DelayPolicy> delays) {
  const int n = static_cast<int>(clock_offsets.size());
  SimConfig config;
  config.timing = timing;
  config.clock_offsets = std::move(clock_offsets);
  config.delays = std::move(delays);
  Simulator sim(std::move(config));

  std::vector<LundeliusLynchProcess*> procs;
  procs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto proc = std::make_unique<LundeliusLynchProcess>();
    procs.push_back(proc.get());
    sim.add_process(std::move(proc));
  }
  sim.start();
  if (!sim.run()) throw std::runtime_error("clock sync run exceeded event cap");

  std::vector<Tick> scaled;
  scaled.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (!procs[static_cast<std::size_t>(i)]->done()) {
      throw std::runtime_error("clock sync did not hear from every process");
    }
    const Tick c = sim.config().clock_offsets[static_cast<std::size_t>(i)];
    scaled.push_back(2 * static_cast<Tick>(n) * c +
                     procs[static_cast<std::size_t>(i)]->doubled_estimate_sum());
  }
  return scaled;
}

Tick worst_skew_scaled(const std::vector<Tick>& scaled_adjusted) {
  Tick worst = 0;
  for (std::size_t i = 0; i < scaled_adjusted.size(); ++i) {
    for (std::size_t j = i + 1; j < scaled_adjusted.size(); ++j) {
      const Tick skew = std::llabs(scaled_adjusted[i] - scaled_adjusted[j]);
      if (skew > worst) worst = skew;
    }
  }
  return worst;
}

}  // namespace linbound
