// Lundelius-Lynch clock synchronization -- the substrate Chapter V assumes.
//
// The paper's Algorithm 1 runs on clocks "synchronized to within the
// optimal eps = (1 - 1/n) u" and cites Lundelius & Lynch [6] for that
// optimum.  This module implements their averaging algorithm so the
// premise is itself reproducible:
//
//   * every process broadcasts its clock reading;
//   * a receiver estimates the sender's offset relative to itself assuming
//     the delay was d - u/2 (midpoint of [d-u, d]; each estimate is off by
//     at most u/2);
//   * after hearing from everyone, the process adjusts its clock by the
//     average of the n estimates (its own difference, 0, included).
//
// Worst-case skew of the adjusted clocks is (1 - 1/n) u, and no algorithm
// does better.  To keep the analysis exact in integer ticks, corrections
// are kept scaled by 2n (avoiding both the /2 of the midpoint and the /n of
// the average): adjusted clock (scaled) = 2n * (real + c_i) + 2 * sum_est,
// where sum_est is twice the sum of midpoint estimates.
#pragma once

#include <vector>

#include "sim/process.h"
#include "sim/simulator.h"

namespace linbound {

struct ClockReadingPayload final : MessagePayload {
  Tick sender_clock = 0;
  explicit ClockReadingPayload(Tick t) : sender_clock(t) {}
};

class LundeliusLynchProcess final : public Process {
 public:
  void on_start() override;
  void on_message(ProcessId from, const MessagePayload& payload) override;
  void on_invoke(std::int64_t token, const Operation& op) override;

  /// Sum over all other processes j of 2*(estimated clock_j - clock_i):
  /// est_j = (T_j + d - u/2) - local_receive_time, kept doubled so it is an
  /// exact integer.  Valid once done().
  Tick doubled_estimate_sum() const { return doubled_estimate_sum_; }

  bool done() const { return heard_from_ == process_count() - 1; }

 private:
  Tick doubled_estimate_sum_ = 0;
  int heard_from_ = 0;
};

/// Run the synchronization round over `n` processes with true offsets
/// `clock_offsets` and the given delay policy; returns the *scaled* adjusted
/// clock values A_i = 2n*c_i + 2*sum_est_i.  The achieved skew between i and
/// j is |A_i - A_j| / (2n) ticks; lundelius_lynch_worst_skew_scaled compares
/// against the optimum without any division.
std::vector<Tick> run_lundelius_lynch(const SystemTiming& timing,
                                      std::vector<Tick> clock_offsets,
                                      std::shared_ptr<DelayPolicy> delays);

/// max_{i,j} |A_i - A_j| from the scaled adjusted clocks.
Tick worst_skew_scaled(const std::vector<Tick>& scaled_adjusted);

/// The Lundelius-Lynch guarantee, in the same scale: (1 - 1/n) u ticks
/// scaled by 2n = 2 (n-1) u.
inline Tick optimal_skew_scaled(int n, const SystemTiming& timing) {
  return 2 * static_cast<Tick>(n - 1) * timing.u;
}

}  // namespace linbound
