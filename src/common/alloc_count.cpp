#include "common/alloc_count.h"

#include <atomic>
#include <cstdlib>
#include <new>
#include <execinfo.h>
#include <unistd.h>

namespace linbound {
namespace {

// Relaxed is enough: the counters order nothing, and the readers below are
// same-thread with the allocations they bracket (run segments are serial).
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};
std::atomic<bool> g_trap{false};

}  // namespace

bool alloc_counting_enabled() {
#ifdef COUNT_ALLOCS
  return true;
#else
  return false;
#endif
}

std::uint64_t heap_allocs() { return g_allocs.load(std::memory_order_relaxed); }
std::uint64_t heap_frees() { return g_frees.load(std::memory_order_relaxed); }
void set_alloc_trap(bool on) { g_trap.store(on, std::memory_order_relaxed); }

}  // namespace linbound

#ifdef COUNT_ALLOCS

namespace {

void* counted_alloc(std::size_t size) {
  if (linbound::g_trap.load(std::memory_order_relaxed)) {
    void* frames[32];
    const int n = backtrace(frames, 32);
    backtrace_symbols_fd(frames, n, STDERR_FILENO);
    _exit(42);
  }
  linbound::g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  linbound::g_allocs.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t padded = (size + align - 1) / align * align;
  void* p = std::aligned_alloc(align, padded ? padded : align);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  linbound::g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}

#endif  // COUNT_ALLOCS
