// Process-wide heap-allocation counters for the allocation-free-steady-state
// contract (DESIGN.md section 15).
//
// The companion alloc_count.cpp, compiled with -DCOUNT_ALLOCS into the
// linbound_alloccount static library, replaces the global operator
// new/delete family with counting forwarders to malloc/free.  Binaries that
// link that library (tests/test_alloc_free.cpp, bench_throughput,
// bench_shard) can then snapshot heap_allocs() around a run segment and
// assert -- or report -- that the hot path performed zero allocations.
// Everything else links the normal allocator and pays nothing.
//
// Note for linkers, not humans: the interposing definitions live in the same
// translation unit as these accessors, so calling heap_allocs() is what pulls
// the replacement operators out of the static library.
#pragma once

#include <cstdint>

namespace linbound {

/// True when the binary was built with the counting interposer
/// (-DCOUNT_ALLOCS on linbound_alloccount); callers should skip zero-alloc
/// assertions when false instead of vacuously passing on garbage counters.
bool alloc_counting_enabled();

/// Number of global operator new / new[] calls (all variants) since process
/// start.  Monotonic; 0 forever when the interposer is compiled out.
std::uint64_t heap_allocs();

/// Number of global operator delete / delete[] calls that freed a non-null
/// pointer.  0 forever when the interposer is compiled out.
std::uint64_t heap_frees();

/// Debug aid: while on, the very next counted allocation dumps a raw
/// backtrace to stderr and exits the process with status 42 -- turning a
/// nonzero steady-state count into a pinpointed call site.  No-op when the
/// interposer is compiled out.
void set_alloc_trap(bool on);

}  // namespace linbound
