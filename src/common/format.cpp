#include "common/format.h"

#include <algorithm>
#include <sstream>

namespace linbound {

std::string format_ticks(Tick t) {
  if (t == kNoTime) return "-";
  return std::to_string(t) + "us";
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << " | ";
      os << pad_right(row[c], widths[c]);
    }
    os << "\n";
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c) os << "-+-";
    os << std::string(widths[c], '-');
  }
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace linbound
