// Small text-formatting helpers shared by traces, the harness table
// renderer and the bench binaries.
#pragma once

#include <string>
#include <vector>

#include "common/time.h"

namespace linbound {

/// Render a Tick count as microseconds, e.g. "1500us".
std::string format_ticks(Tick t);

/// Left-/right-pad to a column width.
std::string pad_right(const std::string& s, std::size_t width);
std::string pad_left(const std::string& s, std::size_t width);

/// Join strings with a separator.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// An ASCII table with a header row, used by every bench binary that
/// regenerates one of the paper's tables.  Column widths auto-size.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Render with a separator line under the header, e.g.
  ///   operation | lower bound | upper bound | measured
  ///   ----------+-------------+-------------+---------
  ///   write     | 300us       | 300us       | 300us
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace linbound
