#include "common/intern.h"

#include <mutex>
#include <string_view>
#include <unordered_map>

namespace linbound {
namespace {

struct Pool {
  std::mutex mu;
  // Keys view into the pooled strings themselves; a shared_ptr keeps each
  // string alive for the life of the process, so the views never dangle.
  std::unordered_map<std::string_view, std::shared_ptr<const std::string>> map;
};

Pool& pool() {
  static Pool* p = new Pool;  // leaked: interned strings outlive all users
  return *p;
}

}  // namespace

std::shared_ptr<const std::string> intern_string(std::string s) {
  Pool& p = pool();
  std::lock_guard<std::mutex> lock(p.mu);
  auto it = p.map.find(std::string_view(s));
  if (it != p.map.end()) return it->second;
  auto stored = std::make_shared<const std::string>(std::move(s));
  p.map.emplace(std::string_view(*stored), stored);
  return stored;
}

std::size_t intern_pool_size() {
  Pool& p = pool();
  std::lock_guard<std::mutex> lock(p.mu);
  return p.map.size();
}

}  // namespace linbound
