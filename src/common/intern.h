// A process-wide interning pool for payload strings.
//
// Operation arguments repeat heavily: a sweep replays the same symbolic
// payloads ("a", "b", ...) across thousands of runs, and the checker copies
// them on every branch.  Interning collapses every occurrence of a string
// into one shared immutable allocation, which makes Value copies refcount
// bumps and makes string equality a pointer compare on the hot path.
//
// The pool is guarded by a mutex: it is the only mutable state shared
// between the worker threads of a parallel sweep (everything else is built
// per run from seed-derived values), and interning happens only when a new
// std::string enters the system -- never on copy, compare or hash.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

namespace linbound {

/// Return the pooled handle for `s`, inserting it on first sight.  Equal
/// strings always yield the same pointer, so pointer equality implies (and
/// with interning as the only producer, coincides with) string equality.
std::shared_ptr<const std::string> intern_string(std::string s);

/// Number of distinct strings currently pooled (bench/diagnostics).
std::size_t intern_pool_size();

}  // namespace linbound
