#include "common/log.h"

#include <cstdio>

namespace linbound {
namespace {
LogLevel g_level = LogLevel::kNone;
}

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

namespace internal {
void log_line(LogLevel level, const std::string& msg) {
  const char* tag = level == LogLevel::kError  ? "E"
                    : level == LogLevel::kInfo ? "I"
                                               : "D";
  std::fprintf(stderr, "[%s] %s\n", tag, msg.c_str());
}
}  // namespace internal

}  // namespace linbound
