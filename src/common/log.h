// Minimal leveled logging.  Off by default (benchmarks must stay quiet);
// tests and examples can raise the level to trace simulator internals.
#pragma once

#include <sstream>
#include <string>

namespace linbound {

enum class LogLevel { kNone = 0, kError = 1, kInfo = 2, kDebug = 3 };

/// Global log threshold; messages above it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace internal {
void log_line(LogLevel level, const std::string& msg);
}

/// Usage: LINBOUND_LOG(kDebug) << "delivered " << msg.id;
#define LINBOUND_LOG(level)                                               \
  if (::linbound::LogLevel::level <= ::linbound::log_level())             \
  ::linbound::internal::LogStream(::linbound::LogLevel::level)

namespace internal {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  template <typename T>
  LogStream& operator<<(const T& x) {
    os_ << x;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace internal

}  // namespace linbound
