#include "common/parallel.h"

#include <pthread.h>

#include <limits.h>

namespace linbound {

int resolve_jobs(int requested) {
  if (requested < 0) return 1;
  if (requested == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    requested = hw ? static_cast<int>(hw) : 1;
  }
  return requested > kMaxJobs ? kMaxJobs : requested;
}

namespace {

struct StackCall {
  const std::function<void()>* fn;
  std::exception_ptr error;
};

extern "C" void* stack_call_trampoline(void* arg) {
  StackCall* call = static_cast<StackCall*>(arg);
  try {
    (*call->fn)();
  } catch (...) {
    call->error = std::current_exception();
  }
  return nullptr;
}

}  // namespace

void run_on_stack(std::size_t stack_bytes, const std::function<void()>& fn) {
  StackCall call{&fn, nullptr};
  bool spawned = false;
  pthread_attr_t attr;
  if (pthread_attr_init(&attr) == 0) {
    std::size_t bytes = stack_bytes;
#ifdef PTHREAD_STACK_MIN
    if (bytes < static_cast<std::size_t>(PTHREAD_STACK_MIN)) {
      bytes = static_cast<std::size_t>(PTHREAD_STACK_MIN);
    }
#endif
    // pthread_attr_setstacksize wants page granularity.
    constexpr std::size_t kPage = 4096;
    bytes = (bytes + kPage - 1) & ~(kPage - 1);
    pthread_t tid;
    if (pthread_attr_setstacksize(&attr, bytes) == 0 &&
        pthread_create(&tid, &attr, stack_call_trampoline, &call) == 0) {
      pthread_join(tid, nullptr);
      spawned = true;
    }
    pthread_attr_destroy(&attr);
  }
  if (!spawned) fn();  // best effort: the caller's own stack
  if (call.error) std::rethrow_exception(call.error);
}

}  // namespace linbound
