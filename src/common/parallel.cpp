#include "common/parallel.h"

namespace linbound {

int resolve_jobs(int requested) {
  if (requested < 0) return 1;
  if (requested == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    requested = hw ? static_cast<int>(hw) : 1;
  }
  return requested > kMaxJobs ? kMaxJobs : requested;
}

}  // namespace linbound
