// Deterministic parallel execution of independent tasks.
//
// Two layers share this executor:
//
//   * the harness sweeps: each (config, seed) cell builds its own Rng,
//     delay/fault policies and Simulator from values derived purely from
//     the cell's indices, runs one deterministic simulation, and yields a
//     result;
//   * the segmented linearizability checker (checker/segmented_checker.cpp):
//     each task explores one disjoint top-level prefix of the WGL decision
//     tree with a private memo table, and the caller merges task results in
//     canonical prefix order.
//
// The executor exploits exactly that shape and nothing more:
//
//   * the task function is called once per index into a pre-sized result
//     vector -- which task runs on which thread (or in which order) cannot
//     affect any result;
//   * callers aggregate the results serially, in canonical index order,
//     *after* the map returns -- so the aggregate is byte-identical to the
//     serial run at any --jobs value (regression-tested in
//     tests/test_parallel_sweep.cpp and tests/test_segmented_checker.cpp);
//   * the only mutable state shared between workers is the string interning
//     pool (common/intern.h), which is mutex-guarded and value-idempotent,
//     plus whatever monotonic atomics (budget counters, cancellation
//     flags) the caller threads through its task closures.
//
// Exceptions: the first task exception (by completion order) is captured
// and rethrown on the calling thread after all workers join.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace linbound {

/// Hard ceiling for resolve_jobs: requests beyond this are clamped.  Far
/// above any sane worker count, but it keeps a typo'd --jobs 1000000 from
/// spawning a thread per unit of enthusiasm.
inline constexpr int kMaxJobs = 256;

/// Clamp a --jobs request to something sane: 0 means "one per hardware
/// thread", negatives mean serial, anything above kMaxJobs is clamped to
/// kMaxJobs.  Shared by the sweep harness and the segmented checker.
int resolve_jobs(int requested);

/// Run `fn` to completion on a freshly created thread carrying an explicitly
/// sized stack, then rethrow its exception (if any) on the caller.  The
/// deep-recursion escape hatch: the segmented linearizability checker
/// recurses once per linearized operation (its dfs crosses segment
/// boundaries), so a million-op history needs a few hundred MB of stack --
/// far past the ~8 MB a default thread carries.  The reservation is virtual
/// address space; pages commit only as the recursion actually deepens.
/// Sizes below the platform minimum are rounded up, and if the thread
/// cannot be created at all the function runs inline as a best effort.
void run_on_stack(std::size_t stack_bytes, const std::function<void()>& fn);

/// Stack bytes for a search whose recursion depth is proportional to `ops`,
/// or 0 when the platform default thread stack suffices.  Budget is 2 KiB
/// per operation: dfs frames measure ~250 bytes at -O2, so this carries 8x
/// headroom -- enough for sanitizer builds, whose redzones inflate every
/// frame severalfold.  The reservation is address space, not memory.
inline std::size_t deep_search_stack_bytes(std::size_t ops) {
  const std::size_t need = ops * 2048;
  return need <= (std::size_t{4} << 20) ? 0 : need;
}

class ParallelSweepExecutor {
 public:
  /// jobs <= 1 runs everything inline on the calling thread (the serial
  /// baseline, and the default for every sweep).  A nonzero
  /// `worker_stack_bytes` gives every pool thread an explicitly sized stack
  /// (see run_on_stack) -- required when tasks recurse proportionally to
  /// their input, as the segmented checker's subtree tasks do.
  explicit ParallelSweepExecutor(int jobs, std::size_t worker_stack_bytes = 0)
      : jobs_(jobs < 1 ? 1 : jobs), worker_stack_bytes_(worker_stack_bytes) {}

  int jobs() const { return jobs_; }

  /// Evaluate fn(0..count-1) into a vector, spreading the indices over the
  /// worker pool.  R must be default-constructible and movable.
  template <typename R, typename Fn>
  std::vector<R> map(std::size_t count, Fn&& fn) const {
    std::vector<R> out(count);
    if (jobs_ <= 1 || count <= 1) {
      for (std::size_t i = 0; i < count; ++i) out[i] = fn(i);
      return out;
    }
    std::atomic<std::size_t> next{0};
    std::mutex error_mu;
    std::exception_ptr first_error;
    auto worker = [&] {
      while (true) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          out[i] = fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
      }
    };
    const std::size_t threads =
        std::min(static_cast<std::size_t>(jobs_), count);
    std::vector<std::thread> pool;
    pool.reserve(threads);
    if (worker_stack_bytes_ > 0) {
      // The std::thread is only a launcher; the task loop runs on a pthread
      // with the requested stack (worker already traps its own exceptions).
      const std::size_t stack = worker_stack_bytes_;
      for (std::size_t t = 0; t < threads; ++t) {
        pool.emplace_back([stack, worker] { run_on_stack(stack, worker); });
      }
    } else {
      for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    }
    for (std::thread& t : pool) t.join();
    if (first_error) std::rethrow_exception(first_error);
    return out;
  }

 private:
  int jobs_;
  std::size_t worker_stack_bytes_ = 0;
};

}  // namespace linbound
