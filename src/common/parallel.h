// Deterministic parallel execution of independent tasks.
//
// Two layers share this executor:
//
//   * the harness sweeps: each (config, seed) cell builds its own Rng,
//     delay/fault policies and Simulator from values derived purely from
//     the cell's indices, runs one deterministic simulation, and yields a
//     result;
//   * the segmented linearizability checker (checker/segmented_checker.cpp):
//     each task explores one disjoint top-level prefix of the WGL decision
//     tree with a private memo table, and the caller merges task results in
//     canonical prefix order.
//
// The executor exploits exactly that shape and nothing more:
//
//   * the task function is called once per index into a pre-sized result
//     vector -- which task runs on which thread (or in which order) cannot
//     affect any result;
//   * callers aggregate the results serially, in canonical index order,
//     *after* the map returns -- so the aggregate is byte-identical to the
//     serial run at any --jobs value (regression-tested in
//     tests/test_parallel_sweep.cpp and tests/test_segmented_checker.cpp);
//   * the only mutable state shared between workers is the string interning
//     pool (common/intern.h), which is mutex-guarded and value-idempotent,
//     plus whatever monotonic atomics (budget counters, cancellation
//     flags) the caller threads through its task closures.
//
// Exceptions: the first task exception (by completion order) is captured
// and rethrown on the calling thread after all workers join.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace linbound {

/// Hard ceiling for resolve_jobs: requests beyond this are clamped.  Far
/// above any sane worker count, but it keeps a typo'd --jobs 1000000 from
/// spawning a thread per unit of enthusiasm.
inline constexpr int kMaxJobs = 256;

/// Clamp a --jobs request to something sane: 0 means "one per hardware
/// thread", negatives mean serial, anything above kMaxJobs is clamped to
/// kMaxJobs.  Shared by the sweep harness and the segmented checker.
int resolve_jobs(int requested);

class ParallelSweepExecutor {
 public:
  /// jobs <= 1 runs everything inline on the calling thread (the serial
  /// baseline, and the default for every sweep).
  explicit ParallelSweepExecutor(int jobs) : jobs_(jobs < 1 ? 1 : jobs) {}

  int jobs() const { return jobs_; }

  /// Evaluate fn(0..count-1) into a vector, spreading the indices over the
  /// worker pool.  R must be default-constructible and movable.
  template <typename R, typename Fn>
  std::vector<R> map(std::size_t count, Fn&& fn) const {
    std::vector<R> out(count);
    if (jobs_ <= 1 || count <= 1) {
      for (std::size_t i = 0; i < count; ++i) out[i] = fn(i);
      return out;
    }
    std::atomic<std::size_t> next{0};
    std::mutex error_mu;
    std::exception_ptr first_error;
    auto worker = [&] {
      while (true) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          out[i] = fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
      }
    };
    const std::size_t threads =
        std::min(static_cast<std::size_t>(jobs_), count);
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
    if (first_error) std::rethrow_exception(first_error);
    return out;
  }

 private:
  int jobs_;
};

}  // namespace linbound
