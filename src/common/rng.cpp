#include "common/rng.h"

namespace linbound {
namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Debiased modulo (rejection sampling on the top of the range).
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit && limit != 0);
  return lo + static_cast<std::int64_t>(x % span);
}

double Rng::uniform01() {
  // 53 random mantissa bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

Rng Rng::split(std::uint64_t salt) {
  std::uint64_t mix = next_u64() ^ (salt * 0x9e3779b97f4a7c15ull + 0x1234567);
  return Rng(mix);
}

SplitRng::SplitRng(std::uint64_t root_seed) {
  diffused_root_ = SplitMix64(root_seed).next();
}

std::uint64_t SplitRng::stream_seed(std::uint64_t stream_id) const {
  // One more SplitMix64 step over (diffused root XOR golden-ratio-spread
  // stream id).  Each step of SplitMix64 is a bijection on 64-bit words, so
  // two streams of the same family collide only if their ids do.
  return SplitMix64(diffused_root_ ^ (stream_id * 0x9e3779b97f4a7c15ull + 0x1d8e4e27c47d124full)).next();
}

}  // namespace linbound
