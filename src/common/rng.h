// Deterministic pseudo-random number generation.
//
// Every randomized component (delay policies, workload generators, fuzz
// tests) takes an explicit 64-bit seed and owns its own generator, so a run
// is fully reproducible from its configuration.  We implement
// SplitMix64 (for seeding) and xoshiro256++ (for the stream) rather than
// using std::mt19937 so that streams are identical across standard-library
// implementations.
#pragma once

#include <cstdint>

#include "common/time.h"

namespace linbound {

/// SplitMix64: stateless-seedable 64-bit generator used to expand a single
/// seed into the 256-bit xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// xoshiro256++ by Blackman & Vigna -- fast, high-quality, tiny state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit word.
  std::uint64_t next_u64();

  /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// Uniform Tick in [lo, hi] (inclusive); convenience alias for delays.
  Tick uniform_tick(Tick lo, Tick hi) { return uniform(lo, hi); }

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform01() < p; }

  /// Split off an independent stream (hash of the current stream + salt);
  /// used to give each process / pair its own generator deterministically.
  Rng split(std::uint64_t salt);

 private:
  std::uint64_t s_[4];
};

}  // namespace linbound
