// Deterministic pseudo-random number generation.
//
// Every randomized component (delay policies, workload generators, fuzz
// tests) takes an explicit 64-bit seed and owns its own generator, so a run
// is fully reproducible from its configuration.  We implement
// SplitMix64 (for seeding) and xoshiro256++ (for the stream) rather than
// using std::mt19937 so that streams are identical across standard-library
// implementations.
#pragma once

#include <cstdint>

#include "common/time.h"

namespace linbound {

/// SplitMix64: stateless-seedable 64-bit generator used to expand a single
/// seed into the 256-bit xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// xoshiro256++ by Blackman & Vigna -- fast, high-quality, tiny state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit word.
  std::uint64_t next_u64();

  /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// Uniform Tick in [lo, hi] (inclusive); convenience alias for delays.
  Tick uniform_tick(Tick lo, Tick hi) { return uniform(lo, hi); }

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform01() < p; }

  /// Split off an independent stream (hash of the current stream + salt);
  /// used to give each process / pair its own generator deterministically.
  ///
  /// NOTE: split() consumes one draw from *this*, so the derived stream
  /// depends on how many draws (and splits) preceded it -- two call sites
  /// splitting the same salt in different orders get different streams.
  /// When streams must be a pure function of (root seed, stream id) --
  /// per-shard seeding, per-client arrival schedules, per-process churn --
  /// use SplitRng below instead.
  Rng split(std::uint64_t salt);

 private:
  std::uint64_t s_[4];
};

/// A family of disjoint deterministic streams keyed by a 64-bit stream id.
///
/// This promotes the disjoint-RNG-stream idiom used ad hoc since the churn
/// schedules (per-process streams) and the open-loop workload (per-client
/// arrival streams) into one utility with the property those call sites
/// actually rely on: `stream(id)` is a *pure function* of (root seed, id) --
/// independent of call order, of other ids drawn, and of how much of any
/// other stream has been consumed.  Adding a shard/client/process never
/// reshuffles the streams of the others.
///
/// Derivation: the root seed is diffused once through SplitMix64, then each
/// stream id is mixed in with a second SplitMix64 pass whose output seeds a
/// fresh xoshiro256++ generator.  Distinct ids give distinct seeds unless
/// SplitMix64 collides (a bijection per step, so collisions would require
/// identical mixed inputs); the determinism/collision tests in
/// tests/test_rng.cpp pin both properties.
class SplitRng {
 public:
  explicit SplitRng(std::uint64_t root_seed);

  /// The 64-bit seed of stream `stream_id` (for call sites that need to
  /// forward a plain seed, e.g. policy constructors).
  std::uint64_t stream_seed(std::uint64_t stream_id) const;

  /// An independent generator for `stream_id`.
  Rng stream(std::uint64_t stream_id) const { return Rng(stream_seed(stream_id)); }

 private:
  std::uint64_t diffused_root_;
};

}  // namespace linbound
