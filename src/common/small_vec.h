// A vector with inline storage for its first N elements.
//
// Operation argument lists and register-history values are almost always
// 0..2 elements long (reg::write carries one, reg::cas two), yet every
// std::vector copy of one pays a heap round-trip.  SmallVec keeps up to N
// elements in the object itself -- copying a small list allocates nothing
// -- and spills to a heap buffer only past N, with std::vector semantics
// for everything the call sites use (push_back/emplace_back, at/[],
// begin/end, ==, lexicographic <, initializer lists).
//
// The inline buffer is raw storage, so SmallVec<T, N> may name an
// incomplete T (e.g. `using List = SmallVec<Value, 2>` inside Value);
// sizeof(T) is only needed where the template is actually instantiated,
// which is always a point where T is complete.
#pragma once

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <new>
#include <stdexcept>
#include <type_traits>
#include <utility>

namespace linbound {

template <typename T, std::size_t N>
class SmallVec {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;
  using size_type = std::size_t;

  SmallVec() noexcept {}

  SmallVec(std::initializer_list<T> xs) {
    reserve(xs.size());
    for (const T& x : xs) unchecked_emplace(x);
  }

  SmallVec(const SmallVec& o) {
    reserve(o.size_);
    for (const T& x : o) unchecked_emplace(x);
  }

  SmallVec(SmallVec&& o) noexcept(std::is_nothrow_move_constructible_v<T>) {
    take(o);
  }

  SmallVec& operator=(const SmallVec& o) {
    if (this == &o) return *this;
    clear();
    reserve(o.size_);
    for (const T& x : o) unchecked_emplace(x);
    return *this;
  }

  SmallVec& operator=(SmallVec&& o) noexcept(
      std::is_nothrow_move_constructible_v<T>) {
    if (this == &o) return *this;
    clear();
    if (on_heap()) {
      ::operator delete(static_cast<void*>(data_));
      data_ = inline_ptr();
      cap_ = N;
    }
    take(o);
    return *this;
  }

  ~SmallVec() {
    clear();
    if (on_heap()) ::operator delete(static_cast<void*>(data_));
  }

  T* begin() noexcept { return data_; }
  T* end() noexcept { return data_ + size_; }
  const T* begin() const noexcept { return data_; }
  const T* end() const noexcept { return data_ + size_; }
  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t capacity() const noexcept { return cap_; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& at(std::size_t i) {
    if (i >= size_) throw std::out_of_range("SmallVec::at");
    return data_[i];
  }
  const T& at(std::size_t i) const {
    if (i >= size_) throw std::out_of_range("SmallVec::at");
    return data_[i];
  }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  void clear() noexcept {
    for (std::size_t i = size_; i > 0; --i) data_[i - 1].~T();
    size_ = 0;
  }

  void reserve(std::size_t n) {
    if (n > cap_) grow_to(n);
  }

  void push_back(const T& x) { emplace_back(x); }
  void push_back(T&& x) { emplace_back(std::move(x)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == cap_) grow_to(cap_ * 2);
    return unchecked_emplace(std::forward<Args>(args)...);
  }

  void pop_back() { data_[--size_].~T(); }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator!=(const SmallVec& a, const SmallVec& b) {
    return !(a == b);
  }
  friend bool operator<(const SmallVec& a, const SmallVec& b) {
    return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                        b.end());
  }

 private:
  T* inline_ptr() noexcept { return reinterpret_cast<T*>(inline_); }
  bool on_heap() const noexcept {
    return data_ != reinterpret_cast<const T*>(inline_);
  }

  template <typename... Args>
  T& unchecked_emplace(Args&&... args) {
    return *::new (static_cast<void*>(data_ + size_++))
        T(std::forward<Args>(args)...);
  }

  void grow_to(std::size_t n) {
    static_assert(alignof(T) <= __STDCPP_DEFAULT_NEW_ALIGNMENT__,
                  "over-aligned T needs aligned operator new");
    T* fresh = static_cast<T*>(::operator new(n * sizeof(T)));
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(std::move(data_[i]));
      data_[i].~T();
    }
    if (on_heap()) ::operator delete(static_cast<void*>(data_));
    data_ = fresh;
    cap_ = n;
  }

  /// Steal `o`'s contents into *this.  Precondition: *this is empty and
  /// inline-backed (fresh, or just reset by the move-assign path).
  void take(SmallVec& o) noexcept(std::is_nothrow_move_constructible_v<T>) {
    if (o.on_heap()) {
      data_ = o.data_;
      size_ = o.size_;
      cap_ = o.cap_;
      o.data_ = o.inline_ptr();
      o.size_ = 0;
      o.cap_ = N;
    } else {
      for (std::size_t i = 0; i < o.size_; ++i) {
        ::new (static_cast<void*>(data_ + i)) T(std::move(o.data_[i]));
        o.data_[i].~T();
      }
      size_ = o.size_;
      o.size_ = 0;
    }
  }

  T* data_ = inline_ptr();
  std::size_t size_ = 0;
  std::size_t cap_ = N;
  alignas(T) unsigned char inline_[N * sizeof(T)];
};

}  // namespace linbound
