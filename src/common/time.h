// Virtual-time primitives.
//
// The whole system runs on integer virtual time: 1 Tick == 1 microsecond of
// simulated real time.  All of the paper's quantities (message delay upper
// bound d, uncertainty u, clock skew bound eps, the accessor/mutator
// trade-off parameter X) are expressed in Ticks, so every time-shift
// computation in src/shift is exact integer arithmetic -- no floating point,
// no rounding, and admissibility checks are decidable equalities.
#pragma once

#include <cstdint>
#include <limits>

namespace linbound {

/// One tick of virtual time (1 simulated microsecond).  Used both for
/// absolute time points and for durations; the distinction is kept by
/// variable naming (``*_time`` vs ``*_delay``/``*_delta``).
using Tick = std::int64_t;

/// Sentinel for "no time" / unset timers (the paper's bottom value for a
/// timer variable).
inline constexpr Tick kNoTime = std::numeric_limits<Tick>::min();

/// Largest representable time, used as an "until forever" horizon.
inline constexpr Tick kTimeInfinity = std::numeric_limits<Tick>::max();

/// Identifier of a process in the system; processes are numbered 0..n-1.
using ProcessId = std::int32_t;

/// Sentinel process id (e.g. "no sender" for locally generated events).
inline constexpr ProcessId kNoProcess = -1;

/// Timing parameters of the partially synchronous system, exactly as in the
/// paper's model (Chapter III): every message delay lies in
/// [d - u, d] and the pairwise clock skew is at most eps.
struct SystemTiming {
  Tick d = 1000;    ///< message delay upper bound
  Tick u = 400;     ///< message delay uncertainty (delays lie in [d-u, d])
  Tick eps = 100;   ///< clock skew upper bound (|c_i - c_j| <= eps)

  constexpr Tick min_delay() const { return d - u; }
  constexpr Tick max_delay() const { return d; }

  /// True when ``delay`` is admissible for this system.
  constexpr bool delay_admissible(Tick delay) const {
    return delay >= d - u && delay <= d;
  }

  /// m = min{eps, u, d/3}: the additive term in the Theorem C.1 / E.1
  /// lower bounds.  d/3 uses integer division; the paper's proofs only need
  /// m <= d/3 so flooring is sound.
  constexpr Tick m() const {
    Tick m = eps;
    if (u < m) m = u;
    if (d / 3 < m) m = d / 3;
    return m;
  }

  /// Optimal achievable clock skew for n processes: (1 - 1/n) * u
  /// (Lundelius & Lynch).  Computed as u - u/n in exact arithmetic when u is
  /// divisible by n; callers that need exactness pick such parameters.
  constexpr Tick optimal_skew(int n) const { return u - u / n; }

  constexpr bool valid() const { return d > 0 && u >= 0 && u <= d && eps >= 0; }
};

}  // namespace linbound
