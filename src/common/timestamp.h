// Lamport-style operation timestamps, exactly as in the paper's Algorithm 1:
// a timestamp is the pair <clock_time, process_id>, compared
// lexicographically.  Uniqueness among concurrently pending operations is
// guaranteed because a process has at most one pending operation per clock
// instant (the paper proves pure-accessor back-dating cannot collide either;
// we assert it dynamically in the core algorithm).
#pragma once

#include <compare>
#include <string>

#include "common/time.h"

namespace linbound {

struct Timestamp {
  Tick clock_time = kNoTime;
  ProcessId pid = kNoProcess;

  friend auto operator<=>(const Timestamp&, const Timestamp&) = default;

  std::string to_string() const {
    return "<" + std::to_string(clock_time) + "," + std::to_string(pid) + ">";
  }
};

}  // namespace linbound
