#include "common/value.h"

#include <limits>
#include <sstream>

#include "common/intern.h"

namespace linbound {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_bytes(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

void hash_into(std::uint64_t& h, const Value& v) {
  if (v.is_unit()) {
    char tag = 'u';
    fnv_bytes(h, &tag, 1);
  } else if (v.is_int()) {
    char tag = 'i';
    fnv_bytes(h, &tag, 1);
    std::int64_t x = v.as_int();
    fnv_bytes(h, &x, sizeof(x));
  } else if (v.is_bool()) {
    char tag = 'b';
    fnv_bytes(h, &tag, 1);
    bool b = v.as_bool();
    fnv_bytes(h, &b, sizeof(b));
  } else if (v.is_str()) {
    char tag = 's';
    fnv_bytes(h, &tag, 1);
    const std::string& s = v.as_str();
    std::uint64_t n = s.size();
    fnv_bytes(h, &n, sizeof(n));
    fnv_bytes(h, s.data(), s.size());
  } else {
    char tag = 'l';
    fnv_bytes(h, &tag, 1);
    const Value::List& xs = v.as_list();
    std::uint64_t n = xs.size();
    fnv_bytes(h, &n, sizeof(n));
    for (const Value& x : xs) hash_into(h, x);
  }
}

// The empty list is common enough (queue/stack drains, unit results of
// composite ops) to deserve one shared allocation for the whole process.
const std::shared_ptr<const Value::List>& empty_list() {
  static const auto* shared =
      new std::shared_ptr<const Value::List>(std::make_shared<Value::List>());
  return *shared;
}

}  // namespace

Value::Value(std::string s) : v_(intern_string(std::move(s))) {}

Value::Value(const char* s) : v_(intern_string(std::string(s))) {}

Value::Value(List xs)
    : v_(xs.empty() ? empty_list()
                    : std::make_shared<const List>(std::move(xs))) {}

bool operator==(const Value& a, const Value& b) {
  if (a.v_.index() != b.v_.index()) return false;
  switch (a.v_.index()) {
    case 0:
      return true;
    case 1:
      return std::get<std::int64_t>(a.v_) == std::get<std::int64_t>(b.v_);
    case 2:
      return std::get<bool>(a.v_) == std::get<bool>(b.v_);
    case 3: {
      // Interning makes equal strings pointer-identical; keep the deep
      // compare as a safety net rather than a representation invariant.
      const auto& pa = std::get<Value::StrPtr>(a.v_);
      const auto& pb = std::get<Value::StrPtr>(b.v_);
      return pa == pb || *pa == *pb;
    }
    default: {
      const auto& pa = std::get<Value::ListPtr>(a.v_);
      const auto& pb = std::get<Value::ListPtr>(b.v_);
      return pa == pb || *pa == *pb;
    }
  }
}

bool operator<(const Value& a, const Value& b) {
  if (a.v_.index() != b.v_.index()) return a.v_.index() < b.v_.index();
  switch (a.v_.index()) {
    case 0:
      return false;
    case 1:
      return std::get<std::int64_t>(a.v_) < std::get<std::int64_t>(b.v_);
    case 2:
      return std::get<bool>(a.v_) < std::get<bool>(b.v_);
    case 3: {
      const auto& pa = std::get<Value::StrPtr>(a.v_);
      const auto& pb = std::get<Value::StrPtr>(b.v_);
      return pa != pb && *pa < *pb;
    }
    default: {
      const auto& pa = std::get<Value::ListPtr>(a.v_);
      const auto& pb = std::get<Value::ListPtr>(b.v_);
      return pa != pb && *pa < *pb;
    }
  }
}

std::string Value::to_string() const {
  if (is_unit()) return "()";
  if (is_int()) return std::to_string(as_int());
  if (is_bool()) return as_bool() ? "true" : "false";
  if (is_str()) return "\"" + as_str() + "\"";
  std::ostringstream os;
  os << "[";
  const List& xs = as_list();
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i) os << ", ";
    os << xs[i].to_string();
  }
  os << "]";
  return os.str();
}

std::uint64_t Value::hash() const {
  std::uint64_t h = kFnvOffset;
  hash_into(h, *this);
  return h;
}

namespace {

/// Recursive-descent parser over the to_string() grammar.  `pos` advances
/// past the parsed value; whitespace is skipped between tokens.
std::optional<Value> parse_value(std::string_view s, std::size_t& pos) {
  auto skip_ws = [&] {
    while (pos < s.size() && s[pos] == ' ') ++pos;
  };
  skip_ws();
  if (pos >= s.size()) return std::nullopt;

  if (s.compare(pos, 2, "()") == 0) {
    pos += 2;
    return Value::unit();
  }
  if (s.compare(pos, 4, "true") == 0) {
    pos += 4;
    return Value(true);
  }
  if (s.compare(pos, 5, "false") == 0) {
    pos += 5;
    return Value(false);
  }
  if (s[pos] == '"') {
    const std::size_t end = s.find('"', pos + 1);
    if (end == std::string_view::npos) return std::nullopt;
    Value out(std::string(s.substr(pos + 1, end - pos - 1)));
    pos = end + 1;
    return out;
  }
  if (s[pos] == '[') {
    ++pos;
    Value::List items;
    skip_ws();
    if (pos < s.size() && s[pos] == ']') {
      ++pos;
      return Value(std::move(items));
    }
    while (true) {
      auto item = parse_value(s, pos);
      if (!item) return std::nullopt;
      items.push_back(std::move(*item));
      skip_ws();
      if (pos >= s.size()) return std::nullopt;
      if (s[pos] == ']') {
        ++pos;
        return Value(std::move(items));
      }
      if (s[pos] != ',') return std::nullopt;
      ++pos;
    }
  }
  // Integer: optional sign, then digits.  Accumulate the magnitude in an
  // unsigned so INT64_MIN parses and anything out of range is rejected
  // instead of overflowing (signed overflow is UB).
  {
    std::size_t end = pos;
    if (end < s.size() && (s[end] == '-' || s[end] == '+')) ++end;
    const std::size_t digits_start = end;
    while (end < s.size() && s[end] >= '0' && s[end] <= '9') ++end;
    if (end == digits_start) return std::nullopt;
    const bool negative = s[pos] == '-';
    const std::uint64_t limit =
        static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max()) +
        (negative ? 1u : 0u);
    std::uint64_t mag = 0;
    for (std::size_t i = digits_start; i < end; ++i) {
      const std::uint64_t digit = static_cast<std::uint64_t>(s[i] - '0');
      if (mag > (limit - digit) / 10) return std::nullopt;  // out of range
      mag = mag * 10 + digit;
    }
    pos = end;
    if (negative) {
      // -mag computed in unsigned space handles INT64_MIN without UB.
      return Value(static_cast<std::int64_t>(~mag + 1));
    }
    return Value(static_cast<std::int64_t>(mag));
  }
}

}  // namespace

std::optional<Value> Value::parse(std::string_view text) {
  std::size_t pos = 0;
  auto out = parse_value(text, pos);
  if (!out) return std::nullopt;
  while (pos < text.size() && text[pos] == ' ') ++pos;
  if (pos != text.size()) return std::nullopt;  // trailing garbage
  return out;
}

}  // namespace linbound
