#include "common/value.h"

#include <sstream>

namespace linbound {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_bytes(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

void hash_into(std::uint64_t& h, const Value& v);

struct Hasher {
  std::uint64_t& h;
  void operator()(const Value::Unit&) const {
    char tag = 'u';
    fnv_bytes(h, &tag, 1);
  }
  void operator()(std::int64_t x) const {
    char tag = 'i';
    fnv_bytes(h, &tag, 1);
    fnv_bytes(h, &x, sizeof(x));
  }
  void operator()(bool b) const {
    char tag = 'b';
    fnv_bytes(h, &tag, 1);
    fnv_bytes(h, &b, sizeof(b));
  }
  void operator()(const std::string& s) const {
    char tag = 's';
    fnv_bytes(h, &tag, 1);
    std::uint64_t n = s.size();
    fnv_bytes(h, &n, sizeof(n));
    fnv_bytes(h, s.data(), s.size());
  }
  void operator()(const Value::List& xs) const {
    char tag = 'l';
    fnv_bytes(h, &tag, 1);
    std::uint64_t n = xs.size();
    fnv_bytes(h, &n, sizeof(n));
    for (const Value& x : xs) hash_into(h, x);
  }
};

void hash_into(std::uint64_t& h, const Value& v) {
  // Re-dispatch through the public interface to avoid friending.
  if (v.is_unit()) {
    Hasher{h}(Value::Unit{});
  } else if (v.is_int()) {
    Hasher{h}(v.as_int());
  } else if (v.is_bool()) {
    Hasher{h}(v.as_bool());
  } else if (v.is_str()) {
    Hasher{h}(v.as_str());
  } else {
    Hasher{h}(v.as_list());
  }
}

}  // namespace

std::string Value::to_string() const {
  if (is_unit()) return "()";
  if (is_int()) return std::to_string(as_int());
  if (is_bool()) return as_bool() ? "true" : "false";
  if (is_str()) return "\"" + as_str() + "\"";
  std::ostringstream os;
  os << "[";
  const List& xs = as_list();
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i) os << ", ";
    os << xs[i].to_string();
  }
  os << "]";
  return os.str();
}

std::uint64_t Value::hash() const {
  std::uint64_t h = kFnvOffset;
  hash_into(h, *this);
  return h;
}

namespace {

/// Recursive-descent parser over the to_string() grammar.  `pos` advances
/// past the parsed value; whitespace is skipped between tokens.
std::optional<Value> parse_value(std::string_view s, std::size_t& pos) {
  auto skip_ws = [&] {
    while (pos < s.size() && s[pos] == ' ') ++pos;
  };
  skip_ws();
  if (pos >= s.size()) return std::nullopt;

  if (s.compare(pos, 2, "()") == 0) {
    pos += 2;
    return Value::unit();
  }
  if (s.compare(pos, 4, "true") == 0) {
    pos += 4;
    return Value(true);
  }
  if (s.compare(pos, 5, "false") == 0) {
    pos += 5;
    return Value(false);
  }
  if (s[pos] == '"') {
    const std::size_t end = s.find('"', pos + 1);
    if (end == std::string_view::npos) return std::nullopt;
    Value out(std::string(s.substr(pos + 1, end - pos - 1)));
    pos = end + 1;
    return out;
  }
  if (s[pos] == '[') {
    ++pos;
    Value::List items;
    skip_ws();
    if (pos < s.size() && s[pos] == ']') {
      ++pos;
      return Value(std::move(items));
    }
    while (true) {
      auto item = parse_value(s, pos);
      if (!item) return std::nullopt;
      items.push_back(std::move(*item));
      skip_ws();
      if (pos >= s.size()) return std::nullopt;
      if (s[pos] == ']') {
        ++pos;
        return Value(std::move(items));
      }
      if (s[pos] != ',') return std::nullopt;
      ++pos;
    }
  }
  // Integer: optional sign, then digits.
  {
    std::size_t end = pos;
    if (end < s.size() && (s[end] == '-' || s[end] == '+')) ++end;
    const std::size_t digits_start = end;
    while (end < s.size() && s[end] >= '0' && s[end] <= '9') ++end;
    if (end == digits_start) return std::nullopt;
    std::int64_t x = 0;
    bool negative = s[pos] == '-';
    for (std::size_t i = digits_start; i < end; ++i) {
      x = x * 10 + (s[i] - '0');
    }
    pos = end;
    return Value(negative ? -x : x);
  }
}

}  // namespace

std::optional<Value> Value::parse(std::string_view text) {
  std::size_t pos = 0;
  auto out = parse_value(text, pos);
  if (!out) return std::nullopt;
  while (pos < text.size() && text[pos] == ' ') ++pos;
  if (pos != text.size()) return std::nullopt;  // trailing garbage
  return out;
}

}  // namespace linbound
