// A small dynamically-typed value used for operation arguments and return
// values across all shared-object data types.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>

#include "common/small_vec.h"

namespace linbound {

/// Operation arguments and results are drawn from this closed universe:
///  - Unit      (no value; acknowledgements of pure mutators)
///  - Int       (register contents, queue/stack elements, tree keys, ...)
///  - Bool      (membership answers)
///  - Str       (symbolic payloads)
///  - List      (composite results, e.g. RMW returning old state pieces)
///
/// Value is a regular type: copyable, equality-comparable, totally ordered,
/// hashable and printable, so it can live in histories, priority queues and
/// test matchers without friction.
///
/// Representation: scalars (Unit/Int/Bool) live inline in the variant with
/// no heap traffic at all.  Strings and lists are immutable and shared --
/// a string is a handle into the process-wide interning pool (common/
/// intern.h), a list is a shared immutable vector -- so copying any Value
/// is O(1) and string equality is a pointer compare.  The alternative order
/// (Unit, Int, Bool, Str, List) is part of the comparison contract and
/// must not change.
class Value {
 public:
  struct Unit {
    friend bool operator==(const Unit&, const Unit&) { return true; }
    friend auto operator<=>(const Unit&, const Unit&) = default;
  };
  // Inline storage for two elements covers the dominant shapes (pair
  // results, register histories of depth <= 2): building or copying such a
  // list touches the heap only for the shared_ptr control block.  SmallVec
  // is instantiable with the still-incomplete Value because its inline
  // buffer is raw storage.
  using List = SmallVec<Value, 2>;

  Value() : v_(Unit{}) {}
  Value(std::int64_t x) : v_(x) {}        // NOLINT(google-explicit-constructor)
  Value(int x) : v_(std::int64_t{x}) {}   // NOLINT(google-explicit-constructor)
  Value(bool b) : v_(b) {}                // NOLINT(google-explicit-constructor)
  Value(std::string s);                   // NOLINT(google-explicit-constructor)
  Value(const char* s);                   // NOLINT(google-explicit-constructor)
  Value(List xs);                         // NOLINT(google-explicit-constructor)

  static Value unit() { return Value(); }

  bool is_unit() const { return std::holds_alternative<Unit>(v_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_str() const { return std::holds_alternative<StrPtr>(v_); }
  bool is_list() const { return std::holds_alternative<ListPtr>(v_); }

  /// Accessors abort (via std::get) on type mismatch -- a mismatch is a
  /// programming error in a sequential specification, not a runtime
  /// condition to recover from.
  std::int64_t as_int() const { return std::get<std::int64_t>(v_); }
  bool as_bool() const { return std::get<bool>(v_); }
  const std::string& as_str() const { return *std::get<StrPtr>(v_); }
  const List& as_list() const { return *std::get<ListPtr>(v_); }

  /// Human-readable rendering, used in traces, test failures and the bench
  /// table output.
  std::string to_string() const;

  /// Parse the to_string() grammar back into a Value:
  ///   () | <int> | true | false | "str" | [v, v, ...]
  /// Strings may not contain '"'.  Returns nullopt on malformed input,
  /// out-of-range integers or trailing garbage -- the exact inverse of
  /// to_string() (round-trip tested, including INT64_MIN/MAX).
  static std::optional<Value> parse(std::string_view text);

  /// Stable 64-bit fingerprint (FNV-1a over a canonical encoding); used by
  /// the linearizability checker's memoization of object states.  The
  /// encoding is independent of the representation, so fingerprints match
  /// across PRs (trace files record them).
  std::uint64_t hash() const;

  friend bool operator==(const Value& a, const Value& b);
  friend bool operator<(const Value& a, const Value& b);

 private:
  using StrPtr = std::shared_ptr<const std::string>;
  using ListPtr = std::shared_ptr<const List>;

  // Same alternative order as the original by-value variant
  // (Unit, Int, Bool, Str, List) so cross-type ordering is unchanged.
  std::variant<Unit, std::int64_t, bool, StrPtr, ListPtr> v_;
};

}  // namespace linbound
