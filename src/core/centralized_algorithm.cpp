#include "core/centralized_algorithm.h"

namespace linbound {

CentralizedProcess::CentralizedProcess(std::shared_ptr<const ObjectModel> model,
                                       ProcessId coordinator, Tick give_up_after)
    : model_(std::move(model)),
      coordinator_(coordinator),
      give_up_after_(give_up_after),
      obj_(model_->initial_state()) {}

void CentralizedProcess::on_invoke(std::int64_t token, const Operation& op) {
  if (is_coordinator()) {
    // The coordinator's own operations apply immediately (zero local time).
    respond(token, obj_->apply(op));
    return;
  }
  send(coordinator_, make_msg<CentralRequestPayload>(op, token));
  if (give_up_after_ > 0) {
    give_up_token_ = token;
    give_up_timer_ =
        set_timer(give_up_after_, TimerTag{kGiveUp, Timestamp{token, id()}});
  }
}

void CentralizedProcess::on_message(ProcessId from, const MessagePayload& payload) {
  if (const auto* req = dynamic_cast<const CentralRequestPayload*>(&payload)) {
    // Linearization point: application at the coordinator, in arrival order.
    Value ret = obj_->apply(req->op);
    send(from, make_msg<CentralReplyPayload>(req->token, std::move(ret)));
    return;
  }
  if (const auto* reply = dynamic_cast<const CentralReplyPayload*>(&payload)) {
    if (give_up_token_ == reply->token) {
      cancel_timer(give_up_timer_);
      give_up_token_ = -1;
    }
    respond(reply->token, reply->ret);
    return;
  }
}

void CentralizedProcess::on_timer(TimerId /*id*/, const TimerTag& tag) {
  if (tag.kind != kGiveUp) return;
  const std::int64_t token = tag.ts.clock_time;
  if (give_up_token_ != token) return;  // already answered
  give_up_token_ = -1;
  give_up(token);
}

}  // namespace linbound
