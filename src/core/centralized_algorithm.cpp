#include "core/centralized_algorithm.h"

namespace linbound {

CentralizedProcess::CentralizedProcess(std::shared_ptr<const ObjectModel> model,
                                       ProcessId coordinator)
    : model_(std::move(model)),
      coordinator_(coordinator),
      obj_(model_->initial_state()) {}

void CentralizedProcess::on_invoke(std::int64_t token, const Operation& op) {
  if (is_coordinator()) {
    // The coordinator's own operations apply immediately (zero local time).
    respond(token, obj_->apply(op));
    return;
  }
  send(coordinator_, std::make_shared<CentralRequestPayload>(op, token));
}

void CentralizedProcess::on_message(ProcessId from, const MessagePayload& payload) {
  if (const auto* req = dynamic_cast<const CentralRequestPayload*>(&payload)) {
    // Linearization point: application at the coordinator, in arrival order.
    Value ret = obj_->apply(req->op);
    send(from, std::make_shared<CentralReplyPayload>(req->token, std::move(ret)));
    return;
  }
  if (const auto* reply = dynamic_cast<const CentralReplyPayload*>(&payload)) {
    respond(reply->token, reply->ret);
    return;
  }
}

}  // namespace linbound
