// The folklore centralized implementation (Chapter I.A.3): one coordinator
// owns the object; every operation is shipped to it and applied in arrival
// order.  Trivially linearizable; every remote operation takes at most
// 2d (request <= d, reply <= d) and at least 2(d-u).  This is the baseline
// Algorithm 1 is measured against in bench_baseline_2d.
#pragma once

#include <memory>

#include "sim/process.h"
#include "spec/object_model.h"

namespace linbound {

struct CentralRequestPayload final : MessagePayload {
  Operation op;
  std::int64_t token = -1;  ///< the invoker's token, echoed in the reply
  CentralRequestPayload(Operation o, std::int64_t t) : op(std::move(o)), token(t) {}
};

struct CentralReplyPayload final : MessagePayload {
  std::int64_t token = -1;
  Value ret;
  CentralReplyPayload(std::int64_t t, Value r) : token(t), ret(std::move(r)) {}
};

class CentralizedProcess final : public Process {
 public:
  /// All processes must agree on the coordinator id.  With a positive
  /// `give_up_after`, a client that hears nothing for that long after an
  /// invocation abandons it (Process::give_up) -- a dead coordinator then
  /// degrades to a Stalled run outcome instead of a forever-pending
  /// operation; 0 keeps the historical wait-forever behavior.
  CentralizedProcess(std::shared_ptr<const ObjectModel> model,
                     ProcessId coordinator, Tick give_up_after = 0);

  void on_invoke(std::int64_t token, const Operation& op) override;
  void on_message(ProcessId from, const MessagePayload& payload) override;
  void on_timer(TimerId id, const TimerTag& tag) override;

 private:
  enum TimerKind : int { kGiveUp = 1 };

  bool is_coordinator() const { return id() == coordinator_; }

  std::shared_ptr<const ObjectModel> model_;
  ProcessId coordinator_;
  Tick give_up_after_;
  std::unique_ptr<ObjectState> obj_;  ///< live only on the coordinator
  /// The pending give-up timer, if any.  The model allows one pending
  /// operation per process, so a scalar slot replaces the seed's per-token
  /// std::map: -1 means no operation is being timed.
  std::int64_t give_up_token_ = -1;
  TimerId give_up_timer_ = 0;
};

}  // namespace linbound
