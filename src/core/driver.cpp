#include "core/driver.h"

#include <stdexcept>

namespace linbound {

WorkloadDriver::WorkloadDriver(Simulator& sim, std::vector<ClientScript> scripts,
                               std::function<void(const OperationRecord&)> on_response)
    : sim_(sim), scripts_(std::move(scripts)), on_response_(std::move(on_response)) {
  next_op_.assign(scripts_.size(), 0);
  script_of_proc_.assign(static_cast<std::size_t>(sim_.process_count()), -1);
  for (std::size_t s = 0; s < scripts_.size(); ++s) {
    const ProcessId pid = scripts_[s].pid;
    if (pid < 0 || pid >= sim_.process_count()) {
      throw std::invalid_argument("ClientScript targets unknown process");
    }
    if (script_of_proc_[static_cast<std::size_t>(pid)] != -1) {
      throw std::invalid_argument("two scripts target the same process");
    }
    script_of_proc_[static_cast<std::size_t>(pid)] = static_cast<ProcessId>(s);
  }
  sim_.set_response_hook([this](const OperationRecord& rec) { handle_response(rec); });
}

void WorkloadDriver::arm() {
  for (std::size_t s = 0; s < scripts_.size(); ++s) {
    const ClientScript& script = scripts_[s];
    if (script.ops.empty()) continue;
    next_op_[s] = 1;
    sim_.invoke_at(script.start_time, script.pid, script.ops.front());
  }
}

bool WorkloadDriver::done() const {
  for (std::size_t s = 0; s < scripts_.size(); ++s) {
    if (next_op_[s] < scripts_[s].ops.size()) return false;
  }
  return true;
}

void WorkloadDriver::handle_response(const OperationRecord& rec) {
  if (on_response_) on_response_(rec);
  const ProcessId script_idx = script_of_proc_.at(static_cast<std::size_t>(rec.proc));
  if (script_idx < 0) return;
  const auto s = static_cast<std::size_t>(script_idx);
  if (next_op_[s] >= scripts_[s].ops.size()) return;
  const Operation& op = scripts_[s].ops[next_op_[s]];
  ++next_op_[s];
  sim_.invoke_at(sim_.now() + scripts_[s].think_time, rec.proc, op);
}

}  // namespace linbound
