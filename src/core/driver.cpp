#include "core/driver.h"

#include <stdexcept>

namespace linbound {

WorkloadDriver::WorkloadDriver(Simulator& sim, std::vector<ClientScript> scripts,
                               std::function<void(const OperationRecord&)> on_response,
                               std::function<void(ProcessId, Tick)> on_recovery,
                               bool reissue_cut_ops)
    : sim_(sim),
      scripts_(std::move(scripts)),
      reissue_cut_ops_(reissue_cut_ops),
      on_response_(std::move(on_response)),
      on_recovery_(std::move(on_recovery)) {
  next_op_.assign(scripts_.size(), 0);
  inflight_token_.assign(scripts_.size(), -1);
  inflight_sched_.assign(scripts_.size(), kNoTime);
  script_of_proc_.assign(static_cast<std::size_t>(sim_.process_count()), -1);
  for (std::size_t s = 0; s < scripts_.size(); ++s) {
    const ProcessId pid = scripts_[s].pid;
    if (pid < 0 || pid >= sim_.process_count()) {
      throw std::invalid_argument("ClientScript targets unknown process");
    }
    if (script_of_proc_[static_cast<std::size_t>(pid)] != -1) {
      throw std::invalid_argument("two scripts target the same process");
    }
    script_of_proc_[static_cast<std::size_t>(pid)] = static_cast<ProcessId>(s);
  }
  sim_.set_response_hook([this](const OperationRecord& rec) { handle_response(rec); });
  sim_.set_recovery_hook([this](ProcessId pid, Tick now) {
    reissue_cut(pid, now);
    if (on_recovery_) on_recovery_(pid, now);
  });
}

void WorkloadDriver::arm() {
  // Reserve the operation records for the whole run up front (closed-loop
  // scripts know their op counts exactly; recovery reissues are rare
  // extras).  Message/event totals depend on the algorithm under test, so
  // only the known-tight hint is passed.
  std::size_t total_ops = 0;
  for (const ClientScript& script : scripts_) total_ops += script.ops.size();
  sim_.reserve(/*ops=*/total_ops, /*messages=*/0, /*events=*/0);
  for (std::size_t s = 0; s < scripts_.size(); ++s) {
    const ClientScript& script = scripts_[s];
    if (script.ops.empty()) continue;
    next_op_[s] = 1;
    inflight_token_[s] =
        sim_.invoke_at(script.start_time, script.pid, script.ops.front());
    inflight_sched_[s] = script.start_time;
  }
}

bool WorkloadDriver::done() const {
  for (std::size_t s = 0; s < scripts_.size(); ++s) {
    if (next_op_[s] < scripts_[s].ops.size()) return false;
  }
  return true;
}

void WorkloadDriver::handle_response(const OperationRecord& rec) {
  if (on_response_) on_response_(rec);
  const ProcessId script_idx = script_of_proc_.at(static_cast<std::size_t>(rec.proc));
  if (script_idx < 0) return;
  const auto s = static_cast<std::size_t>(script_idx);
  // A response to a token we are no longer waiting on (a pre-crash attempt
  // answered late from durable state after reissue_cut already retried it)
  // must not advance the script: the retry is the in-flight operation.
  if (rec.token != inflight_token_[s]) return;
  inflight_token_[s] = -1;
  if (next_op_[s] >= scripts_[s].ops.size()) return;
  const Operation& op = scripts_[s].ops[next_op_[s]];
  ++next_op_[s];
  const Tick at = sim_.now() + scripts_[s].think_time;
  inflight_token_[s] = sim_.invoke_at(at, rec.proc, op);
  inflight_sched_[s] = at;
}

void WorkloadDriver::reissue_cut(ProcessId pid, Tick now) {
  if (!reissue_cut_ops_) return;
  const ProcessId script_idx = script_of_proc_.at(static_cast<std::size_t>(pid));
  if (script_idx < 0) return;
  const auto s = static_cast<std::size_t>(script_idx);
  // Nothing in flight, or the next invocation is still scheduled for the
  // future (it will dispatch normally now that the process is back up).
  if (inflight_token_[s] < 0 || inflight_sched_[s] > now) return;
  // The current operation was cut: either invoked before the crash and
  // never answered, or dispatched into the downtime and lost.  Retry it as
  // a new invocation; the old token stays unresolved in the trace.
  const Operation& op = scripts_[s].ops[next_op_[s] - 1];
  inflight_token_[s] = sim_.invoke_at(now, pid, op);
  inflight_sched_[s] = now;
  ++reissued_;
}

}  // namespace linbound
