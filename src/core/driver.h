// Closed-loop application driver (the paper's application layer).
//
// Each process runs a script: a list of operations invoked one at a time --
// the next operation is issued `think_time` after the previous response,
// honoring the model's one-pending-operation-per-process rule.
#pragma once

#include <functional>
#include <vector>

#include "sim/simulator.h"
#include "spec/operation.h"

namespace linbound {

struct ClientScript {
  ProcessId pid = kNoProcess;
  std::vector<Operation> ops;
  Tick start_time = 0;   ///< real time of the first invocation
  Tick think_time = 0;   ///< gap between a response and the next invocation
};

class WorkloadDriver {
 public:
  /// Installs the simulator's response and recovery hooks; at most one
  /// driver per simulator.  `on_response` / `on_recovery` (optional) are
  /// forwarded so callers can still observe completions and rejoins.
  /// `reissue_cut_ops` controls the retry-on-recovery behavior: leave it on
  /// for the synchronous algorithms (whose volatile state forgets a cut
  /// operation forever), turn it off for systems that answer cut operations
  /// themselves from durable state (the degraded-mode quorum backend) --
  /// there a client retry would race the late response and overlap two
  /// invocations on one process.
  WorkloadDriver(Simulator& sim, std::vector<ClientScript> scripts,
                 std::function<void(const OperationRecord&)> on_response = {},
                 std::function<void(ProcessId, Tick)> on_recovery = {},
                 bool reissue_cut_ops = true);

  /// Schedule the first invocation of every script.  Call after
  /// Simulator::start() is not required -- events are queued either way.
  void arm();

  /// True once every script ran to completion.
  bool done() const;

  /// Number of operations re-issued after a crash cut them.
  int reissued() const { return reissued_; }

 private:
  void handle_response(const OperationRecord& rec);

  /// A real client retries when its replica comes back: if `pid`'s current
  /// operation was invoked (or scheduled) before the crash and never
  /// answered, issue it again as a fresh invocation.  The cut attempt stays
  /// in the trace as a pending (or never-dispatched) record; the checkers
  /// accept the cut-and-reissue shape.  Invoked from the simulator's
  /// recovery hook.
  void reissue_cut(ProcessId pid, Tick now);

  Simulator& sim_;
  std::vector<ClientScript> scripts_;
  std::vector<std::size_t> next_op_;        // per script
  std::vector<ProcessId> script_of_proc_;   // process -> script index or -1
  /// Per script: token of the in-flight invocation (-1 when answered) and
  /// the real time it was scheduled for.
  std::vector<std::int64_t> inflight_token_;
  std::vector<Tick> inflight_sched_;
  int reissued_ = 0;
  bool reissue_cut_ops_ = true;
  std::function<void(const OperationRecord&)> on_response_;
  std::function<void(ProcessId, Tick)> on_recovery_;
};

}  // namespace linbound
