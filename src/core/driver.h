// Closed-loop application driver (the paper's application layer).
//
// Each process runs a script: a list of operations invoked one at a time --
// the next operation is issued `think_time` after the previous response,
// honoring the model's one-pending-operation-per-process rule.
#pragma once

#include <functional>
#include <vector>

#include "sim/simulator.h"
#include "spec/operation.h"

namespace linbound {

struct ClientScript {
  ProcessId pid = kNoProcess;
  std::vector<Operation> ops;
  Tick start_time = 0;   ///< real time of the first invocation
  Tick think_time = 0;   ///< gap between a response and the next invocation
};

class WorkloadDriver {
 public:
  /// Installs the simulator's response hook; at most one driver per
  /// simulator.  `on_response` (optional) is forwarded every response so
  /// callers can still observe completions.
  WorkloadDriver(Simulator& sim, std::vector<ClientScript> scripts,
                 std::function<void(const OperationRecord&)> on_response = {});

  /// Schedule the first invocation of every script.  Call after
  /// Simulator::start() is not required -- events are queued either way.
  void arm();

  /// True once every script ran to completion.
  bool done() const;

 private:
  void handle_response(const OperationRecord& rec);

  Simulator& sim_;
  std::vector<ClientScript> scripts_;
  std::vector<std::size_t> next_op_;        // per script
  std::vector<ProcessId> script_of_proc_;   // process -> script index or -1
  std::function<void(const OperationRecord&)> on_response_;
};

}  // namespace linbound
