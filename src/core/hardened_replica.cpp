#include "core/hardened_replica.h"

#include <algorithm>
#include <stdexcept>

namespace linbound {

Tick HardenedParams::first_timeout_for(const SystemTiming& timing) const {
  // A round trip (data out, ack back) takes at most 2(d + spike_margin);
  // only after that can the first attempt be declared lost.
  return retrans_timeout > 0 ? retrans_timeout
                             : 2 * (timing.d + spike_margin) + 1;
}

Tick HardenedParams::step_cap_for(const SystemTiming& timing) const {
  return timeout_cap > 0 ? timeout_cap : 8 * timing.d;
}

Tick HardenedParams::effective_d(const SystemTiming& timing) const {
  if (!valid()) throw std::invalid_argument("invalid HardenedParams");
  const Tick cap = step_cap_for(timing);
  Tick step = std::min(first_timeout_for(timing), cap);
  Tick total = timing.d + spike_margin;  // last attempt's one-way flight
  for (int k = 0; k + 1 < max_attempts; ++k) {
    // Each retransmission wait may be stretched by up to retrans_jitter.
    total += step + retrans_jitter;
    step = (step >= cap / backoff) ? cap : step * backoff;
    step = std::min(step, cap);
  }
  return total;
}

SystemTiming HardenedParams::effective_timing(const SystemTiming& timing) const {
  SystemTiming out = timing;
  out.d = effective_d(timing);
  out.u = out.d - timing.min_delay();
  return out;
}

HardenedReplicaProcess::HardenedReplicaProcess(
    std::shared_ptr<const ObjectModel> model, AlgorithmDelays delays,
    HardenedParams params)
    : ReplicaProcess(std::move(model), delays), params_(params) {
  if (!params_.valid()) throw std::invalid_argument("invalid HardenedParams");
}

void HardenedReplicaProcess::send(ProcessId to, const MessagePayload* payload) {
  const auto dest = static_cast<std::size_t>(to);
  if (dest >= next_link_seq_.size()) next_link_seq_.resize(dest + 1, 0);
  const std::int64_t seq = next_link_seq_[dest]++;
  const LinkDataPayload* frame =
      make_msg<LinkDataPayload>(seq, payload, my_incarnation_);
  PendingSend pending;
  pending.frame = frame;
  pending.to = to;
  pending.attempts = 1;
  pending.next_timeout =
      std::min(params_.first_timeout_for(timing()), params_.step_cap_for(timing()));
  raw_send(to, frame);
  const Tick first_timeout = pending.next_timeout;
  pending_sends_.insert_or_assign(link_key(to, seq), std::move(pending));
  // Timer keyed by <seq, destination> through the standard tag.
  set_timer(first_timeout, TimerTag{kLinkRetransmit, Timestamp{seq, to}});
}

void HardenedReplicaProcess::on_message(ProcessId from,
                                        const MessagePayload& payload) {
  if (const auto* ack = dynamic_cast<const LinkAckPayload*>(&payload)) {
    // Acks addressed to a previous life are stale: this incarnation may be
    // reusing the acked sequence number for a different message.
    if (ack->incarnation != my_incarnation_) return;
    // Sequence numbers are per destination, so the acked send is keyed by
    // the acking peer; duplicate acks fall through harmlessly.
    pending_sends_.erase(link_key(from, ack->seq));
    return;
  }
  if (const auto* frame = dynamic_cast<const LinkDataPayload*>(&payload)) {
    // Always (re-)ack: the sender may be retransmitting because our
    // previous ack was lost.  Acks go out raw -- acking an ack would loop.
    raw_send(from, make_msg<LinkAckPayload>(frame->seq, frame->incarnation));
    if (!delivered_.insert(from, frame->incarnation, frame->seq)) {
      ++duplicates_suppressed_;
      return;
    }
    deliver_app(from, *frame->inner);
    return;
  }
  // Unframed payload (e.g. from a non-hardened peer in a mixed system).
  deliver_app(from, payload);
}

void HardenedReplicaProcess::on_timer(TimerId id, const TimerTag& tag) {
  if (tag.kind != kLinkRetransmit) {
    ReplicaProcess::on_timer(id, tag);
    return;
  }
  const std::int64_t seq = tag.ts.clock_time;
  const std::int64_t key = link_key(tag.ts.pid, seq);
  PendingSend* found = pending_sends_.find(key);
  if (found == nullptr) return;  // acked in the meantime
  PendingSend& pending = *found;
  if (pending.attempts >= params_.max_attempts) {
    // Attempt budget exhausted: the destination is unreachable (crashed, or
    // the network lost every copy).  Degrade gracefully -- stop resending
    // so the run quiesces; the assumption monitor attributes the fallout.
    ++link_give_ups_;
    pending_sends_.erase(key);
    return;
  }
  ++pending.attempts;
  ++retransmissions_;
  raw_send(pending.to, pending.frame);
  const Tick cap = params_.step_cap_for(timing());
  pending.next_timeout = (pending.next_timeout >= cap / params_.backoff)
                             ? cap
                             : pending.next_timeout * params_.backoff;
  pending.next_timeout = std::min(pending.next_timeout, cap);
  // Deterministic desynchronization: stretch this wait by a per-process
  // draw so concurrent losers do not retransmit in lockstep.  The stored
  // next_timeout stays unjittered -- the backoff ladder (and effective_d's
  // accounting of it) is unchanged; jitter only shifts firing times.
  Tick jitter = 0;
  if (params_.retrans_jitter > 0) {
    if (!jitter_rng_) jitter_rng_ = Rng(params_.jitter_seed).split(
        static_cast<std::uint64_t>(this->id()));
    jitter = jitter_rng_->uniform_tick(0, params_.retrans_jitter);
  }
  set_timer(pending.next_timeout + jitter, tag);
}

void HardenedReplicaProcess::reset_link_state(Tick new_incarnation) {
  if (new_incarnation <= my_incarnation_) {
    throw std::invalid_argument(
        "reset_link_state: incarnation must be strictly increasing");
  }
  pending_sends_.clear();
  delivered_.clear();
  next_link_seq_.assign(next_link_seq_.size(), 0);
  my_incarnation_ = new_incarnation;
}

}  // namespace linbound
