// Algorithm 1 hardened against message loss and duplication.
//
// The paper's replica algorithm assumes the message layer delivers every
// broadcast exactly once within [d-u, d].  This variant restores those
// guarantees over a faulty network (sim/fault_injection.h) with a classic
// reliable-link layer, in the spirit of Mostefaoui & Raynal's time-efficient
// crash-tolerant registers:
//
//   * every outgoing message carries a per-sender sequence number; the
//     receiver acks it and suppresses redundant deliveries (tolerates
//     duplication -- both injected duplicates and our own retransmissions);
//   * the sender retransmits unacked messages on a timer with bounded
//     exponential backoff, giving up after max_attempts (tolerates loss up
//     to the configured attempt budget);
//   * the algorithm's waits are computed against the *effective* delivery
//     bound d_eff -- the worst case where every attempt but the last is
//     lost -- so the timestamp-order safety argument (Lemma C.8/C.9) holds
//     verbatim with d := d_eff.  Latency degrades by exactly that widening;
//     bench_fault_sweep quantifies it.
//
// What this deliberately does NOT guarantee: if all max_attempts copies of
// a message are lost (probability p^max_attempts per link under drop rate
// p), replicas can diverge -- the run is then attributed to a violated
// reliable-delivery assumption by the assumption monitor rather than
// silently miscounted.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "core/pending_tables.h"
#include "core/replica_algorithm.h"

namespace linbound {

/// Knobs of the reliable-link layer.  Defaults are filled in from the
/// system timing: first timeout 2(d + spike_margin) + 1 (a full round trip
/// must have failed), per-step cap 8d.
struct HardenedParams {
  /// First retransmission timeout; 0 means 2*(d + spike_margin) + 1.
  Tick retrans_timeout = 0;
  /// Total transmissions per (message, destination), first send included.
  int max_attempts = 6;
  /// Exponential backoff factor between attempts.
  int backoff = 2;
  /// Cap on a single backoff step; 0 means 8d.
  Tick timeout_cap = 0;
  /// Extra one-way delay the link must absorb (set to the fault policy's
  /// spike_max when delay spikes are injected).
  Tick spike_margin = 0;
  /// Deterministic jitter added to every *retransmission* wait: each backoff
  /// step is stretched by a uniform draw in [0, retrans_jitter] from this
  /// process's split RNG stream (seed below, split by process id), breaking
  /// the lockstep retransmission bursts a shared timeout produces.  The draw
  /// happens only when a retransmission actually fires -- the first-attempt
  /// timer is never jittered -- so fault-free runs consume no randomness and
  /// stay byte-identical to jitter-free ones.  0 disables jitter.
  Tick retrans_jitter = 0;
  /// Root seed of the jitter streams; process `pid` draws from
  /// Rng(jitter_seed).split(pid).
  std::uint64_t jitter_seed = 0x6a17'7e12'0b5eULL;

  Tick first_timeout_for(const SystemTiming& timing) const;
  Tick step_cap_for(const SystemTiming& timing) const;

  /// Worst-case end-to-end delivery bound d_eff: all attempts but the last
  /// lost, the last one maximally delayed.
  Tick effective_d(const SystemTiming& timing) const;

  /// The widened partially synchronous parameters the hardened algorithm
  /// computes its waits from: d -> d_eff, minimum delay unchanged
  /// (u -> d_eff - (d - u)), eps unchanged.
  SystemTiming effective_timing(const SystemTiming& timing) const;

  bool valid() const {
    return max_attempts >= 1 && backoff >= 1 && retrans_timeout >= 0 &&
           timeout_cap >= 0 && spike_margin >= 0 && retrans_jitter >= 0;
  }
};

/// The <seq, incarnation, inner> frame of the reliable link.  `incarnation`
/// distinguishes a sender's lifetimes across crash-recovery: a restarted
/// process starts a fresh sequence space, and receivers deduplicate per
/// (sender, incarnation) so a recycled seq 0 is not suppressed as a
/// duplicate of the previous life's seq 0.  Failure-free runs keep
/// incarnation 0 everywhere and behave exactly as before.
struct LinkDataPayload final : MessagePayload {
  std::int64_t seq = 0;
  Tick incarnation = 0;
  const MessagePayload* inner = nullptr;  ///< arena-owned, outlives the frame
  LinkDataPayload(std::int64_t s, const MessagePayload* in, Tick inc = 0)
      : seq(s), incarnation(inc), inner(in) {}
};

/// Receiver's acknowledgment of LinkDataPayload <seq, incarnation>.  The
/// echoed incarnation lets a restarted sender ignore acks addressed to its
/// previous life (whose sequence numbers it is reusing).
struct LinkAckPayload final : MessagePayload {
  std::int64_t seq = 0;
  Tick incarnation = 0;
  explicit LinkAckPayload(std::int64_t s, Tick inc = 0)
      : seq(s), incarnation(inc) {}
};

class HardenedReplicaProcess : public ReplicaProcess {
 public:
  /// `delays` must be computed against params.effective_timing(timing) --
  /// ReplicaSystem does this when SystemOptions::hardened is set.
  HardenedReplicaProcess(std::shared_ptr<const ObjectModel> model,
                         AlgorithmDelays delays, HardenedParams params);

  void on_message(ProcessId from, const MessagePayload& payload) override;
  void on_timer(TimerId id, const TimerTag& tag) override;

  /// Link-layer introspection for tests and the fault sweep.
  std::int64_t retransmissions() const { return retransmissions_; }
  std::int64_t duplicates_suppressed() const { return duplicates_suppressed_; }
  std::int64_t link_give_ups() const { return link_give_ups_; }

 protected:
  /// Every algorithm-level send goes out framed and retransmitted.
  void send(ProcessId to, const MessagePayload* payload) override;

  /// Hand a deduplicated application payload up the stack.  The default
  /// runs Algorithm 1's handler; the recoverable subclass interposes here
  /// to buffer broadcasts and route its join protocol while rejoining.
  virtual void deliver_app(ProcessId from, const MessagePayload& payload) {
    ReplicaProcess::on_message(from, payload);
  }

  /// Restart the link layer for a new life: forget unacked sends and the
  /// per-sender dedup history (all volatile), restart sequence numbers, and
  /// stamp future frames with `new_incarnation` (must exceed every previous
  /// one; recoverable replicas use the local clock at recovery, which is
  /// monotonic across lifetimes without stable storage).
  void reset_link_state(Tick new_incarnation);

  Tick link_incarnation() const { return my_incarnation_; }
  const HardenedParams& link_params() const { return params_; }

 private:
  /// Link timer kind; disjoint from ReplicaProcess's private kinds (1..4).
  static constexpr int kLinkRetransmit = 100;

  struct PendingSend {
    const LinkDataPayload* frame = nullptr;  ///< arena-owned
    ProcessId to = kNoProcess;
    int attempts = 1;
    Tick next_timeout = 0;
  };

  /// pending_sends_ key for the (destination, per-destination seq) pair.
  /// seq stays far below 2^48 (every send costs at least one simulator
  /// event, and event budgets are orders of magnitude smaller).
  static std::int64_t link_key(ProcessId to, std::int64_t seq) {
    return (static_cast<std::int64_t>(to) << 48) | seq;
  }

  HardenedParams params_;
  /// Next frame sequence number, PER DESTINATION (indexed by pid, grown on
  /// demand).  Per-link numbering keeps each receiver's dedup SeqSet
  /// gap-free -- its frontier advances and the sparse overflow stays empty,
  /// so dedup memory is O(1) per link instead of growing with every send
  /// the receiver never saw (a global counter leaves permanent holes in
  /// every link's sequence space).
  std::vector<std::int64_t> next_link_seq_;
  /// This process's current life; stamped into every frame.
  Tick my_incarnation_ = 0;
  /// Unacked sends, by link_key.  Per-destination sequence numbers count up
  /// and acks overwhelmingly arrive in order, so the flat table's
  /// append/head-pop fast path applies (core/pending_tables.h).
  FlatMap<std::int64_t, PendingSend> pending_sends_;
  /// Sequence numbers already delivered up the stack, per sender and per
  /// sender incarnation (a restarted sender reuses sequence numbers).
  LinkDedup delivered_;

  std::int64_t retransmissions_ = 0;
  std::int64_t duplicates_suppressed_ = 0;
  std::int64_t link_give_ups_ = 0;

  /// Per-process jitter stream, created on the first retransmission (needs
  /// id(), which is unknown at construction; and a run with no
  /// retransmissions must not draw from it at all).
  std::optional<Rng> jitter_rng_;
};

}  // namespace linbound
