// Flat replacements for the node-based pending tables on the replica hot
// path (DESIGN.md section 15).
//
// Every pending table in the op pipeline is keyed by a value that arrives
// in (almost) increasing order: per-process operation timestamps are
// strictly monotonic (ReplicaProcess::next_stamp_clock), the reliable
// link's sequence numbers count up, and the TOB sequencer assigns
// consecutive numbers.  Inserts are therefore appends, lookups binary
// searches over a contiguous sorted range, and removals overwhelmingly
// pop the smallest key -- which a head cursor turns into an increment.
// A warmed table reaches a steady state where no operation allocates:
// the backing vector's capacity is the high-water mark of concurrently
// pending entries, and clear-on-empty recycles it forever.
//
// Free-list/cursor invariants (checked implicitly by the layout):
//   * entries in [head_, items_.size()) are alive and sorted by key;
//   * entries in [0, head_) are dead (popped) but not yet reclaimed;
//   * the dead prefix is reclaimed wholesale when the table drains
//     (cheap, frequent in steady state) or compacted when it outgrows the
//     live region (amortized O(1) per pop, bounds memory under sustained
//     non-empty operation).
//
// FlatMap can also run in kReference mode, backed by the seed's std::map
// -- bench_throughput's regression baseline runs the identical algorithm
// on the seed containers so the gate measures the data-layout win, and
// the flat/reference trace hashes must match bit for bit (iteration is
// sorted either way).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "common/timestamp.h"

namespace linbound {

/// Which structure backs a replica's pending tables.
enum class TableMode {
  kFlat,       ///< sorted-vector tables: allocation-free once warm (default)
  kReference,  ///< the seed's std::map nodes (regression baseline)
};

/// Sorted-vector map with a dead-prefix head cursor.  Keys must be totally
/// ordered; insertion of a key larger than every live key (the common case
/// on the replica hot path) is an append.
template <typename K, typename V>
class FlatMap {
 public:
  /// Switch backing structures; only legal while empty (ReplicaSystem does
  /// this right after construction, before any operation arrives).
  void set_mode(TableMode mode) {
    assert(empty());
    mode_ = mode;
  }
  TableMode mode() const { return mode_; }

  std::size_t size() const {
    return mode_ == TableMode::kFlat ? items_.size() - head_ : ref_.size();
  }
  bool empty() const { return size() == 0; }

  void reserve(std::size_t n) {
    if (mode_ == TableMode::kFlat) items_.reserve(n);
  }

  V* find(const K& key) {
    if (mode_ == TableMode::kReference) {
      auto it = ref_.find(key);
      return it == ref_.end() ? nullptr : &it->second;
    }
    auto it = live_lower_bound(key);
    return (it != items_.end() && it->key == key) ? &it->val : nullptr;
  }
  const V* find(const K& key) const {
    return const_cast<FlatMap*>(this)->find(key);
  }

  /// map[key] = value.
  void insert_or_assign(const K& key, V value) {
    if (mode_ == TableMode::kReference) {
      ref_.insert_or_assign(key, std::move(value));
      return;
    }
    if (items_.size() == head_ || items_.back().key < key) {
      items_.push_back(Entry{key, std::move(value)});
      return;
    }
    auto it = live_lower_bound(key);
    if (it != items_.end() && it->key == key) {
      it->val = std::move(value);
    } else {
      items_.insert(it, Entry{key, std::move(value)});
    }
  }

  /// Remove `key` and hand back its value; nullopt when absent.
  std::optional<V> extract(const K& key) {
    if (mode_ == TableMode::kReference) {
      auto node = ref_.extract(key);
      if (node.empty()) return std::nullopt;
      return std::move(node.mapped());
    }
    auto it = live_lower_bound(key);
    if (it == items_.end() || !(it->key == key)) return std::nullopt;
    std::optional<V> out(std::move(it->val));
    remove_at(it);
    return out;
  }

  bool erase(const K& key) {
    if (mode_ == TableMode::kReference) return ref_.erase(key) > 0;
    auto it = live_lower_bound(key);
    if (it == items_.end() || !(it->key == key)) return false;
    remove_at(it);
    return true;
  }

  void clear() {
    items_.clear();  // capacity kept: the steady-state pool
    head_ = 0;
    ref_.clear();
  }

  /// Visit every live entry in ascending key order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (mode_ == TableMode::kReference) {
      for (const auto& [k, v] : ref_) fn(k, v);
      return;
    }
    for (std::size_t i = head_; i < items_.size(); ++i) {
      fn(items_[i].key, items_[i].val);
    }
  }

 private:
  struct Entry {
    K key;
    V val;
  };

  typename std::vector<Entry>::iterator live_lower_bound(const K& key) {
    return std::lower_bound(
        items_.begin() + static_cast<std::ptrdiff_t>(head_), items_.end(), key,
        [](const Entry& e, const K& k) { return e.key < k; });
  }

  void remove_at(typename std::vector<Entry>::iterator it) {
    if (it == items_.begin() + static_cast<std::ptrdiff_t>(head_)) {
      ++head_;  // min-key pop: the overwhelmingly common removal
      if (head_ == items_.size()) {
        items_.clear();
        head_ = 0;
      } else if (head_ >= 64 && head_ * 2 >= items_.size()) {
        // Dead prefix outgrew the live region: reclaim it (move-compaction,
        // no allocation) so sustained non-empty operation stays bounded.
        items_.erase(items_.begin(),
                     items_.begin() + static_cast<std::ptrdiff_t>(head_));
        head_ = 0;
      }
    } else {
      items_.erase(it);
    }
  }

  std::vector<Entry> items_;  ///< sorted by key in [head_, size)
  std::size_t head_ = 0;      ///< dead-prefix cursor
  std::map<K, V> ref_;        ///< kReference backing (empty in kFlat mode)
  TableMode mode_ = TableMode::kFlat;
};

/// Sorted-vector set; append fast path for mostly-increasing keys.
template <typename K>
class FlatSet {
 public:
  /// True when `key` was not yet a member.
  bool insert(const K& key) {
    if (items_.empty() || items_.back() < key) {
      items_.push_back(key);
      return true;
    }
    auto it = std::lower_bound(items_.begin(), items_.end(), key);
    if (it != items_.end() && *it == key) return false;
    items_.insert(it, key);
    return true;
  }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  void reserve(std::size_t n) { items_.reserve(n); }
  void clear() { items_.clear(); }  // capacity kept

 private:
  std::vector<K> items_;
};

/// Membership set over sequence numbers delivered mostly in order: a dense
/// frontier (every seq below it is a member) plus a small sorted overflow
/// for out-of-order arrivals.  In-order traffic -- the steady state of a
/// clean run -- only increments the frontier and never allocates.
class SeqSet {
 public:
  /// True when `seq` was not yet a member.
  bool insert(std::int64_t seq) {
    if (seq < frontier_) return false;
    if (seq == frontier_) {
      ++frontier_;
      while (head_ < sparse_.size() && sparse_[head_] == frontier_) {
        ++frontier_;
        ++head_;
      }
      if (head_ == sparse_.size()) {
        sparse_.clear();
        head_ = 0;
      }
      return true;
    }
    auto it = std::lower_bound(
        sparse_.begin() + static_cast<std::ptrdiff_t>(head_), sparse_.end(),
        seq);
    if (it != sparse_.end() && *it == seq) return false;
    sparse_.insert(it, seq);
    return true;
  }

  void clear() {
    frontier_ = 0;
    sparse_.clear();
    head_ = 0;
  }

 private:
  std::int64_t frontier_ = 0;          ///< all seqs < frontier_ are members
  std::vector<std::int64_t> sparse_;   ///< sorted members >= frontier_
  std::size_t head_ = 0;               ///< consumed prefix of sparse_
};

/// The reliable link's receive-side dedup history: per sender and per
/// sender incarnation, the sequence numbers already delivered up the stack.
/// Replaces the seed's map<pid, map<incarnation, set<seq>>> nesting with a
/// pid-indexed vector of (incarnation, SeqSet) pairs; all incarnations are
/// retained because a frame from a sender's previous life can still arrive
/// (and must still deduplicate within that life's sequence space).
class LinkDedup {
 public:
  /// True when (from, incarnation, seq) had not been delivered before.
  bool insert(ProcessId from, Tick incarnation, std::int64_t seq) {
    const auto idx = static_cast<std::size_t>(from);
    if (idx >= senders_.size()) senders_.resize(idx + 1);
    auto& lives = senders_[idx];
    for (auto& life : lives) {
      if (life.incarnation == incarnation) return life.seqs.insert(seq);
    }
    lives.push_back(Life{incarnation, {}});
    return lives.back().seqs.insert(seq);
  }

  void clear() { senders_.clear(); }

 private:
  struct Life {
    Tick incarnation = 0;
    SeqSet seqs;
  };
  std::vector<std::vector<Life>> senders_;  ///< indexed by sender pid
};

}  // namespace linbound
