#include "core/recoverable_replica.h"

#include <algorithm>
#include <stdexcept>

namespace linbound {

Tick RecoverableParams::join_retry_for(const SystemTiming& timing) const {
  return join_retry > 0 ? join_retry
                        : 2 * link.effective_d(timing) + 1;
}

Tick RecoverableParams::catchup_for(const SystemTiming& timing) const {
  return link.effective_d(timing) + timing.eps + catchup_margin;
}

RecoverableReplicaProcess::RecoverableReplicaProcess(
    std::shared_ptr<const ObjectModel> model, AlgorithmDelays delays,
    RecoverableParams params)
    : HardenedReplicaProcess(std::move(model), delays, params.link),
      params_(params) {
  if (!params_.valid()) throw std::invalid_argument("invalid RecoverableParams");
}

void RecoverableReplicaProcess::on_recover() {
  // A crash wiped everything volatile: algorithm state, link state, and any
  // rejoin bookkeeping from a previous life.
  reset_volatile_state();
  reset_link_state(std::max<Tick>(link_incarnation() + 1, local_time()));
  joined_ = false;
  serving_ = false;
  recovered_once_ = true;
  ++recoveries_;
  buffered_.clear();
  deferred_.clear();
  snapshot_frontier_.reset();
  seen_ts_.clear();
  last_rejoin_complete_ = kNoTime;
  send_join_request();
}

void RecoverableReplicaProcess::send_join_request() {
  broadcast(make_msg<JoinRequestPayload>(link_incarnation()));
  join_timer_ =
      set_timer(params_.join_retry_for(timing()), TimerTag{kJoinRetry, {}});
}

const JoinSnapshotPayload* RecoverableReplicaProcess::make_snapshot(
    Tick incarnation) const {
  JoinSnapshotPayload* snap = make_msg<JoinSnapshotPayload>();
  snap->state = local_copy().snapshot();
  snap->frontier = executed_frontier();
  snap->executed = executed_count();
  to_execute().for_each([&](const Timestamp& ts, const Operation& op,
                            std::int64_t /*own_token*/) {
    snap->pending.emplace_back(ts, op);
  });
  std::sort(snap->pending.begin(), snap->pending.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  snap->incarnation = incarnation;
  return snap;
}

void RecoverableReplicaProcess::feed_if_new(const Timestamp& ts,
                                            const Operation& op) {
  if (snapshot_frontier_ && ts <= *snapshot_frontier_) {
    ++rejoin_dedup_dropped_;
    return;
  }
  if (!seen_ts_.insert(ts)) {
    ++rejoin_dedup_dropped_;
    return;
  }
  enqueue_replicated(ts, op);
}

void RecoverableReplicaProcess::adopt_snapshot(const JoinSnapshotPayload& snap) {
  adopt_state(snap.state.to_state(), snap.frontier, snap.executed);
  snapshot_frontier_ = snap.frontier;
  joined_ = true;
  if (join_timer_ >= 0) {
    cancel_timer(join_timer_);
    join_timer_ = -1;
  }
  // Re-feed everything the adopted copy does not already reflect: first the
  // peer's pending set, then the broadcasts buffered while we waited.  Both
  // go through the normal To_Execute/holdback path, so execution order and
  // timing safety are Algorithm 1's own.
  for (const auto& [ts, op] : snap.pending) feed_if_new(ts, op);
  for (const auto& [ts, op] : buffered_) feed_if_new(ts, op);
  buffered_.clear();
  set_timer(params_.catchup_for(timing()), TimerTag{kCatchUp, {}});
}

void RecoverableReplicaProcess::on_invoke(std::int64_t token,
                                          const Operation& op) {
  if (!serving_) {
    // Mid-rejoin: accept the invocation but answer only once caught up.
    deferred_.emplace_back(token, op);
    return;
  }
  ReplicaProcess::on_invoke(token, op);
}

void RecoverableReplicaProcess::deliver_app(ProcessId from,
                                            const MessagePayload& payload) {
  if (const auto* join = dynamic_cast<const JoinRequestPayload*>(&payload)) {
    // Serve state to a rejoiner -- but only from a joined copy; a replica
    // that is itself mid-rejoin has nothing trustworthy to hand out.
    if (joined_) {
      send(from, make_snapshot(join->incarnation));
      ++snapshots_served_;
    }
    return;
  }
  if (const auto* snap = dynamic_cast<const JoinSnapshotPayload*>(&payload)) {
    // Adopt the first snapshot for *this* incarnation; later ones (other
    // peers answering, or retransmissions) are redundant.
    if (!joined_ && snap->incarnation == link_incarnation()) {
      adopt_snapshot(*snap);
    }
    return;
  }
  if (const auto* op = dynamic_cast<const OpBroadcastPayload*>(&payload)) {
    if (!joined_) {
      // No state to order against yet; hold it for adoption time.
      buffered_.emplace_back(op->ts, op->op);
      return;
    }
    if (recovered_once_) {
      // Post-rejoin deliveries can duplicate what the snapshot or the
      // buffer already supplied (e.g. a peer retransmitting across our
      // downtime under its old incarnation).
      feed_if_new(op->ts, op->op);
      return;
    }
    HardenedReplicaProcess::deliver_app(from, payload);
    return;
  }
  HardenedReplicaProcess::deliver_app(from, payload);
}

void RecoverableReplicaProcess::on_timer(TimerId id, const TimerTag& tag) {
  switch (tag.kind) {
    case kJoinRetry:
      // Unanswered (every peer down or our request lost past the link's
      // attempt budget): ask again, forever -- availability returns as soon
      // as any peer does.
      if (!joined_) send_join_request();
      return;
    case kCatchUp: {
      serving_ = true;
      last_rejoin_complete_ = local_time();
      auto deferred = std::move(deferred_);
      deferred_.clear();
      for (const auto& [token, op] : deferred) {
        ReplicaProcess::on_invoke(token, op);
      }
      return;
    }
    default:
      HardenedReplicaProcess::on_timer(id, tag);
  }
}

}  // namespace linbound
