// Crash-recovery on top of the hardened replica: rejoin + state transfer.
//
// The paper's model is failure-free; the hardened variant survives message
// faults but a crashed replica stays dead.  This variant lets it come back.
// A recovered process has lost all volatile state (its object copy, the
// To_Execute queue, link-layer history -- everything), so it runs a rejoin
// protocol before answering operations again:
//
//   1. On recovery it picks a fresh link incarnation (the local clock at
//      recovery: monotonically larger than any previous life's, with no
//      stable storage) and broadcasts JoinRequest, retrying every
//      join_retry ticks until answered.
//   2. Every joined peer replies with a JoinSnapshot: a clone of its object
//      copy, the timestamp frontier that copy reflects (its executed
//      prefix), and its pending To_Execute entries.  Meanwhile the rejoiner
//      buffers live OpBroadcasts instead of queueing them (it has no state
//      to order them against yet).
//   3. The rejoiner adopts the first snapshot matching its incarnation,
//      re-feeds the snapshot's pending set and its own buffer through the
//      normal To_Execute/holdback path (dropping everything at or below the
//      snapshot frontier, deduplicating across the two sources), and then
//      waits one catch-up window,
//
//          catchup = d_eff + eps   (+ catchup_margin),
//
//      before serving invocations: the adopted snapshot is at most d_eff
//      stale (any operation it misses was broadcast less than d_eff before
//      the snapshot was sent, and every copy addressed to us is either
//      buffered already or arrives within d_eff of our recovery -- the
//      sender's link layer keeps retransmitting across our downtime), and
//      eps covers the stamping skew.  After the window the local copy is as
//      caught-up as any replica's, so responses keep Algorithm 1's
//      correctness argument; client operations invoked during the window
//      are deferred, not refused.
//
// Survivors are untouched: they answer a JoinRequest with one message and
// otherwise run the standard algorithm, so their d_eff+eps / eps+X response
// bounds still hold (bench_churn_sweep measures exactly this).
//
// Limits, stated rather than hidden: downtime longer than the link layer's
// retransmission budget can lose an operation's broadcast to the rejoiner
// forever if it is also past every snapshot's pending set; such runs are
// attributed by the assumption monitor (kRecovering / kReliableDelivery),
// not silently accepted.  With max_down > 1 simultaneous crashes, a
// snapshot may itself come from a replica that is missing an operation.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/hardened_replica.h"
#include "core/pending_tables.h"
#include "spec/snapshot.h"

namespace linbound {

/// Knobs of the recovery layer, on top of the reliable link's.
struct RecoverableParams {
  HardenedParams link;
  /// JoinRequest retry period; 0 means a round trip over the effective
  /// link, 2 * d_eff + 1.
  Tick join_retry = 0;
  /// Extra catch-up wait on top of d_eff + eps.
  Tick catchup_margin = 0;

  Tick join_retry_for(const SystemTiming& timing) const;
  Tick catchup_for(const SystemTiming& timing) const;

  bool valid() const {
    return link.valid() && join_retry >= 0 && catchup_margin >= 0;
  }
};

/// Rejoiner -> everyone: "I am back (as incarnation `incarnation`), send me
/// your state."
struct JoinRequestPayload final : MessagePayload {
  Tick incarnation = 0;
  explicit JoinRequestPayload(Tick inc) : incarnation(inc) {}
};

/// Joined peer -> rejoiner: state transfer.  `state` is a copy-on-write
/// snapshot of the peer's object copy (spec/snapshot.h; taking it costs one
/// clone, sharing it costs nothing), `frontier`/`executed` the prefix it reflects,
/// `pending` the peer's queued-but-unexecuted entries (timestamp order).
/// `incarnation` echoes the request, so a stale snapshot from a previous
/// join attempt cannot be adopted by a later life.
struct JoinSnapshotPayload final : MessagePayload {
  Snapshot state;
  std::optional<Timestamp> frontier;
  std::size_t executed = 0;
  std::vector<std::pair<Timestamp, Operation>> pending;
  Tick incarnation = 0;
};

class RecoverableReplicaProcess final : public HardenedReplicaProcess {
 public:
  /// `delays` must be computed against params.link.effective_timing --
  /// ReplicaSystem does this when SystemOptions::recoverable is set.
  RecoverableReplicaProcess(std::shared_ptr<const ObjectModel> model,
                            AlgorithmDelays delays, RecoverableParams params);

  void on_recover() override;
  void on_invoke(std::int64_t token, const Operation& op) override;
  void on_timer(TimerId id, const TimerTag& tag) override;

  /// Recovery introspection for tests and the churn sweep.
  bool joined() const { return joined_; }
  bool serving() const { return serving_; }
  int recoveries() const { return recoveries_; }
  std::int64_t snapshots_served() const { return snapshots_served_; }
  std::int64_t rejoin_dedup_dropped() const { return rejoin_dedup_dropped_; }
  /// Local time when the last rejoin reached serving state; kNoTime if
  /// never recovered (or still catching up).
  Tick last_rejoin_complete() const { return last_rejoin_complete_; }

 protected:
  void deliver_app(ProcessId from, const MessagePayload& payload) override;

 private:
  /// Recovery timer kinds; disjoint from ReplicaProcess's (1..4) and the
  /// link layer's (100).
  static constexpr int kJoinRetry = 200;
  static constexpr int kCatchUp = 201;

  void send_join_request();
  void adopt_snapshot(const JoinSnapshotPayload& snap);
  const JoinSnapshotPayload* make_snapshot(Tick incarnation) const;
  /// Queue a rejoin-sourced op unless the snapshot frontier covers it or it
  /// was already queued from the other source.
  void feed_if_new(const Timestamp& ts, const Operation& op);

  RecoverableParams params_;
  /// False between on_recover and snapshot adoption.
  bool joined_ = true;
  /// False between on_recover and the end of the catch-up window.
  bool serving_ = true;
  bool recovered_once_ = false;
  int recoveries_ = 0;

  /// Live OpBroadcasts received while not joined.
  std::vector<std::pair<Timestamp, Operation>> buffered_;
  /// Operations invoked while not serving, replayed when the catch-up
  /// window closes (at most one under the one-pending-op rule; a vector
  /// keeps the invariant visible).
  std::vector<std::pair<std::int64_t, Operation>> deferred_;
  /// Frontier of the adopted snapshot: broadcasts at or below it are
  /// already reflected in the adopted state and must not re-apply.
  std::optional<Timestamp> snapshot_frontier_;
  /// Timestamps queued since the last recovery (dedup across the snapshot
  /// pending set, the rejoin buffer, and post-join retransmissions).
  FlatSet<Timestamp> seen_ts_;
  TimerId join_timer_ = -1;

  std::int64_t snapshots_served_ = 0;
  std::int64_t rejoin_dedup_dropped_ = 0;
  Tick last_rejoin_complete_ = kNoTime;
};

}  // namespace linbound
