#include "core/replica_algorithm.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace linbound {

AlgorithmDelays AlgorithmDelays::standard(const SystemTiming& timing, Tick x) {
  if (x < 0 || x > timing.d + timing.eps - timing.u) {
    throw std::invalid_argument("X must lie in [0, d+eps-u]");
  }
  AlgorithmDelays out;
  out.self_add = timing.d - timing.u;
  out.holdback = timing.u + timing.eps;
  // eps + X, but never zero: the paper's timestamp-uniqueness remark
  // (after Lemma C.11) needs a mutator to stay pending strictly longer
  // than X so that a same-process successor gets a larger timestamp; with
  // perfectly synchronized clocks (eps = 0) that requires one extra tick.
  out.mop_ack = std::max<Tick>(timing.eps, 1) + x;
  out.aop_respond = timing.d + timing.eps - x;
  out.aop_backdate = x;
  return out;
}

AlgorithmDelays AlgorithmDelays::eager_oop(const SystemTiming& timing, Tick x,
                                           Tick latency) {
  AlgorithmDelays out = standard(timing, x);
  out.self_add = std::min(out.self_add, latency);
  out.holdback = latency - out.self_add;
  return out;
}

AlgorithmDelays AlgorithmDelays::eager_mop(const SystemTiming& timing, Tick x,
                                           Tick latency) {
  AlgorithmDelays out = standard(timing, x);
  out.mop_ack = latency;
  return out;
}

AlgorithmDelays AlgorithmDelays::eager_aop(const SystemTiming& timing, Tick x,
                                           Tick latency) {
  AlgorithmDelays out = standard(timing, x);
  out.aop_respond = latency;
  return out;
}

AlgorithmDelays AlgorithmDelays::drift_compensated(const SystemTiming& timing,
                                                   Tick x,
                                                   std::int64_t max_abs_ppm,
                                                   Tick horizon) {
  if (max_abs_ppm < 0 || horizon < 0) {
    throw std::invalid_argument("drift compensation needs nonnegative bounds");
  }
  SystemTiming widened = timing;
  widened.eps = timing.eps + 2 * horizon * max_abs_ppm / 1'000'000 + 1;
  return standard(widened, x);
}

ReplicaProcess::ReplicaProcess(std::shared_ptr<const ObjectModel> model,
                               AlgorithmDelays delays)
    : model_(std::move(model)),
      delays_(delays),
      local_obj_(model_->initial_state()) {}

Tick ReplicaProcess::next_stamp_clock() {
  Tick clock = algo_clock();
  if (last_stamp_clock_ != kNoTime && clock <= last_stamp_clock_) {
    clock = last_stamp_clock_ + 1;
  }
  last_stamp_clock_ = clock;
  return clock;
}

void ReplicaProcess::on_invoke(std::int64_t token, const Operation& op) {
  const OpClass cls = model_->classify(op);

  if (cls == OpClass::kPureAccessor) {
    // Back-date the timestamp by X; do not broadcast (accessors do not
    // modify any copy).  Respond after d+eps-X, by which time every
    // operation with a smaller timestamp has been received and queued.
    // (Back-dating bypasses the monotonic guard on purpose: accessor
    // timestamps may legitimately precede earlier mutators' stamps.)
    const Timestamp ts{algo_clock() - delays_.aop_backdate, id()};
    awaiting_aop_.insert_or_assign(ts, PendingAccessor{op, token});
    set_timer(delays_.aop_respond, TimerTag{kAopRespond, ts});
    return;
  }

  // MOP and OOP share the broadcast / To_Execute path.
  const Timestamp ts{next_stamp_clock(), id()};
  broadcast(make_msg<OpBroadcastPayload>(op, ts));
  awaiting_self_add_.insert_or_assign(
      ts, StoredOwnOp{op, token, /*respond_on_execute=*/cls == OpClass::kOther});
  set_timer(delays_.self_add, TimerTag{kSelfAdd, ts});
  if (cls == OpClass::kPureMutator) {
    awaiting_mop_ack_.insert_or_assign(ts, token);
    set_timer(delays_.mop_ack, TimerTag{kMopAck, ts});
  }
}

void ReplicaProcess::on_message(ProcessId /*from*/, const MessagePayload& payload) {
  const auto& msg = dynamic_cast<const OpBroadcastPayload&>(payload);
  enqueue_replicated(msg.ts, msg.op);
}

void ReplicaProcess::on_timer(TimerId /*id*/, const TimerTag& tag) {
  switch (tag.kind) {
    case kSelfAdd: {
      auto own = awaiting_self_add_.extract(tag.ts);
      if (!own) return;
      queue_.add(PendingOp{tag.ts, std::move(own->op),
                           own->respond_on_execute ? own->token : -1});
      set_timer(delays_.holdback, TimerTag{kExecute, tag.ts});
      return;
    }
    case kExecute:
      execute_up_to(tag.ts, /*inclusive=*/true);
      return;
    case kMopAck: {
      auto token = awaiting_mop_ack_.extract(tag.ts);
      if (!token) return;
      respond(*token, Value::unit());
      return;
    }
    case kAopRespond: {
      auto acc = awaiting_aop_.extract(tag.ts);
      if (!acc) return;
      // Execute everything with a strictly smaller timestamp, then the
      // accessor itself on the local copy.
      execute_up_to(tag.ts, /*inclusive=*/false);
      const Value ret = local_obj_->apply(acc->op);
      respond(acc->token, ret);
      return;
    }
    default:
      return;
  }
}

void ReplicaProcess::execute_up_to(const Timestamp& ts, bool inclusive) {
  while (auto min_ts = queue_.min()) {
    const bool in_range = inclusive ? (*min_ts <= ts) : (*min_ts < ts);
    if (!in_range) break;
    PendingOp entry = queue_.extract_min();
    const Value ret = local_obj_->apply(entry.op);
    ++executed_count_;
    executed_frontier_ = entry.ts;
    if (entry.own_token >= 0) respond(entry.own_token, ret);
  }
}

std::vector<DrainedOwnOp> ReplicaProcess::drain_own_unresponded() const {
  std::map<Timestamp, DrainedOwnOp> merged;
  awaiting_self_add_.for_each([&](const Timestamp& ts, const StoredOwnOp& own) {
    DrainedOwnOp d;
    d.ts = ts;
    d.op = own.op;
    // A MOP's token is attached below from its ack record; an OOP responds
    // with the execution result.
    d.token = own.respond_on_execute ? own.token : -1;
    merged[ts] = std::move(d);
  });
  queue_.for_each([&](const Timestamp& ts, const Operation& op,
                      std::int64_t own_token) {
    if (own_token < 0) return;  // a peer's op: nothing owed here
    DrainedOwnOp d;
    d.ts = ts;
    d.op = op;
    d.token = own_token;
    merged[ts] = std::move(d);
  });
  awaiting_mop_ack_.for_each([&](const Timestamp& ts,
                                 const std::int64_t& token) {
    auto it = merged.find(ts);
    if (it != merged.end()) {
      // Still awaiting self-add: the op is known, only the ack shape
      // changes.
      it->second.token = token;
      it->second.ack_only = true;
      return;
    }
    DrainedOwnOp d;
    d.ts = ts;
    // Self-added already: the op sits in To_Execute (own_token -1 for
    // mutators) or has executed -- recover it if still queued.
    if (const Operation* queued = queue_.find(ts)) d.op = *queued;
    d.token = token;
    d.ack_only = true;
    merged[ts] = std::move(d);
  });
  awaiting_aop_.for_each([&](const Timestamp& ts, const PendingAccessor& acc) {
    DrainedOwnOp d;
    d.ts = ts;
    d.op = acc.op;
    d.token = acc.token;
    merged[ts] = std::move(d);
  });
  std::vector<DrainedOwnOp> out;
  out.reserve(merged.size());
  for (auto& [ts, d] : merged) out.push_back(std::move(d));
  return out;
}

void ReplicaProcess::reset_volatile_state() {
  local_obj_ = model_->initial_state();
  queue_.clear();
  executed_count_ = 0;
  last_stamp_clock_ = kNoTime;
  executed_frontier_.reset();
  awaiting_self_add_.clear();
  awaiting_mop_ack_.clear();
  awaiting_aop_.clear();
}

void ReplicaProcess::adopt_state(std::unique_ptr<ObjectState> state,
                                 std::optional<Timestamp> frontier,
                                 std::size_t executed) {
  local_obj_ = std::move(state);
  executed_frontier_ = frontier;
  executed_count_ = executed;
}

void ReplicaProcess::enqueue_replicated(const Timestamp& ts,
                                        const Operation& op) {
  queue_.add(PendingOp{ts, op, /*own_token=*/-1});
  set_timer(delays_.holdback, TimerTag{kExecute, ts});
}

}  // namespace linbound
