// Algorithm 1 of the paper (Chapter V): a linearizable implementation of an
// arbitrary data type that beats the folklore 2d bound.
//
// Every process keeps a full copy of the object.  Operations are stamped
// with <local clock, pid> timestamps and applied to every copy in timestamp
// order; the timing parameters make that order safe:
//
//   OOP (mutating + returning, e.g. RMW/pop/dequeue):
//     broadcast <op, ts>; the sender adds it to its own To_Execute queue
//     after d-u (as if through the fastest message); every holder waits
//     u+eps after adding before executing -- by then no smaller-timestamped
//     operation can still arrive (Lemma C.8).  The response is produced by
//     the sender's own execution.  Worst case d+eps.
//
//   MOP (pure mutators, e.g. write/enqueue/push):
//     same broadcast/execute path, but the ack is returned early, eps+X
//     after invocation -- returning nothing, a pure mutator only has to be
//     slow enough (>= eps) that non-overlapping mutators get ordered
//     timestamps (Lemma C.11).
//
//   AOP (pure accessors, e.g. read/peek):
//     not broadcast at all.  The timestamp is back-dated by X ("pretending
//     it was invoked X earlier"), and the response comes d+eps-X after
//     invocation, at which point every operation with a smaller timestamp
//     has been executed locally (Lemma C.9).
//
// X in [0, d+eps-u] trades accessor latency against mutator latency:
// |MOP| = eps+X, |AOP| = d+eps-X, |MOP|+|AOP| = d+2eps.
//
// The same class also serves as the *eager* (deliberately too fast) variant
// used by the lower-bound demonstrations: AlgorithmDelays can be constructed
// with shortened waits, which preserves the code path while breaking the
// safety argument -- exactly the "assume a faster implementation exists"
// step of the proofs.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/timestamp.h"
#include "core/pending_tables.h"
#include "core/to_execute.h"
#include "sim/process.h"
#include "spec/object_model.h"

namespace linbound {

struct AlgorithmDelays {
  Tick self_add = 0;     ///< sender queues its own op after this (paper: d-u)
  Tick holdback = 0;     ///< wait after queueing before executing (u+eps)
  Tick mop_ack = 0;      ///< pure-mutator response delay (eps+X)
  Tick aop_respond = 0;  ///< pure-accessor response delay (d+eps-X)
  Tick aop_backdate = 0; ///< accessor timestamp back-dating (X)

  /// The paper's choices for a system synchronized to skew eps, with
  /// trade-off parameter X in [0, d+eps-u].
  static AlgorithmDelays standard(const SystemTiming& timing, Tick x);

  /// Eager OOP variant: total OOP latency (self_add + holdback) squeezed to
  /// `latency`, keeping the other knobs standard.  Used to demonstrate
  /// Theorem C.1.
  static AlgorithmDelays eager_oop(const SystemTiming& timing, Tick x,
                                   Tick latency);

  /// Eager MOP variant: ack after `latency` instead of eps+X (Theorem D.1).
  static AlgorithmDelays eager_mop(const SystemTiming& timing, Tick x,
                                   Tick latency);

  /// Eager AOP variant: respond after `latency` instead of d+eps-X
  /// (Theorem E.1, together with eager_mop).
  static AlgorithmDelays eager_aop(const SystemTiming& timing, Tick x,
                                   Tick latency);

  /// Drift-compensated variant (Chapter VII future work): with clock rates
  /// within +-max_abs_ppm and a run no longer than `horizon` real ticks,
  /// the pairwise clock divergence grows to at most
  /// eps_eff = eps + 2 * horizon * max_abs_ppm / 1e6 (+1 rounding slack);
  /// the standard delays computed at eps_eff restore the safety argument
  /// for the bounded horizon, at proportionally higher latency.
  static AlgorithmDelays drift_compensated(const SystemTiming& timing, Tick x,
                                           std::int64_t max_abs_ppm,
                                           Tick horizon);
};

/// One of a replica's own operations that has not produced its response yet
/// -- what a mode switch must carry over to the degraded backend
/// (src/degrade/mode_switching_replica.h) so the client is still answered.
struct DrainedOwnOp {
  Timestamp ts{};
  /// The operation itself; nullopt only for a pure mutator whose broadcast
  /// copy already executed locally and whose early ack alone is still owed.
  std::optional<Operation> op;
  std::int64_t token = -1;
  /// True when the response is the unit ack (pure mutators), false when it
  /// is the operation's application result (OOPs and accessors).
  bool ack_only = false;
};

class ReplicaProcess : public Process {
 public:
  ReplicaProcess(std::shared_ptr<const ObjectModel> model, AlgorithmDelays delays);

  void on_invoke(std::int64_t token, const Operation& op) override;
  void on_message(ProcessId from, const MessagePayload& payload) override;
  void on_timer(TimerId id, const TimerTag& tag) override;

  /// Introspection for tests/benches.
  const ObjectState& local_copy() const { return *local_obj_; }
  std::size_t queued() const { return queue_.size(); }
  std::size_t executed_count() const { return executed_count_; }

  /// Timestamp of the last operation applied to the local copy; nullopt
  /// before the first execution.  Everything at or below this frontier is
  /// reflected in local_copy() -- the "executed prefix" a state-transfer
  /// snapshot hands to a rejoining replica.
  std::optional<Timestamp> executed_frontier() const {
    return executed_frontier_;
  }

  /// Choose the pending-table backing (core/pending_tables.h).  Flat tables
  /// (the default) are the allocation-free hot path; kReference restores
  /// the seed's std::map nodes for the bench_throughput baseline.  Only
  /// legal before any operation is pending -- ReplicaSystem calls it right
  /// after construction.  Both modes produce byte-identical traces.
  void set_table_mode(TableMode mode) {
    awaiting_self_add_.set_mode(mode);
    awaiting_mop_ack_.set_mode(mode);
    awaiting_aop_.set_mode(mode);
  }

  /// Pre-size the pending tables and the To_Execute pools for `n`
  /// concurrently pending operations (the workload's per-replica high-water
  /// bound).  Capacity-only: behavior is unchanged.
  void reserve_pending(std::size_t n) {
    awaiting_self_add_.reserve(n);
    awaiting_mop_ack_.reserve(n);
    awaiting_aop_.reserve(n);
    queue_.reserve(n);
  }

 protected:
  /// The clock that timestamps operations.  The base algorithm reads the
  /// process's local clock; the drift-managed subclass adds its running
  /// synchronization adjustment.
  virtual Tick algo_clock() const { return local_time(); }

  /// algo_clock(), forced strictly past the last issued stamp -- keeps
  /// per-process timestamps unique even if the adjusted clock steps
  /// backwards after a resynchronization.
  Tick next_stamp_clock();

  // --- crash-recovery support (core/recoverable_replica.h) ---

  /// Drop every piece of volatile algorithm state: local copy back to the
  /// initial value, To_Execute queue and all awaiting-timer maps emptied,
  /// counters zeroed.  What a true crash leaves behind.
  void reset_volatile_state();

  /// Install a transferred copy: `state` becomes the local object,
  /// `frontier`/`executed` describe the prefix it reflects.  Subsequent
  /// broadcasts with timestamps <= frontier must not be re-applied (the
  /// recoverable subclass filters them).
  void adopt_state(std::unique_ptr<ObjectState> state,
                   std::optional<Timestamp> frontier, std::size_t executed);

  /// Queue a replicated operation exactly as if its broadcast had just
  /// arrived (To_Execute add + holdback timer) -- state transfer re-feeds a
  /// snapshot's pending set and the rejoin buffer through this.
  void enqueue_replicated(const Timestamp& ts, const Operation& op);

  const ObjectModel& object_model() const { return *model_; }
  const AlgorithmDelays& algo_delays() const { return delays_; }
  const ToExecuteQueue& to_execute() const { return queue_; }

  /// Snapshot every own operation still awaiting its response, in timestamp
  /// order: broadcast ops awaiting self-add, own entries still in
  /// To_Execute, pure mutators awaiting their early ack, accessors awaiting
  /// their respond timer.  Read-only -- the caller (a degraded-mode switch)
  /// decides what to do with the tokens and typically follows up with
  /// reset_volatile_state().
  std::vector<DrainedOwnOp> drain_own_unresponded() const;

 private:
  enum TimerKind : int { kSelfAdd = 1, kExecute = 2, kMopAck = 3, kAopRespond = 4 };

  /// Apply queued operations in timestamp order up to `ts`
  /// (inclusive/exclusive per `inclusive`), responding for own OOPs.
  void execute_up_to(const Timestamp& ts, bool inclusive);

  std::shared_ptr<const ObjectModel> model_;
  AlgorithmDelays delays_;
  std::unique_ptr<ObjectState> local_obj_;
  ToExecuteQueue queue_;
  std::size_t executed_count_ = 0;
  Tick last_stamp_clock_ = kNoTime;
  std::optional<Timestamp> executed_frontier_;

  struct StoredOwnOp {
    Operation op;
    std::int64_t token = -1;
    bool respond_on_execute = false;  // true for OOP
  };
  /// Own broadcast operations awaiting their self-add timer, keyed by ts.
  /// Per-process timestamps are strictly increasing (next_stamp_clock), so
  /// every insert is an append and every timer-driven removal a head pop.
  FlatMap<Timestamp, StoredOwnOp> awaiting_self_add_;

  /// Pure-mutator tokens awaiting their ack timer, keyed by ts.
  FlatMap<Timestamp, std::int64_t> awaiting_mop_ack_;

  struct PendingAccessor {
    Operation op;
    std::int64_t token = -1;
  };
  /// Pure accessors awaiting their respond timer, keyed by (back-dated) ts.
  FlatMap<Timestamp, PendingAccessor> awaiting_aop_;
};

/// The broadcast payload <op, arg, ts> of Algorithm 1.
struct OpBroadcastPayload final : MessagePayload {
  Operation op;
  Timestamp ts;
  OpBroadcastPayload(Operation o, Timestamp t) : op(std::move(o)), ts(t) {}
};

}  // namespace linbound
