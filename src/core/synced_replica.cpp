#include "core/synced_replica.h"

#include <stdexcept>

namespace linbound {

SyncedReplicaProcess::SyncedReplicaProcess(std::shared_ptr<const ObjectModel> model,
                                           AlgorithmDelays delays,
                                           Tick resync_period)
    : ReplicaProcess(std::move(model), delays), resync_period_(resync_period) {
  if (resync_period <= 0) throw std::invalid_argument("resync period must be > 0");
}

void SyncedReplicaProcess::on_start() {
  // First round immediately, then every resync_period of local time.
  begin_round();
}

void SyncedReplicaProcess::begin_round() {
  ++current_round_;
  broadcast(make_msg<SyncReadingPayload>(current_round_, algo_clock()));
  set_timer(resync_period_, TimerTag{kSyncTimer, {}});
}

void SyncedReplicaProcess::on_message(ProcessId from, const MessagePayload& payload) {
  if (const auto* sync = dynamic_cast<const SyncReadingPayload*>(&payload)) {
    RoundState& state = rounds_[sync->round];
    // Midpoint estimate of (sender's adjusted clock - mine), doubled so it
    // stays an exact integer: 2*est = 2*T_j + 2*d - u - 2*my_reading.
    state.doubled_sum +=
        2 * sync->reading + 2 * timing().d - timing().u - 2 * algo_clock();
    ++state.received;
    maybe_finish_round(sync->round);
    return;
  }
  ReplicaProcess::on_message(from, payload);
}

void SyncedReplicaProcess::maybe_finish_round(std::int64_t round) {
  auto it = rounds_.find(round);
  if (it == rounds_.end() || it->second.received < process_count() - 1) return;
  // Average over all n processes (own difference 0): doubled_sum / (2n),
  // rounded toward zero -- the slack term of synced_eps_bound covers it.
  const Tick delta = it->second.doubled_sum / (2 * process_count());
  adjustment_ += delta;
  rounds_.erase(it);
  ++rounds_completed_;
}

void SyncedReplicaProcess::on_timer(TimerId id, const TimerTag& tag) {
  if (tag.kind == kSyncTimer) {
    begin_round();
    return;
  }
  ReplicaProcess::on_timer(id, tag);
}

Tick synced_eps_bound(const SystemTiming& timing, int n, std::int64_t max_abs_ppm,
                      Tick resync_period) {
  const Tick post_sync = timing.u - timing.u / n;  // (1 - 1/n) u
  // Divergence between syncs: both clocks can drift apart at up to
  // 2*rho; the period itself is measured on a drifting clock and rounds
  // take up to d to complete, so pad the window by d.
  const Tick window = resync_period + timing.d;
  const Tick drift_apart = 2 * window * max_abs_ppm / 1'000'000 + 1;
  // Rounding slack: the averaged estimate floors once per round, the drift
  // floor loses up to a tick per reading, and estimates themselves carry
  // the +-u/2 already inside post_sync.
  const Tick slack = 4;
  return post_sync + drift_apart + slack;
}

}  // namespace linbound
