// Drift-managed Algorithm 1: periodic in-band Lundelius-Lynch
// resynchronization (the composition Chapter VII gestures at).
//
// With clock rates within +-rho and no correction, pairwise divergence
// grows without bound and no fixed-wait algorithm stays safe.  This
// subclass runs a Lundelius-Lynch averaging round every `resync_period`
// (on its own message type, interleaved with object traffic) and stamps
// operations with the *adjusted* clock
//     algo_clock() = local_time() + adjustment.
// Between two rounds the adjusted clocks diverge by at most the post-sync
// skew (1-1/n)u plus 2*rho*resync_period plus rounding slack, so running
// the algorithm at
//     eps_eff = (1-1/n)u + 2*rho*resync_period + slack
// (see synced_eps_bound) keeps it safe over an UNBOUNDED horizon -- unlike
// the fixed-horizon compensation of AlgorithmDelays::drift_compensated.
//
// A resynchronization may step the adjusted clock backwards; timestamps
// stay per-process unique through the base class's monotonic stamp guard.
#pragma once

#include <map>

#include "core/replica_algorithm.h"

namespace linbound {

/// The sync round message: the sender's adjusted clock reading.
struct SyncReadingPayload final : MessagePayload {
  std::int64_t round = 0;
  Tick reading = 0;
  SyncReadingPayload(std::int64_t r, Tick t) : round(r), reading(t) {}
};

class SyncedReplicaProcess final : public ReplicaProcess {
 public:
  SyncedReplicaProcess(std::shared_ptr<const ObjectModel> model,
                       AlgorithmDelays delays, Tick resync_period);

  void on_start() override;
  void on_message(ProcessId from, const MessagePayload& payload) override;
  void on_timer(TimerId id, const TimerTag& tag) override;

  /// Doubled-and-scaled adjustment applied so far (diagnostics).
  Tick adjustment() const { return adjustment_; }
  std::int64_t rounds_completed() const { return rounds_completed_; }

 protected:
  Tick algo_clock() const override { return local_time() + adjustment_; }

 private:
  static constexpr int kSyncTimer = 100;  // disjoint from the base kinds

  void begin_round();
  void maybe_finish_round(std::int64_t round);

  Tick resync_period_;
  Tick adjustment_ = 0;
  std::int64_t current_round_ = -1;
  std::int64_t rounds_completed_ = 0;
  /// round -> (doubled estimate sum, readings received)
  struct RoundState {
    Tick doubled_sum = 0;
    int received = 0;
  };
  std::map<std::int64_t, RoundState> rounds_;
};

/// The eps the synced deployment must be configured with: post-sync skew
/// (1-1/n)u, plus divergence accumulated over one resync period at rate
/// rho each way, plus integer-rounding slack for the averaging and the
/// drifting measurement of the period itself.
Tick synced_eps_bound(const SystemTiming& timing, int n, std::int64_t max_abs_ppm,
                      Tick resync_period);

}  // namespace linbound
