#include "core/system.h"

#include <stdexcept>

namespace linbound {

ObjectSystem::ObjectSystem(std::shared_ptr<const ObjectModel> model,
                           const SystemOptions& options)
    : model_(std::move(model)) {
  SimConfig config;
  config.timing = options.timing;
  config.clock_offsets = options.clock_offsets;
  config.delays = options.delays;
  config.max_events = options.max_events;
  sim_ = std::make_unique<Simulator>(std::move(config));
}

History ObjectSystem::run_to_completion() {
  sim_->start();
  if (!sim_->run()) {
    throw std::runtime_error("simulation exceeded the event cap");
  }
  return History::from_trace(sim_->trace());
}

CheckResult ObjectSystem::run_and_check() {
  return check_linearizable(*model_, run_to_completion());
}

ReplicaSystem::ReplicaSystem(std::shared_ptr<const ObjectModel> model,
                             const SystemOptions& options)
    : ObjectSystem(std::move(model), options),
      delays_(options.algorithm_delays
                  ? *options.algorithm_delays
                  : AlgorithmDelays::standard(options.timing, options.x)) {
  for (int i = 0; i < options.n; ++i) {
    sim_->add_process(std::make_unique<ReplicaProcess>(model_, delays_));
  }
}

ReplicaProcess& ReplicaSystem::replica(ProcessId pid) {
  return dynamic_cast<ReplicaProcess&>(sim_->process(pid));
}

CentralizedSystem::CentralizedSystem(std::shared_ptr<const ObjectModel> model,
                                     const SystemOptions& options)
    : ObjectSystem(std::move(model), options) {
  for (int i = 0; i < options.n; ++i) {
    sim_->add_process(
        std::make_unique<CentralizedProcess>(model_, /*coordinator=*/0));
  }
}

TobSystem::TobSystem(std::shared_ptr<const ObjectModel> model,
                     const SystemOptions& options)
    : ObjectSystem(std::move(model), options) {
  for (int i = 0; i < options.n; ++i) {
    sim_->add_process(std::make_unique<TobProcess>(model_, /*sequencer=*/0));
  }
}

}  // namespace linbound
