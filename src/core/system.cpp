#include "core/system.h"

#include <stdexcept>

namespace linbound {

const char* run_status_name(RunStatus status) {
  switch (status) {
    case RunStatus::kComplete:
      return "complete";
    case RunStatus::kStalled:
      return "stalled";
    case RunStatus::kEventCapExceeded:
      return "event-cap-exceeded";
    case RunStatus::kAborted:
      return "aborted";
  }
  return "?";
}

ObjectSystem::ObjectSystem(std::shared_ptr<const ObjectModel> model,
                           const SystemOptions& options)
    : model_(std::move(model)) {
  SimConfig config;
  config.timing = options.timing;
  config.clock_offsets = options.clock_offsets;
  config.delays = options.delays;
  config.faults = options.faults;
  config.max_events = options.max_events;
  config.queue_impl = options.queue_impl;
  config.delivery = options.delivery_mode;
  sim_ = std::make_unique<Simulator>(std::move(config));
}

History ObjectSystem::run_to_completion() {
  sim_->start();
  if (!sim_->run()) {
    throw std::runtime_error("simulation exceeded the event cap");
  }
  return History::from_trace(sim_->trace());
}

RunOutcome ObjectSystem::run_with_outcome() {
  sim_->start();
  const bool quiesced = sim_->run();
  RunOutcome out;
  auto [history, pending] = history_with_pending(sim_->trace());
  out.history = std::move(history);
  out.pending = std::move(pending);
  out.status = !quiesced ? RunStatus::kEventCapExceeded
               : out.pending.empty() ? RunStatus::kComplete
                                     : RunStatus::kStalled;
  return out;
}

CheckResult ObjectSystem::run_and_check() {
  return check_linearizable(*model_, run_to_completion());
}

ReplicaSystem::ReplicaSystem(std::shared_ptr<const ObjectModel> model,
                             const SystemOptions& options)
    : ObjectSystem(std::move(model), options),
      delays_(options.algorithm_delays
                  ? *options.algorithm_delays
                  : AlgorithmDelays::standard(
                        options.recoverable
                            ? options.recoverable->link.effective_timing(
                                  options.timing)
                        : options.hardened
                            ? options.hardened->effective_timing(options.timing)
                            : options.timing,
                        options.x)) {
  for (int i = 0; i < options.n; ++i) {
    if (options.recoverable) {
      sim_->add_process(std::make_unique<RecoverableReplicaProcess>(
          model_, delays_, *options.recoverable));
    } else if (options.hardened) {
      sim_->add_process(std::make_unique<HardenedReplicaProcess>(
          model_, delays_, *options.hardened));
    } else {
      sim_->add_process(std::make_unique<ReplicaProcess>(model_, delays_));
    }
  }
  for (ProcessId p = 0; p < options.n; ++p) {
    replica(p).set_table_mode(options.table_mode);
  }
}

ReplicaProcess& ReplicaSystem::replica(ProcessId pid) {
  return dynamic_cast<ReplicaProcess&>(sim_->process(pid));
}

CentralizedSystem::CentralizedSystem(std::shared_ptr<const ObjectModel> model,
                                     const SystemOptions& options)
    : ObjectSystem(std::move(model), options) {
  if (options.give_up_after < 0) {
    throw std::invalid_argument(
        "SystemOptions::give_up_after must be >= 0 (0 = wait forever)");
  }
  for (int i = 0; i < options.n; ++i) {
    sim_->add_process(std::make_unique<CentralizedProcess>(
        model_, /*coordinator=*/0, options.give_up_after));
  }
}

TobSystem::TobSystem(std::shared_ptr<const ObjectModel> model,
                     const SystemOptions& options)
    : ObjectSystem(std::move(model), options) {
  if (options.give_up_after < 0) {
    throw std::invalid_argument(
        "SystemOptions::give_up_after must be >= 0 (0 = wait forever)");
  }
  for (int i = 0; i < options.n; ++i) {
    sim_->add_process(std::make_unique<TobProcess>(model_, /*sequencer=*/0,
                                                   options.give_up_after));
  }
}

}  // namespace linbound
