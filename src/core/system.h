// Convenience builders: a simulator pre-populated with n replicas running
// Algorithm 1 (or the centralized baseline) over a given object model.
// This is the library's primary entry point -- see examples/quickstart.cpp.
#pragma once

#include <memory>
#include <optional>

#include "checker/history.h"
#include "checker/lin_checker.h"
#include "core/centralized_algorithm.h"
#include "core/replica_algorithm.h"
#include "core/tob_algorithm.h"
#include "sim/simulator.h"
#include "spec/object_model.h"

namespace linbound {

struct SystemOptions {
  int n = 3;
  SystemTiming timing;
  /// Trade-off parameter X in [0, d+eps-u] (Algorithm 1 only).
  Tick x = 0;
  std::shared_ptr<DelayPolicy> delays;     ///< default: worst case (all d)
  std::vector<Tick> clock_offsets;         ///< default: all zero
  /// Override the algorithm's internal delays (eager variants for the
  /// lower-bound demonstrations).  Algorithm 1 only.
  std::optional<AlgorithmDelays> algorithm_delays;
  std::size_t max_events = 10'000'000;
};

/// A simulator plus the shared-object processes living in it.
class ObjectSystem {
 public:
  Simulator& sim() { return *sim_; }
  const Simulator& sim() const { return *sim_; }
  const ObjectModel& model() const { return *model_; }
  std::shared_ptr<const ObjectModel> model_ptr() const { return model_; }
  int n() const { return sim_->process_count(); }

  /// Run to quiescence and return the resulting history.  Throws if the
  /// event cap tripped or an operation never completed.
  History run_to_completion();

  /// Shorthand: run to completion and check linearizability.
  CheckResult run_and_check();

 protected:
  ObjectSystem(std::shared_ptr<const ObjectModel> model, const SystemOptions& options);

  std::shared_ptr<const ObjectModel> model_;
  std::unique_ptr<Simulator> sim_;
};

/// n processes running Algorithm 1.
class ReplicaSystem final : public ObjectSystem {
 public:
  ReplicaSystem(std::shared_ptr<const ObjectModel> model, const SystemOptions& options);

  const AlgorithmDelays& algorithm_delays() const { return delays_; }
  ReplicaProcess& replica(ProcessId pid);

 private:
  AlgorithmDelays delays_;
};

/// n processes running the folklore centralized algorithm; process 0 is the
/// coordinator.
class CentralizedSystem final : public ObjectSystem {
 public:
  CentralizedSystem(std::shared_ptr<const ObjectModel> model,
                    const SystemOptions& options);
};

/// n processes running the sequencer-based total-order-broadcast baseline;
/// process 0 is the sequencer.
class TobSystem final : public ObjectSystem {
 public:
  TobSystem(std::shared_ptr<const ObjectModel> model, const SystemOptions& options);
};

}  // namespace linbound
