// Convenience builders: a simulator pre-populated with n replicas running
// Algorithm 1 (or the centralized baseline) over a given object model.
// This is the library's primary entry point -- see examples/quickstart.cpp.
#pragma once

#include <memory>
#include <optional>

#include "checker/history.h"
#include "checker/lin_checker.h"
#include "core/centralized_algorithm.h"
#include "core/hardened_replica.h"
#include "core/recoverable_replica.h"
#include "core/replica_algorithm.h"
#include "core/tob_algorithm.h"
#include "sim/simulator.h"
#include "spec/object_model.h"

namespace linbound {

struct SystemOptions {
  int n = 3;
  SystemTiming timing;
  /// Trade-off parameter X in [0, d+eps-u] (Algorithm 1 only).
  Tick x = 0;
  std::shared_ptr<DelayPolicy> delays;     ///< default: worst case (all d)
  /// Fault injection (drop / duplicate / spike / stall); default none.
  std::shared_ptr<FaultPolicy> faults;
  std::vector<Tick> clock_offsets;         ///< default: all zero
  /// Override the algorithm's internal delays (eager variants for the
  /// lower-bound demonstrations).  Algorithm 1 only.
  std::optional<AlgorithmDelays> algorithm_delays;
  /// Run the loss/duplication-tolerant replica variant
  /// (core/hardened_replica.h); its waits are computed against the widened
  /// effective timing unless algorithm_delays overrides them.  Algorithm 1
  /// only.
  std::optional<HardenedParams> hardened;
  /// Run the crash-recovery variant (core/recoverable_replica.h): hardened
  /// link plus the rejoin/state-transfer protocol, so processes crashed and
  /// restarted via Simulator::crash_at/recover_at (e.g. a ChurnSchedule)
  /// catch back up.  Takes precedence over `hardened`.  Algorithm 1 only.
  std::optional<RecoverableParams> recoverable;
  /// Centralized/TOB only: clients abandon an operation (Process::give_up)
  /// this long after invoking it without an answer, so a dead coordinator
  /// or sequencer degrades to a Stalled outcome instead of hanging the
  /// operation forever.  0 = wait forever (the historical behavior and the
  /// default); negative values are rejected at system construction
  /// (std::invalid_argument).
  Tick give_up_after = 0;
  std::size_t max_events = 10'000'000;
  /// Future-event-list implementation (sim/event_queue.h); both produce
  /// byte-identical traces.  kBinaryHeap is the seed structure, used by the
  /// differential tests and the bench_throughput regression baseline.
  EventQueueImpl queue_impl = EventQueueImpl::kCalendar;
  /// Pending-table backing for Algorithm 1 replicas
  /// (core/pending_tables.h); both produce byte-identical traces.
  /// kReference restores the seed's std::map nodes for the
  /// bench_throughput regression baseline.
  TableMode table_mode = TableMode::kFlat;
  /// Delivery batching (sim/simulator.h DeliveryMode); both modes produce
  /// byte-identical traces.  kPerMessage is the seed loop, used by the
  /// differential tests and the bench_throughput regression baseline.
  DeliveryMode delivery_mode = DeliveryMode::kBatched;
};

/// How a run ended.
enum class RunStatus {
  kComplete,          ///< quiescent, every dispatched operation answered
  kStalled,           ///< quiescent, but operations were left pending/abandoned
  kEventCapExceeded,  ///< the event cap tripped (runaway algorithm)
  /// A watchdog ended the run before quiescence: the chaos engine's
  /// non-termination guards (event-count / wall-clock budgets, src/chaos)
  /// cut it off.  Unlike kEventCapExceeded -- a hard simulator safety cap --
  /// an abort is a deliberate, configured verdict of "this run was not going
  /// to finish in budget".
  kAborted,
};

const char* run_status_name(RunStatus status);

/// Tolerant counterpart of ObjectSystem::run_to_completion: the completed
/// history plus whatever was left pending, with an explicit status instead
/// of an exception.
struct RunOutcome {
  RunStatus status = RunStatus::kComplete;
  History history;                          ///< completed operations
  std::vector<PendingInvocation> pending;   ///< dispatched, never answered

  bool complete() const { return status == RunStatus::kComplete; }
  bool stalled() const { return status == RunStatus::kStalled; }
};

/// A simulator plus the shared-object processes living in it.
class ObjectSystem {
 public:
  Simulator& sim() { return *sim_; }
  const Simulator& sim() const { return *sim_; }
  const ObjectModel& model() const { return *model_; }
  std::shared_ptr<const ObjectModel> model_ptr() const { return model_; }
  int n() const { return sim_->process_count(); }

  /// Run to quiescence and return the resulting history.  Throws if the
  /// event cap tripped or an operation never completed.
  History run_to_completion();

  /// Run to quiescence and report what happened instead of throwing:
  /// degraded runs (dead coordinator, given-up operations) come back as
  /// kStalled with the pending invocations listed.
  RunOutcome run_with_outcome();

  /// Shorthand: run to completion and check linearizability.
  CheckResult run_and_check();

 protected:
  ObjectSystem(std::shared_ptr<const ObjectModel> model, const SystemOptions& options);

  std::shared_ptr<const ObjectModel> model_;
  std::unique_ptr<Simulator> sim_;
};

/// n processes running Algorithm 1.
class ReplicaSystem final : public ObjectSystem {
 public:
  ReplicaSystem(std::shared_ptr<const ObjectModel> model, const SystemOptions& options);

  const AlgorithmDelays& algorithm_delays() const { return delays_; }
  ReplicaProcess& replica(ProcessId pid);

 private:
  AlgorithmDelays delays_;
};

/// n processes running the folklore centralized algorithm; process 0 is the
/// coordinator.
class CentralizedSystem final : public ObjectSystem {
 public:
  CentralizedSystem(std::shared_ptr<const ObjectModel> model,
                    const SystemOptions& options);
};

/// n processes running the sequencer-based total-order-broadcast baseline;
/// process 0 is the sequencer.
class TobSystem final : public ObjectSystem {
 public:
  TobSystem(std::shared_ptr<const ObjectModel> model, const SystemOptions& options);
};

}  // namespace linbound
