#include "core/to_execute.h"

#include <cassert>
#include <utility>

namespace linbound {

void ToExecuteQueue::add(PendingOp entry) {
  std::int32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
    slots_[static_cast<std::size_t>(slot)] =
        Slot{std::move(entry.op), entry.own_token};
  } else {
    slot = static_cast<std::int32_t>(slots_.size());
    slots_.push_back(Slot{std::move(entry.op), entry.own_token});
  }
  keys_.push_back(Key{entry.ts, slot});
  sift_up(keys_.size() - 1);
}

void ToExecuteQueue::reserve(std::size_t n) {
  keys_.reserve(n);
  slots_.reserve(n);
  free_.reserve(n);
}

std::optional<Timestamp> ToExecuteQueue::min() const {
  if (keys_.empty()) return std::nullopt;
  return keys_.front().ts;
}

PendingOp ToExecuteQueue::extract_min() {
  assert(!keys_.empty());
  const Key k = keys_.front();
  Slot& s = slots_[static_cast<std::size_t>(k.slot)];
  PendingOp out{k.ts, std::move(s.op), s.own_token};
  free_.push_back(k.slot);
  keys_.front() = keys_.back();
  keys_.pop_back();
  if (!keys_.empty()) sift_down(0);
  return out;
}

const Operation* ToExecuteQueue::find(const Timestamp& ts) const {
  for (const Key& k : keys_) {
    if (k.ts == ts) return &slots_[static_cast<std::size_t>(k.slot)].op;
  }
  return nullptr;
}

void ToExecuteQueue::clear() {
  keys_.clear();
  slots_.clear();
  free_.clear();  // capacities kept: the steady-state pools
}

void ToExecuteQueue::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (keys_[parent].ts <= keys_[i].ts) break;
    std::swap(keys_[parent], keys_[i]);
    i = parent;
  }
}

void ToExecuteQueue::sift_down(std::size_t i) {
  const std::size_t n = keys_.size();
  while (true) {
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    std::size_t best = i;
    if (l < n && keys_[l].ts < keys_[best].ts) best = l;
    if (r < n && keys_[r].ts < keys_[best].ts) best = r;
    if (best == i) return;
    std::swap(keys_[i], keys_[best]);
    i = best;
  }
}

}  // namespace linbound
