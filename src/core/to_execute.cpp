#include "core/to_execute.h"

#include <cassert>
#include <utility>

namespace linbound {

void ToExecuteQueue::add(PendingOp entry) {
  heap_.push_back(std::move(entry));
  sift_up(heap_.size() - 1);
}

std::optional<Timestamp> ToExecuteQueue::min() const {
  if (heap_.empty()) return std::nullopt;
  return heap_.front().ts;
}

PendingOp ToExecuteQueue::extract_min() {
  assert(!heap_.empty());
  PendingOp out = std::move(heap_.front());
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return out;
}

void ToExecuteQueue::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (heap_[parent].ts <= heap_[i].ts) break;
    std::swap(heap_[parent], heap_[i]);
    i = parent;
  }
}

void ToExecuteQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    std::size_t best = i;
    if (l < n && heap_[l].ts < heap_[best].ts) best = l;
    if (r < n && heap_[r].ts < heap_[best].ts) best = r;
    if (best == i) return;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

}  // namespace linbound
