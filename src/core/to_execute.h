// The To_Execute priority queue of Algorithm 1.
//
// Holds <op, arg, ts> triples received (or self-added) but not yet applied
// to the local copy, keyed by timestamp.  The paper specifies the three
// operations add / min / extract_min; we implement a binary min-heap from
// scratch (timestamps are unique among queued entries -- a process invokes
// at most one operation per clock instant -- so the ordering is strict).
//
// Layout (DESIGN.md section 15): the heap orders small {timestamp, slot}
// keys over a separate slot pool holding the Operation payloads.  Sift
// swaps move keys only, min() reads one contiguous array, and extracted
// slots return to a free list -- so a warmed queue reaches a steady state
// where add/extract_min never allocate.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/timestamp.h"
#include "spec/operation.h"

namespace linbound {

struct PendingOp {
  Timestamp ts{};
  Operation op;
  /// Invocation token when this entry is the holding process's own
  /// operation (so its execution can produce the response); -1 otherwise.
  std::int64_t own_token = -1;
};

class ToExecuteQueue {
 public:
  void add(PendingOp entry);

  bool empty() const { return keys_.empty(); }
  std::size_t size() const { return keys_.size(); }

  /// Pre-size the key heap and slot pool for `n` concurrently queued
  /// entries (the workload's high-water bound).
  void reserve(std::size_t n);

  /// Smallest queued timestamp; nullopt when empty.
  std::optional<Timestamp> min() const;

  /// Remove and return the entry with the smallest timestamp.
  /// Precondition: !empty().
  PendingOp extract_min();

  /// Visit every queued entry in heap-key order (deterministic, not
  /// sorted) -- state transfer (core/recoverable_replica.h) snapshots the
  /// pending set from here; callers that need timestamp order sort a copy.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Key& k : keys_) {
      const Slot& s = slots_[static_cast<std::size_t>(k.slot)];
      fn(k.ts, s.op, s.own_token);
    }
  }

  /// The queued operation with timestamp `ts`, if any.
  const Operation* find(const Timestamp& ts) const;

  void clear();

 private:
  struct Key {
    Timestamp ts{};
    std::int32_t slot = -1;
  };
  struct Slot {
    Operation op;
    std::int64_t own_token = -1;
  };

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::vector<Key> keys_;           ///< binary min-heap by ts
  std::vector<Slot> slots_;         ///< payload pool, indexed by Key::slot
  std::vector<std::int32_t> free_;  ///< recycled slot indices
};

}  // namespace linbound
