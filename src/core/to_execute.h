// The To_Execute priority queue of Algorithm 1.
//
// Holds <op, arg, ts> triples received (or self-added) but not yet applied
// to the local copy, keyed by timestamp.  The paper specifies the three
// operations add / min / extract_min; we implement a binary min-heap from
// scratch (timestamps are unique among queued entries -- a process invokes
// at most one operation per clock instant -- so the ordering is strict).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/timestamp.h"
#include "spec/operation.h"

namespace linbound {

struct PendingOp {
  Timestamp ts{};
  Operation op;
  /// Invocation token when this entry is the holding process's own
  /// operation (so its execution can produce the response); -1 otherwise.
  std::int64_t own_token = -1;
};

class ToExecuteQueue {
 public:
  void add(PendingOp entry);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Smallest queued timestamp; nullopt when empty.
  std::optional<Timestamp> min() const;

  /// Remove and return the entry with the smallest timestamp.
  /// Precondition: !empty().
  PendingOp extract_min();

  /// The queued entries in heap order (deterministic, not sorted) -- state
  /// transfer (core/recoverable_replica.h) snapshots the pending set from
  /// here; callers that need timestamp order sort a copy.
  const std::vector<PendingOp>& entries() const { return heap_; }

  void clear() { heap_.clear(); }

 private:
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::vector<PendingOp> heap_;
};

}  // namespace linbound
