#include "core/tob_algorithm.h"

namespace linbound {

TobProcess::TobProcess(std::shared_ptr<const ObjectModel> model,
                       ProcessId sequencer, Tick give_up_after)
    : model_(std::move(model)),
      sequencer_(sequencer),
      give_up_after_(give_up_after),
      obj_(model_->initial_state()) {}

void TobProcess::on_invoke(std::int64_t token, const Operation& op) {
  if (is_sequencer()) {
    sequence(op, token, id());
    return;
  }
  send(sequencer_, make_msg<TobSubmitPayload>(op, token, id()));
  if (give_up_after_ > 0) {
    give_up_token_ = token;
    give_up_timer_ =
        set_timer(give_up_after_, TimerTag{kGiveUp, Timestamp{token, id()}});
  }
}

void TobProcess::on_timer(TimerId /*id*/, const TimerTag& tag) {
  if (tag.kind != kGiveUp) return;
  const std::int64_t token = tag.ts.clock_time;
  if (give_up_token_ != token) return;  // already answered
  give_up_token_ = -1;
  give_up(token);
}

void TobProcess::on_message(ProcessId /*from*/, const MessagePayload& payload) {
  if (const auto* submit = dynamic_cast<const TobSubmitPayload*>(&payload)) {
    sequence(submit->op, submit->token, submit->origin);
    return;
  }
  if (const auto* deliver_msg = dynamic_cast<const TobDeliverPayload*>(&payload)) {
    deliver(*deliver_msg);
    return;
  }
}

void TobProcess::sequence(const Operation& op, std::int64_t token,
                          ProcessId origin) {
  const std::int64_t seq = next_seq_to_assign_++;
  broadcast(make_msg<TobDeliverPayload>(op, token, origin, seq));
  // The sequencer delivers to itself immediately (it defines the order).
  buffer_.insert_or_assign(seq, Buffered{op, token, origin});
  apply_in_order();
}

void TobProcess::deliver(const TobDeliverPayload& msg) {
  buffer_.insert_or_assign(msg.seq, Buffered{msg.op, msg.token, msg.origin});
  apply_in_order();
}

void TobProcess::apply_in_order() {
  while (true) {
    const Buffered* entry = buffer_.find(next_seq_to_apply_);
    if (entry == nullptr) return;
    const Value ret = obj_->apply(entry->op);
    if (entry->origin == id()) {
      if (give_up_token_ == entry->token) {
        cancel_timer(give_up_timer_);
        give_up_token_ = -1;
      }
      respond(entry->token, ret);
    }
    buffer_.erase(next_seq_to_apply_);
    ++next_seq_to_apply_;
  }
}

}  // namespace linbound
