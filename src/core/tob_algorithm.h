// The second folklore baseline of Chapter I.A.3: a shared object built on a
// total-order broadcast primitive, here the classic sequencer-based
// implementation over the point-to-point layer:
//
//   * the invoker ships <op, token> to the sequencer (<= d);
//   * the sequencer stamps a global sequence number and broadcasts (<= d);
//   * every process applies deliveries in sequence order; the invoker
//     responds when it applies its own operation.
//
// Worst case 2d for every operation -- matching the paper's remark that
// totally ordered broadcast "is not faster than the centralized scheme when
// taking into account the time overhead to implement [it] on top of a
// point-to-point message system".  bench_baseline_2d compares all three.
//
// The sequencer's own operations still take a self-broadcast round trip
// (they are sequenced like everyone else's), unlike the centralized
// coordinator which answers its own operations instantly.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/pending_tables.h"
#include "sim/process.h"
#include "spec/object_model.h"

namespace linbound {

struct TobSubmitPayload final : MessagePayload {
  Operation op;
  std::int64_t token = -1;
  ProcessId origin = kNoProcess;
  TobSubmitPayload(Operation o, std::int64_t t, ProcessId p)
      : op(std::move(o)), token(t), origin(p) {}
};

struct TobDeliverPayload final : MessagePayload {
  Operation op;
  std::int64_t token = -1;
  ProcessId origin = kNoProcess;
  std::int64_t seq = 0;
  TobDeliverPayload(Operation o, std::int64_t t, ProcessId p, std::int64_t s)
      : op(std::move(o)), token(t), origin(p), seq(s) {}
};

class TobProcess final : public Process {
 public:
  /// With a positive `give_up_after`, a non-sequencer that never sees its
  /// own operation come back sequenced abandons it after that long
  /// (Process::give_up), so a dead sequencer degrades to a Stalled run
  /// outcome; 0 keeps the historical wait-forever behavior.
  TobProcess(std::shared_ptr<const ObjectModel> model, ProcessId sequencer,
             Tick give_up_after = 0);

  void on_invoke(std::int64_t token, const Operation& op) override;
  void on_message(ProcessId from, const MessagePayload& payload) override;
  void on_timer(TimerId id, const TimerTag& tag) override;

  const ObjectState& local_copy() const { return *obj_; }

 private:
  enum TimerKind : int { kGiveUp = 1 };

  bool is_sequencer() const { return id() == sequencer_; }

  /// Sequence and disseminate one operation (sequencer only).
  void sequence(const Operation& op, std::int64_t token, ProcessId origin);

  /// Apply the delivery and any buffered successors, in sequence order.
  void deliver(const TobDeliverPayload& msg);
  void apply_in_order();

  std::shared_ptr<const ObjectModel> model_;
  ProcessId sequencer_;
  Tick give_up_after_;
  std::unique_ptr<ObjectState> obj_;
  std::int64_t next_seq_to_assign_ = 0;  // sequencer state
  std::int64_t next_seq_to_apply_ = 0;
  struct Buffered {
    Operation op;
    std::int64_t token = -1;
    ProcessId origin = kNoProcess;
  };
  /// Out-of-order deliveries.  Sequence numbers are assigned consecutively
  /// and applied as a head pop once the gap fills, so the flat table's
  /// append/head-pop fast path applies (core/pending_tables.h).
  FlatMap<std::int64_t, Buffered> buffer_;
  /// The pending give-up timer, if any.  One pending operation per process
  /// means at most one timed token, so a scalar slot replaces the seed's
  /// per-token std::map: -1 means no operation is being timed.
  std::int64_t give_up_token_ = -1;
  TimerId give_up_timer_ = 0;
};

}  // namespace linbound
