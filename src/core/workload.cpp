#include "core/workload.h"

#include "types/array_type.h"
#include "types/queue_type.h"
#include "types/register_type.h"
#include "types/set_type.h"
#include "types/stack_type.h"
#include "types/tree_type.h"

namespace linbound {
namespace {

constexpr std::int64_t kValueDomain = 10;

/// Pick one of the three op groups according to the mix weights.
enum class Group { kAccessor, kMutator, kOther };

Group pick_group(Rng& rng, const OpMix& mix) {
  const int total = mix.accessors + mix.mutators + mix.others;
  const std::int64_t roll = rng.uniform(0, total - 1);
  if (roll < mix.accessors) return Group::kAccessor;
  if (roll < mix.accessors + mix.mutators) return Group::kMutator;
  return Group::kOther;
}

std::int64_t small_value(Rng& rng) { return rng.uniform(0, kValueDomain - 1); }

}  // namespace

std::vector<Operation> random_register_ops(Rng& rng, int count, const OpMix& mix) {
  std::vector<Operation> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    switch (pick_group(rng, mix)) {
      case Group::kAccessor:
        out.push_back(reg::read());
        break;
      case Group::kMutator:
        out.push_back(rng.chance(0.5) ? reg::write(small_value(rng))
                                      : reg::increment(rng.uniform(1, 3)));
        break;
      case Group::kOther:
        out.push_back(rng.chance(0.5)
                          ? reg::rmw(small_value(rng))
                          : reg::cas(small_value(rng), small_value(rng)));
        break;
    }
  }
  return out;
}

std::vector<Operation> random_queue_ops(Rng& rng, int count, const OpMix& mix) {
  std::vector<Operation> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    switch (pick_group(rng, mix)) {
      case Group::kAccessor:
        out.push_back(rng.chance(0.7) ? queue_ops::peek() : queue_ops::size());
        break;
      case Group::kMutator:
        out.push_back(queue_ops::enqueue(small_value(rng)));
        break;
      case Group::kOther:
        out.push_back(queue_ops::dequeue());
        break;
    }
  }
  return out;
}

std::vector<Operation> random_stack_ops(Rng& rng, int count, const OpMix& mix) {
  std::vector<Operation> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    switch (pick_group(rng, mix)) {
      case Group::kAccessor:
        out.push_back(rng.chance(0.7) ? stack_ops::peek() : stack_ops::size());
        break;
      case Group::kMutator:
        out.push_back(stack_ops::push(small_value(rng)));
        break;
      case Group::kOther:
        out.push_back(stack_ops::pop());
        break;
    }
  }
  return out;
}

std::vector<Operation> random_set_ops(Rng& rng, int count, const OpMix& mix) {
  std::vector<Operation> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    switch (pick_group(rng, mix)) {
      case Group::kAccessor:
        out.push_back(rng.chance(0.7) ? set_ops::contains(small_value(rng))
                                      : set_ops::size());
        break;
      case Group::kMutator:
      case Group::kOther:  // sets have no OOP operations; use a mutator
        out.push_back(rng.chance(0.6) ? set_ops::insert(small_value(rng))
                                      : set_ops::erase(small_value(rng)));
        break;
    }
  }
  return out;
}

std::vector<Operation> random_tree_ops(Rng& rng, int count, const OpMix& mix) {
  std::vector<Operation> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    switch (pick_group(rng, mix)) {
      case Group::kAccessor:
        out.push_back(rng.chance(0.5) ? tree_ops::search(small_value(rng))
                                      : tree_ops::depth());
        break;
      case Group::kMutator:
      case Group::kOther: {  // trees have no OOP operations; use a mutator
        const double roll = rng.uniform01();
        if (roll < 0.6) {
          out.push_back(tree_ops::insert(rng.uniform(1, kValueDomain - 1),
                                         rng.uniform(0, kValueDomain - 1)));
        } else if (roll < 0.8) {
          out.push_back(tree_ops::remove_leaf(rng.uniform(1, kValueDomain - 1)));
        } else {
          out.push_back(tree_ops::erase(rng.uniform(1, kValueDomain - 1)));
        }
        break;
      }
    }
  }
  return out;
}

std::vector<Operation> random_array_ops(Rng& rng, int count, const OpMix& mix,
                                        int array_size) {
  std::vector<Operation> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const std::int64_t idx = rng.uniform(1, array_size);
    switch (pick_group(rng, mix)) {
      case Group::kAccessor:
        out.push_back(array_ops::get(idx));
        break;
      case Group::kMutator:
        out.push_back(array_ops::put(idx, small_value(rng)));
        break;
      case Group::kOther:
        out.push_back(array_ops::update_next(idx, small_value(rng)));
        break;
    }
  }
  return out;
}

}  // namespace linbound
