#include "core/workload.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "sim/pool_set.h"

#include "types/array_type.h"
#include "types/queue_type.h"
#include "types/register_type.h"
#include "types/set_type.h"
#include "types/stack_type.h"
#include "types/tree_type.h"

namespace linbound {
namespace {

constexpr std::int64_t kValueDomain = 10;

/// Pick one of the three op groups according to the mix weights.
enum class Group { kAccessor, kMutator, kOther };

Group pick_group(Rng& rng, const OpMix& mix) {
  const int total = mix.accessors + mix.mutators + mix.others;
  const std::int64_t roll = rng.uniform(0, total - 1);
  if (roll < mix.accessors) return Group::kAccessor;
  if (roll < mix.accessors + mix.mutators) return Group::kMutator;
  return Group::kOther;
}

std::int64_t small_value(Rng& rng) { return rng.uniform(0, kValueDomain - 1); }

}  // namespace

std::vector<Operation> random_register_ops(Rng& rng, int count, const OpMix& mix) {
  std::vector<Operation> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    switch (pick_group(rng, mix)) {
      case Group::kAccessor:
        out.push_back(reg::read());
        break;
      case Group::kMutator:
        out.push_back(rng.chance(0.5) ? reg::write(small_value(rng))
                                      : reg::increment(rng.uniform(1, 3)));
        break;
      case Group::kOther:
        out.push_back(rng.chance(0.5)
                          ? reg::rmw(small_value(rng))
                          : reg::cas(small_value(rng), small_value(rng)));
        break;
    }
  }
  return out;
}

std::vector<Operation> random_queue_ops(Rng& rng, int count, const OpMix& mix) {
  std::vector<Operation> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    switch (pick_group(rng, mix)) {
      case Group::kAccessor:
        out.push_back(rng.chance(0.7) ? queue_ops::peek() : queue_ops::size());
        break;
      case Group::kMutator:
        out.push_back(queue_ops::enqueue(small_value(rng)));
        break;
      case Group::kOther:
        out.push_back(queue_ops::dequeue());
        break;
    }
  }
  return out;
}

std::vector<Operation> random_stack_ops(Rng& rng, int count, const OpMix& mix) {
  std::vector<Operation> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    switch (pick_group(rng, mix)) {
      case Group::kAccessor:
        out.push_back(rng.chance(0.7) ? stack_ops::peek() : stack_ops::size());
        break;
      case Group::kMutator:
        out.push_back(stack_ops::push(small_value(rng)));
        break;
      case Group::kOther:
        out.push_back(stack_ops::pop());
        break;
    }
  }
  return out;
}

std::vector<Operation> random_set_ops(Rng& rng, int count, const OpMix& mix) {
  std::vector<Operation> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    switch (pick_group(rng, mix)) {
      case Group::kAccessor:
        out.push_back(rng.chance(0.7) ? set_ops::contains(small_value(rng))
                                      : set_ops::size());
        break;
      case Group::kMutator:
      case Group::kOther:  // sets have no OOP operations; use a mutator
        out.push_back(rng.chance(0.6) ? set_ops::insert(small_value(rng))
                                      : set_ops::erase(small_value(rng)));
        break;
    }
  }
  return out;
}

std::vector<Operation> random_tree_ops(Rng& rng, int count, const OpMix& mix) {
  std::vector<Operation> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    switch (pick_group(rng, mix)) {
      case Group::kAccessor:
        out.push_back(rng.chance(0.5) ? tree_ops::search(small_value(rng))
                                      : tree_ops::depth());
        break;
      case Group::kMutator:
      case Group::kOther: {  // trees have no OOP operations; use a mutator
        const double roll = rng.uniform01();
        if (roll < 0.6) {
          out.push_back(tree_ops::insert(rng.uniform(1, kValueDomain - 1),
                                         rng.uniform(0, kValueDomain - 1)));
        } else if (roll < 0.8) {
          out.push_back(tree_ops::remove_leaf(rng.uniform(1, kValueDomain - 1)));
        } else {
          out.push_back(tree_ops::erase(rng.uniform(1, kValueDomain - 1)));
        }
        break;
      }
    }
  }
  return out;
}

HeavyTrafficWorkload::HeavyTrafficWorkload(Simulator& sim,
                                           HeavyTrafficOptions options)
    : sim_(sim), opt_(std::move(options)) {
  if (opt_.clients < 1) throw std::invalid_argument("HeavyTraffic: no clients");
  if (opt_.min_gap < 1) {
    throw std::invalid_argument(
        "HeavyTraffic: min_gap must be positive (the model allows one "
        "pending operation per process; see HeavyTrafficOptions::min_gap)");
  }
  if (opt_.jitter < 0) throw std::invalid_argument("HeavyTraffic: negative jitter");
  if (opt_.batch == 0) opt_.batch = 1;
  if (opt_.accessors < 0 || opt_.mutators < 0 ||
      opt_.accessors + opt_.mutators <= 0) {
    throw std::invalid_argument("HeavyTraffic: bad accessor/mutator weights");
  }
  if (opt_.first_client < 0) {
    throw std::invalid_argument("HeavyTraffic: negative first_client");
  }
  const SplitRng root(opt_.seed);
  rngs_.reserve(static_cast<std::size_t>(opt_.clients));
  next_time_.reserve(static_cast<std::size_t>(opt_.clients));
  for (int c = 0; c < opt_.clients; ++c) {
    rngs_.push_back(root.stream(static_cast<std::uint64_t>(c)));
    // Stagger the first arrivals across one mean gap so the clients do not
    // start in lockstep.
    next_time_.push_back(opt_.start_time +
                         rngs_.back().uniform(0, opt_.min_gap + opt_.jitter));
  }
}

void HeavyTrafficWorkload::arm() {
  const std::size_t msgs_per_op = opt_.messages_per_op
                                      ? opt_.messages_per_op
                                      : static_cast<std::size_t>(opt_.clients);
  // Pre-reserve the hot-loop storage: operation and message records for the
  // whole run, queue capacity for one scheduling burst plus headroom for
  // in-flight deliveries and timers, and (when sized) the arena / bucket
  // lane / timer-slot pools that make the steady state allocation-free.
  PoolSet pools;
  pools.ops = opt_.total_ops;
  pools.messages = opt_.total_ops * msgs_per_op;
  pools.events = 2 * opt_.batch + 1024;
  pools.payload_bytes = opt_.total_ops * opt_.payload_bytes_per_op;
  pools.events_per_tick = opt_.events_per_tick;
  pools.timer_slots = opt_.timer_slots_per_process;
  pools.arm(sim_);
  schedule_batch();
}

void HeavyTrafficWorkload::schedule_batch() {
  const int total_weight = opt_.accessors + opt_.mutators;
  std::size_t issued = 0;
  while (issued < opt_.batch && scheduled_ < opt_.total_ops) {
    // Next arrival across the clients in global time order (ties by client
    // id): with at most a few dozen clients a linear scan beats any heap.
    int client = 0;
    for (int c = 1; c < opt_.clients; ++c) {
      if (next_time_[static_cast<std::size_t>(c)] <
          next_time_[static_cast<std::size_t>(client)]) {
        client = c;
      }
    }
    const auto ci = static_cast<std::size_t>(client);
    Rng& rng = rngs_[ci];
    const Tick t = next_time_[ci];
    const bool accessor = rng.uniform(0, total_weight - 1) < opt_.accessors;
    sim_.invoke_at(t, static_cast<ProcessId>(opt_.first_client + client),
                   accessor ? reg::read() : reg::write(small_value(rng)));
    next_time_[ci] = t + opt_.min_gap +
                     (opt_.jitter > 0 ? rng.uniform(0, opt_.jitter) : 0);
    last_time_ = t;
    ++scheduled_;
    ++issued;
  }
  if (scheduled_ < opt_.total_ops) {
    // Chain the next burst at this burst's horizon: every remaining arrival
    // is at t >= last_time_, so nothing is ever scheduled into the past.
    sim_.call_at(last_time_, [this] { schedule_batch(); });
  }
}

std::vector<std::size_t> zipfian_shard_loads(int shards, std::size_t total_ops,
                                             double s, std::uint64_t seed) {
  if (shards < 1) throw std::invalid_argument("zipfian_shard_loads: no shards");
  if (s < 0) throw std::invalid_argument("zipfian_shard_loads: negative exponent");
  const auto n = static_cast<std::size_t>(shards);
  // Seed-shuffled rank permutation: rank r (popularity 1/(r+1)^s) is
  // assigned to shard perm[r], so the hot shards land at seed-dependent
  // positions.  Fisher-Yates with a dedicated stream keeps the permutation
  // a pure function of (shards, seed).
  std::vector<int> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = static_cast<int>(i);
  Rng shuffle = SplitRng(seed).stream(0x5a1f);
  for (std::size_t i = n - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(
        shuffle.uniform(0, static_cast<std::int64_t>(i)));
    std::swap(perm[i], perm[j]);
  }
  std::vector<double> weight(n);
  double mass = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    weight[r] = 1.0 / std::pow(static_cast<double>(r + 1), s);
    mass += weight[r];
  }
  // Largest-remainder apportionment: floors first, then the leftover ops go
  // to the largest fractional parts (ties to the lower rank, so the result
  // is deterministic), guaranteeing the loads sum to exactly total_ops.
  std::vector<std::size_t> loads(n, 0);
  std::vector<std::pair<double, std::size_t>> remainder(n);
  std::size_t assigned = 0;
  for (std::size_t r = 0; r < n; ++r) {
    const double share = static_cast<double>(total_ops) * weight[r] / mass;
    const auto floor_share = static_cast<std::size_t>(share);
    loads[static_cast<std::size_t>(perm[r])] = floor_share;
    assigned += floor_share;
    remainder[r] = {share - static_cast<double>(floor_share), r};
  }
  std::sort(remainder.begin(), remainder.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  for (std::size_t k = 0; assigned < total_ops; ++k, ++assigned) {
    loads[static_cast<std::size_t>(perm[remainder[k % n].second])] += 1;
  }
  return loads;
}

std::vector<Operation> random_array_ops(Rng& rng, int count, const OpMix& mix,
                                        int array_size) {
  std::vector<Operation> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const std::int64_t idx = rng.uniform(1, array_size);
    switch (pick_group(rng, mix)) {
      case Group::kAccessor:
        out.push_back(array_ops::get(idx));
        break;
      case Group::kMutator:
        out.push_back(array_ops::put(idx, small_value(rng)));
        break;
      case Group::kOther:
        out.push_back(array_ops::update_next(idx, small_value(rng)));
        break;
    }
  }
  return out;
}

}  // namespace linbound
