// Workload generation: deterministic random operation streams per data
// type (used by the integration tests and the latency benches), plus the
// open-loop HeavyTrafficWorkload generator behind bench_throughput.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "sim/simulator.h"
#include "spec/operation.h"

namespace linbound {

/// Mix weights for a generated stream; weights of opcodes a type does not
/// have are ignored by that type's generator.
struct OpMix {
  int accessors = 1;  ///< read / peek / contains / search / depth / get
  int mutators = 1;   ///< write / enqueue / push / insert / erase / put
  int others = 1;     ///< rmw / dequeue / pop / update_next
};

/// Random streams over small value domains (values 0..9) so that histories
/// exercise conflicts rather than wandering a huge state space.
std::vector<Operation> random_register_ops(Rng& rng, int count, const OpMix& mix);
std::vector<Operation> random_queue_ops(Rng& rng, int count, const OpMix& mix);
std::vector<Operation> random_stack_ops(Rng& rng, int count, const OpMix& mix);
std::vector<Operation> random_set_ops(Rng& rng, int count, const OpMix& mix);
std::vector<Operation> random_tree_ops(Rng& rng, int count, const OpMix& mix);
std::vector<Operation> random_array_ops(Rng& rng, int count, const OpMix& mix,
                                        int array_size);

/// Configuration for HeavyTrafficWorkload (see below).  The effective
/// per-client arrival rate is 1 / (min_gap + jitter/2) operations per tick,
/// i.e. clients / (min_gap + jitter/2) system-wide.
struct HeavyTrafficOptions {
  int clients = 4;                 ///< number of invoking processes
  /// Process id of the first client; arrivals target processes
  /// first_client .. first_client + clients - 1.  The sharded runtime
  /// (src/shard/shard.h) points this past the replica group so a shard's
  /// clients are dedicated invoker processes.
  int first_client = 0;
  std::size_t total_ops = 1'000'000;
  Tick start_time = 1000;          ///< earliest possible arrival
  /// Per-client inter-arrival floor.  Open-loop scheduling does not wait
  /// for responses, but the model allows one pending operation per process
  /// (the simulator throws on overlap), so this must exceed the worst-case
  /// response bound of the system under test (e.g. d + eps for Algorithm 1,
  /// ~2d for the centralized/TOB baselines; bench_throughput uses 4d).
  Tick min_gap = 4000;
  Tick jitter = 0;                 ///< extra uniform spacing in [0, jitter]
  int accessors = 1;               ///< weight of register reads
  int mutators = 1;                ///< weight of register writes
  /// Root seed; each client draws from SplitRng(seed).stream(client_index),
  /// so client c's schedule is a pure function of (seed, c) -- independent
  /// of how many clients run beside it.
  std::uint64_t seed = 0x7ea4f'f1cULL;
  /// Arrivals scheduled per scheduling burst: the generator issues this
  /// many invoke_at calls, then chains one callback at the burst's last
  /// arrival time to schedule the next burst, keeping the future-event
  /// list's footprint O(batch) instead of O(total_ops).  The schedule is a
  /// pure function of this configuration, batch size included.
  std::size_t batch = 4096;
  /// Trace::messages reservation hint per operation; 0 = clients (sized
  /// for Algorithm 1's broadcast per operation).
  std::size_t messages_per_op = 0;
  /// Whole-run arena pre-reserve per operation (bytes): covers every
  /// payload the op pipeline builds per op (broadcast, link frames, acks,
  /// destructor nodes).  0 leaves the arena to on-demand chunk growth (the
  /// historical behavior); set it to make the steady-state send path
  /// allocation-free (sim/pool_set.h) -- ~256 covers plain Algorithm 1,
  /// ~1024 the hardened link with n = 4.
  std::size_t payload_bytes_per_op = 0;
  /// Per-process timer-slot pool to pre-size; 0 = demand growth.
  std::size_t timer_slots_per_process = 0;
  /// Calendar bucket lane warm (same-tick events per priority lane);
  /// 0 = lanes warm up over the first window.
  std::size_t events_per_tick = 0;
};

/// Apportion `total_ops` operations across `shards` shards with a zipfian
/// popularity profile of exponent `s` (s = 0 gives a uniform split): shard
/// popularity ranks are a seed-shuffled permutation of the shard ids (so the
/// hot shard is not always shard 0) and fractional shares are resolved by
/// largest remainder, so the result always sums to exactly `total_ops`.
/// Deterministic in (shards, total_ops, s, seed).
std::vector<std::size_t> zipfian_shard_loads(int shards, std::size_t total_ops,
                                             double s, std::uint64_t seed);

/// Open-loop traffic at a configurable arrival rate: every arrival time is
/// fixed up front from the seed (never response-driven, unlike the
/// closed-loop WorkloadDriver), with a read/write register mix.  arm()
/// pre-reserves Trace::ops / Trace::messages / EventQueue storage from the
/// size hints and schedules the first burst; the rest of the schedule
/// installs itself as the run progresses.  Deterministic: one
/// configuration, one schedule, byte-identical traces.
class HeavyTrafficWorkload {
 public:
  HeavyTrafficWorkload(Simulator& sim, HeavyTrafficOptions options);

  /// Reserve storage and schedule the first burst.  Call once, before
  /// Simulator::run (before or after start()).
  void arm();

  std::size_t scheduled() const { return scheduled_; }
  /// Arrival time of the latest scheduled invocation.
  Tick last_arrival() const { return last_time_; }

 private:
  void schedule_batch();

  Simulator& sim_;
  HeavyTrafficOptions opt_;
  std::vector<Rng> rngs_;        // per client
  std::vector<Tick> next_time_;  // per client: next arrival
  std::size_t scheduled_ = 0;
  Tick last_time_ = 0;
};

}  // namespace linbound
