// Workload generation: deterministic random operation streams per data
// type, used by the integration tests and the latency benches.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "spec/operation.h"

namespace linbound {

/// Mix weights for a generated stream; weights of opcodes a type does not
/// have are ignored by that type's generator.
struct OpMix {
  int accessors = 1;  ///< read / peek / contains / search / depth / get
  int mutators = 1;   ///< write / enqueue / push / insert / erase / put
  int others = 1;     ///< rmw / dequeue / pop / update_next
};

/// Random streams over small value domains (values 0..9) so that histories
/// exercise conflicts rather than wandering a huge state space.
std::vector<Operation> random_register_ops(Rng& rng, int count, const OpMix& mix);
std::vector<Operation> random_queue_ops(Rng& rng, int count, const OpMix& mix);
std::vector<Operation> random_stack_ops(Rng& rng, int count, const OpMix& mix);
std::vector<Operation> random_set_ops(Rng& rng, int count, const OpMix& mix);
std::vector<Operation> random_tree_ops(Rng& rng, int count, const OpMix& mix);
std::vector<Operation> random_array_ops(Rng& rng, int count, const OpMix& mix,
                                        int array_size);

}  // namespace linbound
