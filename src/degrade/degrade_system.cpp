#include "degrade/degrade_system.h"

#include <stdexcept>

namespace linbound {

DegradeSystem::DegradeSystem(std::shared_ptr<const ObjectModel> model,
                             const DegradeOptions& options)
    : ObjectSystem(std::move(model), options.base) {
  if (options.base.algorithm_delays || options.base.recoverable ||
      options.base.give_up_after != 0) {
    throw std::invalid_argument(
        "DegradeOptions: algorithm_delays / recoverable / give_up_after do "
        "not apply to degradation systems");
  }
  if (!options.params.valid()) {
    throw std::invalid_argument("DegradeOptions: invalid SwitchingParams");
  }
  if (!options.switching) {
    for (int i = 0; i < options.base.n; ++i) {
      sim_->add_process(std::make_unique<QuorumReplicaProcess>(
          model_, options.params.quorum, options.params.seed));
    }
    return;
  }
  const HardenedParams link =
      options.base.hardened ? *options.base.hardened : HardenedParams{};
  delays_ = AlgorithmDelays::standard(link.effective_timing(options.base.timing),
                                      options.base.x);
  monitor_ = std::make_unique<SynchronyMonitor>(*sim_, options.monitor);
  for (int i = 0; i < options.base.n; ++i) {
    auto replica = std::make_unique<ModeSwitchingReplica>(
        model_, delays_, link, options.params);
    replica->set_monitor(monitor_.get());
    monitor_->add_target(static_cast<ProcessId>(i), replica.get());
    sim_->add_process(std::move(replica));
  }
  monitor_->arm();
}

ModeSwitchingReplica& DegradeSystem::switching_replica(ProcessId pid) {
  return dynamic_cast<ModeSwitchingReplica&>(sim_->process(pid));
}

QuorumReplicaProcess& DegradeSystem::quorum_replica(ProcessId pid) {
  return dynamic_cast<QuorumReplicaProcess&>(sim_->process(pid));
}

}  // namespace linbound
