// Builders for the graceful-degradation systems:
//
//   DegradeSystem (switching)  -- n ModeSwitchingReplicas wired to one
//     SynchronyMonitor.  Runs Algorithm 1 (hardened) while the timing
//     envelope holds; the monitor downgrades it to the quorum backend when
//     the envelope breaks and upgrades it back after a clean window.  A run
//     whose envelope never breaks is trace-byte-identical to a plain
//     hardened ReplicaSystem: the wrappers add no messages and the monitor
//     leaves no record.
//
//   DegradeSystem (quorum)  -- n QuorumReplicaProcesses: the asynchronous
//     backend alone, for validating and benchmarking it in isolation.
//
// See examples/quickstart.cpp for the ObjectSystem idiom; the mode-switch
// sweep harness (src/harness/mode_sweep.h) builds storms on top of this.
#pragma once

#include <memory>

#include "core/system.h"
#include "degrade/mode_switching_replica.h"
#include "degrade/quorum_replica.h"
#include "degrade/synchrony_monitor.h"

namespace linbound {

struct DegradeOptions {
  /// Base system shape: n, timing, delays, faults, clock offsets, caps.
  /// `hardened` supplies the link layer for the switching variant (defaults
  /// are filled in when unset); `algorithm_delays`, `recoverable` and
  /// `give_up_after` are meaningless here and rejected if set.
  SystemOptions base;
  /// true: supervisor + mode-switching replicas.  false: pure quorum
  /// backend (no monitor, no synchronous era at all).
  bool switching = true;
  MonitorOptions monitor;
  SwitchingParams params;
};

class DegradeSystem final : public ObjectSystem {
 public:
  DegradeSystem(std::shared_ptr<const ObjectModel> model,
                const DegradeOptions& options);

  bool switching() const { return monitor_ != nullptr; }

  /// The supervisor (switching variant only; null for pure quorum).
  const SynchronyMonitor* monitor() const { return monitor_.get(); }

  ModeSwitchingReplica& switching_replica(ProcessId pid);
  QuorumReplicaProcess& quorum_replica(ProcessId pid);

  /// Algorithm 1 delays the switching replicas run in their sync eras.
  const AlgorithmDelays& algorithm_delays() const { return delays_; }

 private:
  AlgorithmDelays delays_{};
  std::unique_ptr<SynchronyMonitor> monitor_;
};

}  // namespace linbound
