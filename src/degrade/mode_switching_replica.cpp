#include "degrade/mode_switching_replica.h"

#include <algorithm>
#include <stdexcept>

namespace linbound {

ModeSwitchingReplica::ModeSwitchingReplica(
    std::shared_ptr<const ObjectModel> model, AlgorithmDelays delays,
    HardenedParams link_params, SwitchingParams params)
    : HardenedReplicaProcess(model, delays, link_params),
      params_(params),
      era_start_state_(Snapshot::initial(*model)) {
  if (!params_.valid()) throw std::invalid_argument("invalid SwitchingParams");
}

Tick ModeSwitchingReplica::drain_fallback_delay() const {
  return params_.drain_fallback > 0
             ? params_.drain_fallback
             : 2 * link_params().effective_d(timing()) + 1;
}

QuorumEngine& ModeSwitchingReplica::ensure_engine(int era) {
  auto it = engines_.find(era);
  if (it == engines_.end()) {
    it = engines_
             .emplace(era, std::make_unique<QuorumEngine>(
                               *this, era, id(), process_count(), timing(),
                               params_.quorum, params_.seed))
             .first;
  }
  return *it->second;
}

// --- routing ------------------------------------------------------------

void ModeSwitchingReplica::send(ProcessId to, const MessagePayload* payload) {
  if (const auto* op = dynamic_cast<const OpBroadcastPayload*>(payload)) {
    // Called once per broadcast recipient; the emplace dedups.  Recording
    // at send (not at invoke) also catches enqueue_replicated re-feeds.
    era_ops_.emplace(op->ts, op->op);
    HardenedReplicaProcess::send(to, make_msg<EraOpPayload>(era_, op));
    return;
  }
  HardenedReplicaProcess::send(to, payload);
}

void ModeSwitchingReplica::deliver_app(ProcessId from,
                                       const MessagePayload& payload) {
  if (const auto* eo = dynamic_cast<const EraOpPayload*>(&payload)) {
    if (eo->era == era_ &&
        (phase_ == Phase::kSync || phase_ == Phase::kDraining)) {
      era_ops_.emplace(eo->inner->ts, eo->inner->op);
      // While draining, the broadcast is only *recorded* (it may still make
      // a peer's report); the synchronous machinery is already torn down.
      if (phase_ == Phase::kSync) ReplicaProcess::on_message(from, *eo->inner);
    } else if (eo->era > era_) {
      // The sender reached a later sync era first; replay when we arrive.
      future_sync_.push_back({eo->era, eo->inner->ts, eo->inner->op});
    }
    return;  // broadcasts of ended eras are settled history: ignore
  }
  if (const auto* dr = dynamic_cast<const DrainReportPayload*>(&payload)) {
    if (dr->era == era_ &&
        (phase_ == Phase::kSync || phase_ == Phase::kDraining)) {
      reports_[from] = dr->entries;
      maybe_propose_base();
    }
    return;
  }
  if (const auto* qe = dynamic_cast<const QEraPayload*>(&payload)) {
    // Any era: sealed engines still serve catch-up, future engines start
    // life as acceptors (always safe) and stash their commits for later.
    ensure_engine(qe->era).on_message(from, *qe->inner);
    return;
  }
  HardenedReplicaProcess::deliver_app(from, payload);
}

void ModeSwitchingReplica::on_invoke(std::int64_t token, const Operation& op) {
  switch (phase_) {
    case Phase::kSync:
      ReplicaProcess::on_invoke(token, op);
      return;
    case Phase::kAsync:
      propose_own_op(op, token,
                     object_model().classify(op) == OpClass::kPureMutator);
      return;
    case Phase::kDraining:
    case Phase::kSealing:
      deferred_.emplace_back(token, op);
      return;
  }
}

void ModeSwitchingReplica::on_timer(TimerId id, const TimerTag& tag) {
  if (tag.kind == kQuorumTimer) {
    // ts.pid carries the era; a crash may have dropped the engine's whole
    // timer set, so a missing engine is impossible but a stale era is not.
    auto it = engines_.find(static_cast<int>(tag.ts.pid));
    if (it != engines_.end()) it->second->on_timer(tag.ts.clock_time);
    return;
  }
  if (tag.kind == kDrainFallback) {
    if (phase_ == Phase::kDraining &&
        static_cast<int>(tag.ts.clock_time) == async_era_) {
      maybe_propose_base(/*force=*/true);
    }
    return;
  }
  HardenedReplicaProcess::on_timer(id, tag);
}

// --- mode switching -----------------------------------------------------

void ModeSwitchingReplica::on_mode_signal(int target_era) {
  latest_target_ = std::max(latest_target_, target_era);
  maybe_chain();
}

void ModeSwitchingReplica::maybe_chain() {
  if (latest_target_ <= era_) return;
  // Transitions re-check at the next stable phase (do_base / do_seal).
  if (phase_ == Phase::kSync) {
    begin_downgrade();
  } else if (phase_ == Phase::kAsync) {
    begin_seal();
  }
}

void ModeSwitchingReplica::begin_downgrade() {
  phase_ = Phase::kDraining;
  async_era_ = era_ + 1;
  ++downgrades_;
  ensure_engine(async_era_);
  // Drain: own unresponded operations keep their tokens; their operations
  // join the era history (accessors were never broadcast, so this is where
  // they enter it).  Then tear the synchronous machinery down -- stale
  // timers find empty maps.
  for (const DrainedOwnOp& d : drain_own_unresponded()) {
    if (d.op) era_ops_.emplace(d.ts, *d.op);
    if (d.token >= 0) {
      drained_tokens_[d.ts] = DrainedToken{d.op, d.token, d.ack_only};
    }
  }
  reset_volatile_state();
  based_ = false;
  base_proposed_ = false;
  std::vector<BaseEntry> mine;
  mine.reserve(era_ops_.size());
  for (const auto& [ts, op] : era_ops_) mine.push_back({ts, op});
  reports_[id()] = mine;
  broadcast(make_msg<DrainReportPayload>(era_, std::move(mine)));
  set_timer(drain_fallback_delay(),
            TimerTag{kDrainFallback, Timestamp{async_era_, id()}});
  maybe_propose_base();            // n == 1, or every report already here
  process_commits(async_era_);     // stashed commits from catch-up
}

void ModeSwitchingReplica::maybe_propose_base(bool force) {
  if (phase_ != Phase::kDraining || base_proposed_ || based_) return;
  if (!force && static_cast<int>(reports_.size()) < process_count()) return;
  base_proposed_ = true;
  std::map<Timestamp, Operation> merged;
  for (const auto& [pid, entries] : reports_) {
    for (const BaseEntry& be : entries) merged.emplace(be.ts, be.op);
  }
  QuorumValue v;
  v.kind = QuorumValueKind::kBase;
  v.origin = id();
  v.base.reserve(merged.size());
  for (const auto& [ts, op] : merged) v.base.push_back({ts, op});
  ensure_engine(async_era_).propose(std::move(v));
}

void ModeSwitchingReplica::begin_seal() {
  phase_ = Phase::kSealing;
  QuorumValue v;
  v.kind = QuorumValueKind::kSeal;
  v.origin = id();
  ensure_engine(async_era_).propose(std::move(v));
}

void ModeSwitchingReplica::propose_own_op(const Operation& op,
                                          std::int64_t token, bool ack_only) {
  QuorumValue v;
  v.kind = QuorumValueKind::kOp;
  v.origin = id();
  v.op_id = next_op_id_++;
  v.op = op;
  own_async_tokens_[v.op_id] = OwnAsyncOp{op, token, ack_only, false};
  ensure_engine(async_era_).propose(std::move(v));
}

void ModeSwitchingReplica::flush_deferred() {
  std::vector<std::pair<std::int64_t, Operation>> d = std::move(deferred_);
  deferred_.clear();
  for (auto& [token, op] : d) on_invoke(token, op);
}

// --- commit processing --------------------------------------------------

void ModeSwitchingReplica::quorum_committed(std::int64_t tag,
                                            std::int64_t slot,
                                            const QuorumValue& value) {
  commits_[static_cast<int>(tag)].emplace_back(slot, value);
  process_commits(static_cast<int>(tag));
}

void ModeSwitchingReplica::process_commits(int era) {
  if (era != async_era_) return;  // not there yet (or already sealed)
  if (processing_commits_) return;  // the outer loop's cursor will get it
  processing_commits_ = true;
  std::vector<std::pair<std::int64_t, QuorumValue>>& log = commits_[era];
  std::size_t& pos = commits_pos_[era];
  while (pos < log.size()) {
    if (era != async_era_) break;  // sealed mid-loop: the rest is void
    // Copy: handlers can append to (and thus reallocate) the log.
    const QuorumValue value = log[pos].second;
    ++pos;
    handle_commit(era, value);
  }
  processing_commits_ = false;
}

void ModeSwitchingReplica::handle_commit(int era, const QuorumValue& value) {
  switch (value.kind) {
    case QuorumValueKind::kNoop:
      return;
    case QuorumValueKind::kBase:
      if (!based_) do_base(era, value);
      return;  // competing bases lost the slot race: first one is THE base
    case QuorumValueKind::kOp:
      if (!based_) {
        pre_base_ops_.push_back(value);
      } else {
        apply_op(value);
      }
      return;
    case QuorumValueKind::kSeal:
      do_seal(era);
      return;
  }
}

void ModeSwitchingReplica::apply_op(const QuorumValue& value) {
  if (!applied_ids_.insert({value.origin, value.op_id}).second) return;
  const Value ret = async_obj_.apply(value.op);
  if (value.origin != id()) return;
  auto it = own_async_tokens_.find(value.op_id);
  if (it == own_async_tokens_.end() || it->second.responded) return;
  it->second.responded = true;
  respond(it->second.token, it->second.ack_only ? Value::unit() : ret);
}

void ModeSwitchingReplica::do_base(int era, const QuorumValue& value) {
  based_ = true;
  Snapshot st = era_start_state_;  // O(1) copy-on-write handle
  for (const BaseEntry& be : value.base) {
    const Value ret = st.apply(be.op);
    auto dt = drained_tokens_.find(be.ts);
    if (dt == drained_tokens_.end()) continue;
    respond(dt->second.token,
            dt->second.ack_only ? Value::unit() : ret);
    drained_tokens_.erase(dt);
  }
  async_obj_ = std::move(st);
  // Drained tokens whose operation missed the winning base: re-propose as
  // ordinary async ops (the evaporating-op edge in the header comment).
  for (auto& [ts, dt] : drained_tokens_) {
    std::optional<Operation> op = dt.op;
    if (!op) {
      auto eo = era_ops_.find(ts);
      if (eo != era_ops_.end()) op = eo->second;
    }
    if (op) {
      propose_own_op(*op, dt.token, dt.ack_only);
    } else {
      give_up(dt.token);  // unrecoverable; surfaces as kOperationGivenUp
    }
  }
  drained_tokens_.clear();
  ensure_engine(era).abandon_kind(QuorumValueKind::kBase);
  phase_ = Phase::kAsync;
  era_ = async_era_;
  for (const QuorumValue& v : pre_base_ops_) apply_op(v);
  pre_base_ops_.clear();
  flush_deferred();
  maybe_chain();
}

void ModeSwitchingReplica::do_seal(int era) {
  QuorumEngine& engine = ensure_engine(era);
  engine.abandon_kind(QuorumValueKind::kSeal);
  engine.abandon_kind(QuorumValueKind::kOp);
  ++upgrades_;
  // Own proposals the seal voided keep their tokens and are simply
  // re-invoked in the new era (they never responded, so this is a retry of
  // an operation that has not taken effect -- commits after the seal are
  // skipped by process_commits, and applied_ids_ dies with the era).
  std::vector<std::pair<std::int64_t, Operation>> void_ops;
  for (const auto& [op_id, own] : own_async_tokens_) {
    if (!own.responded) void_ops.emplace_back(own.token, own.op);
  }
  own_async_tokens_.clear();
  applied_ids_.clear();
  era_start_state_ = async_obj_;
  async_obj_ = Snapshot();
  reset_volatile_state();
  adopt_state(era_start_state_.to_state(), std::nullopt, 0);
  era_ = era + 1;
  phase_ = Phase::kSync;
  async_era_ = -1;
  era_ops_.clear();
  reports_.clear();
  pre_base_ops_.clear();
  drained_tokens_.clear();
  based_ = false;
  base_proposed_ = false;
  // Broadcasts from peers that reached this era first.
  std::size_t kept = 0;
  for (FutureSyncOp& f : future_sync_) {
    if (f.era == era_) {
      era_ops_.emplace(f.ts, f.op);
      enqueue_replicated(f.ts, f.op);
    } else if (f.era > era_) {
      future_sync_[kept++] = std::move(f);
    }
  }
  future_sync_.resize(kept);
  for (auto& [token, op] : void_ops) on_invoke(token, op);
  flush_deferred();
  maybe_chain();
}

// --- crash-recovery -----------------------------------------------------

void ModeSwitchingReplica::on_recover() {
  // Signals fired while down were skipped; the supervisor's current target
  // is the authority.  Member state (including link-layer sequence state)
  // survived, so no reset_link_state: peers' dedup history stays valid.
  if (monitor_) {
    latest_target_ = std::max(latest_target_, monitor_->target_era());
  }
  switch (phase_) {
    case Phase::kSync:
      // A pending downgrade drains the cut operation into the base -- the
      // zero-stall path.  Without one this is pause-resume (see header).
      maybe_chain();
      return;
    case Phase::kDraining: {
      // Volatile pieces of the drain: the report broadcast may have died
      // with the link timers, and the fallback timer certainly did.
      auto it = reports_.find(id());
      if (it != reports_.end()) {
        broadcast(make_msg<DrainReportPayload>(era_, it->second));
      }
      if (!base_proposed_) {
        set_timer(drain_fallback_delay(),
                  TimerTag{kDrainFallback, Timestamp{async_era_, id()}});
      }
      ensure_engine(async_era_).reawaken();
      return;
    }
    case Phase::kAsync:
      ensure_engine(async_era_).reawaken();
      maybe_chain();
      return;
    case Phase::kSealing:
      ensure_engine(async_era_).reawaken();
      return;
  }
}

// --- QuorumHost ---------------------------------------------------------

void ModeSwitchingReplica::quorum_send(std::int64_t tag, ProcessId to,
                                       const MessagePayload* payload) {
  raw_send(to, make_msg<QEraPayload>(static_cast<int>(tag), payload));
}

void ModeSwitchingReplica::quorum_set_timer(std::int64_t tag, Tick delta,
                                            std::int64_t cookie) {
  set_timer(delta,
            TimerTag{kQuorumTimer, Timestamp{cookie, static_cast<ProcessId>(tag)}});
}

}  // namespace linbound
