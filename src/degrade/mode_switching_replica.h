// One object, two gears: Algorithm 1 while the timing envelope holds, the
// asynchronous quorum log when it breaks, switching live on the synchrony
// supervisor's signal with a drain-and-handoff at every boundary.
//
// Time is cut into *eras*.  Even eras run the paper's (hardened) replica
// algorithm; odd eras run per-era Paxos (quorum_engine.h).  Every era
// starts from an agreed object state and every boundary is agreed through
// the quorum log itself, so the merged history stays linearizable:
//
//   downgrade (sync era 2k -> async era 2k+1)
//     Each replica drains: it snapshots its own unresponded operations
//     (drain_own_unresponded), wipes the synchronous machinery, and
//     broadcasts a *drain report* -- the set of <ts, op> broadcasts it saw
//     this era.  When reports from all peers arrive (or a fallback timer
//     fires -- peers may be dead, which is why we are downgrading), the
//     replica proposes the union as the era's kBase.  The first kBase to
//     commit wins; every replica replays it in timestamp order from the
//     era's start state -- answering its own drained tokens from the
//     replay -- and enters the async era on the resulting state.  Drained
//     operations that missed the base are re-proposed as ordinary kOps.
//
//   async era
//     Invocations become kOp proposals; commits apply in slot order to
//     every copy; the origin answers its client at its own commit.
//
//   upgrade (async era 2k+1 -> sync era 2k+2)
//     A replica proposes kSeal; the first seal to commit ends the era --
//     everything the log chooses after it is void (own voided operations
//     are simply re-invoked in the new era).  Each replica adopts its
//     (identical) async state as the new era's start state and resumes
//     Algorithm 1.
//
// Crash-recovery rides the same stable-storage story as the quorum engine:
// member state survives a crash, only timers and the pending-operation slot
// are lost.  A recovered replica re-reads the supervisor's target era --
// if a downgrade happened (or was missed) while it was down, the drain
// carries its cut operation into the base and the client is answered with
// no reissue.  This is what lets a mode-switching system ride out storms
// that stall every fixed-mode variant (the chaos engine's degraded-mode
// oracle hunts exactly this claim).
//
// Documented limitations (tested as such, not hidden):
//   * An operation that executed at some replica before the drain but made
//     it into no drain report (origin crashed before reporting, reporter
//     partitioned past the fallback) evaporates from the base; the origin
//     re-proposes it if alive, else its token is given up.
//   * A crash-recovery *within* a sync era (no mode change) is
//     pause-resume: the replica rejoins but a cut operation may stall --
//     that is RecoverableReplicaProcess's job, not this class's.
//   * Stale synchronous timers surviving a downgrade fire within holdback
//     (u+eps) of the drain; the supervisor's clean_window (>= 8d) keeps any
//     new sync era comfortably clear of them.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "core/hardened_replica.h"
#include "degrade/quorum_engine.h"
#include "degrade/synchrony_monitor.h"
#include "spec/snapshot.h"

namespace linbound {

/// Degradation knobs, on top of the hardened layer's HardenedParams.
struct SwitchingParams {
  QuorumParams quorum;
  /// How long a draining replica waits for missing drain reports before
  /// proposing a partial base; 0 means 2 * d_eff + 1 (one framed round
  /// trip) -- peers that miss it are exactly the dead/partitioned ones the
  /// downgrade is for.
  Tick drain_fallback = 0;
  /// Root seed of the quorum engines' retry-jitter streams (each engine
  /// splits by process id and era).
  std::uint64_t seed = 0xdeb'ade'5eedULL;

  bool valid() const { return quorum.valid() && drain_fallback >= 0; }
};

/// The era-stamped frame around Algorithm 1's broadcast.
struct EraOpPayload final : MessagePayload {
  int era = 0;
  const OpBroadcastPayload* inner = nullptr;  ///< arena-owned
  EraOpPayload(int e, const OpBroadcastPayload* in) : era(e), inner(in) {}
};

/// The era-stamped frame around a quorum-engine message.  Sent raw (the
/// engine does its own retrying; the reliable link would re-retry it).
struct QEraPayload final : MessagePayload {
  int era = 0;
  const MessagePayload* inner = nullptr;  ///< engine-arena-owned
  QEraPayload(int e, const MessagePayload* in) : era(e), inner(in) {}
};

/// A draining replica's view of its ending sync era: every <ts, op>
/// broadcast it saw, plus its own not-yet-broadcast operations.
struct DrainReportPayload final : MessagePayload {
  int era = 0;
  std::vector<BaseEntry> entries;
  DrainReportPayload(int e, std::vector<BaseEntry> es)
      : era(e), entries(std::move(es)) {}
};

class ModeSwitchingReplica final : public HardenedReplicaProcess,
                                   public QuorumHost,
                                   public ModeSwitchTarget {
 public:
  /// As HardenedReplicaProcess (delays computed against the hardened
  /// effective timing), plus the degradation knobs.
  ModeSwitchingReplica(std::shared_ptr<const ObjectModel> model,
                       AlgorithmDelays delays, HardenedParams link_params,
                       SwitchingParams params);

  /// Where a recovering replica re-reads the target era (signals fired
  /// while it was crashed are skipped, not queued).  Optional: without a
  /// monitor the replica simply never switches.
  void set_monitor(const SynchronyMonitor* monitor) { monitor_ = monitor; }

  void on_invoke(std::int64_t token, const Operation& op) override;
  void on_timer(TimerId id, const TimerTag& tag) override;
  void on_recover() override;

  // ModeSwitchTarget
  void on_mode_signal(int target_era) override;

  // QuorumHost
  void quorum_send(std::int64_t tag, ProcessId to,
                   const MessagePayload* payload) override;
  void quorum_set_timer(std::int64_t tag, Tick delta,
                        std::int64_t cookie) override;
  void quorum_committed(std::int64_t tag, std::int64_t slot,
                        const QuorumValue& value) override;

  // --- introspection (tests / harness) ---
  enum class Phase { kSync, kDraining, kAsync, kSealing };
  Phase phase() const { return phase_; }
  int era() const { return era_; }
  int downgrade_count() const { return downgrades_; }
  int upgrade_count() const { return upgrades_; }
  const QuorumEngine* engine_for(int era) const {
    auto it = engines_.find(era);
    return it == engines_.end() ? nullptr : it->second.get();
  }

 protected:
  /// Era-stamp Algorithm 1's broadcasts (and record them for the drain);
  /// everything else ships as-is through the reliable link.
  void send(ProcessId to, const MessagePayload* payload) override;

  /// Demultiplex deduplicated application traffic by payload kind and era.
  void deliver_app(ProcessId from, const MessagePayload& payload) override;

 private:
  /// Timer kinds; disjoint from ReplicaProcess (1..4) and the link (100).
  static constexpr int kDrainFallback = 200;
  static constexpr int kQuorumTimer = 300;

  /// An own synchronous-era operation whose response the drain took over.
  struct DrainedToken {
    std::optional<Operation> op;  ///< nullopt: recover from era_ops_ by ts
    std::int64_t token = -1;
    bool ack_only = false;
  };

  /// An own async-era proposal awaiting its commit.
  struct OwnAsyncOp {
    Operation op;
    std::int64_t token = -1;
    bool ack_only = false;
    bool responded = false;
  };

  Tick drain_fallback_delay() const;
  QuorumEngine& ensure_engine(int era);

  void maybe_chain();
  void begin_downgrade();
  void begin_seal();
  void maybe_propose_base(bool force = false);
  void propose_own_op(const Operation& op, std::int64_t token, bool ack_only);

  void process_commits(int era);
  void handle_commit(int era, const QuorumValue& value);
  void apply_op(const QuorumValue& value);
  void do_base(int era, const QuorumValue& value);
  void do_seal(int era);
  void flush_deferred();

  SwitchingParams params_;
  const SynchronyMonitor* monitor_ = nullptr;

  Phase phase_ = Phase::kSync;
  int era_ = 0;        ///< current era (even while kSync/kDraining)
  int async_era_ = -1; ///< the odd era being drained into / run; -1 in sync
  int latest_target_ = 0;  ///< highest era the supervisor has asked for

  /// One engine per async era, created lazily (the acceptor role is always
  /// safe) and kept for the run: sealed eras still answer catch-up from
  /// laggards that crashed through them.
  std::map<int, std::unique_ptr<QuorumEngine>> engines_;

  /// The current sync era's broadcast history: every <ts, op> this replica
  /// sent or saw.  Feeds the drain report; kept through the async era so a
  /// leftover drained token can recover its operation; cleared at the seal.
  std::map<Timestamp, Operation> era_ops_;
  /// Object state the current era started from (agreed across replicas).
  Snapshot era_start_state_;

  // --- drain / downgrade state ---
  std::map<ProcessId, std::vector<BaseEntry>> reports_;
  std::map<Timestamp, DrainedToken> drained_tokens_;
  bool base_proposed_ = false;
  bool based_ = false;
  /// kOps the log chose before the era's base; applied right after it.
  std::vector<QuorumValue> pre_base_ops_;

  // --- async-era state ---
  Snapshot async_obj_;
  std::map<std::int64_t, OwnAsyncOp> own_async_tokens_;  ///< by op_id
  std::set<std::pair<ProcessId, std::int64_t>> applied_ids_;
  std::int64_t next_op_id_ = 0;

  /// Per-era commit log as delivered by the engines; eras ahead of us stay
  /// stashed until we get there (crash catch-up), and the cursor makes
  /// processing re-entrant (commits arrive inside engine delivery).
  std::map<int, std::vector<std::pair<std::int64_t, QuorumValue>>> commits_;
  std::map<int, std::size_t> commits_pos_;
  bool processing_commits_ = false;

  /// Invocations arriving mid-transition, replayed at the next stable phase.
  std::vector<std::pair<std::int64_t, Operation>> deferred_;
  /// Sync broadcasts stamped with a future era (sender switched first);
  /// replayed when we reach that era.
  struct FutureSyncOp {
    int era = 0;
    Timestamp ts{};
    Operation op;
  };
  std::vector<FutureSyncOp> future_sync_;

  int downgrades_ = 0;
  int upgrades_ = 0;
};

}  // namespace linbound
