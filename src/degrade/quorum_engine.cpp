#include "degrade/quorum_engine.h"

#include <algorithm>
#include <stdexcept>

namespace linbound {

const char* quorum_value_kind_name(QuorumValueKind kind) {
  switch (kind) {
    case QuorumValueKind::kNoop:
      return "noop";
    case QuorumValueKind::kOp:
      return "op";
    case QuorumValueKind::kBase:
      return "base";
    case QuorumValueKind::kSeal:
      return "seal";
  }
  return "?";
}

bool same_proposal(const QuorumValue& a, const QuorumValue& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case QuorumValueKind::kNoop:
      return false;
    case QuorumValueKind::kOp:
      return a.origin == b.origin && a.op_id == b.op_id;
    case QuorumValueKind::kBase:
    case QuorumValueKind::kSeal:
      return a.origin == b.origin;
  }
  return false;
}

QuorumEngine::QuorumEngine(QuorumHost& host, std::int64_t tag, ProcessId self,
                           int n, const SystemTiming& timing,
                           QuorumParams params, std::uint64_t seed)
    : host_(host),
      tag_(tag),
      self_(self),
      n_(n),
      timing_(timing),
      params_(params),
      rng_(Rng(seed)
               .split(static_cast<std::uint64_t>(self))
               .split(static_cast<std::uint64_t>(tag))) {
  if (!params_.valid()) throw std::invalid_argument("invalid QuorumParams");
}

Tick QuorumEngine::retry_initial() const {
  return params_.retry_initial > 0 ? params_.retry_initial
                                   : 2 * timing_.d + 1;
}

Tick QuorumEngine::retry_cap() const {
  return params_.retry_cap > 0 ? params_.retry_cap : 8 * timing_.d;
}

Tick QuorumEngine::gap_fill_delay() const {
  return params_.gap_fill_delay > 0 ? params_.gap_fill_delay : 4 * timing_.d;
}

void QuorumEngine::send_others(const MessagePayload* payload) {
  for (ProcessId to = 0; to < static_cast<ProcessId>(n_); ++to) {
    if (to == self_) continue;
    host_.quorum_send(tag_, to, payload);
  }
}

std::int64_t QuorumEngine::lowest_unchosen() const {
  std::int64_t slot = apply_next_;
  while (chosen_.count(slot) != 0) ++slot;
  return slot;
}

bool QuorumEngine::has_gap() const {
  if (chosen_.empty()) return false;
  return chosen_.rbegin()->first >= apply_next_ &&
         chosen_.count(apply_next_) == 0;
}

void QuorumEngine::propose(QuorumValue value) {
  backlog_.push_back(std::move(value));
  maybe_start_next();
}

void QuorumEngine::abandon_kind(QuorumValueKind kind) {
  backlog_.erase(std::remove_if(backlog_.begin(), backlog_.end(),
                                [kind](const QuorumValue& v) {
                                  return v.kind == kind;
                                }),
                 backlog_.end());
  if (driving_ && !driving_->noop_fill && driving_->value.kind == kind) {
    driving_.reset();
    ++retry_seq_;  // pending retry timer goes stale
    maybe_start_next();
  }
}

void QuorumEngine::reawaken() {
  if (driving_) {
    start_attempt(driving_->slot);
  } else {
    maybe_start_next();
  }
  gap_timer_armed_ = false;  // its timer died with the crash
  if (has_gap()) arm_gap_timer();
  auto* req = arena_.make<QCatchupReqPayload>(apply_next_);
  send_others(req);
}

void QuorumEngine::maybe_start_next() {
  if (driving_) return;
  if (!backlog_.empty()) {
    Driving d;
    d.value = std::move(backlog_.front());
    backlog_.pop_front();
    driving_ = std::move(d);
    retry_wait_ = retry_initial();
    start_attempt(lowest_unchosen());
    return;
  }
  if (has_gap()) arm_gap_timer();
}

void QuorumEngine::arm_retry() {
  Tick jitter_max = params_.retry_jitter > 0 ? params_.retry_jitter : timing_.d;
  const Tick jitter = rng_.uniform_tick(0, jitter_max);
  host_.quorum_set_timer(tag_, retry_wait_ + jitter, ++retry_seq_);
}

void QuorumEngine::arm_gap_timer() {
  if (gap_timer_armed_) return;
  gap_timer_armed_ = true;
  host_.quorum_set_timer(tag_, gap_fill_delay(), kGapCookie);
}

void QuorumEngine::start_attempt(std::int64_t slot) {
  Driving& d = *driving_;
  d.slot = slot;
  d.ballot = Ballot{++round_, self_};
  d.phase2 = false;
  d.promises.clear();
  d.best_accepted_ballot.reset();
  d.accepteds.clear();
  arm_retry();
  // Self is an acceptor too; its promise is collected inline before the
  // prepare goes on the wire (collect_promise may already complete phase 1
  // when n == 1).
  accept_prepare(self_, d.slot, d.ballot);
  if (driving_ && driving_->slot == slot && !driving_->phase2) {
    auto* prep = arena_.make<QPreparePayload>(slot, driving_->ballot);
    send_others(prep);
  }
}

void QuorumEngine::on_timer(std::int64_t cookie) {
  if (cookie == kGapCookie) {
    gap_timer_armed_ = false;
    if (!has_gap()) return;
    if (driving_) {
      // A live proposal will resolve the gap slot itself (it targets the
      // lowest unchosen slot); check again later.
      arm_gap_timer();
      return;
    }
    Driving d;
    d.value = QuorumValue{};  // kNoop
    d.noop_fill = true;
    driving_ = std::move(d);
    ++noop_fills_;
    retry_wait_ = retry_initial();
    start_attempt(apply_next_);
    return;
  }
  // Proposal retry: only the most recently armed timer counts.
  if (cookie != retry_seq_ || !driving_) return;
  ++retries_;
  retry_wait_ = (retry_wait_ >= retry_cap() / params_.retry_backoff)
                    ? retry_cap()
                    : retry_wait_ * params_.retry_backoff;
  retry_wait_ = std::min(retry_wait_, retry_cap());
  start_attempt(driving_->slot);
}

bool QuorumEngine::on_message(ProcessId from, const MessagePayload& payload) {
  if (const auto* prep = dynamic_cast<const QPreparePayload*>(&payload)) {
    accept_prepare(from, prep->slot, prep->ballot);
    return true;
  }
  if (const auto* prom = dynamic_cast<const QPromisePayload*>(&payload)) {
    collect_promise(from, *prom);
    return true;
  }
  if (const auto* acc = dynamic_cast<const QAcceptPayload*>(&payload)) {
    accept_accept(from, acc->slot, acc->ballot, acc->value);
    return true;
  }
  if (const auto* accd = dynamic_cast<const QAcceptedPayload*>(&payload)) {
    collect_accepted(from, accd->slot, accd->ballot);
    return true;
  }
  if (const auto* nack = dynamic_cast<const QNackPayload*>(&payload)) {
    // Outballoted: remember the competing round so the next attempt (on
    // the jittered retry timer -- immediate re-prepare would duel) wins.
    round_ = std::max(round_, nack->promised.round);
    return true;
  }
  if (const auto* chosen = dynamic_cast<const QChosenPayload*>(&payload)) {
    on_chosen(chosen->slot, chosen->value);
    return true;
  }
  if (const auto* req = dynamic_cast<const QCatchupReqPayload*>(&payload)) {
    auto* reply = arena_.make<QCatchupReplyPayload>();
    for (const auto& [slot, value] : chosen_) {
      if (slot < req->from_slot) continue;
      reply->slots.push_back(slot);
      reply->values.push_back(value);
    }
    if (!reply->slots.empty()) host_.quorum_send(tag_, from, reply);
    return true;
  }
  if (const auto* reply = dynamic_cast<const QCatchupReplyPayload*>(&payload)) {
    for (std::size_t i = 0; i < reply->slots.size(); ++i) {
      on_chosen(reply->slots[i], reply->values[i]);
    }
    return true;
  }
  return false;
}

void QuorumEngine::accept_prepare(ProcessId from, std::int64_t slot,
                                  const Ballot& b) {
  AcceptorSlot& acc = acceptors_[slot];
  if (b < acc.promised) {
    if (from != self_) {
      host_.quorum_send(tag_, from,
                        arena_.make<QNackPayload>(slot, acc.promised));
    }
    return;
  }
  acc.promised = b;
  if (from == self_) {
    collect_promise_parts(self_, slot, b, acc.accepted_ballot.has_value(),
                          acc.accepted_ballot.value_or(Ballot{}),
                          acc.accepted_value);
    return;
  }
  auto* prom = arena_.make<QPromisePayload>(slot, b);
  if (acc.accepted_ballot) {
    prom->has_accepted = true;
    prom->accepted_ballot = *acc.accepted_ballot;
    prom->accepted_value = acc.accepted_value;
  }
  host_.quorum_send(tag_, from, prom);
}

void QuorumEngine::accept_accept(ProcessId from, std::int64_t slot,
                                 const Ballot& b, const QuorumValue& v) {
  AcceptorSlot& acc = acceptors_[slot];
  if (b < acc.promised) {
    if (from != self_) {
      host_.quorum_send(tag_, from,
                        arena_.make<QNackPayload>(slot, acc.promised));
    }
    return;
  }
  acc.promised = b;
  acc.accepted_ballot = b;
  acc.accepted_value = v;
  if (from == self_) {
    collect_accepted(self_, slot, b);
    return;
  }
  host_.quorum_send(tag_, from, arena_.make<QAcceptedPayload>(slot, b));
}

void QuorumEngine::collect_promise(ProcessId from, const QPromisePayload& p) {
  collect_promise_parts(from, p.slot, p.ballot, p.has_accepted,
                        p.accepted_ballot, p.accepted_value);
}

void QuorumEngine::collect_promise_parts(ProcessId from, std::int64_t slot,
                                         const Ballot& b, bool has_accepted,
                                         const Ballot& acc_b,
                                         const QuorumValue& acc_v) {
  if (!driving_ || driving_->phase2) return;
  Driving& d = *driving_;
  if (slot != d.slot || b != d.ballot) return;
  d.promises.insert(from);
  if (has_accepted &&
      (!d.best_accepted_ballot || acc_b > *d.best_accepted_ballot)) {
    d.best_accepted_ballot = acc_b;
    d.best_accepted_value = acc_v;
  }
  if (static_cast<int>(d.promises.size()) < majority()) return;
  // Phase 2: a previously accepted value must be recovered (it may already
  // be chosen somewhere we cannot see); otherwise drive our own.
  d.phase2 = true;
  d.phase2_value = d.best_accepted_ballot ? d.best_accepted_value : d.value;
  const std::int64_t drive_slot = d.slot;
  const Ballot drive_ballot = d.ballot;
  // Self-accept first (may complete the slot when n == 1).
  accept_accept(self_, drive_slot, drive_ballot, d.phase2_value);
  if (driving_ && driving_->slot == drive_slot &&
      driving_->ballot == drive_ballot) {
    auto* acc = arena_.make<QAcceptPayload>(drive_slot, drive_ballot,
                                            driving_->phase2_value);
    send_others(acc);
  }
}

void QuorumEngine::collect_accepted(ProcessId from, std::int64_t slot,
                                    const Ballot& b) {
  if (!driving_ || !driving_->phase2) return;
  Driving& d = *driving_;
  if (slot != d.slot || b != d.ballot) return;
  d.accepteds.insert(from);
  if (static_cast<int>(d.accepteds.size()) < majority()) return;
  // Decided.  Tell everyone, then deliver locally (on_chosen also advances
  // or completes the driving proposal).
  const QuorumValue decided = d.phase2_value;
  auto* chosen = arena_.make<QChosenPayload>(slot, decided);
  send_others(chosen);
  on_chosen(slot, decided);
}

void QuorumEngine::on_chosen(std::int64_t slot, const QuorumValue& value) {
  if (chosen_.count(slot) != 0) {
    // Paxos guarantees any second decision for a slot is the same value.
    return;
  }
  chosen_[slot] = value;
  if (driving_) {
    Driving& d = *driving_;
    if (same_proposal(value, d.value)) {
      // Our value made it -- possibly driven by a peer that recovered it
      // from a half-accepted slot.  Done either way.
      driving_.reset();
      ++retry_seq_;
    } else if (slot == d.slot) {
      if (d.noop_fill) {
        // The filler's job was getting this slot decided; any value does.
        driving_.reset();
        ++retry_seq_;
      } else {
        // Lost the slot to a competing (or recovered) value: re-target the
        // next free slot immediately -- same value, fresh ballot.
        retry_wait_ = retry_initial();
        start_attempt(lowest_unchosen());
      }
    }
  }
  deliver_committed();
  if (!driving_) maybe_start_next();
  if (has_gap()) arm_gap_timer();
}

void QuorumEngine::deliver_committed() {
  while (true) {
    auto it = chosen_.find(apply_next_);
    if (it == chosen_.end()) return;
    const std::int64_t slot = apply_next_;
    ++apply_next_;
    // The host may reenter propose()/abandon_kind() from this upcall.
    host_.quorum_committed(tag_, slot, it->second);
  }
}

}  // namespace linbound
