// Crash-tolerant asynchronous agreement: a leaderless, per-slot
// single-decree Paxos log -- the fallback backend the mode-switching
// replica (mode_switching_replica.h) drops to when the synchrony supervisor
// observes the [d-u, d]/eps envelope broken.
//
// Why Paxos and not a quorum register: the paper's objects are *arbitrary*
// data types.  ABD-style register emulation is safe only for reads/writes;
// for ordered operations (queues, RMW) two concurrent dequeues through
// partially overlapping quorum views can both return the same element, so
// the degraded backend must agree on a total order.  Per-slot Paxos gives
// exactly that with no leader to lose: every replica may propose, collisions
// are resolved per slot, and safety needs no timing assumptions at all --
// only a majority of replicas up.  Timing only affects liveness, which is
// the right trade for a mode entered precisely because timing has failed.
//
// The engine is deliberately not a Process: the mode-switching replica is
// already one, and one object must be able to host several engines (one per
// degraded era) concurrently for laggards catching up.  All I/O goes
// through the small QuorumHost interface; payloads live in the engine's own
// arena so hosts never marshal.
//
// Crash model (documented, standard): acceptor state and the chosen log are
// treated as *stable storage* -- the simulator's crash keeps member state
// and only kills timers, which matches Paxos's persistence assumption.
// A recovering host calls reawaken() to re-arm the volatile timers and
// broadcast a catch-up request.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "common/timestamp.h"
#include "sim/arena.h"
#include "sim/message.h"
#include "spec/operation.h"

namespace linbound {

/// Classic Paxos ballot: totally ordered, proposer-unique.
struct Ballot {
  std::int64_t round = 0;
  ProcessId pid = kNoProcess;

  friend auto operator<=>(const Ballot&, const Ballot&) = default;
};

/// What a log slot can decide.
enum class QuorumValueKind {
  kNoop,  ///< gap filler: no effect, unblocks in-order delivery
  kOp,    ///< one client operation, identified by (origin, op_id)
  kBase,  ///< era base: the drained synchronous history a downgrade agrees on
  kSeal,  ///< era seal: everything after it in this era's log is void
};

const char* quorum_value_kind_name(QuorumValueKind kind);

/// One entry of a kBase value: a synchronous-era operation at its Algorithm 1
/// timestamp (replayed in ts order from the era's start state).
struct BaseEntry {
  Timestamp ts{};
  Operation op;
};

struct QuorumValue {
  QuorumValueKind kind = QuorumValueKind::kNoop;
  ProcessId origin = kNoProcess;
  std::int64_t op_id = -1;      ///< kOp: unique per origin
  Operation op;                 ///< kOp payload
  std::vector<BaseEntry> base;  ///< kBase payload, sorted by ts
};

/// Identity (not content) equality: is `a` the same *proposal* as `b`?
/// kOp compares (origin, op_id); kBase/kSeal compare (kind, origin); kNoop
/// is never the same proposal as anything (fillers are anonymous).
bool same_proposal(const QuorumValue& a, const QuorumValue& b);

// --- wire payloads (engine-internal; hosts may wrap them opaquely) ---

struct QPreparePayload final : MessagePayload {
  std::int64_t slot = 0;
  Ballot ballot{};
  QPreparePayload(std::int64_t s, Ballot b) : slot(s), ballot(b) {}
};

struct QPromisePayload final : MessagePayload {
  std::int64_t slot = 0;
  Ballot ballot{};
  bool has_accepted = false;
  Ballot accepted_ballot{};
  QuorumValue accepted_value;
  QPromisePayload(std::int64_t s, Ballot b) : slot(s), ballot(b) {}
};

struct QAcceptPayload final : MessagePayload {
  std::int64_t slot = 0;
  Ballot ballot{};
  QuorumValue value;
  QAcceptPayload(std::int64_t s, Ballot b, QuorumValue v)
      : slot(s), ballot(b), value(std::move(v)) {}
};

struct QAcceptedPayload final : MessagePayload {
  std::int64_t slot = 0;
  Ballot ballot{};
  QAcceptedPayload(std::int64_t s, Ballot b) : slot(s), ballot(b) {}
};

struct QNackPayload final : MessagePayload {
  std::int64_t slot = 0;
  Ballot promised{};
  QNackPayload(std::int64_t s, Ballot p) : slot(s), promised(p) {}
};

struct QChosenPayload final : MessagePayload {
  std::int64_t slot = 0;
  QuorumValue value;
  QChosenPayload(std::int64_t s, QuorumValue v) : slot(s), value(std::move(v)) {}
};

struct QCatchupReqPayload final : MessagePayload {
  std::int64_t from_slot = 0;
  explicit QCatchupReqPayload(std::int64_t s) : from_slot(s) {}
};

struct QCatchupReplyPayload final : MessagePayload {
  std::vector<std::int64_t> slots;
  std::vector<QuorumValue> values;
};

/// The engine's window to the world.  `tag` is the opaque value the host
/// passed at construction (the mode-switching replica uses the degraded
/// era), echoed on every upcall so one host can demultiplex several engines.
class QuorumHost {
 public:
  virtual ~QuorumHost() = default;

  /// Ship an engine payload to peer `to` (never the engine's own process).
  virtual void quorum_send(std::int64_t tag, ProcessId to,
                           const MessagePayload* payload) = 0;

  /// Arm a timer that calls QuorumEngine::on_timer(cookie) after `delta`
  /// local-clock ticks.  Timers are volatile (lost on crash) and need no
  /// cancellation -- the engine ignores stale cookies.
  virtual void quorum_set_timer(std::int64_t tag, Tick delta,
                                std::int64_t cookie) = 0;

  /// Slot `slot` decided `value`, and every smaller slot has already been
  /// delivered (in-order, exactly once per slot).
  virtual void quorum_committed(std::int64_t tag, std::int64_t slot,
                                const QuorumValue& value) = 0;
};

struct QuorumParams {
  /// First proposal-retry wait; 0 means 2d+1 (a prepare/promise round trip
  /// under healthy timing -- under broken timing the backoff takes over).
  Tick retry_initial = 0;
  /// Cap on a single retry wait; 0 means 8d.
  Tick retry_cap = 0;
  int retry_backoff = 2;
  /// Deterministic jitter added to every retry wait, drawn from the
  /// engine's split RNG stream: dueling proposers must not re-prepare in
  /// lockstep or they livelock.  0 means d.
  Tick retry_jitter = 0;
  /// How long a delivery gap (a chosen slot above an unchosen one) may
  /// stand before the engine proposes a kNoop to resolve it; also recovers
  /// slots whose QChosen notification was lost.  0 means 4d.
  Tick gap_fill_delay = 0;

  bool valid() const {
    return retry_initial >= 0 && retry_cap >= 0 && retry_backoff >= 1 &&
           retry_jitter >= 0 && gap_fill_delay >= 0;
  }
};

class QuorumEngine {
 public:
  QuorumEngine(QuorumHost& host, std::int64_t tag, ProcessId self, int n,
               const SystemTiming& timing, QuorumParams params,
               std::uint64_t seed);

  /// Feed a received payload; returns false if it was not an engine message
  /// (the host should then try its other handlers).
  bool on_message(ProcessId from, const MessagePayload& payload);

  /// Deliver a timer armed through QuorumHost::quorum_set_timer.
  void on_timer(std::int64_t cookie);

  /// Queue `value` for agreement.  The engine drives one own proposal at a
  /// time and keeps proposing (with ballot escalation and jittered backoff)
  /// until the value is chosen in some slot or abandon_kind() removes it.
  void propose(QuorumValue value);

  /// Drop every own pending/driving proposal of `kind` -- called by the
  /// host when a competing kBase/kSeal committed, making ours redundant.
  /// Abandoning mid-Paxos is safe: a half-accepted slot is resolved by gap
  /// fill, and the value is idempotent at the host (dedup on delivery).
  void abandon_kind(QuorumValueKind kind);

  /// After a crash: re-arm the (volatile) proposal and gap timers and
  /// broadcast a catch-up request for slots decided while down.
  void reawaken();

  // --- introspection (tests / benches) ---
  std::int64_t delivered_count() const { return apply_next_; }
  std::int64_t chosen_count() const { return static_cast<std::int64_t>(chosen_.size()); }
  bool idle() const { return !driving_ && backlog_.empty(); }
  std::int64_t proposal_retries() const { return retries_; }
  std::int64_t noop_fills() const { return noop_fills_; }

 private:
  // Timer cookies: positive = proposal retry (the arming sequence number),
  // kGapCookie = gap-fill probe.
  static constexpr std::int64_t kGapCookie = -1;

  struct AcceptorSlot {
    Ballot promised{};
    std::optional<Ballot> accepted_ballot;
    QuorumValue accepted_value;
  };

  /// The one own proposal currently being driven through Paxos.
  struct Driving {
    QuorumValue value;
    bool noop_fill = false;  ///< gap filler: done when the slot decides at all
    std::int64_t slot = -1;
    Ballot ballot{};
    bool phase2 = false;
    QuorumValue phase2_value;  ///< own value, or a recovered accepted value
    std::set<ProcessId> promises;
    std::optional<Ballot> best_accepted_ballot;
    QuorumValue best_accepted_value;
    std::set<ProcessId> accepteds;
  };

  int majority() const { return n_ / 2 + 1; }
  Tick retry_initial() const;
  Tick retry_cap() const;
  Tick gap_fill_delay() const;

  void send_others(const MessagePayload* payload);
  std::int64_t lowest_unchosen() const;
  bool has_gap() const;

  /// (Re)start phase 1 of the driving proposal at `slot` with a fresh,
  /// higher ballot; arms the retry timer.
  void start_attempt(std::int64_t slot);
  void arm_retry();
  void arm_gap_timer();

  // Acceptor side (self messages handled inline, peers via payloads).
  void accept_prepare(ProcessId from, std::int64_t slot, const Ballot& b);
  void accept_accept(ProcessId from, std::int64_t slot, const Ballot& b,
                     const QuorumValue& v);

  // Proposer side.
  void collect_promise(ProcessId from, const QPromisePayload& p);
  void collect_promise_parts(ProcessId from, std::int64_t slot,
                             const Ballot& b, bool has_accepted,
                             const Ballot& acc_b, const QuorumValue& acc_v);
  void collect_accepted(ProcessId from, std::int64_t slot, const Ballot& b);

  void on_chosen(std::int64_t slot, const QuorumValue& value);
  void deliver_committed();
  void maybe_start_next();

  QuorumHost& host_;
  std::int64_t tag_;
  ProcessId self_;
  int n_;
  SystemTiming timing_;
  QuorumParams params_;
  /// Engine-owned payload storage: the engine is not a Process and cannot
  /// reach the run arena; it lives as long as its replica, which outlives
  /// every in-flight delivery of its payloads.
  PayloadArena arena_;
  Rng rng_;

  std::map<std::int64_t, AcceptorSlot> acceptors_;  ///< stable storage
  std::map<std::int64_t, QuorumValue> chosen_;      ///< stable storage
  std::int64_t apply_next_ = 0;  ///< next slot to deliver to the host
  std::int64_t round_ = 0;       ///< monotonic ballot-round counter

  std::optional<Driving> driving_;
  std::deque<QuorumValue> backlog_;
  std::int64_t retry_seq_ = 0;  ///< stale retry timers carry an older value
  Tick retry_wait_ = 0;
  bool gap_timer_armed_ = false;

  std::int64_t retries_ = 0;
  std::int64_t noop_fills_ = 0;
};

}  // namespace linbound
