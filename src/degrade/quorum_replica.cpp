#include "degrade/quorum_replica.h"

namespace linbound {

QuorumReplicaProcess::QuorumReplicaProcess(
    std::shared_ptr<const ObjectModel> model, QuorumParams params,
    std::uint64_t seed)
    : model_(std::move(model)),
      params_(params),
      seed_(seed),
      obj_(model_->initial_state()) {}

void QuorumReplicaProcess::on_start() {
  engine_ = std::make_unique<QuorumEngine>(*this, /*tag=*/0, id(),
                                           process_count(), timing(), params_,
                                           seed_);
}

void QuorumReplicaProcess::on_invoke(std::int64_t token, const Operation& op) {
  QuorumValue value;
  value.kind = QuorumValueKind::kOp;
  value.origin = id();
  value.op_id = next_op_id_++;
  value.op = op;
  pending_tokens_[value.op_id] = token;
  engine_->propose(std::move(value));
}

void QuorumReplicaProcess::on_message(ProcessId from,
                                      const MessagePayload& payload) {
  engine_->on_message(from, payload);
}

void QuorumReplicaProcess::on_timer(TimerId /*id*/, const TimerTag& tag) {
  if (tag.kind != kQuorumTimer) return;
  engine_->on_timer(tag.ts.clock_time);
}

void QuorumReplicaProcess::on_recover() {
  // Member state is the stable storage (see quorum_engine.h); only the
  // timers died.  Catch up on slots decided while down -- the commit that
  // answers the operation the crash cut may be among them.
  engine_->reawaken();
}

void QuorumReplicaProcess::quorum_send(std::int64_t /*tag*/, ProcessId to,
                                       const MessagePayload* payload) {
  send(to, payload);
}

void QuorumReplicaProcess::quorum_set_timer(std::int64_t /*tag*/, Tick delta,
                                            std::int64_t cookie) {
  set_timer(delta, TimerTag{kQuorumTimer, Timestamp{cookie, id()}});
}

void QuorumReplicaProcess::quorum_committed(std::int64_t /*tag*/,
                                            std::int64_t /*slot*/,
                                            const QuorumValue& value) {
  if (value.kind != QuorumValueKind::kOp) return;  // noop fillers
  const Value ret = obj_->apply(value.op);
  if (value.origin != id()) return;
  auto it = pending_tokens_.find(value.op_id);
  if (it == pending_tokens_.end()) return;
  const std::int64_t token = it->second;
  pending_tokens_.erase(it);
  respond(token, ret);
}

}  // namespace linbound
