// A replica that runs *only* the asynchronous quorum backend: every
// operation goes through the Paxos log (quorum_engine.h) and is applied to
// the local copy in slot order -- plain state-machine replication.
//
// This is the degraded mode as a standalone object implementation: safe
// under arbitrary message delays, loss (the engine retries), duplication
// (per-slot agreement is idempotent) and minority crashes, at the price of
// quorum round trips where Algorithm 1 pays d+eps.  The mode-switching
// replica (mode_switching_replica.h) embeds the same engine; this class
// exists so the backend can be validated -- and benchmarked -- in
// isolation under the full fault/churn sweeps.
//
// Crash-recovery: engine state is stable storage (see quorum_engine.h); a
// recovered replica reawakens its engine and answers the operation the
// crash cut from the committed log -- no client retry needed.
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "degrade/quorum_engine.h"
#include "sim/process.h"
#include "spec/object_model.h"

namespace linbound {

class QuorumReplicaProcess final : public Process, public QuorumHost {
 public:
  QuorumReplicaProcess(std::shared_ptr<const ObjectModel> model,
                       QuorumParams params, std::uint64_t seed);

  void on_start() override;
  void on_invoke(std::int64_t token, const Operation& op) override;
  void on_message(ProcessId from, const MessagePayload& payload) override;
  void on_timer(TimerId id, const TimerTag& tag) override;
  void on_recover() override;

  // QuorumHost
  void quorum_send(std::int64_t tag, ProcessId to,
                   const MessagePayload* payload) override;
  void quorum_set_timer(std::int64_t tag, Tick delta,
                        std::int64_t cookie) override;
  void quorum_committed(std::int64_t tag, std::int64_t slot,
                        const QuorumValue& value) override;

  /// Introspection for tests.
  const ObjectState& local_copy() const { return *obj_; }
  const QuorumEngine& engine() const { return *engine_; }

 private:
  /// Timer kind for engine timers; the cookie rides in ts.clock_time.
  static constexpr int kQuorumTimer = 300;

  std::shared_ptr<const ObjectModel> model_;
  QuorumParams params_;
  std::uint64_t seed_;
  /// Created in on_start (needs id() and process_count()).
  std::unique_ptr<QuorumEngine> engine_;
  std::unique_ptr<ObjectState> obj_;
  std::int64_t next_op_id_ = 0;
  std::map<std::int64_t, std::int64_t> pending_tokens_;  ///< op_id -> token
};

}  // namespace linbound
