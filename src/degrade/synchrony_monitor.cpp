#include "degrade/synchrony_monitor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace linbound {

SynchronyMonitor::SynchronyMonitor(Simulator& sim, MonitorOptions options)
    : sim_(sim), options_(options), timing_(sim.config().timing) {
  if (!options_.valid()) throw std::invalid_argument("invalid MonitorOptions");
}

Tick SynchronyMonitor::poll_interval() const {
  return options_.poll_interval > 0 ? options_.poll_interval : timing_.d;
}

Tick SynchronyMonitor::clean_window() const {
  return options_.clean_window > 0 ? options_.clean_window : 8 * timing_.d;
}

Tick SynchronyMonitor::min_dwell() const {
  return options_.min_dwell > 0 ? options_.min_dwell : 16 * timing_.d;
}

Tick SynchronyMonitor::late_slack() const {
  return options_.late_slack > 0 ? options_.late_slack : timing_.d;
}

void SynchronyMonitor::add_target(ProcessId pid, ModeSwitchTarget* target) {
  if (armed_) throw std::logic_error("add_target after arm()");
  targets_.emplace_back(pid, target);
}

void SynchronyMonitor::arm() {
  if (armed_) throw std::logic_error("SynchronyMonitor armed twice");
  armed_ = true;
  std::sort(targets_.begin(), targets_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  // Clock offsets are static: pairwise skew can be audited once, up front.
  // A skew violation cannot heal, so it pins the system in degraded mode.
  const std::vector<Tick>& offs = sim_.config().clock_offsets;
  const auto offset = [&](int i) {
    return static_cast<std::size_t>(i) < offs.size()
               ? offs[static_cast<std::size_t>(i)]
               : Tick{0};
  };
  const int n = sim_.process_count();
  for (int i = 0; i < n && !permanent_; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const Tick skew = std::abs(offset(i) - offset(j));
      if (skew > timing_.eps) {
        permanent_ = true;
        break;
      }
    }
  }
  sim_.call_at(sim_.now() + poll_interval(), [this] { poll(); });
}

void SynchronyMonitor::observe_delivery(const MessageRecord& rec) {
  const Tick delay = rec.delay();
  link_delays_[{rec.from, rec.to}].push_back(delay);
  if (!timing_.delay_admissible(delay)) note_violation(rec.recv_time);
}

void SynchronyMonitor::note_violation(Tick when) {
  ++violations_;
  last_violation_time_ = std::max(last_violation_time_, when);
}

void SynchronyMonitor::scan_trace() {
  const std::vector<MessageRecord>& msgs = sim_.trace().messages;
  const Tick now = sim_.now();
  const Tick overdue = timing_.d + late_slack();
  // Re-examine earlier undelivered messages first: each either got
  // delivered since, is now overdue (one violation, then forgotten -- a
  // lost message must not count once per poll forever), or stays watched.
  std::size_t kept = 0;
  for (std::size_t w = 0; w < watch_.size(); ++w) {
    const MessageRecord& rec = msgs[watch_[w]];
    if (rec.delivered()) {
      observe_delivery(rec);
    } else if (now - rec.send_time > overdue) {
      note_violation(now);
    } else {
      watch_[kept++] = watch_[w];
    }
  }
  watch_.resize(kept);
  for (; scanned_ < msgs.size(); ++scanned_) {
    const MessageRecord& rec = msgs[scanned_];
    if (rec.delivered()) {
      observe_delivery(rec);
    } else if (now - rec.send_time > overdue) {
      note_violation(now);
    } else {
      watch_.push_back(scanned_);
    }
  }
}

void SynchronyMonitor::poll() {
  scan_trace();
  const Tick now = sim_.now();
  const bool dwelled =
      last_switch_time_ == kNoTime || now - last_switch_time_ >= min_dwell();
  const bool degraded = (target_era_ % 2) != 0;
  if (!degraded) {
    const bool evidence = permanent_ ||
                          violations_ - violations_mark_ >=
                              options_.downgrade_after;
    if (evidence && dwelled) {
      ++downgrades_;
      signal(target_era_ + 1, FaultKind::kModeDowngrade);
      // Start the clean-window clock at the switch: only silence *after*
      // the downgrade argues for going back.
      last_violation_time_ = std::max(last_violation_time_, now);
    }
  } else if (!permanent_ && dwelled && last_violation_time_ != kNoTime &&
             now - last_violation_time_ >= clean_window()) {
    ++upgrades_;
    signal(target_era_ + 1, FaultKind::kModeUpgrade);
    violations_mark_ = violations_;  // degraded-era violations are forgiven
  }
  // Quiescence-preserving reschedule: once every other event source has
  // drained, stop polling so Simulator::run can end.  (The current poll's
  // event has already been popped.)
  if (!sim_.event_queue().empty()) {
    sim_.call_at(now + poll_interval(), [this] { poll(); });
  }
}

void SynchronyMonitor::signal(int era, FaultKind kind) {
  FaultEvent ev;
  ev.kind = kind;
  ev.time = sim_.now();
  ev.magnitude = era;
  sim_.record_fault(ev);
  target_era_ = era;
  last_switch_time_ = sim_.now();
  for (const auto& [pid, target] : targets_) {
    if (sim_.crashed(pid)) continue;  // reads target_era() on recovery
    target->on_mode_signal(era);
  }
}

std::size_t SynchronyMonitor::link_sample_count(ProcessId from,
                                                ProcessId to) const {
  auto it = link_delays_.find({from, to});
  return it == link_delays_.end() ? 0 : it->second.size();
}

Tick SynchronyMonitor::link_delay_percentile(ProcessId from, ProcessId to,
                                             double pct) const {
  auto it = link_delays_.find({from, to});
  if (it == link_delays_.end() || it->second.empty()) return kNoTime;
  if (pct <= 0.0 || pct > 100.0) {
    throw std::invalid_argument("percentile must be in (0, 100]");
  }
  std::vector<Tick> sorted = it->second;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  // Nearest-rank: the ceil(pct/100 * n)-th smallest sample.
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(pct / 100.0 * static_cast<double>(n)));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  return sorted[rank - 1];
}

}  // namespace linbound
