// The synchrony supervisor: watches a running simulation for evidence that
// the paper's timing envelope is broken and tells mode-switching replicas
// (mode_switching_replica.h) when to change gears.
//
// The model promises every delivered message a delay in [d-u, d] and
// pairwise clock skew <= eps.  The monitor checks the observable half of
// that promise online: it scans the trace incrementally (each message record
// is examined O(1) times), flags deliveries outside the envelope and
// messages overdue past d + late_slack, and keeps per-link delay samples for
// percentile introspection.  Clock skew is checked once, at arm(): offsets
// are static in this simulator, and a skew violation is *permanent* -- the
// monitor downgrades at the first poll and never upgrades.
//
// Mode changes use hysteresis so a single spike does not flap the system:
//   downgrade  -- cumulative violations >= downgrade_after, and at least
//                 min_dwell since the last switch;
//   upgrade    -- no violation observed for clean_window, and min_dwell.
// Every switch is recorded in the trace as a kModeDowngrade / kModeUpgrade
// fault event (magnitude = target era), so mode history is replayable and
// auditable like any other fault.
//
// The monitor is deliberately *not* a Process: it is the experimenter's
// oracle standing outside the system, like the chaos engine's adversaries.
// It schedules itself with Simulator::call_at -- which leaves no trace
// record -- and stops polling when the event queue drains, so a fault-free
// run with a monitor attached is byte-identical to one without.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/time.h"
#include "sim/simulator.h"

namespace linbound {

/// Implemented by replicas that can change mode.  Eras count switches:
/// even eras run the synchronous algorithm, odd eras the quorum backend;
/// `target_era` only ever grows.  Delivered synchronously from the
/// monitor's poll, outside any message or timer handler of the target.
class ModeSwitchTarget {
 public:
  virtual ~ModeSwitchTarget() = default;
  virtual void on_mode_signal(int target_era) = 0;
};

struct MonitorOptions {
  /// Trace-scan period; 0 means d.
  Tick poll_interval = 0;
  /// Cumulative envelope violations before a downgrade fires.
  int downgrade_after = 3;
  /// Violation-free observation time before an upgrade; 0 means 8d.  Must
  /// comfortably exceed the synchronous algorithm's holdback (u + eps) so
  /// stale pre-downgrade timers have all fired before a sync era restarts.
  Tick clean_window = 0;
  /// Minimum time between switches (anti-flap); 0 means 16d.
  Tick min_dwell = 0;
  /// Grace beyond d before an undelivered message counts as a violation;
  /// 0 means d.
  Tick late_slack = 0;

  bool valid() const {
    return poll_interval >= 0 && downgrade_after >= 1 && clean_window >= 0 &&
           min_dwell >= 0 && late_slack >= 0;
  }
};

class SynchronyMonitor {
 public:
  /// `sim` must outlive the monitor.  Envelope parameters are taken from
  /// sim.config().timing -- the model the run claims to satisfy.
  SynchronyMonitor(Simulator& sim, MonitorOptions options);

  /// Register `target` as the mode-switching replica behind `pid`; signals
  /// go out in pid order.  A target that is crashed when a switch fires is
  /// skipped -- it reads target_era() on recovery instead.
  void add_target(ProcessId pid, ModeSwitchTarget* target);

  /// Check static clock skew and schedule the first poll.  Call after every
  /// add_process / add_target, before Simulator::run.
  void arm();

  /// The era the system should be in (grows by one per recorded switch).
  int target_era() const { return target_era_; }

  // --- introspection (tests / harness) ---
  bool permanently_degraded() const { return permanent_; }
  std::int64_t violations() const { return violations_; }
  int downgrade_count() const { return downgrades_; }
  int upgrade_count() const { return upgrades_; }

  /// Observed-delay sample count for the directed link from -> to.
  std::size_t link_sample_count(ProcessId from, ProcessId to) const;

  /// Nearest-rank percentile (pct in (0, 100]) of observed delays on the
  /// directed link from -> to; kNoTime when the link has no samples.
  Tick link_delay_percentile(ProcessId from, ProcessId to, double pct) const;

 private:
  Tick poll_interval() const;
  Tick clean_window() const;
  Tick min_dwell() const;
  Tick late_slack() const;

  void poll();
  void scan_trace();
  /// Examine one delivered record: envelope check + delay sample.
  void observe_delivery(const MessageRecord& rec);
  void note_violation(Tick when);
  void signal(int era, FaultKind kind);

  Simulator& sim_;
  MonitorOptions options_;
  SystemTiming timing_;

  std::vector<std::pair<ProcessId, ModeSwitchTarget*>> targets_;
  bool armed_ = false;
  bool permanent_ = false;

  /// trace().messages[0..scanned_) have been examined.
  std::size_t scanned_ = 0;
  /// Indices of scanned-but-undelivered messages still within their grace
  /// period; each leaves the list by delivery or by one overdue violation.
  std::vector<std::size_t> watch_;

  std::int64_t violations_ = 0;
  /// violations_ as of the last upgrade: downgrade evidence counts only
  /// violations observed since the system was last declared synchronous,
  /// or one healed storm would re-trigger on its own stale count forever.
  std::int64_t violations_mark_ = 0;
  Tick last_violation_time_ = kNoTime;
  Tick last_switch_time_ = kNoTime;
  int target_era_ = 0;
  int downgrades_ = 0;
  int upgrades_ = 0;

  std::map<std::pair<ProcessId, ProcessId>, std::vector<Tick>> link_delays_;
};

}  // namespace linbound
