#include "fault/assumption_monitor.h"

#include <cstdlib>
#include <map>
#include <sstream>

namespace linbound {
namespace {

AssumptionViolation make(Assumption a, std::string detail, Tick time,
                         ProcessId proc, MessageId msg) {
  AssumptionViolation v;
  v.assumption = a;
  v.detail = std::move(detail);
  v.time = time;
  v.proc = proc;
  v.msg = msg;
  return v;
}

}  // namespace

const char* assumption_name(Assumption a) {
  switch (a) {
    case Assumption::kDelayBounds:
      return "delay-bounds";
    case Assumption::kReliableDelivery:
      return "reliable-delivery";
    case Assumption::kNoDuplication:
      return "no-duplication";
    case Assumption::kClockSkew:
      return "clock-skew";
    case Assumption::kFailureFree:
      return "failure-free";
    case Assumption::kNoStalls:
      return "no-stalls";
    case Assumption::kRecovering:
      return "recovering";
    case Assumption::kAssumptionCount:
      break;
  }
  return "?";
}

bool AssumptionReport::violated(Assumption a) const { return count(a) > 0; }

int AssumptionReport::count(Assumption a) const {
  int n = 0;
  for (const AssumptionViolation& v : violations) {
    if (v.assumption == a) ++n;
  }
  return n;
}

std::string AssumptionReport::summary() const {
  if (clean()) return "all model assumptions held";
  std::map<Assumption, int> counts;
  for (const AssumptionViolation& v : violations) ++counts[v.assumption];
  std::ostringstream os;
  bool first = true;
  for (const auto& [assumption, n] : counts) {
    if (!first) os << "; ";
    first = false;
    os << assumption_name(assumption) << " violated " << n << "x";
  }
  return os.str();
}

std::string AssumptionReport::attribute(bool linearizable) const {
  std::ostringstream os;
  if (linearizable) {
    if (clean()) {
      os << "linearizable, all model assumptions held";
    } else {
      os << "linearizable despite violated assumptions (" << summary()
         << ") -- the implementation masked them";
    }
    return os.str();
  }
  if (clean()) {
    os << "NOT linearizable although every model assumption held -- the "
          "implementation (or its deliberately eager delays) is at fault";
    return os.str();
  }
  os << "NOT linearizable, attributed to: " << summary();
  if (!violations.empty()) {
    os << " (first: " << violations.front().detail << ")";
  }
  return os.str();
}

AssumptionReport audit_assumptions(const Trace& trace) {
  AssumptionReport report;
  const SystemTiming& timing = trace.timing;

  // Recovery makes a crash "churn" rather than a permanent failure: a crash
  // of process p at tick t that p later recovers from is attributed to
  // kRecovering, a crash it never comes back from to kFailureFree.
  const auto recovers_after = [&trace](ProcessId pid, Tick t) {
    for (const FaultEvent& f : trace.faults) {
      if (f.kind == FaultKind::kProcessRecovered && f.proc == pid &&
          f.time >= t) {
        return true;
      }
    }
    return false;
  };

  // Injected faults and failures, straight from the recorder.
  for (const FaultEvent& f : trace.faults) {
    std::ostringstream os;
    switch (f.kind) {
      case FaultKind::kMessageDropped:
        os << "message " << f.msg << " from " << f.proc << " to " << f.peer
           << " sent at tick " << f.time << " dropped";
        report.violations.push_back(make(Assumption::kReliableDelivery,
                                         os.str(), f.time, f.proc, f.msg));
        break;
      case FaultKind::kMessageDuplicated:
        os << "message " << f.magnitude << " from " << f.proc << " to "
           << f.peer << " duplicated at tick " << f.time << " (copy id "
           << f.msg << ")";
        report.violations.push_back(make(Assumption::kNoDuplication, os.str(),
                                         f.time, f.proc, f.msg));
        break;
      case FaultKind::kDelaySpike:
        // The spike's effect on the observed delay is classified below from
        // the message record itself; only spikes that pushed the delivery
        // outside the bounds count as violations there.
        break;
      case FaultKind::kProcessStalled:
        os << "process " << f.proc << " stalled at tick " << f.time << " for "
           << f.magnitude << " ticks";
        report.violations.push_back(
            make(Assumption::kNoStalls, os.str(), f.time, f.proc, f.msg));
        break;
      case FaultKind::kProcessCrashed:
        os << "process " << f.proc << " crashed at tick " << f.time;
        if (recovers_after(f.proc, f.time)) {
          os << " (later recovered)";
          report.violations.push_back(
              make(Assumption::kRecovering, os.str(), f.time, f.proc, -1));
        } else {
          report.violations.push_back(
              make(Assumption::kFailureFree, os.str(), f.time, f.proc, -1));
        }
        break;
      case FaultKind::kProcessRecovered:
        os << "process " << f.proc << " recovered at tick " << f.time
           << " (incarnation " << f.magnitude << ")";
        report.violations.push_back(
            make(Assumption::kRecovering, os.str(), f.time, f.proc, -1));
        break;
      case FaultKind::kOperationGivenUp:
        // Degradation behavior, not an assumption: the cause (crash, loss)
        // is reported by its own event.
        break;
      case FaultKind::kModeDowngrade:
      case FaultKind::kModeUpgrade:
        // The synchrony supervisor's reaction to a violation, not a
        // violation itself; the triggering drops/spikes are attributed by
        // their own events above.
        break;
      case FaultKind::kFaultKindCount:
        break;
    }
  }

  // Delivered delays against [d-u, d]; spikes that stayed in bounds are not
  // violations, late deliveries are -- whatever caused them.
  for (const MessageRecord& m : trace.messages) {
    if (!m.delivered()) continue;
    if (timing.delay_admissible(m.delay())) continue;
    std::ostringstream os;
    os << "message " << m.id << " from " << m.from << " to " << m.to
       << " sent at tick " << m.send_time << ": delay " << m.delay()
       << " outside [" << timing.min_delay() << ", " << timing.max_delay()
       << "]";
    report.violations.push_back(
        make(Assumption::kDelayBounds, os.str(), m.send_time, m.from, m.id));
  }

  // Undelivered messages the recorder did not already explain: receipt
  // suppressed by a crash counts against failure-freedom; anything else
  // past the horizon is unexplained loss.
  for (const MessageRecord& m : trace.messages) {
    if (m.delivered()) continue;
    if (trace.end_time < m.send_time + timing.d) continue;  // run ended first
    bool explained = false;
    bool recipient_crashed = false;
    for (const FaultEvent& f : trace.faults) {
      if (f.kind == FaultKind::kMessageDropped && f.msg == m.id) {
        explained = true;
      }
      if (f.kind == FaultKind::kProcessCrashed && f.proc == m.to &&
          f.time <= m.send_time + timing.d) {
        recipient_crashed = true;
      }
    }
    if (explained) continue;
    std::ostringstream os;
    os << "message " << m.id << " from " << m.from << " to " << m.to
       << " sent at tick " << m.send_time << " never delivered";
    if (recipient_crashed) {
      // A recipient that was down on arrival but came back is churn, not a
      // permanent failure.
      const bool came_back = recovers_after(m.to, m.send_time);
      os << (came_back ? " (recipient was down, later recovered)"
                       : " (recipient crashed)");
      report.violations.push_back(
          make(came_back ? Assumption::kRecovering : Assumption::kFailureFree,
               os.str(), m.send_time, m.to, m.id));
    } else {
      report.violations.push_back(make(Assumption::kReliableDelivery, os.str(),
                                       m.send_time, m.from, m.id));
    }
  }

  // Static clock skew against eps.
  for (std::size_t i = 0; i < trace.clock_offsets.size(); ++i) {
    for (std::size_t j = i + 1; j < trace.clock_offsets.size(); ++j) {
      const Tick skew =
          std::llabs(trace.clock_offsets[i] - trace.clock_offsets[j]);
      if (skew <= timing.eps) continue;
      std::ostringstream os;
      os << "clock skew |c_" << i << " - c_" << j << "| = " << skew
         << " exceeds eps = " << timing.eps;
      report.violations.push_back(make(Assumption::kClockSkew, os.str(),
                                       kNoTime,
                                       static_cast<ProcessId>(i), -1));
    }
  }

  return report;
}

}  // namespace linbound
