// Assumption auditing: attribute a failed run to the model assumption that
// was violated.
//
// The paper's guarantees (Chapter V) rest on four model assumptions:
// delays in [d-u, d], exactly-once delivery, pairwise clock skew <= eps,
// and failure-free processes.  When an injected fault breaks a run, "the
// checker says no" is not an explanation -- this monitor reads the recorded
// trace (message delays, clock offsets, fault events) and classifies every
// breakage, so a non-linearizable outcome is reported as e.g. "message 17
// from 2 to 0 dropped" or "delay 1930 outside [600, 1000]" rather than a
// bare verdict.
#pragma once

#include <string>
#include <vector>

#include "sim/trace.h"

namespace linbound {

/// The model assumptions of Chapter III, plus the extra-model stall mode.
enum class Assumption {
  kDelayBounds,       ///< every message delay lies in [d-u, d]
  kReliableDelivery,  ///< every message is delivered (no loss)
  kNoDuplication,     ///< every message is delivered at most once
  kClockSkew,         ///< pairwise clock skew <= eps
  kFailureFree,       ///< no process crashes
  kNoStalls,          ///< every process keeps taking steps promptly
  kRecovering,        ///< crash-recovery churn (a crashed process came back)
  kAssumptionCount,   ///< sentinel for exhaustiveness tests; not an assumption
};

const char* assumption_name(Assumption a);

struct AssumptionViolation {
  Assumption assumption{};
  /// Human-readable account naming the concrete evidence (message id,
  /// endpoints, ticks, magnitudes).
  std::string detail;
  Tick time = kNoTime;          ///< when it happened; kNoTime if static (skew)
  ProcessId proc = kNoProcess;  ///< primary process involved
  MessageId msg = -1;           ///< offending message; -1 when none
};

struct AssumptionReport {
  std::vector<AssumptionViolation> violations;

  /// True when the run stayed inside the paper's model.
  bool clean() const { return violations.empty(); }

  bool violated(Assumption a) const;
  int count(Assumption a) const;

  /// One line per violated assumption with counts, e.g.
  ///   "reliable-delivery violated 3x; delay-bounds violated 1x".
  std::string summary() const;

  /// The attribution sentence for a run whose linearizability verdict is
  /// `linearizable`: names the violated assumptions, or -- when the model
  /// held -- points at the implementation itself.
  std::string attribute(bool linearizable) const;
};

/// Classify every model-assumption breakage visible in the trace.  Sources:
/// recorded fault events (drops, duplicates, spikes, stalls, crashes),
/// delivered delays against [d-u, d], undelivered messages against the run
/// horizon, and clock offsets against eps.
AssumptionReport audit_assumptions(const Trace& trace);

}  // namespace linbound
