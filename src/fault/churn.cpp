#include "fault/churn.h"

#include <algorithm>
#include <sstream>

#include "fault/fault_policy.h"
#include "sim/simulator.h"

namespace linbound {
namespace {

/// Uniform draw in [mean/2, 3*mean/2], never below 1.
Tick draw_duration(Rng& rng, Tick mean) {
  const Tick lo = std::max<Tick>(1, mean / 2);
  const Tick hi = std::max<Tick>(lo, mean + mean / 2);
  return rng.uniform_tick(lo, hi);
}

}  // namespace

ChurnSchedule::ChurnSchedule(std::vector<ChurnWindow> windows)
    : windows_(std::move(windows)) {
  std::sort(windows_.begin(), windows_.end(),
            [](const ChurnWindow& a, const ChurnWindow& b) {
              return a.crash_time != b.crash_time ? a.crash_time < b.crash_time
                                                  : a.pid < b.pid;
            });
}

ChurnSchedule ChurnSchedule::generate(const ChurnConfig& config, int n,
                                      std::uint64_t seed) {
  if (!config.any() || n <= 0) return ChurnSchedule{};
  const SplitRng base(seed);
  std::vector<ChurnWindow> candidates;
  for (ProcessId pid = 0; pid < n; ++pid) {
    // A stream per process: adding or removing a process leaves the others'
    // windows untouched.  Stream-id offset keeps these disjoint from any
    // future whole-schedule streams of the same family.
    Rng rng = base.stream(static_cast<std::uint64_t>(pid) + 10);
    Tick t = config.start + draw_duration(rng, config.mean_uptime);
    while (t < config.horizon) {
      const Tick down = draw_duration(rng, config.mean_downtime);
      candidates.push_back({pid, t, t + down});
      t += down + draw_duration(rng, config.mean_uptime);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const ChurnWindow& a, const ChurnWindow& b) {
              return a.crash_time != b.crash_time ? a.crash_time < b.crash_time
                                                  : a.pid < b.pid;
            });
  // Greedy admission in crash-time order: a window that would push the
  // number of simultaneously-down processes above max_down is dropped (the
  // process simply stays up through it).  Deterministic, and with
  // max_down=1 it guarantees every rejoiner finds live peers.
  const int cap = std::max(1, config.max_down);
  std::vector<ChurnWindow> accepted;
  for (const ChurnWindow& w : candidates) {
    int overlapping = 0;
    for (const ChurnWindow& a : accepted) {
      if (a.recover_time > w.crash_time && a.crash_time < w.recover_time) {
        ++overlapping;
      }
    }
    if (overlapping < cap) accepted.push_back(w);
  }
  return ChurnSchedule{std::move(accepted)};
}

bool ChurnSchedule::down_at(ProcessId pid, Tick t) const {
  for (const ChurnWindow& w : windows_) {
    if (w.pid == pid && w.covers(t)) return true;
  }
  return false;
}

std::vector<ProcessId> ChurnSchedule::churners() const {
  std::vector<ProcessId> out;
  for (const ChurnWindow& w : windows_) {
    if (std::find(out.begin(), out.end(), w.pid) == out.end()) {
      out.push_back(w.pid);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void ChurnSchedule::apply(Simulator& sim) const {
  for (const ChurnWindow& w : windows_) {
    sim.crash_at(w.crash_time, w.pid);
    if (w.recover_time != kNoTime) sim.recover_at(w.recover_time, w.pid);
  }
}

std::string ChurnSchedule::to_string() const {
  std::ostringstream os;
  for (const ChurnWindow& w : windows_) {
    os << "p" << w.pid << " down [" << w.crash_time << ", ";
    if (w.recover_time == kNoTime) {
      os << "forever)";
    } else {
      os << w.recover_time << ")";
    }
    os << "\n";
  }
  return os.str();
}

ChurnSchedule make_churn_schedule(const FaultConfig& config, int n) {
  config.validate();
  // Salt 4: splits 1-3 feed drop/dup/spike and 5 feeds per-link faults in
  // make_fault_policy; churn gets its own stream so enabling it never
  // reshuffles message faults.
  const std::uint64_t churn_seed = Rng(config.seed).split(4).next_u64();
  return ChurnSchedule::generate(config.churn, n, churn_seed);
}

}  // namespace linbound
