// Churn: seeded, deterministic crash/recover schedules.
//
// The fault policies of fault_policy.h break message-layer assumptions; a
// ChurnSchedule breaks the process-layer one -- failure-freedom -- in the
// *recoverable* direction Mostefaoui & Raynal study: processes crash, stay
// down for a while, and come back with empty volatile state, having to
// catch up (core/recoverable_replica.h) without disturbing the survivors'
// latency bounds.  Generation is a pure function of (config, n, seed): the
// same inputs produce the same windows, so a churned run is exactly as
// reproducible as a clean one.  A zero config produces no windows and
// leaves the run byte-identical to today's traces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/time.h"

namespace linbound {

class Simulator;

/// One crash/recover interval: `pid` is down during [crash_time,
/// recover_time).  recover_time == kNoTime means the process never comes
/// back (a plain crash).
struct ChurnWindow {
  ProcessId pid = kNoProcess;
  Tick crash_time = kNoTime;
  Tick recover_time = kNoTime;

  bool covers(Tick t) const {
    return t >= crash_time && (recover_time == kNoTime || t < recover_time);
  }
};

/// Knobs of the generator.  Durations are drawn uniformly from
/// [mean/2, 3*mean/2] (inclusive), per process, from independent split
/// streams -- adding a process does not reshuffle the others' schedules.
struct ChurnConfig {
  /// Mean uptime between recoveries and the next crash; 0 disables churn.
  Tick mean_uptime = 0;
  /// Mean downtime per crash; 0 disables churn.
  Tick mean_downtime = 0;
  /// No crash before this real time (let the system warm up).
  Tick start = 0;
  /// No crash at or after this real time (let the run drain).
  Tick horizon = 0;
  /// Cap on simultaneously-crashed processes.  Candidate windows that would
  /// exceed it are discarded (deterministically, in crash-time order); with
  /// the default 1 the rejoin protocol always finds a live peer holding the
  /// full executed prefix.
  int max_down = 1;

  bool any() const {
    return mean_uptime > 0 && mean_downtime > 0 && horizon > start;
  }
};

/// A generated schedule: windows sorted by (crash_time, pid).
class ChurnSchedule {
 public:
  ChurnSchedule() = default;
  explicit ChurnSchedule(std::vector<ChurnWindow> windows);

  /// Generate the schedule for `n` processes.  Deterministic from
  /// (config, n, seed).
  static ChurnSchedule generate(const ChurnConfig& config, int n,
                                std::uint64_t seed);

  const std::vector<ChurnWindow>& windows() const { return windows_; }
  bool empty() const { return windows_.empty(); }

  /// Is `pid` scheduled to be down at real time `t`?
  bool down_at(ProcessId pid, Tick t) const;

  /// Processes with at least one window (the "churners"; everyone else is a
  /// survivor for the whole run).
  std::vector<ProcessId> churners() const;

  /// Arm every window on the simulator (crash_at + recover_at).  Call
  /// before Simulator::run.
  void apply(Simulator& sim) const;

  std::string to_string() const;

 private:
  std::vector<ChurnWindow> windows_;
};

struct FaultConfig;  // fault_policy.h

/// Schedule for a FaultConfig with churn enabled: the churn stream is split
/// from config.seed with its own salt, disjoint from the drop/dup/spike
/// streams of make_fault_policy, so enabling churn does not reshuffle which
/// messages the other ingredients hit.
ChurnSchedule make_churn_schedule(const FaultConfig& config, int n);

}  // namespace linbound
