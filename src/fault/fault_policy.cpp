#include "fault/fault_policy.h"

namespace linbound {

void check_probability(double p, const char* what) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument(std::string(what) +
                                " must lie in [0, 1], got " +
                                std::to_string(p));
  }
}

void check_non_negative(Tick t, const char* what) {
  if (t < 0) {
    throw std::invalid_argument(std::string(what) + " must be >= 0, got " +
                                std::to_string(t));
  }
}

void StallWindow::validate() const {
  if (pid < 0) {
    throw std::invalid_argument("StallWindow pid must name a process, got " +
                                std::to_string(pid));
  }
  check_non_negative(from, "StallWindow from");
  if (until < from) {
    throw std::invalid_argument(
        "StallWindow is inverted: until " + std::to_string(until) +
        " precedes from " + std::to_string(from));
  }
}

void PartitionWindow::validate() const {
  check_non_negative(from, "PartitionWindow from");
  if (until < from) {
    throw std::invalid_argument(
        "PartitionWindow is inverted: until " + std::to_string(until) +
        " precedes from " + std::to_string(from));
  }
  for (std::size_t i = 0; i < component_of.size(); ++i) {
    if (component_of[i] < 0) {
      throw std::invalid_argument(
          "PartitionWindow component of process " + std::to_string(i) +
          " must be >= 0, got " + std::to_string(component_of[i]));
    }
  }
}

void LinkFault::validate() const {
  if (from < 0 || to < 0) {
    throw std::invalid_argument(
        "LinkFault endpoints must name processes, got " +
        std::to_string(from) + " -> " + std::to_string(to));
  }
  check_probability(drop_p, "LinkFault drop probability");
  check_probability(delay_p, "LinkFault delay probability");
  check_non_negative(delay_max, "LinkFault delay bound");
  if (delay_p > 0 && delay_max == 0) {
    throw std::invalid_argument(
        "LinkFault delay probability is positive but delay bound is 0");
  }
}

LinkFaultPolicy::LinkFaultPolicy(std::vector<LinkFault> links,
                                 std::uint64_t seed)
    : links_(std::move(links)) {
  Rng seeder(seed);
  rngs_.reserve(links_.size());
  for (const LinkFault& link : links_) {
    link.validate();
    // Salt by the directed pair: editing one link's parameters never
    // reshuffles another link's stream.
    const std::uint64_t salt =
        (static_cast<std::uint64_t>(link.from) + 1) * 0x1f3ull +
        (static_cast<std::uint64_t>(link.to) + 1);
    rngs_.push_back(seeder.split(salt));
  }
}

FaultDecision LinkFaultPolicy::on_send(ProcessId from, ProcessId to, Tick,
                                       std::int64_t) {
  FaultDecision out;
  for (std::size_t i = 0; i < links_.size(); ++i) {
    const LinkFault& link = links_[i];
    if (link.from != from || link.to != to) continue;
    // One draw per configured matching link per send, unconditionally, so
    // the stream's position depends only on how many matching sends came
    // before (reproducible from the seed).
    if (link.drop_p > 0 && rngs_[i].chance(link.drop_p)) out.drop = true;
    if (link.delay_p > 0 && link.delay_max > 0 &&
        rngs_[i].chance(link.delay_p)) {
      out.delay_boost += rngs_[i].uniform_tick(1, link.delay_max);
    }
  }
  return out;
}

void FaultConfig::validate() const {
  check_probability(drop_p, "FaultConfig drop_p");
  check_probability(dup_p, "FaultConfig dup_p");
  check_probability(spike_p, "FaultConfig spike_p");
  check_non_negative(spike_max, "FaultConfig spike_max");
  if (dup_copies < 0) {
    throw std::invalid_argument("FaultConfig dup_copies must be >= 0, got " +
                                std::to_string(dup_copies));
  }
  for (const StallWindow& w : stalls) w.validate();
  for (const PartitionWindow& w : partitions) w.validate();
  for (const LinkFault& link : links) link.validate();
  check_non_negative(churn.mean_uptime, "ChurnConfig mean_uptime");
  check_non_negative(churn.mean_downtime, "ChurnConfig mean_downtime");
  check_non_negative(churn.start, "ChurnConfig start");
  check_non_negative(churn.horizon, "ChurnConfig horizon");
  if (churn.max_down < 1) {
    throw std::invalid_argument("ChurnConfig max_down must be >= 1, got " +
                                std::to_string(churn.max_down));
  }
}

FaultDecision ComposedFaultPolicy::on_send(ProcessId from, ProcessId to,
                                           Tick send_time,
                                           std::int64_t msg_seq) {
  FaultDecision out;
  for (const auto& child : children_) {
    const FaultDecision d = child->on_send(from, to, send_time, msg_seq);
    out.drop = out.drop || d.drop;
    out.extra_copies += d.extra_copies;
    out.delay_boost += d.delay_boost;
  }
  return out;
}

Tick ComposedFaultPolicy::stalled_until(ProcessId pid, Tick now) {
  Tick until = kNoTime;
  for (const auto& child : children_) {
    const Tick t = child->stalled_until(pid, now);
    if (t != kNoTime && (until == kNoTime || t > until)) until = t;
  }
  return until;
}

std::shared_ptr<FaultPolicy> make_fault_policy(const FaultConfig& config) {
  config.validate();
  Rng seeder(config.seed);
  std::vector<std::shared_ptr<FaultPolicy>> children;
  // Split unconditionally so each ingredient's stream depends only on the
  // seed, not on which other ingredients are enabled.
  const std::uint64_t drop_seed = seeder.split(1).next_u64();
  const std::uint64_t dup_seed = seeder.split(2).next_u64();
  const std::uint64_t spike_seed = seeder.split(3).next_u64();
  // Salt 4 is churn's (make_churn_schedule); links take the next stream.
  const std::uint64_t link_seed = seeder.split(5).next_u64();
  if (config.drop_p > 0) {
    children.push_back(
        std::make_shared<DropFaultPolicy>(config.drop_p, drop_seed));
  }
  if (config.dup_p > 0) {
    children.push_back(std::make_shared<DuplicateFaultPolicy>(
        config.dup_p, dup_seed, config.dup_copies));
  }
  if (config.spike_p > 0 && config.spike_max > 0) {
    children.push_back(std::make_shared<DelaySpikeFaultPolicy>(
        config.spike_p, config.spike_max, spike_seed));
  }
  if (!config.stalls.empty()) {
    children.push_back(std::make_shared<StallFaultPolicy>(config.stalls));
  }
  if (!config.partitions.empty()) {
    children.push_back(
        std::make_shared<PartitionFaultPolicy>(config.partitions));
  }
  if (!config.links.empty()) {
    children.push_back(
        std::make_shared<LinkFaultPolicy>(config.links, link_seed));
  }
  return std::make_shared<ComposedFaultPolicy>(std::move(children));
}

}  // namespace linbound
