#include "fault/fault_policy.h"

namespace linbound {

FaultDecision ComposedFaultPolicy::on_send(ProcessId from, ProcessId to,
                                           Tick send_time,
                                           std::int64_t msg_seq) {
  FaultDecision out;
  for (const auto& child : children_) {
    const FaultDecision d = child->on_send(from, to, send_time, msg_seq);
    out.drop = out.drop || d.drop;
    out.extra_copies += d.extra_copies;
    out.delay_boost += d.delay_boost;
  }
  return out;
}

Tick ComposedFaultPolicy::stalled_until(ProcessId pid, Tick now) {
  Tick until = kNoTime;
  for (const auto& child : children_) {
    const Tick t = child->stalled_until(pid, now);
    if (t != kNoTime && (until == kNoTime || t > until)) until = t;
  }
  return until;
}

std::shared_ptr<FaultPolicy> make_fault_policy(const FaultConfig& config) {
  Rng seeder(config.seed);
  std::vector<std::shared_ptr<FaultPolicy>> children;
  // Split unconditionally so each ingredient's stream depends only on the
  // seed, not on which other ingredients are enabled.
  const std::uint64_t drop_seed = seeder.split(1).next_u64();
  const std::uint64_t dup_seed = seeder.split(2).next_u64();
  const std::uint64_t spike_seed = seeder.split(3).next_u64();
  if (config.drop_p > 0) {
    children.push_back(
        std::make_shared<DropFaultPolicy>(config.drop_p, drop_seed));
  }
  if (config.dup_p > 0) {
    children.push_back(std::make_shared<DuplicateFaultPolicy>(
        config.dup_p, dup_seed, config.dup_copies));
  }
  if (config.spike_p > 0 && config.spike_max > 0) {
    children.push_back(std::make_shared<DelaySpikeFaultPolicy>(
        config.spike_p, config.spike_max, spike_seed));
  }
  if (!config.stalls.empty()) {
    children.push_back(std::make_shared<StallFaultPolicy>(config.stalls));
  }
  return std::make_shared<ComposedFaultPolicy>(std::move(children));
}

}  // namespace linbound
