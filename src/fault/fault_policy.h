// Concrete fault policies: the adversaries beyond the paper's model.
//
// Each policy is deterministic from its seed (one RNG draw sequence,
// consumed in the simulator's deterministic send order), so a faulty run is
// exactly as reproducible as a clean one: identical configuration + seed
// implies an identical trace, fault events included.  Compose policies with
// ComposedFaultPolicy or build the usual drop/dup/spike/stall mix in one
// step from a FaultConfig.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "fault/churn.h"
#include "sim/fault_injection.h"

namespace linbound {

/// Bernoulli message loss: each send is dropped with probability `p`.
class DropFaultPolicy final : public FaultPolicy {
 public:
  DropFaultPolicy(double p, std::uint64_t seed) : p_(p), rng_(seed) {}

  FaultDecision on_send(ProcessId, ProcessId, Tick, std::int64_t) override {
    FaultDecision out;
    out.drop = rng_.chance(p_);
    return out;
  }

 private:
  double p_;
  Rng rng_;
};

/// Bernoulli duplication: each send spawns `copies` extra deliveries with
/// probability `p`.
class DuplicateFaultPolicy final : public FaultPolicy {
 public:
  DuplicateFaultPolicy(double p, std::uint64_t seed, int copies = 1)
      : p_(p), copies_(copies), rng_(seed) {}

  FaultDecision on_send(ProcessId, ProcessId, Tick, std::int64_t) override {
    FaultDecision out;
    if (rng_.chance(p_)) out.extra_copies = copies_;
    return out;
  }

 private:
  double p_;
  int copies_;
  Rng rng_;
};

/// Bernoulli delay spikes: with probability `p` a send takes an extra
/// uniform boost in [1, max_boost] on top of the DelayPolicy's delay --
/// typically pushing it beyond the model's upper bound d.
class DelaySpikeFaultPolicy final : public FaultPolicy {
 public:
  DelaySpikeFaultPolicy(double p, Tick max_boost, std::uint64_t seed)
      : p_(p), max_boost_(max_boost), rng_(seed) {}

  FaultDecision on_send(ProcessId, ProcessId, Tick, std::int64_t) override {
    FaultDecision out;
    if (max_boost_ > 0 && rng_.chance(p_)) {
      out.delay_boost = rng_.uniform_tick(1, max_boost_);
    }
    return out;
  }

 private:
  double p_;
  Tick max_boost_;
  Rng rng_;
};

/// A scripted process stall: while real time is in [from, until) the process
/// takes no steps; its deliveries, timers and invocations are deferred to
/// `until` (a GC pause / scheduler preemption, not a crash).
struct StallWindow {
  ProcessId pid = kNoProcess;
  Tick from = 0;
  Tick until = 0;

  bool covers(ProcessId p, Tick t) const {
    return p == pid && t >= from && t < until;
  }
};

/// Deterministic stall schedule built from explicit windows.
class StallFaultPolicy final : public FaultPolicy {
 public:
  explicit StallFaultPolicy(std::vector<StallWindow> windows)
      : windows_(std::move(windows)) {}

  FaultDecision on_send(ProcessId, ProcessId, Tick, std::int64_t) override {
    return {};
  }

  Tick stalled_until(ProcessId pid, Tick now) override {
    Tick until = kNoTime;
    for (const StallWindow& w : windows_) {
      if (w.covers(pid, now) && (until == kNoTime || w.until > until)) {
        until = w.until;
      }
    }
    return until;
  }

 private:
  std::vector<StallWindow> windows_;
};

/// Applies every child policy to each send: drops are OR-ed, extra copies
/// and delay boosts summed, stall windows merged (latest end wins).
class ComposedFaultPolicy final : public FaultPolicy {
 public:
  explicit ComposedFaultPolicy(
      std::vector<std::shared_ptr<FaultPolicy>> children)
      : children_(std::move(children)) {}

  FaultDecision on_send(ProcessId from, ProcessId to, Tick send_time,
                        std::int64_t msg_seq) override;
  Tick stalled_until(ProcessId pid, Tick now) override;

 private:
  std::vector<std::shared_ptr<FaultPolicy>> children_;
};

/// The usual mix in one struct, for sweeps and tests.  All probabilities
/// default to zero; a zero config still builds a (vacuous) policy whose
/// runs are identical to no policy at all.
struct FaultConfig {
  double drop_p = 0.0;
  double dup_p = 0.0;
  int dup_copies = 1;
  double spike_p = 0.0;
  Tick spike_max = 0;
  std::vector<StallWindow> stalls;
  /// Crash/recover schedule parameters (fault/churn.h).  Not part of any():
  /// churn is a process-layer fault, materialized separately via
  /// make_churn_schedule and ChurnSchedule::apply, not by make_fault_policy.
  ChurnConfig churn;
  std::uint64_t seed = 0;

  bool any() const {
    return drop_p > 0 || dup_p > 0 || (spike_p > 0 && spike_max > 0) ||
           !stalls.empty();
  }
};

/// Build the composed policy for a config.  Each ingredient gets an
/// independent RNG stream split from `config.seed`, so e.g. raising drop_p
/// does not reshuffle which messages get duplicated.
std::shared_ptr<FaultPolicy> make_fault_policy(const FaultConfig& config);

}  // namespace linbound
