// Concrete fault policies: the adversaries beyond the paper's model.
//
// Each policy is deterministic from its seed (one RNG draw sequence,
// consumed in the simulator's deterministic send order), so a faulty run is
// exactly as reproducible as a clean one: identical configuration + seed
// implies an identical trace, fault events included.  Compose policies with
// ComposedFaultPolicy or build the usual drop/dup/spike/stall mix in one
// step from a FaultConfig.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "fault/churn.h"
#include "sim/fault_injection.h"

namespace linbound {

/// Throw std::invalid_argument unless `p` is a probability in [0, 1].
/// `what` names the offending parameter in the message.  Every policy
/// constructor and FaultConfig::validate() funnel through this, so a typo'd
/// 1.5 or a negated probability fails loudly at construction instead of
/// silently always (or never) firing.
void check_probability(double p, const char* what);

/// Throw std::invalid_argument unless `t >= 0`; `what` names the parameter.
void check_non_negative(Tick t, const char* what);

/// Bernoulli message loss: each send is dropped with probability `p`.
class DropFaultPolicy final : public FaultPolicy {
 public:
  DropFaultPolicy(double p, std::uint64_t seed) : p_(p), rng_(seed) {
    check_probability(p, "DropFaultPolicy drop probability");
  }

  FaultDecision on_send(ProcessId, ProcessId, Tick, std::int64_t) override {
    FaultDecision out;
    out.drop = rng_.chance(p_);
    return out;
  }

 private:
  double p_;
  Rng rng_;
};

/// Bernoulli duplication: each send spawns `copies` extra deliveries with
/// probability `p`.
class DuplicateFaultPolicy final : public FaultPolicy {
 public:
  DuplicateFaultPolicy(double p, std::uint64_t seed, int copies = 1)
      : p_(p), copies_(copies), rng_(seed) {
    check_probability(p, "DuplicateFaultPolicy duplication probability");
    if (copies < 0) {
      throw std::invalid_argument(
          "DuplicateFaultPolicy copies must be >= 0, got " +
          std::to_string(copies));
    }
  }

  FaultDecision on_send(ProcessId, ProcessId, Tick, std::int64_t) override {
    FaultDecision out;
    if (rng_.chance(p_)) out.extra_copies = copies_;
    return out;
  }

 private:
  double p_;
  int copies_;
  Rng rng_;
};

/// Bernoulli delay spikes: with probability `p` a send takes an extra
/// uniform boost in [1, max_boost] on top of the DelayPolicy's delay --
/// typically pushing it beyond the model's upper bound d.
class DelaySpikeFaultPolicy final : public FaultPolicy {
 public:
  DelaySpikeFaultPolicy(double p, Tick max_boost, std::uint64_t seed)
      : p_(p), max_boost_(max_boost), rng_(seed) {
    check_probability(p, "DelaySpikeFaultPolicy spike probability");
    check_non_negative(max_boost, "DelaySpikeFaultPolicy max boost");
  }

  FaultDecision on_send(ProcessId, ProcessId, Tick, std::int64_t) override {
    FaultDecision out;
    if (max_boost_ > 0 && rng_.chance(p_)) {
      out.delay_boost = rng_.uniform_tick(1, max_boost_);
    }
    return out;
  }

 private:
  double p_;
  Tick max_boost_;
  Rng rng_;
};

/// A scripted process stall: while real time is in [from, until) the process
/// takes no steps; its deliveries, timers and invocations are deferred to
/// `until` (a GC pause / scheduler preemption, not a crash).
struct StallWindow {
  ProcessId pid = kNoProcess;
  Tick from = 0;
  Tick until = 0;

  bool covers(ProcessId p, Tick t) const {
    return p == pid && t >= from && t < until;
  }

  /// Throws std::invalid_argument on a negative or inverted window or an
  /// unset process id.
  void validate() const;
};

/// Deterministic stall schedule built from explicit windows.
class StallFaultPolicy final : public FaultPolicy {
 public:
  explicit StallFaultPolicy(std::vector<StallWindow> windows)
      : windows_(std::move(windows)) {
    for (const StallWindow& w : windows_) w.validate();
  }

  FaultDecision on_send(ProcessId, ProcessId, Tick, std::int64_t) override {
    return {};
  }

  Tick stalled_until(ProcessId pid, Tick now) override {
    Tick until = kNoTime;
    for (const StallWindow& w : windows_) {
      if (w.covers(pid, now) && (until == kNoTime || w.until > until)) {
        until = w.until;
      }
    }
    return until;
  }

 private:
  std::vector<StallWindow> windows_;
};

/// A network partition: while real time is in [from, until) the replica
/// group is split into components, and every message crossing a component
/// boundary is dropped (the simulator records the usual kMessageDropped
/// fault event).  At `until` the partition heals implicitly -- nothing that
/// was eaten comes back, but new sends (and retransmissions) flow again.
/// `component_of[pid]` names pid's side; processes beyond the vector's end
/// sit in component 0, so a vector like {0, 1, 1} splits {p0} from
/// {p1, p2} and leaves any higher-numbered process with p0.
struct PartitionWindow {
  Tick from = 0;
  Tick until = 0;
  std::vector<int> component_of;

  bool covers(Tick t) const { return t >= from && t < until; }

  int component(ProcessId pid) const {
    const auto idx = static_cast<std::size_t>(pid);
    return idx < component_of.size() ? component_of[idx] : 0;
  }

  /// Does this window cut the directed link a -> b at time `t`?
  bool separates(ProcessId a, ProcessId b, Tick t) const {
    return covers(t) && component(a) != component(b);
  }

  /// Throws std::invalid_argument on a negative/inverted window or a
  /// negative component id.
  void validate() const;
};

/// Scripted partition schedule: drop every send that crosses an active
/// window's component boundary.  Purely deterministic (no RNG): the windows
/// are the whole adversary, which is what makes partitions shrink-friendly
/// for the chaos engine (src/chaos).
class PartitionFaultPolicy final : public FaultPolicy {
 public:
  explicit PartitionFaultPolicy(std::vector<PartitionWindow> windows)
      : windows_(std::move(windows)) {
    for (const PartitionWindow& w : windows_) w.validate();
  }

  FaultDecision on_send(ProcessId from, ProcessId to, Tick send_time,
                        std::int64_t) override {
    FaultDecision out;
    for (const PartitionWindow& w : windows_) {
      if (w.separates(from, to, send_time)) {
        out.drop = true;
        break;
      }
    }
    return out;
  }

 private:
  std::vector<PartitionWindow> windows_;
};

/// Asymmetric per-link adversary: Bernoulli loss and delay jitter applied
/// only to the directed link `from -> to` (the reverse direction is
/// untouched unless configured separately).  A link listed twice compounds.
struct LinkFault {
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  double drop_p = 0.0;
  double delay_p = 0.0;
  Tick delay_max = 0;  ///< boosts are uniform in [1, delay_max]

  /// Throws std::invalid_argument on unset endpoints, probabilities outside
  /// [0, 1] or a negative delay bound.
  void validate() const;
};

/// Per-link drop/delay streams.  Each configured entry draws from its own
/// split stream salted by the directed pair, so editing one link's
/// parameters never reshuffles another link's draws.
class LinkFaultPolicy final : public FaultPolicy {
 public:
  LinkFaultPolicy(std::vector<LinkFault> links, std::uint64_t seed);

  FaultDecision on_send(ProcessId from, ProcessId to, Tick send_time,
                        std::int64_t msg_seq) override;

 private:
  std::vector<LinkFault> links_;
  std::vector<Rng> rngs_;  ///< parallel to links_
};

/// Applies every child policy to each send: drops are OR-ed, extra copies
/// and delay boosts summed, stall windows merged (latest end wins).
class ComposedFaultPolicy final : public FaultPolicy {
 public:
  explicit ComposedFaultPolicy(
      std::vector<std::shared_ptr<FaultPolicy>> children)
      : children_(std::move(children)) {}

  FaultDecision on_send(ProcessId from, ProcessId to, Tick send_time,
                        std::int64_t msg_seq) override;
  Tick stalled_until(ProcessId pid, Tick now) override;

 private:
  std::vector<std::shared_ptr<FaultPolicy>> children_;
};

/// The usual mix in one struct, for sweeps and tests.  All probabilities
/// default to zero; a zero config still builds a (vacuous) policy whose
/// runs are identical to no policy at all.
struct FaultConfig {
  double drop_p = 0.0;
  double dup_p = 0.0;
  int dup_copies = 1;
  double spike_p = 0.0;
  Tick spike_max = 0;
  std::vector<StallWindow> stalls;
  /// Scripted partition windows (components split, then heal).
  std::vector<PartitionWindow> partitions;
  /// Asymmetric per-link drop/delay adversaries.
  std::vector<LinkFault> links;
  /// Crash/recover schedule parameters (fault/churn.h).  Not part of any():
  /// churn is a process-layer fault, materialized separately via
  /// make_churn_schedule and ChurnSchedule::apply, not by make_fault_policy.
  ChurnConfig churn;
  std::uint64_t seed = 0;

  bool any() const {
    return drop_p > 0 || dup_p > 0 || (spike_p > 0 && spike_max > 0) ||
           !stalls.empty() || !partitions.empty() || !links.empty();
  }

  /// Reject out-of-range parameters with messages naming the field:
  /// probabilities outside [0, 1], negative boosts/copies, inverted stall or
  /// partition windows, negative churn durations.  make_fault_policy and
  /// make_churn_schedule call this; call it directly to fail fast on
  /// hand-built configs.
  void validate() const;
};

/// Build the composed policy for a config.  Each ingredient gets an
/// independent RNG stream split from `config.seed`, so e.g. raising drop_p
/// does not reshuffle which messages get duplicated.  Validates the config
/// (std::invalid_argument on out-of-range parameters).
std::shared_ptr<FaultPolicy> make_fault_policy(const FaultConfig& config);

}  // namespace linbound
