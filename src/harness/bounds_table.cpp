#include "harness/bounds_table.h"

#include <sstream>

namespace linbound {

BoundsTable::BoundsTable(std::string title, SystemTiming timing, int n, Tick x)
    : title_(std::move(title)), timing_(timing), n_(n), x_(x) {}

void BoundsTable::add_row(BoundsRow row) { rows_.push_back(std::move(row)); }

std::string BoundsTable::render() const {
  std::ostringstream os;
  os << "== " << title_ << " ==  (n=" << n_ << " d=" << timing_.d
     << "us u=" << timing_.u << "us eps=" << timing_.eps << "us X=" << x_
     << "us)\n";
  TextTable table({"operation", "previous LB", "new LB (paper)", "UB (paper)",
                   "measured worst"});
  auto cell = [](const std::string& formula, Tick value) {
    if (formula.empty()) return std::string("-");
    if (value == kNoTime) return formula;
    return formula + " = " + format_ticks(value);
  };
  for (const BoundsRow& row : rows_) {
    table.add_row({row.operation, cell(row.previous_lb_formula, row.previous_lb),
                   cell(row.new_lb_formula, row.new_lb),
                   cell(row.ub_formula, row.ub), format_ticks(row.measured_worst)});
  }
  os << table.render();
  return os.str();
}

bool BoundsTable::consistent() const {
  for (const BoundsRow& row : rows_) {
    if (row.measured_worst == kNoTime) continue;
    if (row.new_lb != kNoTime && row.measured_worst < row.new_lb) return false;
    if (row.ub != kNoTime && row.measured_worst > row.ub) return false;
  }
  return true;
}

Tick eval_d_plus_m(const SystemTiming& timing) { return timing.d + timing.m(); }

Tick eval_one_minus_inv_n_u(const SystemTiming& timing, int n) {
  return timing.u - timing.u / n;
}

Tick eval_d_plus_eps(const SystemTiming& timing) { return timing.d + timing.eps; }

Tick eval_d_plus_2eps(const SystemTiming& timing) {
  return timing.d + 2 * timing.eps;
}

}  // namespace linbound
