// Rendering of the paper's Tables I-IV: each row carries the previous lower
// bound, the thesis's new lower bound, its upper bound (all as formulas AND
// evaluated ticks for the configured system), and the measured worst-case
// latency from the sweep.
#pragma once

#include <string>
#include <vector>

#include "common/format.h"
#include "common/time.h"

namespace linbound {

struct BoundsRow {
  std::string operation;
  std::string previous_lb_formula;
  Tick previous_lb = kNoTime;
  std::string new_lb_formula;
  Tick new_lb = kNoTime;
  std::string ub_formula;
  Tick ub = kNoTime;
  Tick measured_worst = kNoTime;
};

class BoundsTable {
 public:
  BoundsTable(std::string title, SystemTiming timing, int n, Tick x);

  void add_row(BoundsRow row);

  /// Render the table plus a parameter header, e.g.
  ///   == Table I: register ==  (n=4 d=1000us u=400us eps=100us X=0us)
  std::string render() const;

  /// True iff every measured value respects its bounds:
  /// new_lb <= measured <= ub (rows without a bound are skipped).
  bool consistent() const;

 private:
  std::string title_;
  SystemTiming timing_;
  int n_;
  Tick x_;
  std::vector<BoundsRow> rows_;
};

/// Formula evaluation helpers shared by the bench binaries.
Tick eval_d_plus_m(const SystemTiming& timing);            // d + min{eps,u,d/3}
Tick eval_one_minus_inv_n_u(const SystemTiming& timing, int n);  // (1-1/n)u
Tick eval_d_plus_eps(const SystemTiming& timing);          // d + eps
Tick eval_d_plus_2eps(const SystemTiming& timing);         // d + 2eps

}  // namespace linbound
