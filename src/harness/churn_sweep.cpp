#include "harness/churn_sweep.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "core/driver.h"
#include "fault/assumption_monitor.h"
#include "fault/fault_policy.h"
#include "common/parallel.h"

namespace linbound {
namespace {

/// Everything the sweep needs to know about one churned run.
struct OneChurnRun {
  RunStatus status = RunStatus::kComplete;
  bool linearizable = false;
  std::string explanation;
  AssumptionReport report;
  std::int64_t invocations = 0;
  std::int64_t answered = 0;
  int crashes = 0;
  int recoveries = 0;
  int reissued = 0;
  Tick worst_crash_to_response = kNoTime;
  Tick worst_rejoin_latency = kNoTime;
  int rejoin_bound_violations = 0;
  int survivor_bound_violations = 0;

  bool flagged() const {
    return !linearizable || status == RunStatus::kEventCapExceeded;
  }
};

Tick class_bound(const AlgorithmDelays& delays, OpClass cls) {
  switch (cls) {
    case OpClass::kPureMutator:
      return delays.mop_ack;
    case OpClass::kPureAccessor:
      return delays.aop_respond;
    case OpClass::kOther:
      return delays.self_add + delays.holdback;
  }
  return 0;
}

OneChurnRun run_one(const std::shared_ptr<const ObjectModel>& model,
                    const WorkloadFactory& workload,
                    const ChurnSweepOptions& options, const ChurnConfig& churn,
                    std::uint64_t churn_seed, std::uint64_t delay_seed,
                    std::uint64_t workload_seed, Tick recovery_bound) {
  SystemOptions sys;
  sys.n = options.n;
  sys.timing = options.timing;
  sys.x = options.x;
  sys.delays = std::make_shared<UniformDelayPolicy>(options.timing, delay_seed);
  sys.recoverable = options.recoverable;
  sys.queue_impl = options.queue_impl;
  ReplicaSystem system(model, sys);

  FaultConfig faults;
  faults.churn = churn;
  faults.seed = churn_seed;
  const ChurnSchedule schedule = make_churn_schedule(faults, options.n);
  schedule.apply(system.sim());

  Rng wl_rng(workload_seed);
  std::vector<ClientScript> scripts;
  scripts.reserve(static_cast<std::size_t>(options.n));
  for (int pid = 0; pid < options.n; ++pid) {
    Rng client_rng = wl_rng.split(static_cast<std::uint64_t>(pid));
    scripts.push_back(ClientScript{static_cast<ProcessId>(pid),
                                   workload(pid, client_rng),
                                   /*start_time=*/1000, options.think_time});
  }
  WorkloadDriver driver(system.sim(), std::move(scripts));
  driver.arm();

  const RunOutcome outcome = system.run_with_outcome();
  const CheckResult check = check_linearizable_with_pending(
      *model, outcome.history, outcome.pending, options.check);
  const Trace& trace = system.sim().trace();

  OneChurnRun out;
  out.status = outcome.status;
  out.linearizable = check.ok;
  out.explanation = check.explanation;
  out.report = audit_assumptions(trace);
  out.invocations = static_cast<std::int64_t>(trace.ops.size());
  out.reissued = driver.reissued();
  for (const OperationRecord& rec : trace.ops) {
    if (rec.completed()) ++out.answered;
  }

  // Survivor bound check: replicas with no churn window answer every class
  // within the algorithm's own response bound -- the rejoin protocol never
  // makes them wait.
  const std::vector<ProcessId> churners = schedule.churners();
  const AlgorithmDelays& delays = system.algorithm_delays();
  for (const OperationRecord& rec : trace.ops) {
    if (!rec.completed()) continue;
    if (std::find(churners.begin(), churners.end(), rec.proc) !=
        churners.end()) {
      continue;
    }
    const Tick bound = class_bound(delays, model->classify(rec.op));
    if (rec.response_time - rec.invoke_time > bound) {
      ++out.survivor_bound_violations;
    }
  }

  // Recovery timing: per recovery event, the crash->first-response gap and
  // the latency of the first operation completed after the rejoin.
  for (const FaultEvent& f : trace.faults) {
    if (f.kind == FaultKind::kProcessCrashed) ++out.crashes;
    if (f.kind != FaultKind::kProcessRecovered) continue;
    ++out.recoveries;
    Tick crash_time = kNoTime;
    for (const FaultEvent& c : trace.faults) {
      if (c.kind == FaultKind::kProcessCrashed && c.proc == f.proc &&
          c.time <= f.time && (crash_time == kNoTime || c.time > crash_time)) {
        crash_time = c.time;
      }
    }
    const OperationRecord* first = nullptr;
    for (const OperationRecord& rec : trace.ops) {
      if (rec.proc != f.proc || !rec.completed()) continue;
      if (rec.invoke_time < f.time) continue;
      if (!first || rec.response_time < first->response_time) first = &rec;
    }
    if (!first) continue;  // workload drained before this recovery
    if (crash_time != kNoTime) {
      const Tick gap = first->response_time - crash_time;
      if (out.worst_crash_to_response == kNoTime ||
          gap > out.worst_crash_to_response) {
        out.worst_crash_to_response = gap;
      }
    }
    const Tick latency = first->response_time - first->invoke_time;
    if (out.worst_rejoin_latency == kNoTime ||
        latency > out.worst_rejoin_latency) {
      out.worst_rejoin_latency = latency;
    }
    if (latency > recovery_bound) ++out.rejoin_bound_violations;
  }
  return out;
}

}  // namespace

std::string ChurnCell::label() const {
  std::ostringstream os;
  os << "up~" << mean_uptime << " down~" << mean_downtime;
  return os.str();
}

std::vector<ChurnCell> default_churn_cells(const SystemTiming& timing,
                                           const RecoverableParams& params) {
  const Tick d_eff = params.link.effective_d(timing);
  return {
      ChurnCell{8 * d_eff, d_eff},      // occasional short outages
      ChurnCell{8 * d_eff, 3 * d_eff},  // occasional long outages
      ChurnCell{4 * d_eff, d_eff},      // frequent short outages
  };
}

Tick churn_recovery_bound(const SystemTiming& timing,
                          const RecoverableParams& params,
                          const AlgorithmDelays& delays) {
  const Tick d_eff = params.link.effective_d(timing);
  const Tick serve =
      std::max({delays.self_add + delays.holdback, delays.mop_ack,
                delays.aop_respond});
  // Join round trip + one retry's slack + catch-up window + the slowest
  // class's own response bound.
  return 2 * d_eff + params.join_retry_for(timing) +
         params.catchup_for(timing) + serve;
}

bool ChurnSweepResult::all_linearizable() const {
  for (const ChurnCellResult& cell : cells) {
    if (cell.linearizable != cell.runs) return false;
  }
  return !cells.empty();
}

bool ChurnSweepResult::survivors_within_bounds() const {
  for (const ChurnCellResult& cell : cells) {
    if (cell.survivor_bound_violations != 0) return false;
  }
  return true;
}

bool ChurnSweepResult::recovery_bounded() const {
  for (const ChurnCellResult& cell : cells) {
    if (cell.rejoin_bound_violations != 0) return false;
  }
  return true;
}

bool ChurnSweepResult::churn_attributed() const {
  for (const ChurnCellResult& cell : cells) {
    if (cell.failures_unattributed != 0) return false;
    if (cell.crashes > 0 && cell.runs_with_recovering_attribution == 0) {
      return false;
    }
  }
  return true;
}

std::string ChurnSweepResult::table() const {
  std::ostringstream os;
  os << std::left << std::setw(26) << "churn cell" << std::right
     << std::setw(8) << "lin-ok" << std::setw(13) << "availability"
     << std::setw(9) << "crashes" << std::setw(9) << "reissue"
     << std::setw(15) << "worst-rejoin" << std::setw(17) << "crash->response"
     << "\n";
  for (const ChurnCellResult& cell : cells) {
    os << std::left << std::setw(26) << cell.cell.label() << std::right
       << std::setw(5) << cell.linearizable << "/" << cell.runs
       << std::setw(12) << std::fixed << std::setprecision(3)
       << cell.availability() << std::setw(9) << cell.crashes << std::setw(9)
       << cell.reissued << std::setw(15)
       << (cell.worst_rejoin_latency == kNoTime
               ? std::string("-")
               : std::to_string(cell.worst_rejoin_latency))
       << std::setw(17)
       << (cell.worst_crash_to_response == kNoTime
               ? std::string("-")
               : std::to_string(cell.worst_crash_to_response))
       << "\n";
  }
  os << "per-class bounds: OOP " << oop_bound << ", MOP " << mop_bound
     << ", AOP " << aop_bound << "; rejoin bound " << recovery_bound << "\n";
  return os.str();
}

ChurnSweepResult run_churn_sweep(const std::shared_ptr<const ObjectModel>& model,
                                 const WorkloadFactory& workload,
                                 const ChurnSweepOptions& options) {
  ChurnSweepResult result;
  const std::vector<ChurnCell> cells =
      options.cells.empty()
          ? default_churn_cells(options.timing, options.recoverable)
          : options.cells;

  const SystemTiming eff =
      options.recoverable.link.effective_timing(options.timing);
  const AlgorithmDelays delays = AlgorithmDelays::standard(eff, options.x);
  result.oop_bound = delays.self_add + delays.holdback;
  result.mop_bound = delays.mop_ack;
  result.aop_bound = delays.aop_respond;
  result.recovery_bound =
      churn_recovery_bound(options.timing, options.recoverable, delays);

  // The workload runs from t=1000 for roughly ops * (worst-op + think)
  // ticks; churn defaults to covering that window so crashes land while
  // operations are in flight.
  const Tick churn_start = options.churn_start > 0
                               ? options.churn_start
                               : 1000 + result.oop_bound;
  const Tick churn_horizon =
      options.churn_horizon > 0
          ? options.churn_horizon
          : 1000 + static_cast<Tick>(options.ops_per_client) *
                       (result.oop_bound + options.think_time);

  // Same derivation style as run_fault_sweep: delay and workload randomness
  // depend only on the seed index, so every cell replays the same delays
  // and client scripts -- churn intensity is the only thing that varies.
  const auto delay_seed = [&](int seed) {
    return options.base_seed +
           0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(seed);
  };
  const auto workload_seed = [&](int seed) {
    return options.base_seed ^
           (0xd1b54a32d192ed03ULL +
            0x2545f4914f6cdd1dULL * static_cast<std::uint64_t>(seed));
  };

  // One task per (cell, seed); execution order is irrelevant because each
  // run builds everything it touches from seed-derived values.  Aggregation
  // below walks the results in the serial sweep's (cell, seed) order.
  const ParallelSweepExecutor executor(options.jobs);
  const std::size_t seeds = static_cast<std::size_t>(options.seeds);
  const std::vector<OneChurnRun> grid_runs = executor.map<OneChurnRun>(
      cells.size() * seeds, [&](std::size_t i) {
        const std::size_t ci = i / seeds;
        const int seed = static_cast<int>(i % seeds);
        ChurnConfig churn;
        churn.mean_uptime = cells[ci].mean_uptime;
        churn.mean_downtime = cells[ci].mean_downtime;
        churn.start = churn_start;
        churn.horizon = churn_horizon;
        const std::uint64_t churn_seed = options.base_seed +
                                         0xbf58476d1ce4e5b9ULL * (ci + 1) +
                                         static_cast<std::uint64_t>(seed);
        return run_one(model, workload, options, churn, churn_seed,
                       delay_seed(seed), workload_seed(seed),
                       result.recovery_bound);
      });

  for (std::size_t ci = 0; ci < cells.size(); ++ci) {
    ChurnCellResult cell_result;
    cell_result.cell = cells[ci];
    for (int seed = 0; seed < options.seeds; ++seed) {
      const OneChurnRun& run =
          grid_runs[ci * seeds + static_cast<std::size_t>(seed)];

      ++cell_result.runs;
      if (run.linearizable) ++cell_result.linearizable;
      cell_result.invocations += run.invocations;
      cell_result.answered += run.answered;
      cell_result.crashes += run.crashes;
      cell_result.recoveries += run.recoveries;
      cell_result.reissued += run.reissued;
      cell_result.rejoin_bound_violations += run.rejoin_bound_violations;
      cell_result.survivor_bound_violations += run.survivor_bound_violations;
      if (run.worst_crash_to_response != kNoTime &&
          (cell_result.worst_crash_to_response == kNoTime ||
           run.worst_crash_to_response > cell_result.worst_crash_to_response)) {
        cell_result.worst_crash_to_response = run.worst_crash_to_response;
      }
      if (run.worst_rejoin_latency != kNoTime &&
          (cell_result.worst_rejoin_latency == kNoTime ||
           run.worst_rejoin_latency > cell_result.worst_rejoin_latency)) {
        cell_result.worst_rejoin_latency = run.worst_rejoin_latency;
      }
      if (run.report.violated(Assumption::kRecovering)) {
        ++cell_result.runs_with_recovering_attribution;
      }
      if (run.flagged()) {
        if (run.report.clean()) ++cell_result.failures_unattributed;
        std::ostringstream note;
        note << "seed=" << seed << " [" << cells[ci].label()
             << "] status=" << run_status_name(run.status) << " "
             << run.report.attribute(run.linearizable);
        cell_result.notes.push_back(note.str());
      }
    }
    result.cells.push_back(std::move(cell_result));
  }
  return result;
}

}  // namespace linbound
