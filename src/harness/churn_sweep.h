// Crash-recovery counterpart of harness/fault_sweep.h: sweep the
// recoverable replica (core/recoverable_replica.h) over a grid of churn
// intensities (mean uptime x mean downtime, per fault/churn.h) and seeds,
// with four claims checked per cell:
//
//   1. every churned run is linearizable (pending-aware: operations cut by
//      a crash and re-issued after recovery are accepted);
//   2. survivors -- replicas that never crash -- keep Algorithm 1's
//      per-class response bounds (d_eff+eps / eps+X / d_eff+eps-X), churn
//      or not: the rejoin protocol costs them one snapshot message, never
//      a wait;
//   3. recovery is time-bounded: the first operation answered after a
//      rejoin completes within recovery_bound() of its invocation
//      (join round trip + catch-up window + the class's own bound);
//   4. every churned run is attributed by the assumption monitor to
//      kRecovering (and nothing is left unexplained).
//
// Availability -- the fraction of invocation attempts answered -- is
// reported per cell; bench_churn_sweep prints the table.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/system.h"
#include "harness/experiment.h"

namespace linbound {

/// One churn intensity; durations are the ChurnConfig means.
struct ChurnCell {
  Tick mean_uptime = 0;
  Tick mean_downtime = 0;

  std::string label() const;
};

struct ChurnSweepOptions {
  int n = 4;
  SystemTiming timing;
  Tick x = 0;               ///< Algorithm 1's trade-off parameter
  int seeds = 5;            ///< randomized runs per cell
  Tick think_time = 0;      ///< client think time between operations
  int ops_per_client = 10;  ///< script length per process
  /// Grid of churn intensities; empty means default_churn_cells().
  std::vector<ChurnCell> cells;
  /// Link + rejoin knobs for the recoverable replicas.
  RecoverableParams recoverable;
  /// First possible crash / last possible crash (real time); 0 means
  /// derived from the workload span so churn overlaps the active run.
  Tick churn_start = 0;
  Tick churn_horizon = 0;
  std::uint64_t base_seed = 0xc4a5'4baccULL;
  /// Worker threads (common/parallel.h); every (cell, seed) run is an
  /// independent deterministic simulation, aggregated in canonical order,
  /// so any value produces byte-identical results.
  int jobs = 1;
  /// Future-event-list implementation for every run's simulator; results
  /// are byte-identical at either value (sim/event_queue.h).
  EventQueueImpl queue_impl = EventQueueImpl::kCalendar;
  /// Checker configuration for every run's (possibly pending-laden)
  /// history; verdicts are identical at any value.
  CheckOptions check;
};

/// The standard grid, scaled by the effective delivery bound d_eff:
/// occasional short outages, occasional long ones, frequent short ones.
std::vector<ChurnCell> default_churn_cells(const SystemTiming& timing,
                                           const RecoverableParams& params);

/// Per-cell aggregate over the seeds.
struct ChurnCellResult {
  ChurnCell cell;
  int runs = 0;

  int linearizable = 0;
  std::int64_t invocations = 0;  ///< dispatched or scheduled attempts
  std::int64_t answered = 0;     ///< attempts that completed
  int crashes = 0;
  int recoveries = 0;
  int reissued = 0;              ///< cut operations retried by the driver

  /// Worst crash -> first-response-after-recovery gap (downtime included);
  /// kNoTime if no post-recovery response was observed.
  Tick worst_crash_to_response = kNoTime;
  /// Worst latency of the first operation completed after a rejoin.
  Tick worst_rejoin_latency = kNoTime;
  int rejoin_bound_violations = 0;    ///< rejoin latencies over recovery_bound
  int survivor_bound_violations = 0;  ///< survivor ops over their class bound
  int runs_with_recovering_attribution = 0;
  int failures_unattributed = 0;  ///< flagged runs the monitor cannot explain

  std::vector<std::string> notes;  ///< one line per noteworthy run

  double availability() const {
    return invocations ? static_cast<double>(answered) /
                             static_cast<double>(invocations)
                       : 1.0;
  }
};

struct ChurnSweepResult {
  /// Per-class response bounds of the swept system (computed from the
  /// effective timing) and the rejoin bound derived from them.
  Tick oop_bound = 0;
  Tick mop_bound = 0;
  Tick aop_bound = 0;
  Tick recovery_bound = 0;
  std::vector<ChurnCellResult> cells;

  /// Claim 1: every run, every cell, linearizable.
  bool all_linearizable() const;
  /// Claim 2: no survivor operation exceeded its class bound.
  bool survivors_within_bounds() const;
  /// Claim 3: every first-after-rejoin operation within recovery_bound.
  bool recovery_bounded() const;
  /// Claim 4: churned runs carry kRecovering attributions and no flagged
  /// run went unexplained.
  bool churn_attributed() const;

  bool ok() const {
    return all_linearizable() && survivors_within_bounds() &&
           recovery_bounded() && churn_attributed();
  }

  /// Formatted per-cell table (for bench_churn_sweep).
  std::string table() const;
};

/// The rejoin-latency bound claimed per recovery: join round trip over the
/// effective link, the catch-up window, then the slowest class's own
/// response bound.
Tick churn_recovery_bound(const SystemTiming& timing,
                          const RecoverableParams& params,
                          const AlgorithmDelays& delays);

/// Run the sweep: for each cell and seed, one recoverable-replica run with
/// the cell's churn schedule; message faults are off, so every deviation is
/// attributable to churn alone.
ChurnSweepResult run_churn_sweep(const std::shared_ptr<const ObjectModel>& model,
                                 const WorkloadFactory& workload,
                                 const ChurnSweepOptions& options);

}  // namespace linbound
