#include "harness/experiment.h"

#include <sstream>

#include "core/driver.h"
#include "common/parallel.h"

namespace linbound {
namespace {

enum class PolicyKind { kAllMax, kAllMin, kUniform, kExtremal };
enum class OffsetKind { kZero, kAlternating, kRandom };

std::shared_ptr<DelayPolicy> make_policy(PolicyKind kind, const SystemTiming& timing,
                                         std::uint64_t seed) {
  switch (kind) {
    case PolicyKind::kAllMax:
      return std::make_shared<FixedDelayPolicy>(timing.max_delay());
    case PolicyKind::kAllMin:
      return std::make_shared<FixedDelayPolicy>(timing.min_delay());
    case PolicyKind::kUniform:
      return std::make_shared<UniformDelayPolicy>(timing, seed);
    case PolicyKind::kExtremal:
      return std::make_shared<ExtremalDelayPolicy>(timing, seed);
  }
  return nullptr;
}

std::vector<Tick> make_offsets(OffsetKind kind, int n, const SystemTiming& timing,
                               Rng& rng) {
  std::vector<Tick> out(static_cast<std::size_t>(n), 0);
  switch (kind) {
    case OffsetKind::kZero:
      break;
    case OffsetKind::kAlternating:
      for (int i = 0; i < n; ++i) {
        out[static_cast<std::size_t>(i)] = (i % 2 == 0) ? 0 : timing.eps;
      }
      break;
    case OffsetKind::kRandom:
      // Offsets in [0, eps] keep every pairwise skew within eps.
      for (int i = 0; i < n; ++i) {
        out[static_cast<std::size_t>(i)] = rng.uniform_tick(0, timing.eps);
      }
      break;
  }
  return out;
}

const char* policy_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kAllMax:
      return "all-max";
    case PolicyKind::kAllMin:
      return "all-min";
    case PolicyKind::kUniform:
      return "uniform";
    case PolicyKind::kExtremal:
      return "extremal";
  }
  return "?";
}

const char* offset_name(OffsetKind kind) {
  switch (kind) {
    case OffsetKind::kZero:
      return "zero";
    case OffsetKind::kAlternating:
      return "alternating";
    case OffsetKind::kRandom:
      return "random";
  }
  return "?";
}

/// Append the run's admissibility audit (offending messages named with
/// endpoints, send tick and observed delay) and, for matrix policies, any
/// out-of-bound matrix entries -- so a failure log says *why* the schedule
/// was hostile, not just that the checker said no.
void append_run_diagnostics(std::ostringstream& os, const Trace& trace,
                            const DelayPolicy* delays,
                            const SystemTiming& timing) {
  const AdmissibilityReport audit = trace.audit();
  for (const std::string& violation : audit.violations) {
    os << "\n    audit: " << violation;
  }
  if (const auto* matrix = dynamic_cast<const MatrixDelayPolicy*>(delays)) {
    for (const auto& [from, to] : matrix->invalid_entries(timing)) {
      os << "\n    delay matrix: entry (" << from << " -> " << to << ") = "
         << matrix->get(from, to) << " outside [" << timing.min_delay() << ", "
         << timing.max_delay() << "]";
    }
  }
}

/// One cell of the adversary grid, fully determined by its indices: the
/// run_id fixes the Rng, which fixes policies, offsets and workloads.
struct SweepTask {
  PolicyKind policy;
  OffsetKind offset;
  int rep;
  std::uint64_t run_id;
};

/// What one run contributes to the aggregate; merged in canonical task
/// order so serial and parallel sweeps produce byte-identical results.
struct SweepRunOutcome {
  bool ok = false;
  std::string failure;
  LatencyReport latency;
};

std::vector<SweepTask> make_sweep_tasks(const SweepOptions& options) {
  const PolicyKind policies[] = {PolicyKind::kAllMax, PolicyKind::kAllMin,
                                 PolicyKind::kUniform, PolicyKind::kExtremal};
  const OffsetKind offsets[] = {OffsetKind::kZero, OffsetKind::kAlternating,
                                OffsetKind::kRandom};
  std::vector<SweepTask> tasks;
  std::uint64_t run_id = 0;
  for (PolicyKind policy : policies) {
    for (OffsetKind offset : offsets) {
      const bool randomized =
          policy == PolicyKind::kUniform || policy == PolicyKind::kExtremal ||
          offset == OffsetKind::kRandom;
      const int reps = randomized ? options.seeds : 1;
      for (int rep = 0; rep < reps; ++rep, ++run_id) {
        tasks.push_back(SweepTask{policy, offset, rep, run_id});
      }
    }
  }
  return tasks;
}

template <typename SystemT>
SweepRunOutcome run_sweep_task(const std::shared_ptr<const ObjectModel>& model,
                               const WorkloadFactory& workload,
                               const SweepOptions& options,
                               const SweepTask& task) {
  Rng rng(options.base_seed + task.run_id * 0x9e3779b97f4a7c15ull);

  SystemOptions sys;
  sys.n = options.n;
  sys.timing = options.timing;
  sys.x = options.x;
  sys.delays = make_policy(task.policy, options.timing, rng.next_u64());
  sys.clock_offsets = make_offsets(task.offset, options.n, options.timing, rng);
  sys.queue_impl = options.queue_impl;

  SystemT system(model, sys);

  std::vector<ClientScript> scripts;
  scripts.reserve(static_cast<std::size_t>(options.n));
  for (int pid = 0; pid < options.n; ++pid) {
    Rng client_rng = rng.split(static_cast<std::uint64_t>(pid));
    scripts.push_back(ClientScript{static_cast<ProcessId>(pid),
                                   workload(pid, client_rng),
                                   /*start_time=*/1000,
                                   options.think_time});
  }
  WorkloadDriver driver(system.sim(), std::move(scripts));
  driver.arm();

  History history = system.run_to_completion();
  const CheckResult check = check_linearizable(*model, history, options.check);

  SweepRunOutcome outcome;
  outcome.ok = check.ok;
  if (!check.ok) {
    std::ostringstream os;
    os << "policy=" << policy_name(task.policy)
       << " offsets=" << offset_name(task.offset) << " rep=" << task.rep
       << ": " << check.explanation;
    append_run_diagnostics(os, system.sim().trace(), sys.delays.get(),
                           options.timing);
    outcome.failure = os.str();
  }
  outcome.latency.absorb(*model, system.sim().trace());
  return outcome;
}

template <typename SystemT>
SweepResult run_sweep_impl(const std::shared_ptr<const ObjectModel>& model,
                           const WorkloadFactory& workload,
                           const SweepOptions& options) {
  const std::vector<SweepTask> tasks = make_sweep_tasks(options);
  const ParallelSweepExecutor executor(options.jobs);
  std::vector<SweepRunOutcome> outcomes = executor.map<SweepRunOutcome>(
      tasks.size(), [&](std::size_t i) {
        return run_sweep_task<SystemT>(model, workload, options, tasks[i]);
      });

  // Aggregate serially in canonical task order: byte-identical at any
  // jobs count.
  SweepResult result;
  for (SweepRunOutcome& outcome : outcomes) {
    ++result.runs;
    if (outcome.ok) {
      ++result.linearizable_runs;
    } else {
      result.failures.push_back(std::move(outcome.failure));
    }
    result.latency.merge(outcome.latency);
  }
  return result;
}

}  // namespace

SweepResult run_replica_sweep(const std::shared_ptr<const ObjectModel>& model,
                              const WorkloadFactory& workload,
                              const SweepOptions& options) {
  return run_sweep_impl<ReplicaSystem>(model, workload, options);
}

SweepResult run_centralized_sweep(const std::shared_ptr<const ObjectModel>& model,
                                  const WorkloadFactory& workload,
                                  const SweepOptions& options) {
  return run_sweep_impl<CentralizedSystem>(model, workload, options);
}

SweepResult run_tob_sweep(const std::shared_ptr<const ObjectModel>& model,
                          const WorkloadFactory& workload,
                          const SweepOptions& options) {
  return run_sweep_impl<TobSystem>(model, workload, options);
}

}  // namespace linbound
