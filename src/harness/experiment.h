// The experiment runner behind every table bench: sweep Algorithm 1 (or the
// centralized baseline) over adversarial delay policies, clock-offset
// patterns and seeds; check linearizability of every run; aggregate
// worst-case latencies.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "checker/lin_checker.h"
#include "core/system.h"
#include "core/workload.h"
#include "harness/latency.h"

namespace linbound {

/// Produces the operation list for one client process in one run.
using WorkloadFactory =
    std::function<std::vector<Operation>(ProcessId pid, Rng& rng)>;

struct SweepOptions {
  int n = 4;
  SystemTiming timing;
  Tick x = 0;              ///< Algorithm 1's trade-off parameter
  int seeds = 8;           ///< randomized runs per (policy, offsets) cell
  Tick think_time = 0;     ///< client think time between operations
  std::uint64_t base_seed = 0x11bb0042d00dULL;
  /// Worker threads for the grid (common/parallel.h); every cell is an
  /// independent deterministic simulation and results are aggregated in
  /// canonical order, so any value produces byte-identical output.
  int jobs = 1;
  /// Future-event-list implementation for every run's simulator; results
  /// are byte-identical at either value (sim/event_queue.h).
  EventQueueImpl queue_impl = EventQueueImpl::kCalendar;
  /// Checker configuration for every cell's history (segmentation on,
  /// checker-internal jobs serial by default: sweeps already parallelize
  /// across cells, and any CheckOptions value yields identical verdicts).
  CheckOptions check;
};

struct SweepResult {
  int runs = 0;
  int linearizable_runs = 0;
  LatencyReport latency;
  std::vector<std::string> failures;  ///< descriptions of failing runs

  bool all_linearizable() const { return runs == linearizable_runs; }
};

/// Run Algorithm 1 across the adversary grid:
///   delay policies: all-d, all-(d-u), uniform random, extremal bimodal;
///   clock offsets: all-zero, alternating 0/eps, random within [0, eps].
/// Every run's history is checked for linearizability.
SweepResult run_replica_sweep(const std::shared_ptr<const ObjectModel>& model,
                              const WorkloadFactory& workload,
                              const SweepOptions& options);

/// Same grid, centralized baseline.
SweepResult run_centralized_sweep(const std::shared_ptr<const ObjectModel>& model,
                                  const WorkloadFactory& workload,
                                  const SweepOptions& options);

/// Same grid, sequencer-based total-order-broadcast baseline.
SweepResult run_tob_sweep(const std::shared_ptr<const ObjectModel>& model,
                          const WorkloadFactory& workload,
                          const SweepOptions& options);

}  // namespace linbound
