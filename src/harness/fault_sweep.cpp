#include "harness/fault_sweep.h"

#include <iomanip>
#include <sstream>

#include "core/driver.h"
#include "fault/assumption_monitor.h"
#include "fault/fault_policy.h"
#include "common/parallel.h"

namespace linbound {
namespace {

/// Everything the sweep needs to know about one run.
struct OneRun {
  RunStatus status = RunStatus::kComplete;
  bool linearizable = false;
  std::string explanation;
  AssumptionReport report;
  LatencyReport latency;
  std::int64_t retransmissions = 0;
  std::int64_t duplicates_suppressed = 0;

  bool flagged() const {
    return !linearizable || status != RunStatus::kComplete;
  }
};

OneRun run_one(const std::shared_ptr<const ObjectModel>& model,
               const WorkloadFactory& workload, const FaultSweepOptions& options,
               const FaultConfig& faults, bool hardened,
               std::uint64_t delay_seed, std::uint64_t workload_seed) {
  SystemOptions sys;
  sys.n = options.n;
  sys.timing = options.timing;
  sys.x = options.x;
  sys.delays = std::make_shared<UniformDelayPolicy>(options.timing, delay_seed);
  sys.queue_impl = options.queue_impl;
  if (faults.any()) sys.faults = make_fault_policy(faults);
  if (hardened) {
    HardenedParams params = options.hardened;
    params.spike_margin = faults.spike_max;  // absorb the worst injected boost
    sys.hardened = params;
  }
  ReplicaSystem system(model, sys);

  Rng wl_rng(workload_seed);
  std::vector<ClientScript> scripts;
  scripts.reserve(static_cast<std::size_t>(options.n));
  for (int pid = 0; pid < options.n; ++pid) {
    Rng client_rng = wl_rng.split(static_cast<std::uint64_t>(pid));
    scripts.push_back(ClientScript{static_cast<ProcessId>(pid),
                                   workload(pid, client_rng),
                                   /*start_time=*/1000, options.think_time});
  }
  WorkloadDriver driver(system.sim(), std::move(scripts));
  driver.arm();

  const RunOutcome outcome = system.run_with_outcome();
  const CheckResult check = check_linearizable_with_pending(
      *model, outcome.history, outcome.pending, options.check);

  OneRun out;
  out.status = outcome.status;
  out.linearizable = check.ok;
  out.explanation = check.explanation;
  out.report = audit_assumptions(system.sim().trace());
  out.latency.absorb(*model, system.sim().trace());
  if (hardened) {
    for (int pid = 0; pid < options.n; ++pid) {
      auto& replica =
          dynamic_cast<HardenedReplicaProcess&>(system.replica(pid));
      out.retransmissions += replica.retransmissions();
      out.duplicates_suppressed += replica.duplicates_suppressed();
    }
  }
  return out;
}

Tick worst_latency(const LatencyReport& report) {
  Tick worst = kNoTime;
  for (const auto& [code, summary] : report.by_code) {
    (void)code;
    if (summary.count > 0 && (worst == kNoTime || summary.max > worst)) {
      worst = summary.max;
    }
  }
  return worst;
}

}  // namespace

std::string FaultCell::label() const {
  std::ostringstream os;
  os << "drop=" << drop_p << " dup=" << dup_p << " spike=" << spike_p;
  if (spike_p > 0) os << "(+<=" << spike_max << ")";
  return os.str();
}

std::vector<FaultCell> default_fault_cells(const SystemTiming& timing) {
  // Spikes up to u on top of a delay drawn from [d-u, d] land in
  // (d-u, d+u]: roughly half of them exceed the model's upper bound d.
  const Tick boost = timing.u > 0 ? timing.u : timing.d / 2;
  return {
      FaultCell{0.05, 0.0, 0.0, 0},     // light loss
      FaultCell{0.20, 0.0, 0.0, 0},     // heavy loss
      FaultCell{0.0, 0.10, 0.0, 0},     // duplication
      FaultCell{0.0, 0.30, 0.0, 0},     // heavy duplication
      FaultCell{0.0, 0.0, 0.10, boost},  // delay spikes
      FaultCell{0.10, 0.10, 0.05, boost},  // the combined mix
  };
}

bool FaultSweepResult::hardened_all_linearizable() const {
  for (const FaultCellResult& cell : cells) {
    if (cell.hardened_linearizable != cell.runs) return false;
  }
  return !cells.empty();
}

bool FaultSweepResult::unhardened_flagged_under_drops() const {
  bool saw_drop_cell = false;
  for (const FaultCellResult& cell : cells) {
    if (cell.cell.drop_p <= 0) continue;
    saw_drop_cell = true;
    if (cell.unhardened_flagged == 0) return false;
  }
  return saw_drop_cell;
}

bool FaultSweepResult::all_failures_attributed() const {
  for (const FaultCellResult& cell : cells) {
    if (cell.failures_unattributed != 0) return false;
  }
  return true;
}

std::string FaultSweepResult::table() const {
  std::ostringstream os;
  const Tick clean_worst = worst_latency(clean_latency);
  os << std::left << std::setw(34) << "fault cell" << std::right
     << std::setw(12) << "hardened-ok" << std::setw(10) << "stock-ok"
     << std::setw(9) << "flagged" << std::setw(12) << "attributed"
     << std::setw(9) << "retrans" << std::setw(12) << "worst-lat"
     << std::setw(10) << "vs-clean" << "\n";
  for (const FaultCellResult& cell : cells) {
    const Tick worst = worst_latency(cell.hardened_latency);
    os << std::left << std::setw(34) << cell.cell.label() << std::right
       << std::setw(9) << cell.hardened_linearizable << "/" << cell.runs
       << std::setw(7) << cell.unhardened_linearizable << "/" << cell.runs
       << std::setw(9) << cell.unhardened_flagged << std::setw(9)
       << cell.failures_attributed << "/"
       << (cell.failures_attributed + cell.failures_unattributed)
       << std::setw(9) << cell.retransmissions << std::setw(12) << worst;
    if (clean_worst != kNoTime && clean_worst > 0 && worst != kNoTime) {
      os << std::setw(9) << std::fixed << std::setprecision(2)
         << static_cast<double>(worst) / static_cast<double>(clean_worst)
         << "x";
    } else {
      os << std::setw(10) << "-";
    }
    os << "\n";
  }
  os << "clean stock baseline worst latency: " << clean_worst << "\n";
  return os.str();
}

FaultSweepResult run_fault_sweep(const std::shared_ptr<const ObjectModel>& model,
                                 const WorkloadFactory& workload,
                                 const FaultSweepOptions& options) {
  FaultSweepResult result;
  const std::vector<FaultCell> cells =
      options.cells.empty() ? default_fault_cells(options.timing) : options.cells;

  // Seed derivation: delay and workload randomness depend only on the seed
  // index, so every cell (and the clean baseline) replays the same delays
  // and the same client scripts -- the fault intensity is the only thing
  // that varies across cells.
  const auto delay_seed = [&](int seed) {
    return options.base_seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(seed);
  };
  const auto workload_seed = [&](int seed) {
    return options.base_seed ^ (0xd1b54a32d192ed03ULL +
                                0x2545f4914f6cdd1dULL * static_cast<std::uint64_t>(seed));
  };

  const ParallelSweepExecutor executor(options.jobs);

  // Phase 1: the clean baseline, one run per seed.
  const std::vector<OneRun> clean_runs = executor.map<OneRun>(
      static_cast<std::size_t>(options.seeds), [&](std::size_t seed) {
        return run_one(model, workload, options, FaultConfig{},
                       /*hardened=*/false, delay_seed(static_cast<int>(seed)),
                       workload_seed(static_cast<int>(seed)));
      });
  for (const OneRun& clean : clean_runs) {
    result.clean_latency.merge(clean.latency);
  }

  // Phase 2: the grid.  One task per (cell, seed) computes the hardened
  // and stock variants together; aggregation below walks the results in
  // the same (cell, seed) order as the serial sweep.
  struct PairRuns {
    OneRun hardened;
    OneRun stock;
  };
  const std::size_t seeds = static_cast<std::size_t>(options.seeds);
  const std::vector<PairRuns> grid_runs = executor.map<PairRuns>(
      cells.size() * seeds, [&](std::size_t i) {
        const std::size_t ci = i / seeds;
        const int seed = static_cast<int>(i % seeds);
        FaultConfig faults;
        faults.drop_p = cells[ci].drop_p;
        faults.dup_p = cells[ci].dup_p;
        faults.spike_p = cells[ci].spike_p;
        faults.spike_max = cells[ci].spike_max;
        faults.seed = options.base_seed + 0xbf58476d1ce4e5b9ULL * (ci + 1) +
                      static_cast<std::uint64_t>(seed);
        PairRuns pair;
        pair.hardened = run_one(model, workload, options, faults,
                                /*hardened=*/true, delay_seed(seed),
                                workload_seed(seed));
        pair.stock = run_one(model, workload, options, faults,
                             /*hardened=*/false, delay_seed(seed),
                             workload_seed(seed));
        return pair;
      });

  for (std::size_t ci = 0; ci < cells.size(); ++ci) {
    FaultCellResult cell_result;
    cell_result.cell = cells[ci];
    for (int seed = 0; seed < options.seeds; ++seed) {
      const PairRuns& pair =
          grid_runs[ci * seeds + static_cast<std::size_t>(seed)];
      const OneRun& hardened = pair.hardened;
      const OneRun& stock = pair.stock;

      ++cell_result.runs;
      cell_result.retransmissions += hardened.retransmissions;
      cell_result.duplicates_suppressed += hardened.duplicates_suppressed;
      if (hardened.linearizable) ++cell_result.hardened_linearizable;
      if (hardened.status == RunStatus::kComplete) ++cell_result.hardened_complete;
      cell_result.hardened_latency.merge(hardened.latency);

      if (stock.linearizable) ++cell_result.unhardened_linearizable;

      for (const OneRun* run : {&hardened, &stock}) {
        const bool is_hardened = run == &hardened;
        if (!run->flagged()) continue;
        if (!is_hardened) ++cell_result.unhardened_flagged;
        if (run->report.clean()) {
          ++cell_result.failures_unattributed;
        } else {
          ++cell_result.failures_attributed;
        }
        std::ostringstream note;
        note << (is_hardened ? "hardened" : "stock") << " seed=" << seed << " ["
             << cells[ci].label() << "] status=" << run_status_name(run->status)
             << " " << run->report.attribute(run->linearizable);
        cell_result.notes.push_back(note.str());
      }
    }
    result.cells.push_back(std::move(cell_result));
  }
  return result;
}

}  // namespace linbound
