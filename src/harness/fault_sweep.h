// The robustness counterpart of harness/experiment.h: sweep Algorithm 1 --
// hardened (core/hardened_replica.h) and stock -- over a grid of fault
// intensities (message drop / duplication / delay-spike probabilities) and
// seeds, with three claims checked per cell:
//
//   1. the hardened variant stays linearizable in every run (its reliable
//      link restores the model assumptions the faults break);
//   2. the stock algorithm is *flagged* under message loss -- either
//      non-linearizable or stalled -- demonstrating the assumptions are
//      load-bearing, not decorative;
//   3. every failed run is attributed by the assumption monitor to a
//      concrete violated assumption (no unexplained failures).
//
// The price of hardening is quantified against a fault-free baseline:
// hardened waits are computed from the widened effective delivery bound
// d_eff, so worst-case latency degrades by exactly that factor.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/system.h"
#include "harness/experiment.h"
#include "harness/latency.h"

namespace linbound {

/// One fault intensity: probabilities applied to every send.
struct FaultCell {
  double drop_p = 0.0;
  double dup_p = 0.0;
  double spike_p = 0.0;
  Tick spike_max = 0;  ///< spikes are uniform in [1, spike_max]

  std::string label() const;
};

struct FaultSweepOptions {
  int n = 4;
  SystemTiming timing;
  Tick x = 0;           ///< Algorithm 1's trade-off parameter
  int seeds = 5;        ///< randomized runs per cell
  Tick think_time = 0;  ///< client think time between operations
  /// Grid of fault intensities; empty means default_fault_cells().
  std::vector<FaultCell> cells;
  /// Link-layer knobs for the hardened runs.  spike_margin is overridden
  /// per cell with the cell's spike_max (the link must absorb the worst
  /// injected boost).
  HardenedParams hardened;
  std::uint64_t base_seed = 0xfa017'5eedULL;
  /// Worker threads (common/parallel.h); every (cell, seed) run is an
  /// independent deterministic simulation, aggregated in canonical order,
  /// so any value produces byte-identical results.
  int jobs = 1;
  /// Future-event-list implementation for every run's simulator; results
  /// are byte-identical at either value (sim/event_queue.h).
  EventQueueImpl queue_impl = EventQueueImpl::kCalendar;
  /// Checker configuration for every run's (possibly pending-laden)
  /// history; verdicts are identical at any value.
  CheckOptions check;
};

/// The standard grid: drops alone, duplicates alone, spikes alone, and the
/// combined mix, each at two intensities.
std::vector<FaultCell> default_fault_cells(const SystemTiming& timing);

/// Per-(cell) aggregate over the seeds.
struct FaultCellResult {
  FaultCell cell;
  int runs = 0;  ///< seeds per variant

  int hardened_linearizable = 0;
  int hardened_complete = 0;  ///< runs that quiesced with nothing pending
  std::int64_t retransmissions = 0;
  std::int64_t duplicates_suppressed = 0;

  int unhardened_linearizable = 0;
  int unhardened_flagged = 0;  ///< non-linearizable or stalled

  int failures_attributed = 0;    ///< flagged runs the monitor explained
  int failures_unattributed = 0;  ///< flagged runs with no violation found

  LatencyReport hardened_latency;
  std::vector<std::string> notes;  ///< one line per noteworthy run
};

struct FaultSweepResult {
  /// Fault-free stock Algorithm 1 over the same delay seeds: the latency
  /// yardstick the hardened numbers are compared against.
  LatencyReport clean_latency;
  std::vector<FaultCellResult> cells;

  /// Claim 1: every hardened run, every cell, linearizable.
  bool hardened_all_linearizable() const;
  /// Claim 2: every cell injecting drops flagged the stock algorithm in at
  /// least one run.
  bool unhardened_flagged_under_drops() const;
  /// Claim 3: no flagged run went unexplained.
  bool all_failures_attributed() const;

  /// The three claims together.
  bool ok() const {
    return hardened_all_linearizable() && unhardened_flagged_under_drops() &&
           all_failures_attributed();
  }

  /// Formatted per-cell table (for bench_fault_sweep).
  std::string table() const;
};

/// Run the sweep: for each cell and seed, one hardened and one stock run
/// over identical fault and delay randomness, plus one fault-free stock run
/// per seed as the latency baseline.
FaultSweepResult run_fault_sweep(const std::shared_ptr<const ObjectModel>& model,
                                 const WorkloadFactory& workload,
                                 const FaultSweepOptions& options);

}  // namespace linbound
