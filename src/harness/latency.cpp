#include "harness/latency.h"

#include <algorithm>
#include <sstream>

namespace linbound {

void LatencySummary::record(Tick latency) {
  if (count == 0 || latency < min) min = latency;
  if (count == 0 || latency > max) max = latency;
  ++count;
  total += latency;
  samples.push_back(latency);
}

Tick LatencySummary::percentile(double p) const {
  if (samples.empty()) return kNoTime;
  std::vector<Tick> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  if (p <= 0) return sorted.front();
  if (p >= 100) return sorted.back();
  // Nearest-rank: ceil(p/100 * n), 1-indexed.
  const auto rank = static_cast<std::size_t>(
      (p * static_cast<double>(sorted.size()) + 99.999) / 100.0);
  return sorted[std::min(rank, sorted.size()) - 1];
}

std::string LatencySummary::to_string() const {
  std::ostringstream os;
  os << "min=" << min << " p50=" << percentile(50) << " p99=" << percentile(99)
     << " max=" << max << " mean=" << mean() << " n=" << count;
  return os.str();
}

void LatencyReport::absorb(const ObjectModel& model, const Trace& trace) {
  for (const OperationRecord& rec : trace.ops) {
    if (!rec.completed()) continue;
    const Tick latency = rec.latency();
    by_code[rec.op.code].record(latency);
    by_class[model.classify(rec.op)].record(latency);
  }
}

void LatencyReport::merge(const LatencyReport& other) {
  for (const auto& [code, summary] : other.by_code) {
    LatencySummary& mine = by_code[code];
    if (summary.count == 0) continue;
    if (mine.count == 0 || summary.min < mine.min) mine.min = summary.min;
    if (mine.count == 0 || summary.max > mine.max) mine.max = summary.max;
    mine.count += summary.count;
    mine.total += summary.total;
    mine.samples.insert(mine.samples.end(), summary.samples.begin(),
                        summary.samples.end());
  }
  for (const auto& [cls, summary] : other.by_class) {
    LatencySummary& mine = by_class[cls];
    if (summary.count == 0) continue;
    if (mine.count == 0 || summary.min < mine.min) mine.min = summary.min;
    if (mine.count == 0 || summary.max > mine.max) mine.max = summary.max;
    mine.count += summary.count;
    mine.total += summary.total;
    mine.samples.insert(mine.samples.end(), summary.samples.begin(),
                        summary.samples.end());
  }
}

Tick LatencyReport::worst_for_code(OpCode code) const {
  auto it = by_code.find(code);
  return it == by_code.end() ? kNoTime : it->second.max;
}

Tick LatencyReport::worst_for_class(OpClass cls) const {
  auto it = by_class.find(cls);
  return it == by_class.end() ? kNoTime : it->second.max;
}

}  // namespace linbound
