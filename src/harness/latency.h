// Latency accounting over recorded runs.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/time.h"
#include "sim/trace.h"
#include "spec/object_model.h"

namespace linbound {

struct LatencySummary {
  Tick min = kNoTime;
  Tick max = kNoTime;
  std::int64_t count = 0;
  Tick total = 0;
  /// All samples, kept for exact percentiles (runs are small; the whole
  /// suite records thousands of operations, not millions).
  std::vector<Tick> samples;

  void record(Tick latency);

  double mean() const { return count ? static_cast<double>(total) / count : 0.0; }

  /// Exact percentile by nearest-rank (p in [0, 100]); kNoTime when empty.
  Tick percentile(double p) const;

  std::string to_string() const;
};

/// Latencies keyed by opcode and by Chapter V class.
struct LatencyReport {
  std::map<OpCode, LatencySummary> by_code;
  std::map<OpClass, LatencySummary> by_class;

  void absorb(const ObjectModel& model, const Trace& trace);
  void merge(const LatencyReport& other);

  Tick worst_for_code(OpCode code) const;
  Tick worst_for_class(OpClass cls) const;
};

}  // namespace linbound
