#include "harness/mode_sweep.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/parallel.h"
#include "core/driver.h"
#include "fault/churn.h"

namespace linbound {
namespace {

/// Worst injected one-way delay boost the hardened link must absorb.
Tick boost_margin(const FaultConfig& faults) {
  Tick margin = faults.spike_max;
  for (const LinkFault& link : faults.links) {
    margin = std::max(margin, link.delay_max);
  }
  return margin;
}

struct OneRun {
  RunStatus status = RunStatus::kComplete;
  bool linearizable = false;
  std::string explanation;
  int downgrades = 0;
  int upgrades = 0;
  std::int64_t ops_invoked = 0;
  std::int64_t ops_answered = 0;
  std::vector<Tick> switch_latencies;

  bool complete() const { return status == RunStatus::kComplete; }
};

/// Pull the degradation metrics out of a finished run's trace.
void absorb_trace(const Trace& trace, OneRun* out) {
  std::vector<Tick> response_times;
  for (const OperationRecord& rec : trace.ops) {
    ++out->ops_invoked;
    if (rec.response_time != kNoTime) {
      ++out->ops_answered;
      response_times.push_back(rec.response_time);
    }
  }
  std::sort(response_times.begin(), response_times.end());
  for (const FaultEvent& f : trace.faults) {
    if (f.kind != FaultKind::kModeDowngrade &&
        f.kind != FaultKind::kModeUpgrade) {
      continue;
    }
    if (f.kind == FaultKind::kModeDowngrade) ++out->downgrades;
    if (f.kind == FaultKind::kModeUpgrade) ++out->upgrades;
    // Handoff pause: signal time to the next answered operation.  A switch
    // after the last response contributes no sample (nobody was waiting).
    const auto it = std::lower_bound(response_times.begin(),
                                     response_times.end(), f.time);
    if (it != response_times.end()) {
      out->switch_latencies.push_back(*it - f.time);
    }
  }
}

SystemOptions base_options(const ModeSweepOptions& options,
                           const FaultConfig& faults,
                           std::uint64_t delay_seed) {
  SystemOptions sys;
  sys.n = options.n;
  sys.timing = options.timing;
  sys.x = options.x;
  sys.delays = std::make_shared<UniformDelayPolicy>(options.timing, delay_seed);
  if (faults.any()) sys.faults = make_fault_policy(faults);
  return sys;
}

std::vector<ClientScript> make_scripts(const WorkloadFactory& workload,
                                       const ModeSweepOptions& options,
                                       std::uint64_t workload_seed) {
  Rng wl_rng(workload_seed);
  std::vector<ClientScript> scripts;
  scripts.reserve(static_cast<std::size_t>(options.n));
  for (int pid = 0; pid < options.n; ++pid) {
    Rng client_rng = wl_rng.split(static_cast<std::uint64_t>(pid));
    scripts.push_back(ClientScript{static_cast<ProcessId>(pid),
                                   workload(pid, client_rng),
                                   /*start_time=*/1000, options.think_time});
  }
  return scripts;
}

OneRun finish(ObjectSystem& system, const std::shared_ptr<const ObjectModel>& model,
              const CheckOptions& check_options) {
  const RunOutcome outcome = system.run_with_outcome();
  const CheckResult check = check_linearizable_with_pending(
      *model, outcome.history, outcome.pending, check_options);
  OneRun out;
  out.status = outcome.status;
  out.linearizable = check.ok;
  out.explanation = check.explanation;
  absorb_trace(system.sim().trace(), &out);
  return out;
}

OneRun run_switching(const std::shared_ptr<const ObjectModel>& model,
                     const WorkloadFactory& workload,
                     const ModeSweepOptions& options, const FaultConfig& faults,
                     std::uint64_t delay_seed, std::uint64_t workload_seed) {
  DegradeOptions dopt;
  dopt.base = base_options(options, faults, delay_seed);
  HardenedParams link;
  link.spike_margin = boost_margin(faults);
  dopt.base.hardened = link;
  dopt.switching = true;
  dopt.monitor = options.monitor;
  dopt.params = options.params;
  DegradeSystem system(model, dopt);

  // The switching system answers crash-cut operations itself from the
  // durable quorum log; a client retry would race that late response.
  WorkloadDriver driver(system.sim(), make_scripts(workload, options, workload_seed),
                        {}, {}, /*reissue_cut_ops=*/false);
  driver.arm();
  if (faults.churn.any()) {
    make_churn_schedule(faults, options.n).apply(system.sim());
  }
  return finish(system, model, options.check);
}

OneRun run_fixed(const std::shared_ptr<const ObjectModel>& model,
                 const WorkloadFactory& workload, const ModeSweepOptions& options,
                 const FaultConfig& faults, bool hardened,
                 std::uint64_t delay_seed, std::uint64_t workload_seed) {
  SystemOptions sys = base_options(options, faults, delay_seed);
  if (hardened) {
    HardenedParams link;
    link.spike_margin = boost_margin(faults);
    sys.hardened = link;
  }
  ReplicaSystem system(model, sys);
  // No client reissue, matching the switching runs: a crash-cut operation
  // stays pending -- the stall this sweep measures.  (Reissue could also
  // answer the old token late from durable state, and the two completions
  // would overlap within the process, which the checker rejects.)
  WorkloadDriver driver(system.sim(),
                        make_scripts(workload, options, workload_seed), {}, {},
                        /*reissue_cut_ops=*/false);
  driver.arm();
  if (faults.churn.any()) {
    make_churn_schedule(faults, options.n).apply(system.sim());
  }
  return finish(system, model, options.check);
}

}  // namespace

std::vector<ModeStormCell> default_mode_storm_cells(const SystemTiming& timing,
                                                    int n) {
  const Tick d = timing.d;
  std::vector<ModeStormCell> cells;

  // A barrage of delay spikes far past the envelope: enough violations to
  // trip the supervisor quickly, healing on its own once the workload ends.
  {
    ModeStormCell cell;
    cell.name = "spike-barrage";
    cell.faults.spike_p = 0.25;
    cell.faults.spike_max = 4 * d;
    cells.push_back(std::move(cell));
  }

  // A healed partition with spikes on top: messages both late and lost.
  {
    ModeStormCell cell;
    cell.name = "partition+spikes";
    cell.faults.spike_p = 0.15;
    cell.faults.spike_max = 4 * d;
    PartitionWindow w;
    w.from = 1500;
    w.until = w.from + 6 * d;
    w.component_of.assign(static_cast<std::size_t>(n), 0);
    w.component_of[0] = 1;
    cell.faults.partitions.push_back(std::move(w));
    cells.push_back(std::move(cell));
  }

  // The full cocktail: spikes, a partition, and minority crash churn.
  {
    ModeStormCell cell;
    cell.name = "full-storm";
    cell.faults.spike_p = 0.25;
    cell.faults.spike_max = 4 * d;
    PartitionWindow w;
    w.from = 1500;
    w.until = w.from + 6 * d;
    w.component_of.assign(static_cast<std::size_t>(n), 0);
    w.component_of[0] = 1;
    cell.faults.partitions.push_back(std::move(w));
    cell.faults.churn.mean_uptime = 10 * d;
    cell.faults.churn.mean_downtime = 2 * d;
    cell.faults.churn.start = 2000;
    cell.faults.churn.horizon = 20 * d;
    cell.faults.churn.max_down = (n - 1) / 2;
    cells.push_back(std::move(cell));
  }
  return cells;
}

bool ModeSweepResult::switching_always_available() const {
  for (const ModeCellResult& cell : cells) {
    if (cell.ops_answered != cell.ops_invoked) return false;
    if (cell.switching_complete != cell.runs) return false;
  }
  return !cells.empty();
}

bool ModeSweepResult::switching_always_linearizable() const {
  for (const ModeCellResult& cell : cells) {
    if (cell.switching_linearizable != cell.runs) return false;
  }
  return !cells.empty();
}

bool ModeSweepResult::fixed_mode_stalled_somewhere() const {
  for (const ModeCellResult& cell : cells) {
    if (cell.stock_complete < cell.runs || cell.hardened_complete < cell.runs) {
      return true;
    }
  }
  return false;
}

double ModeSweepResult::degraded_availability() const {
  std::int64_t invoked = 0, answered = 0;
  for (const ModeCellResult& cell : cells) {
    invoked += cell.ops_invoked;
    answered += cell.ops_answered;
  }
  return invoked == 0 ? 1.0
                      : static_cast<double>(answered) /
                            static_cast<double>(invoked);
}

Tick ModeSweepResult::switch_latency_percentile(double pct) const {
  std::vector<Tick> samples;
  for (const ModeCellResult& cell : cells) {
    samples.insert(samples.end(), cell.switch_latencies.begin(),
                   cell.switch_latencies.end());
  }
  if (samples.empty() || pct <= 0.0 || pct > 100.0) return kNoTime;
  std::sort(samples.begin(), samples.end());
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(pct / 100.0 * static_cast<double>(samples.size())));
  return samples[std::max<std::size_t>(rank, 1) - 1];
}

std::string ModeSweepResult::table() const {
  std::ostringstream os;
  os << std::left << std::setw(20) << "storm" << std::right << std::setw(12)
     << "switch-ok" << std::setw(10) << "answered" << std::setw(8) << "down"
     << std::setw(6) << "up" << std::setw(10) << "stock-ok" << std::setw(12)
     << "hardened-ok" << "\n";
  for (const ModeCellResult& cell : cells) {
    os << std::left << std::setw(20) << cell.cell.name << std::right
       << std::setw(9) << cell.switching_linearizable << "/" << cell.runs
       << std::setw(6) << cell.ops_answered << "/" << cell.ops_invoked
       << std::setw(6) << cell.downgrades << std::setw(6) << cell.upgrades
       << std::setw(7) << cell.stock_complete << "/" << cell.runs
       << std::setw(9) << cell.hardened_complete << "/" << cell.runs << "\n";
  }
  const Tick p99 = switch_latency_percentile(99.0);
  os << "availability=" << std::fixed << std::setprecision(4)
     << degraded_availability() << " switch-latency-p99="
     << (p99 == kNoTime ? std::string("-") : std::to_string(p99)) << "\n";
  return os.str();
}

ModeSweepResult run_mode_sweep(const std::shared_ptr<const ObjectModel>& model,
                               const WorkloadFactory& workload,
                               const ModeSweepOptions& options) {
  ModeSweepResult result;
  const std::vector<ModeStormCell> cells =
      options.cells.empty() ? default_mode_storm_cells(options.timing, options.n)
                            : options.cells;

  const auto delay_seed = [&](int seed) {
    return options.base_seed +
           0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(seed);
  };
  const auto workload_seed = [&](int seed) {
    return options.base_seed ^
           (0xd1b54a32d192ed03ULL +
            0x2545f4914f6cdd1dULL * static_cast<std::uint64_t>(seed));
  };

  struct CellRuns {
    OneRun switching;
    OneRun stock;
    OneRun hardened;
  };
  const std::size_t seeds = static_cast<std::size_t>(options.seeds);
  const ParallelSweepExecutor executor(options.jobs);
  const std::vector<CellRuns> grid = executor.map<CellRuns>(
      cells.size() * seeds, [&](std::size_t i) {
        const std::size_t ci = i / seeds;
        const int seed = static_cast<int>(i % seeds);
        FaultConfig faults = cells[ci].faults;
        faults.seed = options.base_seed + 0xbf58476d1ce4e5b9ULL * (ci + 1) +
                      static_cast<std::uint64_t>(seed);
        CellRuns runs;
        runs.switching = run_switching(model, workload, options, faults,
                                       delay_seed(seed), workload_seed(seed));
        if (options.also_fixed) {
          runs.stock = run_fixed(model, workload, options, faults,
                                 /*hardened=*/false, delay_seed(seed),
                                 workload_seed(seed));
          runs.hardened = run_fixed(model, workload, options, faults,
                                    /*hardened=*/true, delay_seed(seed),
                                    workload_seed(seed));
        }
        return runs;
      });

  for (std::size_t ci = 0; ci < cells.size(); ++ci) {
    ModeCellResult cell_result;
    cell_result.cell = cells[ci];
    for (int seed = 0; seed < options.seeds; ++seed) {
      const CellRuns& runs = grid[ci * seeds + static_cast<std::size_t>(seed)];
      const OneRun& sw = runs.switching;
      ++cell_result.runs;
      if (sw.complete()) ++cell_result.switching_complete;
      if (sw.linearizable) ++cell_result.switching_linearizable;
      cell_result.downgrades += sw.downgrades;
      cell_result.upgrades += sw.upgrades;
      cell_result.ops_invoked += sw.ops_invoked;
      cell_result.ops_answered += sw.ops_answered;
      cell_result.switch_latencies.insert(cell_result.switch_latencies.end(),
                                          sw.switch_latencies.begin(),
                                          sw.switch_latencies.end());
      if (options.also_fixed) {
        if (runs.stock.complete()) ++cell_result.stock_complete;
        if (runs.hardened.complete()) ++cell_result.hardened_complete;
      }
      if (!sw.complete() || !sw.linearizable) {
        std::ostringstream note;
        note << "switching seed=" << seed << " [" << cells[ci].name
             << "] status=" << run_status_name(sw.status)
             << (sw.linearizable ? "" : " NON-LINEARIZABLE: " + sw.explanation);
        cell_result.notes.push_back(note.str());
      }
    }
    result.cells.push_back(std::move(cell_result));
  }
  return result;
}

}  // namespace linbound
