// The degradation counterpart of harness/fault_sweep.h: sweep the
// mode-switching system (src/degrade) over a grid of *storms* -- delay-spike
// barrages, healed partitions, minority crash churn -- heavy enough to break
// the paper's timing envelope, and quantify what graceful degradation buys:
//
//   1. availability: the switching system answers every invoked operation
//      in every storm that heals, where the fixed-mode variants (stock and
//      hardened Algorithm 1, run over the same storms for comparison) are
//      driven to stalls;
//   2. safety: every switching run is linearizable, downgrades and all;
//   3. price: the mode-switch handoff latency (signal to next answered
//      operation) and the per-run downgrade/upgrade counts, aggregated so
//      bench_degrade can report mode_switch_latency_p99 and
//      degraded_availability.
//
// Every (cell, seed) run is an independent deterministic simulation, so the
// sweep parallelizes over common/parallel.h with byte-identical results at
// any job count.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/system.h"
#include "degrade/degrade_system.h"
#include "fault/fault_policy.h"
#include "harness/experiment.h"

namespace linbound {

/// One storm: a named fault cocktail (spikes, partitions, links, churn).
struct ModeStormCell {
  std::string name;
  FaultConfig faults;
};

struct ModeSweepOptions {
  int n = 4;
  SystemTiming timing;
  Tick x = 0;           ///< Algorithm 1's trade-off parameter (sync eras)
  int seeds = 5;        ///< randomized runs per cell
  Tick think_time = 0;  ///< client think time between operations
  /// Storm grid; empty means default_mode_storm_cells().
  std::vector<ModeStormCell> cells;
  /// Supervisor and switching knobs (defaults are the shipped ones).
  MonitorOptions monitor;
  SwitchingParams params;
  /// Also run stock and hardened Algorithm 1 over every (cell, seed) as the
  /// fixed-mode comparison column.
  bool also_fixed = true;
  std::uint64_t base_seed = 0xdeb'ade'5eedULL;
  int jobs = 1;  ///< worker threads; results identical at any value
  CheckOptions check;
};

/// The standard storms: a spike barrage, a healed partition under spikes,
/// and the full cocktail with minority churn on top.
std::vector<ModeStormCell> default_mode_storm_cells(const SystemTiming& timing,
                                                    int n);

/// Per-cell aggregate over the seeds.
struct ModeCellResult {
  ModeStormCell cell;
  int runs = 0;

  int switching_complete = 0;      ///< quiesced with nothing pending
  int switching_linearizable = 0;
  int downgrades = 0;              ///< summed over the cell's runs
  int upgrades = 0;
  std::int64_t ops_invoked = 0;
  std::int64_t ops_answered = 0;
  /// One sample per mode-switch signal: time from the signal to the next
  /// answered operation (the handoff pause clients actually feel).
  std::vector<Tick> switch_latencies;

  int stock_complete = 0;     ///< fixed-mode comparison (also_fixed)
  int hardened_complete = 0;
  std::vector<std::string> notes;  ///< one line per noteworthy run
};

struct ModeSweepResult {
  std::vector<ModeCellResult> cells;

  /// Claim 1: the switching system answered everything, every cell.
  bool switching_always_available() const;
  /// Claim 2: every switching run linearizable.
  bool switching_always_linearizable() const;
  /// Claim 3 (only meaningful with also_fixed): some storm stalled a
  /// fixed-mode variant, so the comparison is non-vacuous.
  bool fixed_mode_stalled_somewhere() const;

  bool ok() const {
    return switching_always_available() && switching_always_linearizable();
  }

  /// Fraction of invoked operations answered by the switching system.
  double degraded_availability() const;
  /// Nearest-rank percentile over every switch-latency sample (pct in
  /// (0, 100]); kNoTime when no switch fired anywhere.
  Tick switch_latency_percentile(double pct) const;

  /// Formatted per-cell table (for bench_degrade).
  std::string table() const;
};

/// Run the sweep: per (cell, seed) one switching run, plus one stock and
/// one hardened run over the same delays/workload/faults when also_fixed.
ModeSweepResult run_mode_sweep(const std::shared_ptr<const ObjectModel>& model,
                               const WorkloadFactory& workload,
                               const ModeSweepOptions& options);

}  // namespace linbound
