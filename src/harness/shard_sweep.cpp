#include "harness/shard_sweep.h"

#include <sstream>

#include "common/parallel.h"

namespace linbound {

std::string ShardSweepReport::summary() const {
  std::ostringstream os;
  os << run.shards.size() << " shards, " << run.total_ops << " ops, "
     << run.total_events << " events, " << run.windows << " windows, "
     << run.beacons << " beacons";
  if (!reference_hashes.empty()) {
    os << "; identity "
       << (identity_failures.empty()
               ? "ok"
               : std::to_string(identity_failures.size()) + " FAILED");
  }
  if (!checks.shards.empty()) {
    os << "; checks " << (checks.all_ok ? "ok" : "FAILED");
  }
  os << "; availability " << availability;
  if (run.aborted) os << " (" << run.aborted << " aborted)";
  return os.str();
}

ShardSweepReport run_shard_sweep(const ShardSweepOptions& options) {
  ShardSweepReport report;
  ShardedSimulation sim(options.shard);
  report.run = sim.run(options.jobs);
  const std::size_t shards = report.run.shards.size();

  if (options.verify_identity) {
    // References are themselves single-threaded per shard, but independent
    // of each other, so the pool recomputes them concurrently.
    const ParallelSweepExecutor exec(resolve_jobs(options.jobs));
    report.reference_hashes =
        exec.map<std::uint64_t>(shards, [&](std::size_t i) {
          return sim.run_solo(static_cast<int>(i)).trace_hash;
        });
    for (std::size_t i = 0; i < shards; ++i) {
      if (report.reference_hashes[i] != report.run.shards[i].trace_hash) {
        report.identity_failures.push_back(static_cast<int>(i));
      }
    }
  }

  if (options.check) {
    std::vector<const Trace*> traces;
    traces.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i) {
      traces.push_back(&sim.trace(static_cast<int>(i)));
    }
    MultiCheckOptions mc;
    mc.check = options.check_options;
    mc.jobs = options.jobs;
    mc.streaming = options.streaming;
    mc.streaming_options = options.streaming_options;
    report.checks = check_shards(sim.model(), traces, mc);
  }

  // Serial canonical-order aggregation, after the parallel phases: the
  // merged report is byte-identical at any --jobs value.
  int complete = 0;
  for (std::size_t i = 0; i < shards; ++i) {
    report.latency.absorb(sim.model(), sim.trace(static_cast<int>(i)));
    if (report.run.shards[i].status == RunStatus::kComplete) ++complete;
  }
  report.availability =
      shards ? static_cast<double>(complete) / static_cast<double>(shards)
             : 1.0;
  return report;
}

}  // namespace linbound
