// The multi-tenant harness: run a ShardedSimulation, verify the per-shard
// determinism contract against single-threaded references, check every
// shard's linearizability, and aggregate latency/availability statistics in
// canonical shard order.
//
// This is the sharded sibling of run_fault_sweep / run_churn_sweep: one
// deterministic configuration in, one deterministic report out, with every
// aggregate byte-identical at any --jobs value (tests/test_shard.cpp and
// bench/bench_shard.cpp hold that line).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "checker/multi_check.h"
#include "harness/latency.h"
#include "shard/shard.h"

namespace linbound {

struct ShardSweepOptions {
  ShardOptions shard;
  /// Worker threads for the run, the references and the checks.
  int jobs = 1;
  /// Recompute every shard single-threaded (run_solo) and compare hashes.
  /// The differential heart of the harness; disable only for pure
  /// throughput measurements (bench_shard measures with and without).
  bool verify_identity = true;
  /// Check per-shard linearizability (skipped for pure perf runs).
  bool check = true;
  CheckOptions check_options;
  /// Route the per-shard checks through the streaming checker
  /// (MultiCheckOptions::streaming): identical verdicts/witnesses, O(open
  /// window) resident state per shard instead of O(history).  For checking
  /// *during* the run instead of after it, set shard.streaming_check.
  bool streaming = false;
  StreamingCheckOptions streaming_options;
};

struct ShardSweepReport {
  ShardRunReport run;                 ///< per-shard outcomes, canonical order
  std::vector<std::uint64_t> reference_hashes;  ///< empty if !verify_identity
  /// Shards whose parallel hash differs from the single-threaded
  /// reference; empty = contract held.
  std::vector<int> identity_failures;
  MultiCheckReport checks;            ///< empty if !check
  LatencyReport latency;              ///< merged over shards in shard order
  /// Fraction of shards that ended kComplete (availability under faults,
  /// budget aborts included in the denominator).
  double availability = 1.0;

  bool identity_ok() const { return identity_failures.empty(); }
  std::string summary() const;
};

ShardSweepReport run_shard_sweep(const ShardSweepOptions& options);

}  // namespace linbound
