#include "shard/shard.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/parallel.h"
#include "sim/delay_policy.h"
#include "sim/trace_io.h"
#include "types/register_type.h"

namespace linbound {
namespace {

// SplitRng stream ids of the sharded runtime.  Every random ingredient of a
// run is a pure function of (ShardOptions::seed, one of these, shard id),
// so adding shards, reordering construction or changing --jobs can never
// reshuffle another shard's draws.
constexpr std::uint64_t kLoadStream = 0x10adull;
constexpr std::uint64_t kBeaconStreamBase = 0xbea0'0000ull;
constexpr std::uint64_t kShardStreamBase = 0x51a2'd000'0000ull;
// Per-shard sub-streams (drawn from the shard's own SplitRng family).
constexpr std::uint64_t kDelayStream = 1;
constexpr std::uint64_t kFaultStream = 2;
constexpr std::uint64_t kWorkloadStream = 3;

}  // namespace

const char* shard_variant_name(ShardVariant variant) {
  switch (variant) {
    case ShardVariant::kStock:
      return "stock";
    case ShardVariant::kHardened:
      return "hardened";
    case ShardVariant::kRecoverable:
      return "recoverable";
  }
  return "?";
}

/// Everything one shard owns: its replica group (inside its own Simulator),
/// its workload, its churn schedule and its barrier-protocol cursor.
struct ShardedSimulation::ShardState {
  int shard = -1;
  std::unique_ptr<ReplicaSystem> system;
  std::unique_ptr<HeavyTrafficWorkload> workload;
  ChurnSchedule churn;
  std::size_t next_beacon = 0;
  std::size_t beacons_received = 0;
  bool aborted = false;
  /// Streaming check riding the shard's hooks (ShardOptions::streaming_check).
  /// Inline (jobs = 1): the checker advances on whichever PDES worker steps
  /// the shard's window; the inter-window barriers order those accesses, so
  /// the single-threaded checker core never runs concurrently with itself.
  std::unique_ptr<StreamingChecker> checker;
  CheckResult check_result;
  std::size_t check_max_window = 0;
  bool check_done = false;
  std::string check_error;

  Simulator& sim() { return system->sim(); }
  const Simulator& sim() const { return system->sim(); }
};

ShardedSimulation::ShardedSimulation(ShardOptions options)
    : opt_(std::move(options)), model_(std::make_shared<RegisterModel>()) {
  if (opt_.shards < 1) {
    throw std::invalid_argument("ShardedSimulation: need at least one shard");
  }
  if (opt_.replicas < 3) {
    throw std::invalid_argument(
        "ShardedSimulation: need >= 3 replicas per shard (process 0 takes "
        "beacons, >= 1 client, >= 1 spare)");
  }
  if (!opt_.timing.valid()) {
    throw std::invalid_argument("ShardedSimulation: invalid SystemTiming");
  }
  if (opt_.sync_epochs < 0) {
    throw std::invalid_argument("ShardedSimulation: negative sync_epochs");
  }
  opt_.faults.validate();
  // Message loss strands open-loop operations: a dropped message the link
  // layer cannot recover leaves an operation pending forever, and the next
  // arrival on that client violates the one-pending-operation model.  The
  // closed-loop WorkloadDriver tolerates that; this runtime's open-loop
  // workload does not, so loss-type adversaries are rejected up front.
  if (opt_.faults.drop_p > 0 || !opt_.faults.partitions.empty()) {
    throw std::invalid_argument(
        "ShardedSimulation: message-loss faults (drop_p, partitions) are "
        "unsupported with the open-loop shard workload");
  }
  for (const LinkFault& link : opt_.faults.links) {
    if (link.drop_p > 0) {
      throw std::invalid_argument(
          "ShardedSimulation: per-link drops are unsupported with the "
          "open-loop shard workload");
    }
  }
  if (!opt_.faults.stalls.empty()) {
    throw std::invalid_argument(
        "ShardedSimulation: stall windows defer client steps past the "
        "open-loop gap; unsupported in the sharded runtime");
  }
  if (opt_.faults.churn.any() && opt_.variant != ShardVariant::kRecoverable) {
    // Churned processes must rejoin with the state-transfer protocol.
    opt_.variant = ShardVariant::kRecoverable;
  }

  clients_ = opt_.clients > 0 ? opt_.clients : std::max(1, opt_.replicas - 2);
  if (clients_ > opt_.replicas - 1) {
    throw std::invalid_argument(
        "ShardedSimulation: clients must leave process 0 free for beacons "
        "(clients <= replicas - 1)");
  }
  if (opt_.faults.churn.any() && clients_ + 1 >= opt_.replicas) {
    throw std::invalid_argument(
        "ShardedSimulation: churn needs a replica that neither receives "
        "beacons nor invokes (clients <= replicas - 2)");
  }

  // Worst-case response bound of the variant: the open-loop gap and the
  // beacon spacing are derived from it so no process ever has two
  // operations pending at once.
  HardenedParams hp;
  hp.spike_margin = opt_.faults.spike_p > 0 ? opt_.faults.spike_max : 0;
  const Tick bound = opt_.variant == ShardVariant::kStock
                         ? opt_.timing.d + opt_.timing.eps
                         : hp.effective_d(opt_.timing) + opt_.timing.eps;
  min_gap_ = opt_.min_gap > 0 ? opt_.min_gap : bound + 1000;
  sync_interval_ = opt_.sync_interval > 0 ? opt_.sync_interval : 2 * min_gap_;
  if (sync_interval_ <= bound) {
    throw std::invalid_argument(
        "ShardedSimulation: sync_interval must exceed the response bound " +
        std::to_string(bound) + " (beacons would overlap on process 0)");
  }

  lookahead_ = opt_.lookahead > 0 ? opt_.lookahead : opt_.timing.min_delay();
  if (lookahead_ < 1) {
    throw std::invalid_argument(
        "ShardedSimulation: conservative lookahead requires d > u (a zero "
        "minimum delay admits same-instant cross-shard delivery)");
  }
  if (lookahead_ > opt_.timing.min_delay()) {
    throw std::invalid_argument(
        "ShardedSimulation: lookahead " + std::to_string(lookahead_) +
        " exceeds the minimum cross-shard delay d - u = " +
        std::to_string(opt_.timing.min_delay()));
  }

  loads_ = zipfian_shard_loads(opt_.shards, opt_.total_ops, opt_.zipf_s,
                               SplitRng(opt_.seed).stream_seed(kLoadStream));

  // The full cross-shard beacon schedule, fixed here and never touched by
  // execution: at epoch time E_k each shard's ring predecessor sends it a
  // beacon, delivered after an admissible delay in [lookahead, d] drawn
  // from the (epoch, destination) stream.
  const SplitRng root(opt_.seed);
  beacons_.assign(static_cast<std::size_t>(opt_.shards), {});
  const Tick spread = opt_.timing.max_delay() - lookahead_;
  for (int k = 0; k < opt_.sync_epochs; ++k) {
    const Tick send = opt_.start_time + static_cast<Tick>(k) * sync_interval_;
    for (int dst = 0; dst < opt_.shards; ++dst) {
      Rng draw = root.stream(kBeaconStreamBase +
                             static_cast<std::uint64_t>(k) *
                                 static_cast<std::uint64_t>(opt_.shards) +
                             static_cast<std::uint64_t>(dst));
      Tick delay = lookahead_ + (spread > 0 ? draw.uniform_tick(0, spread) : 0);
      if (k == 0 && dst == opt_.mutant_early_epoch_shard) {
        // Planted violation: delivered the instant it is sent, below every
        // possible lookahead -- the barrier validation must reject it.
        delay = 0;
      }
      beacons_[static_cast<std::size_t>(dst)].push_back(
          Beacon{k, dst, send, send + delay});
    }
    last_beacon_send_ = send;
  }
}

ShardedSimulation::~ShardedSimulation() = default;

std::unique_ptr<ShardedSimulation::ShardState> ShardedSimulation::build_shard(
    int shard) const {
  auto state = std::make_unique<ShardState>();
  state->shard = shard;
  const auto s = static_cast<std::size_t>(shard);
  // The shard's own stream family: a pure function of (seed, shard id).
  const SplitRng streams(SplitRng(opt_.seed).stream_seed(
      kShardStreamBase + static_cast<std::uint64_t>(shard)));

  SystemOptions so;
  so.n = opt_.replicas;
  so.timing = opt_.timing;
  so.x = opt_.x;
  so.queue_impl = opt_.queue_impl;
  so.delivery_mode = opt_.delivery_mode;
  so.max_events = opt_.max_events_per_shard;
  if (s < opt_.shard_budget_override.size() && opt_.shard_budget_override[s]) {
    so.max_events = opt_.shard_budget_override[s];
  }
  so.delays = std::make_shared<UniformDelayPolicy>(
      opt_.timing, streams.stream_seed(kDelayStream));

  FaultConfig faults = opt_.faults;
  faults.seed = streams.stream_seed(kFaultStream);
  if (faults.any()) so.faults = make_fault_policy(faults);

  HardenedParams hp;
  hp.spike_margin = faults.spike_p > 0 ? faults.spike_max : 0;
  if (opt_.variant == ShardVariant::kHardened) {
    so.hardened = hp;
  } else if (opt_.variant == ShardVariant::kRecoverable) {
    RecoverableParams rp;
    rp.link = hp;
    so.recoverable = rp;
  }

  state->system = std::make_unique<ReplicaSystem>(model_, so);
  // Per-shard pool sizing (sim/pool_set.h, applied through the workload's
  // arm() below plus the per-replica pending reserves here): each shard
  // worker owns warmed pools, so its steady-state window stepping does not
  // allocate -- and, more importantly under parallel drive, does not
  // contend on the global heap with other workers.
  for (int p = 0; p < opt_.replicas; ++p) {
    state->system->replica(static_cast<ProcessId>(p)).reserve_pending(64);
  }

  if (faults.churn.any()) {
    // Generate for the full group, then keep only processes that neither
    // receive beacons (process 0) nor invoke operations (1..clients): the
    // open-loop schedule cannot re-issue an operation a crash would cut.
    // Per-process streams (SplitRng) mean the filter leaves the surviving
    // processes' windows untouched.
    const ChurnSchedule full = make_churn_schedule(faults, opt_.replicas);
    std::vector<ChurnWindow> kept;
    for (const ChurnWindow& w : full.windows()) {
      if (w.pid > clients_) kept.push_back(w);
    }
    state->churn = ChurnSchedule(std::move(kept));
    state->churn.apply(state->sim());
  }

  HeavyTrafficOptions w;
  w.clients = clients_;
  w.first_client = 1;  // process 0 is the beacon target
  w.total_ops = loads_[s];
  w.start_time = opt_.start_time;
  w.min_gap = min_gap_;
  w.jitter = opt_.jitter;
  w.seed = streams.stream_seed(kWorkloadStream);
  w.batch = 1024;
  // Reservation hint: Algorithm 1 broadcasts to the group per operation,
  // and the hardened link acks each delivery.
  w.messages_per_op = static_cast<std::size_t>(opt_.replicas) + 2;
  // Arena volume per op: the broadcast payload plus (hardened/recoverable)
  // per-peer link frames, acks and destructor-list nodes.
  w.payload_bytes_per_op = opt_.variant == ShardVariant::kStock ? 256 : 1024;
  w.timer_slots_per_process = 128;
  w.events_per_tick = 4;
  state->workload =
      std::make_unique<HeavyTrafficWorkload>(state->sim(), std::move(w));

  if (opt_.streaming_check) {
    StreamingCheckOptions co;
    co.limits = opt_.streaming_check_limits;
    co.jobs = 1;  // inline: the PDES workers are the parallelism
    state->checker = std::make_unique<StreamingChecker>(*model_, co);
    state->checker->attach(state->sim());
  }

  state->sim().start();
  state->workload->arm();
  return state;
}

void ShardedSimulation::step_window(ShardState& state, Tick horizon) {
  if (state.sim().run_window(horizon) == WindowOutcome::kBudget) {
    state.aborted = true;
  }
}

void ShardedSimulation::run_terminal(ShardState& state) {
  // The terminal infinite window: no cross-shard input can arrive anymore,
  // so the shard drains to quiescence with no further barriers.  A false
  // return is the event budget tripping (Simulator::run contract).
  if (!state.sim().run()) state.aborted = true;
}

void ShardedSimulation::inject_beacons(ShardState& state, Tick horizon) const {
  const auto& schedule = beacons_[static_cast<std::size_t>(state.shard)];
  while (state.next_beacon < schedule.size() &&
         schedule[state.next_beacon].send < horizon) {
    const Beacon& b = schedule[state.next_beacon];
    if (b.recv < horizon) {
      // A beacon sent inside the window [window_start, horizon) that
      // arrives before the horizon would have had to be processed inside
      // the very window that just ran without it -- the conservative
      // lookahead was violated and the trace can no longer be trusted.
      throw std::logic_error(
          "ShardedSimulation: beacon for shard " + std::to_string(b.dst) +
          " epoch " + std::to_string(b.epoch) + " sent at " +
          std::to_string(b.send) + " arrives at " + std::to_string(b.recv) +
          " < window end " + std::to_string(horizon) +
          " -- cross-shard delay below the conservative lookahead");
    }
    state.sim().invoke_at(b.recv, /*pid=*/0, reg::read());
    ++state.next_beacon;
    ++state.beacons_received;
  }
}

void ShardedSimulation::finalize_check(ShardState& state) {
  if (!state.checker || state.check_done || !state.check_error.empty()) return;
  try {
    state.check_result = state.checker->finalize();
    state.check_max_window = state.checker->max_window_ops();
    state.check_done = true;
  } catch (const std::exception& e) {
    // A tripped state budget poisons this shard's verdict only; the run
    // (and every other shard's check) carries on.
    state.check_error = e.what();
  }
}

ShardResult ShardedSimulation::finish_shard(const ShardState& state) const {
  ShardResult r;
  r.shard = state.shard;
  const Trace& trace = state.sim().trace();
  r.status = state.aborted
                 ? RunStatus::kAborted
                 : (trace.complete() ? RunStatus::kComplete
                                     : RunStatus::kStalled);
  r.trace_hash = hash_trace(trace);
  r.events = state.sim().events_processed();
  r.ops = trace.ops.size();
  r.end_time = trace.end_time;
  r.deliver_batches = trace.stats.deliver_batches;
  r.batched_messages = trace.stats.batched_messages;
  if (state.check_done) {
    r.checked = true;
    r.check_ok = state.check_result.ok;
    r.check_states = state.check_result.states_explored;
    r.check_segments = state.check_result.segments;
    r.check_max_resident = state.check_result.max_resident_states;
    r.check_max_window = state.check_max_window;
  }
  r.check_error = state.check_error;
  return r;
}

ShardRunReport ShardedSimulation::drive(
    std::vector<std::unique_ptr<ShardState>>& states, int jobs,
    bool plant_extra) const {
  ShardRunReport report;
  const ParallelSweepExecutor exec(resolve_jobs(jobs));
  const std::size_t count = states.size();

  if (opt_.sync_epochs > 0) {
    for (Tick window_start = 0;; window_start += lookahead_) {
      const Tick horizon = window_start + lookahead_;
      // All shards advance to the horizon in parallel; map() returning is
      // the barrier.  An aborted shard stops stepping (its budget tripped;
      // the trace is frozen at the trip point) but stays in the report.
      exec.map<int>(count, [&](std::size_t i) {
        if (!states[i]->aborted) step_window(*states[i], horizon);
        return 0;
      });
      ++report.windows;
      // Barrier exchange, serially in canonical shard order: deliver every
      // beacon whose send time fell inside the closed window.  Each push
      // lands in its destination shard's private queue, so the cross-shard
      // iteration order cannot perturb any shard's push sequence.
      for (auto& state : states) {
        if (state->aborted) continue;
        inject_beacons(*state, horizon);
        if (plant_extra && state->shard == opt_.mutant_extra_op_shard &&
            report.windows == 1) {
          // Planted divergence (parallel runs only -- run_solo strips the
          // knob): one operation run_solo never schedules, so this shard's
          // hash must differ from its single-threaded reference.  Placed
          // two epochs past the last beacon so it cannot overlap a pending
          // beacon on process 0.
          state->sim().invoke_at(last_beacon_send_ + 2 * sync_interval_,
                                 /*pid=*/0, reg::read());
        }
      }
      if (horizon > last_beacon_send_) break;
    }
  }

  exec.map<int>(count, [&](std::size_t i) {
    if (!states[i]->aborted) run_terminal(*states[i]);
    // Final-window search on the same worker, right after the drain: the
    // checked run's only serial tail is per shard, not global.
    finalize_check(*states[i]);
    return 0;
  });

  // Canonical-order aggregation (hashing each trace is the expensive part,
  // so it runs on the pool; the result vector is ordered by index).
  report.shards = exec.map<ShardResult>(
      count, [&](std::size_t i) { return finish_shard(*states[i]); });
  for (std::size_t i = 0; i < count; ++i) {
    report.beacons += states[i]->beacons_received;
    report.total_events += report.shards[i].events;
    report.total_ops += report.shards[i].ops;
    report.deliver_batches += report.shards[i].deliver_batches;
    report.batched_messages += report.shards[i].batched_messages;
    if (report.shards[i].status == RunStatus::kAborted) ++report.aborted;
    if (report.shards[i].checked) {
      ++report.checked;
      if (!report.shards[i].check_ok) ++report.check_failures;
    }
  }
  return report;
}

ShardRunReport ShardedSimulation::run(int jobs) {
  std::vector<std::unique_ptr<ShardState>> states(
      static_cast<std::size_t>(opt_.shards));
  const ParallelSweepExecutor exec(resolve_jobs(jobs));
  // Construction is per-shard pure, so it parallelizes like the run itself;
  // each worker writes only its own slot.
  exec.map<int>(states.size(), [&](std::size_t i) {
    states[i] = build_shard(static_cast<int>(i));
    return 0;
  });
  ShardRunReport report = drive(states, jobs, /*plant_extra=*/true);
  states_ = std::move(states);
  return report;
}

ShardResult ShardedSimulation::run_solo(int shard) const {
  if (shard < 0 || shard >= opt_.shards) {
    throw std::out_of_range("ShardedSimulation::run_solo: unknown shard");
  }
  // The reference run never carries the planted extra operation: that
  // divergence is exactly what references exist to expose.
  std::vector<std::unique_ptr<ShardState>> states;
  states.push_back(build_shard(shard));
  return drive(states, /*jobs=*/1, /*plant_extra=*/false).shards.front();
}

const Trace& ShardedSimulation::trace(int shard) const {
  if (states_.empty()) {
    throw std::logic_error("ShardedSimulation::trace before run()");
  }
  if (shard < 0 || static_cast<std::size_t>(shard) >= states_.size()) {
    throw std::out_of_range("ShardedSimulation::trace: unknown shard");
  }
  return states_[static_cast<std::size_t>(shard)]->sim().trace();
}

}  // namespace linbound
