// Multi-tenant sharded simulation: many independent shared objects, each a
// full replica group inside its own deterministic Simulator, advanced in
// parallel by a conservative-PDES window protocol.
//
// The paper's delay uncertainty is the key: no message is delivered before
// d - u, so that quantity is a sound conservative lookahead.  All shards
// advance their local event queues to a global horizon T + lookahead
// (Simulator::run_window), then barrier, exchange cross-shard clock-sync
// beacons whose send times fell inside the closed window, and open the next
// window.  Once the (finite, configuration-pure) beacon schedule is
// exhausted no cross-shard event can ever arrive again, so the remaining
// run is one terminal infinite window per shard -- embarrassingly parallel.
//
// The determinism contract (DESIGN.md section 14): for every shard, the
// trace produced by the parallel run is byte-identical -- hash_trace equal,
// and therefore serialization equal -- to running that shard alone through
// the *same* window sequence single-threaded (run_solo), at any --jobs
// count.  Three properties carry the proof:
//
//   1. shard isolation: each shard owns its Simulator, so the (time,
//      priority, push-seq) tie-break order that makes a trace is confined
//      to the shard; no other shard's progress can interleave pushes;
//   2. configuration-pure exchange: the beacon schedule (epochs, sources,
//      delays, receive times) is a pure function of ShardOptions -- never
//      of any shard's execution state -- drawn from SplitRng streams;
//   3. identical stepping: run() and run_solo() drive a shard through the
//      same sequence of run_window horizons and barrier injections, so its
//      queue sees the same pushes and pops in the same order.
//
// Injected faults (duplication, delay spikes, stalls, churn) only ever
// *widen* delivery envelopes upward, so the d - u lookahead stays sound
// under every fault config this runtime accepts; the barrier validates
// receive times against the open window's end and throws std::logic_error
// on any beacon that would violate the lookahead (the planted
// mutant_early_epoch_shard knob exercises exactly that guard).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "checker/streaming_checker.h"
#include "core/system.h"
#include "core/workload.h"
#include "fault/fault_policy.h"
#include "sim/simulator.h"

namespace linbound {

/// Which replica implementation each shard's group runs.
enum class ShardVariant {
  kStock,        ///< Algorithm 1 as in the paper (reliable network only)
  kHardened,     ///< loss/duplication-tolerant link (core/hardened_replica.h)
  kRecoverable,  ///< hardened link + crash-recovery rejoin protocol
};

const char* shard_variant_name(ShardVariant variant);

struct ShardOptions {
  int shards = 8;
  /// Replicas per shard.  Process 0 of every shard is reserved for incoming
  /// clock-sync beacons; client invocations target processes 1..clients.
  int replicas = 4;
  SystemTiming timing;
  Tick x = 0;  ///< Algorithm 1 trade-off parameter
  ShardVariant variant = ShardVariant::kStock;
  /// Per-shard fault mix.  The seed field is ignored: every shard derives
  /// its own fault seed from `seed` below, so shard k's adversary is a pure
  /// function of (seed, k).  Message *loss* (drop_p, partitions, links) is
  /// rejected here: the open-loop workload cannot re-issue an operation a
  /// permanently-lost message would strand, and a stranded operation makes
  /// the next open-loop arrival on that client a model violation.  Churn
  /// requires (and auto-promotes to) the recoverable variant, and only
  /// touches processes that neither receive beacons nor invoke operations.
  FaultConfig faults;
  /// Operations across ALL shards, apportioned by zipfian_shard_loads.
  std::size_t total_ops = 8192;
  double zipf_s = 0.9;  ///< zipfian popularity exponent (0 = uniform)
  /// Invoking processes per shard; 0 = replicas - 2 (leaving process 0 for
  /// beacons and at least one replica free for churn), minimum 1.
  int clients = 0;
  Tick start_time = 1000;
  /// Per-client inter-arrival floor; 0 = auto: the variant's worst-case
  /// response bound (d + eps stock, d_eff + eps hardened/recoverable) plus
  /// a 1000-tick margin, so open-loop arrivals never overlap a pending
  /// operation.
  Tick min_gap = 0;
  Tick jitter = 97;
  std::uint64_t seed = 0x5eed'ed0bULL;
  /// Per-shard event budget (each shard's SimConfig.max_events).  A shard
  /// that trips its own budget aborts alone -- RunStatus::kAborted with its
  /// shard id in the ShardResult -- without draining any other shard's.
  std::size_t max_events_per_shard = 10'000'000;
  /// Per-shard overrides of max_events_per_shard (tests plant a tiny budget
  /// on one shard to pin abort attribution); 0 or out-of-range = default.
  std::vector<std::size_t> shard_budget_override;
  /// Cross-shard clock-sync epochs: at E_k = start_time + k*sync_interval
  /// every shard's ring predecessor emits a beacon to it, delivered as a
  /// register read on process 0 after an admissible delay in [d-u, d].
  /// 0 epochs = no cross-shard traffic (pure terminal-window run).
  int sync_epochs = 4;
  /// Epoch spacing; 0 = auto: twice the effective min_gap (beacons on
  /// process 0 can never overlap their own response bound).
  Tick sync_interval = 0;
  /// Conservative lookahead; 0 = auto: timing.min_delay() = d - u.  Must
  /// not exceed the minimum cross-shard delay or construction throws.
  Tick lookahead = 0;
  EventQueueImpl queue_impl = EventQueueImpl::kCalendar;
  /// Per-shard delivery batching (sim/simulator.h DeliveryMode); both modes
  /// yield byte-identical per-shard traces at every job count.
  DeliveryMode delivery_mode = DeliveryMode::kBatched;

  // --- planted-mutant knobs (tests only) ---
  /// Shard whose epoch-0 beacon is delivered *before* the window ends,
  /// violating the conservative lookahead; the barrier validation must
  /// catch it (std::logic_error).  -1 = off.
  int mutant_early_epoch_shard = -1;
  /// Shard that receives one extra cross-shard operation in the parallel
  /// run only (not in run_solo), so its parallel hash must diverge from its
  /// single-threaded reference; the differential tests must catch it.
  /// -1 = off.
  int mutant_extra_op_shard = -1;

  /// Check each shard's history for linearizability *while it runs*: a
  /// per-shard StreamingChecker rides the shard's Simulator hooks (inline,
  /// jobs = 1 -- the PDES workers are the parallelism) and its final-window
  /// search runs right after the shard's terminal drain, on the same
  /// worker.  Observation only: hooks never touch the event schedule, so
  /// per-shard traces and hashes stay byte-identical to an unchecked run at
  /// every --jobs value.  Results land in ShardResult::check*.
  bool streaming_check = false;
  /// State budget per shard for the streaming check.  A shard that trips it
  /// reports check_error instead of aborting the whole run.
  CheckLimits streaming_check_limits;
};

/// Outcome of one shard's run, in canonical shard order.
struct ShardResult {
  int shard = -1;
  RunStatus status = RunStatus::kComplete;
  std::uint64_t trace_hash = 0;  ///< hash_trace of the shard's trace
  std::size_t events = 0;        ///< events processed by the shard's Simulator
  std::size_t ops = 0;           ///< trace ops (workload + received beacons)
  Tick end_time = 0;             ///< trace end time
  std::uint64_t deliver_batches = 0;   ///< TraceStats: delivery batches run
  std::uint64_t batched_messages = 0;  ///< TraceStats: deliveries in batches

  // --- streaming check (ShardOptions::streaming_check only) ---
  bool checked = false;   ///< a streaming verdict was produced
  bool check_ok = false;  ///< the shard's history is linearizable
  std::size_t check_states = 0;        ///< CheckResult::states_explored
  std::size_t check_segments = 0;      ///< confirmed cuts + 1
  std::size_t check_max_resident = 0;  ///< CheckResult::max_resident_states
  std::size_t check_max_window = 0;    ///< StreamingChecker::max_window_ops
  /// Non-empty when the check itself failed (state budget); checked stays
  /// false then.
  std::string check_error;
};

struct ShardRunReport {
  std::vector<ShardResult> shards;  ///< canonical order, size == options.shards
  std::size_t windows = 0;          ///< conservative windows before terminal
  std::size_t beacons = 0;          ///< cross-shard beacons delivered
  std::size_t total_events = 0;
  std::size_t total_ops = 0;
  std::uint64_t deliver_batches = 0;   ///< summed over shards (0 under kPerMessage)
  std::uint64_t batched_messages = 0;  ///< summed over shards
  int aborted = 0;                  ///< shards that ended kAborted
  int checked = 0;                  ///< shards with a streaming verdict
  int check_failures = 0;           ///< shards whose verdict was "not linearizable"
};

class ShardedSimulation {
 public:
  /// Validates and freezes the configuration: derived values (lookahead,
  /// clients, min_gap, sync interval, per-shard loads, the full beacon
  /// schedule) are computed here, purely from `options`.
  /// Throws std::invalid_argument on rejected configurations (see
  /// ShardOptions::faults, u == d, too many clients, ...).
  explicit ShardedSimulation(ShardOptions options);
  ~ShardedSimulation();

  ShardedSimulation(const ShardedSimulation&) = delete;
  ShardedSimulation& operator=(const ShardedSimulation&) = delete;

  const ShardOptions& options() const { return opt_; }
  Tick lookahead() const { return lookahead_; }
  Tick min_gap() const { return min_gap_; }
  Tick sync_interval() const { return sync_interval_; }
  int clients() const { return clients_; }
  /// Workload operations apportioned to each shard (zipfian_shard_loads).
  const std::vector<std::size_t>& loads() const { return loads_; }

  /// Run every shard through the window protocol on `jobs` workers
  /// (resolve_jobs semantics; <= 1 is serial).  Shard traces are retained
  /// for trace()/checking until the next run() or destruction.
  ShardRunReport run(int jobs);

  /// Single-threaded reference for one shard: the identical window/barrier
  /// sequence with every other shard absent.  Self-contained (builds its
  /// own state; does not disturb a previous run()'s traces), so references
  /// for different shards may themselves be computed concurrently.
  ShardResult run_solo(int shard) const;

  /// Shard `shard`'s trace from the last run().  Throws std::logic_error
  /// before any run().
  const Trace& trace(int shard) const;

  /// The object model shards run (a register; shared, stateless spec).
  const ObjectModel& model() const { return *model_; }
  std::shared_ptr<const ObjectModel> model_ptr() const { return model_; }

 private:
  struct Beacon {
    int epoch = 0;
    int dst = 0;
    Tick send = 0;
    Tick recv = 0;
  };
  struct ShardState;

  std::unique_ptr<ShardState> build_shard(int shard) const;
  /// Step `state` to `horizon`; marks it aborted if its budget trips.
  static void step_window(ShardState& state, Tick horizon);
  /// Drain `state` to quiescence (the terminal infinite window).
  static void run_terminal(ShardState& state);
  /// Run the streaming checker's final-window search and stash the verdict
  /// on the state (no-op unless streaming_check; a state-budget trip is
  /// recorded as check_error rather than thrown).
  static void finalize_check(ShardState& state);
  /// Deliver every not-yet-injected beacon for `state`'s shard whose send
  /// time fell inside the window that just closed at `horizon`, validating
  /// recv >= horizon.
  void inject_beacons(ShardState& state, Tick horizon) const;
  ShardResult finish_shard(const ShardState& state) const;
  /// Drive one already-built set of shard states through the whole
  /// protocol; the shared implementation behind run() and run_solo().
  /// `plant_extra` enables the mutant_extra_op_shard knob (run() only --
  /// references must not carry the planted divergence).
  ShardRunReport drive(std::vector<std::unique_ptr<ShardState>>& states,
                       int jobs, bool plant_extra) const;

  ShardOptions opt_;
  std::shared_ptr<const ObjectModel> model_;
  Tick lookahead_ = 0;
  Tick min_gap_ = 0;
  Tick sync_interval_ = 0;
  int clients_ = 0;
  Tick last_beacon_send_ = kNoTime;  ///< kNoTime when sync_epochs == 0
  std::vector<std::size_t> loads_;
  std::vector<std::vector<Beacon>> beacons_;  ///< per dst shard, epoch order
  std::vector<std::unique_ptr<ShardState>> states_;  ///< last run()'s shards
};

}  // namespace linbound
