#include "shift/proof_scenarios.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace linbound {
namespace {

std::shared_ptr<MatrixDelayPolicy> make_matrix(int n, Tick default_delay) {
  return std::make_shared<MatrixDelayPolicy>(n, default_delay);
}

}  // namespace

std::vector<Scenario> thm_c1_paper_runs(const SystemTiming& timing,
                                        const Operation& op1,
                                        const Operation& op2, Tick t0) {
  const Tick d = timing.d;
  const Tick m = timing.m();
  std::vector<Scenario> runs;

  // R1 (Fig. 7): p_j = p1 lags the others by m (its clock reads the same
  // value m later in real time); d_{2,0} = d_{1,2} = d - m, all else d.
  {
    Scenario r1;
    r1.name = "C1/R1";
    r1.n = 3;
    r1.timing = timing;
    r1.clock_offsets = {0, -m, 0};
    auto matrix = make_matrix(3, d);
    matrix->set(2, 0, d - m);
    matrix->set(1, 2, d - m);
    r1.delays = matrix;
    r1.invocations = {{t0, 0, op1}, {t0 + m, 1, op2}};
    runs.push_back(r1);

    Scenario r1p = r1;
    r1p.name = "C1/R1'";
    r1p.invocations = {{t0, 0, op1}};
    runs.push_back(std::move(r1p));
  }

  // R2 (Fig. 8): the chopped-and-extended shift of R1 by x_1 = -m.  Both
  // operations start at t0 with aligned clocks; the inadmissible d+m delay
  // from p1 to p0 is replaced by the extension delay delta = d - m.
  {
    Scenario r2;
    r2.name = "C1/R2";
    r2.n = 3;
    r2.timing = timing;
    r2.clock_offsets = {0, 0, 0};
    auto matrix = make_matrix(3, d);
    matrix->set(0, 1, d - m);
    matrix->set(1, 0, d - m);  // the extension choice
    matrix->set(2, 0, d - m);
    r2.delays = matrix;
    r2.invocations = {{t0, 0, op1}, {t0, 1, op2}};
    runs.push_back(std::move(r2));
  }

  // R3 (Fig. 9): shift of R2 by x_0 = +m, chopped and extended; the
  // d - 2m delay from p0 to p1 is replaced by d.
  {
    Scenario r3;
    r3.name = "C1/R3";
    r3.n = 3;
    r3.timing = timing;
    r3.clock_offsets = {0, 0, 0};
    auto matrix = make_matrix(3, d);
    matrix->set(0, 2, d - m);
    r3.delays = matrix;
    r3.invocations = {{t0 + m, 0, op1}, {t0, 1, op2}};
    runs.push_back(r3);

    Scenario r3p = r3;
    r3p.name = "C1/R3'''";
    r3p.invocations = {{t0, 1, op2}};
    runs.push_back(std::move(r3p));
  }

  return runs;
}

Scenario oop_order_flip(const SystemTiming& timing, const Operation& op1,
                        const Operation& op2, Tick t0) {
  const Tick m = timing.m();
  Scenario s;
  s.name = "C1/order-flip";
  s.n = 3;
  s.timing = timing;
  s.clock_offsets = {0, m, 0};  // skew m <= eps: admissible
  s.delays = make_matrix(3, timing.d);
  // op2's timestamp is t0 + m; op1's is t0 + m - 1 < it, yet op1's
  // broadcast reaches p1 only at t0 + m - 1 + d.
  s.invocations = {{t0 + m - 1, 0, op1}, {t0, 1, op2}};
  return s;
}

MatrixDelayPolicy thm_d1_r1_matrix(const SystemTiming& timing, int n, int k) {
  if (k < 2 || k > n) throw std::invalid_argument("need 2 <= k <= n");
  if (timing.u % (2 * static_cast<Tick>(k)) != 0) {
    throw std::invalid_argument("thm_d1 matrices need u divisible by 2k");
  }
  MatrixDelayPolicy matrix(n, timing.d - timing.u / 2);
  for (ProcessId i = 0; i < k; ++i) {
    for (ProcessId j = 0; j < k; ++j) {
      if (i == j) continue;
      const Tick residue = ((i - j) % k + k) % k;
      matrix.set(i, j, timing.d - residue * (timing.u / k));
    }
  }
  return matrix;
}

std::vector<Tick> thm_d1_shift_vector(const SystemTiming& timing, int n, int k,
                                      int z) {
  if (timing.u % (2 * static_cast<Tick>(k)) != 0) {
    throw std::invalid_argument("thm_d1 shift needs u divisible by 2k");
  }
  std::vector<Tick> x(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < k; ++i) {
    const Tick residue = ((z - i) % k + k) % k;
    // x_i = u * (-(k-1)/2 + residue/k) = u * (-(k-1)*k + 2*residue) / (2k)
    const Tick numerator = -static_cast<Tick>(k) * (k - 1) + 2 * residue;
    x[static_cast<std::size_t>(i)] = timing.u * numerator / (2 * static_cast<Tick>(k));
  }
  return x;
}

Scenario thm_d1_paper_run(const SystemTiming& timing,
                          const std::vector<Operation>& mutators,
                          const Operation& probe, Tick t0) {
  const int k = static_cast<int>(mutators.size());
  const int n = std::max(k, 3);
  Scenario s;
  s.name = "D1/R1";
  s.n = n;
  s.timing = timing;
  s.clock_offsets.assign(static_cast<std::size_t>(n), 0);
  s.delays = std::make_shared<MatrixDelayPolicy>(thm_d1_r1_matrix(timing, n, k));
  for (int i = 0; i < k; ++i) {
    s.invocations.push_back({t0, static_cast<ProcessId>(i), mutators[static_cast<std::size_t>(i)]});
  }
  // The probe runs long after everything settles (>= t0 + 2u in the proof;
  // we leave several d of slack) on a process of our choice.
  s.invocations.push_back({t0 + 20 * timing.d, static_cast<ProcessId>(k % n), probe});
  return s;
}

Scenario mop_order_flip(const SystemTiming& timing, const Operation& mut_a,
                        const Operation& mut_b, const Operation& probe, Tick t0) {
  Scenario s;
  s.name = "D1/order-flip";
  s.n = 3;
  s.timing = timing;
  s.clock_offsets = {timing.eps, 0, 0};
  s.delays = make_matrix(3, timing.d);
  // mut_a acks at t0 + L; the builder cannot know L, so callers place mut_b
  // with scheduling helpers?  No: the ack latency of the variant under test
  // is deterministic, and the scenario is built for a specific variant; we
  // encode the dependence by convention: mut_b is invoked at t0 + eps - 1,
  // which lies strictly after the ack for every L <= eps - 2 (the regime
  // this run is meant to break) and gives mut_b the timestamp
  // t0 + eps - 1 < t0 + eps = mut_a's timestamp.
  s.invocations = {{t0, 0, mut_a},
                   {t0 + timing.eps - 1, 1, mut_b},
                   {t0 + 20 * timing.d, 2, probe}};
  return s;
}

std::vector<Scenario> pair_bound_battery(const SystemTiming& timing,
                                         const Operation& mut_a,
                                         const Operation& mut_b,
                                         const Operation& accessor,
                                         const AlgorithmDelays& algo, Tick t0) {
  const Tick a = algo.mop_ack;
  std::vector<Scenario> out;

  {
    Scenario s;
    s.name = "E1/pair-order-flip";
    s.n = 3;
    s.timing = timing;
    s.clock_offsets = {timing.eps, 0, 0};
    s.delays = make_matrix(3, timing.d);
    s.invocations = {{t0, 0, mut_a},
                     {t0 + a + 1, 1, mut_b},
                     {t0 + 30 * timing.d, 2, accessor}};
    out.push_back(std::move(s));
  }

  {
    Scenario s;
    s.name = "E1/accessor-miss";
    s.n = 3;
    s.timing = timing;
    s.clock_offsets = {0, 0, 0};
    s.delays = make_matrix(3, timing.d);
    s.invocations = {{t0, 0, mut_a}, {t0 + a + 1, 1, accessor}};
    out.push_back(std::move(s));
  }

  {
    Scenario s;
    s.name = "E1/backdate-skip";
    s.n = 3;
    s.timing = timing;
    s.clock_offsets = {0, -timing.eps, 0};
    s.delays = make_matrix(3, timing.d);
    s.invocations = {{t0, 0, mut_a}, {t0 + a + 1, 1, accessor}};
    out.push_back(std::move(s));
  }

  {
    // Gap-mutator: mut_a (p0, ts s1) responds, then mut_b (p2, clock eps
    // behind, so ts s2 - eps) is invoked.  The accessor (p1) is timed so
    // that mut_b's broadcast (fast path d-u) arrives and is included by
    // timestamp while mut_a's (slow path d) is still in flight.  Its local
    // copy then holds mut_b without mut_a -- a state no legal prefix of any
    // permutation with mut_a before mut_b can produce.
    Scenario s;
    s.name = "E1/gap-mutator";
    s.n = 3;
    s.timing = timing;
    s.clock_offsets = {0, 0, -timing.eps};
    auto matrix = make_matrix(3, timing.d);
    matrix->set(2, 1, timing.d - timing.u);
    s.delays = matrix;
    const Tick s1 = t0;
    const Tick s2 = s1 + a + 1;  // after mut_a's response: real-time ordered
    // Feasibility window for the accessor's invocation t_pk:
    //   miss mut_a:    t_pk + B <= s1 + d - 1
    //   hit mut_b:     t_pk + B >= s2 + d - u
    //   include mut_b: t_pk - eps(?) ... ts(mut_b) = s2 - eps < t_pk - X
    const Tick b = algo.aop_respond;
    const Tick x = algo.aop_backdate;
    Tick t_pk = s1 + timing.d - 1 - b;  // latest missing point
    const Tick include_min = s2 - timing.eps + x + 1;
    const Tick hit_min = s2 + timing.d - timing.u - b;
    if (t_pk < include_min) t_pk = include_min;  // may make the run benign
    if (t_pk < hit_min) t_pk = hit_min;
    if (t_pk <= s1) t_pk = s1 + 1;
    s.invocations = {{s1, 0, mut_a}, {s2, 2, mut_b}, {t_pk, 1, accessor}};
    out.push_back(std::move(s));
  }

  return out;
}

Scenario chained_schedule(std::string name, const SystemTiming& timing, int n,
                          const std::vector<ChainEntry>& entries, Tick t0) {
  Scenario s;
  s.name = std::move(name);
  s.n = n;
  s.timing = timing;
  s.clock_offsets.assign(static_cast<std::size_t>(n), 0);
  s.delays = make_matrix(n, timing.d);
  Tick at = t0;
  for (const ChainEntry& entry : entries) {
    s.invocations.push_back({at, entry.pid, entry.op});
    at += entry.assumed_latency + 1;
  }
  return s;
}

}  // namespace linbound
