// Builders for the runs used by the paper's lower-bound proofs and their
// executable violation demonstrations.
//
// Two kinds of scenario live here:
//
//  * *Paper runs*: the exact configurations (clock offsets, pairwise delay
//    matrices, invocation times) of the proofs of Theorems C.1 and D.1 --
//    R1/R2/R3 of Fig. 6-9 and the R1/R2 of Fig. 10-14.  These narrate the
//    proof: the compliant algorithm stays linearizable on all of them, and
//    the benches display the shift/chop bookkeeping.
//
//  * *Violation runs*: admissible runs on which the eager (too fast)
//    variants of Algorithm 1 demonstrably violate linearizability at
//    latencies just below each theorem's bound.  The proofs show *no*
//    algorithm below the bound survives every admissible run; the violation
//    runs pin down where this particular timestamp-based family breaks.
#pragma once

#include <vector>

#include "shift/scenario.h"

namespace linbound {

// ---------------------------------------------------------------- Thm C.1

/// The proof's five runs for two strongly-INSC operations op1 (invoked by
/// p0 = the paper's p_i) and op2 (p1 = p_j), n = 3: R1, R1' (only op1), R2,
/// R3 and R3''' (only op2).  Base invocation time t0.
std::vector<Scenario> thm_c1_paper_runs(const SystemTiming& timing,
                                        const Operation& op1,
                                        const Operation& op2, Tick t0);

/// Admissible run on which an eager-OOP variant with total OOP latency
/// L <= d + m - 2 returns inconsistent values for two strongly-INSC
/// operations: p1's clock leads by m, p1 invokes op2 at t0 while p0 invokes
/// op1 at t0 + m - 1; op1 gets the smaller timestamp but reaches p1 only at
/// t0 + m - 1 + d, after p1's eager response.
Scenario oop_order_flip(const SystemTiming& timing, const Operation& op1,
                        const Operation& op2, Tick t0);

// ---------------------------------------------------------------- Thm D.1

/// The proof's R1 delay matrix (Fig. 10): d_{i,j} = d - ((i-j) mod k)/k * u
/// for i, j < k; everything touching a process >= k is d - u/2.
/// Requires u divisible by 2k.
MatrixDelayPolicy thm_d1_r1_matrix(const SystemTiming& timing, int n, int k);

/// The proof's shift vector (Step 2, Fig. 12-14), scaled to exact ticks:
/// x_i = u * (-(k-1)/2 + ((z-i) mod k)/k) for i < k, else 0.
/// Requires u divisible by 2k.
std::vector<Tick> thm_d1_shift_vector(const SystemTiming& timing, int n, int k,
                                      int z);

/// R1 of Theorem D.1: k mutators (one per process, all invoked at t0) under
/// the Fig. 10 matrix, followed by a probe accessor on process k % n once
/// everything settles.
Scenario thm_d1_paper_run(const SystemTiming& timing,
                          const std::vector<Operation>& mutators,
                          const Operation& probe, Tick t0);

/// Admissible run on which an eager-MOP variant with ack latency
/// L <= eps - 2 orders two *non-overlapping* mutators against real time:
/// p0's clock leads by eps; p0 invokes mutA at t0 (ack at t0+L), p1 invokes
/// mutB at t0+L+1 -- later in real time but with the smaller timestamp.  A
/// probe accessor on p2 then observes the inverted order.
Scenario mop_order_flip(const SystemTiming& timing, const Operation& mut_a,
                        const Operation& mut_b, const Operation& probe, Tick t0);

// ---------------------------------------------------------------- Thm E.1

/// Violation battery for the pair bound |MOP| + |AOP| (Theorem E.1), for an
/// algorithm variant with mutator ack latency A (= mop_ack), accessor
/// latency B (= aop_respond) and back-dating X (= aop_backdate):
///   [0] pair-order-flip: real-time-ordered mutators inverted by skew
///       (violates when A <= eps - 2);
///   [1] accessor-miss: the accessor responds before the mutator's
///       broadcast arrives (violates when A + B <= d - 2);
///   [2] backdate-skip: the accessor's back-dated timestamp undercuts a
///       mutator that precedes it in real time (violates when
///       A <= eps + X - 1);
///   [3] gap-mutator: two real-time-ordered mutators; the accessor applies
///       the later one (fast path, small timestamp via skew) but misses the
///       earlier one -- a state no legal prefix produces.  Violates when
///       roughly A + B + X <= d + eps (exact to integer slop), provided the
///       precedence gap A + 1 fits under u.  This is the mechanism that
///       separates the *non-overwriting* pair bound from the plain d of
///       write+read: a queue exposes {later-without-earlier}, a register
///       overwrite masks it.
/// The compliant setting A = eps+X, B = d+eps-X passes all four.
std::vector<Scenario> pair_bound_battery(const SystemTiming& timing,
                                         const Operation& mut_a,
                                         const Operation& mut_b,
                                         const Operation& accessor,
                                         const AlgorithmDelays& algo, Tick t0);

// ---------------------------------------------------------------- Fig. 1

/// One chained-schedule scenario: entry k is invoked on its process
/// `assumed_latency[k-1] + 1` after entry k-1 (static schedule; latencies of
/// Algorithm 1 are deterministic, so callers can compute them exactly).
struct ChainEntry {
  ProcessId pid = kNoProcess;
  Operation op;
  Tick assumed_latency = 0;
};
Scenario chained_schedule(std::string name, const SystemTiming& timing, int n,
                          const std::vector<ChainEntry>& entries, Tick t0);

}  // namespace linbound
