#include "shift/scenario.h"

#include <stdexcept>

#include "shift/shift.h"
#include "sim/simulator.h"

namespace linbound {

ScenarioOutcome run_scenario(const std::shared_ptr<const ObjectModel>& model,
                             const Scenario& scenario,
                             const AlgorithmDelays& algo) {
  SimConfig config;
  config.timing = scenario.timing;
  config.clock_offsets = scenario.clock_offsets;
  config.delays = scenario.delays
                      ? scenario.delays
                      : std::make_shared<FixedDelayPolicy>(scenario.timing.d);
  Simulator sim(std::move(config));
  for (int i = 0; i < scenario.n; ++i) {
    sim.add_process(std::make_unique<ReplicaProcess>(model, algo));
  }
  for (const ScheduledInvocation& inv : scenario.invocations) {
    sim.invoke_at(inv.at, inv.pid, inv.op);
  }
  sim.start();
  if (!sim.run()) {
    throw std::runtime_error("scenario '" + scenario.name +
                             "' exceeded the event cap");
  }

  ScenarioOutcome outcome{History::from_trace(sim.trace()), {}, sim.trace().audit(),
                          sim.trace()};
  outcome.linearizable = check_linearizable(*model, outcome.history);
  return outcome;
}

Scenario shift_scenario(const Scenario& scenario, const std::vector<Tick>& x) {
  auto* matrix = dynamic_cast<MatrixDelayPolicy*>(scenario.delays.get());
  if (matrix == nullptr) {
    throw std::invalid_argument(
        "shift_scenario requires a MatrixDelayPolicy (pairwise-uniform "
        "delays), as in the paper's shift arguments");
  }
  Scenario out = scenario;
  out.name = scenario.name + "+shift";
  std::vector<Tick> offsets = scenario.clock_offsets;
  offsets.resize(static_cast<std::size_t>(scenario.n), 0);
  out.clock_offsets = shifted_offsets(offsets, x);
  out.delays = std::make_shared<MatrixDelayPolicy>(matrix->shifted(x));
  for (ScheduledInvocation& inv : out.invocations) {
    inv.at = shifted_time(inv.at, inv.pid, x);
  }
  return out;
}

}  // namespace linbound
