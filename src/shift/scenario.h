// Scenario runs: fixed configurations (offsets, delay matrix, invocation
// schedule) executed under Algorithm 1 or one of its eager variants.  The
// lower-bound benches run these and hand the histories to the checker.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "checker/history.h"
#include "checker/lin_checker.h"
#include "core/replica_algorithm.h"
#include "sim/delay_policy.h"
#include "spec/object_model.h"
#include "spec/operation.h"

namespace linbound {

struct ScheduledInvocation {
  Tick at = 0;
  ProcessId pid = kNoProcess;
  Operation op;
};

struct Scenario {
  std::string name;
  int n = 3;
  SystemTiming timing;
  std::vector<Tick> clock_offsets;          ///< defaults to all-zero
  std::shared_ptr<DelayPolicy> delays;      ///< defaults to FixedDelayPolicy(d)
  std::vector<ScheduledInvocation> invocations;
};

struct ScenarioOutcome {
  History history;
  CheckResult linearizable;
  AdmissibilityReport admissibility;
  Trace trace;  ///< the full recorded run, for shift/chop post-processing
};

/// Execute the scenario with `algo` delays over `model`; run to quiescence,
/// audit admissibility, and check linearizability.
ScenarioOutcome run_scenario(const std::shared_ptr<const ObjectModel>& model,
                             const Scenario& scenario,
                             const AlgorithmDelays& algo);

/// The standard shift of a scenario by vector x: offsets become c - x, the
/// delay matrix is transformed by formula 4.1 (requires a MatrixDelayPolicy)
/// and each invocation moves with its process.  The shift-invariance tests
/// assert run_scenario produces the "same" local behavior on both.
Scenario shift_scenario(const Scenario& scenario, const std::vector<Tick>& x);

}  // namespace linbound
