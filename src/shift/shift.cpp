#include "shift/shift.h"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace linbound {

std::vector<Tick> shifted_offsets(const std::vector<Tick>& offsets,
                                  const std::vector<Tick>& x) {
  if (offsets.size() != x.size()) {
    throw std::invalid_argument("shifted_offsets: size mismatch");
  }
  std::vector<Tick> out(offsets.size());
  for (std::size_t i = 0; i < offsets.size(); ++i) out[i] = offsets[i] - x[i];
  return out;
}

Tick shifted_time(Tick t, ProcessId pid, const std::vector<Tick>& x) {
  return t + x.at(static_cast<std::size_t>(pid));
}

ChopSpec compute_chop(const MatrixDelayPolicy& matrix, ProcessId from,
                      ProcessId to, Tick first_send, Tick delta) {
  ChopSpec spec;
  const Tick invalid_delay = matrix.get(from, to);
  spec.t_star = first_send + std::min(invalid_delay, delta);
  const int n = matrix.size();
  spec.view_end.resize(static_cast<std::size_t>(n));
  for (ProcessId k = 0; k < n; ++k) {
    spec.view_end[static_cast<std::size_t>(k)] =
        (k == to) ? spec.t_star : spec.t_star + matrix.shortest_path(to, k);
  }
  return spec;
}

Trace chop_trace(const Trace& trace, const std::vector<Tick>& view_end) {
  Trace out;
  out.timing = trace.timing;
  out.clock_offsets = trace.clock_offsets;
  out.end_time = 0;
  for (Tick end : view_end) out.end_time = std::max(out.end_time, end);

  auto inside = [&](ProcessId pid, Tick t) {
    return t < view_end.at(static_cast<std::size_t>(pid));
  };

  for (const MessageRecord& m : trace.messages) {
    if (!inside(m.from, m.send_time)) continue;  // sent outside the run
    MessageRecord copy = m;
    if (copy.delivered() && !inside(copy.to, copy.recv_time)) {
      copy.recv_time = kNoTime;  // receipt chopped away
    }
    out.messages.push_back(copy);
  }

  for (const OperationRecord& rec : trace.ops) {
    if (rec.invoke_time == kNoTime || !inside(rec.proc, rec.invoke_time)) continue;
    OperationRecord copy = rec;
    if (copy.completed() && !inside(copy.proc, copy.response_time)) {
      copy.response_time = kNoTime;
      copy.ret = Value::unit();
    }
    out.ops.push_back(copy);
  }
  return out;
}

AdmissibilityReport audit_chopped(const Trace& chopped,
                                  const std::vector<Tick>& view_end) {
  AdmissibilityReport report;

  for (const MessageRecord& m : chopped.messages) {
    if (m.delivered()) {
      if (!chopped.timing.delay_admissible(m.delay())) {
        std::ostringstream os;
        os << "delivered message " << m.id << " (" << m.from << "->" << m.to
           << ") has delay " << m.delay();
        report.fail(os.str());
      }
      if (m.recv_time >= view_end.at(static_cast<std::size_t>(m.to))) {
        std::ostringstream os;
        os << "message " << m.id << " received after its recipient's view end";
        report.fail(os.str());
      }
    } else {
      // Undelivered: the recipient's view must end before send + d.
      if (view_end.at(static_cast<std::size_t>(m.to)) >
          m.send_time + chopped.timing.d) {
        std::ostringstream os;
        os << "undelivered message " << m.id << " (" << m.from << "->" << m.to
           << ") sent at " << m.send_time << " but recipient view lasts to "
           << view_end.at(static_cast<std::size_t>(m.to));
        report.fail(os.str());
      }
    }
    if (m.send_time >= view_end.at(static_cast<std::size_t>(m.from))) {
      std::ostringstream os;
      os << "message " << m.id << " sent outside its sender's view";
      report.fail(os.str());
    }
  }

  for (std::size_t i = 0; i < chopped.clock_offsets.size(); ++i) {
    for (std::size_t j = i + 1; j < chopped.clock_offsets.size(); ++j) {
      const Tick skew = std::llabs(chopped.clock_offsets[i] - chopped.clock_offsets[j]);
      if (skew > chopped.timing.eps) {
        std::ostringstream os;
        os << "clock skew between " << i << " and " << j << " is " << skew;
        report.fail(os.str());
      }
    }
  }
  return report;
}

}  // namespace linbound
