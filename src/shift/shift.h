// Executable time shifts (Chapter IV.A/B).
//
// A standard shift by vector x moves every step of process i by x_i in real
// time while local clocks keep reading the same values; equivalently the
// clock offset becomes c_i - x_i and the pairwise delays become
// d'_{i,j} = d_{i,j} - x_i + x_j (formula 4.1).  Because processes observe
// only local time, a deterministic algorithm behaves *identically* in the
// shifted run -- the shift invariance tests exercise exactly that.
//
// The modified shift allows the shifted delays to leave [d-u, d] and then
// restores admissibility by chopping (Lemma B.1): given pairwise-uniform
// delays with exactly one invalid entry (i,j) and the first i->j message
// sent at ts, cut each view at
//     t* = ts + min(d_{i,j}, delta),        view_end[j]  = t*
//     view_end[k] = t* + D_{j,k}            (shortest-path distances)
// This module computes the cut and audits the chopped run, making the lemma
// itself a testable artifact.
#pragma once

#include <vector>

#include "sim/delay_policy.h"
#include "sim/trace.h"

namespace linbound {

/// Offsets after shifting process i by x_i in real time: c_i' = c_i - x_i.
std::vector<Tick> shifted_offsets(const std::vector<Tick>& offsets,
                                  const std::vector<Tick>& x);

/// Real times of an invocation schedule after the shift (each invocation
/// moves with its process).
Tick shifted_time(Tick t, ProcessId pid, const std::vector<Tick>& x);

/// The chop cut of Lemma B.1.
struct ChopSpec {
  Tick t_star = 0;
  std::vector<Tick> view_end;  ///< per process; views end just *before* this
};

/// Compute the cut for `matrix` whose only invalid entry is (from, to), with
/// the first from->to message sent at `first_send` and parameter
/// delta in [d-u, d].
ChopSpec compute_chop(const MatrixDelayPolicy& matrix, ProcessId from,
                      ProcessId to, Tick first_send, Tick delta);

/// Restrict a recorded trace to the per-process view ends: operations
/// invoked at/after their process's cut are dropped; responses beyond the
/// cut become pending; messages received at/after the recipient's cut
/// become undelivered.
Trace chop_trace(const Trace& trace, const std::vector<Tick>& view_end);

/// Admissibility audit for a chopped run (the run-level clauses of
/// Lemma B.1): every delivered delay within [d-u, d]; every undelivered
/// message's recipient view ends before send + d; every received message
/// was sent inside the sender's view; clock skew within eps.
AdmissibilityReport audit_chopped(const Trace& chopped,
                                  const std::vector<Tick>& view_end);

}  // namespace linbound
