// A per-run bump allocator for message payloads.
//
// Every send used to heap-allocate a shared_ptr control block plus the
// payload itself and refcount it through the event queue.  Payloads are
// immutable after construction and never outlive their run, so a run-scoped
// arena fits exactly: allocation is a pointer bump into a chunk, ownership
// is the arena's alone (everyone else holds `const T*`), and the whole
// population dies with the Simulator.  Non-trivially-destructible payloads
// register themselves on an intrusive list (its nodes live in the arena
// too) and are destroyed in reverse construction order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

namespace linbound {

class PayloadArena {
 public:
  PayloadArena() = default;
  PayloadArena(const PayloadArena&) = delete;
  PayloadArena& operator=(const PayloadArena&) = delete;
  ~PayloadArena() { clear(); }

  /// Construct a T inside the arena.  The pointer stays valid for the
  /// arena's lifetime; the arena destroys the object (if it needs it).
  template <typename T, typename... Args>
  T* make(Args&&... args) {
    void* mem = allocate(sizeof(T), alignof(T));
    T* obj = ::new (mem) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      void* node_mem = allocate(sizeof(DtorNode), alignof(DtorNode));
      auto* node = ::new (node_mem) DtorNode{
          [](void* p) { static_cast<T*>(p)->~T(); }, obj, dtors_};
      dtors_ = node;
    }
    ++objects_;
    return obj;
  }

  std::size_t objects() const { return objects_; }
  std::size_t bytes_reserved() const {
    return (chunks_.size() + spare_.size()) * kChunkSize;
  }
  /// Bytes of chunk space consumed so far (whole chunks for all but the
  /// tail; oversized chunks undercount slightly) -- what reserve_bytes
  /// should have covered for an allocation-free run.
  std::size_t bytes_used() const {
    return chunks_.empty() ? 0 : (chunks_.size() - 1) * kChunkSize + used_;
  }

  /// Pre-allocate enough chunks for `bytes` of payloads (rounded up to
  /// whole chunks) into a spare pool the bump allocator draws from.  The
  /// arena grows monotonically for a run's lifetime, so covering the whole
  /// run's payload volume here is what makes the steady-state send path
  /// allocation-free -- a warm-up alone cannot, since fresh chunks would
  /// still be needed mid-run.  Never shrinks; oversized one-off requests
  /// (> 64 KiB) still allocate their dedicated chunk directly.
  void reserve_bytes(std::size_t bytes) {
    const std::size_t want = (bytes + kChunkSize - 1) / kChunkSize;
    // The chunk-pointer vectors grow by doubling like any vector; size them
    // here too, or their reallocations would be the hot path's last
    // remaining heap activity.
    if (spare_.capacity() < want) spare_.reserve(want);
    if (chunks_.capacity() < want) chunks_.reserve(want);
    while (spare_.size() < want) {
      spare_.emplace_back(new char[kChunkSize]);
    }
  }

  /// Destroy everything and release the chunks (also run by the dtor).
  void clear() {
    for (DtorNode* n = dtors_; n != nullptr; n = n->next) n->destroy(n->obj);
    dtors_ = nullptr;
    chunks_.clear();
    spare_.clear();
    used_ = 0;
    objects_ = 0;
  }

 private:
  static constexpr std::size_t kChunkSize = 64 * 1024;

  struct DtorNode {
    void (*destroy)(void*);
    void* obj;
    DtorNode* next;
  };

  void* allocate(std::size_t size, std::size_t align) {
    // Oversized requests get a dedicated chunk; the common case bumps the
    // tail chunk's cursor.
    if (size + align > kChunkSize) {
      chunks_.emplace_back(new char[size + align]);
      used_ = kChunkSize;  // force a fresh chunk for the next small request
      return align_ptr(chunks_.back().get(), align);
    }
    if (chunks_.empty() || used_ + size + align > kChunkSize) {
      if (!spare_.empty()) {
        chunks_.push_back(std::move(spare_.back()));
        spare_.pop_back();
      } else {
        chunks_.emplace_back(new char[kChunkSize]);
      }
      used_ = 0;
    }
    char* base = chunks_.back().get() + used_;
    char* aligned = align_ptr(base, align);
    used_ = static_cast<std::size_t>(aligned - chunks_.back().get()) + size;
    return aligned;
  }

  static char* align_ptr(char* p, std::size_t align) {
    const auto addr = reinterpret_cast<std::uintptr_t>(p);
    const std::uintptr_t aligned = (addr + align - 1) & ~(align - 1);
    return p + (aligned - addr);
  }

  std::vector<std::unique_ptr<char[]>> chunks_;
  std::vector<std::unique_ptr<char[]>> spare_;  ///< pre-reserved, unused chunks
  std::size_t used_ = 0;  ///< bytes consumed in the tail chunk
  std::size_t objects_ = 0;
  DtorNode* dtors_ = nullptr;
};

}  // namespace linbound
