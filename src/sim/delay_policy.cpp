#include "sim/delay_policy.h"

#include <cassert>

namespace linbound {

MatrixDelayPolicy::MatrixDelayPolicy(int n, Tick default_delay)
    : n_(n), cells_(static_cast<std::size_t>(n) * n, default_delay) {}

void MatrixDelayPolicy::set(ProcessId from, ProcessId to, Tick delay) {
  assert(from >= 0 && from < n_ && to >= 0 && to < n_);
  cells_[static_cast<std::size_t>(from) * n_ + to] = delay;
}

Tick MatrixDelayPolicy::get(ProcessId from, ProcessId to) const {
  assert(from >= 0 && from < n_ && to >= 0 && to < n_);
  return cells_[static_cast<std::size_t>(from) * n_ + to];
}

MatrixDelayPolicy MatrixDelayPolicy::shifted(const std::vector<Tick>& shift) const {
  assert(static_cast<int>(shift.size()) == n_);
  MatrixDelayPolicy out(n_, 0);
  for (ProcessId i = 0; i < n_; ++i) {
    for (ProcessId j = 0; j < n_; ++j) {
      if (i == j) continue;
      out.set(i, j, get(i, j) - shift[static_cast<std::size_t>(i)] +
                        shift[static_cast<std::size_t>(j)]);
    }
  }
  return out;
}

Tick MatrixDelayPolicy::shortest_path(ProcessId from, ProcessId to) const {
  if (from == to) return 0;
  // Bellman-Ford on the complete digraph; n is tiny (<= a few dozen).
  std::vector<Tick> dist(static_cast<std::size_t>(n_), kTimeInfinity);
  dist[static_cast<std::size_t>(from)] = 0;
  for (int round = 0; round < n_; ++round) {
    bool changed = false;
    for (ProcessId i = 0; i < n_; ++i) {
      if (dist[static_cast<std::size_t>(i)] == kTimeInfinity) continue;
      for (ProcessId j = 0; j < n_; ++j) {
        if (i == j) continue;
        const Tick cand = dist[static_cast<std::size_t>(i)] + get(i, j);
        if (cand < dist[static_cast<std::size_t>(j)]) {
          dist[static_cast<std::size_t>(j)] = cand;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return dist[static_cast<std::size_t>(to)];
}

std::vector<std::pair<ProcessId, ProcessId>> MatrixDelayPolicy::invalid_entries(
    const SystemTiming& timing) const {
  std::vector<std::pair<ProcessId, ProcessId>> out;
  for (ProcessId i = 0; i < n_; ++i) {
    for (ProcessId j = 0; j < n_; ++j) {
      if (i == j) continue;
      if (!timing.delay_admissible(get(i, j))) out.emplace_back(i, j);
    }
  }
  return out;
}

}  // namespace linbound
