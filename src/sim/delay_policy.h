// Message-delay policies: the adversary of the partially synchronous model.
//
// A policy assigns a delay to each sent message.  Policies are allowed to
// return delays outside [d-u, d]; the simulator executes them anyway and the
// trace audit reports the inadmissibility.  This is deliberate: the modified
// time shift of Chapter IV reasons about runs with exactly one invalid delay
// before chopping them, and the shift experiments need to execute such runs.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/time.h"

namespace linbound {

class DelayPolicy {
 public:
  virtual ~DelayPolicy() = default;

  /// Delay of the message sent from `from` to `to` at real time `send_time`;
  /// `msg_seq` is the per-run message sequence number (for policies that
  /// vary over time deterministically).
  virtual Tick delay(ProcessId from, ProcessId to, Tick send_time,
                     std::int64_t msg_seq) = 0;
};

/// Every message takes exactly `delay` (default: the worst case d).
class FixedDelayPolicy final : public DelayPolicy {
 public:
  explicit FixedDelayPolicy(Tick delay) : delay_(delay) {}
  Tick delay(ProcessId, ProcessId, Tick, std::int64_t) override { return delay_; }

 private:
  Tick delay_;
};

/// Pairwise-uniform delays d_{i,j}, the shape every lower-bound proof in the
/// paper uses.  Entries can be edited cell by cell to build the proofs'
/// adversarial matrices (Figs. 7, 10, 13, 16).
class MatrixDelayPolicy final : public DelayPolicy {
 public:
  /// All entries start at `default_delay`.
  MatrixDelayPolicy(int n, Tick default_delay);

  void set(ProcessId from, ProcessId to, Tick delay);
  Tick get(ProcessId from, ProcessId to) const;
  int size() const { return n_; }

  Tick delay(ProcessId from, ProcessId to, Tick, std::int64_t) override {
    return get(from, to);
  }

  /// The shifted matrix d'_{i,j} = d_{i,j} - shift[i] + shift[j]
  /// (formula 4.1 of the paper).
  MatrixDelayPolicy shifted(const std::vector<Tick>& shift) const;

  /// Shortest-path distance D_{j,k} in the complete digraph weighted by the
  /// matrix (used by the chop construction, Lemma B.1).
  Tick shortest_path(ProcessId from, ProcessId to) const;

  /// Messages whose delay falls outside [d-u, d].
  std::vector<std::pair<ProcessId, ProcessId>> invalid_entries(
      const SystemTiming& timing) const;

 private:
  int n_;
  std::vector<Tick> cells_;  // n x n, diagonal unused
};

/// Independent uniform delays in [d-u, d]; the "random adversary" used by
/// the randomized sweeps.
class UniformDelayPolicy final : public DelayPolicy {
 public:
  UniformDelayPolicy(SystemTiming timing, std::uint64_t seed)
      : timing_(timing), rng_(seed) {}

  Tick delay(ProcessId, ProcessId, Tick, std::int64_t) override {
    return rng_.uniform_tick(timing_.min_delay(), timing_.max_delay());
  }

 private:
  SystemTiming timing_;
  Rng rng_;
};

/// Bimodal adversary: each message is either as fast as possible or as slow
/// as possible, chosen at random.  This is the policy that actually attains
/// the worst-case reordering inside Algorithm 1's hold-back window, so the
/// latency sweeps use it to drive measured latencies to the bounds.
class ExtremalDelayPolicy final : public DelayPolicy {
 public:
  ExtremalDelayPolicy(SystemTiming timing, std::uint64_t seed, double p_slow = 0.5)
      : timing_(timing), rng_(seed), p_slow_(p_slow) {}

  Tick delay(ProcessId, ProcessId, Tick, std::int64_t) override {
    return rng_.chance(p_slow_) ? timing_.max_delay() : timing_.min_delay();
  }

 private:
  SystemTiming timing_;
  Rng rng_;
  double p_slow_;
};

/// Wrap an arbitrary function as a policy (scenario one-offs).
class LambdaDelayPolicy final : public DelayPolicy {
 public:
  using Fn = std::function<Tick(ProcessId, ProcessId, Tick, std::int64_t)>;
  explicit LambdaDelayPolicy(Fn fn) : fn_(std::move(fn)) {}

  Tick delay(ProcessId from, ProcessId to, Tick send_time,
             std::int64_t msg_seq) override {
    return fn_(from, to, send_time, msg_seq);
  }

 private:
  Fn fn_;
};

}  // namespace linbound
