#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace linbound {

EventQueue::EventQueue(EventQueueImpl impl) : impl_(impl) {
  if (impl_ == EventQueueImpl::kCalendar) buckets_.resize(kWindow);
}

std::uint64_t EventQueue::push(Tick time, EventPriority priority,
                               std::function<void()> fire) {
  SimEvent ev;
  ev.kind = EventKind::kCall;
  ev.fn = std::move(fire);
  return push_typed(time, priority, std::move(ev));
}

std::uint64_t EventQueue::push_typed(Tick time, EventPriority priority,
                                     SimEvent ev) {
  const std::uint64_t seq = next_seq_++;
  ev.time = time;
  ev.priority = static_cast<int>(priority);
  ev.seq = seq;
  log_push(time, ev.priority);
  ++size_;
  if (impl_ == EventQueueImpl::kBinaryHeap) {
    heap_push(heap_, std::move(ev));
  } else {
    calendar_push(std::move(ev));
  }
  return seq;
}

Tick EventQueue::next_time() const {
  if (size_ == 0) return kTimeInfinity;
  if (impl_ == EventQueueImpl::kBinaryHeap) return heap_.front().time;
  return calendar_next_time();
}

SimEvent EventQueue::pop() {
  assert(size_ > 0 && "EventQueue::pop on an empty queue");
  log_pop();
  --size_;
  if (impl_ == EventQueueImpl::kBinaryHeap) return heap_pop(heap_);
  return calendar_pop();
}

void EventQueue::reserve(std::size_t events) {
  // Both the heap impl and the calendar's overflow rung absorb scheduling
  // bursts (batched open-loop invocations land far in the future), so the
  // contiguous heap vector is the one worth pre-sizing in either mode.
  if (heap_.capacity() < events) heap_.reserve(events);
}

// --- binary-heap machinery --------------------------------------------------

void EventQueue::heap_push(std::vector<SimEvent>& heap, SimEvent ev) {
  heap.push_back(std::move(ev));
  sift_up(heap, heap.size() - 1);
}

SimEvent EventQueue::heap_pop(std::vector<SimEvent>& heap) {
  assert(!heap.empty());
  SimEvent out = std::move(heap.front());
  heap.front() = std::move(heap.back());
  heap.pop_back();
  if (!heap.empty()) sift_down(heap, 0);
  return out;
}

void EventQueue::sift_up(std::vector<SimEvent>& heap, std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!later(heap[parent], heap[i])) break;
    std::swap(heap[parent], heap[i]);
    i = parent;
  }
}

void EventQueue::sift_down(std::vector<SimEvent>& heap, std::size_t i) {
  const std::size_t n = heap.size();
  while (true) {
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    std::size_t best = i;
    if (l < n && later(heap[best], heap[l])) best = l;
    if (r < n && later(heap[best], heap[r])) best = r;
    if (best == i) return;
    std::swap(heap[i], heap[best]);
    i = best;
  }
}

// --- calendar machinery -----------------------------------------------------

void EventQueue::calendar_push(SimEvent ev) {
  if (ev.time < window_start_) {
    // Behind the window (the window never moves back): the early rung.  All
    // of its times are strictly below every bucketed/overflow time, so the
    // global (time, priority, seq) order is preserved by draining it first.
    heap_push(early_, std::move(ev));
    return;
  }
  const Tick off = ev.time - window_start_;
  if (off >= static_cast<Tick>(kWindow)) {
    heap_push(heap_, std::move(ev));  // overflow rung
    return;
  }
  if (static_cast<std::size_t>(off) < cursor_) {
    cursor_ = static_cast<std::size_t>(off);
  }
  bucket_insert(std::move(ev));
}

void EventQueue::bucket_insert(SimEvent ev) {
  const std::size_t off = static_cast<std::size_t>(ev.time - window_start_);
  assert(off < kWindow);
  const std::size_t lane = ev.priority == 0 ? 0 : 1;
  buckets_[off].lane[lane].push_back(std::move(ev));
  words_[off / 64] |= 1ull << (off % 64);
  summary_ |= 1ull << (off / 64);
  ++calendar_live_;
}

std::size_t EventQueue::next_populated(std::size_t from) const {
  if (from >= kWindow) return kWindow;
  std::size_t w = from / 64;
  std::uint64_t word = words_[w] & (~0ull << (from % 64));
  if (word == 0) {
    const std::uint64_t rest =
        w + 1 < kWords ? summary_ & (~0ull << (w + 1)) : 0;
    if (rest == 0) return kWindow;
    w = static_cast<std::size_t>(__builtin_ctzll(rest));
    word = words_[w];
  }
  return w * 64 + static_cast<std::size_t>(__builtin_ctzll(word));
}

Tick EventQueue::calendar_next_time() const {
  if (!early_.empty()) return early_.front().time;
  if (calendar_live_ > 0) {
    const std::size_t off = next_populated(cursor_);
    assert(off < kWindow);
    return window_start_ + static_cast<Tick>(off);
  }
  return heap_.empty() ? kTimeInfinity : heap_.front().time;
}

void EventQueue::rotate() {
  assert(calendar_live_ == 0 && !heap_.empty());
  window_start_ = heap_.front().time;
  cursor_ = 0;
  // Overflow pops ascend in (time, priority, seq), so per-bucket lanes are
  // appended in seq order -- the same order a direct push would have built.
  const Tick window_end = window_start_ + static_cast<Tick>(kWindow);
  while (!heap_.empty() && heap_.front().time < window_end) {
    bucket_insert(heap_pop(heap_));
  }
}

SimEvent EventQueue::calendar_pop() {
  if (!early_.empty()) return heap_pop(early_);
  if (calendar_live_ == 0) rotate();
  const std::size_t off = next_populated(cursor_);
  assert(off < kWindow && "calendar queue lost track of a live bucket");
  Bucket& bucket = buckets_[off];
  const std::size_t lane = bucket.pos[0] < bucket.lane[0].size() ? 0 : 1;
  assert(bucket.pos[lane] < bucket.lane[lane].size());
  SimEvent out = std::move(bucket.lane[lane][bucket.pos[lane]]);
  ++bucket.pos[lane];
  --calendar_live_;
  if (bucket.drained()) {
    bucket.reset();  // clear() keeps capacity: buckets recycle allocations
    words_[off / 64] &= ~(1ull << (off % 64));
    if (words_[off / 64] == 0) summary_ &= ~(1ull << (off / 64));
    cursor_ = off + 1;
  } else {
    cursor_ = off;
  }
  return out;
}

}  // namespace linbound
