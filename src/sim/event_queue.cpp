#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace linbound {

std::uint64_t EventQueue::push(Tick time, EventPriority priority,
                               std::function<void()> fire) {
  SimEvent ev;
  ev.kind = EventKind::kCall;
  ev.fn = std::move(fire);
  return push_typed(time, priority, std::move(ev));
}

std::uint64_t EventQueue::push_typed(Tick time, EventPriority priority,
                                     SimEvent ev) {
  const std::uint64_t seq = next_seq_++;
  ev.time = time;
  ev.priority = static_cast<int>(priority);
  ev.seq = seq;
  heap_.push_back(std::move(ev));
  sift_up(heap_.size() - 1);
  return seq;
}

Tick EventQueue::next_time() const {
  return heap_.empty() ? kTimeInfinity : heap_.front().time;
}

SimEvent EventQueue::pop() {
  assert(!heap_.empty());
  SimEvent out = std::move(heap_.front());
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return out;
}

void EventQueue::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!later(heap_[parent], heap_[i])) break;
    std::swap(heap_[parent], heap_[i]);
    i = parent;
  }
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    std::size_t best = i;
    if (l < n && later(heap_[best], heap_[l])) best = l;
    if (r < n && later(heap_[best], heap_[r])) best = r;
    if (best == i) return;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

}  // namespace linbound
