#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace linbound {

EventQueue::EventQueue(EventQueueImpl impl) : impl_(impl) {
  if (impl_ == EventQueueImpl::kCalendar) {
    buckets_.resize(kWindow);
    l1_.resize(kL1);
  }
}

std::uint64_t EventQueue::push(Tick time, EventPriority priority,
                               std::function<void()> fire) {
  SimEvent ev;
  ev.kind = EventKind::kCall;
  ev.fn = std::move(fire);
  return push_typed(time, priority, std::move(ev));
}

std::uint64_t EventQueue::push_typed(Tick time, EventPriority priority,
                                     SimEvent ev) {
  const std::uint64_t seq = next_seq_++;
  ev.time = time;
  ev.priority = static_cast<int>(priority);
  ev.seq = seq;
  log_push(time, ev.priority);
  ++size_;
  if (size_ > high_water_) high_water_ = size_;
  if (impl_ == EventQueueImpl::kBinaryHeap) {
    heap_push(heap_, std::move(ev));
  } else {
    calendar_push(slim(std::move(ev)));
  }
  return seq;
}

Tick EventQueue::next_time() const {
  if (size_ == 0) return kTimeInfinity;
  if (impl_ == EventQueueImpl::kBinaryHeap) return heap_.front().time;
  return calendar_next_time();
}

SimEvent EventQueue::pop() {
  assert(size_ > 0 && "EventQueue::pop on an empty queue");
  log_pop();
  --size_;
  if (impl_ == EventQueueImpl::kBinaryHeap) return heap_pop(heap_);
  return fatten(calendar_pop_rec());
}

bool EventQueue::next_matches_delivery(Tick time, ProcessId pid) {
  if (size_ == 0) return false;
  if (impl_ == EventQueueImpl::kBinaryHeap) {
    const SimEvent& next = heap_.front();
    return next.kind == EventKind::kDeliver && next.time == time &&
           next.pid == pid;
  }
  const EventRec& next = calendar_front();
  return next.kind == EventKind::kDeliver && next.time == time &&
         next.pid == pid;
}

void EventQueue::reserve(std::size_t events) {
  // The heap impl and the calendar's wheel pool absorb scheduling bursts
  // (batched open-loop invocations land far in the future), so each mode's
  // contiguous storage is the one worth pre-sizing.
  if (impl_ == EventQueueImpl::kBinaryHeap) {
    if (heap_.capacity() < events) heap_.reserve(events);
  } else {
    if (l1_pool_.capacity() < events) {
      l1_pool_.reserve(events);
      l1_next_.reserve(events);
    }
    // Far-future bursts are kCall-scheduled workload invocations, each of
    // which parks a closure; size the pool with them.
    if (fn_pool_.capacity() < events) fn_pool_.reserve(events);
    if (free_fn_slots_.capacity() < events) free_fn_slots_.reserve(events);
  }
}

void EventQueue::warm_buckets(std::size_t per_lane) {
  for (Bucket& bucket : buckets_) {
    if (bucket.lane[0].capacity() < per_lane) bucket.lane[0].reserve(per_lane);
    if (bucket.lane[1].capacity() < per_lane) bucket.lane[1].reserve(per_lane);
  }
}

// --- fat <-> slim conversion ------------------------------------------------

EventQueue::EventRec EventQueue::slim(SimEvent&& ev) {
  EventRec rec;
  rec.time = ev.time;
  rec.seq = ev.seq;
  rec.a = ev.a;
  rec.payload = ev.payload;
  rec.tag_clock = ev.tag_ts.clock_time;
  rec.pid = ev.pid;
  rec.tag_pid = ev.tag_ts.pid;
  rec.epoch = ev.epoch;
  rec.tag_kind = ev.tag_kind;
  rec.kind = ev.kind;
  rec.priority = static_cast<std::uint8_t>(ev.priority);
  if (ev.fn) {
    if (free_fn_slots_.empty()) {
      fn_pool_.push_back(std::move(ev.fn));
      rec.fn_slot = static_cast<std::int32_t>(fn_pool_.size() - 1);
    } else {
      rec.fn_slot = free_fn_slots_.back();
      free_fn_slots_.pop_back();
      fn_pool_[static_cast<std::size_t>(rec.fn_slot)] = std::move(ev.fn);
    }
  }
  return rec;
}

SimEvent EventQueue::fatten(EventRec&& rec) {
  SimEvent ev;
  ev.time = rec.time;
  ev.priority = rec.priority;
  ev.seq = rec.seq;
  ev.kind = rec.kind;
  ev.pid = rec.pid;
  ev.a = rec.a;
  ev.epoch = rec.epoch;
  ev.tag_kind = rec.tag_kind;
  ev.tag_ts = Timestamp{rec.tag_clock, rec.tag_pid};
  ev.payload = rec.payload;
  if (rec.fn_slot >= 0) {
    ev.fn = std::move(fn_pool_[static_cast<std::size_t>(rec.fn_slot)]);
    free_fn_slots_.push_back(rec.fn_slot);
  }
  return ev;
}

// --- calendar machinery -----------------------------------------------------

void EventQueue::calendar_push(EventRec rec) {
  if (rec.time < window_start_) {
    // Behind the window (the window never moves back): the early rung.  All
    // of its times are strictly below every bucketed/wheel/far time, so the
    // global (time, priority, seq) order is preserved by draining it first.
    heap_push(early_, std::move(rec));
    return;
  }
  const Tick off = rec.time - window_start_;
  if (off >= static_cast<Tick>(kWindow)) {
    if (off < kSpan) {
      l1_insert(std::move(rec));  // level-1 wheel
    } else {
      heap_push(far_, std::move(rec));  // beyond the wheel span
    }
    return;
  }
  if (static_cast<std::size_t>(off) < cursor_) {
    cursor_ = static_cast<std::size_t>(off);
  }
  bucket_insert(std::move(rec));
}

void EventQueue::l1_insert(EventRec rec) {
  const std::size_t idx = wheel_index(rec.time);
  std::int32_t slot;
  if (l1_free_ >= 0) {
    slot = l1_free_;
    l1_free_ = l1_next_[static_cast<std::size_t>(slot)];
    l1_pool_[static_cast<std::size_t>(slot)] = std::move(rec);
  } else {
    slot = static_cast<std::int32_t>(l1_pool_.size());
    l1_pool_.push_back(std::move(rec));
    l1_next_.push_back(-1);
  }
  l1_next_[static_cast<std::size_t>(slot)] = -1;
  L1Bucket& chain = l1_[idx];
  if (chain.tail >= 0) {
    l1_next_[static_cast<std::size_t>(chain.tail)] = slot;
  } else {
    chain.head = slot;
    l1_words_[idx / 64] |= 1ull << (idx % 64);
    l1_summary_ |= 1ull << (idx / 64);
  }
  chain.tail = slot;
}

void EventQueue::bucket_insert(EventRec rec) {
  const std::size_t off = static_cast<std::size_t>(rec.time - window_start_);
  assert(off < kWindow);
  const std::size_t lane = rec.priority == 0 ? 0 : 1;
  buckets_[off].lane[lane].push_back(std::move(rec));
  words_[off / 64] |= 1ull << (off % 64);
  summary_ |= 1ull << (off / 64);
  ++calendar_live_;
}

std::size_t EventQueue::next_populated(std::size_t from) const {
  if (from >= kWindow) return kWindow;
  std::size_t w = from / 64;
  std::uint64_t word = words_[w] & (~0ull << (from % 64));
  if (word == 0) {
    const std::uint64_t rest =
        w + 1 < kWords ? summary_ & (~0ull << (w + 1)) : 0;
    if (rest == 0) return kWindow;
    w = static_cast<std::size_t>(__builtin_ctzll(rest));
    word = words_[w];
  }
  return w * 64 + static_cast<std::size_t>(__builtin_ctzll(word));
}

std::size_t EventQueue::l1_next_index(std::size_t from) const {
  if (l1_summary_ == 0) return kL1;
  from &= kL1 - 1;
  std::size_t w = from / 64;
  std::uint64_t word = l1_words_[w] & (~0ull << (from % 64));
  if (word == 0) {
    const std::uint64_t rest =
        w + 1 < kL1Words ? l1_summary_ & (~0ull << (w + 1)) : 0;
    if (rest != 0) {
      w = static_cast<std::size_t>(__builtin_ctzll(rest));
      word = l1_words_[w];
    } else {
      // Wrap around: the circularly-next populated chain is the globally
      // first one.
      w = static_cast<std::size_t>(__builtin_ctzll(l1_summary_));
      word = l1_words_[w];
    }
  }
  return w * 64 + static_cast<std::size_t>(__builtin_ctzll(word));
}

Tick EventQueue::calendar_next_time() const {
  if (!early_.empty()) return early_.front().time;
  if (calendar_live_ == 0) {
    // The answer lives on the wheel or far rung; rotating realizes it in
    // level 0 (chains are seq-ordered, not time-ordered, so only the
    // migration can say which tick comes first).  Internal restructure
    // only -- pop order and the push/pop log are untouched.
    const_cast<EventQueue*>(this)->rotate();
  }
  const std::size_t off = next_populated(cursor_);
  assert(off < kWindow);
  return window_start_ + static_cast<Tick>(off);
}

void EventQueue::rotate() {
  assert(calendar_live_ == 0 && size_ > early_.size() &&
         "rotate needs a pending wheel or far-rung event");
  // Nearest pending source.  Within the live range no two event times alias
  // one wheel index, so the circularly-next populated chain is also the
  // earliest one.
  Tick new_start = kTimeInfinity;
  std::size_t idx = kL1;
  if (l1_summary_ != 0) {
    idx = l1_next_index(wheel_index(window_start_) + 1);
    new_start = align_down(
        l1_pool_[static_cast<std::size_t>(l1_[idx].head)].time);
  }
  if (!far_.empty()) {
    const Tick far_start = align_down(far_.front().time);
    if (far_start < new_start) new_start = far_start;
  }
  window_start_ = new_start;
  cursor_ = 0;
  const Tick window_end = window_start_ + static_cast<Tick>(kWindow);
  // Far rung first: any (tick, priority) pair split across the two sources
  // has its far events carrying strictly smaller seqs (they were pushed
  // under an older window, or they would have gone onto the wheel), and
  // lane order must be seq order.  Far pops ascend in (time, priority,
  // seq), so among themselves they also append in order.
  while (!far_.empty() && far_.front().time < window_end) {
    bucket_insert(heap_pop(far_));
  }
  if (idx < kL1 &&
      align_down(l1_pool_[static_cast<std::size_t>(l1_[idx].head)].time) ==
          window_start_) {
    // Migrate the chain in link order (= push = seq order); each record
    // lands in the new window by construction.
    std::int32_t slot = l1_[idx].head;
    l1_[idx] = L1Bucket{};
    l1_words_[idx / 64] &= ~(1ull << (idx % 64));
    if (l1_words_[idx / 64] == 0) l1_summary_ &= ~(1ull << (idx / 64));
    while (slot >= 0) {
      const std::int32_t next = l1_next_[static_cast<std::size_t>(slot)];
      bucket_insert(std::move(l1_pool_[static_cast<std::size_t>(slot)]));
      l1_next_[static_cast<std::size_t>(slot)] = l1_free_;
      l1_free_ = slot;
      slot = next;
    }
  }
  assert(calendar_live_ > 0 && "rotate migrated nothing");
}

const EventQueue::EventRec& EventQueue::calendar_front() {
  if (!early_.empty()) return early_.front();
  if (calendar_live_ == 0) rotate();
  const std::size_t off = next_populated(cursor_);
  assert(off < kWindow && "calendar queue lost track of a live bucket");
  const Bucket& bucket = buckets_[off];
  const std::size_t lane = bucket.pos[0] < bucket.lane[0].size() ? 0 : 1;
  return bucket.lane[lane][bucket.pos[lane]];
}

EventQueue::EventRec EventQueue::calendar_pop_rec() {
  if (!early_.empty()) return heap_pop(early_);
  if (calendar_live_ == 0) rotate();
  const std::size_t off = next_populated(cursor_);
  assert(off < kWindow && "calendar queue lost track of a live bucket");
  Bucket& bucket = buckets_[off];
  const std::size_t lane = bucket.pos[0] < bucket.lane[0].size() ? 0 : 1;
  assert(bucket.pos[lane] < bucket.lane[lane].size());
  EventRec out = std::move(bucket.lane[lane][bucket.pos[lane]]);
  ++bucket.pos[lane];
  --calendar_live_;
  if (bucket.drained()) {
    bucket.reset();  // clear() keeps capacity: buckets recycle allocations
    words_[off / 64] &= ~(1ull << (off % 64));
    if (words_[off / 64] == 0) summary_ &= ~(1ull << (off / 64));
    cursor_ = off + 1;
  } else {
    cursor_ = off;
  }
  return out;
}

}  // namespace linbound
