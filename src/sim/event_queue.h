// The simulator's future-event list.
//
// Ordered by (time, priority, sequence number): events at equal virtual
// times fire by priority class first (message deliveries before timers --
// the paper's model lets a receive step precede a timer step at the same
// clock instant, and Lemma C.9's "added no later than the respond time"
// relies on it), then in insertion order.  This total order is the
// simulator's determinism contract: every run is a pure function of its
// configuration (DESIGN.md "determinism everywhere"), and both queue
// implementations below realize *exactly* the same pop order.
//
//   kCalendar (default)  -- a two-level calendar queue keyed by tick.
//     Level 0 is a window of per-tick buckets (two append-only lanes per
//     bucket, one per priority class, drained via cursors) with a two-level
//     bitmap to find the next populated tick.  Level 1 is a timing wheel of
//     kL1 window-sized buckets covering the next ~16.8M ticks; each wheel
//     bucket is an intrusive FIFO chain through a recycled slot pool, so a
//     far-future push is one slot write plus a tail link -- no sifting.
//     When the window drains it rotates to the nearest populated wheel
//     bucket and migrates that chain (a linear walk) into level 0.  A small
//     binary-heap "far" rung catches times beyond the wheel span, and an
//     "early" rung catches times pushed before the current window start
//     (possible only through out-of-order push patterns in tests; the
//     simulator always pushes at t >= now).  Push and pop are amortized
//     O(1): an event is appended once, migrated at most once, and popped
//     once.  Storage is the slim EventRec below -- one cache line per
//     event, with kCall closures parked in a side pool -- so every append
//     and migration moves 64 trivially-copyable bytes instead of a
//     104-byte struct with a std::function inside.
//   kBinaryHeap          -- the seed binary min-heap over fat SimEvents,
//     kept verbatim as the reference implementation for differential tests
//     and the throughput-regression gate (bench/bench_throughput.cpp): the
//     gate prices the full data-layout distance between the seed and the
//     calendar, not just the bucketing.
//
// Events are tagged PODs, not closures: the hot-path kinds (deliveries,
// timers, invocations, crash/recover) carry their operands inline so
// pushing them allocates nothing.  Only generic kCall events (scenario
// glue via Simulator::call_at) still carry a std::function.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/time.h"
#include "common/timestamp.h"

namespace linbound {

struct MessagePayload;

/// Priority classes for simultaneous events (lower fires first).
enum class EventPriority : int {
  kDelivery = 0,  ///< message receipt
  kNormal = 1,    ///< timers, invocations, scenario callbacks
};

/// What an event does when it fires; the Simulator switches on this.
enum class EventKind : std::uint8_t {
  kCall,     ///< run `fn` (scenario callbacks)
  kInvoke,   ///< dispatch invocation `a` (= token) on `pid`
  kDeliver,  ///< deliver message record `a` carrying `payload` (arena-owned)
  kTimer,    ///< fire timer `a` (= id) on `pid` with (tag_kind, tag_ts, epoch)
  kCrash,    ///< crash `pid`
  kRecover,  ///< recover `pid`
};

struct SimEvent {
  Tick time = 0;
  int priority = 1;
  std::uint64_t seq = 0;  ///< global insertion order; the final tie-break
  EventKind kind = EventKind::kCall;

  ProcessId pid = kNoProcess;               ///< invoke/timer/crash/recover
  std::int64_t a = 0;                       ///< token / timer id / record index
  int epoch = 0;                            ///< timer: arming incarnation
  int tag_kind = 0;                         ///< timer: TimerTag::kind
  Timestamp tag_ts{};                       ///< timer: TimerTag::ts
  const MessagePayload* payload = nullptr;  ///< deliver
  std::function<void()> fn;                 ///< kCall only

  /// Run a kCall event's callback (test/scenario convenience).
  void fire() { fn(); }
};

/// Which future-event-list implementation a queue (and hence a Simulator)
/// uses.  Pop order is identical for both -- the calendar queue is a pure
/// performance refactor; the heap is the seed implementation, kept for
/// differential tests and throughput-regression baselines.
enum class EventQueueImpl {
  kCalendar,    ///< bucketed calendar queue (default)
  kBinaryHeap,  ///< seed binary min-heap
};

class EventQueue {
 public:
  explicit EventQueue(EventQueueImpl impl = EventQueueImpl::kCalendar);

  EventQueueImpl impl() const { return impl_; }

  /// Insert a generic callback event at `time`.  Returns the sequence
  /// number assigned.
  std::uint64_t push(Tick time, std::function<void()> fire) {
    return push(time, EventPriority::kNormal, std::move(fire));
  }
  std::uint64_t push(Tick time, EventPriority priority, std::function<void()> fire);

  /// Insert a typed event; `ev.time`, `ev.priority` and `ev.seq` are
  /// assigned here (callers fill only the kind and its operands).
  std::uint64_t push_typed(Tick time, EventPriority priority, SimEvent ev);

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Time of the earliest event; kTimeInfinity when empty.  Logically
  /// const; in calendar mode it may rotate the window to answer exactly
  /// (the same internal restructure the next pop would have done -- pop
  /// order is unaffected).
  Tick next_time() const;

  /// Remove and return the earliest event.  Precondition: !empty() --
  /// asserted in debug builds; calling pop on an empty queue is a bug, not
  /// a recoverable condition.
  SimEvent pop();

  /// True iff the event pop() would return next is a kDeliver at exactly
  /// (time, pid) -- the batched-delivery membership test (sim/simulator.cpp),
  /// answered from the queue's native storage without materializing a
  /// SimEvent.  Non-const: asking may rotate the calendar window (the same
  /// work the subsequent pop would have done anyway).
  bool next_matches_delivery(Tick time, ProcessId pid);

  /// Pre-size internal storage for roughly `events` simultaneously pending
  /// events (workload size hints; see Simulator::reserve).  Never shrinks.
  void reserve(std::size_t events);

  /// Pre-size every calendar bucket's lanes for `per_lane` same-tick events
  /// (no-op in kBinaryHeap mode).  Bucket lanes keep their capacity across
  /// window rotations, so this plus reserve() makes a steady-state run's
  /// pushes allocation-free from the first event on, instead of after the
  /// first window's warm-up.
  void warm_buckets(std::size_t per_lane);

  /// Peak number of simultaneously pending events seen so far -- the pool
  /// high-water mark the reserve() hints should cover.
  std::size_t high_water() const { return high_water_; }

  /// Optional push/pop log for queue-level replay (bench_throughput): when
  /// set, every push appends (time << 1) | priority and every pop appends
  /// kPopSentinel, so the exact interleaving of one run can be replayed
  /// against either implementation.  Costs one predictable branch per
  /// operation; null by default.  Entries beyond `log_cap` are dropped.
  static constexpr std::int64_t kPopSentinel = -1;
  void set_log(std::vector<std::int64_t>* log, std::size_t log_cap) {
    log_ = log;
    log_cap_ = log_cap;
  }

 private:
  /// The calendar's storage record: SimEvent minus the std::function,
  /// packed to one 64-byte cache line (vs the fat event's 104).  kCall
  /// closures park in fn_pool_ and the record carries the slot; every other
  /// kind is trivially copyable end to end.  The (time, priority, seq)
  /// order key is carried verbatim, so pop order is unaffected by the
  /// layout -- only the bytes moved per queue operation change.
  struct EventRec {
    Tick time = 0;
    std::uint64_t seq = 0;
    std::int64_t a = 0;
    const MessagePayload* payload = nullptr;
    Tick tag_clock = 0;              ///< TimerTag::ts.clock_time
    std::int32_t fn_slot = -1;       ///< fn_pool_ index; -1 = no closure
    ProcessId pid = kNoProcess;
    ProcessId tag_pid = kNoProcess;  ///< TimerTag::ts.pid
    std::int32_t epoch = 0;
    std::int32_t tag_kind = 0;
    EventKind kind = EventKind::kCall;
    std::uint8_t priority = 1;
  };
  static_assert(sizeof(EventRec) <= 64, "EventRec outgrew a cache line");

  // --- shared ordering ---
  /// Strict "a fires after b" on (time, priority, seq).
  static bool later(const SimEvent& a, const SimEvent& b) {
    if (a.time != b.time) return a.time > b.time;
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.seq > b.seq;
  }
  static bool later(const EventRec& a, const EventRec& b) {
    if (a.time != b.time) return a.time > b.time;
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.seq > b.seq;
  }

  // --- binary-heap machinery (the kBinaryHeap impl over fat SimEvents;
  //     the calendar's overflow and early rungs over slim EventRecs) ---
  template <typename E>
  static void heap_push(std::vector<E>& heap, E ev) {
    heap.push_back(std::move(ev));
    sift_up(heap, heap.size() - 1);
  }
  template <typename E>
  static E heap_pop(std::vector<E>& heap) {
    assert(!heap.empty());
    E out = std::move(heap.front());
    heap.front() = std::move(heap.back());
    heap.pop_back();
    if (!heap.empty()) sift_down(heap, 0);
    return out;
  }
  template <typename E>
  static void sift_up(std::vector<E>& heap, std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!later(heap[parent], heap[i])) break;
      std::swap(heap[parent], heap[i]);
      i = parent;
    }
  }
  template <typename E>
  static void sift_down(std::vector<E>& heap, std::size_t i) {
    const std::size_t n = heap.size();
    while (true) {
      const std::size_t l = 2 * i + 1;
      const std::size_t r = 2 * i + 2;
      std::size_t best = i;
      if (l < n && later(heap[best], heap[l])) best = l;
      if (r < n && later(heap[best], heap[r])) best = r;
      if (best == i) return;
      std::swap(heap[i], heap[best]);
      i = best;
    }
  }

  // --- fat <-> slim conversion (calendar boundary) ---
  EventRec slim(SimEvent&& ev);
  SimEvent fatten(EventRec&& rec);

  // --- calendar machinery ---
  /// Window size in ticks (one bucket per tick); power of two.  4096 ticks
  /// covers several message-delay bounds (default d = 1000), so in steady
  /// state nearly every delivery/timer lands in a bucket and only far-future
  /// scheduling (open-loop invocation batches) touches the wheel.
  static constexpr std::size_t kWindow = 4096;
  static constexpr std::size_t kLogWindow = 12;
  static constexpr std::size_t kWords = kWindow / 64;
  /// Level-1 wheel: kL1 buckets of kWindow ticks each.  The span (~16.8M
  /// ticks) comfortably exceeds any scheduling horizon the workloads use
  /// (open-loop batches reach a few million ticks ahead), so the far rung
  /// is empty in practice.  Within the live range (window_start_,
  /// window_start_ + kSpan) no two event times can alias one wheel index,
  /// so index order equals time order.
  static constexpr std::size_t kL1 = 4096;
  static constexpr std::size_t kL1Words = kL1 / 64;
  static constexpr Tick kSpan = static_cast<Tick>(kWindow) * static_cast<Tick>(kL1);

  static constexpr Tick align_down(Tick t) {
    return t & ~static_cast<Tick>(kWindow - 1);
  }
  static constexpr std::size_t wheel_index(Tick t) {
    return static_cast<std::size_t>(t >> kLogWindow) & (kL1 - 1);
  }

  struct Bucket {
    /// lane[0] = kDelivery, lane[1] = kNormal; append-only, drained via
    /// pos[]. Within a lane events carry increasing seq, so lane order ==
    /// (priority, seq) order and a bucket pops lane 0 before lane 1 --
    /// exactly the heap's tie-break.
    std::vector<EventRec> lane[2];
    std::size_t pos[2] = {0, 0};

    bool drained() const {
      return pos[0] >= lane[0].size() && pos[1] >= lane[1].size();
    }
    void reset() {
      lane[0].clear();
      lane[1].clear();
      pos[0] = pos[1] = 0;
    }
  };

  /// One wheel bucket: an intrusive FIFO chain (head/tail slot indices into
  /// l1_pool_, links in l1_next_).  Appending at the tail keeps each chain
  /// in push (= seq) order, which is exactly the order a level-0 lane needs.
  struct L1Bucket {
    std::int32_t head = -1;
    std::int32_t tail = -1;
  };

  void calendar_push(EventRec rec);
  EventRec calendar_pop_rec();
  /// The record calendar_pop_rec would return, without removing it.  May
  /// rotate the window.  Precondition: size_ > 0 in calendar mode.
  const EventRec& calendar_front();
  /// Append into the bucket for `rec.time` (must lie in the current window).
  void bucket_insert(EventRec rec);
  /// Append onto the wheel chain for `rec.time` (must lie past the window
  /// but within the wheel span).
  void l1_insert(EventRec rec);
  /// Offset (>= from) of the next populated bucket; kWindow when none.
  std::size_t next_populated(std::size_t from) const;
  /// Wheel index (circularly >= from) of the next populated chain; kL1 when
  /// the whole wheel is empty.
  std::size_t l1_next_index(std::size_t from) const;
  /// Earliest pending event time; kTimeInfinity when no bucket is live.
  /// Rotates (via const_cast) when the answer lives on the wheel or far
  /// rung -- a pure internal restructure, invisible to pop order.
  Tick calendar_next_time() const;
  /// Move the window to the nearest pending source -- the closest populated
  /// wheel chain or the far-rung minimum -- and migrate everything that
  /// lands in the new window.  The far rung drains first: for any (tick,
  /// priority) pair split across the two sources, the far events carry
  /// strictly smaller seqs (they were pushed under an older window, or they
  /// would have gone onto the wheel), and lane order must be seq order.
  /// Precondition: no live bucketed event, and the wheel or far rung holds
  /// at least one.  Postcondition: at least one live bucketed event.
  void rotate();

  void log_push(Tick time, int priority) {
    if (log_ && log_->size() < log_cap_) {
      log_->push_back((time << 1) | static_cast<std::int64_t>(priority));
    }
  }
  void log_pop() {
    if (log_ && log_->size() < log_cap_) log_->push_back(kPopSentinel);
  }

  EventQueueImpl impl_;
  std::uint64_t next_seq_ = 0;
  std::size_t size_ = 0;        ///< total events across all structures
  std::size_t high_water_ = 0;  ///< max size_ ever reached

  /// kBinaryHeap only: the whole queue, fat events, seed layout.
  std::vector<SimEvent> heap_;

  // kCalendar state.
  std::vector<Bucket> buckets_;          ///< index = time - window_start_
  std::uint64_t words_[kWords] = {};     ///< bit b: bucket b populated
  std::uint64_t summary_ = 0;            ///< bit w: words_[w] != 0
  Tick window_start_ = 0;                ///< first tick covered by buckets_
  std::size_t cursor_ = 0;               ///< scan hint: no live bucket below it
  std::size_t calendar_live_ = 0;        ///< events currently in buckets
  /// Level-1 wheel: chains indexed by wheel_index(time), slots recycled
  /// through an intrusive free list (l1_free_ chains through l1_next_), so
  /// a warmed-up run never grows the pool.
  std::vector<L1Bucket> l1_;             ///< kL1 chains (calendar mode)
  std::vector<EventRec> l1_pool_;        ///< chain slot storage
  std::vector<std::int32_t> l1_next_;    ///< chain links, parallel to l1_pool_
  std::int32_t l1_free_ = -1;            ///< free-slot list head
  std::uint64_t l1_words_[kL1Words] = {};  ///< bit b: chain b populated
  std::uint64_t l1_summary_ = 0;           ///< bit w: l1_words_[w] != 0
  /// Far rung: events at time >= window_start_ + kSpan (binary heap; empty
  /// under every shipped workload -- the wheel span exceeds their horizons).
  std::vector<EventRec> far_;
  /// Events pushed at time < window_start_ (the window never moves back).
  /// Empty in simulator runs -- the simulator pushes at t >= now -- but
  /// out-of-order test patterns land here and stay totally ordered.
  std::vector<EventRec> early_;
  /// Parked kCall closures, addressed by EventRec::fn_slot; slots recycle
  /// through the free list so a warmed-up run never grows the pool.
  std::vector<std::function<void()>> fn_pool_;
  std::vector<std::int32_t> free_fn_slots_;

  std::vector<std::int64_t>* log_ = nullptr;
  std::size_t log_cap_ = 0;
};

}  // namespace linbound
