// The simulator's future-event list.
//
// Ordered by (time, priority, sequence number): events at equal virtual
// times fire by priority class first (message deliveries before timers --
// the paper's model lets a receive step precede a timer step at the same
// clock instant, and Lemma C.9's "added no later than the respond time"
// relies on it), then in insertion order.  This total order is the
// simulator's determinism contract: every run is a pure function of its
// configuration (DESIGN.md "determinism everywhere"), and both queue
// implementations below realize *exactly* the same pop order.
//
//   kCalendar (default)  -- a bucketed calendar queue keyed by tick: a
//     window of per-tick buckets (two append-only lanes per bucket, one per
//     priority class, drained via cursors), a two-level bitmap to find the
//     next populated tick, a sorted-overflow rung (binary heap) for events
//     beyond the window, and a small "early" rung for events pushed before
//     the current window start (possible only through out-of-order push
//     patterns in tests; the simulator always pushes at t >= now).  Push
//     and pop are amortized O(1): an event is appended once, migrated from
//     the overflow rung at most once, and popped once.  When the in-window
//     events drain, the window rotates forward to the overflow minimum.
//   kBinaryHeap          -- the seed binary min-heap, kept as a fallback
//     and as the reference implementation for differential tests and the
//     throughput-regression gate (bench/bench_throughput.cpp).
//
// Events are tagged PODs, not closures: the hot-path kinds (deliveries,
// timers, invocations, crash/recover) carry their operands inline so
// pushing them allocates nothing.  Only generic kCall events (scenario
// glue via Simulator::call_at) still carry a std::function.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/time.h"
#include "common/timestamp.h"

namespace linbound {

struct MessagePayload;

/// Priority classes for simultaneous events (lower fires first).
enum class EventPriority : int {
  kDelivery = 0,  ///< message receipt
  kNormal = 1,    ///< timers, invocations, scenario callbacks
};

/// What an event does when it fires; the Simulator switches on this.
enum class EventKind : std::uint8_t {
  kCall,     ///< run `fn` (scenario callbacks)
  kInvoke,   ///< dispatch invocation `a` (= token) on `pid`
  kDeliver,  ///< deliver message record `a` carrying `payload` (arena-owned)
  kTimer,    ///< fire timer `a` (= id) on `pid` with (tag_kind, tag_ts, epoch)
  kCrash,    ///< crash `pid`
  kRecover,  ///< recover `pid`
};

struct SimEvent {
  Tick time = 0;
  int priority = 1;
  std::uint64_t seq = 0;  ///< global insertion order; the final tie-break
  EventKind kind = EventKind::kCall;

  ProcessId pid = kNoProcess;               ///< invoke/timer/crash/recover
  std::int64_t a = 0;                       ///< token / timer id / record index
  int epoch = 0;                            ///< timer: arming incarnation
  int tag_kind = 0;                         ///< timer: TimerTag::kind
  Timestamp tag_ts{};                       ///< timer: TimerTag::ts
  const MessagePayload* payload = nullptr;  ///< deliver
  std::function<void()> fn;                 ///< kCall only

  /// Run a kCall event's callback (test/scenario convenience).
  void fire() { fn(); }
};

/// Which future-event-list implementation a queue (and hence a Simulator)
/// uses.  Pop order is identical for both -- the calendar queue is a pure
/// performance refactor; the heap is the seed implementation, kept for
/// differential tests and throughput-regression baselines.
enum class EventQueueImpl {
  kCalendar,    ///< bucketed calendar queue (default)
  kBinaryHeap,  ///< seed binary min-heap
};

class EventQueue {
 public:
  explicit EventQueue(EventQueueImpl impl = EventQueueImpl::kCalendar);

  EventQueueImpl impl() const { return impl_; }

  /// Insert a generic callback event at `time`.  Returns the sequence
  /// number assigned.
  std::uint64_t push(Tick time, std::function<void()> fire) {
    return push(time, EventPriority::kNormal, std::move(fire));
  }
  std::uint64_t push(Tick time, EventPriority priority, std::function<void()> fire);

  /// Insert a typed event; `ev.time`, `ev.priority` and `ev.seq` are
  /// assigned here (callers fill only the kind and its operands).
  std::uint64_t push_typed(Tick time, EventPriority priority, SimEvent ev);

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Time of the earliest event; kTimeInfinity when empty.  Well-defined
  /// after a drain (it does not inspect stale storage: rung rotation only
  /// happens inside pop, and an empty queue reports kTimeInfinity).
  Tick next_time() const;

  /// Remove and return the earliest event.  Precondition: !empty() --
  /// asserted in debug builds; calling pop on an empty queue is a bug, not
  /// a recoverable condition.
  SimEvent pop();

  /// Pre-size internal storage for roughly `events` simultaneously pending
  /// events (workload size hints; see Simulator::reserve).  Never shrinks.
  void reserve(std::size_t events);

  /// Optional push/pop log for queue-level replay (bench_throughput): when
  /// set, every push appends (time << 1) | priority and every pop appends
  /// kPopSentinel, so the exact interleaving of one run can be replayed
  /// against either implementation.  Costs one predictable branch per
  /// operation; null by default.  Entries beyond `log_cap` are dropped.
  static constexpr std::int64_t kPopSentinel = -1;
  void set_log(std::vector<std::int64_t>* log, std::size_t log_cap) {
    log_ = log;
    log_cap_ = log_cap;
  }

 private:
  // --- shared ordering ---
  /// Strict "a fires after b" on (time, priority, seq).
  static bool later(const SimEvent& a, const SimEvent& b) {
    if (a.time != b.time) return a.time > b.time;
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.seq > b.seq;
  }

  // --- binary-heap machinery (the kBinaryHeap impl, the calendar's
  //     sorted-overflow rung, and the rarely-used early rung) ---
  static void heap_push(std::vector<SimEvent>& heap, SimEvent ev);
  static SimEvent heap_pop(std::vector<SimEvent>& heap);
  static void sift_up(std::vector<SimEvent>& heap, std::size_t i);
  static void sift_down(std::vector<SimEvent>& heap, std::size_t i);

  // --- calendar machinery ---
  /// Window size in ticks (one bucket per tick); power of two.  4096 ticks
  /// covers several message-delay bounds (default d = 1000), so in steady
  /// state nearly every delivery/timer lands in a bucket and only far-future
  /// scheduling (open-loop invocation batches) touches the overflow rung.
  static constexpr std::size_t kWindow = 4096;
  static constexpr std::size_t kWords = kWindow / 64;

  struct Bucket {
    /// lane[0] = kDelivery, lane[1] = kNormal; append-only, drained via
    /// pos[]. Within a lane events carry increasing seq, so lane order ==
    /// (priority, seq) order and a bucket pops lane 0 before lane 1 --
    /// exactly the heap's tie-break.
    std::vector<SimEvent> lane[2];
    std::size_t pos[2] = {0, 0};

    bool drained() const {
      return pos[0] >= lane[0].size() && pos[1] >= lane[1].size();
    }
    void reset() {
      lane[0].clear();
      lane[1].clear();
      pos[0] = pos[1] = 0;
    }
  };

  void calendar_push(SimEvent ev);
  SimEvent calendar_pop();
  /// Append into the bucket for `ev.time` (must lie in the current window).
  void bucket_insert(SimEvent ev);
  /// Offset (>= from) of the next populated bucket; kWindow when none.
  std::size_t next_populated(std::size_t from) const;
  /// Earliest in-window event time; kTimeInfinity when no bucket is live.
  Tick calendar_next_time() const;
  /// Move the window to the overflow minimum and migrate every overflow
  /// event that now fits.  Precondition: no live bucketed event.
  void rotate();

  void log_push(Tick time, int priority) {
    if (log_ && log_->size() < log_cap_) {
      log_->push_back((time << 1) | static_cast<std::int64_t>(priority));
    }
  }
  void log_pop() {
    if (log_ && log_->size() < log_cap_) log_->push_back(kPopSentinel);
  }

  EventQueueImpl impl_;
  std::uint64_t next_seq_ = 0;
  std::size_t size_ = 0;  ///< total events across all structures

  /// kBinaryHeap: the whole queue.  kCalendar: the sorted-overflow rung
  /// (events at time >= window_start_ + kWindow).
  std::vector<SimEvent> heap_;

  // kCalendar state.
  std::vector<Bucket> buckets_;          ///< index = time - window_start_
  std::uint64_t words_[kWords] = {};     ///< bit b: bucket b populated
  std::uint64_t summary_ = 0;            ///< bit w: words_[w] != 0
  Tick window_start_ = 0;                ///< first tick covered by buckets_
  std::size_t cursor_ = 0;               ///< scan hint: no live bucket below it
  std::size_t calendar_live_ = 0;        ///< events currently in buckets
  /// Events pushed at time < window_start_ (the window never moves back).
  /// Empty in simulator runs -- the simulator pushes at t >= now -- but
  /// out-of-order test patterns land here and stay totally ordered.
  std::vector<SimEvent> early_;

  std::vector<std::int64_t>* log_ = nullptr;
  std::size_t log_cap_ = 0;
};

}  // namespace linbound
