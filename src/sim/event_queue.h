// The simulator's future-event list.
//
// A binary min-heap ordered by (time, priority, sequence number): events at
// equal virtual times fire by priority class first (message deliveries
// before timers -- the paper's model lets a receive step precede a timer
// step at the same clock instant, and Lemma C.9's "added no later than the
// respond time" relies on it), then in insertion order.  This makes every
// run a pure function of its configuration (DESIGN.md "determinism
// everywhere").
//
// Events are tagged PODs, not closures: the hot-path kinds (deliveries,
// timers, invocations, crash/recover) carry their operands inline so
// pushing them allocates nothing.  Only generic kCall events (scenario
// glue via Simulator::call_at) still carry a std::function.  The ordering
// key and sequence assignment are unchanged from the closure-based queue,
// so traces are byte-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/time.h"
#include "common/timestamp.h"

namespace linbound {

struct MessagePayload;

/// Priority classes for simultaneous events (lower fires first).
enum class EventPriority : int {
  kDelivery = 0,  ///< message receipt
  kNormal = 1,    ///< timers, invocations, scenario callbacks
};

/// What an event does when it fires; the Simulator switches on this.
enum class EventKind : std::uint8_t {
  kCall,     ///< run `fn` (scenario callbacks)
  kInvoke,   ///< dispatch invocation `a` (= token) on `pid`
  kDeliver,  ///< deliver message record `a` carrying `payload` (arena-owned)
  kTimer,    ///< fire timer `a` (= id) on `pid` with (tag_kind, tag_ts, epoch)
  kCrash,    ///< crash `pid`
  kRecover,  ///< recover `pid`
};

struct SimEvent {
  Tick time = 0;
  int priority = 1;
  std::uint64_t seq = 0;  ///< global insertion order; the final tie-break
  EventKind kind = EventKind::kCall;

  ProcessId pid = kNoProcess;               ///< invoke/timer/crash/recover
  std::int64_t a = 0;                       ///< token / timer id / record index
  int epoch = 0;                            ///< timer: arming incarnation
  int tag_kind = 0;                         ///< timer: TimerTag::kind
  Timestamp tag_ts{};                       ///< timer: TimerTag::ts
  const MessagePayload* payload = nullptr;  ///< deliver
  std::function<void()> fn;                 ///< kCall only

  /// Run a kCall event's callback (test/scenario convenience).
  void fire() { fn(); }
};

class EventQueue {
 public:
  /// Insert a generic callback event at `time`.  Returns the sequence
  /// number assigned.
  std::uint64_t push(Tick time, std::function<void()> fire) {
    return push(time, EventPriority::kNormal, std::move(fire));
  }
  std::uint64_t push(Tick time, EventPriority priority, std::function<void()> fire);

  /// Insert a typed event; `ev.time`, `ev.priority` and `ev.seq` are
  /// assigned here (callers fill only the kind and its operands).
  std::uint64_t push_typed(Tick time, EventPriority priority, SimEvent ev);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest event; kTimeInfinity when empty.
  Tick next_time() const;

  /// Remove and return the earliest event.  Precondition: !empty().
  SimEvent pop();

 private:
  /// Min-heap ordered by (time, priority, seq).
  static bool later(const SimEvent& a, const SimEvent& b) {
    if (a.time != b.time) return a.time > b.time;
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.seq > b.seq;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::vector<SimEvent> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace linbound
