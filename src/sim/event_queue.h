// The simulator's future-event list.
//
// A binary min-heap ordered by (time, priority, sequence number): events at
// equal virtual times fire by priority class first (message deliveries
// before timers -- the paper's model lets a receive step precede a timer
// step at the same clock instant, and Lemma C.9's "added no later than the
// respond time" relies on it), then in insertion order.  This makes every
// run a pure function of its configuration (DESIGN.md "determinism
// everywhere").
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/time.h"

namespace linbound {

/// Priority classes for simultaneous events (lower fires first).
enum class EventPriority : int {
  kDelivery = 0,  ///< message receipt
  kNormal = 1,    ///< timers, invocations, scenario callbacks
};

struct SimEvent {
  Tick time = 0;
  int priority = 1;
  std::uint64_t seq = 0;  ///< global insertion order; the final tie-break
  std::function<void()> fire;
};

class EventQueue {
 public:
  /// Insert an event at `time`.  Returns the sequence number assigned.
  std::uint64_t push(Tick time, std::function<void()> fire) {
    return push(time, EventPriority::kNormal, std::move(fire));
  }
  std::uint64_t push(Tick time, EventPriority priority, std::function<void()> fire);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest event; kTimeInfinity when empty.
  Tick next_time() const;

  /// Remove and return the earliest event.  Precondition: !empty().
  SimEvent pop();

 private:
  /// Min-heap ordered by (time, priority, seq).
  static bool later(const SimEvent& a, const SimEvent& b) {
    if (a.time != b.time) return a.time > b.time;
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.seq > b.seq;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::vector<SimEvent> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace linbound
