// Fault-injection hooks of the message layer.
//
// The paper's model (Chapter III) assumes reliable channels: every message
// is delivered exactly once, within [d-u, d] of its send.  A FaultPolicy
// deliberately breaks those assumptions -- dropping, duplicating or delaying
// individual messages and stalling whole processes -- so the robustness
// experiments can measure what each assumption is worth.  The simulator
// consults the policy on every send and records every injected fault in the
// trace (sim/trace.h FaultEvent), which is what lets the assumption monitor
// (fault/assumption_monitor.h) attribute a non-linearizable outcome to the
// specific assumption that was violated.
//
// With no policy configured the send path is untouched: a faultless run is
// byte-identical to one produced by the pre-fault simulator.
#pragma once

#include "common/time.h"

namespace linbound {

/// What the fault layer does to one message send.  The default-constructed
/// decision is "no fault": deliver exactly once with the policy delay.
struct FaultDecision {
  /// Lose the message entirely.  The send is still recorded in the trace
  /// (recv_time stays unset) together with a kMessageDropped fault event.
  bool drop = false;

  /// Deliver this many extra copies in addition to the original.  Each copy
  /// gets its own delay from the run's DelayPolicy and its own trace record.
  int extra_copies = 0;

  /// Added to the DelayPolicy's delay -- a "delay spike" that may push the
  /// delivery beyond the model's upper bound d.
  Tick delay_boost = 0;
};

/// Decides, deterministically, which faults hit which messages.  Concrete
/// policies (seeded Bernoulli drop/duplicate/spike, scripted stall windows,
/// composition) live in src/fault; the simulator only needs this interface.
class FaultPolicy {
 public:
  virtual ~FaultPolicy() = default;

  /// Consulted once per send (duplicates scheduled from one decision do not
  /// re-enter the policy).  `msg_seq` is the per-run message id, so a policy
  /// consuming one RNG draw per call is reproducible from its seed.
  virtual FaultDecision on_send(ProcessId from, ProcessId to, Tick send_time,
                                std::int64_t msg_seq) = 0;

  /// If process `pid` is inside a stall window at time `now`, the real time
  /// at which the window ends; kNoTime otherwise.  While stalled a process
  /// handles no deliveries, timers or invocations -- the simulator defers
  /// them to the window's end (nothing is lost, everything is late).
  virtual Tick stalled_until(ProcessId pid, Tick now) {
    (void)pid;
    (void)now;
    return kNoTime;
  }
};

}  // namespace linbound
