// Messages of the point-to-point message-passing layer (Chapter III).
//
// The delivery guarantees of the paper's base layer hold by construction in
// the simulator: every received message was sent exactly once, is received
// at most once, and -- under an admissible delay policy -- arrives within
// [d-u, d] of its send time.
#pragma once

#include <cstdint>

#include "common/time.h"

namespace linbound {

/// Algorithms define their own payload types derived from this base; the
/// simulator moves payloads around without inspecting them.  Payloads are
/// constructed in the run's PayloadArena (Process::make_msg) and handed
/// around as `const MessagePayload*`: immutable, arena-owned, alive for the
/// whole run.
struct MessagePayload {
  virtual ~MessagePayload() = default;
};

using MessageId = std::int64_t;

struct Message {
  MessageId id = 0;  ///< unique per run; also identifies sender/recipient
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  const MessagePayload* payload = nullptr;
};

}  // namespace linbound
