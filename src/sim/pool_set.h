// Per-run pool sizing, applied in one shot (DESIGN.md section 15).
//
// The steady-state op pipeline is allocation-free only if every pool it
// draws from was sized for the whole run before the first event: trace
// staging (operation/message records), the future-event list (overflow
// rung capacity plus calendar bucket lanes), the payload arena (which
// grows monotonically, so warm-up alone cannot protect it), and the
// per-process timer slot tables.  A PoolSet bundles those sizes -- all
// derivable from an open-loop arrival schedule -- and arm() applies them
// to one Simulator.  The sharded runtime builds one PoolSet per
// shard-worker from its shard's slice of the schedule; workload
// generators (core/workload.h) build one from their size hints.
//
// Every reservation is a capacity-only hint: behavior and traces are
// byte-identical with or without it.
#pragma once

#include <cstddef>

#include "sim/simulator.h"

namespace linbound {

struct PoolSet {
  std::size_t ops = 0;        ///< operation records for the whole run
  std::size_t messages = 0;   ///< message records for the whole run
  std::size_t events = 0;     ///< peak simultaneously pending queue events
  /// Whole-run payload volume for the arena's spare-chunk pool; 0 skips
  /// the arena (its chunks then allocate on demand, as before).
  std::size_t payload_bytes = 0;
  /// Calendar bucket lane capacity (same-tick events per priority lane);
  /// 0 leaves lanes to warm up over the first window.
  std::size_t events_per_tick = 0;
  /// Per-process timer slot pool; 0 leaves the tables to demand growth.
  std::size_t timer_slots = 0;

  void arm(Simulator& sim) const {
    sim.reserve(ops, messages, events);
    if (payload_bytes > 0) sim.arena().reserve_bytes(payload_bytes);
    if (events_per_tick > 0) sim.event_queue().warm_buckets(events_per_tick);
    if (timer_slots > 0) sim.reserve_timer_slots(timer_slots);
  }
};

}  // namespace linbound
