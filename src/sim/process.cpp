#include "sim/process.h"

#include "sim/simulator.h"

namespace linbound {

Tick Process::local_time() const { return sim_->local_time_of(id_); }

int Process::process_count() const { return sim_->process_count(); }

const SystemTiming& Process::timing() const { return sim_->config().timing; }

PayloadArena& Process::arena() const { return sim_->arena(); }

void Process::send(ProcessId to, const MessagePayload* payload) {
  sim_->send_from(id_, to, payload);
}

void Process::raw_send(ProcessId to, const MessagePayload* payload) {
  sim_->send_from(id_, to, payload);
}

void Process::broadcast(const MessagePayload* payload) {
  const int n = sim_->process_count();
  for (ProcessId to = 0; to < n; ++to) {
    if (to != id_) send(to, payload);
  }
}

TimerId Process::set_timer(Tick local_delta, TimerTag tag) {
  return sim_->set_timer_for(id_, local_delta, tag);
}

void Process::cancel_timer(TimerId id) { sim_->cancel_timer_for(id_, id); }

void Process::respond(std::int64_t token, Value ret) {
  sim_->respond_for(id_, token, std::move(ret));
}

void Process::give_up(std::int64_t token) { sim_->give_up_for(id_, token); }

}  // namespace linbound
