// Process base class: the paper's deterministic state machine.
//
// A process reacts to three kinds of input events -- operation invocations,
// message receipts, and timers going off (Chapter III.B.1) -- and observes
// time only through its local clock.  Steps take zero time; everything a
// handler does (sends, timer updates, responses) happens at one instant,
// exactly as the model's transition function prescribes.
#pragma once

#include <cstdint>
#include <utility>

#include "common/time.h"
#include "common/timestamp.h"
#include "common/value.h"
#include "sim/arena.h"
#include "sim/message.h"
#include "spec/operation.h"

namespace linbound {

class Simulator;

using TimerId = std::int64_t;

/// Payload attached to a timer; Algorithm 1 keys timers by an action kind
/// and the timestamp of the operation they belong to (the paper's
/// set_timer(counter, <op,arg,ts>, action)).
struct TimerTag {
  int kind = 0;
  Timestamp ts{};
};

class Process {
 public:
  virtual ~Process() = default;

  ProcessId id() const { return id_; }

  /// Called once before any other handler, at the start of the run.
  virtual void on_start() {}

  /// Called when Simulator::recover_at restarts this process after a crash
  /// (crash-recovery model; Chapter VII future work).  A restarted process
  /// has lost its volatile state: timers armed before the crash never fire
  /// and the one-pending-operation slot is cleared by the simulator.
  /// Implementations that support rejoining (core/recoverable_replica.h)
  /// override this to reset their state and run a catch-up protocol; the
  /// default keeps the pre-crash member state verbatim, which models a
  /// pause-and-resume rather than a true crash -- fine for probes, wrong
  /// for replicas (their copy would silently be stale).
  virtual void on_recover() {}

  /// A message from another process arrived.
  virtual void on_message(ProcessId from, const MessagePayload& payload) = 0;

  /// A timer armed by this process expired.
  virtual void on_timer(TimerId id, const TimerTag& tag) {
    (void)id;
    (void)tag;
  }

  /// The application layer invoked an operation on this process.  The
  /// implementation must eventually call respond(token, ret) exactly once.
  virtual void on_invoke(std::int64_t token, const Operation& op) = 0;

 protected:
  /// Local clock reading: real time + this process's offset.
  Tick local_time() const;

  /// Number of processes in the system and the system timing parameters.
  int process_count() const;
  const SystemTiming& timing() const;

  /// Construct a payload in the run's arena (sim/arena.h): the allocation
  /// is a pointer bump, the arena owns the object for the whole run, and
  /// the returned pointer can be sent any number of times.  Payloads are
  /// logically immutable once sent; the mutable pointer only allows filling
  /// fields between construction and the first send.
  template <typename T, typename... Args>
  T* make_msg(Args&&... args) const {
    return arena().make<T>(std::forward<Args>(args)...);
  }

  /// Send `payload` to process `to` (delivery per the run's delay policy).
  /// The payload must live in the run's arena (make_msg).  Virtual so a
  /// link layer (core/hardened_replica.h) can interpose -- e.g. wrap
  /// payloads with sequence numbers and arm retransmissions; raw_send
  /// below always hits the wire directly.
  virtual void send(ProcessId to, const MessagePayload* payload);

  /// Send to every process except this one ("send to all others"); goes
  /// through the virtual send() per recipient.
  void broadcast(const MessagePayload* payload);

  /// The unadorned message-layer send (bypasses any send() override).
  void raw_send(ProcessId to, const MessagePayload* payload);

  /// Arm a timer that fires after `local_delta` units of local-clock time
  /// (== real time, clocks have no drift).  Returns its id.
  TimerId set_timer(Tick local_delta, TimerTag tag);

  /// Disarm a previously set timer; no-op if it already fired.
  void cancel_timer(TimerId id);

  /// Complete the operation identified by `token` with return value `ret`.
  void respond(std::int64_t token, Value ret);

  /// Abandon the pending operation identified by `token` (graceful
  /// degradation: e.g. a client timing out on a dead coordinator).  The
  /// operation is marked given-up in the trace and the process may accept
  /// new invocations again; it must not respond for the token afterwards.
  void give_up(std::int64_t token);

 private:
  friend class Simulator;
  PayloadArena& arena() const;

  Simulator* sim_ = nullptr;
  ProcessId id_ = kNoProcess;
};

}  // namespace linbound
