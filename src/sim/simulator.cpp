#include "sim/simulator.h"

#include <stdexcept>
#include <utility>

namespace linbound {

Simulator::Simulator(SimConfig config)
    : config_(std::move(config)), queue_(config_.queue_impl) {
  if (!config_.timing.valid()) {
    throw std::invalid_argument("SimConfig: invalid SystemTiming");
  }
  if (!config_.delays) {
    config_.delays = std::make_shared<FixedDelayPolicy>(config_.timing.d);
  }
  trace_.timing = config_.timing;
  // One broadcast fan-in is the common batch; n is small, so 32 covers it.
  batch_.reserve(32);
}

ProcessId Simulator::add_process(std::unique_ptr<Process> proc) {
  if (started_) throw std::logic_error("add_process after start()");
  const ProcessId pid = static_cast<ProcessId>(procs_.size());
  proc->sim_ = this;
  proc->id_ = pid;
  procs_.push_back(std::move(proc));
  op_pending_.push_back(false);
  crashed_.push_back(false);
  crash_epoch_.push_back(0);
  timer_slots_.emplace_back();
  timer_free_.emplace_back();
  if (config_.clock_offsets.size() < procs_.size()) {
    config_.clock_offsets.resize(procs_.size(), 0);
  }
  trace_.clock_offsets = config_.clock_offsets;
  return pid;
}

std::int64_t Simulator::invoke_at(Tick t, ProcessId pid, Operation op) {
  const std::int64_t token = static_cast<std::int64_t>(trace_.ops.size());
  OperationRecord rec;
  rec.token = token;
  rec.proc = pid;
  rec.op = std::move(op);
  // invoke_time is stamped when the event actually fires (t may be in the
  // past relative to queue processing only if the caller made an error; the
  // event queue still fires it in time order).
  rec.invoke_time = kNoTime;
  trace_.ops.push_back(std::move(rec));
  SimEvent ev;
  ev.kind = EventKind::kInvoke;
  ev.pid = pid;
  ev.a = token;
  queue_.push_typed(t, EventPriority::kNormal, std::move(ev));
  return token;
}

void Simulator::call_at(Tick t, std::function<void()> fn) {
  queue_.push(t, std::move(fn));
}

void Simulator::crash_at(Tick t, ProcessId pid) {
  if (pid < 0 || pid >= process_count()) {
    throw std::out_of_range("crash_at: unknown process");
  }
  if (t < now_) {
    throw std::invalid_argument("crash_at: time " + std::to_string(t) +
                                " is in the past (now = " +
                                std::to_string(now_) + ")");
  }
  SimEvent ev;
  ev.kind = EventKind::kCrash;
  ev.pid = pid;
  queue_.push_typed(t, EventPriority::kNormal, std::move(ev));
}

void Simulator::do_crash(ProcessId pid) {
  if (crashed_[static_cast<std::size_t>(pid)]) {
    throw std::logic_error("crash_at: process " + std::to_string(pid) +
                           " is already crashed (double crash at tick " +
                           std::to_string(now_) + ")");
  }
  crashed_[static_cast<std::size_t>(pid)] = true;
  trace_.faults.push_back(
      {FaultKind::kProcessCrashed, now_, pid, kNoProcess, -1, 0});
}

void Simulator::recover_at(Tick t, ProcessId pid) {
  if (pid < 0 || pid >= process_count()) {
    throw std::out_of_range("recover_at: unknown process");
  }
  if (t < now_) {
    throw std::invalid_argument("recover_at: time " + std::to_string(t) +
                                " is in the past (now = " +
                                std::to_string(now_) + ")");
  }
  SimEvent ev;
  ev.kind = EventKind::kRecover;
  ev.pid = pid;
  queue_.push_typed(t, EventPriority::kNormal, std::move(ev));
}

void Simulator::do_recover(ProcessId pid) {
  const auto idx = static_cast<std::size_t>(pid);
  if (!crashed_[idx]) {
    throw std::logic_error("recover_at: process " + std::to_string(pid) +
                           " is not crashed at tick " + std::to_string(now_));
  }
  crashed_[idx] = false;
  ++crash_epoch_[idx];
  // The cut operation (if any) stays pending in the trace; the restarted
  // process has a free invocation slot again.
  op_pending_[idx] = false;
  trace_.faults.push_back({FaultKind::kProcessRecovered, now_, pid,
                           kNoProcess, -1, crash_epoch_[idx]});
  procs_[idx]->on_recover();
  if (recovery_hook_) recovery_hook_(pid, now_);
}

void Simulator::start() {
  if (started_) throw std::logic_error("start() called twice");
  started_ = true;
  trace_.clock_offsets = config_.clock_offsets;
  for (auto& proc : procs_) proc->on_start();
}

bool Simulator::run() { return run_until(kTimeInfinity); }

bool Simulator::run_until(Tick t) {
  if (!started_) throw std::logic_error("run before start()");
  while (!queue_.empty() && queue_.next_time() <= t) {
    if (events_processed_ >= config_.max_events) return false;
    SimEvent ev = queue_.pop();
    now_ = ev.time;
    // kCall events are unrecorded instrumentation (call_at); the trace
    // horizon tracks observable activity only, so they must not extend it.
    if (ev.kind != EventKind::kCall && now_ > trace_.end_time) {
      trace_.end_time = now_;
    }
    ++events_processed_;
    if (config_.delivery == DeliveryMode::kBatched &&
        ev.kind == EventKind::kDeliver) {
      collect_delivery_batch(ev);
      dispatch(ev);
      for (SimEvent& member : batch_) {
        ++events_processed_;
        dispatch(member);
      }
      batch_.clear();
      continue;
    }
    dispatch(ev);
  }
  if (t != kTimeInfinity && t > trace_.end_time) trace_.end_time = t;
  return queue_.empty();
}

WindowOutcome Simulator::run_window(Tick horizon) {
  if (!started_) throw std::logic_error("run before start()");
  while (!queue_.empty() && queue_.next_time() < horizon) {
    if (events_processed_ >= config_.max_events) return WindowOutcome::kBudget;
    SimEvent ev = queue_.pop();
    now_ = ev.time;
    if (ev.kind != EventKind::kCall && now_ > trace_.end_time) {
      trace_.end_time = now_;
    }
    ++events_processed_;
    if (config_.delivery == DeliveryMode::kBatched &&
        ev.kind == EventKind::kDeliver) {
      // Batch members share the head's tick, so they all lie below the
      // horizon the head already passed.
      collect_delivery_batch(ev);
      dispatch(ev);
      for (SimEvent& member : batch_) {
        ++events_processed_;
        dispatch(member);
      }
      batch_.clear();
      continue;
    }
    dispatch(ev);
  }
  return queue_.empty() ? WindowOutcome::kDrained : WindowOutcome::kHorizon;
}

void Simulator::collect_delivery_batch(const SimEvent& head) {
  ++trace_.stats.deliver_batches;
  ++trace_.stats.batched_messages;  // the head counts toward its batch
  // events_processed_ already covers the head, so this guard admits exactly
  // as many members as the per-message loop would have popped before its
  // budget check tripped -- a budget abort leaves the same residual queue.
  while (events_processed_ + batch_.size() < config_.max_events &&
         queue_.next_matches_delivery(head.time, head.pid)) {
    batch_.push_back(queue_.pop());
    ++trace_.stats.batched_messages;
  }
}

void Simulator::dispatch(SimEvent& ev) {
  switch (ev.kind) {
    case EventKind::kCall:
      ev.fn();
      return;
    case EventKind::kInvoke:
      dispatch_invoke(ev.pid, ev.a);
      return;
    case EventKind::kDeliver:
      deliver(static_cast<std::size_t>(ev.a), ev.payload);
      return;
    case EventKind::kTimer:
      fire_timer(ev.pid, ev.a, TimerTag{ev.tag_kind, ev.tag_ts}, ev.epoch);
      return;
    case EventKind::kCrash:
      do_crash(ev.pid);
      return;
    case EventKind::kRecover:
      do_recover(ev.pid);
      return;
  }
}

Tick Simulator::local_time_of(ProcessId pid) const {
  const Tick base = now_ + config_.clock_offsets.at(static_cast<std::size_t>(pid));
  const auto idx = static_cast<std::size_t>(pid);
  if (idx >= config_.clock_drift_ppm.size() || config_.clock_drift_ppm[idx] == 0) {
    return base;
  }
  // local = c + t + floor(t * ppm / 1e6); drift is measured from real time
  // zero.  Integer arithmetic: |t| stays far below 2^63 / |ppm|.
  return base + now_ * config_.clock_drift_ppm[idx] / 1'000'000;
}

Tick Simulator::real_delta_for_local(ProcessId pid, Tick local_delta) const {
  const auto idx = static_cast<std::size_t>(pid);
  if (idx >= config_.clock_drift_ppm.size() || config_.clock_drift_ppm[idx] == 0) {
    return local_delta;
  }
  const Tick start = local_time_of(pid);
  // First guess from the rate, then adjust: local(t) is nondecreasing and
  // advances by ~rate per tick, so a couple of steps suffice.
  const std::int64_t ppm = config_.clock_drift_ppm[idx];
  Tick delta = local_delta * 1'000'000 / (1'000'000 + ppm);
  if (delta < 1) delta = 1;
  auto local_at = [&](Tick real_delta) {
    const Tick t = now_ + real_delta;
    return t + config_.clock_offsets[idx] + t * ppm / 1'000'000;
  };
  while (local_at(delta) - start < local_delta) ++delta;
  while (delta > 1 && local_at(delta - 1) - start >= local_delta) --delta;
  return delta;
}

Tick Simulator::stall_deferral(ProcessId pid) {
  if (!config_.faults) return kNoTime;
  const Tick until = config_.faults->stalled_until(pid, now_);
  if (until == kNoTime || until <= now_) return kNoTime;
  return until;
}

void Simulator::send_from(ProcessId from, ProcessId to,
                          const MessagePayload* payload) {
  if (to < 0 || to >= process_count()) {
    throw std::out_of_range("send to unknown process");
  }
  if (crashed(from)) return;  // a crashed process sends nothing
  const MessageId id = next_message_id_++;
  const Tick delay = config_.delays->delay(from, to, now_, id);
  if (delay < 0) {
    // Inadmissible delays (outside [d-u, d]) are executable on purpose --
    // the modified-shift experiments need them -- but receive-before-send
    // is not a run in any model.
    throw std::invalid_argument("delay policy returned a negative delay");
  }

  FaultDecision fault;
  if (config_.faults) fault = config_.faults->on_send(from, to, now_, id);
  if (fault.delay_boost < 0) {
    throw std::invalid_argument("fault policy returned a negative delay boost");
  }
  if (fault.delay_boost > 0) {
    trace_.faults.push_back(
        {FaultKind::kDelaySpike, now_, from, to, id, fault.delay_boost});
  }
  const Tick recv_time = now_ + delay + fault.delay_boost;

  const std::size_t record_index = trace_.messages.size();
  MessageRecord rec;
  rec.id = id;
  rec.from = from;
  rec.to = to;
  rec.send_time = now_;
  rec.recv_time = kNoTime;  // filled in on delivery
  trace_.messages.push_back(rec);

  if (fault.drop) {
    // The send happened (the record stays, undelivered); the network ate it.
    trace_.faults.push_back(
        {FaultKind::kMessageDropped, now_, from, to, id, 0});
  } else {
    // Deliveries outrank simultaneous timers (see event_queue.h): a message
    // arriving at the very tick a hold-back or respond timer fires is
    // processed first, matching the model's step ordering that Lemma C.9's
    // boundary case relies on.
    SimEvent ev;
    ev.kind = EventKind::kDeliver;
    ev.pid = to;  // destination, so batched delivery can group by recipient
    ev.a = static_cast<std::int64_t>(record_index);
    ev.payload = payload;
    queue_.push_typed(recv_time, EventPriority::kDelivery, std::move(ev));
  }

  // Duplicates: each extra copy is an independent transmission with its own
  // record (fresh id, its own policy delay), linked to the original by a
  // kMessageDuplicated fault event.
  for (int copy = 0; copy < fault.extra_copies; ++copy) {
    const MessageId dup_id = next_message_id_++;
    Tick dup_delay = config_.delays->delay(from, to, now_, dup_id);
    if (dup_delay < 0) {
      throw std::invalid_argument("delay policy returned a negative delay");
    }
    dup_delay += fault.delay_boost;
    const std::size_t dup_index = trace_.messages.size();
    MessageRecord dup = rec;
    dup.id = dup_id;
    trace_.messages.push_back(dup);
    trace_.faults.push_back(
        {FaultKind::kMessageDuplicated, now_, from, to, dup_id,
         static_cast<Tick>(id)});
    SimEvent dup_ev;
    dup_ev.kind = EventKind::kDeliver;
    dup_ev.pid = to;
    dup_ev.a = static_cast<std::int64_t>(dup_index);
    dup_ev.payload = payload;
    queue_.push_typed(now_ + dup_delay, EventPriority::kDelivery,
                      std::move(dup_ev));
  }
}

void Simulator::deliver(std::size_t record_index,
                        const MessagePayload* payload) {
  const MessageRecord& rec = trace_.messages[record_index];
  const ProcessId to = rec.to;
  if (crashed(to)) return;  // receipt lost; the record stays undelivered
  const Tick until = stall_deferral(to);
  if (until != kNoTime) {
    // The recipient is stalled: the message sits in its buffer until the
    // window ends.  Nothing is lost, everything is late.
    trace_.faults.push_back(
        {FaultKind::kProcessStalled, now_, to, rec.from, rec.id, until - now_});
    SimEvent ev;
    ev.kind = EventKind::kDeliver;
    ev.pid = to;
    ev.a = static_cast<std::int64_t>(record_index);
    ev.payload = payload;
    queue_.push_typed(until, EventPriority::kDelivery, std::move(ev));
    return;
  }
  trace_.messages[record_index].recv_time = now_;
  procs_[static_cast<std::size_t>(to)]->on_message(rec.from, *payload);
}

TimerId Simulator::set_timer_for(ProcessId pid, Tick local_delta, TimerTag tag) {
  if (local_delta < 0) throw std::invalid_argument("negative timer delta");
  auto& slots = timer_slots_[static_cast<std::size_t>(pid)];
  auto& free = timer_free_[static_cast<std::size_t>(pid)];
  std::int32_t slot;
  if (!free.empty()) {
    slot = free.back();
    free.pop_back();
  } else {
    slot = static_cast<std::int32_t>(slots.size());
    if (slot > kTimerSlotMask) {
      throw std::logic_error("timer slot table exhausted on process " +
                             std::to_string(pid));
    }
    slots.emplace_back();
  }
  TimerSlot& s = slots[static_cast<std::size_t>(slot)];
  s.armed = true;
  const TimerId id = (s.gen << kTimerSlotBits) | slot;
  ++trace_.stats.timers_set;
  // Without drift a local-clock delta equals a real-time delta; with drift
  // the conversion goes through the process's clock rate.  The timer
  // belongs to the arming incarnation: if the process crashes and recovers
  // before it fires, it is dead (volatile state does not survive a crash).
  const int epoch = crash_epoch_[static_cast<std::size_t>(pid)];
  SimEvent ev;
  ev.kind = EventKind::kTimer;
  ev.pid = pid;
  ev.a = id;
  ev.epoch = epoch;
  ev.tag_kind = tag.kind;
  ev.tag_ts = tag.ts;
  queue_.push_typed(now_ + real_delta_for_local(pid, local_delta),
                    EventPriority::kNormal, std::move(ev));
  return id;
}

void Simulator::release_timer_slot(ProcessId pid, std::int32_t slot) {
  TimerSlot& s = timer_slots_[static_cast<std::size_t>(pid)]
                             [static_cast<std::size_t>(slot)];
  s.armed = false;
  ++s.gen;
  timer_free_[static_cast<std::size_t>(pid)].push_back(slot);
}

void Simulator::fire_timer(ProcessId pid, TimerId id, TimerTag tag, int epoch) {
  auto& slots = timer_slots_[static_cast<std::size_t>(pid)];
  const auto slot = static_cast<std::int32_t>(id & kTimerSlotMask);
  const std::int64_t gen = id >> kTimerSlotBits;
  TimerSlot& s = slots[static_cast<std::size_t>(slot)];
  if (!s.armed || s.gen != gen) {
    // Lazily-cancelled (or recycled) timer event: purge it in two loads
    // instead of dispatching.  Observable behavior matches the seed's
    // popped-and-discarded path exactly; only the counter is new.
    ++trace_.stats.timers_purged;
    return;
  }
  if (epoch != crash_epoch_[static_cast<std::size_t>(pid)]) {
    // Armed before a crash the process recovered from: dead with its epoch.
    release_timer_slot(pid, slot);
    ++trace_.stats.timers_purged;
    return;
  }
  if (!crashed(pid)) {
    const Tick until = stall_deferral(pid);
    if (until != kNoTime) {
      // Stalled: the timer stays armed and goes off when the window ends
      // (it cannot fire early, and a stalled process takes no steps).
      trace_.faults.push_back(
          {FaultKind::kProcessStalled, now_, pid, kNoProcess, -1, until - now_});
      SimEvent ev;
      ev.kind = EventKind::kTimer;
      ev.pid = pid;
      ev.a = id;
      ev.epoch = epoch;
      ev.tag_kind = tag.kind;
      ev.tag_ts = tag.ts;
      queue_.push_typed(until, EventPriority::kNormal, std::move(ev));
      return;
    }
  }
  release_timer_slot(pid, slot);
  if (crashed(pid)) return;
  procs_[static_cast<std::size_t>(pid)]->on_timer(id, tag);
}

void Simulator::cancel_timer_for(ProcessId pid, TimerId id) {
  auto& slots = timer_slots_[static_cast<std::size_t>(pid)];
  const auto slot = static_cast<std::int32_t>(id & kTimerSlotMask);
  if (slot < 0 || static_cast<std::size_t>(slot) >= slots.size()) return;
  const TimerSlot& s = slots[static_cast<std::size_t>(slot)];
  if (!s.armed || s.gen != (id >> kTimerSlotBits)) return;  // already fired
  release_timer_slot(pid, slot);
  ++trace_.stats.timers_cancelled;
}

void Simulator::respond_for(ProcessId pid, std::int64_t token, Value ret) {
  if (crashed(pid)) return;  // a crashed process cannot respond
  OperationRecord& rec = trace_.ops.at(static_cast<std::size_t>(token));
  if (rec.proc != pid) throw std::logic_error("respond from wrong process");
  if (rec.gave_up) return;  // late answer to an abandoned operation: ignored
  if (rec.completed()) throw std::logic_error("double response for operation");
  rec.response_time = now_;
  rec.ret = std::move(ret);
  op_pending_[static_cast<std::size_t>(pid)] = false;
  if (response_hook_) response_hook_(rec);
}

void Simulator::give_up_for(ProcessId pid, std::int64_t token) {
  if (crashed(pid)) return;  // a crashed process takes no steps
  OperationRecord& rec = trace_.ops.at(static_cast<std::size_t>(token));
  if (rec.proc != pid) throw std::logic_error("give_up from wrong process");
  if (rec.completed()) throw std::logic_error("give_up after response");
  if (rec.gave_up) throw std::logic_error("double give_up for operation");
  rec.gave_up = true;
  rec.give_up_time = now_;
  op_pending_[static_cast<std::size_t>(pid)] = false;
  trace_.faults.push_back(
      {FaultKind::kOperationGivenUp, now_, pid, kNoProcess, -1, token});
}

void Simulator::dispatch_invoke(ProcessId pid, std::int64_t token) {
  if (crashed(pid)) return;  // invocation lost; the record stays pending
  const Tick until = stall_deferral(pid);
  if (until != kNoTime) {
    // A stalled process accepts the invocation only once it wakes up.
    trace_.faults.push_back(
        {FaultKind::kProcessStalled, now_, pid, kNoProcess, -1, until - now_});
    SimEvent ev;
    ev.kind = EventKind::kInvoke;
    ev.pid = pid;
    ev.a = token;
    queue_.push_typed(until, EventPriority::kNormal, std::move(ev));
    return;
  }
  if (op_pending_.at(static_cast<std::size_t>(pid))) {
    throw std::logic_error(
        "application invoked an operation while another is pending on "
        "process " +
        std::to_string(pid));
  }
  op_pending_[static_cast<std::size_t>(pid)] = true;
  OperationRecord& rec = trace_.ops.at(static_cast<std::size_t>(token));
  rec.invoke_time = now_;
  if (invoke_hook_) invoke_hook_(rec);
  procs_[static_cast<std::size_t>(pid)]->on_invoke(token, rec.op);
}

}  // namespace linbound
