// The discrete-event simulator: the paper's three-layer system in one box.
//
//   application layer  -- invoke_at / response hooks / scripted clients
//   object layer       -- Process subclasses (Algorithm 1, baselines, ...)
//   message layer      -- DelayPolicy-driven delivery, recorded in the Trace
//
// The simulator is deterministic: with the same configuration, processes and
// invocation schedule, two runs produce identical traces.
#pragma once

#include <cassert>
#include <functional>
#include <memory>
#include <vector>

#include "common/time.h"
#include "sim/arena.h"
#include "sim/delay_policy.h"
#include "sim/event_queue.h"
#include "sim/fault_injection.h"
#include "sim/process.h"
#include "sim/trace.h"

namespace linbound {

/// How the event loop hands popped deliveries to their recipients.  Both
/// modes pop -- and therefore deliver -- in the identical (time, priority,
/// seq) order, so traces are byte-identical; batching only coalesces the
/// per-pop loop bookkeeping for consecutive same-tick, same-destination
/// deliveries (a broadcast fan-in arriving together is the common case).
enum class DeliveryMode {
  kBatched,     ///< coalesce consecutive same-(tick, recipient) deliveries
  kPerMessage,  ///< the seed's one-pop-one-dispatch loop (baselines, tests)
};

struct SimConfig {
  SystemTiming timing;
  /// Clock offsets c_i (local = real + c_i); resized with zeros to the
  /// number of processes.  Pairwise |c_i - c_j| <= eps for admissible runs;
  /// shift experiments may set inadmissible offsets on purpose.
  std::vector<Tick> clock_offsets;
  /// Clock drift rates in parts-per-million (Chapter VII future work):
  /// local_i(t) = c_i + t + floor(t * drift_ppm_i / 1e6).  The paper's base
  /// model has no drift (all zero, the default); the drift-exploration
  /// bench sets these to probe Algorithm 1 beyond the model.
  std::vector<std::int64_t> clock_drift_ppm;
  /// Delay policy; defaults to FixedDelayPolicy(timing.d).
  std::shared_ptr<DelayPolicy> delays;
  /// Fault policy (drop / duplicate / delay-spike / stall injection).
  /// Default: none -- the send path is exactly the paper's reliable layer
  /// and runs are byte-identical to the pre-fault simulator.
  std::shared_ptr<FaultPolicy> faults;
  /// Hard cap on processed events (runaway protection for broken
  /// algorithms under test).
  std::size_t max_events = 10'000'000;
  /// Future-event-list implementation (sim/event_queue.h).  Both produce
  /// the identical (time, priority, seq) pop order, hence byte-identical
  /// traces; kBinaryHeap is the seed structure kept for differential tests
  /// and throughput-regression baselines.
  EventQueueImpl queue_impl = EventQueueImpl::kCalendar;
  /// Delivery batching (see DeliveryMode above).  Byte-identical traces in
  /// either mode -- differentially tested in tests/test_fuzz.cpp and
  /// tests/test_shard.cpp; kPerMessage is the seed loop kept for baselines.
  DeliveryMode delivery = DeliveryMode::kBatched;
};

/// Result of one bounded stepping call (Simulator::run_window).
enum class WindowOutcome {
  kDrained,  ///< queue empty: the shard is quiescent (no more local events)
  kHorizon,  ///< next event lies at or past the horizon; window complete
  kBudget,   ///< the per-simulator event budget tripped mid-window
};

class Simulator {
 public:
  explicit Simulator(SimConfig config);

  /// Add a process; processes get ids 0, 1, ... in insertion order.
  /// All processes must be added before start().
  ProcessId add_process(std::unique_ptr<Process> proc);

  int process_count() const { return static_cast<int>(procs_.size()); }
  Process& process(ProcessId pid) { return *procs_.at(static_cast<std::size_t>(pid)); }
  Tick now() const { return now_; }
  const SimConfig& config() const { return config_; }

  /// Schedule an operation invocation at real time `t` on process `pid`.
  /// Returns the operation token (also the index into trace().ops).
  std::int64_t invoke_at(Tick t, ProcessId pid, Operation op);

  /// Schedule an arbitrary callback at real time `t` (scenario glue:
  /// reactive invocations, mid-run probes).
  void call_at(Tick t, std::function<void()> fn);

  /// Crash process `pid` at real time `t` (Chapter VII future work: the
  /// paper's base model is failure-free).  From that moment the process
  /// sends nothing, receives nothing, fires no timers and takes no
  /// invocations; messages it already sent are still delivered.  Its
  /// pending operation (if any) stays pending in the trace.
  ///
  /// Arguments are validated: `t` must not lie in the past and `pid` must
  /// name a process (std::invalid_argument / std::out_of_range otherwise).
  /// Crashing an already-crashed process is a schedule bug and throws
  /// std::logic_error when the event fires.
  void crash_at(Tick t, ProcessId pid);

  /// Restart crashed process `pid` at real time `t` (crash-recovery model).
  /// The restarted process has fresh volatile state: timers armed before
  /// the crash never fire, its pending-operation slot is cleared (the cut
  /// operation stays pending in the trace), and Process::on_recover is
  /// invoked so the implementation can reset itself and rejoin.  Recorded
  /// as a kProcessRecovered fault event.  Messages addressed to the process
  /// that were in flight across the downtime are delivered on arrival if it
  /// is up by then (the network does not know about crashes).
  ///
  /// Validation mirrors crash_at: past times and unknown processes are
  /// rejected up front; recovering a process that is not crashed at time
  /// `t` throws std::logic_error when the event fires.
  void recover_at(Tick t, ProcessId pid);

  bool crashed(ProcessId pid) const {
    return static_cast<std::size_t>(pid) < crashed_.size() &&
           crashed_[static_cast<std::size_t>(pid)];
  }

  /// Number of times `pid` has recovered (0 = the original incarnation).
  int incarnation(ProcessId pid) const {
    return crash_epoch_.at(static_cast<std::size_t>(pid));
  }

  /// Invoked (synchronously) whenever any operation responds.
  void set_response_hook(std::function<void(const OperationRecord&)> hook) {
    response_hook_ = std::move(hook);
  }

  /// Invoked (synchronously) whenever an operation is dispatched to its
  /// process: after invoke_time is stamped, before Process::on_invoke (which
  /// may respond within the same call, so the invoke hook always precedes the
  /// response hook for one operation).  Invocations lost to a crash never
  /// fire it -- their records keep invoke_time == kNoTime; a stalled
  /// invocation fires it once, at the deferred dispatch.  Observation only:
  /// hooks must not touch the simulation (the streaming checker's tap relies
  /// on firing *after* the record is fully stamped, so it can never perturb
  /// the event schedule or the trace).
  void set_invoke_hook(std::function<void(const OperationRecord&)> hook) {
    invoke_hook_ = std::move(hook);
  }

  /// The currently installed hooks, so a second observer can chain instead
  /// of clobbering (checker/streaming_checker.h StreamingChecker::attach
  /// composes with core/driver.h, which also listens for responses).
  const std::function<void(const OperationRecord&)>& invoke_hook() const {
    return invoke_hook_;
  }
  const std::function<void(const OperationRecord&)>& response_hook() const {
    return response_hook_;
  }

  /// Invoked (synchronously, after Process::on_recover) whenever a crashed
  /// process recovers -- the application layer's chance to re-issue an
  /// operation the crash cut (core/driver.h WorkloadDriver::reissue_cut).
  void set_recovery_hook(std::function<void(ProcessId, Tick)> hook) {
    recovery_hook_ = std::move(hook);
  }

  /// Deliver on_start to every process.  Must be called exactly once,
  /// before run().
  void start();

  /// Process events until the queue is empty (quiescence) or the event cap
  /// trips.  Returns true on quiescence.
  bool run();

  /// Process all events with time <= t.  Returns true if the queue drained.
  bool run_until(Tick t);

  /// Conservative-PDES stepping: process all events with time strictly
  /// below `horizon` (windows are half-open [T, T + lookahead); an event at
  /// exactly the horizon belongs to the next window).  Unlike run_until,
  /// the horizon is NOT stamped into trace().end_time -- a trace produced
  /// by a sequence of windows is byte-identical to one produced by a single
  /// run() over the same schedule, which is the sharded determinism
  /// contract (src/shard/shard.h).
  WindowOutcome run_window(Tick horizon);

  /// Timestamp of the earliest queued event, or kTimeInfinity when the
  /// queue is empty (the shard scheduler's idle test).
  Tick next_event_time() const {
    return queue_.empty() ? kTimeInfinity : queue_.next_time();
  }

  std::size_t events_processed() const { return events_processed_; }

  /// Per-simulator event budget (SimConfig.max_events).  The sharded
  /// runtime gives every shard its own budget so one runaway shard aborts
  /// alone instead of draining a global cap shared with healthy shards.
  std::size_t max_events() const { return config_.max_events; }
  void set_max_events(std::size_t cap) { config_.max_events = cap; }

  /// Pre-size trace and queue storage from workload size hints (expected
  /// totals for the whole run), so the hot loop never reallocates.  Purely
  /// an optimization: capacities only grow and behavior is unchanged.
  /// Workload generators with known op counts (core/workload.h
  /// HeavyTrafficWorkload, core/driver.h WorkloadDriver) call this.
  void reserve(std::size_t ops, std::size_t messages, std::size_t events) {
    if (trace_.ops.capacity() < ops) trace_.ops.reserve(ops);
    if (trace_.messages.capacity() < messages) trace_.messages.reserve(messages);
    queue_.reserve(events);
  }

  /// Pre-size every process's timer slot table and free list for
  /// `per_process` concurrently armed timers (capacities only grow).  Call
  /// after all processes are added; sim/pool_set.h bundles this with the
  /// other pool reservations.
  void reserve_timer_slots(std::size_t per_process) {
    for (auto& slots : timer_slots_) {
      if (slots.capacity() < per_process) slots.reserve(per_process);
    }
    for (auto& free : timer_free_) {
      if (free.capacity() < per_process) free.reserve(per_process);
    }
  }

  const Trace& trace() const { return trace_; }

  /// Append a fault event to the trace on behalf of a harness-side
  /// supervisor (src/degrade/synchrony_monitor.h records kModeDowngrade /
  /// kModeUpgrade through this).  Internal simulator faults (drops, spikes,
  /// crashes, ...) are recorded directly; this hook exists so trace-visible
  /// events can also originate outside the message layer.
  void record_fault(const FaultEvent& event) { trace_.faults.push_back(event); }

  /// The future-event list (benches and tests: queue-level instrumentation
  /// such as EventQueue::set_log; not for scheduling -- use invoke_at /
  /// call_at, which maintain the trace invariants).
  EventQueue& event_queue() { return queue_; }

  /// The run-scoped payload allocator (see sim/arena.h).  Processes reach
  /// it through Process::make_msg; benches may inspect its counters.
  PayloadArena& arena() { return arena_; }
  const PayloadArena& arena() const { return arena_; }

 private:
  friend class Process;

  // --- internal API used by Process ---
  Tick local_time_of(ProcessId pid) const;
  /// Smallest real-time delta after which pid's local clock has advanced by
  /// at least `local_delta` (identity when the process has no drift).
  Tick real_delta_for_local(ProcessId pid, Tick local_delta) const;
  void send_from(ProcessId from, ProcessId to, const MessagePayload* payload);
  TimerId set_timer_for(ProcessId pid, Tick local_delta, TimerTag tag);
  void cancel_timer_for(ProcessId pid, TimerId id);
  void respond_for(ProcessId pid, std::int64_t token, Value ret);
  void give_up_for(ProcessId pid, std::int64_t token);

  void dispatch_invoke(ProcessId pid, std::int64_t token);
  void deliver(std::size_t record_index, const MessagePayload* payload);
  void fire_timer(ProcessId pid, TimerId id, TimerTag tag, int epoch);
  void do_crash(ProcessId pid);
  void do_recover(ProcessId pid);
  /// Fire one popped event by kind.
  void dispatch(SimEvent& ev);
  /// Batched delivery: pop every event directly after `head` that is also a
  /// delivery at the same tick to the same recipient into batch_, checking
  /// the event budget before each member pop (so a budget trip leaves the
  /// queue exactly as the per-message loop would).  Handler pushes during
  /// the subsequent dispatches carry higher seq numbers than every
  /// collected member, so pre-collecting does not reorder pops.
  void collect_delivery_batch(const SimEvent& head);
  /// End of pid's stall window when one covers `now_`; kNoTime otherwise.
  Tick stall_deferral(ProcessId pid);

  SimConfig config_;
  /// Declared before the queue and processes: events and link layers hold
  /// raw payload pointers, so the arena must be destroyed last.
  PayloadArena arena_;
  EventQueue queue_;
  std::vector<std::unique_ptr<Process>> procs_;
  Trace trace_;
  Tick now_ = 0;
  bool started_ = false;
  std::size_t events_processed_ = 0;
  /// Scratch for collect_delivery_batch (reused across batches; sized once
  /// at construction -- a batch is one broadcast fan-in, a handful of
  /// events).
  std::vector<SimEvent> batch_;

  MessageId next_message_id_ = 0;

  // --- O(1), garbage-free timer lifecycle ---
  //
  // A TimerId encodes (generation << kTimerSlotBits) | slot into the dense
  // per-process slot table below (replacing the seed's global
  // unordered_map<TimerId, bool>, whose rehash/erase churn sat on the hot
  // path).  Arming pops a slot off the per-process free list; cancelling or
  // firing bumps the slot's generation and returns it, so a queued timer
  // event whose generation no longer matches is *purged* at dispatch in two
  // loads -- no hashing, no tombstones, no allocation in steady state.
  // Counters land in trace().stats.
  static constexpr int kTimerSlotBits = 20;
  static constexpr std::int64_t kTimerSlotMask = (std::int64_t{1} << kTimerSlotBits) - 1;
  struct TimerSlot {
    std::int64_t gen = 0;
    bool armed = false;
  };
  /// Release `slot` on `pid`: disarm, retire the generation (stale queued
  /// events stop matching) and recycle the slot.
  void release_timer_slot(ProcessId pid, std::int32_t slot);
  std::vector<std::vector<TimerSlot>> timer_slots_;    // indexed by process id
  std::vector<std::vector<std::int32_t>> timer_free_;  // per-process free slots

  /// token -> true while the operation is pending (enforces the model's
  /// one-pending-operation-per-process constraint).
  std::vector<bool> op_pending_;  // indexed by process id
  std::vector<bool> crashed_;     // indexed by process id
  /// Incarnation counter per process, bumped on every recovery.  Timers
  /// capture the arming incarnation and fire only if it still matches --
  /// a restarted process has lost its volatile state, old timers included.
  std::vector<int> crash_epoch_;  // indexed by process id

  std::function<void(const OperationRecord&)> response_hook_;
  std::function<void(const OperationRecord&)> invoke_hook_;
  std::function<void(ProcessId, Tick)> recovery_hook_;
};

}  // namespace linbound
