#include "sim/trace.h"

#include <cstdlib>
#include <sstream>

namespace linbound {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kMessageDropped:
      return "message-dropped";
    case FaultKind::kMessageDuplicated:
      return "message-duplicated";
    case FaultKind::kDelaySpike:
      return "delay-spike";
    case FaultKind::kProcessStalled:
      return "process-stalled";
    case FaultKind::kProcessCrashed:
      return "process-crashed";
    case FaultKind::kOperationGivenUp:
      return "operation-given-up";
    case FaultKind::kProcessRecovered:
      return "process-recovered";
    case FaultKind::kModeDowngrade:
      return "mode-downgrade";
    case FaultKind::kModeUpgrade:
      return "mode-upgrade";
    case FaultKind::kFaultKindCount:
      break;
  }
  return "?";
}

FaultKind fault_kind_from_name(const std::string& name) {
  for (int k = 0; k < static_cast<int>(FaultKind::kFaultKindCount); ++k) {
    const auto kind = static_cast<FaultKind>(k);
    if (name == fault_kind_name(kind)) return kind;
  }
  return FaultKind::kFaultKindCount;
}

std::vector<FaultEvent> Trace::faults_for_message(MessageId id) const {
  std::vector<FaultEvent> out;
  for (const FaultEvent& f : faults) {
    if (f.msg == id) out.push_back(f);
  }
  return out;
}

AdmissibilityReport Trace::audit() const {
  AdmissibilityReport report;

  for (const MessageRecord& m : messages) {
    if (m.delivered()) {
      if (!timing.delay_admissible(m.delay())) {
        std::ostringstream os;
        os << "message " << m.id << " from " << m.from << " to " << m.to
           << " sent at tick " << m.send_time << ": observed delay "
           << m.delay() << " outside [" << timing.min_delay() << ", "
           << timing.max_delay() << "]";
        for (const FaultEvent& f : faults) {
          if (f.msg == m.id && f.kind == FaultKind::kDelaySpike) {
            os << " (injected spike +" << f.magnitude << ")";
          }
        }
        report.fail(os.str());
      }
    } else if (end_time >= m.send_time + timing.d) {
      std::ostringstream os;
      os << "message " << m.id << " from " << m.from << " to " << m.to
         << " sent at tick " << m.send_time
         << ": undelivered although the run lasted past "
         << m.send_time + timing.d;
      for (const FaultEvent& f : faults) {
        if (f.msg == m.id && f.kind == FaultKind::kMessageDropped) {
          os << " (dropped by fault injection)";
        }
      }
      report.fail(os.str());
    }
  }

  for (std::size_t i = 0; i < clock_offsets.size(); ++i) {
    for (std::size_t j = i + 1; j < clock_offsets.size(); ++j) {
      const Tick skew = std::llabs(clock_offsets[i] - clock_offsets[j]);
      if (skew > timing.eps) {
        std::ostringstream os;
        os << "clock skew |c_" << i << " - c_" << j << "| = " << skew
           << " exceeds eps = " << timing.eps;
        report.fail(os.str());
      }
    }
  }

  return report;
}

bool Trace::complete() const {
  for (const OperationRecord& rec : ops) {
    if (!rec.completed()) return false;
  }
  return true;
}

std::vector<OperationRecord> Trace::completed_ops() const {
  std::vector<OperationRecord> out;
  out.reserve(ops.size());
  for (const OperationRecord& rec : ops) {
    if (rec.completed()) out.push_back(rec);
  }
  return out;
}

}  // namespace linbound
