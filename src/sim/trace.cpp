#include "sim/trace.h"

#include <cstdlib>
#include <sstream>

namespace linbound {

AdmissibilityReport Trace::audit() const {
  AdmissibilityReport report;

  for (const MessageRecord& m : messages) {
    if (m.delivered()) {
      if (!timing.delay_admissible(m.delay())) {
        std::ostringstream os;
        os << "message " << m.id << " (" << m.from << "->" << m.to
           << ") delay " << m.delay() << " outside [" << timing.min_delay()
           << ", " << timing.max_delay() << "]";
        report.fail(os.str());
      }
    } else if (end_time >= m.send_time + timing.d) {
      std::ostringstream os;
      os << "message " << m.id << " (" << m.from << "->" << m.to
         << ") sent at " << m.send_time << " undelivered although the run "
         << "lasted past " << m.send_time + timing.d;
      report.fail(os.str());
    }
  }

  for (std::size_t i = 0; i < clock_offsets.size(); ++i) {
    for (std::size_t j = i + 1; j < clock_offsets.size(); ++j) {
      const Tick skew = std::llabs(clock_offsets[i] - clock_offsets[j]);
      if (skew > timing.eps) {
        std::ostringstream os;
        os << "clock skew |c_" << i << " - c_" << j << "| = " << skew
           << " exceeds eps = " << timing.eps;
        report.fail(os.str());
      }
    }
  }

  return report;
}

bool Trace::complete() const {
  for (const OperationRecord& rec : ops) {
    if (!rec.completed()) return false;
  }
  return true;
}

std::vector<OperationRecord> Trace::completed_ops() const {
  std::vector<OperationRecord> out;
  out.reserve(ops.size());
  for (const OperationRecord& rec : ops) {
    if (rec.completed()) out.push_back(rec);
  }
  return out;
}

}  // namespace linbound
