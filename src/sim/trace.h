// Recorded runs.
//
// A Trace is the executable counterpart of the paper's "run": the timed
// views of all processes, represented by what the lower-bound proofs
// actually consume -- message send/receive real times and operation
// invocation/response real times -- plus the clock offsets and timing
// parameters.  The audit() method decides admissibility exactly as in
// Chapter III.B.3.
#pragma once

#include <string>
#include <vector>

#include "common/time.h"
#include "common/value.h"
#include "sim/message.h"
#include "spec/operation.h"

namespace linbound {

struct MessageRecord {
  MessageId id = 0;
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  Tick send_time = kNoTime;  ///< real time
  Tick recv_time = kNoTime;  ///< real time; kNoTime if not delivered in the run

  bool delivered() const { return recv_time != kNoTime; }
  Tick delay() const { return recv_time - send_time; }
};

/// One operation execution at the application layer.
struct OperationRecord {
  std::int64_t token = 0;  ///< unique per run
  ProcessId proc = kNoProcess;
  Operation op;
  Tick invoke_time = kNoTime;    ///< real time of the invocation
  Tick response_time = kNoTime;  ///< real time of the response; kNoTime if pending
  Value ret;

  bool completed() const { return response_time != kNoTime; }
  Tick latency() const { return response_time - invoke_time; }
};

struct AdmissibilityReport {
  bool admissible = true;
  std::vector<std::string> violations;

  void fail(std::string why) {
    admissible = false;
    violations.push_back(std::move(why));
  }
};

struct Trace {
  SystemTiming timing;
  std::vector<Tick> clock_offsets;  ///< c_i: local = real + c_i
  std::vector<MessageRecord> messages;
  std::vector<OperationRecord> ops;
  Tick end_time = 0;  ///< real time at which the run ended

  /// Chapter III admissibility: every delivered delay in [d-u, d]; pairwise
  /// clock skew <= eps.  Undelivered messages are admissible only if the
  /// run ended before send_time + d (the recipient's view "ends before
  /// t + d").
  AdmissibilityReport audit() const;

  /// All operations completed?
  bool complete() const;

  /// Records of completed operations only.
  std::vector<OperationRecord> completed_ops() const;

  /// Worst-case latency among completed operations selected by `pred`;
  /// kNoTime when none matched.
  template <typename Pred>
  Tick worst_latency(Pred pred) const {
    Tick worst = kNoTime;
    for (const OperationRecord& rec : ops) {
      if (!rec.completed() || !pred(rec)) continue;
      if (worst == kNoTime || rec.latency() > worst) worst = rec.latency();
    }
    return worst;
  }
};

}  // namespace linbound
