// Recorded runs.
//
// A Trace is the executable counterpart of the paper's "run": the timed
// views of all processes, represented by what the lower-bound proofs
// actually consume -- message send/receive real times and operation
// invocation/response real times -- plus the clock offsets and timing
// parameters.  The audit() method decides admissibility exactly as in
// Chapter III.B.3.
#pragma once

#include <string>
#include <vector>

#include "common/time.h"
#include "common/value.h"
#include "sim/message.h"
#include "spec/operation.h"

namespace linbound {

struct MessageRecord {
  MessageId id = 0;
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  Tick send_time = kNoTime;  ///< real time
  Tick recv_time = kNoTime;  ///< real time; kNoTime if not delivered in the run

  bool delivered() const { return recv_time != kNoTime; }
  Tick delay() const { return recv_time - send_time; }
};

/// One operation execution at the application layer.
struct OperationRecord {
  std::int64_t token = 0;  ///< unique per run
  ProcessId proc = kNoProcess;
  Operation op;
  Tick invoke_time = kNoTime;    ///< real time of the invocation
  Tick response_time = kNoTime;  ///< real time of the response; kNoTime if pending
  Value ret;
  /// Set when the implementation explicitly abandoned the operation
  /// (graceful degradation: e.g. the centralized client timed out on a dead
  /// coordinator).  The operation still counts as pending for checking
  /// purposes; give_up_time records when it was abandoned.
  bool gave_up = false;
  Tick give_up_time = kNoTime;

  bool completed() const { return response_time != kNoTime; }
  Tick latency() const { return response_time - invoke_time; }
};

/// Kinds of model-assumption breakage the simulator can record.  Injected
/// faults (src/sim/fault_injection.h) and crashes land here; the assumption
/// monitor turns these into per-assumption attributions.
enum class FaultKind {
  kMessageDropped,    ///< a send was lost by the fault policy
  kMessageDuplicated, ///< an extra copy of a send was delivered
  kDelaySpike,        ///< the fault policy added delay_boost to a delivery
  kProcessStalled,    ///< an event was deferred past a stall window
  kProcessCrashed,    ///< crash_at took effect
  kOperationGivenUp,  ///< an implementation abandoned a pending operation
  kProcessRecovered,  ///< recover_at restarted a crashed process
  /// The synchrony supervisor switched the system into degraded
  /// (asynchronous-quorum) mode after observing the [d-u, d]/eps envelope
  /// violated (src/degrade/synchrony_monitor.h).  magnitude carries the
  /// target era.  Not an assumption violation: it is the system's reaction
  /// to one, recorded so mode changes are trace-visible and replayable.
  kModeDowngrade,
  /// The supervisor switched back to the synchronous algorithm after a
  /// clean observation window.  magnitude carries the target era.
  kModeUpgrade,
  kFaultKindCount,    ///< sentinel; keep last (exhaustiveness tests)
};

/// One injected fault / failure, as it happened.
struct FaultEvent {
  FaultKind kind{};
  Tick time = kNoTime;          ///< real time of the event
  ProcessId proc = kNoProcess;  ///< crashed/stalled process, or the sender
  ProcessId peer = kNoProcess;  ///< message recipient where applicable
  MessageId msg = -1;           ///< affected message id; -1 when none
  /// Spike boost, stall deferral length, duplicate's original message id,
  /// or the given-up operation token -- per kind.
  Tick magnitude = 0;
};

const char* fault_kind_name(FaultKind kind);

/// Inverse of fault_kind_name (trace deserialization); returns
/// kFaultKindCount for an unknown name.
FaultKind fault_kind_from_name(const std::string& name);

struct AdmissibilityReport {
  bool admissible = true;
  std::vector<std::string> violations;

  void fail(std::string why) {
    admissible = false;
    violations.push_back(std::move(why));
  }
};

/// Hot-path measurement counters filled in by the simulator.  These are
/// ephemeral run statistics for benches and tests -- NOT part of the
/// recorded run: trace_io neither serializes nor restores them, so adding
/// counters never perturbs archived traces or byte-identity comparisons.
struct TraceStats {
  std::uint64_t timers_set = 0;        ///< set_timer calls
  std::uint64_t timers_cancelled = 0;  ///< cancel_timer on a still-armed timer
  /// Queued timer events skipped at dispatch because their slot generation
  /// no longer matched (lazily cancelled, recycled, or killed by a crash
  /// epoch) -- the events the seed simulator popped and discarded.
  std::uint64_t timers_purged = 0;
  /// Batched delivery (DeliveryMode::kBatched): batches dispatched (a lone
  /// delivery is a batch of one) and deliveries that went through batches.
  /// batched_messages / deliver_batches is the mean batch size benches
  /// report; both stay zero under DeliveryMode::kPerMessage.
  std::uint64_t deliver_batches = 0;
  std::uint64_t batched_messages = 0;
};

struct Trace {
  SystemTiming timing;
  std::vector<Tick> clock_offsets;  ///< c_i: local = real + c_i
  std::vector<MessageRecord> messages;
  std::vector<OperationRecord> ops;
  /// Injected faults and failures, in event order; empty for a run under
  /// the paper's base model (no fault policy, no crashes).
  std::vector<FaultEvent> faults;
  Tick end_time = 0;  ///< real time at which the run ended
  /// Simulator hot-path counters (timer lifecycle); ephemeral, see above.
  TraceStats stats;

  /// Chapter III admissibility: every delivered delay in [d-u, d]; pairwise
  /// clock skew <= eps.  Undelivered messages are admissible only if the
  /// run ended before send_time + d (the recipient's view "ends before
  /// t + d").  Violations name the offending message: sender, recipient,
  /// send tick, message id and the observed delay against [d-u, d].
  AdmissibilityReport audit() const;

  /// Fault events affecting message `id`, in order.
  std::vector<FaultEvent> faults_for_message(MessageId id) const;

  /// All operations completed?
  bool complete() const;

  /// Records of completed operations only.
  std::vector<OperationRecord> completed_ops() const;

  /// Worst-case latency among completed operations selected by `pred`;
  /// kNoTime when none matched.
  template <typename Pred>
  Tick worst_latency(Pred pred) const {
    Tick worst = kNoTime;
    for (const OperationRecord& rec : ops) {
      if (!rec.completed() || !pred(rec)) continue;
      if (worst == kNoTime || rec.latency() > worst) worst = rec.latency();
    }
    return worst;
  }
};

}  // namespace linbound
