#include "sim/trace_io.h"

#include <ostream>
#include <sstream>
#include <streambuf>
#include <vector>

namespace linbound {
namespace {

std::string time_or_dash(Tick t) {
  return t == kNoTime ? std::string("-") : std::to_string(t);
}

std::optional<Tick> parse_time_or_dash(const std::string& token) {
  if (token == "-") return kNoTime;
  try {
    std::size_t used = 0;
    const long long x = std::stoll(token, &used);
    if (used != token.size()) return std::nullopt;
    return static_cast<Tick>(x);
  } catch (...) {
    return std::nullopt;
  }
}

/// Values may contain spaces (lists, strings); arguments are written
/// separated by a field marker that cannot appear inside the grammar.
constexpr char kFieldSep = '\t';

bool fail(std::string* error, const std::string& why) {
  if (error) *error = why;
  return false;
}

}  // namespace

void write_trace(std::ostream& os, const Trace& trace) {
  os << "trace v1\n";
  os << "timing " << trace.timing.d << " " << trace.timing.u << " "
     << trace.timing.eps << "\n";
  os << "offsets";
  for (Tick c : trace.clock_offsets) os << " " << c;
  os << "\n";
  os << "end " << trace.end_time << "\n";
  for (const MessageRecord& m : trace.messages) {
    os << "msg " << m.id << " " << m.from << " " << m.to << " " << m.send_time
       << " " << time_or_dash(m.recv_time) << "\n";
  }
  for (const OperationRecord& rec : trace.ops) {
    os << "op " << rec.token << " " << rec.proc << " " << rec.op.code << " "
       << time_or_dash(rec.invoke_time) << " " << time_or_dash(rec.response_time)
       << kFieldSep << rec.ret.to_string();
    for (const Value& arg : rec.op.args) os << kFieldSep << arg.to_string();
    os << "\n";
  }
  for (const FaultEvent& f : trace.faults) {
    os << "fault " << fault_kind_name(f.kind) << " " << f.time << " " << f.proc
       << " " << f.peer << " " << f.msg << " " << f.magnitude << "\n";
  }
}

std::string trace_to_string(const Trace& trace) {
  std::ostringstream os;
  write_trace(os, trace);
  return os.str();
}

namespace {

/// FNV-1a over everything written through it.
class HashStreambuf final : public std::streambuf {
 public:
  std::uint64_t hash() const { return hash_; }

 protected:
  int overflow(int ch) override {
    if (ch != traits_type::eof()) absorb(static_cast<unsigned char>(ch));
    return ch;
  }
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    for (std::streamsize i = 0; i < n; ++i) {
      absorb(static_cast<unsigned char>(s[i]));
    }
    return n;
  }

 private:
  void absorb(unsigned char c) { hash_ = (hash_ ^ c) * 1099511628211ull; }
  std::uint64_t hash_ = 14695981039346656037ull;
};

}  // namespace

std::uint64_t hash_trace(const Trace& trace) {
  HashStreambuf buf;
  std::ostream os(&buf);
  write_trace(os, trace);
  return buf.hash();
}

std::optional<Trace> read_trace(std::istream& is, std::string* error) {
  Trace trace;
  std::string line;

  if (!std::getline(is, line) || line != "trace v1") {
    fail(error, "missing 'trace v1' header");
    return std::nullopt;
  }

  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "timing") {
      if (!(ls >> trace.timing.d >> trace.timing.u >> trace.timing.eps)) {
        fail(error, "bad timing line");
        return std::nullopt;
      }
    } else if (kind == "offsets") {
      Tick c;
      while (ls >> c) trace.clock_offsets.push_back(c);
    } else if (kind == "end") {
      if (!(ls >> trace.end_time)) {
        fail(error, "bad end line");
        return std::nullopt;
      }
    } else if (kind == "msg") {
      MessageRecord m;
      std::string recv;
      if (!(ls >> m.id >> m.from >> m.to >> m.send_time >> recv)) {
        fail(error, "bad msg line: " + line);
        return std::nullopt;
      }
      auto recv_time = parse_time_or_dash(recv);
      if (!recv_time) {
        fail(error, "bad recv time: " + recv);
        return std::nullopt;
      }
      m.recv_time = *recv_time;
      trace.messages.push_back(m);
    } else if (kind == "op") {
      OperationRecord rec;
      std::string invoke, response;
      if (!(ls >> rec.token >> rec.proc >> rec.op.code >> invoke >> response)) {
        fail(error, "bad op line: " + line);
        return std::nullopt;
      }
      auto invoke_time = parse_time_or_dash(invoke);
      auto response_time = parse_time_or_dash(response);
      if (!invoke_time || !response_time) {
        fail(error, "bad op times: " + line);
        return std::nullopt;
      }
      rec.invoke_time = *invoke_time;
      rec.response_time = *response_time;
      // Remainder: tab-separated Value fields, first the return.
      std::string rest;
      std::getline(ls, rest);
      std::vector<std::string> fields;
      std::size_t start = 0;
      while (start < rest.size()) {
        if (rest[start] == kFieldSep) {
          ++start;
          const std::size_t end = rest.find(kFieldSep, start);
          fields.push_back(rest.substr(start, end == std::string::npos
                                                  ? std::string::npos
                                                  : end - start));
          start = end == std::string::npos ? rest.size() : end;
        } else {
          ++start;
        }
      }
      if (fields.empty()) {
        fail(error, "op line missing return value: " + line);
        return std::nullopt;
      }
      auto ret = Value::parse(fields[0]);
      if (!ret) {
        fail(error, "bad return value: " + fields[0]);
        return std::nullopt;
      }
      rec.ret = std::move(*ret);
      for (std::size_t i = 1; i < fields.size(); ++i) {
        auto arg = Value::parse(fields[i]);
        if (!arg) {
          fail(error, "bad argument value: " + fields[i]);
          return std::nullopt;
        }
        rec.op.args.push_back(std::move(*arg));
      }
      trace.ops.push_back(std::move(rec));
    } else if (kind == "fault") {
      FaultEvent f;
      std::string kind_name;
      if (!(ls >> kind_name >> f.time >> f.proc >> f.peer >> f.msg >>
            f.magnitude)) {
        fail(error, "bad fault line: " + line);
        return std::nullopt;
      }
      f.kind = fault_kind_from_name(kind_name);
      if (f.kind == FaultKind::kFaultKindCount) {
        fail(error, "unknown fault kind: " + kind_name);
        return std::nullopt;
      }
      trace.faults.push_back(f);
    } else {
      fail(error, "unknown line kind: " + kind);
      return std::nullopt;
    }
  }
  // gave_up / give_up_time are not serialized as op fields: they are fully
  // determined by the kOperationGivenUp fault events (magnitude = token),
  // so they are reconstructed here and the v1 grammar -- and every archived
  // trace hash -- stays unchanged.
  for (const FaultEvent& f : trace.faults) {
    if (f.kind != FaultKind::kOperationGivenUp) continue;
    for (OperationRecord& rec : trace.ops) {
      if (rec.token != f.magnitude) continue;
      rec.gave_up = true;
      rec.give_up_time = f.time;
      break;
    }
  }
  return trace;
}

std::optional<Trace> trace_from_string(const std::string& text, std::string* error) {
  std::istringstream is(text);
  return read_trace(is, error);
}

}  // namespace linbound
