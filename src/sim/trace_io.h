// Trace serialization: a line-oriented text format for recorded runs, so
// experiments can be archived, diffed and reloaded (round-trip exact).
//
//   trace v1
//   timing <d> <u> <eps>
//   offsets <c0> <c1> ...
//   end <end_time>
//   msg <id> <from> <to> <send> <recv|->
//   op <token> <proc> <code> <invoke> <response|-> <ret> <arg>*
//   fault <kind> <time> <proc> <peer> <msg> <magnitude>
//
// Operation arguments and returns use the Value::to_string grammar; the
// opcode is numeric (data-type specific), so traces are replayable against
// the same ObjectModel.  Fault lines (injected faults, crashes, recoveries;
// kind per fault_kind_name) appear only for runs that had fault events, so
// a clean run's serialization is byte-identical to the pre-fault format.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "sim/trace.h"

namespace linbound {

/// Serialize a trace.
void write_trace(std::ostream& os, const Trace& trace);
std::string trace_to_string(const Trace& trace);

/// Parse a serialized trace.  Returns nullopt (and sets `error` if given)
/// on malformed input.
std::optional<Trace> read_trace(std::istream& is, std::string* error = nullptr);
std::optional<Trace> trace_from_string(const std::string& text,
                                       std::string* error = nullptr);

/// FNV-1a fingerprint of write_trace's output, streamed (a ~100MB
/// serialized trace is hashed without materializing it).  Two traces hash
/// equal iff their serializations are byte-identical -- the determinism
/// oracle of bench_throughput, the chaos engine's double-run check
/// (src/chaos) and the repro-bundle replay gate all compare this.
std::uint64_t hash_trace(const Trace& trace);

}  // namespace linbound
