#include "spec/classification_report.h"

#include <algorithm>
#include <sstream>

#include "common/format.h"
#include "spec/properties.h"
#include "spec/sequences.h"

namespace linbound {

ClassificationReport classify_operations(const ObjectModel& model,
                                         const SearchUniverse& universe) {
  ClassificationReport report;
  report.type_name = model.name();

  // Pool sample operations by opcode.
  std::map<OpCode, std::vector<Operation>> by_code;
  for (const Operation& op : universe.ops) by_code[op.code].push_back(op);

  for (const auto& [code, samples] : by_code) {
    OpClassification c;
    c.code = code;
    c.name = model.op_name(code);

    // Mutator / accessor / overwriter: scan prefixes for witnesses.
    //
    // Accessor (Definition D.2) needs an instance OP(arg, ret) that is
    // illegal after some legal rho, where `ret` is a return the operation
    // can actually produce.  Bounded form: the operation's determined
    // return varies across prefixes -- take ret from the other prefix and
    // witness_accessor confirms it.
    std::map<std::size_t, Value> first_return;  // sample index -> first seen
    for_each_legal_prefix(model, universe, [&](const OpSequence& rho) {
      for (std::size_t s = 0; s < samples.size(); ++s) {
        const Operation& op = samples[s];
        if (!c.mutator && witness_mutator(model, rho, op)) c.mutator = true;
        if (!c.accessor) {
          const Value determined = determined_return(model, rho, op);
          auto [it, inserted] = first_return.try_emplace(s, determined);
          if (!inserted && !(it->second == determined)) {
            // `it->second` is producible (after the earlier prefix) yet
            // contradicted here; sanity-check with the definitional form.
            c.accessor = witness_accessor(model, rho, op, it->second);
          }
        }
        if (!c.non_overwriter) {
          for (const Operation& op2 : samples) {
            if (witness_non_overwriter(model, rho, op, op2)) {
              c.non_overwriter = true;
              break;
            }
          }
        }
      }
      // Stop early once everything this pass can set is set.
      return !(c.mutator && c.accessor && c.non_overwriter);
    });

    c.insc_witness = find_immediately_non_commuting(model, universe, samples, samples);
    c.immediately_non_self_commuting = c.insc_witness.has_value();
    c.strong_witness = find_strongly_non_self_commuting(model, universe, samples);
    c.strongly_immediately_non_self_commuting = c.strong_witness.has_value();
    c.eventual_witness =
        find_eventually_non_commuting(model, universe, samples, samples);
    c.eventually_non_self_commuting = c.eventual_witness.has_value();

    report.ops.push_back(std::move(c));
  }
  return report;
}

std::string ClassificationReport::render(const ObjectModel& model) const {
  std::ostringstream os;
  os << "Chapter II classification of '" << type_name << "'\n";
  TextTable table({"operation", "group", "mutator", "accessor", "imm. self-comm.",
                   "strongly INSC", "event. self-comm.", "overwriter"});
  for (const OpClassification& c : ops) {
    table.add_row({c.name, linbound::to_string(c.derived_class()),
                   c.mutator ? "yes" : "no", c.accessor ? "yes" : "no",
                   c.immediately_non_self_commuting ? "NO" : "yes",
                   c.strongly_immediately_non_self_commuting ? "YES" : "no",
                   c.eventually_non_self_commuting ? "NO" : "yes",
                   c.mutator ? (c.non_overwriter ? "no" : "yes") : "-"});
  }
  os << table.render();

  for (const OpClassification& c : ops) {
    if (c.strong_witness) {
      os << "  " << c.name << " strongly-INSC witness: after";
      if (c.strong_witness->rho.empty()) {
        os << " <empty>";
      } else {
        for (const OpInstance& inst : c.strong_witness->rho) {
          os << " " << model.describe(inst);
        }
      }
      os << ", " << model.describe(c.strong_witness->op1) << " / "
         << model.describe(c.strong_witness->op2) << "\n";
    }
  }
  return os.str();
}

}  // namespace linbound
