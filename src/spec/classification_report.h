// Automatic Chapter II classification of a data type's operations.
//
// Given a finite operation universe (sample instances per opcode plus a
// prefix-generation bound), this module runs the witness search to decide,
// per opcode:
//   * mutator / accessor (Definitions D.1/D.2),
//   * immediately self-commuting vs immediately non-self-commuting, and
//     strongly so (B.1-B.3),
//   * eventually self-commuting vs eventually non-self-commuting (C.3/C.6),
//   * overwriter vs non-overwriter (D.5),
// and derives the Chapter V group (MOP / AOP / OOP) the way the paper does.
// The report also cross-checks against the model's declared classify() --
// the test suite asserts they agree for every built-in type.
//
// All "universal" verdicts (self-commuting, overwriter, not-an-accessor)
// are relative to the search bound: witnesses are proofs, absences are
// bounded-exhaustive evidence.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "spec/object_model.h"
#include "spec/witness_search.h"

namespace linbound {

struct OpClassification {
  OpCode code = 0;
  std::string name;

  bool mutator = false;
  bool accessor = false;
  bool immediately_non_self_commuting = false;
  bool strongly_immediately_non_self_commuting = false;
  bool eventually_non_self_commuting = false;
  bool non_overwriter = false;  // meaningful for mutators

  /// Witnesses backing the positive verdicts (empty prefix allowed).
  std::optional<PairWitness> insc_witness;
  std::optional<PairWitness> strong_witness;
  std::optional<PairWitness> eventual_witness;

  /// The Chapter V group implied by mutator/accessor.
  OpClass derived_class() const {
    if (mutator && !accessor) return OpClass::kPureMutator;
    if (accessor && !mutator) return OpClass::kPureAccessor;
    return OpClass::kOther;
  }
};

struct ClassificationReport {
  std::string type_name;
  std::vector<OpClassification> ops;

  /// Render as an ASCII table with witness footnotes.
  std::string render(const ObjectModel& model) const;
};

/// Classify every opcode that appears in `universe.ops`.  Instances of the
/// same opcode (different arguments) are pooled as one operation type, as
/// in the paper.  `accessor_probes` supplies, per opcode, candidate
/// "illegal" returns for the accessor test (Definition D.2 needs a return
/// value the state can contradict); by default every int 0..3, both bools,
/// and unit are tried.
ClassificationReport classify_operations(const ObjectModel& model,
                                         const SearchUniverse& universe);

}  // namespace linbound
